// Paper-invariant oracles: independent StepObservers that re-derive the
// model's invariants from first principles and throw InvariantViolation
// (with an "[oracle:<name>]" message prefix) on any breach.
//
// The engines enforce some of these invariants inline (queue overflow,
// minimality of scheduled moves); the oracles deliberately re-check them
// from the *observable* record — the StepDigest and the post-step
// configuration — through independent code paths, so a bookkeeping bug in
// either engine (a drifted occupancy counter, a stale cached mask, a
// mis-built digest) is caught even when the inline check passes.
//
// All oracles attach to any Sim (optimized Engine or ReferenceEngine) via
// add_observer(StepObserver*). They can also replay offline: a recorded
// TraceRecorder stream passes through run_trace_oracles(), which rebuilds
// queue occupancy from the move events alone.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "lower_bound/classes.hpp"
#include "sim/algorithm.hpp"
#include "sim/sim.hpp"
#include "sim/trace.hpp"
#include "topo/topology.hpp"

namespace mr {

/// Queue bound of §2: no queue ever holds more than k packets — the
/// central queue for the Central layout, each of the four inlink queues
/// for the PerInlink layout (§5, Theorem 15). Counted by scanning the
/// actual queues, then cross-checked against the sim's own occupancy
/// accessors so counter drift is caught too. Also verifies queue/location
/// consistency of every queued packet.
class QueueBoundOracle : public StepObserver {
 public:
  void on_prepare(const Sim& e, const StepDigest& d) override { check(e, d); }
  void on_step(const Sim& e, const StepDigest& d) override { check(e, d); }

 private:
  void check(const Sim& e, const StepDigest& d) const;
};

/// Link capacity of §2: each directed link carries at most one packet per
/// step, every hop goes to the sender's neighbour in the recorded travel
/// direction, and no packet moves twice in one step. Also checks the
/// digest against the post-step configuration: an accepted packet sits at
/// its recorded receiving node, a delivering hop left the network.
class LinkCapacityOracle : public StepObserver {
 public:
  void on_step(const Sim& e, const StepDigest& d) override;
};

/// Minimality (§2) for minimal algorithms: every transmitted hop strictly
/// reduces the L1 distance to the packet's destination (which is stable
/// from phase (b) on, so the post-step destination is the transmit-time
/// one). For non-minimal algorithms with a stray bound δ, checks the
/// expanded-rectangle containment of §5 instead.
class ProfitableMoveOracle : public StepObserver {
 public:
  /// `minimal` mirrors Algorithm::minimal(); `max_stray` mirrors
  /// Algorithm::max_stray() and is only consulted when !minimal.
  explicit ProfitableMoveOracle(bool minimal, int max_stray = -1)
      : minimal_(minimal), max_stray_(max_stray) {}

  void on_step(const Sim& e, const StepDigest& d) override;

 private:
  bool minimal_;
  int max_stray_;
};

/// DX exchange consistency (§2/§3): destination addresses only ever change
/// through the adversary's exchange operation — so between steps with
/// digest.exchanges == 0 every destination is unchanged, exchanges
/// permute the destination multiset but never invent addresses, and
/// sources are immutable always.
class ExchangeConsistencyOracle : public StepObserver {
 public:
  void on_prepare(const Sim& e, const StepDigest& d) override;
  void on_step(const Sim& e, const StepDigest& d) override;

 private:
  void snapshot(const Sim& e);

  bool primed_ = false;
  std::vector<NodeId> sources_;
  std::vector<NodeId> dests_;
};

/// Box-escape invariants of the Ω(n²/k²) construction (§4.1, Lemmas 1–8),
/// generalized from main_construction's run so any engine driving the
/// construction geometry can be checked:
///   * Lemma 1: no class-i packet leaves the i-box at a step ≤ (i−1)·dn;
///   * Lemma 2: at most one N_i- and one E_i-packet leave the i-box per
///     step within the class window (steps ≤ i·dn);
///   * Lemmas 5/6: classes j ≥ w+2 stay confined to the w-box, where w is
///     the current window index ⌊(t−1)/dn⌋;
///   * Lemma 7/8: within its window an N_i-packet is never at/north of the
///     E_i-row while west of the N_i-column (mirrored for E_i).
/// The lemmas are theorems: a violation means the construction or engine
/// diverged from the paper.
class BoxEscapeOracle : public StepObserver {
 public:
  /// `class_packet_count`: the first class_packet_count PacketIds are the
  /// class packets; fillers beyond are never classed.
  BoxEscapeOracle(const MainGeometry& geometry, std::int32_t dn,
                  std::size_t class_packet_count);

  std::int64_t max_escapes_per_step() const { return max_escapes_; }

  void on_step(const Sim& e, const StepDigest& d) override;

 private:
  MainGeometry geo_;
  std::int32_t dn_;
  std::size_t class_count_;
  std::vector<std::int64_t> escapes_n_;
  std::vector<std::int64_t> escapes_e_;
  std::int64_t max_escapes_ = 0;
};

/// Order-sensitive FNV-1a hash over every StepDigest a sim emits
/// (prepare included). Two engines that emit identical digest streams —
/// same moves in the same order, same counters — have equal hashes; the
/// differential fuzzer compares them per step.
class DigestHasher : public StepObserver {
 public:
  std::uint64_t hash() const { return hash_; }

  void on_prepare(const Sim& e, const StepDigest& d) override { mix(d); }
  void on_step(const Sim& e, const StepDigest& d) override { mix(d); }

 private:
  void mix(const StepDigest& d);

  std::uint64_t hash_ = 14695981039346656037ULL;
};

/// Offline replay of the structural oracles over a recorded TraceRecorder
/// stream: rebuilds queue occupancy (per node for the Central layout, per
/// inlink queue for PerInlink) from the move/deliver events alone and
/// re-checks the queue bound ≤ k, link capacity, hop adjacency,
/// one-move-per-packet-per-step and position continuity. `packets`
/// supplies sources, destinations and injection steps
/// (Sim::all_packets()). Injection timing is replayed with the engines'
/// waiting rule; since that derives a packet's inlink tag from its
/// destination, the replay assumes an exchange-free run (destinations as
/// recorded are the ones the packets always carried). When the run
/// carried a fault schedule, pass it as `faults` so the replay mirrors
/// the engines' injection deferral at down nodes (the schedule does not
/// otherwise change the replayed checks — dropped moves simply never
/// appear in the trace). Returns the empty string when every check
/// passes, else a description of the first violation.
std::string run_trace_oracles(const std::vector<TraceEvent>& events,
                              const Topology& mesh,
                              const std::vector<Packet>& packets,
                              int queue_capacity, QueueLayout layout,
                              const FaultSchedule* faults = nullptr);

}  // namespace mr
