file(REMOVE_RECURSE
  "CMakeFiles/e05_farthest_first_lb.dir/e05_farthest_first_lb.cpp.o"
  "CMakeFiles/e05_farthest_first_lb.dir/e05_farthest_first_lb.cpp.o.d"
  "e05_farthest_first_lb"
  "e05_farthest_first_lb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e05_farthest_first_lb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
