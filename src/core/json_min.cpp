#include "core/json_min.hpp"

#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace mr::json {

const Value* Value::find(const std::string& key) const {
  if (kind != Kind::Object) return nullptr;
  for (const auto& [k, v] : object)
    if (k == key) return &v;
  return nullptr;
}

namespace {

struct Parser {
  const std::string& s;
  std::size_t i = 0;
  std::string error;

  explicit Parser(const std::string& text) : s(text) {}

  void skip_ws() {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i])))
      ++i;
  }
  bool fail(const std::string& msg) {
    if (error.empty()) error = msg + " at offset " + std::to_string(i);
    return false;
  }
  bool expect(char c) {
    skip_ws();
    if (i >= s.size() || s[i] != c)
      return fail(std::string("expected '") + c + "'");
    ++i;
    return true;
  }

  bool parse_string(std::string& out) {
    skip_ws();
    if (i >= s.size() || s[i] != '"') return fail("expected string");
    ++i;
    out.clear();
    while (i < s.size() && s[i] != '"') {
      char ch = s[i++];
      if (ch == '\\') {
        if (i >= s.size()) return fail("bad escape");
        const char esc = s[i++];
        switch (esc) {
          case '"': ch = '"'; break;
          case '\\': ch = '\\'; break;
          case '/': ch = '/'; break;
          case 'n': ch = '\n'; break;
          case 't': ch = '\t'; break;
          case 'r': ch = '\r'; break;
          case 'b': ch = '\b'; break;
          case 'f': ch = '\f'; break;
          case 'u': {
            // Only the BMP code points our writers never emit; decode to
            // UTF-8 so round-trips stay lossless anyway.
            if (i + 4 > s.size()) return fail("bad \\u escape");
            unsigned cp = 0;
            for (int d = 0; d < 4; ++d) {
              const char h = s[i++];
              cp <<= 4;
              if (h >= '0' && h <= '9') cp |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') cp |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') cp |= static_cast<unsigned>(h - 'A' + 10);
              else return fail("bad \\u escape");
            }
            if (cp < 0x80) {
              out.push_back(static_cast<char>(cp));
            } else if (cp < 0x800) {
              out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
              out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
            } else {
              out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
              out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
              out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
            }
            continue;
          }
          default:
            return fail("bad escape");
        }
      }
      out.push_back(ch);
    }
    if (i >= s.size()) return fail("unterminated string");
    ++i;
    return true;
  }

  bool parse_value(Value& out, int depth) {
    if (depth > 64) return fail("nesting too deep");
    skip_ws();
    if (i >= s.size()) return fail("unexpected end of input");
    const char c = s[i];
    if (c == '"') {
      out.kind = Value::Kind::String;
      return parse_string(out.string);
    }
    if (c == 't' || c == 'f' || c == 'n') {
      const std::string word = c == 't' ? "true" : c == 'f' ? "false" : "null";
      if (s.compare(i, word.size(), word) != 0) return fail("bad literal");
      i += word.size();
      out.kind = c == 'n' ? Value::Kind::Null : Value::Kind::Bool;
      out.boolean = c == 't';
      return true;
    }
    if (c == '{') {
      out.kind = Value::Kind::Object;
      ++i;
      skip_ws();
      if (i < s.size() && s[i] == '}') {
        ++i;
        return true;
      }
      for (;;) {
        std::string key;
        if (!parse_string(key)) return false;
        if (!expect(':')) return false;
        Value member;
        if (!parse_value(member, depth + 1)) return false;
        out.object.emplace_back(std::move(key), std::move(member));
        skip_ws();
        if (i < s.size() && s[i] == ',') {
          ++i;
          continue;
        }
        return expect('}');
      }
    }
    if (c == '[') {
      out.kind = Value::Kind::Array;
      ++i;
      skip_ws();
      if (i < s.size() && s[i] == ']') {
        ++i;
        return true;
      }
      for (;;) {
        Value element;
        if (!parse_value(element, depth + 1)) return false;
        out.array.push_back(std::move(element));
        skip_ws();
        if (i < s.size() && s[i] == ',') {
          ++i;
          continue;
        }
        return expect(']');
      }
    }
    // number
    const std::size_t start = i;
    while (i < s.size() &&
           (std::isdigit(static_cast<unsigned char>(s[i])) || s[i] == '-' ||
            s[i] == '+' || s[i] == '.' || s[i] == 'e' || s[i] == 'E'))
      ++i;
    if (i == start) return fail("expected value");
    try {
      out.number = std::stod(s.substr(start, i - start));
    } catch (...) {
      return fail("bad number");
    }
    out.kind = Value::Kind::Number;
    return true;
  }
};

}  // namespace

std::optional<Value> parse(const std::string& text, std::string* error) {
  Parser p(text);
  Value v;
  if (!p.parse_value(v, 0)) {
    if (error != nullptr) *error = p.error;
    return std::nullopt;
  }
  p.skip_ws();
  if (p.i != text.size()) {
    if (error != nullptr)
      *error = "trailing garbage at offset " + std::to_string(p.i);
    return std::nullopt;
  }
  return v;
}

std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char ch : s) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", ch);
          out += buf;
        } else {
          out.push_back(ch);
        }
    }
  }
  return out;
}

std::string number_to_string(double v) {
  if (v == static_cast<double>(static_cast<std::int64_t>(v)))
    return std::to_string(static_cast<std::int64_t>(v));
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

std::string exact_number_to_string(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

}  // namespace mr::json
