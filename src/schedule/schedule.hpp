// Store-and-forward path scheduling: given a PathSet, produce a feasible
// timetable — every packet follows its fixed path, at most one packet
// crosses each directed link per step — and measure its makespan against
// the C + D yardstick (max(C, D) is a trivial lower bound; Rothvoß,
// arXiv:1206.3718, shows O(C + D) schedules exist with constant-size
// buffers).
//
// Two schedulers:
//   * random_delay_schedule — the Leighton–Maggs–Rao/Rothvoß recipe made
//     deterministic: every packet draws a seeded initial delay in [0, C),
//     then packets (in delay order) reserve each link of their path at the
//     earliest free step. Feasible by construction, and the spread-out
//     start times keep reservation conflicts — and hence the makespan —
//     near C + D.
//   * greedy_schedule — the farthest-to-go baseline: a time-stepped sweep
//     where every contended link goes to the packet with the most
//     remaining hops. No delays, no randomness; the baseline the
//     random-delay ratio is judged against.
#pragma once

#include <string>

#include "schedule/path.hpp"

namespace mr {

/// One packet's timetable. depart[i] is the 1-based engine step during
/// which hop i (path.nodes[i] -> path.nodes[i+1]) executes; strictly
/// increasing, one entry per hop (empty for a source==dest packet).
struct PacketSchedule {
  PacketPath path;
  std::vector<Step> depart;

  Step start() const { return depart.empty() ? 1 : depart.front(); }
  Step finish() const { return depart.empty() ? 0 : depart.back(); }
};

struct Schedule {
  std::vector<PacketSchedule> packets;  ///< demand-indexed, like PathSet
  Step makespan = 0;  ///< max finish() — steps until the last delivery
  int congestion = 0;
  int dilation = 0;

  /// makespan / (C + D), the quality figure E21 reports per instance.
  double ratio() const {
    const int denom = congestion + dilation;
    return denom == 0 ? 0.0
                      : static_cast<double>(makespan) / denom;
  }
};

/// Seeded random-delay scheduler (deterministic in `seed`).
Schedule random_delay_schedule(const PathSet& paths, std::uint64_t seed);

/// Greedy farthest-to-go baseline.
Schedule greedy_schedule(const PathSet& paths);

/// Structural feasibility check: paths walk real links, departure times
/// are strictly increasing and start >= 1, and no two packets reserve the
/// same directed link at the same step. Returns "" when feasible, else a
/// description of the first violation.
std::string validate_schedule(const Topology& topo, const Schedule& s);

/// Smallest per-node queue capacity under which the engine replays this
/// schedule without deferring an injection or overflowing a queue
/// (central layout): the peak over all (node, step) of end-of-step
/// residency and start-of-step residency-plus-injections.
int required_queue_capacity(const Schedule& s);

}  // namespace mr
