// Telemetry subsystem tests: the LegacyObserverAdapter reproduces the
// historical per-event callback stream exactly, the TelemetryCollector's
// stride-doubling series stays bounded and lossless in its sums, and the
// meshroute-telemetry/1 export round-trips through the json_min validator.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "harness/runner.hpp"
#include "routing/registry.hpp"
#include "sim/engine.hpp"
#include "sim/metrics.hpp"
#include "sim/trace.hpp"
#include "telemetry/export.hpp"
#include "telemetry/telemetry.hpp"
#include "topo/mesh.hpp"
#include "workload/permutation.hpp"

namespace mr {
namespace {

/// Rebuilds the legacy TraceRecorder event stream from step digests: the
/// adapter contract is injected deliveries first, then each MoveRecord as
/// on_move (+ on_deliver when it delivered).
class DigestTraceRebuilder final : public StepObserver {
 public:
  void on_prepare(const Sim& e, const StepDigest& d) override {
    append(e, d);
  }
  void on_step(const Sim& e, const StepDigest& d) override {
    append(e, d);
  }
  const std::vector<TraceEvent>& events() const { return events_; }
  std::int64_t non_delivery_moves() const { return non_delivery_moves_; }

 private:
  void append(const Sim& e, const StepDigest& d) {
    for (PacketId p : d.injected_deliveries)
      events_.push_back({TraceEventKind::Deliver, d.step, p, e.packet(p).dest,
                         e.packet(p).dest});
    for (const MoveRecord& m : d.moves) {
      events_.push_back({TraceEventKind::Move, d.step, m.packet, m.from, m.to});
      if (m.delivered)
        events_.push_back({TraceEventKind::Deliver, d.step, m.packet,
                           e.packet(m.packet).dest, e.packet(m.packet).dest});
      else
        ++non_delivery_moves_;
    }
  }

  std::vector<TraceEvent> events_;
  std::int64_t non_delivery_moves_ = 0;
};

struct EngineRun {
  Mesh mesh;
  std::unique_ptr<Algorithm> algo;
  std::unique_ptr<Engine> engine;
};

/// monotone: keep only down-right demands — central-queue routers can
/// deadlock on full random permutations (cf. engine_bench::workload_for),
/// so tests that assert delivery use the deadlock-free subset.
EngineRun make_run(const std::string& router, std::int32_t n, bool torus,
                   int k, std::uint64_t seed, bool monotone = false) {
  EngineRun run{Mesh::square(n, torus), make_algorithm(router), nullptr};
  Engine::Config config;
  config.queue_capacity = k;
  run.engine = std::make_unique<Engine>(run.mesh, config, *run.algo);
  std::size_t i = 0;
  for (const Demand& d : random_permutation(run.mesh, seed)) {
    const Coord s = run.mesh.coord_of(d.source);
    const Coord t = run.mesh.coord_of(d.dest);
    if (monotone && (t.col < s.col || t.row < s.row)) continue;
    run.engine->add_packet(d.source, d.dest,
                           (i % 5 == 0) ? static_cast<Step>(i % 7) : 0);
    ++i;
  }
  return run;
}

TEST(LegacyAdapter, DigestStreamMatchesTraceRecorder) {
  for (const std::string& router :
       {std::string("adaptive-alternate"), std::string("stray-2"),
        std::string("bounded-dimension-order")}) {
    EngineRun legacy = make_run(router, 10, false, 2, 11);
    TraceRecorder trace;
    legacy.engine->add_observer(&trace);
    legacy.engine->prepare();
    legacy.engine->run(300);

    EngineRun digest = make_run(router, 10, false, 2, 11);
    DigestTraceRebuilder rebuilt;
    digest.engine->add_observer(&rebuilt);
    digest.engine->prepare();
    digest.engine->run(300);

    ASSERT_EQ(trace.events().size(), rebuilt.events().size()) << router;
    for (std::size_t i = 0; i < trace.events().size(); ++i)
      ASSERT_EQ(trace.events()[i], rebuilt.events()[i])
          << router << " event " << i;
    // Non-delivering hops are exactly what the engine's own counter counts.
    EXPECT_EQ(rebuilt.non_delivery_moves(), digest.engine->total_moves());
  }
}

TEST(LegacyAdapter, MetricsObserverNumbersUnchanged) {
  // MetricsObserver rides through the adapter; a digest-side recount of
  // deliveries per step must agree with its delivery curve.
  EngineRun run = make_run("greedy-match", 12, false, 2, 13, /*monotone=*/true);
  MetricsObserver metrics;
  run.engine->add_observer(&metrics);

  std::vector<std::int64_t> deliveries_by_step;
  class Recount final : public StepObserver {
   public:
    explicit Recount(std::vector<std::int64_t>* out) : out_(out) {}
    void on_prepare(const Sim&, const StepDigest& d) override {
      out_->push_back(d.deliveries);
    }
    void on_step(const Sim&, const StepDigest& d) override {
      out_->push_back(d.deliveries);
    }

   private:
    std::vector<std::int64_t>* out_;
  } recount(&deliveries_by_step);
  run.engine->add_observer(&recount);

  run.engine->prepare();
  run.engine->run(1000);
  ASSERT_TRUE(run.engine->all_delivered());

  const auto& curve = metrics.delivered_by_step();
  ASSERT_EQ(curve.size(), deliveries_by_step.size());
  std::int64_t cumulative = 0;
  for (std::size_t t = 0; t < curve.size(); ++t) {
    cumulative += deliveries_by_step[t];
    EXPECT_EQ(curve[t], cumulative) << "step " << t;
  }
  const LatencySummary latency = metrics.latency_summary();
  EXPECT_GE(latency.max, latency.p99);
  EXPECT_GE(latency.p99, latency.p50);
}

TEST(StepDigest, CountersAreSelfConsistent) {
  EngineRun run = make_run("dimension-order", 10, true, 2, 17);
  class Check final : public StepObserver {
   public:
    void on_step(const Sim& e, const StepDigest& d) override {
      std::int64_t delivering = 0;
      std::array<std::int64_t, kNumDirs> by_dir{};
      for (const MoveRecord& m : d.moves) {
        if (m.delivered) ++delivering;
        by_dir[dir_index(m.dir)]++;
        EXPECT_EQ(e.mesh().neighbor(m.from, m.dir), m.to);
      }
      EXPECT_EQ(d.deliveries,
                delivering + static_cast<std::int64_t>(
                                 d.injected_deliveries.size()));
      EXPECT_EQ(by_dir, d.moves_by_dir);
      EXPECT_EQ(d.step, e.step());
      ++steps;
    }
    int steps = 0;
  } check;
  run.engine->add_observer(&check);
  run.engine->prepare();
  run.engine->run(400);
  EXPECT_GT(check.steps, 0);
}

TEST(TelemetryCollector, StrideDoublingKeepsSeriesBoundedAndLossless) {
  TelemetryOptions options;
  options.series_capacity = 8;
  options.sample_every = 4;
  TelemetryCollector collector(options);

  EngineRun run =
      make_run("dimension-order", 12, false, 1, 19, /*monotone=*/true);
  run.engine->add_observer(&collector);
  // Prepare-time (source==dest) deliveries land in the totals but not in
  // any series row; capture them to balance the books below.
  class PrepareDeliveries final : public StepObserver {
   public:
    void on_prepare(const Sim&, const StepDigest& d) override {
      count = d.deliveries;
    }
    void on_step(const Sim&, const StepDigest&) override {}
    std::int64_t count = 0;
  } prepare_deliveries;
  run.engine->add_observer(&prepare_deliveries);
  run.engine->prepare();
  run.engine->run(2000);
  ASSERT_TRUE(run.engine->all_delivered());
  ASSERT_GT(run.engine->step(), Step(8)) << "need enough steps to compact";

  const auto rows = collector.series();
  EXPECT_LE(rows.size(), options.series_capacity + 1);
  EXPECT_GT(collector.series_stride(), Step(1));
  // stride is a power of two
  EXPECT_EQ(collector.series_stride() & (collector.series_stride() - 1), 0);

  Step covered = 0;
  std::int64_t moves = 0, deliveries = 0;
  Step prev_step = 0;
  for (std::size_t i = 0; i < rows.size(); ++i) {
    if (i > 0) EXPECT_GT(rows[i].step, prev_step);
    prev_step = rows[i].step;
    if (i + 1 < rows.size())
      EXPECT_EQ(rows[i].span, collector.series_stride()) << "row " << i;
    covered += rows[i].span;
    moves += rows[i].moves;
    deliveries += rows[i].deliveries;
  }
  // Compaction merges but never drops: bucket spans tile the run and the
  // sums equal the run totals.
  EXPECT_EQ(covered, run.engine->step());
  EXPECT_EQ(moves, collector.totals().moves);
  EXPECT_EQ(deliveries + prepare_deliveries.count,
            collector.totals().deliveries);
  EXPECT_EQ(collector.totals().deliveries,
            static_cast<std::int64_t>(run.engine->delivered_count()));
  EXPECT_EQ(collector.totals().steps, run.engine->step());

  // Heatmap: sampling happened and no node exceeds the queue bound.
  EXPECT_GT(collector.heat_samples(), 0);
  int peak = 0;
  for (const TelemetryNodeHeat& h : collector.node_heat())
    peak = std::max(peak, h.max);
  EXPECT_LE(peak, run.engine->max_occupancy_seen());
}

TEST(RunnerTelemetry, OptInExportsValidJsonlWithoutBehaviourChange) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / "mr_telemetry_test").string();
  std::filesystem::remove_all(dir);

  RunSpec spec;
  spec.width = spec.height = 12;
  spec.queue_capacity = 2;
  spec.algorithm = "adaptive-alternate";

  const Mesh mesh = Mesh::square(12);
  const Workload w = random_permutation(mesh, 23);
  const RunResult plain = run_workload(spec, w);

  spec.telemetry.series = true;
  spec.telemetry.profile = true;
  spec.telemetry.export_dir = dir;
  spec.telemetry.slug = "opt in run";
  const RunResult observed = run_workload(spec, w);

  // Telemetry must not perturb the simulation.
  EXPECT_EQ(plain.steps, observed.steps);
  EXPECT_EQ(plain.total_moves, observed.total_moves);
  EXPECT_EQ(plain.max_queue, observed.max_queue);
  EXPECT_EQ(plain.latency.p50, observed.latency.p50);

  ASSERT_TRUE(observed.phase_profile.has_value());
  EXPECT_GT(observed.phase_profile->total_seconds, 0.0);
  EXPECT_EQ(observed.phase_profile->steps, observed.steps);
  EXPECT_FALSE(plain.phase_profile.has_value());

  ASSERT_FALSE(observed.telemetry_path.empty());
  EXPECT_EQ(observed.telemetry_path, dir + "/opt_in_run.jsonl");
  std::string error;
  EXPECT_TRUE(validate_telemetry_jsonl(observed.telemetry_path, &error))
      << error;
  EXPECT_TRUE(std::filesystem::exists(dir + "/opt_in_run_series.csv"));
  EXPECT_TRUE(std::filesystem::exists(dir + "/opt_in_run_heatmap.csv"));
  std::filesystem::remove_all(dir);
}

TEST(TelemetryValidation, RejectsMalformedJsonl) {
  const auto path =
      (std::filesystem::temp_directory_path() / "mr_bad_telemetry.jsonl")
          .string();
  std::string error;

  {
    std::ofstream out(path);
    out << "{\"kind\": \"series\", \"step\": 1}\n";
  }
  EXPECT_FALSE(validate_telemetry_jsonl(path, &error));
  EXPECT_NE(error.find("header"), std::string::npos) << error;

  {
    std::ofstream out(path);
    out << "{\"schema\": \"meshroute-telemetry/1\", \"kind\": \"header\", "
           "\"run\": \"r\", \"algorithm\": \"a\", \"layout\": \"central\", "
           "\"width\": 4, \"height\": 4, \"queue_capacity\": 1, "
           "\"sample_every\": 0, \"series_stride\": 1}\n";
  }
  EXPECT_FALSE(validate_telemetry_jsonl(path, &error));
  EXPECT_NE(error.find("summary"), std::string::npos) << error;

  std::remove(path.c_str());
}

}  // namespace
}  // namespace mr
