// Open-loop traffic sources: step-indexed demand generators the injection
// pump feeds into the engine. A source is an iterator over steps — emit(t)
// appends every demand injected at step t — so the stream is a pure
// function of (spec, call sequence): the pump calls emit once per step in
// ascending order, and replaying the same seed reproduces the exact
// stream bit for bit.
#pragma once

#include <vector>

#include "core/rng.hpp"
#include "sim/snapshot.hpp"
#include "traffic/pattern.hpp"
#include "workload/permutation.hpp"

namespace mr {

/// Every source is Snapshottable (sim/snapshot.hpp): save_state() captures
/// the emission position — for the stochastic source the raw RNG state,
/// the last emitted step and the offered counter — so a checkpointed
/// open-loop run restores its source and continues the exact demand
/// stream bit for bit.
class TrafficSource : public Snapshottable {
 public:
  ~TrafficSource() override = default;
  /// Appends all demands injected at `step` (each with injected_at ==
  /// step) to `out`. Must be called with strictly increasing steps.
  virtual void emit(Step step, std::vector<Demand>& out) = 0;
};

/// Seeded stochastic source: every step, every terminal independently
/// injects with probability spec.rate (a Bernoulli open-loop process); the
/// destination is drawn from the spatial pattern. Terminals are visited in
/// ascending id order, so the stream is deterministic under a fixed seed.
/// Demands carry ROUTER ids (terminals map through
/// Topology::terminal_router before injection); a pair of terminals on one
/// router yields a source == dest demand, delivered at injection.
class BernoulliSource : public TrafficSource {
 public:
  BernoulliSource(const Topology& topo, const TrafficSpec& spec);
  void emit(Step step, std::vector<Demand>& out) override;

  const TrafficSpec& spec() const { return spec_; }
  /// Demands emitted so far (offered load counter).
  std::int64_t offered() const { return offered_; }

  std::string save_state() const override;
  void restore_state(const std::string& blob) override;

 private:
  const Topology& topo_;
  TrafficSpec spec_;
  Rng rng_;
  Step last_step_ = 0;
  std::int64_t offered_ = 0;
};

/// Deterministic replay source: re-emits a recorded workload by
/// injected_at step. Used to rerun a materialized stochastic stream
/// through a different algorithm/engine, or to drive the pump from a
/// hand-written schedule.
class ReplaySource : public TrafficSource {
 public:
  /// `demands` need not be sorted; they are stable-sorted by injected_at.
  explicit ReplaySource(Workload demands);
  void emit(Step step, std::vector<Demand>& out) override;

  /// Position only; the restoring ReplaySource must be constructed from
  /// the same workload.
  std::string save_state() const override;
  void restore_state(const std::string& blob) override;

 private:
  Workload demands_;
  std::size_t cursor_ = 0;
  Step last_step_ = 0;
};

/// Materializes steps first..last (inclusive) of a source into one
/// workload, e.g. to pre-schedule an open-loop stream through
/// Engine::add_packet or to hand it to the differential fuzzer.
Workload materialize_traffic(TrafficSource& source, Step first, Step last);

}  // namespace mr
