# Empty dependencies file for e11_average_case.
# This may be replaced when dependencies are built.
