#include "traffic/steady_state.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <vector>

#include "core/assert.hpp"
#include "core/stats.hpp"
#include "routing/registry.hpp"
#include "topo/registry.hpp"
#include "sim/engine.hpp"
#include "topo/mesh.hpp"
#include "traffic/pump.hpp"

namespace mr {
namespace {

/// Routes each step digest's injection/delivery counters into the phase
/// the step belongs to. Prepare-time events (step 0) count as warmup.
class PhaseAccountant final : public StepObserver {
 public:
  PhaseAccountant(Step warmup_end, Step measure_end, TrafficPhaseStats& warmup,
                  TrafficPhaseStats& measure, TrafficPhaseStats& drain)
      : warmup_end_(warmup_end),
        measure_end_(measure_end),
        warmup_(warmup),
        measure_(measure),
        drain_(drain) {}

  void on_prepare(const Sim& e, const StepDigest& d) override {
    (void)e;
    warmup_.injected += d.injections;
    warmup_.delivered += d.deliveries;
  }
  void on_step(const Sim& e, const StepDigest& d) override {
    (void)e;
    TrafficPhaseStats& phase = d.step <= warmup_end_    ? warmup_
                               : d.step <= measure_end_ ? measure_
                                                        : drain_;
    phase.injected += d.injections;
    phase.delivered += d.deliveries;
  }

 private:
  Step warmup_end_;
  Step measure_end_;
  TrafficPhaseStats& warmup_;
  TrafficPhaseStats& measure_;
  TrafficPhaseStats& drain_;
};

LatencySummary summarize(const Histogram& h) {
  LatencySummary s;
  if (h.total() == 0) return s;
  s.mean = h.mean();
  s.p50 = h.percentile(0.50);
  s.p95 = h.percentile(0.95);
  s.p99 = h.percentile(0.99);
  s.max = h.max();
  return s;
}

}  // namespace

std::unique_ptr<Topology> steady_state_topology(const SteadyStateSpec& spec) {
  if (spec.topology.empty())
    return std::make_unique<Mesh>(spec.width, spec.height, spec.torus);
  return make_topology(spec.topology, spec.width, spec.height);
}

SteadyStateResult run_steady_state(const SteadyStateSpec& spec,
                                   TrafficSource& source) {
  MR_REQUIRE_MSG(spec.width >= 1 && spec.height >= 1,
                 "mesh dimensions must be >= 1");
  MR_REQUIRE_MSG(spec.warmup_steps >= 0, "warmup_steps must be >= 0");
  MR_REQUIRE_MSG(spec.measure_steps >= 1, "measure_steps must be >= 1");
  MR_REQUIRE_MSG(spec.stationarity_windows >= 2,
                 "stationarity needs >= 2 windows");

  const std::unique_ptr<Topology> topo = steady_state_topology(spec);
  const auto nodes = static_cast<std::int64_t>(topo->num_terminals());
  std::unique_ptr<Algorithm> algorithm = make_algorithm(spec.algorithm);

  Engine::Config config;
  config.queue_capacity = spec.queue_capacity;
  config.stall_limit = spec.stall_limit;
  config.stall_counts_pending_injections = true;
  Engine engine(*topo, config, *algorithm);

  const Step warmup_end = spec.warmup_steps;
  const Step inject_end = spec.warmup_steps + spec.measure_steps;
  Step drain_budget = spec.drain_budget;
  if (drain_budget == 0) {
    // Generous for sub-saturation loads (a backlog of a few packets per
    // node plus the mesh diameter), bounded so saturated runs terminate.
    drain_budget = std::max<Step>(1024, 4 * nodes) +
                   4 * static_cast<Step>(spec.width + spec.height);
  }
  const Step max_steps = inject_end + drain_budget;

  SteadyStateResult r;
  PhaseAccountant accountant(warmup_end, inject_end, r.warmup, r.measure,
                             r.drain);
  engine.add_observer(static_cast<StepObserver*>(&accountant));

  TrafficPump pump(engine, source, inject_end, spec.pump_ahead);
  pump.prime();
  engine.prepare();
  const Step last = run_to_drain(engine, pump, max_steps);

  r.steps = last;
  r.stalled = engine.stalled();
  r.drained = engine.all_delivered() && pump.exhausted();
  r.max_queue = engine.max_occupancy_seen();
  r.total_moves = engine.total_moves();
  r.total_offered = pump.offered();
  r.total_delivered = static_cast<std::int64_t>(engine.delivered_count());
  r.backlog_end = static_cast<std::int64_t>(engine.num_packets()) -
                  r.total_delivered;

  r.warmup.steps = std::min(last, warmup_end);
  r.measure.steps = std::clamp<Step>(last - warmup_end, 0, spec.measure_steps);
  r.drain.steps = std::max<Step>(last - inject_end, 0);
  r.warmup.offered = pump.offered_between(1, warmup_end);
  r.measure.offered = pump.offered_between(warmup_end + 1, inject_end);
  r.drain.offered = 0;  // the source never injects past inject_end

  if (r.measure.steps > 0) {
    const double denom =
        static_cast<double>(nodes) * static_cast<double>(r.measure.steps);
    r.offered_rate = static_cast<double>(r.measure.offered) / denom;
    r.accepted_rate = static_cast<double>(r.measure.delivered) / denom;
  }

  // Latency and stationarity over the packets offered during the
  // measurement phase. Windows partition the phase by injection step, so
  // a still-filling network shows up as later windows with higher means.
  Histogram latency;
  const int windows = spec.stationarity_windows;
  const Step window_width =
      std::max<Step>(1, (spec.measure_steps + windows - 1) / windows);
  std::vector<RunningStat> window_latency(static_cast<std::size_t>(windows));
  for (const Packet& p : engine.all_packets()) {
    if (p.injected_at <= warmup_end || p.injected_at > inject_end) continue;
    ++r.measured_packets;
    if (!p.delivered()) continue;
    ++r.measured_delivered;
    const auto lat = static_cast<std::int64_t>(p.delivered_at - p.injected_at);
    latency.add(lat);
    const auto w = static_cast<std::size_t>(
        std::min<Step>((p.injected_at - warmup_end - 1) / window_width,
                       windows - 1));
    window_latency[w].add(static_cast<double>(lat));
  }
  r.latency = summarize(latency);

  const bool measure_complete = r.measure.steps == spec.measure_steps;
  bool windows_populated = true;
  for (const RunningStat& w : window_latency)
    if (w.count() == 0) windows_populated = false;
  if (measure_complete && windows_populated && latency.total() > 0) {
    const int half = windows / 2;
    double first = 0, second = 0;
    std::int64_t first_n = 0, second_n = 0;
    for (int i = 0; i < half; ++i) {
      first += window_latency[static_cast<std::size_t>(i)].sum();
      first_n += window_latency[static_cast<std::size_t>(i)].count();
    }
    for (int i = windows - half; i < windows; ++i) {
      second += window_latency[static_cast<std::size_t>(i)].sum();
      second_n += window_latency[static_cast<std::size_t>(i)].count();
    }
    const double mean_first = first / static_cast<double>(first_n);
    const double mean_second = second / static_cast<double>(second_n);
    const double overall = latency.mean();
    r.stationarity_drift =
        overall > 0 ? std::abs(mean_second - mean_first) / overall : 0;
    r.stationary = r.stationarity_drift <= spec.stationarity_tolerance;
  }

  return r;
}

SteadyStateResult run_steady_state(const SteadyStateSpec& spec) {
  const std::unique_ptr<Topology> topo = steady_state_topology(spec);
  BernoulliSource source(*topo, spec.traffic);
  return run_steady_state(spec, source);
}

}  // namespace mr
