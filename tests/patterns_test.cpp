#include <gtest/gtest.h>

#include "harness/runner.hpp"
#include "topo/mesh.hpp"
#include "workload/patterns.hpp"

namespace mr {
namespace {

TEST(Patterns, RowToColumnShape) {
  const Mesh mesh = Mesh::square(10);
  const Workload w = row_to_column(mesh, 0, 5);
  EXPECT_EQ(w.size(), 10u);
  EXPECT_TRUE(is_partial_permutation(mesh, w));
  for (const Demand& d : w) {
    EXPECT_EQ(mesh.coord_of(d.source).row, 0);
    EXPECT_EQ(mesh.coord_of(d.dest).col, 5);
  }
}

TEST(Patterns, CornerFloodMirrors) {
  const Mesh mesh = Mesh::square(12);
  const Workload w = corner_flood(mesh, 4, 3);
  EXPECT_EQ(w.size(), 12u);
  EXPECT_TRUE(is_partial_permutation(mesh, w));
  for (const Demand& d : w) {
    const Coord s = mesh.coord_of(d.source);
    const Coord t = mesh.coord_of(d.dest);
    EXPECT_EQ(t.col, 11 - s.col);
    EXPECT_EQ(t.row, 11 - s.row);
    EXPECT_LT(s.col, 4);
    EXPECT_LT(s.row, 3);
  }
}

TEST(Patterns, NortheastOnlyFilters) {
  const Mesh mesh = Mesh::square(10);
  const Workload filtered =
      northeast_only(mesh, random_permutation(mesh, 3));
  EXPECT_FALSE(filtered.empty());
  EXPECT_LT(filtered.size(), 100u);
  for (const Demand& d : filtered) {
    const Coord s = mesh.coord_of(d.source);
    const Coord t = mesh.coord_of(d.dest);
    EXPECT_GE(t.col, s.col);
    EXPECT_GE(t.row, s.row);
  }
}

TEST(Patterns, NortheastTrafficNeverDeadlocksAtK1) {
  // The acyclic-blocking property that justifies the monotone test loads:
  // every central-queue router drains NE-only traffic even at k = 1.
  const Mesh mesh = Mesh::square(12);
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    const Workload w = northeast_only(mesh, random_permutation(mesh, seed));
    RunSpec spec;
    spec.width = spec.height = 12;
    spec.queue_capacity = 1;
    spec.algorithm = "dimension-order";
    const RunResult r = run_workload(spec, w);
    EXPECT_TRUE(r.all_delivered) << "seed " << seed;
  }
}

TEST(Patterns, HalfTransposeIsSoutheastOnly) {
  const Mesh mesh = Mesh::square(9);
  const Workload w = half_transpose(mesh);
  EXPECT_EQ(w.size(), 9u * 8u / 2u);
  for (const Demand& d : w) {
    const Coord s = mesh.coord_of(d.source);
    const Coord t = mesh.coord_of(d.dest);
    EXPECT_GT(t.col, s.col);
    EXPECT_LT(t.row, s.row);
  }
}

TEST(Patterns, HotspotConverges) {
  const Mesh mesh = Mesh::square(10);
  const NodeId sink = mesh.id_of(1, 1);
  const Workload w = hotspot(mesh, sink, 12);
  EXPECT_EQ(w.size(), 12u);
  for (const Demand& d : w) {
    EXPECT_EQ(d.dest, sink);
    // Sources are among the farthest nodes: distance >= some healthy bound.
    EXPECT_GE(mesh.distance(d.source, sink), 12);
  }
  EXPECT_TRUE(is_hh(mesh, w, 12));
  EXPECT_FALSE(is_hh(mesh, w, 11));
}

TEST(Patterns, HotspotRoutesUnderBoundedRouter) {
  const Mesh mesh = Mesh::square(10);
  RunSpec spec;
  spec.width = spec.height = 10;
  spec.queue_capacity = 2;
  spec.algorithm = "bounded-dimension-order";
  const RunResult r = run_workload(spec, hotspot(mesh, mesh.id_of(0, 0), 20));
  EXPECT_TRUE(r.all_delivered);
  // The sink absorbs one packet per inlink per step; 20 packets through at
  // most 2 live inlinks of the corner finish in >= 10 steps.
  EXPECT_GE(r.steps, 10);
}

TEST(Patterns, DiagonalShiftIsFullPermutation) {
  const Mesh mesh = Mesh::square(8);
  const Workload w = diagonal_shift(mesh, 3);
  EXPECT_EQ(w.size(), 64u);
  EXPECT_TRUE(is_partial_permutation(mesh, w));
  EXPECT_EQ(w[mesh.id_of(7, 7)].dest, mesh.id_of(2, 2));
}

TEST(Patterns, BadArgumentsThrow) {
  const Mesh mesh = Mesh::square(6);
  EXPECT_THROW(row_to_column(mesh, 9, 0), InvariantViolation);
  EXPECT_THROW(corner_flood(mesh, 0, 3), InvariantViolation);
  EXPECT_THROW(hotspot(mesh, 99, 3), InvariantViolation);
  EXPECT_THROW(hotspot(mesh, 0, 36), InvariantViolation);
}

}  // namespace
}  // namespace mr
