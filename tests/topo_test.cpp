#include <gtest/gtest.h>

#include "topo/mesh.hpp"

namespace mr {
namespace {

TEST(Mesh, IdCoordRoundTrip) {
  const Mesh m(7, 5);
  for (NodeId id = 0; id < m.num_nodes(); ++id)
    EXPECT_EQ(m.id_of(m.coord_of(id)), id);
}

TEST(Mesh, NeighborsOnEdges) {
  const Mesh m = Mesh::square(4);
  const NodeId sw = m.id_of(0, 0);
  EXPECT_EQ(m.neighbor(sw, Dir::West), kInvalidNode);
  EXPECT_EQ(m.neighbor(sw, Dir::South), kInvalidNode);
  EXPECT_EQ(m.neighbor(sw, Dir::East), m.id_of(1, 0));
  EXPECT_EQ(m.neighbor(sw, Dir::North), m.id_of(0, 1));
  const NodeId ne = m.id_of(3, 3);
  EXPECT_EQ(m.neighbor(ne, Dir::East), kInvalidNode);
  EXPECT_EQ(m.neighbor(ne, Dir::North), kInvalidNode);
}

TEST(Mesh, TorusWraps) {
  const Mesh t = Mesh::square(4, /*torus=*/true);
  EXPECT_EQ(t.neighbor(t.id_of(0, 0), Dir::West), t.id_of(3, 0));
  EXPECT_EQ(t.neighbor(t.id_of(0, 0), Dir::South), t.id_of(0, 3));
  EXPECT_EQ(t.neighbor(t.id_of(3, 2), Dir::East), t.id_of(0, 2));
  EXPECT_EQ(t.neighbor(t.id_of(1, 3), Dir::North), t.id_of(1, 0));
}

TEST(Mesh, L1Distance) {
  const Mesh m = Mesh::square(8);
  EXPECT_EQ(m.distance(m.id_of(0, 0), m.id_of(7, 7)), 14);
  EXPECT_EQ(m.distance(m.id_of(3, 4), m.id_of(3, 4)), 0);
  EXPECT_EQ(m.distance(m.id_of(2, 5), m.id_of(6, 1)), 8);
}

TEST(Mesh, TorusDistanceUsesWrap) {
  const Mesh t = Mesh::square(8, true);
  EXPECT_EQ(t.distance(t.id_of(0, 0), t.id_of(7, 0)), 1);
  EXPECT_EQ(t.distance(t.id_of(0, 0), t.id_of(6, 7)), 3);
  EXPECT_EQ(t.distance(t.id_of(1, 1), t.id_of(5, 5)), 8);  // both ways tie
}

TEST(Mesh, ProfitableDirsMesh) {
  const Mesh m = Mesh::square(8);
  const NodeId from = m.id_of(3, 3);
  EXPECT_EQ(m.profitable_dirs(from, m.id_of(5, 6)),
            dir_bit(Dir::East) | dir_bit(Dir::North));
  EXPECT_EQ(m.profitable_dirs(from, m.id_of(1, 3)), dir_bit(Dir::West));
  EXPECT_EQ(m.profitable_dirs(from, m.id_of(3, 0)), dir_bit(Dir::South));
  EXPECT_EQ(m.profitable_dirs(from, from), DirMask{0});
}

TEST(Mesh, ProfitableDirsTorusTie) {
  const Mesh t = Mesh::square(8, true);
  // Column displacement of exactly 4 on an 8-torus: both E and W profitable.
  const DirMask m = t.profitable_dirs(t.id_of(0, 0), t.id_of(4, 0));
  EXPECT_TRUE(mask_has(m, Dir::East));
  EXPECT_TRUE(mask_has(m, Dir::West));
  EXPECT_FALSE(mask_has(m, Dir::North));
}

TEST(Mesh, ProfitableMovesReduceDistance) {
  const Mesh m = Mesh::square(6);
  const Mesh t = Mesh::square(6, true);
  for (const Mesh* mesh : {&m, &t}) {
    for (NodeId a = 0; a < mesh->num_nodes(); ++a) {
      for (NodeId b = 0; b < mesh->num_nodes(); ++b) {
        const DirMask mask = mesh->profitable_dirs(a, b);
        for (Dir d : kAllDirs) {
          const NodeId nb = mesh->neighbor(a, d);
          if (nb == kInvalidNode) {
            EXPECT_FALSE(mask_has(mask, d));
            continue;
          }
          if (mask_has(mask, d)) {
            EXPECT_EQ(mesh->distance(nb, b), mesh->distance(a, b) - 1);
          } else {
            EXPECT_GE(mesh->distance(nb, b), mesh->distance(a, b));
          }
        }
      }
    }
  }
}

TEST(Mesh, RejectsBadDimensions) {
  EXPECT_THROW(Mesh(0, 5), InvariantViolation);
  EXPECT_THROW(Mesh(5, -1), InvariantViolation);
}

// Exhaustive wrap-tie contract on an even-dimension torus: a displacement
// of exactly dim/2 ties (both ways equally short), the tie flag is set,
// the reported offset is the POSITIVE direction, and both opposite
// directions are profitable. Everything else must not tie.
void check_wrap_ties(const Mesh& t) {
  const std::int32_t w = t.width(), h = t.height();
  for (NodeId a = 0; a < t.num_nodes(); ++a) {
    for (NodeId b = 0; b < t.num_nodes(); ++b) {
      const Coord ca = t.coord_of(a), cb = t.coord_of(b);
      const std::int32_t fwd_col = ((cb.col - ca.col) % w + w) % w;
      const std::int32_t fwd_row = ((cb.row - ca.row) % h + h) % h;
      const bool col_tie = w % 2 == 0 && fwd_col == w / 2;
      const bool row_tie = h % 2 == 0 && fwd_row == h / 2;
      const Mesh::Delta d = t.delta(a, b);
      EXPECT_EQ(d.east_tie, col_tie) << a << "->" << b;
      EXPECT_EQ(d.north_tie, row_tie) << a << "->" << b;
      const DirMask mask = t.profitable_dirs(a, b);
      if (col_tie) {
        EXPECT_EQ(d.east, w / 2) << "tie must report the positive offset";
        EXPECT_TRUE(mask_has(mask, Dir::East));
        EXPECT_TRUE(mask_has(mask, Dir::West));
      }
      if (row_tie) {
        EXPECT_EQ(d.north, h / 2) << "tie must report the positive offset";
        EXPECT_TRUE(mask_has(mask, Dir::North));
        EXPECT_TRUE(mask_has(mask, Dir::South));
      }
      // Tie or not, the offset magnitude is the wrap distance component.
      EXPECT_EQ(std::abs(d.east), fwd_col <= w - fwd_col ? fwd_col
                                                         : w - fwd_col);
      EXPECT_EQ(std::abs(d.north), fwd_row <= h - fwd_row ? fwd_row
                                                          : h - fwd_row);
    }
  }
}

TEST(Mesh, TorusWrapTiesExhaustiveSquare) {
  check_wrap_ties(Mesh::square(8, /*torus=*/true));
}

TEST(Mesh, TorusWrapTiesExhaustiveNonSquare) {
  check_wrap_ties(Mesh(6, 10, /*torus=*/true));
  check_wrap_ties(Mesh(10, 4, /*torus=*/true));
}

TEST(Mesh, OddTorusNeverTies) {
  const Mesh t(5, 7, /*torus=*/true);
  for (NodeId a = 0; a < t.num_nodes(); ++a)
    for (NodeId b = 0; b < t.num_nodes(); ++b) {
      const Mesh::Delta d = t.delta(a, b);
      EXPECT_FALSE(d.east_tie);
      EXPECT_FALSE(d.north_tie);
    }
}

TEST(Mesh, FlatMeshNeverTies) {
  const Mesh m = Mesh::square(8);
  for (NodeId a = 0; a < m.num_nodes(); ++a)
    for (NodeId b = 0; b < m.num_nodes(); ++b) {
      const Mesh::Delta d = m.delta(a, b);
      EXPECT_FALSE(d.east_tie);
      EXPECT_FALSE(d.north_tie);
    }
}

}  // namespace
}  // namespace mr
