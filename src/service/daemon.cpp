#include "service/daemon.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <filesystem>
#include <sstream>
#include <utility>

#include "core/json_min.hpp"
#include "harness/checkpoint.hpp"
#include "service/protocol.hpp"
#include "sim/snapshot.hpp"

namespace mr {
namespace {

std::string error_reply(const std::string& message) {
  return "{\"ok\": false, \"error\": \"" + json::escape(message) + "\"}";
}

}  // namespace

Daemon::Daemon(DaemonOptions options) : options_(std::move(options)) {
  if (options_.lanes < 1) options_.lanes = 1;
  if (options_.work_dir.empty())
    options_.work_dir = options_.socket_path + ".work";
}

Daemon::~Daemon() {
  stop();
  if (accept_thread_.joinable()) wait();
}

bool Daemon::start(std::string* error) {
  std::error_code ec;
  std::filesystem::create_directories(options_.work_dir, ec);
  if (ec) {
    *error = "cannot create work dir " + options_.work_dir + ": " + ec.message();
    return false;
  }
  listen_fd_ = listen_unix(options_.socket_path, error);
  if (listen_fd_ < 0) return false;

  pool_ = std::make_unique<WorkerPool>(options_.lanes);
  driver_thread_ = std::thread([this] { drive_lanes(); });
  accept_thread_ = std::thread([this] { accept_loop(); });
  return true;
}

void Daemon::stop() {
  if (stopping_.exchange(true)) return;
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    queue_closed_ = true;
  }
  queue_cv_.notify_all();
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
}

void Daemon::wait() {
  if (accept_thread_.joinable()) accept_thread_.join();
  // Lanes drain every already-queued job before exiting; result frames for
  // in-flight jobs are flushed before readers are torn down below.
  if (driver_thread_.joinable()) driver_thread_.join();
  {
    // Wake readers blocked in read_frame so they can exit.
    std::lock_guard<std::mutex> lock(readers_mutex_);
    for (const std::shared_ptr<Connection>& conn : connections_)
      if (conn->open.load()) ::shutdown(conn->fd, SHUT_RDWR);
  }
  std::vector<std::thread> readers;
  {
    std::lock_guard<std::mutex> lock(readers_mutex_);
    readers.swap(readers_);
  }
  for (std::thread& t : readers)
    if (t.joinable()) t.join();
  {
    std::lock_guard<std::mutex> lock(readers_mutex_);
    for (const std::shared_ptr<Connection>& conn : connections_)
      if (conn->fd >= 0) ::close(conn->fd);
    connections_.clear();
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    ::unlink(options_.socket_path.c_str());
  }
}

void Daemon::accept_loop() {
  while (!stopping_.load()) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, 200);
    if (ready <= 0) continue;  // timeout or EINTR: re-check stopping_
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;  // racing shutdown() surfaces as an error here
    auto conn = std::make_shared<Connection>();
    conn->fd = fd;
    std::lock_guard<std::mutex> lock(readers_mutex_);
    if (stopping_.load()) {
      ::close(fd);
      return;
    }
    connections_.push_back(conn);
    readers_.emplace_back([this, conn] { reader_loop(conn); });
  }
}

void Daemon::reader_loop(std::shared_ptr<Connection> conn) {
  std::string payload, error;
  while (!stopping_.load() && read_frame(conn->fd, &payload, &error))
    handle_request(conn, payload);
  // EOF, a read error, or shutdown: no more requests. Lanes may still be
  // streaming this connection's job frames, so only mark it; the fd is
  // closed centrally in wait().
  conn->open.store(false);
}

void Daemon::handle_request(const std::shared_ptr<Connection>& conn,
                            const std::string& payload) {
  std::string parse_error;
  const std::optional<json::Value> doc = json::parse(payload, &parse_error);
  if (!doc || !doc->is_object()) {
    send_to(conn, error_reply("malformed request: " + parse_error));
    return;
  }
  const json::Value* op = doc->find("op");
  if (!op || !op->is_string()) {
    send_to(conn, error_reply("missing \"op\""));
    return;
  }

  if (op->string == "ping") {
    send_to(conn, "{\"ok\": true}");
    return;
  }
  if (op->string == "shutdown") {
    send_to(conn, "{\"ok\": true}");
    stop();
    return;
  }
  if (op->string != "submit") {
    send_to(conn, error_reply("unknown op \"" + op->string + "\""));
    return;
  }

  const json::Value* job = doc->find("job");
  if (!job) {
    send_to(conn, error_reply("submit without \"job\""));
    return;
  }
  QueuedJob queued;
  std::string spec_error;
  if (!parse_job_spec(*job, &queued.spec, &spec_error)) {
    send_to(conn, error_reply(spec_error));
    return;
  }
  queued.id = next_job_id_.fetch_add(1);
  queued.conn = conn;
  if (queued.spec.slug.empty())
    queued.spec.slug = "job" + std::to_string(queued.id);

  // Ack before enqueueing so the client always sees the submit reply ahead
  // of the job's own frames.
  send_to(conn, "{\"ok\": true, \"job\": " + std::to_string(queued.id) + "}");
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    if (queue_closed_) {
      send_to(conn, error_reply("daemon is shutting down"));
      return;
    }
    queue_.push_back(std::move(queued));
  }
  queue_cv_.notify_one();
}

void Daemon::drive_lanes() {
  pool_->run(options_.lanes, [this](std::size_t) {
    for (;;) {
      QueuedJob job;
      {
        std::unique_lock<std::mutex> lock(queue_mutex_);
        queue_cv_.wait(lock,
                       [this] { return !queue_.empty() || queue_closed_; });
        if (queue_.empty()) return;  // closed and drained
        job = std::move(queue_.front());
        queue_.pop_front();
      }
      run_job(job);
    }
  });
}

void Daemon::run_job(const QueuedJob& job) {
  const std::string tag = "{\"job\": " + std::to_string(job.id);
  try {
    const RunResult result = execute_job(job.spec, options_.work_dir);
    std::string jsonl;
    if (!result.telemetry_path.empty() &&
        read_text_file(result.telemetry_path, &jsonl)) {
      std::istringstream lines(jsonl);
      std::string line;
      while (std::getline(lines, line)) {
        if (line.empty()) continue;
        send_to(job.conn, tag + ", \"kind\": \"telemetry\", \"line\": \"" +
                              json::escape(line) + "\"}");
      }
    }
    std::string result_json = run_result_to_json(result);
    while (!result_json.empty() && result_json.back() == '\n')
      result_json.pop_back();
    send_to(job.conn, tag + ", \"kind\": \"result\", \"result\": " +
                          result_json + "}");
  } catch (const std::exception& e) {
    send_to(job.conn,
            tag + ", \"kind\": \"error\", \"error\": \"" +
                json::escape(e.what()) + "\"}");
  }
  jobs_completed_.fetch_add(1);
}

void Daemon::send_to(const std::shared_ptr<Connection>& conn,
                     const std::string& payload) {
  if (!conn->open.load()) return;
  std::lock_guard<std::mutex> lock(conn->write_mutex);
  std::string error;
  if (!write_frame(conn->fd, payload, &error)) conn->open.store(false);
}

}  // namespace mr
