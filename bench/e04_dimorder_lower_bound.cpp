// E04 — §5 "Dimension Order Routing": the Ω(n²/k) lower bound for
// destination-exchangeable dimension-order routers, including Theorem 15's
// bounded-queue router (whose four inlink queues of size k buffer 4k per
// node, so its construction is sized with k_model = 4k).
//
// measured·k/n² staying bounded away from 0 as n grows is the Ω(n²/k)
// signature; paired with E08 this exhibits the paper's tight Θ(n²/k).
#include "lower_bound/dim_order_construction.hpp"
#include "routing/registry.hpp"
#include "scenarios.hpp"

namespace mr::scenarios {

void register_e04(ScenarioRegistry& registry) {
  ScenarioSpec spec;
  spec.id = "E04";
  spec.label = "dimorder-lower-bound";
  spec.title = "dimension-order lower bound";
  spec.paper_ref = "§5 'Dimension Order Routing', Figure 4 (left)";
  spec.body = [](ScenarioReport& ctx) {
    std::vector<std::pair<int, int>> sizes = {{60, 1}, {120, 1}, {216, 1},
                                              {120, 2}, {216, 2}, {216, 4}};
    if (ctx.scale() == Scale::Small) sizes = {{60, 1}, {120, 1}};
    if (ctx.scale() == Scale::Large) sizes.push_back({432, 1});

    Table table({"router", "n", "k", "k_model", "classes", "certified",
                 "measured", "cert*k/n^2", "meas*k/n^2", "replay ok"});

    struct Case {
      std::string router;
      int model_factor;  // per-node buffering per unit of k
    };
    const std::vector<Case> cases = {{"dimension-order", 1},
                                     {"bounded-dimension-order", 4}};
    bool all_ok = true;
    for (const Case& c : cases) {
      for (const auto& [n, k] : sizes) {
        const int k_model = c.model_factor * k;
        const DimOrderLbParams par = dim_order_lb_params(n, k_model);
        if (!par.valid) continue;
        const Mesh mesh = Mesh::square(n);
        DimOrderConstruction construction(mesh, par);
        const auto r = construction.verify_replay(c.router, k);
        const double n2k = double(n) * n / double(k);
        const bool ok = r.stepwise_match && r.final_match &&
                        r.undelivered_at_certified >= 1;
        all_ok = all_ok && ok;
        table.row()
            .add(c.router)
            .add(n)
            .add(k)
            .add(k_model)
            .add(par.classes)
            .add(par.certified_steps)
            .add(r.replay_total_steps)
            .add(double(par.certified_steps) / n2k, 4)
            .add(double(r.replay_total_steps) / n2k, 4)
            .add(ok ? "yes" : "NO");
      }
    }
    ctx.table(table);
    ctx.check("lemma12-replay-and-undelivered-packet", all_ok);
  };
  registry.add(std::move(spec));
}

}  // namespace mr::scenarios
