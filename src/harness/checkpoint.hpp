// Durable run records for the checkpoint store (meshroute-run/1).
//
// A finished run's RunResult is persisted as <key>.done.json so a resumed
// sweep can short-circuit completed runs without re-executing them. The
// record must round-trip bit-exactly — the crash-resume CI job diffs a
// resumed sweep's final JSON against an uninterrupted run's — so doubles
// are written with %.17g (enough digits to reproduce any IEEE double).
#pragma once

#include <string>

#include "harness/runner.hpp"

namespace mr {

/// Serializes `result` as a one-object meshroute-run/1 JSON document.
std::string run_result_to_json(const RunResult& result);

/// Parses a meshroute-run/1 document. Returns false (with a message in
/// *error when non-null) on malformed input; *result is untouched then.
bool run_result_from_json(const std::string& text, RunResult* result,
                          std::string* error);

/// Formats a double with enough precision to round-trip exactly
/// (%.17g). Shared by every checkpoint-grade JSON writer.
std::string exact_double(double v);

}  // namespace mr
