file(REMOVE_RECURSE
  "CMakeFiles/e12_algorithm_matrix.dir/e12_algorithm_matrix.cpp.o"
  "CMakeFiles/e12_algorithm_matrix.dir/e12_algorithm_matrix.cpp.o.d"
  "e12_algorithm_matrix"
  "e12_algorithm_matrix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e12_algorithm_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
