// Timed link/node fault schedules for the step engines.
//
// A FaultSchedule is a list of down/up windows over mesh elements: a node
// fault freezes the node (its packets cannot move, neighbours cannot send
// to it, its source cannot inject) and a link fault removes one
// bidirectional link. Engines re-derive the availability state from
// (schedule, step) at every window boundary — the schedule itself is the
// only state, so snapshot restore needs no extra wire format: the harness
// re-installs the schedule and the engine recomputes availability for the
// restored step.
//
// Semantics are reroute-or-stall (cf. the fault-tolerant adaptive routing
// literature): minimal algorithms see the masked Sim::profitable_mask and
// route around the fault when an alternative profitable link survives;
// when none does the packet waits in place, and a fault window longer than
// the engine's stall limit reads as a stall. The §2 queue-bound and
// minimality invariants must hold on the surviving topology, which the
// oracles check unchanged (the masked mask is a subset of the topology
// mask).
#pragma once

#include <limits>
#include <string>
#include <vector>

#include "core/types.hpp"

namespace mr {

class Topology;

/// up_at value meaning the element never comes back up.
inline constexpr Step kStepNever = std::numeric_limits<Step>::max();

/// One down/up window: the element is unavailable for every step t with
/// down_at <= t < up_at.
struct FaultEvent {
  enum class Kind : std::uint8_t { Node, Link };
  Kind kind = Kind::Link;
  /// The faulty node, or the tail node of the faulty link.
  NodeId node = kInvalidNode;
  /// Link faults only: the outgoing direction at `node`. The link is
  /// removed in both directions.
  Dir dir = Dir::North;
  Step down_at = 1;
  Step up_at = kStepNever;
};

/// A batch of fault windows, applied independently (windows may overlap).
struct FaultSchedule {
  std::vector<FaultEvent> events;

  bool empty() const { return events.empty(); }
  /// True when at least one window covers step t.
  bool active_at(Step t) const;
  /// True when a node fault window over u covers step t (link faults do
  /// not take the node down). Offline mirror of the engines' injection
  /// deferral, for trace replay and other post-hoc checks.
  bool node_down_at(NodeId u, Step t) const;
  /// Number of window boundaries (down_at or finite up_at) at or before
  /// step t. Monotone in t; equal epochs imply an identical active set,
  /// so engines rebuild availability only when the epoch moves.
  std::int64_t epoch_at(Step t) const;
};

/// Parses "node:<id>@<down>[-<up>]" / "link:<node>:<N|E|S|W>@<down>[-<up>]"
/// events, comma-separated; an omitted <up> means the element never
/// recovers. Structural and range validation only (down >= 1, up > down);
/// node ids are validated against a topology by validate_fault_schedule.
bool parse_fault_schedule(const std::string& text, FaultSchedule* out,
                          std::string* error = nullptr);
/// Canonical spelling of the grammar above; parse(format(s)) == s.
std::string format_fault_schedule(const FaultSchedule& schedule);

/// Checks every event against `topo` (node id in range; link direction
/// exists). Returns "" when valid, else a description of the first
/// offending event.
std::string validate_fault_schedule(const FaultSchedule& schedule,
                                    const Topology& topo);

}  // namespace mr
