#include "sim/sim.hpp"

#include "sim/algorithm.hpp"

namespace mr {

namespace {
// 64-bit FNV-1a, used for configuration fingerprints.
struct Fnv {
  std::uint64_t h = 14695981039346656037ULL;
  void mix(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xFF;
      h *= 1099511628211ULL;
    }
  }
};
}  // namespace

Sim::Sim(const Topology& topo, int queue_capacity, QueueLayout layout,
         bool masks_cached)
    : topo_(topo.clone()),
      num_nodes_(topo.num_nodes()),
      topo_width_(topo.width()),
      topo_height_(topo.height()),
      wraps_(topo.is_torus()),
      queue_capacity_(queue_capacity),
      layout_(layout),
      masks_cached_(masks_cached) {
  MR_REQUIRE_MSG(queue_capacity_ >= 1,
                 "queue capacity k must be positive, got " << queue_capacity_);
  const auto n = static_cast<std::size_t>(num_nodes_);
  // Slab stride: full layout capacity plus one arrival per inlink of
  // transient headroom (phase (d) inserts before the capacity check runs).
  const std::int32_t per_node =
      layout_ == QueueLayout::PerInlink ? queue_capacity_ * kNumDirs
                                        : queue_capacity_;
  node_packets_.reset(n, per_node + kNumDirs);
  node_state_.assign(n, 0);
}

Sim::~Sim() = default;

void Sim::add_observer(StepObserver* observer) {
  MR_REQUIRE(observer != nullptr);
  observers_.push_back(observer);
}

void Sim::add_observer(Observer* observer) {
  MR_REQUIRE(observer != nullptr);
  adapters_.push_back(std::make_unique<LegacyObserverAdapter>(observer));
  observers_.push_back(adapters_.back().get());
}

PacketId Sim::register_packet(NodeId source, NodeId dest, Step injected_at) {
  MR_REQUIRE(source >= 0 && source < num_nodes_);
  MR_REQUIRE(dest >= 0 && dest < num_nodes_);
  MR_REQUIRE(injected_at >= 0);
  Packet pk;
  pk.id = static_cast<PacketId>(packets_.size());
  pk.source = source;
  pk.dest = dest;
  pk.injected_at = injected_at;
  packets_.push_back(pk);
  return pk.id;
}

void Sim::set_fault_schedule(FaultSchedule schedule) {
  const std::string error = validate_fault_schedule(schedule, *topo_);
  MR_REQUIRE_MSG(error.empty(), error);
  fault_schedule_ = std::move(schedule);
  fault_epoch_ = -1;
  faults_active_ = false;
}

DirMask Sim::available_mask(NodeId u) const {
  if (faults_active_) return fault_avail_[static_cast<std::size_t>(u)];
  DirMask m = 0;
  for (Dir d : kAllDirs)
    if (topo_->neighbor(u, d) != kInvalidNode) m |= dir_bit(d);
  return m;
}

void Sim::apply_faults(Step t) {
  if (fault_schedule_.empty()) return;
  const std::int64_t epoch = fault_schedule_.epoch_at(t);
  if (epoch == fault_epoch_) return;
  fault_epoch_ = epoch;
  const auto n = static_cast<std::size_t>(num_nodes_);
  node_down_.assign(n, 0);
  // Down outlink bits per node; a link fault removes both directions.
  std::vector<DirMask> link_down(n, 0);
  faults_active_ = false;
  for (const FaultEvent& e : fault_schedule_.events) {
    if (!(e.down_at <= t && t < e.up_at)) continue;
    faults_active_ = true;
    if (e.kind == FaultEvent::Kind::Node) {
      node_down_[static_cast<std::size_t>(e.node)] = 1;
    } else {
      link_down[static_cast<std::size_t>(e.node)] |= dir_bit(e.dir);
      const NodeId v = topo_->neighbor(e.node, e.dir);
      if (v != kInvalidNode)
        link_down[static_cast<std::size_t>(v)] |= dir_bit(opposite(e.dir));
    }
  }
  if (!faults_active_) {
    fault_avail_.clear();
    return;
  }
  fault_avail_.assign(n, 0);
  for (NodeId u = 0; u < num_nodes_; ++u) {
    if (node_down_[static_cast<std::size_t>(u)]) continue;
    DirMask m = 0;
    for (Dir d : kAllDirs) {
      const NodeId v = topo_->neighbor(u, d);
      if (v == kInvalidNode || node_down_[static_cast<std::size_t>(v)] ||
          mask_has(link_down[static_cast<std::size_t>(u)], d))
        continue;
      m |= dir_bit(d);
    }
    fault_avail_[static_cast<std::size_t>(u)] = m;
  }
}

std::uint64_t Sim::fingerprint(bool include_dest) const {
  Fnv f;
  for (NodeId u = 0; u < num_nodes_; ++u) {
    const std::span<const PacketId> q = node_packets_.at(u);
    if (q.empty() && node_state_[u] == 0) continue;
    f.mix(static_cast<std::uint64_t>(u));
    f.mix(node_state_[u]);
    for (PacketId p : q) {
      const Packet& pk = packets_[p];
      f.mix(static_cast<std::uint64_t>(pk.id));
      f.mix(static_cast<std::uint64_t>(pk.source));
      if (include_dest) f.mix(static_cast<std::uint64_t>(pk.dest));
      f.mix(pk.state);
      f.mix(pk.queue);
      f.mix(pk.arrival_inlink);
      f.mix(static_cast<std::uint64_t>(pk.arrived_at));
    }
  }
  return f.h;
}

void LegacyObserverAdapter::on_prepare(const Sim& e, const StepDigest& d) {
  for (PacketId p : d.injected_deliveries) legacy_->on_deliver(e, e.packet(p));
  legacy_->on_prepare_end(e);
}

void LegacyObserverAdapter::on_step(const Sim& e, const StepDigest& d) {
  for (PacketId p : d.injected_deliveries) legacy_->on_deliver(e, e.packet(p));
  for (const MoveRecord& m : d.moves) {
    const Packet& pk = e.packet(m.packet);
    legacy_->on_move(e, pk, m.from, m.to);
    if (m.delivered) legacy_->on_deliver(e, pk);
  }
  legacy_->on_step_end(e);
}

}  // namespace mr
