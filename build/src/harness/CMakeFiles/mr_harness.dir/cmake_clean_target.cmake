file(REMOVE_RECURSE
  "libmr_harness.a"
)
