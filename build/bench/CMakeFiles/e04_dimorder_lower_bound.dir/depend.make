# Empty dependencies file for e04_dimorder_lower_bound.
# This may be replaced when dependencies are built.
