// End-to-end checks of the lower-bound constructions (paper §3–§5) at
// test-friendly sizes. The online Lemma 1–8 checkers throw on violation,
// so a passing run already certifies the invariants; these tests assert
// the headline claims: Lemma 12 replay equivalence and Theorem 13's
// undelivered packet at step ⌊l⌋·dn.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "lower_bound/dim_order_construction.hpp"
#include "lower_bound/factory.hpp"
#include "lower_bound/farthest_first_construction.hpp"
#include "lower_bound/main_construction.hpp"
#include "routing/registry.hpp"

namespace mr {
namespace {

TEST(MainPlacement, SatisfiesInitialArrangement) {
  const MainLbParams par = main_lb_params(120, 1);
  ASSERT_TRUE(par.valid);
  const Mesh mesh = Mesh::square(120);
  MainConstruction construction(mesh, par);
  const Workload w = construction.placement();
  EXPECT_EQ(w.size(), static_cast<std::size_t>(2 * par.p * par.classes));
  EXPECT_TRUE(is_partial_permutation(mesh, w));

  const MainGeometry& geo = construction.geometry();
  std::set<NodeId> occupied;
  std::vector<std::int64_t> per_class_n(par.classes + 1, 0);
  std::vector<std::int64_t> per_class_e(par.classes + 1, 0);
  for (const Demand& d : w) {
    EXPECT_TRUE(occupied.insert(d.source).second) << "one packet per node";
    const Coord src = mesh.coord_of(d.source);
    const Coord dst = mesh.coord_of(d.dest);
    EXPECT_TRUE(geo.in_box(src, 1)) << "all class packets start in the 1-box";
    const PacketClass cls = geo.classify(src, dst);
    ASSERT_NE(cls.type, ClassType::None);
    (cls.type == ClassType::N ? per_class_n : per_class_e)[cls.i]++;
    // Edge constraints: N_1-column holds only N_1; E_1-row only E_1.
    if (src.col == geo.line(1) && src.row <= geo.line(1))
      EXPECT_TRUE(cls.type == ClassType::N && cls.i == 1);
    if (src.row == geo.line(1) && src.col < geo.line(1))
      EXPECT_TRUE(cls.type == ClassType::E && cls.i == 1);
    // Classes ≥ 2 start inside the 0-box.
    if (cls.i >= 2) EXPECT_TRUE(geo.in_box(src, 0));
    // Destinations outside the i-box on the right line.
    if (cls.type == ClassType::N) {
      EXPECT_EQ(dst.col, geo.line(cls.i));
      EXPECT_GT(dst.row, geo.line(cls.i));
    } else {
      EXPECT_EQ(dst.row, geo.line(cls.i));
      EXPECT_GT(dst.col, geo.line(cls.i));
    }
  }
  for (std::int64_t i = 1; i <= par.classes; ++i) {
    EXPECT_EQ(per_class_n[i], par.p) << "class " << i;
    EXPECT_EQ(per_class_e[i], par.p) << "class " << i;
  }
}

TEST(MainPlacement, FullPermutationFiller) {
  const MainLbParams par = main_lb_params(60, 1);
  ASSERT_TRUE(par.valid);
  const Mesh mesh = Mesh::square(60);
  MainConstructionOptions options;
  options.full_permutation = true;
  MainConstruction construction(mesh, par, options);
  const Workload w = construction.placement();
  EXPECT_EQ(w.size(), static_cast<std::size_t>(mesh.num_nodes()));
  EXPECT_TRUE(is_partial_permutation(mesh, w));
  // Fillers must be class-free.
  const MainGeometry& geo = construction.geometry();
  for (std::size_t i = static_cast<std::size_t>(2 * par.p * par.classes);
       i < w.size(); ++i) {
    EXPECT_EQ(geo.classify(mesh.coord_of(w[i].source),
                           mesh.coord_of(w[i].dest))
                  .type,
              ClassType::None);
  }
}

class MainConstructionSuite : public ::testing::TestWithParam<std::string> {};

TEST_P(MainConstructionSuite, Theorem13SmallMesh) {
  const MainLbParams par = main_lb_params(60, 1);
  ASSERT_TRUE(par.valid);
  const Mesh mesh = Mesh::square(60);
  MainConstruction construction(mesh, par);
  const auto result = construction.verify_replay(GetParam(), 1);

  // Lemma 12: identical configurations modulo pending exchanges.
  EXPECT_TRUE(result.stepwise_match)
      << "first mismatch at step " << result.first_mismatch;
  EXPECT_TRUE(result.final_match);
  // Theorem 13 / Corollary 9.
  EXPECT_GE(result.undelivered_at_certified, 1u);
  EXPECT_GE(result.construction.last_class_in_box,
            2 * (par.p - par.dn));
  // The replay eventually finishes (the algorithm is live).
  EXPECT_TRUE(result.replay_all_delivered) << GetParam();
  EXPECT_GE(result.replay_total_steps, par.certified_steps);
}

TEST_P(MainConstructionSuite, Theorem13TwoClasses) {
  const MainLbParams par = main_lb_params(120, 1);
  ASSERT_TRUE(par.valid);
  ASSERT_GE(par.classes, 2) << "need a multi-class instance";
  const Mesh mesh = Mesh::square(120);
  MainConstruction construction(mesh, par);
  const auto result = construction.verify_replay(GetParam(), 1);
  EXPECT_TRUE(result.stepwise_match);
  EXPECT_TRUE(result.final_match);
  EXPECT_GE(result.undelivered_at_certified, 1u);
}

INSTANTIATE_TEST_SUITE_P(DxAlgorithms, MainConstructionSuite,
                         ::testing::ValuesIn(dx_minimal_algorithm_names()),
                         [](const auto& info) {
                           std::string n = info.param;
                           for (char& ch : n)
                             if (ch == '-') ch = '_';
                           return n;
                         });

TEST(MainConstruction, ShuffledPlacementAlsoWorks) {
  // Any §3-conformant arrangement must yield the bound, not just the
  // canonical one.
  const MainLbParams par = main_lb_params(60, 1);
  const Mesh mesh = Mesh::square(60);
  MainConstructionOptions options;
  options.placement_seed = 1234;
  MainConstruction construction(mesh, par, options);
  const auto result = construction.verify_replay("dimension-order", 1);
  EXPECT_TRUE(result.stepwise_match);
  EXPECT_TRUE(result.final_match);
  EXPECT_GE(result.undelivered_at_certified, 1u);
}

TEST(MainConstruction, FullPermutationStillLowerBounds) {
  const MainLbParams par = main_lb_params(60, 1);
  const Mesh mesh = Mesh::square(60);
  MainConstructionOptions options;
  options.full_permutation = true;
  MainConstruction construction(mesh, par, options);
  const auto result = construction.verify_replay("adaptive-alternate", 1);
  EXPECT_TRUE(result.stepwise_match);
  EXPECT_TRUE(result.final_match);
  EXPECT_GE(result.undelivered_at_certified, 1u);
}

TEST(MainConstruction, TorusEmbedding) {
  // §5: the construction applied to a contiguous (n/2)×(n/2) submesh of
  // the torus.
  const MainLbParams par = main_lb_params(60, 1);
  const Mesh torus = Mesh::square(120, /*torus=*/true);
  MainConstruction construction(torus, par);
  const auto result = construction.verify_replay("dimension-order", 1);
  EXPECT_TRUE(result.stepwise_match);
  EXPECT_TRUE(result.final_match);
  EXPECT_GE(result.undelivered_at_certified, 1u);
}

// --- adversarial-instance factory ----------------------------------------

TEST(AdversarialFactory, FamilyNamesIncludeTorus) {
  const std::vector<std::string> names = adversarial_family_names();
  EXPECT_NE(std::find(names.begin(), names.end(), "main"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "dim-order"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "torus"), names.end());
}

TEST(AdversarialFactory, UnknownFamilyThrows) {
  EXPECT_THROW(adversarial_instance("hypercube", 8, 1, "dimension-order"),
               InvariantViolation);
}

TEST(AdversarialFactory, TorusFamilyRejectsOddAndTinySides) {
  // Odd side: no m×m quadrant of a 2m×2m torus exists.
  EXPECT_FALSE(adversarial_instance("torus", 121, 1, "dimension-order").valid);
  // Even but below the quadrant construction's size floor.
  EXPECT_FALSE(adversarial_instance("torus", 8, 1, "dimension-order").valid);
}

TEST(AdversarialFactory, TorusFamilyBuildsQuadrantInstance) {
  const AdversarialInstance inst =
      adversarial_instance("torus", 120, 1, "dimension-order");
  ASSERT_TRUE(inst.valid);
  EXPECT_EQ(inst.topology, "torus");
  EXPECT_EQ(inst.width, 120);
  EXPECT_EQ(inst.height, 120);
  EXPECT_GT(inst.certified_steps, 0);
  EXPECT_FALSE(inst.permutation.empty());
  // §5c: the constructed traffic is confined to the m×m quadrant, where
  // wrap links offer no shortcut.
  const Mesh torus = Mesh::square(120, /*torus=*/true);
  for (const Demand& d : inst.permutation) {
    const Coord s = torus.coord_of(d.source);
    const Coord t = torus.coord_of(d.dest);
    EXPECT_LT(s.col, 60);
    EXPECT_LT(s.row, 60);
    EXPECT_LT(t.col, 60);
    EXPECT_LT(t.row, 60);
  }
}

TEST(AdversarialFactory, MeshFamiliesReportMeshTopology) {
  const AdversarialInstance inst =
      adversarial_instance("main", 60, 1, "dimension-order");
  ASSERT_TRUE(inst.valid);
  EXPECT_EQ(inst.topology, "mesh");
  EXPECT_EQ(inst.width, 60);
  EXPECT_EQ(inst.height, 60);
}

TEST(MainConstruction, HhVariant) {
  const HhLbParams par = hh_lb_params(120, 1, 2);
  ASSERT_TRUE(par.valid);
  const Mesh mesh = Mesh::square(120);
  MainConstruction construction(mesh, par);
  // h = 2 > k = 1: exercises the dynamic-injection path of §5.
  const auto result = construction.verify_replay("dimension-order", 1);
  EXPECT_TRUE(result.stepwise_match);
  EXPECT_TRUE(result.final_match);
  EXPECT_GE(result.undelivered_at_certified, 1u);
}

TEST(MainConstruction, RejectsMismatchedK) {
  const MainLbParams par = main_lb_params(60, 1);
  const Mesh mesh = Mesh::square(60);
  MainConstruction construction(mesh, par);
  EXPECT_THROW(construction.run_construction("dimension-order", 2),
               InvariantViolation);
}

TEST(DimOrderConstruction, Theorem13Analogue) {
  const DimOrderLbParams par = dim_order_lb_params(60, 1);
  ASSERT_TRUE(par.valid);
  const Mesh mesh = Mesh::square(60);
  DimOrderConstruction construction(mesh, par);
  const auto result = construction.verify_replay("dimension-order", 1);
  EXPECT_TRUE(result.stepwise_match)
      << "first mismatch " << result.first_mismatch;
  EXPECT_TRUE(result.final_match);
  EXPECT_GE(result.undelivered_at_certified, 1u);
  EXPECT_TRUE(result.replay_all_delivered);
}

TEST(DimOrderConstruction, PlacementShape) {
  const DimOrderLbParams par = dim_order_lb_params(60, 1);
  const Mesh mesh = Mesh::square(60);
  DimOrderConstruction construction(mesh, par);
  const Workload w = construction.placement();
  EXPECT_EQ(w.size(), static_cast<std::size_t>(par.p * par.classes));
  EXPECT_TRUE(is_partial_permutation(mesh, w));
  for (const Demand& d : w) {
    const Coord src = mesh.coord_of(d.source);
    const Coord dst = mesh.coord_of(d.dest);
    EXPECT_LT(src.row, par.cn);
    EXPECT_LE(src.col, construction.line(1));
    EXPECT_GE(dst.row, par.cn);
    EXPECT_GE(construction.classify(src, dst), 1);
    // Only N_1 in the N_1-column.
    if (src.col == construction.line(1))
      EXPECT_EQ(construction.classify(src, dst), 1);
  }
}

TEST(FarthestFirstConstruction, Theorem13Analogue) {
  const FarthestFirstLbParams par = farthest_first_lb_params(60, 1);
  ASSERT_TRUE(par.valid);
  const Mesh mesh = Mesh::square(60);
  FarthestFirstConstruction construction(mesh, par);
  const auto result = construction.verify_replay("farthest-first", 1);
  // Farthest-first reads full destinations; the paper argues the
  // construction still replays identically thanks to the westernmost
  // partner choice.
  EXPECT_TRUE(result.final_match);
  EXPECT_GE(result.undelivered_at_certified, 1u);
  EXPECT_TRUE(result.construction.row_order_ok);
  EXPECT_TRUE(result.replay_all_delivered);
}

TEST(FarthestFirstConstruction, PlacementInvariants) {
  const FarthestFirstLbParams par = farthest_first_lb_params(60, 1);
  const Mesh mesh = Mesh::square(60);
  FarthestFirstConstruction construction(mesh, par);
  const Workload w = construction.placement();
  EXPECT_TRUE(is_partial_permutation(mesh, w));
  // Per-row class ordering: classes never increase from west to east...
  // i.e., scanning east to west, class indices are non-decreasing.
  std::vector<std::vector<std::pair<std::int32_t, std::int64_t>>> rows(
      static_cast<std::size_t>(par.cn));
  for (const Demand& d : w) {
    const Coord src = mesh.coord_of(d.source);
    const Coord dst = mesh.coord_of(d.dest);
    const std::int64_t cls = construction.classify(src, dst);
    ASSERT_GE(cls, 1);
    if (cls >= 2) EXPECT_NE(src.col, construction.line(cls));
    rows[static_cast<std::size_t>(src.row)].push_back({src.col, cls});
  }
  for (auto& row : rows) {
    std::sort(row.begin(), row.end());
    for (std::size_t i = 1; i < row.size(); ++i)
      EXPECT_LE(row[i].second, row[i - 1].second);
  }
}

}  // namespace
}  // namespace mr
