// Dynamic injection semantics (§5's h-h discussion): packets appear at
// their source at the start of their injection step, wait outside the
// network while the queue is full, re-enter in deterministic (id) order,
// and never depend on destination addresses for their timing.
#include <gtest/gtest.h>

#include "routing/registry.hpp"
#include "sim/engine.hpp"
#include "topo/mesh.hpp"
#include "workload/permutation.hpp"

namespace mr {
namespace {

TEST(DynamicInjection, FifoAmongWaiters) {
  // k = 1, three packets at one source: they enter in id order as the
  // queue frees, one per step.
  const Mesh mesh = Mesh::square(8);
  auto algo = make_algorithm("dimension-order");
  Engine::Config config;
  config.queue_capacity = 1;
  Engine e(mesh, config, *algo);
  const PacketId a = e.add_packet(mesh.id_of(0, 0), mesh.id_of(5, 0));
  const PacketId b = e.add_packet(mesh.id_of(0, 0), mesh.id_of(6, 0));
  const PacketId c = e.add_packet(mesh.id_of(0, 0), mesh.id_of(7, 0));
  e.prepare();
  // Only `a` is inside the network before step 1.
  EXPECT_EQ(e.occupancy(mesh.id_of(0, 0)), 1);
  e.run(100);
  ASSERT_TRUE(e.all_delivered());
  // Strict pipeline: a, then b, then c — each one step apart on the wire.
  EXPECT_LT(e.packet(a).delivered_at, e.packet(b).delivered_at);
  EXPECT_LT(e.packet(b).delivered_at, e.packet(c).delivered_at);
}

TEST(DynamicInjection, ScheduledFutureStepsHonoured) {
  const Mesh mesh = Mesh::square(8);
  auto algo = make_algorithm("dimension-order");
  Engine::Config config;
  config.queue_capacity = 4;
  Engine e(mesh, config, *algo);
  const PacketId early = e.add_packet(mesh.id_of(0, 0), mesh.id_of(3, 0), 1);
  const PacketId late = e.add_packet(mesh.id_of(0, 1), mesh.id_of(3, 1), 10);
  e.prepare();
  e.run(100);
  ASSERT_TRUE(e.all_delivered());
  EXPECT_EQ(e.packet(early).delivered_at, 3);   // appears at t=1, 3 hops
  EXPECT_EQ(e.packet(late).delivered_at, 12);   // appears at t=10
}

TEST(DynamicInjection, MixedWithStaticTraffic) {
  const Mesh mesh = Mesh::square(10);
  auto algo = make_algorithm("bounded-dimension-order");
  Engine::Config config;
  config.queue_capacity = 1;
  Engine e(mesh, config, *algo);
  // Static permutation plus a staggered second wave (a 2-2 problem in the
  // dynamic setting).
  for (const Demand& d : random_permutation(mesh, 1))
    e.add_packet(d.source, d.dest, 0);
  for (const Demand& d : random_permutation(mesh, 2))
    e.add_packet(d.source, d.dest, 5);
  e.prepare();
  e.run(10000);
  EXPECT_TRUE(e.all_delivered());
  EXPECT_LE(e.max_occupancy_seen(), 1);
}

TEST(DynamicInjection, HeavyHotspotWithTinyQueues) {
  // 6 packets per source at k = 1: five wait outside; delivery still
  // completes and occupancy never exceeds k.
  const Mesh mesh = Mesh::square(8);
  auto algo = make_algorithm("bounded-dimension-order");
  Engine::Config config;
  config.queue_capacity = 1;
  Engine e(mesh, config, *algo);
  for (int copy = 0; copy < 6; ++copy)
    for (std::int32_t c = 0; c < 8; ++c)
      e.add_packet(mesh.id_of(c, 0), mesh.id_of(c, 7 - (copy % 3)));
  e.prepare();
  e.run(10000);
  EXPECT_TRUE(e.all_delivered());
  EXPECT_LE(e.max_occupancy_seen(), 1);
}

TEST(DynamicInjection, StallPolicyOnPendingInjections) {
  // A deadlocked pair (head-on at k = 1 central queues) while a far-future
  // injection is still scheduled. The batch stall policy defers the check
  // until the injection buffer drains — an open-loop pump keeps that
  // buffer non-empty forever, so the run would spin to its step budget.
  // The opt-in open-loop policy counts those no-progress steps and trips
  // the stall limit.
  const Mesh mesh = Mesh::square(8);
  auto run_deadlock = [&](bool open_loop) {
    auto algo = make_algorithm("dimension-order");
    Engine::Config config;
    config.queue_capacity = 1;
    config.stall_limit = 32;
    config.stall_counts_pending_injections = open_loop;
    Engine e(mesh, config, *algo);
    e.add_packet(mesh.id_of(2, 2), mesh.id_of(5, 2));
    e.add_packet(mesh.id_of(3, 2), mesh.id_of(0, 2));
    e.add_packet(mesh.id_of(0, 0), mesh.id_of(1, 0), 100000);
    e.prepare();
    const Step last = e.run(500);
    return std::pair<bool, Step>(e.stalled(), last);
  };
  const auto batch = run_deadlock(false);
  EXPECT_FALSE(batch.first);       // deferred: pending injection masks it
  EXPECT_EQ(batch.second, 500);    // ... so the run burns its whole budget
  const auto open_loop = run_deadlock(true);
  EXPECT_TRUE(open_loop.first);
  EXPECT_EQ(open_loop.second, 32);  // trips exactly at the stall limit
}

TEST(DynamicInjection, TimingIsDestinationIndependent) {
  // §5's requirement: swap the destinations of two same-source waiting
  // packets — their injection steps must not change.
  const Mesh mesh = Mesh::square(8);
  auto run_arrival_steps = [&](NodeId d1, NodeId d2) {
    auto algo = make_algorithm("dimension-order");
    Engine::Config config;
    config.queue_capacity = 1;
    Engine e(mesh, config, *algo);
    e.add_packet(mesh.id_of(0, 0), d1);
    e.add_packet(mesh.id_of(0, 0), d2);
    e.prepare();
    // Track when packet 1 (the waiter) enters the network: its arrived_at
    // is stamped at injection.
    e.run(100);
    return e.packet(1).injected_at + 0 * e.packet(1).delivered_at;
  };
  // Destinations northeast in both orders: same profitable geometry.
  const NodeId x = mesh.id_of(6, 7);
  const NodeId y = mesh.id_of(7, 6);
  EXPECT_EQ(run_arrival_steps(x, y), run_arrival_steps(y, x));
}

}  // namespace
}  // namespace mr
