#include "traffic/saturation.hpp"

#include <algorithm>

#include "core/assert.hpp"

namespace mr {
namespace {

SaturationProbe probe_rate(const SaturationSpec& spec, double rate) {
  SteadyStateSpec run = spec.base;
  run.traffic.rate = rate;
  SaturationProbe p;
  p.rate = rate;
  p.result = run_steady_state(run);
  p.sustainable = sustained(spec, p.result);
  return p;
}

}  // namespace

bool sustained(const SaturationSpec& spec, const SteadyStateResult& r) {
  if (r.stalled) return false;
  if (r.measure.steps == 0) return false;
  // Nothing offered during the measurement window (possible at extremely
  // low rates on tiny meshes): the load is trivially sustained.
  if (r.measure.offered == 0) return true;
  return r.accepted_rate >= spec.sustain_fraction * r.offered_rate;
}

SaturationResult find_saturation_rate(const SaturationSpec& spec) {
  if (!spec.base.burst.stationary()) {
    throw NonStationaryTrafficError(
        "find_saturation_rate: probe template has burst process '" +
        format_burst_spec(spec.base.burst) +
        "'; the sustainability predicate assumes the stationary Bernoulli "
        "source (sweep run_steady_state directly for bursty load curves)");
  }
  MR_REQUIRE_MSG(spec.min_rate > 0 && spec.min_rate <= spec.max_rate &&
                     spec.max_rate <= 1.0,
                 "need 0 < min_rate <= max_rate <= 1");
  MR_REQUIRE_MSG(spec.resolution > 0, "resolution must be > 0");

  SaturationResult out;
  out.first_unsustainable = spec.max_rate;

  // Bracket by doubling from the floor.
  double lo = 0;  // highest sustainable seen (0 = none yet)
  double hi = 0;  // lowest unsustainable seen (0 = none yet)
  double rate = spec.min_rate;
  while (true) {
    SaturationProbe p = probe_rate(spec, rate);
    out.probes.push_back(p);
    if (p.sustainable) {
      lo = rate;
      if (rate >= spec.max_rate) break;
      rate = std::min(rate * 2.0, spec.max_rate);
    } else {
      hi = rate;
      break;
    }
  }

  // Bisect (lo, hi) when the bracket is proper.
  if (hi > 0 && lo > 0) {
    while (hi - lo > spec.resolution) {
      const double mid = 0.5 * (lo + hi);
      SaturationProbe p = probe_rate(spec, mid);
      out.probes.push_back(p);
      if (p.sustainable)
        lo = mid;
      else
        hi = mid;
    }
  }

  out.saturation_rate = lo;
  out.first_unsustainable = hi > 0 ? hi : spec.max_rate;
  return out;
}

}  // namespace mr
