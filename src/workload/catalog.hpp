// Discoverability catalog for workload generators, mirroring
// algorithm_catalog() (routing/registry.hpp) and topology_catalog()
// (topo/registry.hpp): one row per batch generator or open-loop traffic
// pattern, printed by `meshroute_bench --list`. The catalog is
// documentation-shaped — construction still goes through the typed
// generator functions (permutation.hpp, patterns.hpp, lk.hpp) or
// make_traffic_source; only the (l,k) family has a string spec
// (parse_lk_spec) because fuzz-case lines need one.
#pragma once

#include <string>
#include <vector>

namespace mr {

struct WorkloadInfo {
  std::string name;    ///< catalog key, e.g. "random-hh", "lk-uniform"
  /// "batch" (explicit demand list, injected at fixed steps) or
  /// "open-loop" (continuous-injection traffic pattern for traffic=/rate=).
  std::string kind;
  std::string params;  ///< parameter signature, e.g. "h, seed"
  std::string description;
};

/// Every workload generator and traffic pattern, batch generators first.
/// Ordering is stable (append-only), like the other catalogs.
const std::vector<WorkloadInfo>& workload_catalog();

/// True iff `name` appears in workload_catalog().
bool known_workload(const std::string& name);

}  // namespace mr
