#include "traffic/source.hpp"

#include <algorithm>

#include "core/assert.hpp"

namespace mr {

BernoulliSource::BernoulliSource(const Topology& topo, const TrafficSpec& spec)
    : topo_(topo), spec_(spec), rng_(spec.seed) {
  MR_REQUIRE_MSG(spec.rate >= 0.0 && spec.rate <= 1.0,
                 "injection rate must be in [0, 1], got " << spec.rate);
  MR_REQUIRE_MSG(spec.hotspot_fraction >= 0.0 && spec.hotspot_fraction <= 1.0,
                 "hotspot fraction must be in [0, 1]");
}

void BernoulliSource::emit(Step step, std::vector<Demand>& out) {
  MR_REQUIRE_MSG(step > last_step_,
                 "emit steps must be strictly increasing: " << step
                     << " after " << last_step_);
  last_step_ = step;
  const NodeId n = topo_.num_terminals();
  for (NodeId t = 0; t < n; ++t) {
    if (rng_.next_double() >= spec_.rate) continue;
    const NodeId dest = traffic_destination(topo_, spec_, t, rng_);
    if (dest == kInvalidNode) continue;  // pattern: this terminal never sends
    out.push_back(Demand{topo_.terminal_router(t), topo_.terminal_router(dest),
                         step});
    ++offered_;
  }
}

ReplaySource::ReplaySource(Workload demands) : demands_(std::move(demands)) {
  std::stable_sort(demands_.begin(), demands_.end(),
                   [](const Demand& a, const Demand& b) {
                     return a.injected_at < b.injected_at;
                   });
}

void ReplaySource::emit(Step step, std::vector<Demand>& out) {
  MR_REQUIRE_MSG(step > last_step_,
                 "emit steps must be strictly increasing: " << step
                     << " after " << last_step_);
  MR_REQUIRE_MSG(cursor_ == demands_.size() ||
                     demands_[cursor_].injected_at >= step,
                 "replay skipped demands scheduled before step " << step);
  last_step_ = step;
  while (cursor_ < demands_.size() &&
         demands_[cursor_].injected_at == step)
    out.push_back(demands_[cursor_++]);
}

Workload materialize_traffic(TrafficSource& source, Step first, Step last) {
  MR_REQUIRE(first >= 1 && last >= first - 1);
  Workload out;
  for (Step t = first; t <= last; ++t) source.emit(t, out);
  return out;
}

}  // namespace mr
