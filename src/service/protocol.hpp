// meshrouted wire protocol: length-prefixed JSON frames over a unix-domain
// stream socket.
//
// Every message in either direction is one frame: a 4-byte little-endian
// unsigned payload length followed by that many bytes of UTF-8 JSON (one
// object per frame, no trailing newline required). Frames larger than
// kMaxFrameBytes are rejected — a malformed length prefix must not make the
// daemon allocate unbounded memory.
//
// Requests (client → daemon):
//   {"op": "submit", "job": { ...job spec, see service/job.hpp... }}
//   {"op": "shutdown"}
//   {"op": "ping"}
//
// Responses (daemon → client), all carrying the job id once assigned:
//   {"ok": true, "job": N}            submit accepted (N is the job id)
//   {"ok": true}                      ping / shutdown acknowledged
//   {"ok": false, "error": "..."}     request rejected
//   {"job": N, "kind": "telemetry", "line": "..."}   one JSONL line of the
//                                     job's meshroute-telemetry/1 stream
//   {"job": N, "kind": "result", "result": { ...meshroute-run/1 object... }}
//   {"job": N, "kind": "error", "error": "..."}
//
// A job's frames are written atomically per frame (the daemon holds the
// connection's write mutex per frame), so concurrent jobs interleave at
// frame granularity only.
#pragma once

#include <cstdint>
#include <string>

namespace mr {

inline constexpr std::uint32_t kMaxFrameBytes = 16u << 20;  // 16 MiB

/// Reads one length-prefixed frame from `fd` into *payload. Returns true on
/// success; false on clean EOF at a frame boundary (*error left empty) or on
/// any failure (*error describes it). Blocks until the frame is complete.
bool read_frame(int fd, std::string* payload, std::string* error);

/// Writes one length-prefixed frame to `fd` (full payload, retrying short
/// writes; SIGPIPE suppressed). Returns false with *error on failure.
bool write_frame(int fd, const std::string& payload, std::string* error);

/// Creates, binds and listens on a unix-domain socket at `path`, removing a
/// stale socket file first. Returns the listening fd, or -1 with *error.
int listen_unix(const std::string& path, std::string* error);

/// Connects to the daemon socket at `path`. Returns the fd, or -1 with
/// *error.
int connect_unix(const std::string& path, std::string* error);

}  // namespace mr
