file(REMOVE_RECURSE
  "CMakeFiles/router_unit_test.dir/router_unit_test.cpp.o"
  "CMakeFiles/router_unit_test.dir/router_unit_test.cpp.o.d"
  "router_unit_test"
  "router_unit_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/router_unit_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
