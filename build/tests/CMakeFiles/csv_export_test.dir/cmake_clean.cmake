file(REMOVE_RECURSE
  "CMakeFiles/csv_export_test.dir/csv_export_test.cpp.o"
  "CMakeFiles/csv_export_test.dir/csv_export_test.cpp.o.d"
  "csv_export_test"
  "csv_export_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csv_export_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
