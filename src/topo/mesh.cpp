#include "topo/mesh.hpp"

namespace mr {

NodeId Mesh::neighbor(NodeId id, Dir d) const {
  Coord c = coord_of(id);
  switch (d) {
    case Dir::North: c.row += 1; break;
    case Dir::South: c.row -= 1; break;
    case Dir::East: c.col += 1; break;
    case Dir::West: c.col -= 1; break;
  }
  if (is_torus()) {
    c.col = (c.col + width()) % width();
    c.row = (c.row + height()) % height();
    return id_of(c);
  }
  if (!contains(c)) return kInvalidNode;
  return id_of(c);
}

mr::Delta Mesh::delta(NodeId from, NodeId to) const {
  const Coord a = coord_of(from);
  const Coord b = coord_of(to);
  mr::Delta d;
  if (!is_torus()) {
    d.east = b.col - a.col;
    d.north = b.row - a.row;
    return d;
  }
  auto wrap_delta = [](std::int32_t x, std::int32_t y, std::int32_t n,
                       bool& tie) {
    std::int32_t fwd = (y - x + n) % n;      // steps in + direction
    std::int32_t bwd = n - fwd;              // steps in - direction
    if (fwd == 0) {
      tie = false;
      return std::int32_t{0};
    }
    tie = (fwd == bwd);
    return fwd <= bwd ? fwd : -bwd;
  };
  d.east = wrap_delta(a.col, b.col, width(), d.east_tie);
  d.north = wrap_delta(a.row, b.row, height(), d.north_tie);
  return d;
}

}  // namespace mr
