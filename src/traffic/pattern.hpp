// Spatial traffic patterns for open-loop (continuous-injection) workloads:
// the classic interconnect-simulator set — uniform random, transpose,
// bit-complement, tornado and hotspot — mapping an injecting node to a
// destination. Deterministic patterns are pure coordinate maps; the
// stochastic ones (uniform, hotspot) draw from the caller's Rng, so a
// fixed seed reproduces the exact stream.
#pragma once

#include <string>
#include <vector>

#include "core/rng.hpp"
#include "core/types.hpp"
#include "topo/mesh.hpp"

namespace mr {

enum class TrafficPattern : std::uint8_t {
  UniformRandom,  ///< destination uniform over all other nodes
  Transpose,      ///< (c, r) -> (r, c); diagonal nodes do not inject
  BitComplement,  ///< (c, r) -> (W-1-c, H-1-r); a fixed point never injects
  Tornado,        ///< (c, r) -> (c + floor((W-1)/2) mod W, r + floor((H-1)/2) mod H)
  Hotspot,        ///< with prob. hotspot_fraction the sink, else uniform
};

const char* traffic_pattern_name(TrafficPattern p);
/// Parses a pattern name ("uniform", "transpose", "bitcomp", "tornado",
/// "hotspot"); returns false on unknown names.
bool parse_traffic_pattern(const std::string& name, TrafficPattern* out);
const std::vector<TrafficPattern>& all_traffic_patterns();

/// One open-loop traffic configuration: spatial pattern + per-node
/// injection rate + stream seed.
struct TrafficSpec {
  TrafficPattern pattern = TrafficPattern::UniformRandom;
  /// Per-node per-step injection probability (offered load), in [0, 1].
  double rate = 0.1;
  std::uint64_t seed = 1;
  /// Hotspot only: probability an injected packet targets the sink.
  double hotspot_fraction = 0.2;
  /// Hotspot only: the sink node; kInvalidNode = the mesh center.
  NodeId hotspot_sink = kInvalidNode;
};

/// Resolves the hotspot sink of `spec` on `mesh` (the configured node, or
/// the center when unset).
NodeId hotspot_sink(const Mesh& mesh, const TrafficSpec& spec);

/// Destination for a packet injected at `src`, or kInvalidNode when the
/// pattern gives this source nothing to send (transpose diagonal,
/// bit-complement fixed point, zero tornado shift). Never returns `src`
/// itself. Only the stochastic patterns consume `rng`.
NodeId traffic_destination(const Mesh& mesh, const TrafficSpec& spec,
                           NodeId src, Rng& rng);

}  // namespace mr
