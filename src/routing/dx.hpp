// Destination-exchangeable (DX) algorithm interface (paper §2).
//
// §2 restricts the information a "simple" routing algorithm may use:
//   * outqueue policy: states, source addresses and profitable outlinks of
//     resident packets; the node's state;
//   * inqueue policy: additionally the scheduled packets' profitable
//     outlinks measured from the SENDING node;
//   * state updates: the same quantities.
// Crucially, a packet's destination address is visible only through its
// profitable-outlink mask. DxAlgorithm enforces this by construction: the
// dx_* callbacks receive PacketDxView records that simply do not contain
// the destination, and the adapter (this class) is the only code path from
// Engine to the policy. Lemma 10's exchange-equivariance is additionally
// property-tested in tests/routing/dx_equivariance_test.cpp.
//
// A node IS allowed to know its own identity, coordinates, the mesh shape,
// k and the global step counter: the lower-bound argument never relocates
// nodes, it only swaps destination addresses, so none of these break
// exchange-equivariance.
#pragma once

#include <array>
#include <span>
#include <vector>

#include "sim/algorithm.hpp"
#include "sim/engine.hpp"

namespace mr {

/// The §2-legal view of a packet.
struct PacketDxView {
  PacketId id = kInvalidPacket;  ///< stable identity (not the destination)
  NodeId source = kInvalidNode;
  std::uint64_t state = 0;
  Step arrived_at = 0;       ///< arrival step at current node (§2 example)
  QueueTag queue = kCentralQueue;  ///< which inlink queue (PerInlink layout)
  /// Inlink the packet arrived on (kNoInlink when injected). DX-legal: the
  /// sender could have written it into the packet state.
  std::uint8_t arrival_inlink = kNoInlink;
  DirMask profitable = 0;    ///< the only destination-derived information
};

/// A scheduled packet offered to a node, with profitability measured from
/// the sender, as §2 prescribes.
struct DxOffer {
  PacketDxView view;
  Dir travel_dir = Dir::North;  ///< direction of the scheduled move
};

class DxAlgorithm : public Algorithm {
 public:
  /// Context of the node whose policy is running.
  struct NodeCtx {
    NodeId node = kInvalidNode;
    Coord coord;
    std::int32_t width = 0;    ///< mesh dimensions (a node knows the mesh)
    std::int32_t height = 0;
    bool torus = false;
    Step step = 0;             ///< step being executed (0 during init)
    int capacity = 0;          ///< k
    std::uint64_t state = 0;   ///< node state; written back after the call
    /// Per-inlink queue occupancy at this node (PerInlink layout only;
    /// all-zero under the central layout). §2-legal: derivable from the
    /// resident packet views, provided precomputed so policies need not
    /// rescan the queue.
    std::array<int, kNumDirs> inlink_occupancy{};

    /// True when a non-empty fault schedule (sim/fault.hpp) is installed
    /// for this run — whether or not a window is active at this step.
    /// Policies whose acceptance rule rests on a guaranteed departure
    /// (Theorem 15) must fall back to conservative acceptance whenever
    /// this is set, for the WHOLE run: fault rerouting pushes row-phase
    /// packets through column links, and such a packet stays parked in a
    /// column queue after the window lifts, so the queue-phase structure
    /// those guarantees rest on is void globally and outlives every
    /// window. Environmental knowledge, not destination-derived, so
    /// exchange-equivariance is unaffected.
    bool fault_mode = false;

    /// Outlinks of this node usable under the current fault set. Bits for
    /// non-existent links may be set — consult has_outlink first; what
    /// matters is that a fault CLEARS the bit of an existing link.
    /// §2-legal: a router observes the state of its own links, never a
    /// destination.
    DirMask avail = dir_bit(Dir::North) | dir_bit(Dir::East) |
                    dir_bit(Dir::South) | dir_bit(Dir::West);

    /// True when at least one existing outlink is currently down.
    bool degraded() const {
      for (int i = 0; i < kNumDirs; ++i) {
        const Dir d = static_cast<Dir>(i);
        if (has_outlink(d) && !mask_has(avail, d)) return true;
      }
      return false;
    }

    /// True if the outlink in direction d exists from this node.
    bool has_outlink(Dir d) const {
      if (torus) return true;
      switch (d) {
        case Dir::North: return coord.row + 1 < height;
        case Dir::South: return coord.row > 0;
        case Dir::East: return coord.col + 1 < width;
        case Dir::West: return coord.col > 0;
      }
      return false;
    }
  };

  // Adapter plumbing: translates Engine callbacks into DX views. Final so
  // subclasses cannot reopen access to destinations.
  void init(Sim& e) final;
  void plan_out(Sim& e, NodeId u, OutPlan& plan) final;
  void plan_in(Sim& e, NodeId v, std::span<const Offer> offers,
               InPlan& plan) final;
  void update_state(Sim& e, NodeId v) final;

 protected:
  /// Initial node state from the profitable outlinks of resident packets
  /// (§3: the initial state may depend on the packet that originates
  /// there). Packet `state` fields in `resident` may be modified; they are
  /// written back.
  virtual void dx_init(NodeCtx& ctx, std::span<PacketDxView> resident) {
    (void)ctx;
    (void)resident;
  }

  /// Outqueue policy: schedule at most one resident packet per outlink.
  virtual void dx_plan_out(NodeCtx& ctx,
                           std::span<const PacketDxView> resident,
                           OutPlan& plan) = 0;

  /// Inqueue policy: fill plan.accept (same indexing as offers). Must
  /// guarantee no overflow given that none of the node's own packets is
  /// certain to leave.
  virtual void dx_plan_in(NodeCtx& ctx,
                          std::span<const PacketDxView> resident,
                          std::span<const DxOffer> offers, InPlan& plan) = 0;

  /// End-of-step state update; resident packet states may be modified and
  /// are written back. Default: no state.
  virtual void dx_update(NodeCtx& ctx, std::span<PacketDxView> resident) {
    (void)ctx;
    (void)resident;
  }

 private:
  NodeCtx make_ctx(const Sim& e, NodeId u) const;
  void fill_views(const Sim& e, NodeId u);

  // scratch, reused across callbacks
  std::vector<PacketDxView> views_;
  std::vector<DxOffer> dx_offers_;
};

}  // namespace mr
