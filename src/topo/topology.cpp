#include "topo/topology.hpp"

#include <cstdlib>

namespace mr {

Topology::Topology(std::int32_t width, std::int32_t height, bool wraps)
    : width_(width), height_(height), wraps_(wraps) {
  MR_REQUIRE_MSG(width >= 1 && height >= 1,
                 "mesh dimensions must be positive, got " << width << "x"
                                                          << height);
}

std::vector<NodeId> Topology::all_nodes() const {
  std::vector<NodeId> v;
  v.reserve(static_cast<std::size_t>(num_nodes()));
  for (NodeId id = 0; id < num_nodes(); ++id) v.push_back(id);
  return v;
}

std::int32_t Topology::distance(NodeId from, NodeId to) const {
  const Delta d = delta(from, to);
  return std::abs(d.east) + std::abs(d.north);
}

DirMask Topology::profitable_dirs(NodeId from, NodeId to) const {
  const Delta d = delta(from, to);
  DirMask m = 0;
  if (d.east > 0 || (d.east != 0 && d.east_tie)) m |= dir_bit(Dir::East);
  if (d.east < 0 || (d.east != 0 && d.east_tie)) m |= dir_bit(Dir::West);
  if (d.north > 0 || (d.north != 0 && d.north_tie)) m |= dir_bit(Dir::North);
  if (d.north < 0 || (d.north != 0 && d.north_tie)) m |= dir_bit(Dir::South);
  return m;
}

}  // namespace mr
