#include <gtest/gtest.h>

#include <atomic>
#include <set>

#include "core/parallel.hpp"
#include "core/rng.hpp"
#include "core/stats.hpp"
#include "core/table.hpp"
#include "core/types.hpp"

namespace mr {
namespace {

TEST(Types, DirOpposites) {
  EXPECT_EQ(opposite(Dir::North), Dir::South);
  EXPECT_EQ(opposite(Dir::South), Dir::North);
  EXPECT_EQ(opposite(Dir::East), Dir::West);
  EXPECT_EQ(opposite(Dir::West), Dir::East);
}

TEST(Types, DirMaskOps) {
  DirMask m = dir_bit(Dir::North) | dir_bit(Dir::East);
  EXPECT_TRUE(mask_has(m, Dir::North));
  EXPECT_TRUE(mask_has(m, Dir::East));
  EXPECT_FALSE(mask_has(m, Dir::South));
  EXPECT_FALSE(mask_has(m, Dir::West));
  EXPECT_EQ(mask_count(m), 2);
  EXPECT_EQ(mask_count(0), 0);
  EXPECT_EQ(mask_count(0xF), 4);
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, NextBelowInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t v = rng.next_below(13);
    EXPECT_LT(v, 13u);
  }
}

TEST(Rng, NextBelowCoversRange) {
  Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.next_below(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(3);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto original = v;
  shuffle(v, rng);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

TEST(RunningStat, BasicMoments) {
  RunningStat s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
}

TEST(RunningStat, MergeMatchesSequential) {
  RunningStat a, b, all;
  for (int i = 0; i < 50; ++i) {
    const double x = i * 0.37 - 3.0;
    (i % 2 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(Histogram, PercentilesAndCounts) {
  Histogram h;
  for (int v = 1; v <= 100; ++v) h.add(v);
  EXPECT_EQ(h.total(), 100);
  EXPECT_EQ(h.min(), 1);
  EXPECT_EQ(h.max(), 100);
  EXPECT_EQ(h.percentile(0.5), 50);
  EXPECT_EQ(h.percentile(0.99), 99);
  EXPECT_EQ(h.percentile(1.0), 100);
  EXPECT_EQ(h.count_at(42), 1);
  EXPECT_EQ(h.count_at(200), 0);
  EXPECT_NEAR(h.mean(), 50.5, 1e-12);
}

TEST(Histogram, RejectsNegative) {
  Histogram h;
  EXPECT_THROW(h.add(-1), InvariantViolation);
}

TEST(Histogram, PercentileZeroReturnsSmallestRecordedValue) {
  // Regression: with q near 0 the target count rounded to 0, so the scan
  // returned bucket 0 even when all mass sat at a higher value.
  Histogram h;
  h.add(5);
  EXPECT_EQ(h.percentile(0.0), 5);
  EXPECT_EQ(h.percentile(0.001), 5);
  h.add(9, 3);
  EXPECT_EQ(h.percentile(0.0), 5);
  EXPECT_EQ(h.percentile(1.0), 9);
}

TEST(Histogram, PathologicalValueDoesNotAllocateDenseTail) {
  // Regression: add() used to resize the dense array to value + 1, so a
  // single corrupted latency could OOM a multi-hour run.
  Histogram h;
  const std::int64_t huge = std::int64_t{1} << 40;
  h.add(huge);
  h.add(huge + 7);
  h.add(3, 2);
  EXPECT_EQ(h.total(), 4);
  EXPECT_EQ(h.overflow_count(), 2);
  EXPECT_EQ(h.min(), 3);
  EXPECT_EQ(h.max(), huge + 7);
  EXPECT_NEAR(h.mean(),
              (2.0 * 3.0 + static_cast<double>(huge) +
               static_cast<double>(huge + 7)) /
                  4.0,
              1e3);
  // Percentiles below the overflow mass stay exact; within it they report
  // the conservative max() bound.
  EXPECT_EQ(h.percentile(0.5), 3);
  EXPECT_EQ(h.percentile(1.0), huge + 7);
  // Clamped samples are not individually countable.
  EXPECT_EQ(h.count_at(huge), 0);
  EXPECT_NE(h.summary().find("overflow=2"), std::string::npos);
}

TEST(Histogram, OverflowOnlyHistogramReportsOverflowBounds) {
  Histogram h;
  h.add(Histogram::kDenseLimit, 2);
  EXPECT_EQ(h.min(), Histogram::kDenseLimit);
  EXPECT_EQ(h.max(), Histogram::kDenseLimit);
  EXPECT_EQ(h.percentile(0.0), Histogram::kDenseLimit);
  EXPECT_EQ(h.total(), 2);
}

TEST(Table, MarkdownShape) {
  Table t({"a", "bb"});
  t.row().add(1).add("x");
  t.row().add(22).add(3.5, 1);
  const std::string md = t.to_markdown();
  EXPECT_NE(md.find("| a  | bb  |"), std::string::npos);
  EXPECT_NE(md.find("| 22 | 3.5 |"), std::string::npos);
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST(Table, CsvEscaping) {
  Table t({"x"});
  t.row().add("a,b\"c");
  EXPECT_EQ(t.to_csv(), "x\n\"a,b\"\"c\"\n");
}

TEST(Table, IncompleteRowThrows) {
  Table t({"a", "b"});
  t.row().add(1);
  EXPECT_THROW(t.row(), InvariantViolation);
}

TEST(Parallel, AllIndicesVisitedOnce) {
  std::vector<std::atomic<int>> hits(1000);
  parallel_for(1000, [&](std::size_t i) { hits[i]++; });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(Parallel, PropagatesException) {
  EXPECT_THROW(parallel_for(100,
                            [](std::size_t i) {
                              if (i == 57) throw std::runtime_error("boom");
                            }),
               std::runtime_error);
}

TEST(Parallel, ZeroCountIsNoop) {
  parallel_for(0, [](std::size_t) { FAIL(); });
}

}  // namespace
}  // namespace mr
