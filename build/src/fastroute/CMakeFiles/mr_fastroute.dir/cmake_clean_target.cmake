file(REMOVE_RECURSE
  "libmr_fastroute.a"
)
