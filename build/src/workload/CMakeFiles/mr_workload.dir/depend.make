# Empty dependencies file for mr_workload.
# This may be replaced when dependencies are built.
