// The Ω(n²/k²) lower-bound construction (paper §3–§4), with the torus and
// h-h extensions of §5.
//
// Given any destination-exchangeable minimal adaptive algorithm, the
// construction
//   1. places p N_i- and p E_i-packets per class i = 1..⌊l⌋ in the cn×cn
//      corner submesh (initial-arrangement constraints of §3 step 1),
//   2. runs the real algorithm for ⌊l⌋·dn steps, applying exchange rules
//      EX1–EX4 between the outqueue-scheduling and inqueue phases,
//   3. extracts the constructed permutation (sources with post-exchange
//      destinations),
//   4. (verification) replays the constructed permutation through the
//      untouched algorithm and checks Lemma 12: the replay's configuration
//      equals the construction's at every step, up to the not-yet-performed
//      destination exchanges — and hence (Theorem 13) an undelivered packet
//      remains after ⌊l⌋·dn steps.
//
// While running, the construction checks Lemmas 1–8 online and throws
// InvariantViolation on any breach.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "lower_bound/classes.hpp"
#include "lower_bound/constants.hpp"
#include "sim/engine.hpp"
#include "topo/mesh.hpp"
#include "workload/permutation.hpp"

namespace mr {

struct MainConstructionOptions {
  /// Add filler packets turning the instance into a full permutation
  /// (§3 step 2). Only for h = 1 on a mesh exactly the construction size.
  bool full_permutation = false;
  /// Shuffle the 0-box arrangement with this seed (0 = canonical order);
  /// any arrangement satisfying the §3 constraints must yield the bound.
  std::uint64_t placement_seed = 0;
  /// Check Lemmas 1–8 online during the construction run.
  bool check_invariants = true;
};

class MainConstruction {
 public:
  /// Main construction (§3/§4) on `mesh`, which may be larger than
  /// params.n (torus embedding, §5): the construction occupies columns and
  /// rows [0, params.n).
  MainConstruction(const Mesh& mesh, const MainLbParams& params,
                   MainConstructionOptions options = {});

  /// h-h variant (§5).
  MainConstruction(const Mesh& mesh, const HhLbParams& params,
                   MainConstructionOptions options = {});

  const MainGeometry& geometry() const { return geometry_; }
  Step certified_steps() const { return certified_; }
  std::int64_t packets_per_class() const { return p_; }
  std::int64_t num_classes() const { return classes_; }
  int h() const { return h_; }

  /// The §3 step-1 initial arrangement (plus step-2 fillers if requested).
  Workload placement() const;

  struct RunResult {
    Step steps = 0;                 ///< ⌊l⌋·dn (steps executed)
    std::size_t exchanges = 0;      ///< destination exchanges performed
    std::size_t delivered = 0;      ///< packets delivered during the run
    std::size_t undelivered = 0;    ///< must be > 0 (Corollary 9)
    /// Class-⌊l⌋ packets still inside the ⌊l⌋-box at the end — Corollary 9
    /// guarantees ≥ 2(p − dn) of them.
    std::int64_t last_class_in_box = 0;
    std::int64_t max_escapes_per_step = 0;  ///< Lemma 2 says ≤ 1 per type
    std::vector<std::uint64_t> stepwise_nodest_fingerprints;
    std::uint64_t final_fingerprint = 0;
    Workload constructed;  ///< the constructed permutation (§3 step 4)
  };

  /// Runs the construction against the named algorithm with queue size k.
  /// extra_observer (optional) is attached to the engine for the whole run.
  RunResult run_construction(const std::string& algorithm, int k,
                             Observer* extra_observer = nullptr);

  struct ReplayResult {
    RunResult construction;
    bool stepwise_match = true;  ///< dest-less configs equal at every step
    bool final_match = true;     ///< full configs equal at step ⌊l⌋·dn
    Step first_mismatch = -1;
    std::size_t undelivered_at_certified = 0;  ///< Theorem 13: ≥ 1
    Step replay_total_steps = 0;   ///< steps until the replay fully drains
    bool replay_all_delivered = false;
  };

  /// Full Theorem 13 verification: construction, extraction, lock-step
  /// replay comparison, then runs the replay to completion.
  /// replay_budget = 0 uses a generous default.
  ReplayResult verify_replay(const std::string& algorithm, int k,
                             Step replay_budget = 0);

 private:
  void init_common();

  Mesh mesh_;
  std::int32_t size_;  ///< construction side length (paper's n)
  int k_;
  int h_;
  std::int32_t cn_;
  std::int32_t dn_;
  std::int64_t p_;
  std::int64_t classes_;
  Step certified_;
  MainConstructionOptions options_;
  MainGeometry geometry_;
};

}  // namespace mr
