// Standard metrics observer: latency and queue-occupancy distributions,
// delivery curve, movement counts. Purely observational.
#pragma once

#include <cstdint>
#include <vector>

#include "core/stats.hpp"
#include "sim/algorithm.hpp"

namespace mr {

/// Fixed set of latency quantiles reported by every run (the scenario
/// layer's structured metrics surface).
struct LatencySummary {
  double mean = 0;
  Step p50 = 0;
  Step p95 = 0;
  Step p99 = 0;
  Step max = 0;
};

/// LatencySummary over the delivered packets of `packets`
/// (delivered_at - injected_at each). Computed from final packet records
/// rather than streamed deliveries, so it is order-insensitive and a run
/// restored from a checkpoint reproduces the uninterrupted run's summary
/// exactly.
LatencySummary latency_summary_from_packets(const std::vector<Packet>& packets);

class MetricsObserver : public Observer {
 public:
  /// sample_every: occupancy distribution is sampled on every N-th step
  /// (it is O(active nodes) to collect). Under the PerInlink layout each
  /// non-empty inlink queue is sampled separately.
  explicit MetricsObserver(Step sample_every = 16)
      : sample_every_(sample_every) {}

  void on_prepare_end(const Sim& e) override;
  void on_step_end(const Sim& e) override;
  void on_deliver(const Sim& e, const Packet& p) override;

  const Histogram& latency() const { return latency_; }
  LatencySummary latency_summary() const;
  const Histogram& occupancy() const { return occupancy_; }
  /// delivered_by_step()[t] = cumulative deliveries after step t;
  /// [0] counts the source==dest packets delivered during prepare().
  const std::vector<std::int64_t>& delivered_by_step() const {
    return delivered_by_step_;
  }
  /// First step by which at least ceil(fraction * total) packets had been
  /// delivered (0 when prepare()-time deliveries already satisfy it).
  Step completion_step(double fraction, std::size_t total) const;

 private:
  void sample_occupancy(const Sim& e);

  Step sample_every_;
  Histogram latency_;
  Histogram occupancy_;
  std::vector<std::int64_t> delivered_by_step_;
  std::int64_t delivered_so_far_ = 0;
};

}  // namespace mr
