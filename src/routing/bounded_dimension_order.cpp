#include "routing/bounded_dimension_order.hpp"

namespace mr {

namespace {

constexpr DirMask kHorizontal = dir_bit(Dir::East) | dir_bit(Dir::West);

/// The outlink this packet wants: straight continuation while horizontally
/// profitable, else the turn into its destination column.
bool wanted_dir(const PacketDxView& v, bool& straight, Dir& out) {
  const Dir came_from = static_cast<Dir>(v.queue);  // inlink direction
  const Dir travel = opposite(came_from);
  if ((v.profitable & kHorizontal) != 0) {
    // Row phase. A row packet always continues in its travel direction
    // (minimality: the opposite row direction is never profitable).
    out = mask_has(v.profitable, Dir::East) ? Dir::East : Dir::West;
    straight = (out == travel);
    return true;
  }
  // Column phase: turn (from a row queue) or continue (from a column queue).
  if (mask_has(v.profitable, Dir::North)) {
    out = Dir::North;
  } else if (mask_has(v.profitable, Dir::South)) {
    out = Dir::South;
  } else {
    return false;  // at destination; engine will have delivered it
  }
  straight = (out == travel);
  return true;
}

}  // namespace

void BoundedDimensionOrderRouter::dx_plan_out(
    NodeCtx&, std::span<const PacketDxView> resident, OutPlan& plan) {
  // Two passes: straight packets claim outlinks first (priority), then
  // turning packets fill what remains. Within a pass, `resident` order is
  // queue order = FIFO.
  struct Best {
    PacketId p = kInvalidPacket;
    Step arrived = 0;
  };
  std::array<Best, kNumDirs> straight_best;
  std::array<Best, kNumDirs> turn_best;
  for (const PacketDxView& v : resident) {
    bool straight = false;
    Dir d;
    if (!wanted_dir(v, straight, d)) continue;
    auto& slot = straight ? straight_best[dir_index(d)]
                          : turn_best[dir_index(d)];
    if (slot.p == kInvalidPacket || v.arrived_at < slot.arrived) {
      slot.p = v.id;
      slot.arrived = v.arrived_at;
    }
  }
  for (Dir d : kAllDirs) {
    const int i = dir_index(d);
    if (straight_best[i].p != kInvalidPacket) {
      plan.schedule(d, straight_best[i].p);
    } else if (turn_best[i].p != kInvalidPacket) {
      plan.schedule(d, turn_best[i].p);
    }
  }
}

void BoundedDimensionOrderRouter::dx_plan_in(
    NodeCtx& ctx, std::span<const PacketDxView>,
    std::span<const DxOffer> offers, InPlan& plan) {
  // Occupancy per inlink queue at the start of the step, precomputed by
  // the engine's incremental counters.
  const std::array<int, kNumDirs>& occupancy = ctx.inlink_occupancy;
  // The Theorem 15 guarantee behind unconditional column acceptance — a
  // non-empty column queue always ejects one packet this very step — is
  // void for the whole run once a fault schedule is installed, not just
  // while a window is active or at degraded nodes: an upstream fault
  // strips a packet's row bit from its masked profitable dirs, the packet
  // reroutes through a column link, and it arrives at a fully-healthy
  // node as a row-phase resident of a column queue — where it competes
  // for a row outlink instead of ejecting, and where it may still sit
  // after the window lifts. In fault mode the router falls back to
  // capacity-checked acceptance on every queue (reroute-or-stall: the
  // sender retries next step); fault-free runs are bit-identical.
  const bool guaranteed_eject = !ctx.fault_mode;
  for (std::size_t i = 0; i < offers.size(); ++i) {
    const Dir travel = offers[i].travel_dir;
    const int queue = dir_index(opposite(travel));
    if (guaranteed_eject && (travel == Dir::North || travel == Dir::South)) {
      plan.accept[i] = true;
    } else {
      plan.accept[i] = occupancy[queue] < ctx.capacity;
    }
  }
}

}  // namespace mr
