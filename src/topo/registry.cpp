#include "topo/registry.hpp"

#include <cstdlib>

#include "core/assert.hpp"
#include "topo/cmesh.hpp"
#include "topo/mesh.hpp"

namespace mr {

const std::vector<TopologyInfo>& topology_catalog() {
  static const std::vector<TopologyInfo> catalog = {
      {"mesh", "2D mesh, the paper's §2 network", false, 1},
      {"torus", "2D torus: mesh plus wrap-around links (§5c)", true, 1},
      {"cmesh-4",
       "concentrated mesh: c terminals per router sharing its queues",
       false, 4},
  };
  return catalog;
}

TopoSpec parse_topology_spec(const std::string& name) {
  TopoSpec spec;
  if (name.rfind("cmesh-", 0) == 0) {
    spec.name = "cmesh";
    spec.params.concentration = std::atoi(name.c_str() + 6);
  } else {
    spec.name = name;
  }
  return spec;
}

bool known_topology(const std::string& name) {
  const std::string base = parse_topology_spec(name).name;
  return base == "mesh" || base == "torus" || base == "cmesh";
}

std::unique_ptr<Topology> make_topology(const TopoSpec& spec) {
  const std::string& name = spec.name;
  if (name == "mesh")
    return std::make_unique<Mesh>(spec.width, spec.height, /*torus=*/false);
  if (name == "torus")
    return std::make_unique<Mesh>(spec.width, spec.height, /*torus=*/true);
  if (name == "cmesh" || name.rfind("cmesh-", 0) == 0) {
    const TopoParams& p = name == "cmesh"
                              ? spec.params
                              : parse_topology_spec(name).params;
    MR_REQUIRE_MSG(p.concentration >= 1 && p.concentration <= 64,
                   "bad cmesh concentration " << p.concentration);
    return std::make_unique<CMesh>(spec.width, spec.height, p.concentration);
  }
  MR_REQUIRE_MSG(false, "unknown topology: " << name);
  return nullptr;
}

std::unique_ptr<Topology> make_topology(const std::string& name,
                                        std::int32_t width,
                                        std::int32_t height) {
  TopoSpec spec = parse_topology_spec(name);
  spec.width = width;
  spec.height = height;
  return make_topology(spec);
}

std::vector<std::string> topology_names() {
  std::vector<std::string> names;
  names.reserve(topology_catalog().size());
  for (const TopologyInfo& info : topology_catalog())
    names.push_back(info.name);
  return names;
}

}  // namespace mr
