// Path scheduling subsystem: shortest-path construction with C/D
// measurement, the random-delay and greedy schedulers' feasibility and
// quality, and scheduled-mode replay on the production engine.
#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "schedule/path.hpp"
#include "schedule/replay.hpp"
#include "schedule/schedule.hpp"
#include "topo/mesh.hpp"
#include "workload/lk.hpp"
#include "workload/patterns.hpp"
#include "workload/permutation.hpp"

namespace mr {
namespace {

std::int64_t total_hops(const PathSet& set) {
  std::int64_t h = 0;
  for (const PacketPath& p : set.paths) h += static_cast<std::int64_t>(p.hops());
  return h;
}

/// Engine::total_moves() counts non-delivering hops only (the final hop of
/// every travelling packet is a delivery, tracked separately).
std::int64_t expected_moves(const PathSet& set) {
  std::int64_t m = 0;
  for (const PacketPath& p : set.paths)
    if (p.hops() > 0) m += static_cast<std::int64_t>(p.hops()) - 1;
  return m;
}

TEST(BuildPaths, PathsAreMinimalAndOneBend) {
  const Mesh mesh = Mesh::square(8);
  const Workload w = random_hh(mesh, 2, 17);
  const PathSet set = build_paths(mesh, w);
  ASSERT_EQ(set.paths.size(), w.size());
  int max_dist = 0;
  for (std::size_t i = 0; i < w.size(); ++i) {
    const PacketPath& p = set.paths[i];
    ASSERT_EQ(p.nodes.front(), w[i].source);
    ASSERT_EQ(p.nodes.back(), w[i].dest);
    EXPECT_EQ(static_cast<std::int64_t>(p.hops()),
              mesh.distance(w[i].source, w[i].dest));
    max_dist = std::max(max_dist,
                        static_cast<int>(mesh.distance(w[i].source, w[i].dest)));
    // One-bend: once a column direction appears, no row direction follows.
    bool column_phase = false;
    for (const Dir d : p.dirs) {
      const bool column = d == Dir::North || d == Dir::South;
      if (column) column_phase = true;
      EXPECT_TRUE(column || !column_phase)
          << "row hop after a column hop in path " << i;
    }
  }
  EXPECT_EQ(set.dilation, max_dist);
  EXPECT_GE(set.congestion, 1);
}

TEST(BuildPaths, CongestionCountsSharedLinks) {
  const Mesh mesh = Mesh::square(4);
  // Three packets out of the same source along the same first link.
  Workload w;
  const NodeId src = mesh.id_of(0, 0);
  w.push_back({src, mesh.id_of(3, 0)});
  w.push_back({src, mesh.id_of(2, 0)});
  w.push_back({src, mesh.id_of(1, 0)});
  const PathSet set = build_paths(mesh, w);
  EXPECT_EQ(set.congestion, 3);  // all three cross (0,0) -> East
  EXPECT_EQ(set.dilation, 3);
}

TEST(BuildPaths, TorusPathsUseWrapLinks) {
  const Mesh mesh(8, 8, /*torus=*/true);
  Workload w{{mesh.id_of(0, 0), mesh.id_of(7, 7)}};
  const PathSet set = build_paths(mesh, w);
  // Wrap distance is 1 + 1, not 7 + 7.
  EXPECT_EQ(set.paths[0].hops(), 2u);
  EXPECT_EQ(set.dilation, 2);
}

TEST(RandomDelay, FeasibleAndDeterministic) {
  const Mesh mesh = Mesh::square(8);
  const Workload w = random_hh(mesh, 4, 23);
  const PathSet set = build_paths(mesh, w);
  const Schedule a = random_delay_schedule(set, 99);
  EXPECT_EQ(validate_schedule(mesh, a), "");
  EXPECT_GE(a.makespan, set.dilation);
  const Schedule b = random_delay_schedule(set, 99);
  ASSERT_EQ(a.packets.size(), b.packets.size());
  for (std::size_t i = 0; i < a.packets.size(); ++i)
    EXPECT_EQ(a.packets[i].depart, b.packets[i].depart);
}

TEST(RandomDelay, MakespanWithinConstantOfCPlusD) {
  // The E21 named check in miniature: over several instance families the
  // random-delay makespan stays within a small constant of C + D.
  const Mesh mesh = Mesh::square(8);
  for (const std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
    for (const int h : {1, 4}) {
      const PathSet set = build_paths(mesh, random_hh(mesh, h, seed));
      const Schedule s = random_delay_schedule(set, seed * 31);
      EXPECT_EQ(validate_schedule(mesh, s), "");
      EXPECT_LE(s.makespan, 3 * (set.congestion + set.dilation))
          << "h=" << h << " seed=" << seed << " C=" << set.congestion
          << " D=" << set.dilation << " makespan=" << s.makespan;
    }
  }
}

TEST(Greedy, FeasibleAndCoversAllHops) {
  const Mesh mesh = Mesh::square(8);
  const PathSet set = build_paths(mesh, mirror(mesh));
  const Schedule s = greedy_schedule(set);
  EXPECT_EQ(validate_schedule(mesh, s), "");
  std::int64_t scheduled = 0;
  for (const PacketSchedule& p : s.packets) {
    EXPECT_EQ(p.depart.size(), p.path.hops());
    scheduled += static_cast<std::int64_t>(p.depart.size());
  }
  EXPECT_EQ(scheduled, total_hops(set));
  EXPECT_GE(s.makespan, set.dilation);
}

TEST(Validate, RejectsDoubleBookedLink) {
  const Mesh mesh = Mesh::square(4);
  Workload w;
  w.push_back({mesh.id_of(0, 0), mesh.id_of(2, 0)});
  w.push_back({mesh.id_of(0, 0), mesh.id_of(3, 0)});
  const PathSet set = build_paths(mesh, w);
  Schedule s = greedy_schedule(set);
  ASSERT_EQ(validate_schedule(mesh, s), "");
  // Force both packets over the shared first link in the same step.
  s.packets[1].depart = s.packets[0].depart;
  EXPECT_NE(validate_schedule(mesh, s), "");
}

TEST(Validate, RejectsNonIncreasingDepartures) {
  const Mesh mesh = Mesh::square(4);
  Workload w{{mesh.id_of(0, 0), mesh.id_of(2, 2)}};
  Schedule s = greedy_schedule(build_paths(mesh, w));
  ASSERT_EQ(validate_schedule(mesh, s), "");
  s.packets[0].depart[1] = s.packets[0].depart[0];
  EXPECT_NE(validate_schedule(mesh, s), "");
}

TEST(QueueCapacity, SinglePacketNeedsOne) {
  const Mesh mesh = Mesh::square(4);
  Workload w{{mesh.id_of(0, 0), mesh.id_of(3, 3)}};
  const Schedule s = greedy_schedule(build_paths(mesh, w));
  EXPECT_EQ(required_queue_capacity(s), 1);
}

TEST(QueueCapacity, CountsWaitingPackets) {
  const Mesh mesh = Mesh::square(4);
  // Two packets that merge at (1,0) and share the link (1,0) -> East:
  // under the greedy schedule one of them waits there while the other
  // crosses, so node (1,0) must buffer it.
  Workload w;
  w.push_back({mesh.id_of(0, 0), mesh.id_of(3, 0)});
  w.push_back({mesh.id_of(1, 0), mesh.id_of(3, 1)});
  const PathSet set = build_paths(mesh, w);
  const Schedule greedy = greedy_schedule(set);
  EXPECT_EQ(validate_schedule(mesh, greedy), "");
  EXPECT_GE(required_queue_capacity(greedy), 1);
}

TEST(Replay, RandomDelayRunsOnTime) {
  const Mesh mesh = Mesh::square(8);
  const PathSet set = build_paths(mesh, random_hh(mesh, 2, 41));
  const Schedule s = random_delay_schedule(set, 7);
  ASSERT_EQ(validate_schedule(mesh, s), "");
  const ReplayReport r = replay_schedule(mesh, s);
  EXPECT_TRUE(r.all_delivered);
  EXPECT_TRUE(r.on_time);
  EXPECT_EQ(r.steps, s.makespan);
  EXPECT_EQ(r.total_moves, expected_moves(set));
}

TEST(Replay, GreedyRunsOnTime) {
  const Mesh mesh = Mesh::square(8);
  const PathSet set = build_paths(mesh, mirror(mesh));
  const Schedule s = greedy_schedule(set);
  const ReplayReport r = replay_schedule(mesh, s);
  EXPECT_TRUE(r.all_delivered);
  EXPECT_TRUE(r.on_time);
  EXPECT_EQ(r.steps, s.makespan);
  EXPECT_EQ(r.total_moves, expected_moves(set));
}

TEST(Replay, TorusScheduleRunsOnTime) {
  const Mesh mesh(6, 6, /*torus=*/true);
  const PathSet set = build_paths(mesh, random_hh(mesh, 2, 5));
  const Schedule s = random_delay_schedule(set, 11);
  ASSERT_EQ(validate_schedule(mesh, s), "");
  const ReplayReport r = replay_schedule(mesh, s);
  EXPECT_TRUE(r.all_delivered);
  EXPECT_TRUE(r.on_time);
}

TEST(Replay, LkWorkloadRunsOnTime) {
  const Mesh mesh = Mesh::square(8);
  const Workload w = make_lk_workload(mesh, {"clustered", 2, 3, 9});
  const PathSet set = build_paths(mesh, w);
  const Schedule s = random_delay_schedule(set, 13);
  const ReplayReport r = replay_schedule(mesh, s);
  EXPECT_TRUE(r.all_delivered);
  EXPECT_TRUE(r.on_time);
}

TEST(Replay, ZeroHopDemandDelivers) {
  const Mesh mesh = Mesh::square(4);
  Workload w;
  w.push_back({mesh.id_of(1, 1), mesh.id_of(1, 1)});
  w.push_back({mesh.id_of(0, 0), mesh.id_of(2, 0)});
  const Schedule s = greedy_schedule(build_paths(mesh, w));
  const ReplayReport r = replay_schedule(mesh, s);
  EXPECT_TRUE(r.all_delivered);
  EXPECT_TRUE(r.on_time);
}

TEST(Replay, CapacityBoundIsTight) {
  // Replay runs with exactly required_queue_capacity(s); the engine's §2
  // capacity check would throw if the bound under-counted, so a clean
  // high-congestion run is evidence the bound is an upper bound, and
  // max_occupancy == capacity on at least one instance shows tightness.
  const Mesh mesh = Mesh::square(6);
  bool saw_multi = false;
  for (const std::uint64_t seed : {3ULL, 8ULL, 21ULL}) {
    const PathSet set = build_paths(mesh, random_hh(mesh, 4, seed));
    const Schedule s = greedy_schedule(set);
    const ReplayReport r = replay_schedule(mesh, s);
    EXPECT_TRUE(r.all_delivered);
    EXPECT_TRUE(r.on_time);
    if (r.queue_capacity > 1) saw_multi = true;
  }
  EXPECT_TRUE(saw_multi) << "greedy h=4 never needed a buffer > 1?";
}

}  // namespace
}  // namespace mr
