#include "routing/registry.hpp"

#include <cstdlib>

#include "core/assert.hpp"
#include "routing/adaptive.hpp"
#include "routing/bounded_dimension_order.hpp"
#include "routing/dimension_order.hpp"
#include "routing/emps.hpp"
#include "routing/farthest_first.hpp"
#include "routing/stray.hpp"
#include "routing/west_first.hpp"

namespace mr {

const std::vector<AlgorithmInfo>& algorithm_catalog() {
  static const std::vector<AlgorithmInfo> catalog = {
      {"dimension-order",
       "greedy dimension-order (row then column), the §5 baseline",
       QueueLayout::Central, true},
      {"adaptive-alternate",
       "minimal adaptive, alternates row/column moves when both profit",
       QueueLayout::Central, true},
      {"greedy-match",
       "minimal adaptive, greedy packet-to-outlink matching per step",
       QueueLayout::Central, true},
      {"west-first",
       "west-first turn model: all west hops first, then adaptive",
       QueueLayout::Central, true},
      {"stray-2",
       "δ-stray nonminimal: deflects blocked packets ≤ δ off-rectangle (§5)",
       QueueLayout::Central, false},
      {"farthest-first",
       "farthest-distance-first priority, non-exchangeable reference",
       QueueLayout::Central, false},
      {"bounded-dimension-order",
       "Theorem 15 router: per-inlink queues, straight-priority outqueue",
       QueueLayout::PerInlink, false},
      {"emps",
       "Even–Medina–Patt-Shamir online grid router: one-bend paths, "
       "per-link buffers, farthest-to-go line routing",
       QueueLayout::PerInlink, false},
  };
  return catalog;
}

AlgorithmSpec parse_algorithm_spec(const std::string& name) {
  AlgorithmSpec spec;
  if (name.rfind("stray-", 0) == 0) {
    spec.name = "stray";
    spec.params.stray_bound = std::atoi(name.c_str() + 6);
  } else {
    spec.name = name;
  }
  return spec;
}

std::unique_ptr<Algorithm> make_algorithm(const AlgorithmSpec& spec) {
  const std::string& name = spec.name;
  if (name == "dimension-order")
    return std::make_unique<DimensionOrderRouter>();
  if (name == "adaptive-alternate")
    return std::make_unique<AdaptiveAlternateRouter>();
  if (name == "greedy-match") return std::make_unique<GreedyMatchRouter>();
  if (name == "west-first") return std::make_unique<WestFirstRouter>();
  if (name == "farthest-first") return std::make_unique<FarthestFirstRouter>();
  if (name == "emps") return std::make_unique<EmpsRouter>();
  if (name == "bounded-dimension-order")
    return std::make_unique<BoundedDimensionOrderRouter>();
  if (name == "stray" || name.rfind("stray-", 0) == 0) {
    const AlgorithmParams& p = name == "stray"
                                   ? spec.params
                                   : parse_algorithm_spec(name).params;
    MR_REQUIRE_MSG(p.stray_bound >= 0 && p.stray_bound <= 64,
                   "bad stray bound " << p.stray_bound);
    MR_REQUIRE_MSG(p.stray_block_threshold >= 1,
                   "bad stray block threshold " << p.stray_block_threshold);
    return std::make_unique<StrayRouter>(p.stray_bound,
                                         p.stray_block_threshold);
  }
  MR_REQUIRE_MSG(false, "unknown algorithm: " << name);
  return nullptr;
}

std::unique_ptr<Algorithm> make_algorithm(const std::string& name) {
  return make_algorithm(parse_algorithm_spec(name));
}

std::vector<std::string> algorithm_names() {
  std::vector<std::string> names;
  names.reserve(algorithm_catalog().size());
  for (const AlgorithmInfo& info : algorithm_catalog())
    names.push_back(info.name);
  return names;
}

std::vector<std::string> dx_minimal_algorithm_names() {
  std::vector<std::string> names;
  for (const AlgorithmInfo& info : algorithm_catalog())
    if (info.dx_minimal) names.push_back(info.name);
  return names;
}

}  // namespace mr
