// Congestion map: ASCII heatmap of peak queue occupancy per node over a
// run — makes the "hot spots" the paper's introduction talks about
// visible. Default: transpose on a 24×24 mesh under the Theorem 15 router.
//
//   $ ./congestion_map [router] [n] [k] [workload: transpose|random|mirror]
#include <cstdlib>
#include <iostream>
#include <vector>

#include "routing/registry.hpp"
#include "sim/engine.hpp"
#include "topo/mesh.hpp"
#include "workload/permutation.hpp"

namespace {

using namespace mr;

struct PeakMap : Observer {
  std::vector<int> peak;
  void on_step_end(const Sim& e) override {
    if (peak.empty()) peak.assign(e.mesh().num_nodes(), 0);
    for (NodeId u = 0; u < e.mesh().num_nodes(); ++u)
      peak[u] = std::max(peak[u], e.occupancy(u));
  }
};

char shade(int v) {
  static const char* ramp = " .:-=+*#%@";
  return ramp[std::min(v, 9)];
}

}  // namespace

int main(int argc, char** argv) {
  const std::string router = argc > 1 ? argv[1] : "bounded-dimension-order";
  const std::int32_t n = argc > 2 ? std::atoi(argv[2]) : 24;
  const int k = argc > 3 ? std::atoi(argv[3]) : 4;
  const std::string workload_name = argc > 4 ? argv[4] : "transpose";

  const Mesh mesh = Mesh::square(n);
  Workload w;
  if (workload_name == "transpose") {
    w = transpose(mesh);
  } else if (workload_name == "mirror") {
    w = mirror(mesh);
  } else {
    w = random_permutation(mesh, 17);
  }

  auto algo = make_algorithm(router);
  Engine::Config config;
  config.queue_capacity = k;
  config.stall_limit = 5000;
  Engine e(mesh, config, *algo);
  for (const Demand& d : w) e.add_packet(d.source, d.dest, d.injected_at);
  PeakMap map;
  e.add_observer(&map);
  e.prepare();
  const Step steps = e.run(200000);

  std::cout << router << " on " << workload_name << ", " << n << "x" << n
            << ", k=" << k << ": " << e.delivered_count() << "/"
            << e.num_packets() << " delivered in " << steps << " steps"
            << (e.all_delivered() ? "" : "  (DEADLOCKED)") << "\n\n";
  std::cout << "peak queue occupancy per node (north at top; ' '=0 .. '@'>=9):\n";
  for (std::int32_t r = n - 1; r >= 0; --r) {
    for (std::int32_t c = 0; c < n; ++c)
      std::cout << shade(map.peak[mesh.id_of(c, r)]);
    std::cout << '\n';
  }
  return 0;
}
