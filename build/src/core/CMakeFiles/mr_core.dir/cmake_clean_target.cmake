file(REMOVE_RECURSE
  "libmr_core.a"
)
