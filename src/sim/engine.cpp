#include "sim/engine.hpp"

#include <algorithm>
#include <array>
#include <chrono>
#include <utility>

#include "core/parallel.hpp"

namespace mr {

Engine::Engine(const Topology& topo, Config config, Algorithm& algorithm)
    : Sim(topo, config.queue_capacity, algorithm.queue_layout(),
          /*masks_cached=*/true),
      algorithm_(&algorithm),
      stall_limit_(config.stall_limit),
      stall_counts_pending_(config.stall_counts_pending_injections),
      enforce_minimal_(algorithm.minimal()),
      max_stray_(algorithm.max_stray()) {
  init_engine(config);
  // A single shared Algorithm instance may hold per-call scratch, so the
  // bands must run serially; concurrent planning needs per-band instances.
  MR_REQUIRE_MSG(!pool_,
                 "Config::threads > 1 with shards > 1 requires the "
                 "AlgorithmFactory constructor");
}

Engine::Engine(const Topology& topo, Config config, const AlgorithmFactory& factory)
    : Engine(topo, config, factory(), factory) {}

Engine::Engine(const Topology& topo, Config config,
               std::unique_ptr<Algorithm> first,
               const AlgorithmFactory& factory)
    : Sim(topo, config.queue_capacity, first->queue_layout(),
          /*masks_cached=*/true),
      algorithm_(first.get()),
      stall_limit_(config.stall_limit),
      stall_counts_pending_(config.stall_counts_pending_injections),
      enforce_minimal_(first->minimal()),
      max_stray_(first->max_stray()) {
  owned_algorithms_.push_back(std::move(first));
  init_engine(config);
  for (int s = 1; s < num_shards_; ++s) {
    owned_algorithms_.push_back(factory());
    Algorithm& a = *owned_algorithms_.back();
    MR_REQUIRE_MSG(
        a.queue_layout() == layout_ && a.minimal() == enforce_minimal_ &&
            a.max_stray() == max_stray_,
        "AlgorithmFactory must produce identically configured instances");
    shard_algorithms_[static_cast<std::size_t>(s)] = &a;
  }
}

void Engine::init_engine(const Config& config) {
  MR_REQUIRE_MSG(stall_limit_ >= 0,
                 "stall_limit must be >= 0, got " << stall_limit_);
  MR_REQUIRE_MSG(config.shards >= 1,
                 "Config::shards must be >= 1, got " << config.shards);
  MR_REQUIRE_MSG(config.threads >= 0,
                 "Config::threads must be >= 0, got " << config.threads);
  const auto n = static_cast<std::size_t>(num_nodes_);
  is_active_.assign(n, 0);
  if (layout_ == QueueLayout::PerInlink) inlink_occ_.assign(n * kNumDirs, 0);

  // Devirtualise the topology for the step loops: one flat neighbour
  // lookup per (node, direction), filled from the virtual kernel here and
  // never consulted again.
  neighbor_tab_.assign(n * kNumDirs, kInvalidNode);
  for (NodeId u = 0; u < num_nodes_; ++u)
    for (int di = 0; di < kNumDirs; ++di) {
      const Dir d = static_cast<Dir>(di);
      neighbor_tab_[static_cast<std::size_t>(u) * kNumDirs +
                    static_cast<std::size_t>(di)] = topo_->neighbor(u, d);
    }

  // Row bands: band s owns rows [s*H/S, (s+1)*H/S), i.e. the contiguous
  // NodeId range [row_begin*W, row_end*W) under the row-major id layout.
  num_shards_ = std::min(config.shards, topo_height_);
  band_of_row_.assign(static_cast<std::size_t>(topo_height_), 0);
  shards_.clear();
  shards_.resize(static_cast<std::size_t>(num_shards_));
  for (int s = 0; s < num_shards_; ++s) {
    const auto row_begin = static_cast<std::int32_t>(
        static_cast<std::int64_t>(s) * topo_height_ / num_shards_);
    const auto row_end = static_cast<std::int32_t>(
        static_cast<std::int64_t>(s + 1) * topo_height_ / num_shards_);
    for (std::int32_t r = row_begin; r < row_end; ++r)
      band_of_row_[static_cast<std::size_t>(r)] = s;
    shards_[static_cast<std::size_t>(s)].node_begin = row_begin * topo_width_;
    shards_[static_cast<std::size_t>(s)].node_end = row_end * topo_width_;
  }
  if (num_shards_ > 1) {
    std::size_t threads = config.threads == 0
                              ? default_thread_count()
                              : static_cast<std::size_t>(config.threads);
    threads = std::min(threads, static_cast<std::size_t>(num_shards_));
    if (threads > 1) pool_ = std::make_unique<WorkerPool>(threads);
  }
  shard_algorithms_.assign(static_cast<std::size_t>(num_shards_), algorithm_);
}

void Engine::run_shards(const std::function<void(std::size_t)>& fn) {
  if (pool_) {
    pool_->run(static_cast<std::size_t>(num_shards_), fn);
  } else {
    for (std::size_t s = 0; s < static_cast<std::size_t>(num_shards_); ++s)
      fn(s);
  }
}

std::span<const NodeId> Engine::active_nodes() const {
  if (!active_cache_valid_) {
    active_.clear();
    for (const Shard& sh : shards_)
      active_.insert(active_.end(), sh.active.begin(), sh.active.end());
    active_cache_valid_ = true;
  }
  return active_;
}

PacketId Engine::add_packet(NodeId source, NodeId dest, Step injected_at) {
  MR_REQUIRE_MSG(!prepared_, "add_packet after prepare()");
  const PacketId id = register_packet(source, dest, injected_at);
  injections_.emplace_back(injected_at, id);
  return id;
}

PacketId Engine::pump_packet(NodeId source, NodeId dest, Step injected_at) {
  MR_REQUIRE_MSG(prepared_, "pump_packet before prepare()");
  MR_REQUIRE_MSG(injected_at > step_,
                 "pump_packet must be future-dated: injected_at "
                     << injected_at << " <= current step " << step_);
  MR_REQUIRE_MSG(injections_.empty() ||
                     injected_at >= injections_.back().first,
                 "pump_packet out of order: injected_at "
                     << injected_at << " < pending tail "
                     << injections_.back().first);
  const PacketId id = register_packet(source, dest, injected_at);
  injections_.emplace_back(injected_at, id);
  packet_scheduled_.push_back(0);
  return id;
}

QueueTag Engine::arrival_tag(Dir travel_dir) const {
  if (layout_ == QueueLayout::Central) return kCentralQueue;
  return static_cast<QueueTag>(dir_index(opposite(travel_dir)));
}

void Engine::place_packet(PacketId p, NodeId node, QueueTag tag,
                          std::vector<NodeId>& active_out) {
  Packet& pk = packets_[p];
  pk.location = node;
  pk.queue = tag;
  pk.arrived_at = step_;
  pk.profitable = topo_->profitable_dirs(node, pk.dest);
  pk.slot = node_packets_.push_back(node, p);
  if (layout_ == QueueLayout::PerInlink) ++inlink_occ_[inlink_index(node, tag)];
  if (!is_active_[node]) {
    is_active_[node] = 1;
    active_out.push_back(node);
  }
}

void Engine::record_occupancy(NodeId u, int& peak) {
  // Transmissions within a step are simultaneous in the model, so peak
  // occupancy is only meaningful *between* steps (after phase (d)).
  if (layout_ == QueueLayout::Central) {
    peak = std::max(peak, occupancy(u));
    return;
  }
  const std::size_t base = inlink_index(u, 0);
  for (int t = 0; t < kNumDirs; ++t)
    peak = std::max(peak, static_cast<int>(inlink_occ_[base + t]));
}

void Engine::remove_from_node(PacketId p) {
  Packet& pk = packets_[p];
  const std::int32_t slot = pk.slot;
  MR_REQUIRE(slot >= 0 && slot < node_packets_.size(pk.location) &&
             node_packets_.at(pk.location)[static_cast<std::size_t>(slot)] ==
                 p);
  node_packets_.erase_slot(pk.location, slot);
  // Erasure preserves arrival order of the remaining packets; reindex the
  // ones that shifted down.
  const std::span<const PacketId> q = node_packets_.at(pk.location);
  for (std::size_t i = static_cast<std::size_t>(slot); i < q.size(); ++i)
    packets_[q[i]].slot = static_cast<std::int32_t>(i);
  if (layout_ == QueueLayout::PerInlink)
    --inlink_occ_[inlink_index(pk.location, pk.queue)];
  pk.slot = -1;
}

void Engine::merge_active() {
  if (active_sorted_ == active_.size()) return;
  const auto mid = active_.begin() + static_cast<std::ptrdiff_t>(active_sorted_);
  std::sort(mid, active_.end());
  std::inplace_merge(active_.begin(), mid, active_.end());
  active_sorted_ = active_.size();
}

void Engine::inject_packet_list(const std::vector<PacketId>& due,
                                std::vector<PacketId>& waiting_out,
                                std::vector<NodeId>& active_out,
                                std::vector<PacketId>* injected_deliveries_out,
                                std::int64_t& injected, std::int64_t& delivered,
                                std::int64_t& fault_deferred, int& peak) {
  for (PacketId p : due) {
    Packet& pk = packets_[p];
    // A down source defers injection entirely — even source == dest
    // deliveries, which model an ejection at the (dead) node.
    if (!node_available(pk.source)) {
      waiting_out.push_back(p);
      ++fault_deferred;
      continue;
    }
    if (pk.source == pk.dest) {
      pk.delivered_at = step_;
      ++delivered;
      ++injected;
      if (injected_deliveries_out) injected_deliveries_out->push_back(p);
      continue;
    }
    const QueueTag tag = layout_ == QueueLayout::Central
                             ? kCentralQueue
                             : injection_queue_tag(p);
    const int used = layout_ == QueueLayout::Central
                         ? occupancy(pk.source)
                         : occupancy(pk.source, tag);
    if (used >= queue_capacity_) {
      waiting_out.push_back(p);  // §5: wait outside the network
      continue;
    }
    place_packet(p, pk.source, tag, active_out);
    pk.arrival_inlink = kNoInlink;
    ++injected;
    record_occupancy(pk.source, peak);
  }
}

void Engine::inject_due_packets() {
  // Re-offer packets that were due earlier but found a full queue, then
  // newly due packets, all in deterministic (id) order.
  due_.clear();
  due_.swap(waiting_injections_);
  while (injection_cursor_ < injections_.size() &&
         injections_[injection_cursor_].first <= step_) {
    due_.push_back(injections_[injection_cursor_].second);
    ++injection_cursor_;
  }
  if (due_.empty()) return;
  std::sort(due_.begin(), due_.end());
  std::int64_t delivered = 0;
  inject_packet_list(due_, waiting_injections_, active_,
                     observers_.empty() ? nullptr : &injected_deliveries_,
                     injected_this_step_, delivered,
                     fault_deferred_this_step_, max_occupancy_seen_);
  delivered_count_ += static_cast<std::size_t>(delivered);
}

void Engine::filter_faulted_moves(std::vector<ScheduledMove>& moves,
                                  std::int64_t& blocked) {
  if (!faults_active_) return;
  std::size_t w = 0;
  for (std::size_t i = 0; i < moves.size(); ++i) {
    const ScheduledMove& m = moves[i];
    if (mask_has(fault_avail_[static_cast<std::size_t>(m.from)], m.dir)) {
      moves[w++] = moves[i];
    } else {
      ++blocked;
    }
  }
  moves.resize(w);
}

QueueTag Engine::injection_queue_tag(PacketId p) const {
  // A freshly injected packet joins the inlink queue it would have arrived
  // on had it been travelling already: the queue opposite one of its
  // profitable directions. Row movement is preferred so that dimension-order
  // routers see row packets in E/W queues. Uses only profitable directions,
  // hence destination-exchangeable-safe.
  const Packet& pk = packets_[p];
  const DirMask m = topo_->profitable_dirs(pk.source, pk.dest);
  for (Dir d : {Dir::East, Dir::West, Dir::North, Dir::South})
    if (mask_has(m, d)) return static_cast<QueueTag>(dir_index(opposite(d)));
  return static_cast<QueueTag>(dir_index(Dir::South));
}

void Engine::prepare() {
  MR_REQUIRE_MSG(!prepared_, "prepare() called twice");
  prepared_ = true;
  std::stable_sort(injections_.begin(), injections_.end());
  step_ = 0;
  injected_this_step_ = 0;
  injected_deliveries_.clear();
  inject_due_packets();
  // §3: the initial state of nodes/packets may depend on the initial
  // arrangement; the algorithm sets them here. Only instance 0 is init()ed
  // even in sharded mode: the state it sets lives in the Sim and is shared
  // by all planning instances.
  algorithm_->init(*this);
  packet_scheduled_.assign(packets_.size(), 0);
  merge_active();
  if (num_shards_ > 1) distribute_to_shards();
  if (!observers_.empty()) {
    StepDigest digest;
    digest.step = 0;
    digest.injected_deliveries = injected_deliveries_;
    digest.deliveries = static_cast<std::int64_t>(injected_deliveries_.size());
    digest.injections = injected_this_step_;
    for (StepObserver* ob : observers_) ob->on_prepare(*this, digest);
  }
}

void Engine::validate_out_plan(NodeId u, const OutPlan& plan) {
  for (Dir d : kAllDirs) {
    const PacketId p = plan.scheduled(d);
    if (p == kInvalidPacket) continue;
    MR_REQUIRE_MSG(p >= 0 && static_cast<std::size_t>(p) < packets_.size(),
                   "scheduled unknown packet");
    const Packet& pk = packets_[p];
    MR_REQUIRE_MSG(pk.location == u,
                   "node " << u << " scheduled packet " << p
                           << " which is at node " << pk.location);
    MR_REQUIRE_MSG(!packet_scheduled_[p],
                   "packet " << p << " scheduled on two outlinks");
    packet_scheduled_[p] = 1;
    MR_REQUIRE_MSG(neighbor_of(u, d) != kInvalidNode,
                   "node " << u << " scheduled packet off the mesh edge");
    if (enforce_minimal_) {
      // pk.profitable caches profitable_dirs(pk.location, pk.dest) and
      // pk.location == u was checked above.
      MR_REQUIRE_MSG(
          mask_has(pk.profitable, d),
          "minimal algorithm scheduled packet "
              << p << " on unprofitable outlink " << dir_name(d) << " at node "
              << u);
    } else if (max_stray_ >= 0) {
      // §5 nonminimal extension: a packet may never move more than δ nodes
      // beyond the rectangle of its shortest source→destination paths.
      const Coord target = topo_->coord_of(neighbor_of(u, d));
      const Coord s = topo_->coord_of(pk.source);
      const Coord t = topo_->coord_of(pk.dest);
      const bool inside =
          target.col >= std::min(s.col, t.col) - max_stray_ &&
          target.col <= std::max(s.col, t.col) + max_stray_ &&
          target.row >= std::min(s.row, t.row) - max_stray_ &&
          target.row <= std::max(s.row, t.row) + max_stray_;
      MR_REQUIRE_MSG(inside, "packet " << p << " strayed more than delta="
                                       << max_stray_
                                       << " beyond its rectangle");
    }
  }
}

bool Engine::step_once() {
  MR_REQUIRE_MSG(prepared_, "step before prepare()");
  if (all_delivered()) return false;
  if (num_shards_ > 1) return step_parallel();
  ++step_;

  // Phase profiling: zero clock reads unless enabled.
  using Clock = std::chrono::steady_clock;
  Clock::time_point step_begin, phase_begin;
  if (profiling_) step_begin = phase_begin = Clock::now();
  const auto phase_end = [&](StepPhase p) {
    if (!profiling_) return;
    const Clock::time_point now = Clock::now();
    phase_profile_.seconds[static_cast<int>(p)] +=
        std::chrono::duration<double>(now - phase_begin).count();
    phase_begin = now;
  };

  const bool observed = !observers_.empty();
  injected_this_step_ = 0;
  injected_deliveries_.clear();
  fault_blocked_this_step_ = 0;
  fault_deferred_this_step_ = 0;
  apply_faults(step_);
  exchanges_before_step_ = static_cast<std::int64_t>(exchange_count_);
  inject_due_packets();
  merge_active();
  if (profiling_) phase_begin = Clock::now();  // injection is out-of-phase

  // ----- (a) outqueue policies schedule packets -------------------------
  moves_.clear();
  for (NodeId u : active_) {
    if (node_packets_.empty(u)) continue;
    out_plan_.clear();
    algorithm_->plan_out(*this, u, out_plan_);
    validate_out_plan(u, out_plan_);
    for (Dir d : kAllDirs) {
      const PacketId p = out_plan_.scheduled(d);
      if (p == kInvalidPacket) continue;
      moves_.push_back(ScheduledMove{p, u, neighbor_of(u, d), d});
    }
  }
  // Clear the double-schedule flags set by validate_out_plan: exactly the
  // scheduled packets, so this is O(moves) instead of O(all packets).
  for (const ScheduledMove& m : moves_) packet_scheduled_[m.packet] = 0;
  // Reroute-or-stall: moves over links a fault took down are dropped (the
  // packet stays queued and is re-planned next step on the masked mask).
  filter_faulted_moves(moves_, fault_blocked_this_step_);
  phase_end(StepPhase::PlanOut);

  // ----- (b) adversary exchanges ----------------------------------------
  if (interceptor_ != nullptr) {
    in_interceptor_ = true;
    interceptor_->after_schedule(*this, moves_);
    in_interceptor_ = false;
    if (enforce_minimal_) {
      // Destinations may have changed; every scheduled move must still be
      // minimal, otherwise the exchange rules were applied incorrectly.
      // (exchange_destinations refreshed the cached masks.)
      for (const ScheduledMove& m : moves_) {
        MR_REQUIRE_MSG(
            mask_has(packets_[m.packet].profitable, m.dir),
            "exchange made scheduled move of packet " << m.packet
                                                      << " non-minimal");
      }
    }
  }
  phase_end(StepPhase::Interceptor);

  // ----- (c) inqueue policies accept/reject ------------------------------
  // Arrivals at the destination are delivered by the model itself (§2) and
  // are not shown to the inqueue policy.
  deliveries_.clear();
  for (auto& bucket : dir_offers_) bucket.clear();
  for (const ScheduledMove& m : moves_) {
    const Packet& pk = packets_[m.packet];
    if (pk.dest == m.to) {
      deliveries_.push_back(&m);
    } else {
      dir_offers_[dir_index(m.dir)].push_back(
          Offer{m.packet, m.from, m.to, m.dir, pk.profitable});
    }
  }
  // moves_ is produced in ascending sender order, and for a fixed travel
  // direction the neighbor map is monotone in the sender, so every bucket
  // is already sorted by receiving node — except across torus wrap links.
  if (wraps_) {
    for (auto& bucket : dir_offers_)
      std::sort(bucket.begin(), bucket.end(),
                [](const Offer& a, const Offer& b) { return a.to < b.to; });
  }

  std::int64_t moved_this_step = 0;

  // 4-way merge of the direction buckets: visits receiving nodes in
  // ascending order, offers within a node in travel-direction order —
  // the exact order the old (to, dir) comparison sort produced.
  accepted_.clear();
  std::array<std::size_t, kNumDirs> head{};
  for (;;) {
    NodeId v = kInvalidNode;
    for (int d = 0; d < kNumDirs; ++d) {
      if (head[d] < dir_offers_[d].size()) {
        const NodeId t = dir_offers_[d][head[d]].to;
        if (v == kInvalidNode || t < v) v = t;
      }
    }
    if (v == kInvalidNode) break;
    group_.clear();
    for (int d = 0; d < kNumDirs; ++d) {
      if (head[d] < dir_offers_[d].size() && dir_offers_[d][head[d]].to == v)
        group_.push_back(dir_offers_[d][head[d]++]);
    }
    in_plan_.reset(group_.size());
    algorithm_->plan_in(*this, v, std::span<const Offer>(group_), in_plan_);
    MR_REQUIRE(in_plan_.accept.size() == group_.size());
    for (std::size_t g = 0; g < group_.size(); ++g)
      if (in_plan_.accept[g]) accepted_.push_back(group_[g]);
  }
  phase_end(StepPhase::PlanIn);

  // ----- (d) transmission -------------------------------------------------
  if (observed) digest_moves_.clear();
  for (const ScheduledMove* m : deliveries_) {
    Packet& pk = packets_[m->packet];
    remove_from_node(pk.id);
    pk.location = kInvalidNode;
    pk.delivered_at = step_;
    ++delivered_count_;
    ++moved_this_step;
    if (observed)
      digest_moves_.push_back(
          MoveRecord{pk.id, m->from, m->to, m->dir, /*delivered=*/true});
  }
  for (const Offer& o : accepted_) {
    Packet& pk = packets_[o.packet];
    const NodeId from = pk.location;
    remove_from_node(pk.id);
    place_packet(pk.id, o.to, arrival_tag(o.dir), active_);
    pk.arrival_inlink =
        static_cast<std::uint8_t>(dir_index(opposite(o.dir)));
    ++moved_this_step;
    ++total_moves_;
    if (observed)
      digest_moves_.push_back(
          MoveRecord{pk.id, from, o.to, o.dir, /*delivered=*/false});
  }

  // No-overflow requirement of §2: check every node that received.
  for (const Offer& o : accepted_) {
    check_capacity_after_transmit(o.to);
    record_occupancy(o.to, max_occupancy_seen_);
  }
  phase_end(StepPhase::Transmit);

  // ----- (e) state updates -------------------------------------------------
  // update_state runs in ascending NodeId over every node that held, sent
  // or received a packet this step: the sorted pre-step active prefix plus
  // the nodes activated by transmissions (the appended tail, sorted here).
  // A drained node stays in the prefix until compaction below, so senders
  // are covered.
  {
    const std::size_t mid = active_sorted_;
    const std::size_t end = active_.size();
    std::sort(active_.begin() + static_cast<std::ptrdiff_t>(mid),
              active_.end());
    std::size_t i = 0, j = mid;
    while (i < mid || j < end) {
      NodeId v;
      if (j >= end || (i < mid && active_[i] < active_[j]))
        v = active_[i++];
      else
        v = active_[j++];
      algorithm_->update_state(*this, v);
    }
    std::inplace_merge(active_.begin(),
                       active_.begin() + static_cast<std::ptrdiff_t>(mid),
                       active_.end());
  }

  // Compact the active list (nodes that drained drop out).
  active_.erase(std::remove_if(active_.begin(), active_.end(),
                               [&](NodeId u) {
                                 if (node_packets_.empty(u)) {
                                   is_active_[u] = 0;
                                   return true;
                                 }
                                 return false;
                               }),
                active_.end());
  active_sorted_ = active_.size();
  phase_end(StepPhase::Update);

  // Stall detection (livelock guard for buggy algorithms). A step with no
  // movement and no successful injection is a stall step even while
  // packets wait outside the network for a full queue — those can only
  // enter once something moves. Future-dated injections are exogenous
  // progress, so they defer the check — unless the open-loop policy is on:
  // a pump keeps such injections pending for the whole run, so deferring
  // on them would mask any deadlock until the drain phase.
  if (moved_this_step == 0 && injected_this_step_ == 0 &&
      (stall_counts_pending_ || injection_cursor_ == injections_.size())) {
    ++stall_run_;
    if (stall_limit_ > 0 && stall_run_ >= stall_limit_)
      stalled_ = true;
  } else {
    stall_run_ = 0;
  }

  if (observed) {
    StepDigest digest;
    digest.step = step_;
    digest.moves = digest_moves_;
    digest.injected_deliveries = injected_deliveries_;
    digest.deliveries =
        static_cast<std::int64_t>(deliveries_.size() +
                                  injected_deliveries_.size());
    digest.injections = injected_this_step_;
    for (const MoveRecord& m : digest_moves_)
      ++digest.moves_by_dir[dir_index(m.dir)];
    digest.exchanges =
        static_cast<std::int64_t>(exchange_count_) - exchanges_before_step_;
    digest.stall_run = stall_run_;
    digest.fault_blocked = fault_blocked_this_step_;
    digest.fault_deferred = fault_deferred_this_step_;
    for (StepObserver* ob : observers_) ob->on_step(*this, digest);
  }

  if (profiling_) {
    ++phase_profile_.steps;
    phase_profile_.total_seconds +=
        std::chrono::duration<double>(Clock::now() - step_begin).count();
  }
  return true;
}

void Engine::distribute_to_shards() {
  // active_ is sorted and bands own contiguous ascending id ranges, so the
  // global list splits into the per-band lists by range.
  std::size_t i = 0;
  for (Shard& sh : shards_) {
    sh.active.clear();
    while (i < active_.size() && active_[i] < sh.node_end)
      sh.active.push_back(active_[i++]);
    sh.active_sorted = sh.active.size();
    sh.waiting.clear();
  }
  for (PacketId p : waiting_injections_)
    shards_[static_cast<std::size_t>(shard_of_node(packets_[p].source))]
        .waiting.push_back(p);
  waiting_injections_.clear();
  active_cache_valid_ = true;  // active_ still matches the band lists
}

// One step of the banded pipeline. Each phase runs band-local work only;
// cross-band data moves exclusively through single-writer mailboxes that
// are read after the phase barrier run_shards() provides. Every iteration
// order below mirrors the sequential path exactly — see DESIGN.md §9 for
// the order-equivalence argument.
bool Engine::step_parallel() {
  ++step_;
  using Clock = std::chrono::steady_clock;
  Clock::time_point step_begin, phase_begin;
  if (profiling_) step_begin = phase_begin = Clock::now();
  const auto phase_end = [&](StepPhase p) {
    if (!profiling_) return;
    const Clock::time_point now = Clock::now();
    phase_profile_.seconds[static_cast<int>(p)] +=
        std::chrono::duration<double>(now - phase_begin).count();
    phase_begin = now;
  };

  const bool observed = !observers_.empty();
  exchanges_before_step_ = static_cast<std::int64_t>(exchange_count_);
  // Fault windows open/close on the coordinator before any band runs; the
  // availability masks are read-only for the rest of the step, so the
  // bands' concurrent reads are race-free.
  fault_blocked_this_step_ = 0;
  fault_deferred_this_step_ = 0;
  apply_faults(step_);
  const auto self = [this](std::size_t si) { return static_cast<int>(si); };

  // Injection staging (coordinator): the shared cursor hands each newly due
  // packet to its source band, where it joins the band's waiting list.
  for (Shard& sh : shards_) {
    sh.due.clear();
    sh.due.swap(sh.waiting);
  }
  while (injection_cursor_ < injections_.size() &&
         injections_[injection_cursor_].first <= step_) {
    const PacketId p = injections_[injection_cursor_].second;
    shards_[static_cast<std::size_t>(shard_of_node(packets_[p].source))]
        .due.push_back(p);
    ++injection_cursor_;
  }

  // ---- injection + (a) outqueue policies, fused: both touch only nodes
  // and packets the band owns.
  run_shards([&](std::size_t si) {
    Shard& sh = shards_[si];
    sh.injected = 0;
    sh.moved = 0;
    sh.delivered = 0;
    sh.arrivals = 0;
    sh.fault_blocked = 0;
    sh.fault_deferred = 0;
    sh.injected_deliveries.clear();
    std::sort(sh.due.begin(), sh.due.end());
    inject_packet_list(sh.due, sh.waiting, sh.active,
                       observed ? &sh.injected_deliveries : nullptr,
                       sh.injected, sh.delivered, sh.fault_deferred,
                       sh.max_occupancy);
    {  // merge the band active list (mirror of merge_active())
      const auto mid =
          sh.active.begin() + static_cast<std::ptrdiff_t>(sh.active_sorted);
      std::sort(mid, sh.active.end());
      std::inplace_merge(sh.active.begin(), mid, sh.active.end());
      sh.active_sorted = sh.active.size();
    }
    Algorithm& alg = *shard_algorithms_[si];
    sh.moves.clear();
    for (NodeId u : sh.active) {
      if (node_packets_.empty(u)) continue;
      sh.out_plan.clear();
      alg.plan_out(*this, u, sh.out_plan);
      validate_out_plan(u, sh.out_plan);
      for (Dir d : kAllDirs) {
        const PacketId p = sh.out_plan.scheduled(d);
        if (p == kInvalidPacket) continue;
        sh.moves.push_back(ScheduledMove{p, u, neighbor_of(u, d), d});
      }
    }
    for (const ScheduledMove& m : sh.moves) packet_scheduled_[m.packet] = 0;
    // Reroute-or-stall (mirror of the sequential fault filter): all of a
    // band's moves originate at nodes it owns, so the per-band counters
    // partition the global count.
    filter_faulted_moves(sh.moves, sh.fault_blocked);

    // Classify: deliveries are sender-side operations wherever the target
    // node lives; surviving offers go to the own-band direction buckets or,
    // when the target row lies in another band, to the frontier mailbox
    // that band will read after the barrier. Only N/S moves can cross a
    // band edge (bands are whole rows).
    sh.deliveries.clear();
    for (auto& bucket : sh.dir_offers) bucket.clear();
    sh.frontier_up.clear();
    sh.frontier_down.clear();
    for (const ScheduledMove& m : sh.moves) {
      const Packet& pk = packets_[m.packet];
      if (pk.dest == m.to) {
        sh.deliveries.push_back(m);
        continue;
      }
      const Offer o{m.packet, m.from, m.to, m.dir, pk.profitable};
      if (shard_of_node(m.to) == self(si)) {
        sh.dir_offers[dir_index(m.dir)].push_back(o);
      } else if (m.dir == Dir::North) {
        sh.frontier_up.push_back(o);
      } else {
        sh.frontier_down.push_back(o);
      }
    }
  });
  phase_end(StepPhase::PlanOut);
  phase_end(StepPhase::Interceptor);  // interceptors are sequential-only

  // ---- (c) inqueue policies. Each band assembles its incoming offer
  // lists: own buckets plus the neighbours' frontier mailboxes. The
  // concatenation order (frontier-from-below before own for North, own
  // before frontier-from-above for South) keeps each list ascending in the
  // receiving node, wrap links excepted.
  run_shards([&](std::size_t si) {
    Shard& sh = shards_[si];
    const std::size_t S = static_cast<std::size_t>(num_shards_);
    const Shard& below = shards_[(si + S - 1) % S];  // cyclic predecessor
    const Shard& above = shards_[(si + 1) % S];      // cyclic successor
    for (auto& list : sh.in_offers) list.clear();
    auto& north = sh.in_offers[dir_index(Dir::North)];
    north.insert(north.end(), below.frontier_up.begin(),
                 below.frontier_up.end());
    const auto& own_n = sh.dir_offers[dir_index(Dir::North)];
    north.insert(north.end(), own_n.begin(), own_n.end());
    auto& south = sh.in_offers[dir_index(Dir::South)];
    const auto& own_s = sh.dir_offers[dir_index(Dir::South)];
    south.insert(south.end(), own_s.begin(), own_s.end());
    south.insert(south.end(), above.frontier_down.begin(),
                 above.frontier_down.end());
    for (Dir d : {Dir::East, Dir::West}) {
      auto& list = sh.in_offers[dir_index(d)];
      const auto& own = sh.dir_offers[dir_index(d)];
      list.insert(list.end(), own.begin(), own.end());
    }
    if (wraps_) {
      // Wrap links break the monotone-receiver property (mirrors the
      // sequential torus sort). Keys are unique per direction: a receiver
      // has one inlink per direction.
      for (auto& list : sh.in_offers)
        std::sort(list.begin(), list.end(),
                  [](const Offer& a, const Offer& b) { return a.to < b.to; });
    }

    // 4-way merge, identical to the sequential engine: receivers ascending,
    // offers within a receiver in direction-index order.
    sh.accepted.clear();
    sh.accept_back_prev.clear();
    sh.accept_back_next.clear();
    Algorithm& alg = *shard_algorithms_[si];
    std::array<std::size_t, kNumDirs> head{};
    for (;;) {
      NodeId v = kInvalidNode;
      for (int d = 0; d < kNumDirs; ++d) {
        if (head[d] < sh.in_offers[d].size()) {
          const NodeId t = sh.in_offers[d][head[d]].to;
          if (v == kInvalidNode || t < v) v = t;
        }
      }
      if (v == kInvalidNode) break;
      sh.group.clear();
      for (int d = 0; d < kNumDirs; ++d) {
        if (head[d] < sh.in_offers[d].size() &&
            sh.in_offers[d][head[d]].to == v)
          sh.group.push_back(sh.in_offers[d][head[d]++]);
      }
      sh.in_plan.reset(sh.group.size());
      alg.plan_in(*this, v, std::span<const Offer>(sh.group), sh.in_plan);
      MR_REQUIRE(sh.in_plan.accept.size() == sh.group.size());
      for (std::size_t g = 0; g < sh.group.size(); ++g) {
        if (!sh.in_plan.accept[g]) continue;
        const Offer& o = sh.group[g];
        sh.accepted.push_back(o);
        if (shard_of_node(o.from) != self(si)) {
          // Tell the sender band after the barrier (accept-back mailbox).
          if (o.dir == Dir::North)
            sh.accept_back_prev.push_back(o);
          else
            sh.accept_back_next.push_back(o);
        }
      }
    }
  });
  phase_end(StepPhase::PlanIn);

  // ---- (d) transmission, split at a barrier: removals are sender-band
  // work, insertions receiver-band work, and a frontier move's Packet
  // record is written by both — the barrier keeps the writes ordered.
  run_shards([&](std::size_t si) {
    Shard& sh = shards_[si];
    for (const ScheduledMove& m : sh.deliveries) {
      Packet& pk = packets_[m.packet];
      remove_from_node(pk.id);
      pk.location = kInvalidNode;
      pk.delivered_at = step_;
      ++sh.delivered;
      ++sh.moved;
    }
    for (const Offer& o : sh.accepted)
      if (shard_of_node(o.from) == self(si)) remove_from_node(o.packet);
    const std::size_t S = static_cast<std::size_t>(num_shards_);
    // Frontier offers this band sent that the neighbours accepted: the
    // successor's accept_back_prev and the predecessor's accept_back_next
    // both name senders in this band.
    for (const Offer& o : shards_[(si + 1) % S].accept_back_prev)
      remove_from_node(o.packet);
    for (const Offer& o : shards_[(si + S - 1) % S].accept_back_next)
      remove_from_node(o.packet);
  });
  run_shards([&](std::size_t si) {
    Shard& sh = shards_[si];
    for (const Offer& o : sh.accepted) {
      Packet& pk = packets_[o.packet];
      place_packet(pk.id, o.to, arrival_tag(o.dir), sh.active);
      pk.arrival_inlink = static_cast<std::uint8_t>(dir_index(opposite(o.dir)));
      ++sh.moved;
      ++sh.arrivals;
    }
    // No-overflow requirement of §2: check every node that received.
    for (const Offer& o : sh.accepted) {
      check_capacity_after_transmit(o.to);
      record_occupancy(o.to, sh.max_occupancy);
    }
  });
  phase_end(StepPhase::Transmit);

  // ---- (e) state updates + band active-list compaction -----------------
  run_shards([&](std::size_t si) {
    Shard& sh = shards_[si];
    Algorithm& alg = *shard_algorithms_[si];
    const std::size_t mid = sh.active_sorted;
    const std::size_t end = sh.active.size();
    std::sort(sh.active.begin() + static_cast<std::ptrdiff_t>(mid),
              sh.active.end());
    std::size_t i = 0, j = mid;
    while (i < mid || j < end) {
      NodeId v;
      if (j >= end || (i < mid && sh.active[i] < sh.active[j]))
        v = sh.active[i++];
      else
        v = sh.active[j++];
      alg.update_state(*this, v);
    }
    std::inplace_merge(sh.active.begin(),
                       sh.active.begin() + static_cast<std::ptrdiff_t>(mid),
                       sh.active.end());
    sh.active.erase(std::remove_if(sh.active.begin(), sh.active.end(),
                                   [&](NodeId u) {
                                     if (node_packets_.empty(u)) {
                                       is_active_[u] = 0;
                                       return true;
                                     }
                                     return false;
                                   }),
                    sh.active.end());
    sh.active_sorted = sh.active.size();
  });
  phase_end(StepPhase::Update);

  // ---- coordinator: fold the band counters, stall check, digest --------
  std::int64_t moved_this_step = 0;
  std::int64_t delivered_this_step = 0;
  std::int64_t arrivals_this_step = 0;
  injected_this_step_ = 0;
  for (const Shard& sh : shards_) {
    moved_this_step += sh.moved;
    delivered_this_step += sh.delivered;
    arrivals_this_step += sh.arrivals;
    injected_this_step_ += sh.injected;
    fault_blocked_this_step_ += sh.fault_blocked;
    fault_deferred_this_step_ += sh.fault_deferred;
    max_occupancy_seen_ = std::max(max_occupancy_seen_, sh.max_occupancy);
  }
  delivered_count_ += static_cast<std::size_t>(delivered_this_step);
  total_moves_ += arrivals_this_step;
  active_cache_valid_ = false;

  if (moved_this_step == 0 && injected_this_step_ == 0 &&
      (stall_counts_pending_ || injection_cursor_ == injections_.size())) {
    ++stall_run_;
    if (stall_limit_ > 0 && stall_run_ >= stall_limit_)
      stalled_ = true;
  } else {
    stall_run_ = 0;
  }

  if (observed) {
    // Digest assembly: band concatenation reproduces the sequential order
    // exactly — deliveries ascend in the sending node, accepted hops in
    // the receiving node, because bands cover ascending id ranges.
    digest_moves_.clear();
    for (const Shard& sh : shards_)
      for (const ScheduledMove& m : sh.deliveries)
        digest_moves_.push_back(
            MoveRecord{m.packet, m.from, m.to, m.dir, /*delivered=*/true});
    for (const Shard& sh : shards_)
      for (const Offer& o : sh.accepted)
        digest_moves_.push_back(
            MoveRecord{o.packet, o.from, o.to, o.dir, /*delivered=*/false});
    injected_deliveries_.clear();
    for (const Shard& sh : shards_)
      injected_deliveries_.insert(injected_deliveries_.end(),
                                  sh.injected_deliveries.begin(),
                                  sh.injected_deliveries.end());
    std::sort(injected_deliveries_.begin(), injected_deliveries_.end());
    StepDigest digest;
    digest.step = step_;
    digest.moves = digest_moves_;
    digest.injected_deliveries = injected_deliveries_;
    digest.deliveries = delivered_this_step;
    digest.injections = injected_this_step_;
    for (const MoveRecord& m : digest_moves_)
      ++digest.moves_by_dir[dir_index(m.dir)];
    digest.exchanges =
        static_cast<std::int64_t>(exchange_count_) - exchanges_before_step_;
    digest.stall_run = stall_run_;
    digest.fault_blocked = fault_blocked_this_step_;
    digest.fault_deferred = fault_deferred_this_step_;
    for (StepObserver* ob : observers_) ob->on_step(*this, digest);
  }

  if (profiling_) {
    ++phase_profile_.steps;
    phase_profile_.total_seconds +=
        std::chrono::duration<double>(Clock::now() - step_begin).count();
  }
  return true;
}

Step Engine::run(Step max_steps) {
  while (!all_delivered() && !stalled_ && step_ < max_steps) {
    if (!step_once()) break;
  }
  return step_;
}

void Engine::check_capacity_after_transmit(NodeId v) {
  if (layout_ == QueueLayout::Central) {
    MR_REQUIRE_MSG(occupancy(v) <= queue_capacity_,
                   "queue overflow at node " << v << ": " << occupancy(v)
                                             << " > k=" << queue_capacity_
                                             << " (step " << step_ << ")");
    return;
  }
  const std::size_t base = inlink_index(v, 0);
  for (int t = 0; t < kNumDirs; ++t) {
    MR_REQUIRE_MSG(inlink_occ_[base + t] <= queue_capacity_,
                   "inlink queue overflow at node "
                       << v << " queue " << t << " (step " << step_
                       << ")");
  }
}

void Engine::exchange_destinations(PacketId a, PacketId b) {
  MR_REQUIRE_MSG(in_interceptor_,
                 "exchange_destinations outside interceptor phase (b)");
  MR_REQUIRE(a != b);
  std::swap(packets_[a].dest, packets_[b].dest);
  for (PacketId p : {a, b}) {
    Packet& pk = packets_[p];
    if (pk.location != kInvalidNode)
      pk.profitable = topo_->profitable_dirs(pk.location, pk.dest);
  }
  ++exchange_count_;
}

}  // namespace mr
