# CMake generated Testfile for 
# Source directory: /root/repo/src/lower_bound
# Build directory: /root/repo/build/src/lower_bound
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
