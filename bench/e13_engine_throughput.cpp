// E13: engine micro-benchmarks — raw stepping throughput of the simulator
// under each router on a random permutation. Not a paper experiment; it
// establishes that the laptop-scale sweeps in E01–E12 are feasible and
// tracks regressions in the hot path. The sweep/record logic lives in
// engine_bench.{hpp,cpp}, shared with the E13 scenario registration.
//
// Modes:
//   (no args)          google-benchmark run, human-readable counters
//   --json[=PATH]      fixed sweep; writes machine-readable PATH (default
//                      BENCH_engine.json) and self-validates the schema —
//                      the PR-over-PR perf record
//   --smoke            with --json: tiny sizes, one rep (CI smoke test)
//   --validate=PATH    only validate an existing BENCH_engine.json
#include <benchmark/benchmark.h>

#include <cstdint>
#include <string>

#include "engine_bench.hpp"
#include "routing/registry.hpp"
#include "sim/engine.hpp"
#include "topo/mesh.hpp"

namespace {

void run_router(benchmark::State& state, const std::string& name) {
  const auto n = static_cast<std::int32_t>(state.range(0));
  const mr::Mesh mesh = mr::Mesh::square(n);
  const bool per_inlink = mr::make_algorithm(name)->queue_layout() ==
                          mr::QueueLayout::PerInlink;
  const mr::Workload w = mr::engine_bench::workload_for(mesh, per_inlink);
  std::int64_t steps = 0;
  std::int64_t moves = 0;
  for (auto _ : state) {
    auto algo = mr::make_algorithm(name);
    mr::Engine::Config config;
    config.queue_capacity = mr::engine_bench::kQueueCapacity;
    mr::Engine engine(mesh, config, *algo);
    for (const mr::Demand& d : w)
      engine.add_packet(d.source, d.dest, d.injected_at);
    engine.prepare();
    steps += engine.run(100000);
    moves += engine.total_moves();
    benchmark::DoNotOptimize(engine.delivered_count());
  }
  state.counters["steps"] = benchmark::Counter(
      static_cast<double>(steps), benchmark::Counter::kAvgIterations);
  state.counters["moves/s"] = benchmark::Counter(
      static_cast<double>(moves), benchmark::Counter::kIsRate);
}

void BM_DimensionOrder(benchmark::State& state) {
  run_router(state, "dimension-order");
}
void BM_AdaptiveAlternate(benchmark::State& state) {
  run_router(state, "adaptive-alternate");
}
void BM_GreedyMatch(benchmark::State& state) {
  run_router(state, "greedy-match");
}
void BM_FarthestFirst(benchmark::State& state) {
  run_router(state, "farthest-first");
}
void BM_BoundedDimensionOrder(benchmark::State& state) {
  run_router(state, "bounded-dimension-order");
}

}  // namespace

BENCHMARK(BM_DimensionOrder)->Arg(16)->Arg(32)->Arg(64);
BENCHMARK(BM_AdaptiveAlternate)->Arg(16)->Arg(32)->Arg(64);
BENCHMARK(BM_GreedyMatch)->Arg(16)->Arg(32)->Arg(64);
BENCHMARK(BM_FarthestFirst)->Arg(16)->Arg(32)->Arg(64);
BENCHMARK(BM_BoundedDimensionOrder)->Arg(16)->Arg(32)->Arg(64)->Arg(120);

int main(int argc, char** argv) {
  bool json = false;
  bool smoke = false;
  std::string path = "BENCH_engine.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (arg.rfind("--json=", 0) == 0) {
      json = true;
      path = arg.substr(7);
    } else if (arg == "--smoke") {
      smoke = true;
    } else if (arg.rfind("--validate=", 0) == 0) {
      return mr::engine_bench::validate_json(arg.substr(11)) ? 0 : 1;
    }
  }
  if (json) return mr::engine_bench::json_sweep(path, smoke);

  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
