// E10 — Lemmas 21–32: per-phase budgets of the §6 algorithm. For every
// segment kind at every iteration, compares the measured last useful step
// (the last step in which a packet moved) against the lemma's duration
// budget, and the measured peak per-node staging/active occupancy against
// the lemma's queue bound. The online checks inside FastRouteAlgorithm
// already abort on violation; this table shows the slack.
#include <algorithm>
#include <map>

#include "fastroute/bounds.hpp"
#include "fastroute/fastroute.hpp"
#include "scenarios.hpp"
#include "sim/engine.hpp"
#include "topo/mesh.hpp"
#include "workload/permutation.hpp"

namespace mr::scenarios {

void register_e10(ScenarioRegistry& registry) {
  ScenarioSpec spec;
  spec.id = "E10";
  spec.label = "fastroute-phases";
  spec.title = "per-phase budgets of the §6 algorithm";
  spec.paper_ref = "Lemmas 21-32, Figures 5-7";
  spec.body = [](ScenarioReport& ctx) {
    const std::int32_t n = ctx.scale() == Scale::Small ? 27 : 81;
    const Mesh mesh = Mesh::square(n);
    FastRouteAlgorithm algo;
    Engine::Config config;
    config.queue_capacity = algo.queue_bound();
    config.stall_limit = 0;
    Engine e(mesh, config, algo);
    for (const Demand& d : random_permutation(mesh, 5))
      e.add_packet(d.source, d.dest, d.injected_at);
    e.prepare();
    e.run(algo.schedule_length() + 1);
    ctx.check("all-delivered", e.all_delivered());
    if (!e.all_delivered()) {
      ctx.note("ERROR: not all packets delivered");
      return;
    }

    // Aggregate segments by (kind, j).
    struct Agg {
      Step budget = 0;
      Step max_last_move = 0;
      std::int64_t moves = 0;
      int peak = 0;
      int count = 0;
    };
    std::map<std::pair<int, int>, Agg> aggs;
    for (const auto& seg : algo.segments()) {
      Agg& a = aggs[{static_cast<int>(seg.kind), seg.j}];
      a.budget = seg.length;
      a.max_last_move = std::max(a.max_last_move, seg.last_move_offset);
      a.moves += seg.moves;
      a.peak = std::max(a.peak, seg.peak_active_per_node);
      ++a.count;
    }

    FastRouteBounds bounds;
    Table table({"phase", "iter j", "segments", "budget (lemma)",
                 "last useful step", "total moves", "peak/node",
                 "queue bound (lemma)"});
    bool budgets_hold = true;
    for (const auto& [key, a] : aggs) {
      const auto kind = static_cast<FastRouteAlgorithm::Kind>(key.first);
      std::string qbound = "-";
      if (kind == FastRouteAlgorithm::Kind::March)
        qbound = std::to_string(bounds.march_queue_bound());
      if (kind == FastRouteAlgorithm::Kind::SortSmoothEven ||
          kind == FastRouteAlgorithm::Kind::SortSmoothOdd)
        qbound = std::to_string(bounds.sort_smooth_queue_bound());
      if (kind == FastRouteAlgorithm::Kind::Balance) qbound = "2 (Lemma 24)";
      budgets_hold = budgets_hold && a.max_last_move <= a.budget;
      table.row()
          .add(FastRouteAlgorithm::kind_name(kind))
          .add(key.second)
          .add(a.count)
          .add(a.budget)
          .add(a.max_last_move)
          .add(a.moves)
          .add(std::int64_t(a.peak))
          .add(qbound);
    }
    ctx.table(table);
    ctx.note("n = " + std::to_string(n) + "; schedule length = " +
             std::to_string(algo.schedule_length()) +
             " steps; engine peak queue = " +
             std::to_string(e.max_occupancy_seen()) + " (Lemma 28 bound " +
             std::to_string(algo.queue_bound()) + ").");
    ctx.check("last-useful-step-within-lemma-budget", budgets_hold);
    ctx.check("engine-peak-queue-under-lemma28",
              e.max_occupancy_seen() <= algo.queue_bound());
  };
  registry.add(std::move(spec));
}

}  // namespace mr::scenarios
