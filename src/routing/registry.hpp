// Factory for the built-in routing algorithms, keyed by name. Used by the
// examples and the benchmark binaries.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "sim/algorithm.hpp"

namespace mr {

/// Creates a fresh instance of the named algorithm. Throws
/// InvariantViolation for unknown names. Known names:
///   dimension-order, adaptive-alternate, greedy-match, farthest-first,
///   bounded-dimension-order
std::unique_ptr<Algorithm> make_algorithm(const std::string& name);

/// Names of all registered algorithms, in a stable order.
std::vector<std::string> algorithm_names();

/// Names of the destination-exchangeable minimal adaptive algorithms (the
/// class covered by the Theorem 14 lower bound).
std::vector<std::string> dx_minimal_algorithm_names();

}  // namespace mr
