file(REMOVE_RECURSE
  "CMakeFiles/e15_nonminimal_stray.dir/e15_nonminimal_stray.cpp.o"
  "CMakeFiles/e15_nonminimal_stray.dir/e15_nonminimal_stray.cpp.o.d"
  "e15_nonminimal_stray"
  "e15_nonminimal_stray.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e15_nonminimal_stray.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
