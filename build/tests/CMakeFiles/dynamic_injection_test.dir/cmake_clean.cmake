file(REMOVE_RECURSE
  "CMakeFiles/dynamic_injection_test.dir/dynamic_injection_test.cpp.o"
  "CMakeFiles/dynamic_injection_test.dir/dynamic_injection_test.cpp.o.d"
  "dynamic_injection_test"
  "dynamic_injection_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynamic_injection_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
