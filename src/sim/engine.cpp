#include "sim/engine.hpp"

#include <algorithm>

namespace mr {

namespace {
// 64-bit FNV-1a, used for configuration fingerprints.
struct Fnv {
  std::uint64_t h = 14695981039346656037ULL;
  void mix(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xFF;
      h *= 1099511628211ULL;
    }
  }
};
}  // namespace

Engine::Engine(const Mesh& mesh, Config config, Algorithm& algorithm)
    : mesh_(mesh),
      config_(config),
      algorithm_(algorithm),
      layout_(algorithm.queue_layout()),
      enforce_minimal_(algorithm.minimal()),
      max_stray_(algorithm.max_stray()) {
  MR_REQUIRE(config_.queue_capacity >= 1);
  const auto n = static_cast<std::size_t>(mesh_.num_nodes());
  node_packets_.resize(n);
  node_state_.assign(n, 0);
  is_active_.assign(n, 0);
  node_touched_.assign(n, 0);
}

PacketId Engine::add_packet(NodeId source, NodeId dest, Step injected_at) {
  MR_REQUIRE_MSG(!prepared_, "add_packet after prepare()");
  MR_REQUIRE(source >= 0 && source < mesh_.num_nodes());
  MR_REQUIRE(dest >= 0 && dest < mesh_.num_nodes());
  MR_REQUIRE(injected_at >= 0);
  Packet pk;
  pk.id = static_cast<PacketId>(packets_.size());
  pk.source = source;
  pk.dest = dest;
  pk.injected_at = injected_at;
  packets_.push_back(pk);
  injections_.emplace_back(injected_at, pk.id);
  return pk.id;
}

void Engine::add_observer(Observer* observer) {
  MR_REQUIRE(observer != nullptr);
  observers_.push_back(observer);
}

QueueTag Engine::arrival_tag(Dir travel_dir) const {
  if (layout_ == QueueLayout::Central) return kCentralQueue;
  return static_cast<QueueTag>(dir_index(opposite(travel_dir)));
}

int Engine::occupancy(NodeId u, QueueTag tag) const {
  MR_REQUIRE(layout_ == QueueLayout::PerInlink);
  int c = 0;
  for (PacketId p : node_packets_[u])
    if (packets_[p].queue == tag) ++c;
  return c;
}

void Engine::place_packet(PacketId p, NodeId node, QueueTag tag) {
  Packet& pk = packets_[p];
  pk.location = node;
  pk.queue = tag;
  pk.arrived_at = step_;
  node_packets_[node].push_back(p);
  if (!is_active_[node]) {
    is_active_[node] = 1;
    active_.push_back(node);
  }
}

void Engine::record_occupancy(NodeId u) {
  // Transmissions within a step are simultaneous in the model, so peak
  // occupancy is only meaningful *between* steps (after phase (d)).
  if (layout_ == QueueLayout::Central) {
    max_occupancy_seen_ = std::max(max_occupancy_seen_, occupancy(u));
    return;
  }
  for (QueueTag t = 0; t < kNumDirs; ++t)
    max_occupancy_seen_ = std::max(max_occupancy_seen_, occupancy(u, t));
}

void Engine::remove_from_node(PacketId p) {
  Packet& pk = packets_[p];
  auto& q = node_packets_[pk.location];
  auto it = std::find(q.begin(), q.end(), p);
  MR_REQUIRE(it != q.end());
  q.erase(it);  // preserves arrival order of the remaining packets
}

void Engine::inject_due_packets() {
  // Re-offer packets that were due earlier but found a full queue, then
  // newly due packets, all in deterministic (id) order.
  std::vector<PacketId> due;
  due.swap(waiting_injections_);
  while (injection_cursor_ < injections_.size() &&
         injections_[injection_cursor_].first <= step_) {
    due.push_back(injections_[injection_cursor_].second);
    ++injection_cursor_;
  }
  if (due.empty()) return;
  std::sort(due.begin(), due.end());
  for (PacketId p : due) {
    Packet& pk = packets_[p];
    if (pk.source == pk.dest) {
      pk.delivered_at = step_;
      ++delivered_count_;
      for (Observer* ob : observers_) ob->on_deliver(*this, pk);
      continue;
    }
    const QueueTag tag = layout_ == QueueLayout::Central
                             ? kCentralQueue
                             : injection_queue_tag(p);
    const int used = layout_ == QueueLayout::Central
                         ? occupancy(pk.source)
                         : occupancy(pk.source, tag);
    if (used >= config_.queue_capacity) {
      waiting_injections_.push_back(p);  // §5: wait outside the network
      continue;
    }
    place_packet(p, pk.source, tag);
    pk.arrival_inlink = kNoInlink;
    record_occupancy(pk.source);
  }
}

QueueTag Engine::injection_queue_tag(PacketId p) const {
  // A freshly injected packet joins the inlink queue it would have arrived
  // on had it been travelling already: the queue opposite one of its
  // profitable directions. Row movement is preferred so that dimension-order
  // routers see row packets in E/W queues. Uses only profitable directions,
  // hence destination-exchangeable-safe.
  const Packet& pk = packets_[p];
  const DirMask m = mesh_.profitable_dirs(pk.source, pk.dest);
  for (Dir d : {Dir::East, Dir::West, Dir::North, Dir::South})
    if (mask_has(m, d)) return static_cast<QueueTag>(dir_index(opposite(d)));
  return static_cast<QueueTag>(dir_index(Dir::South));
}

void Engine::prepare() {
  MR_REQUIRE_MSG(!prepared_, "prepare() called twice");
  prepared_ = true;
  std::stable_sort(injections_.begin(), injections_.end());
  step_ = 0;
  inject_due_packets();
  // §3: the initial state of nodes/packets may depend on the initial
  // arrangement; the algorithm sets them here.
  algorithm_.init(*this);
  packet_scheduled_.assign(packets_.size(), 0);
}

void Engine::validate_out_plan(NodeId u, const OutPlan& plan) {
  for (Dir d : kAllDirs) {
    const PacketId p = plan.scheduled(d);
    if (p == kInvalidPacket) continue;
    MR_REQUIRE_MSG(p >= 0 && static_cast<std::size_t>(p) < packets_.size(),
                   "scheduled unknown packet");
    const Packet& pk = packets_[p];
    MR_REQUIRE_MSG(pk.location == u,
                   "node " << u << " scheduled packet " << p
                           << " which is at node " << pk.location);
    MR_REQUIRE_MSG(!packet_scheduled_[p],
                   "packet " << p << " scheduled on two outlinks");
    packet_scheduled_[p] = 1;
    MR_REQUIRE_MSG(mesh_.neighbor(u, d) != kInvalidNode,
                   "node " << u << " scheduled packet off the mesh edge");
    if (enforce_minimal_) {
      MR_REQUIRE_MSG(
          mesh_.is_profitable(u, d, pk.dest),
          "minimal algorithm scheduled packet "
              << p << " on unprofitable outlink " << dir_name(d) << " at node "
              << u);
    } else if (max_stray_ >= 0) {
      // §5 nonminimal extension: a packet may never move more than δ nodes
      // beyond the rectangle of its shortest source→destination paths.
      const Coord target = mesh_.coord_of(mesh_.neighbor(u, d));
      const Coord s = mesh_.coord_of(pk.source);
      const Coord t = mesh_.coord_of(pk.dest);
      const bool inside =
          target.col >= std::min(s.col, t.col) - max_stray_ &&
          target.col <= std::max(s.col, t.col) + max_stray_ &&
          target.row >= std::min(s.row, t.row) - max_stray_ &&
          target.row <= std::max(s.row, t.row) + max_stray_;
      MR_REQUIRE_MSG(inside, "packet " << p << " strayed more than delta="
                                       << max_stray_
                                       << " beyond its rectangle");
    }
  }
}

bool Engine::step_once() {
  MR_REQUIRE_MSG(prepared_, "step before prepare()");
  if (all_delivered()) return false;
  ++step_;

  inject_due_packets();

  // ----- (a) outqueue policies schedule packets -------------------------
  moves_.clear();
  std::sort(active_.begin(), active_.end());
  std::fill(packet_scheduled_.begin(), packet_scheduled_.end(), 0);
  for (NodeId u : active_) {
    if (node_packets_[u].empty()) continue;
    out_plan_.clear();
    algorithm_.plan_out(*this, u, out_plan_);
    validate_out_plan(u, out_plan_);
    for (Dir d : kAllDirs) {
      const PacketId p = out_plan_.scheduled(d);
      if (p == kInvalidPacket) continue;
      moves_.push_back(ScheduledMove{p, u, mesh_.neighbor(u, d), d});
    }
  }

  // ----- (b) adversary exchanges ----------------------------------------
  if (interceptor_ != nullptr) {
    in_interceptor_ = true;
    interceptor_->after_schedule(*this, moves_);
    in_interceptor_ = false;
    if (enforce_minimal_) {
      // Destinations may have changed; every scheduled move must still be
      // minimal, otherwise the exchange rules were applied incorrectly.
      for (const ScheduledMove& m : moves_) {
        MR_REQUIRE_MSG(
            mesh_.is_profitable(m.from, m.dir, packets_[m.packet].dest),
            "exchange made scheduled move of packet " << m.packet
                                                      << " non-minimal");
      }
    }
  }

  // ----- (c) inqueue policies accept/reject ------------------------------
  // Arrivals at the destination are delivered by the model itself (§2) and
  // are not shown to the inqueue policy.
  offers_.clear();
  std::vector<const ScheduledMove*> deliveries;
  for (const ScheduledMove& m : moves_) {
    const Packet& pk = packets_[m.packet];
    if (pk.dest == m.to) {
      deliveries.push_back(&m);
    } else {
      offers_.push_back(Offer{m.packet, m.from, m.to, m.dir,
                              mesh_.profitable_dirs(m.from, pk.dest)});
    }
  }
  std::sort(offers_.begin(), offers_.end(),
            [](const Offer& a, const Offer& b) {
              if (a.to != b.to) return a.to < b.to;
              return dir_index(a.dir) < dir_index(b.dir);
            });

  std::int64_t moved_this_step = 0;
  touched_nodes_.clear();
  auto touch = [&](NodeId v) {
    if (!node_touched_[v]) {
      node_touched_[v] = 1;
      touched_nodes_.push_back(v);
    }
  };
  for (NodeId u : active_) touch(u);

  // Accepted moves, gathered per target group then applied in phase (d).
  std::vector<const Offer*> accepted;
  for (std::size_t i = 0; i < offers_.size();) {
    std::size_t j = i;
    while (j < offers_.size() && offers_[j].to == offers_[i].to) ++j;
    const NodeId v = offers_[i].to;
    const std::span<const Offer> group(&offers_[i], j - i);
    in_plan_.reset(group.size());
    algorithm_.plan_in(*this, v, group, in_plan_);
    MR_REQUIRE(in_plan_.accept.size() == group.size());
    for (std::size_t g = 0; g < group.size(); ++g)
      if (in_plan_.accept[g]) accepted.push_back(&offers_[i + g]);
    i = j;
  }

  // ----- (d) transmission -------------------------------------------------
  for (const ScheduledMove* m : deliveries) {
    Packet& pk = packets_[m->packet];
    remove_from_node(pk.id);
    pk.location = kInvalidNode;
    pk.delivered_at = step_;
    ++delivered_count_;
    ++moved_this_step;
    for (Observer* ob : observers_) ob->on_move(*this, pk, m->from, m->to);
    for (Observer* ob : observers_) ob->on_deliver(*this, pk);
  }
  for (const Offer* o : accepted) {
    Packet& pk = packets_[o->packet];
    const NodeId from = pk.location;
    remove_from_node(pk.id);
    place_packet(pk.id, o->to, arrival_tag(o->dir));
    pk.arrival_inlink =
        static_cast<std::uint8_t>(dir_index(opposite(o->dir)));
    ++moved_this_step;
    ++total_moves_;
    touch(o->to);
    for (Observer* ob : observers_) ob->on_move(*this, pk, from, o->to);
  }

  // No-overflow requirement of §2: check every node that received.
  for (const Offer* o : accepted) {
    check_capacity_after_transmit(o->to);
    record_occupancy(o->to);
  }

  // ----- (e) state updates -------------------------------------------------
  std::sort(touched_nodes_.begin(), touched_nodes_.end());
  for (NodeId v : touched_nodes_) {
    algorithm_.update_state(*this, v);
    node_touched_[v] = 0;
  }

  // Compact the active list (nodes that drained drop out).
  active_.erase(std::remove_if(active_.begin(), active_.end(),
                               [&](NodeId u) {
                                 if (node_packets_[u].empty()) {
                                   is_active_[u] = 0;
                                   return true;
                                 }
                                 return false;
                               }),
                active_.end());

  // Stall detection (livelock guard for buggy algorithms).
  if (moved_this_step == 0 && waiting_injections_.empty() &&
      injection_cursor_ == injections_.size()) {
    ++stall_run_;
    if (config_.stall_limit > 0 && stall_run_ >= config_.stall_limit)
      stalled_ = true;
  } else {
    stall_run_ = 0;
  }

  for (Observer* ob : observers_) ob->on_step_end(*this);
  return true;
}

Step Engine::run(Step max_steps) {
  while (!all_delivered() && !stalled_ && step_ < max_steps) {
    if (!step_once()) break;
  }
  return step_;
}

void Engine::check_capacity_after_transmit(NodeId v) {
  if (layout_ == QueueLayout::Central) {
    MR_REQUIRE_MSG(occupancy(v) <= config_.queue_capacity,
                   "queue overflow at node " << v << ": " << occupancy(v)
                                             << " > k=" << config_.queue_capacity
                                             << " (step " << step_ << ")");
    return;
  }
  for (QueueTag t = 0; t < kNumDirs; ++t) {
    MR_REQUIRE_MSG(occupancy(v, t) <= config_.queue_capacity,
                   "inlink queue overflow at node "
                       << v << " queue " << int(t) << " (step " << step_
                       << ")");
  }
}

void Engine::exchange_destinations(PacketId a, PacketId b) {
  MR_REQUIRE_MSG(in_interceptor_,
                 "exchange_destinations outside interceptor phase (b)");
  MR_REQUIRE(a != b);
  std::swap(packets_[a].dest, packets_[b].dest);
  ++exchange_count_;
}

std::uint64_t Engine::fingerprint(bool include_dest) const {
  Fnv f;
  for (NodeId u = 0; u < mesh_.num_nodes(); ++u) {
    const auto& q = node_packets_[u];
    if (q.empty() && node_state_[u] == 0) continue;
    f.mix(static_cast<std::uint64_t>(u));
    f.mix(node_state_[u]);
    for (PacketId p : q) {
      const Packet& pk = packets_[p];
      f.mix(static_cast<std::uint64_t>(pk.id));
      f.mix(static_cast<std::uint64_t>(pk.source));
      if (include_dest) f.mix(static_cast<std::uint64_t>(pk.dest));
      f.mix(pk.state);
      f.mix(pk.queue);
      f.mix(pk.arrival_inlink);
      f.mix(static_cast<std::uint64_t>(pk.arrived_at));
    }
  }
  return f.h;
}

}  // namespace mr
