#include "engine_bench.hpp"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <optional>
#include <sstream>

#include "core/json_min.hpp"
#include "routing/registry.hpp"
#include "sim/engine.hpp"
#include "topo/mesh.hpp"

namespace mr::engine_bench {

Workload workload_for(const Mesh& mesh, bool per_inlink) {
  Workload w;
  for (const Demand& d : random_permutation(mesh, 42)) {
    const Coord s = mesh.coord_of(d.source);
    const Coord t = mesh.coord_of(d.dest);
    if (per_inlink || (t.col >= s.col && t.row >= s.row)) w.push_back(d);
  }
  return w;
}

RunStats run_once(const std::string& name, std::int32_t n) {
  return run_once(name, n, /*shards=*/1, /*threads=*/1, /*max_steps=*/0);
}

RunStats run_once(const std::string& name, std::int32_t n, int shards,
                  int threads, std::int64_t max_steps) {
  const Mesh mesh = Mesh::square(n);
  const bool per_inlink =
      make_algorithm(name)->queue_layout() == QueueLayout::PerInlink;
  const Workload w = workload_for(mesh, per_inlink);
  RunStats r;
  r.router = name;
  r.layout = per_inlink ? "per-inlink" : "central";
  r.n = n;
  r.shards = shards;
  r.threads = threads;
  r.max_steps = max_steps;
  Engine::Config config;
  config.queue_capacity = kQueueCapacity;
  config.shards = shards;
  config.threads = threads;
  Engine engine(mesh, config, [&] { return make_algorithm(name); });
  for (const Demand& d : w) engine.add_packet(d.source, d.dest, d.injected_at);
  engine.prepare();
  const auto t0 = std::chrono::steady_clock::now();
  r.steps = engine.run(max_steps > 0 ? max_steps : 200000);
  const auto t1 = std::chrono::steady_clock::now();
  r.seconds = std::chrono::duration<double>(t1 - t0).count();
  r.moves = engine.total_moves();
  r.moves_per_sec =
      r.seconds > 0 ? static_cast<double>(r.moves) / r.seconds : 0;
  r.delivered = engine.delivered_count();
  r.packets = engine.num_packets();
  r.stalled = engine.stalled();
  return r;
}

bool write_json(const std::string& path, const std::vector<RunStats>& all,
                bool smoke) {
  std::ofstream out(path);
  out << "{\n"
      << "  \"schema\": \"" << kSchema << "\",\n"
      << "  \"scale\": \"" << (smoke ? "smoke" : "default") << "\",\n"
      << "  \"queue_capacity\": " << kQueueCapacity << ",\n"
      << "  \"results\": [\n";
  for (std::size_t i = 0; i < all.size(); ++i) {
    const RunStats& r = all[i];
    out << "    {\"router\": \"" << r.router << "\", \"layout\": \""
        << r.layout << "\", \"n\": " << r.n << ", \"steps\": " << r.steps
        << ", \"moves\": " << r.moves << ", \"seconds\": " << r.seconds
        << ", \"moves_per_sec\": " << r.moves_per_sec
        << ", \"delivered\": " << r.delivered
        << ", \"packets\": " << r.packets << ", \"stalled\": "
        << (r.stalled ? "true" : "false") << ", \"shards\": " << r.shards
        << ", \"threads\": " << r.threads
        << ", \"max_steps\": " << r.max_steps << "}"
        << (i + 1 < all.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  return out.good();
}

bool validate_json(const std::string& path) {
  std::ifstream in(path);
  if (!in.good()) {
    std::fprintf(stderr, "validate: cannot read %s\n", path.c_str());
    return false;
  }
  std::ostringstream buf;
  buf << in.rdbuf();

  auto complain = [&](const std::string& msg) {
    std::fprintf(stderr, "validate: %s: %s\n", path.c_str(), msg.c_str());
    return false;
  };

  std::string parse_error;
  const std::optional<json::Value> doc = json::parse(buf.str(), &parse_error);
  if (!doc) return complain(parse_error);
  if (!doc->is_object()) return complain("top level is not an object");

  const json::Value* schema = doc->find("schema");
  if (schema == nullptr || !schema->is_string() || schema->string != kSchema)
    return complain("missing or wrong \"schema\"");
  const json::Value* qc = doc->find("queue_capacity");
  if (qc == nullptr || !qc->is_number() || qc->number < 1)
    return complain("missing or non-positive \"queue_capacity\"");
  const json::Value* results = doc->find("results");
  if (results == nullptr || !results->is_array())
    return complain("missing \"results\" array");

  int count = 0;
  for (const json::Value& entry : results->array) {
    if (!entry.is_object())
      return complain("results[" + std::to_string(count) +
                      "] is not an object");
    const json::Value* router = entry.find("router");
    if (router == nullptr || !router->is_string() || router->string.empty())
      return complain("results entry: missing \"router\" string");
    for (const char* key : {"n", "steps", "seconds", "moves_per_sec"}) {
      const json::Value* v = entry.find(key);
      if (v == nullptr || !v->is_number() || v->number <= 0)
        return complain("results entry \"" + router->string +
                        "\": missing or non-positive \"" + key + "\"");
    }
    for (const char* key : {"moves", "delivered", "packets"}) {
      const json::Value* v = entry.find(key);
      if (v == nullptr || !v->is_number() || v->number < 0)
        return complain("results entry \"" + router->string +
                        "\": missing or negative \"" + key + "\"");
    }
    // Engine-mode keys are optional (older records lack them) but must be
    // positive when present.
    for (const char* key : {"shards", "threads"}) {
      const json::Value* v = entry.find(key);
      if (v != nullptr && (!v->is_number() || v->number < 1))
        return complain("results entry \"" + router->string +
                        "\": non-positive \"" + key + "\"");
    }
    ++count;
  }
  if (count == 0) return complain("results array is empty");
  std::printf("validate: %s ok (%d results)\n", path.c_str(), count);
  return true;
}

int throughput_guard(const std::string& baseline_path) {
  std::ifstream in(baseline_path);
  if (!in.good()) {
    std::fprintf(stderr, "guard: cannot read %s\n", baseline_path.c_str());
    return 1;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  std::string parse_error;
  const std::optional<json::Value> doc = json::parse(buf.str(), &parse_error);
  if (!doc || !doc->is_object()) {
    std::fprintf(stderr, "guard: %s: malformed JSON: %s\n",
                 baseline_path.c_str(), parse_error.c_str());
    return 1;
  }
  const json::Value* results = doc->find("results");
  if (results == nullptr || !results->is_array() || results->array.empty()) {
    std::fprintf(stderr, "guard: %s: missing \"results\"\n",
                 baseline_path.c_str());
    return 1;
  }

  double tol = 0.25;
  if (const char* env = std::getenv("MESHROUTE_GUARD_TOL")) {
    const double v = std::atof(env);
    if (v > 0 && v < 1) tol = v;
  }

  bool ok = true;
  int compared = 0;
  for (const json::Value& entry : results->array) {
    const json::Value* router = entry.find("router");
    const json::Value* n = entry.find("n");
    const json::Value* rate = entry.find("moves_per_sec");
    if (router == nullptr || !router->is_string() || n == nullptr ||
        !n->is_number() || rate == nullptr || !rate->is_number() ||
        rate->number <= 0)
      continue;
    // Reproduce the row's engine mode so the comparison is like-for-like.
    const json::Value* shards_v = entry.find("shards");
    const json::Value* threads_v = entry.find("threads");
    const json::Value* max_steps_v = entry.find("max_steps");
    const int shards =
        shards_v != nullptr && shards_v->is_number()
            ? static_cast<int>(shards_v->number) : 1;
    const int threads =
        threads_v != nullptr && threads_v->is_number()
            ? static_cast<int>(threads_v->number) : 1;
    const std::int64_t max_steps =
        max_steps_v != nullptr && max_steps_v->is_number()
            ? static_cast<std::int64_t>(max_steps_v->number) : 0;
    // Best of 3: guards against a one-off scheduling hiccup being read as
    // a regression.
    RunStats best;
    for (int rep = 0; rep < 3; ++rep) {
      RunStats r = run_once(router->string,
                            static_cast<std::int32_t>(n->number), shards,
                            threads, max_steps);
      if (rep == 0 || r.moves_per_sec > best.moves_per_sec) best = r;
    }
    const double floor = rate->number * (1.0 - tol);
    const bool pass = best.moves_per_sec >= floor;
    std::printf("guard: %-24s n=%-4d %8.2f Kmoves/s vs baseline %8.2f (floor "
                "%8.2f) %s\n",
                best.router.c_str(), best.n, best.moves_per_sec / 1e3,
                rate->number / 1e3, floor / 1e3, pass ? "ok" : "REGRESSED");
    ok = ok && pass;
    ++compared;
  }
  if (compared == 0) {
    std::fprintf(stderr, "guard: %s: no comparable results\n",
                 baseline_path.c_str());
    return 1;
  }
  std::printf("guard: %d results vs %s, tolerance %.0f%%: %s\n", compared,
              baseline_path.c_str(), tol * 100, ok ? "ok" : "FAIL");
  return ok ? 0 : 1;
}

int json_sweep(const std::string& path, bool smoke) {
  const std::vector<std::int32_t> sizes =
      smoke ? std::vector<std::int32_t>{8}
            : std::vector<std::int32_t>{32, 64, 120};
  const int reps = smoke ? 1 : 3;
  std::vector<RunStats> all;
  for (const std::string& name : algorithm_names()) {
    for (std::int32_t n : sizes) {
      RunStats best;
      for (int rep = 0; rep < reps; ++rep) {
        RunStats r = run_once(name, n);
        if (rep == 0 || r.moves_per_sec > best.moves_per_sec) best = r;
      }
      std::printf("%-24s n=%-4d steps=%-6lld moves=%-9lld %8.2f Kmoves/s%s\n",
                  best.router.c_str(), best.n,
                  static_cast<long long>(best.steps),
                  static_cast<long long>(best.moves),
                  best.moves_per_sec / 1e3, best.stalled ? " STALLED" : "");
      all.push_back(best);
    }
  }
  if (!smoke) {
    // Scaled sharded rows: a 1024×1024 bounded-dimension-order run,
    // step-budgeted (draining a million-packet permutation would dominate
    // the sweep), sequential vs sharded. The routing work is bit-identical
    // across rows — only wall-clock differs — so the moves_per_sec ratio
    // is a direct parallel-speedup measurement on the host machine.
    constexpr std::int32_t kBigN = 1024;
    constexpr std::int64_t kBigBudget = 48;
    struct Mode {
      int shards;
      int threads;
    };
    for (const Mode m : {Mode{1, 1}, Mode{4, 4}, Mode{8, 8}}) {
      RunStats r = run_once("bounded-dimension-order", kBigN, m.shards,
                            m.threads, kBigBudget);
      std::printf(
          "%-24s n=%-4d shards=%d threads=%d steps=%-6lld %8.2f Kmoves/s\n",
          r.router.c_str(), r.n, r.shards, r.threads,
          static_cast<long long>(r.steps), r.moves_per_sec / 1e3);
      all.push_back(r);
    }
  }
  if (!write_json(path, all, smoke)) {
    std::fprintf(stderr, "error: cannot write %s\n", path.c_str());
    return 1;
  }
  std::printf("wrote %s (%zu results)\n", path.c_str(), all.size());
  return validate_json(path) ? 0 : 1;
}

}  // namespace mr::engine_bench
