# Empty compiler generated dependencies file for e15_nonminimal_stray.
# This may be replaced when dependencies are built.
