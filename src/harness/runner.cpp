#include "harness/runner.hpp"

#include <optional>

#include "check/adversary.hpp"
#include "harness/checkpoint.hpp"
#include "routing/registry.hpp"
#include "telemetry/export.hpp"
#include "topo/registry.hpp"
#include "traffic/pump.hpp"

namespace mr {

const char* to_string(EngineMode mode) {
  switch (mode) {
    case EngineMode::Sequential: return "sequential";
    case EngineMode::Sharded: return "sharded";
    case EngineMode::SequentialFallback: return "sequential-fallback";
  }
  return "?";
}

std::optional<EngineMode> parse_engine_mode(std::string_view name) {
  if (name == "sequential") return EngineMode::Sequential;
  if (name == "sharded") return EngineMode::Sharded;
  if (name == "sequential-fallback") return EngineMode::SequentialFallback;
  return std::nullopt;
}

Step default_step_budget(std::int32_t width, std::int32_t height, int k) {
  const std::int64_t n = std::max(width, height);
  // Theorem 15 upper bound is O(n²/k + n); §6 runs in ≤ 972n. A budget of
  // 8·n²/k + 4000·n covers every algorithm in the suite with slack.
  return 8 * n * n / std::max(1, k) + 4000 * n;
}

RunResult run_workload(const RunSpec& spec, const Workload& workload,
                       const RunHooks& hooks) {
  const CheckpointSpec& ckpt = spec.checkpoint;
  if (ckpt.enabled()) {
    // A finished run short-circuits to its durable record; a corrupt record
    // is store damage and must fail loudly, not silently re-run.
    std::string done;
    if (read_text_file(ckpt.done_path(), &done)) {
      RunResult recorded;
      std::string error;
      if (!run_result_from_json(done, &recorded, &error))
        throw SnapshotError(SnapshotError::Kind::Format,
                            ckpt.done_path() + ": " + error);
      return recorded;
    }
  }

  // The single topology resolution point: the legacy RunSpec::torus flag
  // has already been normalised into a registry name.
  TopoSpec ts = parse_topology_spec(spec.resolved_topology());
  ts.width = spec.width;
  ts.height = spec.height;
  const std::unique_ptr<Topology> topo = make_topology(ts);

  const bool open_loop = hooks.traffic != nullptr;
  // The spec-level adversary flag materialises a GreedyAdversary unless
  // the caller attached its own interceptor (an explicit hook wins).
  std::optional<GreedyAdversary> greedy;
  StepInterceptor* interceptor = hooks.interceptor;
  if (interceptor == nullptr && spec.adversary) {
    greedy.emplace();
    interceptor = &*greedy;
  }
  Engine::Config config;
  config.queue_capacity = spec.queue_capacity;
  config.stall_limit = spec.stall_limit;
  config.stall_counts_pending_injections = open_loop;
  // Phase (b) exchanges are inherently sequential, so an interceptor run
  // falls back to the sequential engine (results are identical either way;
  // only wall-clock differs). The fallback is surfaced through
  // RunResult::engine_mode rather than silently dropped.
  const bool wanted_sharded = spec.engine_shards > 1 || spec.engine_threads > 1;
  const bool fallback = interceptor != nullptr && wanted_sharded;
  config.shards = interceptor != nullptr ? 1 : spec.engine_shards;
  config.threads = interceptor != nullptr ? 1 : spec.engine_threads;
  Engine engine(*topo, config,
                [&] { return make_algorithm(spec.algorithm); });

  std::optional<EngineSnapshot> resume;
  if (ckpt.enabled()) {
    std::string bytes;
    if (read_text_file(ckpt.snapshot_path(), &bytes))
      resume = parse_snapshot(bytes);
  }

  if (!resume)
    for (const Demand& d : workload)
      engine.add_packet(d.source, d.dest, d.injected_at);

  std::optional<TrafficPump> pump;
  if (open_loop) {
    MR_REQUIRE_MSG(spec.traffic_steps >= 1,
                   "open-loop run needs traffic_steps >= 1");
    pump.emplace(engine, *hooks.traffic, spec.traffic_steps,
                 spec.traffic_ahead);
  }

  if (!spec.faults.empty()) engine.set_fault_schedule(spec.faults);
  if (interceptor != nullptr) engine.set_interceptor(interceptor);

  const TelemetrySpec& telemetry = spec.telemetry;
  std::optional<TelemetryCollector> collector;
  if (telemetry.series || !telemetry.export_dir.empty()) {
    TelemetryOptions options;
    options.series_capacity = telemetry.series_capacity;
    options.sample_every = telemetry.sample_every;
    collector.emplace(options);
    engine.add_observer(&*collector);
  }
  if (telemetry.profile) engine.set_phase_profiling(true);

  for (Observer* o : hooks.observers) engine.add_observer(o);
  for (StepObserver* o : hooks.step_observers) engine.add_observer(o);

  if (resume) {
    // The engine snapshot carries the whole workload (pre-scheduled and
    // pumped packets alike); restore instead of add_packet/prime/prepare.
    if (open_loop) {
      const std::string* source_blob = resume->find_aux("source");
      const std::string* pump_blob = resume->find_aux("pump");
      if (!source_blob || !pump_blob)
        throw SnapshotError(SnapshotError::Kind::Format,
                            "snapshot of an open-loop run is missing the "
                            "source/pump aux state");
      hooks.traffic->restore_state(*source_blob);
      pump->restore_state(*pump_blob);
    }
    engine.restore(*resume);
  } else {
    if (pump) pump->prime();
    engine.prepare();
  }

  Step budget = spec.max_steps > 0
                    ? spec.max_steps
                    : default_step_budget(spec.width, spec.height,
                                          spec.queue_capacity);
  if (pump && spec.max_steps == 0) budget += spec.traffic_steps;

  const auto maybe_checkpoint = [&] {
    if (!ckpt.enabled() || engine.step() % ckpt.every != 0) return;
    EngineSnapshot snap = engine.snapshot();
    if (open_loop) {
      snap.set_aux("source", hooks.traffic->save_state());
      snap.set_aux("pump", pump->save_state());
    }
    write_snapshot_file(ckpt.snapshot_path(), snap);
  };

  // The stepping loops mirror Engine::run / run_to_drain exactly, with a
  // snapshot dropped every ckpt.every steps.
  if (pump) {
    while (!engine.stalled() && engine.step() < budget) {
      pump->advance();
      if (engine.all_delivered()) break;  // stream exhausted and drained
      if (!engine.step_once()) break;
      maybe_checkpoint();
    }
  } else {
    while (!engine.all_delivered() && !engine.stalled() &&
           engine.step() < budget) {
      if (!engine.step_once()) break;
      maybe_checkpoint();
    }
  }

  RunResult result;
  result.steps = engine.step();
  result.all_delivered = engine.all_delivered();
  result.stalled = engine.stalled();
  result.packets = engine.num_packets();
  result.delivered = engine.delivered_count();
  result.max_queue = engine.max_occupancy_seen();
  result.total_moves = engine.total_moves();
  // From the final packet records, not a streamed observer, so a resumed
  // run reproduces the uninterrupted run's summary exactly.
  result.latency = latency_summary_from_packets(engine.all_packets());
  result.engine_mode = engine.shard_count() > 1 ? EngineMode::Sharded
                       : fallback               ? EngineMode::SequentialFallback
                                                : EngineMode::Sequential;
  if (telemetry.profile) result.phase_profile = engine.phase_profile();

  if (collector && !telemetry.export_dir.empty()) {
    TelemetryRunInfo info;
    info.run = telemetry.slug.empty() ? spec.algorithm : telemetry.slug;
    info.algorithm = spec.algorithm;
    info.width = spec.width;
    info.height = spec.height;
    info.torus = topo->is_torus();
    info.queue_capacity = spec.queue_capacity;
    info.layout = engine.queue_layout();
    info.steps = result.steps;
    info.packets = result.packets;
    info.delivered = result.delivered;
    info.stalled = result.stalled;
    result.telemetry_path = write_telemetry(
        *collector, info,
        result.phase_profile ? &*result.phase_profile : nullptr,
        telemetry.export_dir);
  }

  if (ckpt.enabled())
    write_text_file_atomic(ckpt.done_path(), run_result_to_json(result));
  return result;
}

}  // namespace mr
