// Harness-level tests: run driver semantics, budgets, sweep determinism,
// and the durable-run checkpoint store.
#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>

#include "harness/checkpoint.hpp"
#include "harness/runner.hpp"
#include "harness/sweep.hpp"
#include "topo/mesh.hpp"
#include "traffic/source.hpp"
#include "workload/permutation.hpp"

namespace mr {
namespace {

TEST(Runner, DefaultBudgetCoversTheorem15) {
  // The auto budget must dominate the worst bound of any built-in router.
  for (int n : {16, 64, 256}) {
    for (int k : {1, 4}) {
      const Step budget = default_step_budget(n, n, k);
      EXPECT_GE(budget, 2 * (std::int64_t(n) * n / k + n));  // Thm 15 slack
      EXPECT_GE(budget, 972 * std::int64_t(n));              // Thm 34
    }
  }
}

TEST(Runner, ReportsStall) {
  // Head-on pair with k=1 wedges dimension-order; the result must say so.
  const Mesh mesh = Mesh::square(6);
  RunSpec spec;
  spec.width = spec.height = 6;
  spec.queue_capacity = 1;
  spec.algorithm = "dimension-order";
  spec.max_steps = 10000;
  spec.stall_limit = 100;
  Workload w;
  w.push_back(Demand{mesh.id_of(2, 2), mesh.id_of(5, 2), 0});
  w.push_back(Demand{mesh.id_of(3, 2), mesh.id_of(0, 2), 0});
  const RunResult r = run_workload(spec, w);
  EXPECT_FALSE(r.all_delivered);
  EXPECT_TRUE(r.stalled);
  EXPECT_LT(r.steps, 10000);  // the stall guard cut the run short
}

TEST(Runner, MetricsAreConsistent) {
  const Mesh mesh = Mesh::square(10);
  RunSpec spec;
  spec.width = spec.height = 10;
  spec.queue_capacity = 2;
  spec.algorithm = "bounded-dimension-order";
  const Workload w = random_permutation(mesh, 4);
  const RunResult r = run_workload(spec, w);
  ASSERT_TRUE(r.all_delivered);
  EXPECT_EQ(r.packets, w.size());
  EXPECT_EQ(r.delivered, w.size());
  EXPECT_LE(r.latency.p50, r.latency.max);
  EXPECT_LE(r.latency.max, r.steps);
  EXPECT_GE(r.total_moves, std::int64_t(0));
  EXPECT_LE(r.max_queue, 2);
}

TEST(Runner, RepeatedRunsIdentical) {
  const Mesh mesh = Mesh::square(12);
  RunSpec spec;
  spec.width = spec.height = 12;
  spec.queue_capacity = 3;
  spec.algorithm = "adaptive-alternate";
  Workload w;
  for (const Demand& d : random_permutation(mesh, 8)) {
    const Coord s = mesh.coord_of(d.source);
    const Coord t = mesh.coord_of(d.dest);
    if (t.col >= s.col && t.row >= s.row) w.push_back(d);
  }
  const RunResult a = run_workload(spec, w);
  const RunResult b = run_workload(spec, w);
  EXPECT_EQ(a.steps, b.steps);
  EXPECT_EQ(a.total_moves, b.total_moves);
  EXPECT_EQ(a.max_queue, b.max_queue);
  EXPECT_EQ(a.latency.p50, b.latency.p50);
}

TEST(Runner, EngineModeSequentialAndSharded) {
  const Mesh mesh = Mesh::square(8);
  RunSpec spec;
  spec.width = spec.height = 8;
  spec.queue_capacity = 2;
  spec.algorithm = "bounded-dimension-order";
  const Workload w = random_permutation(mesh, 3);

  const RunResult seq = run_workload(spec, w);
  EXPECT_EQ(seq.engine_mode, EngineMode::Sequential);

  spec.engine_shards = 2;
  const RunResult sharded = run_workload(spec, w);
  EXPECT_EQ(sharded.engine_mode, EngineMode::Sharded);
  EXPECT_EQ(sharded.steps, seq.steps);
  EXPECT_EQ(sharded.total_moves, seq.total_moves);
}

TEST(Runner, InterceptorForcesSequentialFallback) {
  // Sharding + a step interceptor cannot coexist (phase (b) is inherently
  // sequential); the runner must fall back AND say so in the result.
  class NoopInterceptor final : public StepInterceptor {
   public:
    void after_schedule(Sim&, std::span<const ScheduledMove>) override {}
  };
  const Mesh mesh = Mesh::square(8);
  RunSpec spec;
  spec.width = spec.height = 8;
  spec.queue_capacity = 2;
  spec.algorithm = "bounded-dimension-order";
  spec.engine_shards = 2;
  spec.engine_threads = 2;
  const Workload w = random_permutation(mesh, 3);
  NoopInterceptor noop;
  RunHooks hooks;
  hooks.interceptor = &noop;
  const RunResult r = run_workload(spec, w, hooks);
  EXPECT_EQ(r.engine_mode, EngineMode::SequentialFallback);
  EXPECT_TRUE(r.all_delivered);
  // Without the sharding request the same run is plain "sequential".
  spec.engine_shards = spec.engine_threads = 1;
  const RunResult plain = run_workload(spec, w, hooks);
  EXPECT_EQ(plain.engine_mode, EngineMode::Sequential);
  EXPECT_EQ(plain.steps, r.steps);
}

TEST(Runner, EngineModeRoundTrips) {
  for (const EngineMode mode : {EngineMode::Sequential, EngineMode::Sharded,
                                EngineMode::SequentialFallback}) {
    const std::optional<EngineMode> parsed = parse_engine_mode(to_string(mode));
    ASSERT_TRUE(parsed.has_value()) << to_string(mode);
    EXPECT_EQ(*parsed, mode);
  }
  EXPECT_FALSE(parse_engine_mode("parallel").has_value());
  EXPECT_FALSE(parse_engine_mode("").has_value());
}

TEST(Runner, ResolvedTopologyDefaultsToMesh) {
  RunSpec spec;
  EXPECT_EQ(spec.resolved_topology(), "mesh");
  spec.topology = "torus";
  EXPECT_EQ(spec.resolved_topology(), "torus");
  spec.topology = "cmesh-4";
  EXPECT_EQ(spec.resolved_topology(), "cmesh-4");
}

TEST(Runner, NamedTorusTopologyRoutesOnWrapLinks) {
  const Mesh torus = Mesh::square(8, /*torus=*/true);
  const Workload w = random_permutation(torus, 11);
  RunSpec mesh_spec;
  mesh_spec.width = mesh_spec.height = 8;
  mesh_spec.queue_capacity = 2;
  mesh_spec.algorithm = "dimension-order";
  RunSpec torus_spec = mesh_spec;
  torus_spec.topology = "torus";
  const RunResult a = run_workload(mesh_spec, w);
  const RunResult b = run_workload(torus_spec, w);
  // Wrap links shorten paths, so the torus run moves strictly less.
  EXPECT_TRUE(a.all_delivered);
  EXPECT_TRUE(b.all_delivered);
  EXPECT_LT(b.total_moves, a.total_moves);
}

TEST(Runner, CmeshRunsEndToEnd) {
  // Router-space demands on the registry cmesh: the engine routes the
  // 4×4 router grid exactly like a plain 4×4 mesh.
  RunSpec spec;
  spec.width = spec.height = 4;
  spec.topology = "cmesh-4";
  spec.queue_capacity = 2;
  spec.algorithm = "bounded-dimension-order";
  const Mesh grid = Mesh::square(4);
  const Workload w = random_permutation(grid, 5);
  const RunResult r = run_workload(spec, w);
  EXPECT_TRUE(r.all_delivered);
  EXPECT_EQ(r.packets, w.size());
}

TEST(Runner, UnknownTopologyThrows) {
  RunSpec spec;
  spec.width = spec.height = 4;
  spec.topology = "hypercube";
  spec.algorithm = "dimension-order";
  EXPECT_THROW(run_workload(spec, {}), InvariantViolation);
}

TEST(Runner, RunResultJsonRoundTrips) {
  const Mesh mesh = Mesh::square(8);
  RunSpec spec;
  spec.width = spec.height = 8;
  spec.queue_capacity = 2;
  spec.algorithm = "bounded-dimension-order";
  const RunResult r = run_workload(spec, random_permutation(mesh, 6));
  RunResult parsed;
  std::string error;
  ASSERT_TRUE(run_result_from_json(run_result_to_json(r), &parsed, &error))
      << error;
  // Exact round trip: re-serialisation is byte-identical.
  EXPECT_EQ(run_result_to_json(parsed), run_result_to_json(r));
  EXPECT_FALSE(run_result_from_json("{\"format\": \"wrong/1\"}", &parsed,
                                    &error));
}

TEST(Runner, CheckpointStoreResumesBitIdentically) {
  const std::string dir = ::testing::TempDir() + "runner_ckpt_store";
  std::filesystem::remove_all(dir);
  const Mesh mesh = Mesh::square(8);
  TrafficSpec traffic;
  traffic.rate = 0.1;
  traffic.seed = 21;

  RunSpec spec;
  spec.width = spec.height = 8;
  spec.queue_capacity = 2;
  spec.algorithm = "bounded-dimension-order";
  spec.traffic_steps = 64;
  spec.stall_limit = 4096;

  const auto run_open_loop = [&](const RunSpec& s) {
    BernoulliSource source(mesh, traffic);
    RunHooks hooks;
    hooks.traffic = &source;
    return run_workload(s, {}, hooks);
  };

  // Checkpointing must not perturb the run at all.
  const RunResult baseline = run_open_loop(spec);
  spec.checkpoint.dir = dir;
  spec.checkpoint.key = "open_loop";
  spec.checkpoint.every = 8;
  const RunResult stored = run_open_loop(spec);
  EXPECT_EQ(run_result_to_json(stored), run_result_to_json(baseline));
  ASSERT_TRUE(std::filesystem::exists(spec.checkpoint.done_path()));
  ASSERT_TRUE(std::filesystem::exists(spec.checkpoint.snapshot_path()));

  // A finished store short-circuits without re-running.
  const RunResult cached = run_open_loop(spec);
  EXPECT_EQ(run_result_to_json(cached), run_result_to_json(baseline));

  // Crash simulation: the done record is gone, a mid-run snapshot remains.
  // The resumed run (fresh source; its RNG state comes from the snapshot's
  // aux blobs) must reproduce the uninterrupted result bit for bit.
  std::filesystem::remove(spec.checkpoint.done_path());
  const RunResult resumed = run_open_loop(spec);
  EXPECT_EQ(run_result_to_json(resumed), run_result_to_json(baseline));
}

TEST(Sweep, ResultsArePositionAddressed) {
  const auto results = sweep<int>(64, [](std::size_t i) {
    return static_cast<int>(i * i);
  });
  ASSERT_EQ(results.size(), 64u);
  for (std::size_t i = 0; i < results.size(); ++i)
    EXPECT_EQ(results[i], static_cast<int>(i * i));
}

TEST(Sweep, RunsConcurrently) {
  std::atomic<int> counter{0};
  const auto results = sweep<int>(32, [&](std::size_t) {
    return counter.fetch_add(1);
  });
  // All 32 executed exactly once (values are a permutation of 0..31).
  std::vector<int> sorted(results.begin(), results.end());
  std::sort(sorted.begin(), sorted.end());
  for (int i = 0; i < 32; ++i) EXPECT_EQ(sorted[i], i);
}

}  // namespace
}  // namespace mr
