#include "check/oracles.hpp"

#include <algorithm>
#include <sstream>

namespace mr {

namespace {

/// Sorted-vector uniqueness helper for small per-step key sets.
bool all_unique(std::vector<std::int64_t>& keys) {
  std::sort(keys.begin(), keys.end());
  return std::adjacent_find(keys.begin(), keys.end()) == keys.end();
}

}  // namespace

void QueueBoundOracle::check(const Sim& e, const StepDigest& d) const {
  const int k = e.queue_capacity();
  for (NodeId u = 0; u < e.mesh().num_nodes(); ++u) {
    const std::span<const PacketId> q = e.packets_at(u);
    std::array<int, kNumDirs> per_tag{};
    for (PacketId p : q) {
      const Packet& pk = e.packet(p);
      MR_REQUIRE_MSG(pk.location == u,
                     "[oracle:queue-bound] packet "
                         << p << " queued at node " << u
                         << " but records location " << pk.location
                         << " (step " << d.step << ")");
      MR_REQUIRE_MSG(!pk.delivered(), "[oracle:queue-bound] delivered packet "
                                          << p << " still queued at node " << u
                                          << " (step " << d.step << ")");
      if (e.queue_layout() == QueueLayout::Central) {
        MR_REQUIRE_MSG(pk.queue == kCentralQueue,
                       "[oracle:queue-bound] packet "
                           << p << " carries inlink tag "
                           << static_cast<int>(pk.queue)
                           << " under the central layout");
      } else {
        MR_REQUIRE_MSG(pk.queue < kNumDirs,
                       "[oracle:queue-bound] packet "
                           << p << " carries invalid inlink tag "
                           << static_cast<int>(pk.queue));
        ++per_tag[pk.queue];
      }
    }
    if (e.queue_layout() == QueueLayout::Central) {
      MR_REQUIRE_MSG(static_cast<int>(q.size()) <= k,
                     "[oracle:queue-bound] node "
                         << u << " holds " << q.size() << " packets > k=" << k
                         << " (step " << d.step << ")");
    } else {
      for (int t = 0; t < kNumDirs; ++t) {
        MR_REQUIRE_MSG(per_tag[t] <= k, "[oracle:queue-bound] inlink queue "
                                            << t << " of node " << u
                                            << " holds " << per_tag[t]
                                            << " packets > k=" << k
                                            << " (step " << d.step << ")");
        // Cross-check the scan against the sim's own accessor: a mismatch
        // means an incremental counter drifted from the real queue.
        const int reported = e.occupancy(u, static_cast<QueueTag>(t));
        MR_REQUIRE_MSG(reported == per_tag[t],
                       "[oracle:queue-bound] node "
                           << u << " queue " << t << " reports occupancy "
                           << reported << " but holds " << per_tag[t]
                           << " (step " << d.step << ")");
      }
    }
  }
}

void LinkCapacityOracle::on_step(const Sim& e, const StepDigest& d) {
  std::vector<std::int64_t> links, packets;
  links.reserve(d.moves.size());
  packets.reserve(d.moves.size());
  for (const MoveRecord& m : d.moves) {
    MR_REQUIRE_MSG(e.mesh().neighbor(m.from, m.dir) == m.to,
                   "[oracle:link-capacity] hop of packet "
                       << m.packet << " from " << m.from << " "
                       << dir_name(m.dir) << " does not land at " << m.to
                       << " (step " << d.step << ")");
    links.push_back(static_cast<std::int64_t>(m.from) * kNumDirs +
                    dir_index(m.dir));
    packets.push_back(m.packet);
    const Packet& pk = e.packet(m.packet);
    if (m.delivered) {
      MR_REQUIRE_MSG(pk.delivered() && pk.location == kInvalidNode &&
                         pk.dest == m.to,
                     "[oracle:link-capacity] delivering hop of packet "
                         << m.packet << " left it in the network (step "
                         << d.step << ")");
    } else {
      MR_REQUIRE_MSG(pk.location == m.to,
                     "[oracle:link-capacity] packet "
                         << m.packet << " recorded moving to " << m.to
                         << " but sits at " << pk.location << " (step "
                         << d.step << ")");
    }
  }
  MR_REQUIRE_MSG(all_unique(links),
                 "[oracle:link-capacity] a directed link carried two packets"
                     << " in step " << d.step);
  MR_REQUIRE_MSG(all_unique(packets),
                 "[oracle:link-capacity] a packet moved twice in step "
                     << d.step);
}

void ProfitableMoveOracle::on_step(const Sim& e, const StepDigest& d) {
  const Topology& mesh = e.mesh();
  for (const MoveRecord& m : d.moves) {
    // Destinations are stable from phase (b) on, so the post-step
    // destination is the one the packet carried when it was transmitted.
    const Packet& pk = e.packet(m.packet);
    if (minimal_) {
      MR_REQUIRE_MSG(
          mesh.distance(m.to, pk.dest) == mesh.distance(m.from, pk.dest) - 1,
          "[oracle:minimal-move] hop of packet "
              << m.packet << " from " << m.from << " to " << m.to
              << " does not reduce the distance to " << pk.dest << " (step "
              << d.step << ")");
      continue;
    }
    if (max_stray_ < 0) continue;
    const Coord at = mesh.coord_of(m.to);
    const Coord s = mesh.coord_of(pk.source);
    const Coord t = mesh.coord_of(pk.dest);
    const bool inside = at.col >= std::min(s.col, t.col) - max_stray_ &&
                        at.col <= std::max(s.col, t.col) + max_stray_ &&
                        at.row >= std::min(s.row, t.row) - max_stray_ &&
                        at.row <= std::max(s.row, t.row) + max_stray_;
    MR_REQUIRE_MSG(inside, "[oracle:minimal-move] packet "
                               << m.packet << " strayed more than delta="
                               << max_stray_ << " beyond its rectangle (step "
                               << d.step << ")");
  }
}

void ExchangeConsistencyOracle::snapshot(const Sim& e) {
  sources_.clear();
  dests_.clear();
  for (const Packet& pk : e.all_packets()) {
    sources_.push_back(pk.source);
    dests_.push_back(pk.dest);
  }
  primed_ = true;
}

void ExchangeConsistencyOracle::on_prepare(const Sim& e, const StepDigest&) {
  snapshot(e);
}

void ExchangeConsistencyOracle::on_step(const Sim& e, const StepDigest& d) {
  if (!primed_ || sources_.size() != e.num_packets()) {
    snapshot(e);  // attached mid-run: prime and start checking next step
    return;
  }
  const std::vector<Packet>& now = e.all_packets();
  for (std::size_t i = 0; i < now.size(); ++i) {
    MR_REQUIRE_MSG(now[i].source == sources_[i],
                   "[oracle:exchange] source of packet "
                       << i << " changed from " << sources_[i] << " to "
                       << now[i].source << " (step " << d.step << ")");
    if (d.exchanges == 0) {
      MR_REQUIRE_MSG(now[i].dest == dests_[i],
                     "[oracle:exchange] destination of packet "
                         << i << " changed from " << dests_[i] << " to "
                         << now[i].dest
                         << " in a step with no exchanges (step " << d.step
                         << ")");
    }
  }
  if (d.exchanges != 0) {
    // Exchanges permute destinations; they never invent addresses.
    std::vector<NodeId> before = dests_, after;
    after.reserve(now.size());
    for (const Packet& pk : now) after.push_back(pk.dest);
    std::sort(before.begin(), before.end());
    std::vector<NodeId> sorted_after = after;
    std::sort(sorted_after.begin(), sorted_after.end());
    MR_REQUIRE_MSG(before == sorted_after,
                   "[oracle:exchange] exchanges altered the destination "
                   "multiset (step "
                       << d.step << ")");
    dests_ = std::move(after);
  }
}

BoxEscapeOracle::BoxEscapeOracle(const MainGeometry& geometry, std::int32_t dn,
                                 std::size_t class_packet_count)
    : geo_(geometry),
      dn_(dn),
      class_count_(class_packet_count),
      escapes_n_(static_cast<std::size_t>(geometry.classes()) + 1, 0),
      escapes_e_(static_cast<std::size_t>(geometry.classes()) + 1, 0) {}

void BoxEscapeOracle::on_step(const Sim& e, const StepDigest& d) {
  const Step t = d.step;
  for (const MoveRecord& m : d.moves) {
    if (static_cast<std::size_t>(m.packet) >= class_count_) continue;
    const Packet& pk = e.packet(m.packet);
    const PacketClass cls = geo_.classify(e.mesh().coord_of(pk.source),
                                          e.mesh().coord_of(pk.dest));
    if (cls.type == ClassType::None) continue;
    const std::int64_t i = cls.i;
    if (!geo_.in_box(e.mesh().coord_of(m.from), i) ||
        geo_.in_box(e.mesh().coord_of(m.to), i)) {
      continue;  // not an escape from the i-box
    }
    MR_REQUIRE_MSG(t > (i - 1) * dn_,
                   "Lemma 1 violated: class-" << i << " packet " << m.packet
                                              << " left the i-box at step "
                                              << t);
    if (t <= i * dn_) {
      auto& count = cls.type == ClassType::N ? escapes_n_[i] : escapes_e_[i];
      ++count;
      MR_REQUIRE_MSG(count <= 1, "Lemma 2 violated: "
                                     << count << " class-" << i
                                     << " packets left the i-box in step "
                                     << t);
      max_escapes_ = std::max(max_escapes_, count);
    }
  }

  const Step w = (t - 1) / dn_;  // window index: steps (w·dn, (w+1)·dn]
  for (std::size_t id = 0; id < class_count_; ++id) {
    const Packet& pk = e.packet(static_cast<PacketId>(id));
    if (pk.delivered()) continue;
    const PacketClass cls = geo_.classify(e.mesh().coord_of(pk.source),
                                          e.mesh().coord_of(pk.dest));
    if (cls.type == ClassType::None) continue;
    const std::int64_t i = cls.i;
    // Packets awaiting injection sit at their source.
    const Coord at = e.mesh().coord_of(
        pk.location != kInvalidNode ? pk.location : pk.source);
    // Lemmas 5/6: classes j ≥ w+2 are still confined to the w-box.
    if (i >= w + 2) {
      MR_REQUIRE_MSG(geo_.in_box(at, w),
                     "Lemma 5/6 violated: class-" << i << " packet outside "
                                                  << w << "-box at step "
                                                  << t);
    }
    if (t <= i * dn_) {
      if (cls.type == ClassType::N) {
        // Lemma 7: not at/north of the E_i-row while west of N_i-column.
        MR_REQUIRE_MSG(!(at.row >= geo_.line(i) && at.col < geo_.line(i)),
                       "Lemma 7 violated at step " << t);
      } else {
        // Lemma 8: not at/east of the N_i-column while south of E_i-row.
        MR_REQUIRE_MSG(!(at.col >= geo_.line(i) && at.row < geo_.line(i)),
                       "Lemma 8 violated at step " << t);
      }
    }
  }
  // Escape counters are per step.
  std::fill(escapes_n_.begin(), escapes_n_.end(), 0);
  std::fill(escapes_e_.begin(), escapes_e_.end(), 0);
}

void DigestHasher::mix(const StepDigest& d) {
  const auto mix64 = [this](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      hash_ ^= (v >> (8 * i)) & 0xFF;
      hash_ *= 1099511628211ULL;
    }
  };
  mix64(static_cast<std::uint64_t>(d.step));
  mix64(d.moves.size());
  for (const MoveRecord& m : d.moves) {
    mix64(static_cast<std::uint64_t>(m.packet));
    mix64(static_cast<std::uint64_t>(m.from));
    mix64(static_cast<std::uint64_t>(m.to));
    mix64(static_cast<std::uint64_t>(dir_index(m.dir)));
    mix64(m.delivered ? 1 : 0);
  }
  mix64(d.injected_deliveries.size());
  for (PacketId p : d.injected_deliveries)
    mix64(static_cast<std::uint64_t>(p));
  mix64(static_cast<std::uint64_t>(d.deliveries));
  mix64(static_cast<std::uint64_t>(d.injections));
  for (std::int64_t c : d.moves_by_dir) mix64(static_cast<std::uint64_t>(c));
  mix64(static_cast<std::uint64_t>(d.exchanges));
  mix64(static_cast<std::uint64_t>(d.stall_run));
  mix64(static_cast<std::uint64_t>(d.fault_blocked));
  mix64(static_cast<std::uint64_t>(d.fault_deferred));
}

std::string run_trace_oracles(const std::vector<TraceEvent>& events,
                              const Topology& mesh,
                              const std::vector<Packet>& packets,
                              int queue_capacity, QueueLayout layout,
                              const FaultSchedule* faults) {
  std::ostringstream err;
  // Delivery step per packet (a packet delivers at most once).
  std::vector<Step> deliver_step(packets.size(), -1);
  Step max_step = 0;
  for (const TraceEvent& ev : events) {
    if (ev.packet < 0 || static_cast<std::size_t>(ev.packet) >= packets.size()) {
      err << "event references unknown packet " << ev.packet;
      return err.str();
    }
    max_step = std::max(max_step, ev.step);
    if (ev.kind != TraceEventKind::Deliver) continue;
    if (deliver_step[static_cast<std::size_t>(ev.packet)] >= 0) {
      err << "packet " << ev.packet << " delivered twice";
      return err.str();
    }
    deliver_step[static_cast<std::size_t>(ev.packet)] = ev.step;
  }
  for (const Packet& pk : packets) max_step = std::max(max_step, pk.injected_at);

  // Replayed state: position, per-queue occupancy and inlink tags,
  // advanced step by step. The injection rule mirrors the engines: due
  // packets enter in ascending id order whenever their target queue has
  // room (the central queue, or the inlink queue opposite the first
  // profitable direction in E, W, N, S preference order).
  const bool per_inlink = layout == QueueLayout::PerInlink;
  const std::size_t queues_per_node = per_inlink ? kNumDirs : 1;
  const auto queue_index = [&](NodeId u, int tag) {
    return static_cast<std::size_t>(u) * queues_per_node +
           static_cast<std::size_t>(per_inlink ? tag : 0);
  };
  const auto injection_tag = [&](const Packet& pk) {
    if (!per_inlink) return 0;
    const DirMask m = mesh.profitable_dirs(pk.source, pk.dest);
    for (Dir d : {Dir::East, Dir::West, Dir::North, Dir::South})
      if (mask_has(m, d)) return dir_index(opposite(d));
    return dir_index(Dir::South);
  };
  std::vector<NodeId> pos(packets.size(), kInvalidNode);
  std::vector<int> tag(packets.size(), 0);
  std::vector<std::uint8_t> entered(packets.size(), 0);
  std::vector<int> occ(
      static_cast<std::size_t>(mesh.num_nodes()) * queues_per_node, 0);
  std::size_t cursor = 0;
  for (Step t = 0; t <= max_step; ++t) {
    for (std::size_t id = 0; id < packets.size(); ++id) {
      const Packet& pk = packets[id];
      if (entered[id] || pk.injected_at > t) continue;
      // A down source defers injection entirely (even source == dest
      // deliveries), mirroring the engines' fault rule.
      if (faults != nullptr && faults->node_down_at(pk.source, t)) continue;
      if (pk.source == pk.dest) {
        entered[id] = 1;  // delivered at injection, never queued
        continue;
      }
      const int t_in = injection_tag(pk);
      if (occ[queue_index(pk.source, t_in)] >= queue_capacity)
        continue;  // waits outside the network
      entered[id] = 1;
      pos[id] = pk.source;
      tag[id] = t_in;
      ++occ[queue_index(pk.source, t_in)];
    }
    // Per-step move checks: link uniqueness, single move per packet,
    // adjacency, position continuity. Transmissions are simultaneous, so
    // all departures are applied before any arrival and the queue bound
    // is judged on the end-of-step configuration only.
    std::vector<const TraceEvent*> step_moves;
    while (cursor < events.size() && events[cursor].step <= t) {
      const TraceEvent& ev = events[cursor++];
      if (ev.step < t) {
        err << "events out of order at step " << ev.step;
        return err.str();
      }
      const auto id = static_cast<std::size_t>(ev.packet);
      if (ev.kind == TraceEventKind::Deliver) {
        if (ev.from != packets[id].dest) {
          err << "packet " << ev.packet << " delivered at " << ev.from
              << " but is destined for " << packets[id].dest;
          return err.str();
        }
        continue;  // queue effects handled with the delivering move below
      }
      step_moves.push_back(&ev);
    }
    std::vector<std::int64_t> links, movers;
    for (const TraceEvent* ev : step_moves) {
      const auto id = static_cast<std::size_t>(ev->packet);
      bool adjacent = false;
      for (Dir d : kAllDirs) adjacent |= mesh.neighbor(ev->from, d) == ev->to;
      if (!adjacent) {
        err << "packet " << ev->packet << " hopped from " << ev->from
            << " to " << ev->to << " (not a link) at step " << t;
        return err.str();
      }
      if (pos[id] != ev->from) {
        err << "packet " << ev->packet << " moved from " << ev->from
            << " at step " << t << " but the replay places it at " << pos[id];
        return err.str();
      }
      links.push_back(static_cast<std::int64_t>(ev->from) * mesh.num_nodes() +
                      ev->to);
      movers.push_back(ev->packet);
      --occ[queue_index(ev->from, tag[id])];
    }
    if (!all_unique(links)) {
      err << "a directed link carried two packets in step " << t;
      return err.str();
    }
    if (!all_unique(movers)) {
      err << "a packet moved twice in step " << t;
      return err.str();
    }
    for (const TraceEvent* ev : step_moves) {
      const auto id = static_cast<std::size_t>(ev->packet);
      if (deliver_step[id] == t) {
        pos[id] = kInvalidNode;  // delivered on arrival; never queued at to
        continue;
      }
      // Arrival inlink: the queue opposite the travel direction.
      int arrival = 0;
      if (per_inlink) {
        for (Dir d : kAllDirs) {
          if (mesh.neighbor(ev->from, d) == ev->to) {
            arrival = dir_index(opposite(d));
            break;
          }
        }
      }
      pos[id] = ev->to;
      tag[id] = arrival;
      ++occ[queue_index(ev->to, arrival)];
    }
    for (const TraceEvent* ev : step_moves) {
      for (std::size_t q = 0; q < queues_per_node; ++q) {
        if (occ[queue_index(ev->to, static_cast<int>(q))] >
            queue_capacity) {
          err << "queue bound violated: node " << ev->to << " queue " << q
              << " holds " << occ[queue_index(ev->to, static_cast<int>(q))]
              << " > " << queue_capacity << " after step " << t;
          return err.str();
        }
      }
    }
  }
  return {};
}

}  // namespace mr
