# Empty dependencies file for torus_routing_test.
# This may be replaced when dependencies are built.
