file(REMOVE_RECURSE
  "CMakeFiles/e11_average_case.dir/e11_average_case.cpp.o"
  "CMakeFiles/e11_average_case.dir/e11_average_case.cpp.o.d"
  "e11_average_case"
  "e11_average_case.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e11_average_case.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
