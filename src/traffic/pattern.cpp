#include "traffic/pattern.hpp"

#include "core/assert.hpp"

namespace mr {

const char* traffic_pattern_name(TrafficPattern p) {
  switch (p) {
    case TrafficPattern::UniformRandom: return "uniform";
    case TrafficPattern::Transpose: return "transpose";
    case TrafficPattern::BitComplement: return "bitcomp";
    case TrafficPattern::Tornado: return "tornado";
    case TrafficPattern::Hotspot: return "hotspot";
  }
  return "?";
}

bool parse_traffic_pattern(const std::string& name, TrafficPattern* out) {
  for (TrafficPattern p : all_traffic_patterns()) {
    if (name == traffic_pattern_name(p)) {
      *out = p;
      return true;
    }
  }
  return false;
}

const std::vector<TrafficPattern>& all_traffic_patterns() {
  static const std::vector<TrafficPattern> patterns = {
      TrafficPattern::UniformRandom, TrafficPattern::Transpose,
      TrafficPattern::BitComplement, TrafficPattern::Tornado,
      TrafficPattern::Hotspot};
  return patterns;
}

NodeId hotspot_sink(const Topology& topo, const TrafficSpec& spec) {
  if (spec.hotspot_sink != kInvalidNode) {
    MR_REQUIRE(spec.hotspot_sink >= 0 &&
               spec.hotspot_sink < topo.num_terminals());
    return spec.hotspot_sink;
  }
  return topo.terminal_of(topo.id_of(topo.width() / 2, topo.height() / 2), 0);
}

namespace {

/// Uniform over all terminals except `src` (an empty draw is impossible
/// for networks with >= 2 terminals, which Topology already guarantees).
NodeId uniform_other(const Topology& topo, NodeId src, Rng& rng) {
  const NodeId n = topo.num_terminals();
  const NodeId pick =
      static_cast<NodeId>(rng.next_below(static_cast<std::uint64_t>(n - 1)));
  return pick >= src ? pick + 1 : pick;
}

/// Terminal slot of `t` on its router. Terminal ids of one router are
/// contiguous (slot 0 first) for every in-tree topology.
std::int32_t slot_of(const Topology& topo, NodeId t, NodeId router) {
  return t - topo.terminal_of(router, 0);
}

}  // namespace

NodeId traffic_destination(const Topology& topo, const TrafficSpec& spec,
                           NodeId src, Rng& rng) {
  const NodeId src_router = topo.terminal_router(src);
  const std::int32_t slot = slot_of(topo, src, src_router);
  const Coord s = topo.coord_of(src_router);
  switch (spec.pattern) {
    case TrafficPattern::UniformRandom:
      return uniform_other(topo, src, rng);
    case TrafficPattern::Transpose: {
      MR_REQUIRE_MSG(topo.width() == topo.height(),
                     "transpose needs a square mesh");
      const NodeId dest = topo.terminal_of(topo.id_of(s.row, s.col), slot);
      return dest == src ? kInvalidNode : dest;
    }
    case TrafficPattern::BitComplement: {
      const NodeId dest = topo.terminal_of(
          topo.id_of(topo.width() - 1 - s.col, topo.height() - 1 - s.row),
          topo.concentration() - 1 - slot);
      return dest == src ? kInvalidNode : dest;
    }
    case TrafficPattern::Tornado: {
      const std::int32_t dc = (topo.width() - 1) / 2;
      const std::int32_t dr = (topo.height() - 1) / 2;
      const NodeId dest =
          topo.terminal_of(topo.id_of((s.col + dc) % topo.width(),
                                      (s.row + dr) % topo.height()),
                           slot);
      return dest == src ? kInvalidNode : dest;
    }
    case TrafficPattern::Hotspot: {
      const NodeId sink = hotspot_sink(topo, spec);
      // The sink's own draw falls through to uniform background traffic,
      // and a uniform draw that hits the sink stays there: the sink's
      // arrival share is hotspot_fraction + (1-f)/(n-1) of all packets.
      if (src != sink && rng.next_double() < spec.hotspot_fraction)
        return sink;
      return uniform_other(topo, src, rng);
    }
  }
  MR_REQUIRE_MSG(false, "unknown traffic pattern");
  return kInvalidNode;
}

}  // namespace mr
