// Minimal thread pool and parallel_for used by the benchmark/sweep harness.
//
// The simulator itself is deliberately single-threaded and deterministic;
// parallelism is applied only *across* independent simulation instances
// (parameter sweeps), where results are position-addressed so no ordering
// nondeterminism can leak into output.
#pragma once

#include <cstddef>
#include <functional>

namespace mr {

/// Number of worker threads used by parallel_for (hardware_concurrency,
/// at least 1). Can be overridden with the MESHROUTE_THREADS env var.
std::size_t default_thread_count();

/// Runs fn(i) for i in [0, count) across default_thread_count() threads.
/// Blocks until all iterations are complete. Exceptions from fn are
/// captured and the first one is rethrown on the calling thread; the first
/// error also cancels iterations that no worker has claimed yet.
void parallel_for(std::size_t count, const std::function<void(std::size_t)>& fn);

/// Same, but with an explicit worker count (0 = default_thread_count()).
void parallel_for(std::size_t count, const std::function<void(std::size_t)>& fn,
                  std::size_t thread_count);

}  // namespace mr
