// Tilings for the §6 algorithm (Lemma 19).
//
// At iteration j the mesh is covered by three tilings with square tiles of
// side T = n/3^j, displaced by T/3 in both dimensions. Lemma 19: any two
// nodes within T/3 of each other both vertically and horizontally lie in a
// common tile of at least one of the tilings. Tiles overhanging the mesh
// edge are "virtual": their origin may be negative and their area is
// clipped to the mesh (no packet ever moves outside the real mesh).
#pragma once

#include <cstdint>

#include "core/assert.hpp"
#include "core/types.hpp"

namespace mr {

class Tiling {
 public:
  /// tile side T (must be divisible by 3), offset index 0, 1 or 2
  /// (displacement = offset·T/3 in both dimensions).
  Tiling(std::int32_t n, std::int32_t tile_side, int offset_index)
      : n_(n), side_(tile_side), shift_(offset_index * tile_side / 3) {
    MR_REQUIRE(tile_side >= 3 && tile_side % 3 == 0);
    MR_REQUIRE(offset_index >= 0 && offset_index <= 2);
    MR_REQUIRE(n >= 1);
  }

  std::int32_t side() const { return side_; }
  std::int32_t mesh_size() const { return n_; }

  /// Virtual origin (southwest corner) of the tile containing coordinate x
  /// in one dimension; may be negative for edge tiles.
  std::int32_t origin1d(std::int32_t x) const {
    // Tiles start at positions ≡ −shift (mod side).
    const std::int32_t s = x + shift_;
    return (s / side_) * side_ - shift_;
  }

  struct Tile {
    std::int32_t col0 = 0;  ///< virtual SW corner (may be negative)
    std::int32_t row0 = 0;

    friend bool operator==(const Tile&, const Tile&) = default;
  };

  Tile tile_of(Coord c) const {
    MR_REQUIRE(c.col >= 0 && c.col < n_ && c.row >= 0 && c.row < n_);
    return Tile{origin1d(c.col), origin1d(c.row)};
  }

  bool same_tile(Coord a, Coord b) const { return tile_of(a) == tile_of(b); }

 private:
  std::int32_t n_;
  std::int32_t side_;
  std::int32_t shift_;
};

/// Lemma 19 cover search: index (0–2) of a tiling whose tile contains both
/// nodes, or −1 (possible only when the nodes are farther than T/3 apart in
/// some dimension).
inline int covering_tiling(std::int32_t n, std::int32_t tile_side, Coord a,
                           Coord b) {
  for (int o = 0; o < 3; ++o) {
    const Tiling t(n, tile_side, o);
    if (t.same_tile(a, b)) return o;
  }
  return -1;
}

}  // namespace mr
