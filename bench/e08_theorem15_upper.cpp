// E08 — Theorem 15: the bounded-queue dimension-order router delivers any
// permutation in O(n²/k + n); together with the §5 lower bound (E04) the
// bound is tight, Θ(n²/k).
//
// For each (n, k) the router runs on (a) its own adversarial permutation
// from the §5 construction and (b) random permutations; the table reports
// steps / (n²/k + n), which should be bounded above by a modest constant —
// and, on the adversarial instance, bounded BELOW away from zero.
#include "harness/runner.hpp"
#include "lower_bound/dim_order_construction.hpp"
#include "scenarios.hpp"
#include "topo/mesh.hpp"
#include "workload/permutation.hpp"

namespace mr::scenarios {

void register_e08(ScenarioRegistry& registry) {
  ScenarioSpec spec;
  spec.id = "E08";
  spec.label = "theorem15-upper";
  spec.title = "Theorem 15 upper bound (and tightness vs E04)";
  spec.paper_ref = "Theorem 15, §5";
  spec.body = [](ScenarioReport& ctx) {
    std::vector<std::pair<int, int>> sizes = {{60, 1},  {120, 1}, {216, 1},
                                              {120, 2}, {216, 2}, {216, 4},
                                              {216, 8}};
    if (ctx.scale() == Scale::Small) sizes = {{60, 1}, {120, 1}, {120, 2}};
    if (ctx.scale() == Scale::Large) sizes.push_back({432, 1});

    Table table({"n", "k", "workload", "steps", "steps/(n^2/k + n)",
                 "max queue", "delivered"});
    bool all_delivered = true;
    bool ratio_bounded = true;
    for (const auto& [n, k] : sizes) {
      const double budget = double(n) * n / k + n;
      // (a) adversarial permutation from the §5 construction, sized for the
      // router's 4k per-node buffering.
      const DimOrderLbParams par = dim_order_lb_params(n, 4 * k);
      if (par.valid) {
        const Mesh mesh = Mesh::square(n);
        DimOrderConstruction construction(mesh, par);
        auto r = construction.verify_replay("bounded-dimension-order", k);
        all_delivered = all_delivered && r.replay_all_delivered;
        ratio_bounded =
            ratio_bounded && double(r.replay_total_steps) / budget <= 4.0;
        table.row()
            .add(n)
            .add(k)
            .add("adversarial (E04)")
            .add(r.replay_total_steps)
            .add(double(r.replay_total_steps) / budget, 3)
            .add("-")
            .add(r.replay_all_delivered ? "yes" : "NO");
      }
      // (b) random permutations.
      RunSpec spec;
      spec.width = spec.height = n;
      spec.queue_capacity = k;
      spec.algorithm = "bounded-dimension-order";
      const Mesh mesh = Mesh::square(n);
      const RunResult r =
          ctx.run("random n=" + std::to_string(n) + " k=" + std::to_string(k),
                  spec, random_permutation(mesh, 1234 + n + k));
      all_delivered = all_delivered && r.all_delivered;
      ratio_bounded = ratio_bounded && double(r.steps) / budget <= 4.0;
      table.row()
          .add(n)
          .add(k)
          .add("random permutation")
          .add(r.steps)
          .add(double(r.steps) / budget, 3)
          .add(std::int64_t(r.max_queue))
          .add(r.all_delivered ? "yes" : "NO");
    }
    ctx.table(table);
    ctx.note(
        "Tightness: on adversarial inputs steps/(n^2/k+n) is bounded below "
        "(lower bound, E04) and above (Theorem 15) by constants -> Θ(n²/k).");
    ctx.check("theorem15-all-delivered", all_delivered);
    ctx.check("theorem15-steps-within-4x-budget", ratio_bounded);
  };
  registry.add(std::move(spec));
}

}  // namespace mr::scenarios
