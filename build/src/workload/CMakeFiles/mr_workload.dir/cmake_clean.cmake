file(REMOVE_RECURSE
  "CMakeFiles/mr_workload.dir/patterns.cpp.o"
  "CMakeFiles/mr_workload.dir/patterns.cpp.o.d"
  "CMakeFiles/mr_workload.dir/permutation.cpp.o"
  "CMakeFiles/mr_workload.dir/permutation.cpp.o.d"
  "libmr_workload.a"
  "libmr_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mr_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
