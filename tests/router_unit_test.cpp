// Focused per-router unit tests: the specific scheduling disciplines each
// router promises, observed on hand-built micro-scenarios.
#include <gtest/gtest.h>

#include "routing/registry.hpp"
#include "sim/engine.hpp"
#include "sim/trace.hpp"
#include "topo/mesh.hpp"
#include "workload/permutation.hpp"

namespace mr {
namespace {

struct Micro {
  Mesh mesh = Mesh::square(8);
  std::unique_ptr<Algorithm> algo;
  std::unique_ptr<Engine> engine;
  TraceRecorder trace;

  explicit Micro(const std::string& name, int k = 4,
                 std::int32_t side = 8) {
    mesh = Mesh::square(side);
    algo = make_algorithm(name);
    Engine::Config config;
    config.queue_capacity = k;
    config.stall_limit = 5000;
    engine = std::make_unique<Engine>(mesh, config, *algo);
  }
  PacketId add(std::int32_t sc, std::int32_t sr, std::int32_t tc,
               std::int32_t tr) {
    return engine->add_packet(mesh.id_of(sc, sr), mesh.id_of(tc, tr));
  }
  void run(Step budget = 1000) {
    engine->add_observer(&trace);
    engine->prepare();
    engine->run(budget);
  }
  std::vector<NodeId> path(PacketId p) {
    return trace.packet_path(p, engine->packet(p).source);
  }
};

// ---- dimension order ---------------------------------------------------

TEST(DimensionOrder, RowCompletesBeforeColumn) {
  Micro m("dimension-order");
  const PacketId p = m.add(1, 1, 5, 6);
  m.run();
  ASSERT_TRUE(m.engine->all_delivered());
  const auto path = m.path(p);
  // All column-1..5 moves happen in row 1 first, then straight north.
  for (std::size_t i = 1; i < path.size(); ++i) {
    const Coord c = m.mesh.coord_of(path[i]);
    if (i <= 4) {
      EXPECT_EQ(c.row, 1);
      EXPECT_EQ(c.col, std::int32_t(1 + i));
    } else {
      EXPECT_EQ(c.col, 5);
    }
  }
}

TEST(DimensionOrder, FifoAmongContenders) {
  // Two eastbound packets in one node: the earlier-arrived (lower slot)
  // moves first.
  Micro m("dimension-order");
  const PacketId first = m.add(0, 0, 5, 0);
  const PacketId second = m.add(0, 0, 6, 0);
  m.run();
  ASSERT_TRUE(m.engine->all_delivered());
  // First recorded move must belong to `first`.
  ASSERT_FALSE(m.trace.events().empty());
  EXPECT_EQ(m.trace.events()[0].packet, first);
  EXPECT_GT(m.engine->packet(second).delivered_at,
            m.engine->packet(first).delivered_at - 2);
}

// ---- adaptive-alternate ------------------------------------------------

TEST(AdaptiveAlternate, RoutesAroundABlockedRow) {
  // A wall of stationary packets occupies the row ahead; the adaptive
  // packet must sidestep north instead of waiting forever.
  Micro m("adaptive-alternate", /*k=*/1);
  const PacketId p = m.add(0, 0, 4, 4);
  // Blockers sit at their own destinations' neighbours so they move once
  // then park... simpler: blockers with far destinations that are
  // themselves blocked by the mesh edge pattern. Use mutual blockers:
  for (std::int32_t c = 1; c <= 3; ++c) m.add(c, 0, c, 7);  // northbound
  m.run();
  ASSERT_TRUE(m.engine->all_delivered());
  const auto path = m.path(p);
  // The adaptive packet's path must contain at least one north move before
  // column 4 (it cannot have marched straight east through the blockers
  // at k = 1 in step 1).
  bool sidestep = false;
  for (std::size_t i = 1; i < path.size(); ++i) {
    const Coord prev = m.mesh.coord_of(path[i - 1]);
    const Coord cur = m.mesh.coord_of(path[i]);
    if (cur.row > prev.row && cur.col < 4) sidestep = true;
  }
  EXPECT_TRUE(sidestep);
}

// ---- west-first ---------------------------------------------------------

TEST(WestFirst, WestLegIsStrictlyFirst) {
  Micro m("west-first");
  const PacketId p = m.add(5, 2, 1, 6);  // needs west then north
  m.run();
  ASSERT_TRUE(m.engine->all_delivered());
  const auto path = m.path(p);
  // Once a non-west move happens, no west move may follow.
  bool left_west_phase = false;
  for (std::size_t i = 1; i < path.size(); ++i) {
    const Coord prev = m.mesh.coord_of(path[i - 1]);
    const Coord cur = m.mesh.coord_of(path[i]);
    const bool west = cur.col < prev.col;
    if (!west) left_west_phase = true;
    if (left_west_phase) EXPECT_FALSE(west);
  }
}

TEST(WestFirst, PureEastTrafficIsAdaptive) {
  Micro m("west-first", /*k=*/1);
  const PacketId p = m.add(0, 0, 5, 5);
  for (std::int32_t c = 1; c <= 3; ++c) m.add(c, 0, c, 7);
  m.run();
  EXPECT_TRUE(m.engine->all_delivered());
  EXPECT_EQ(std::int64_t(m.path(p).size()) - 1,
            m.mesh.distance(m.mesh.id_of(0, 0), m.mesh.id_of(5, 5)));
}

// ---- farthest-first -----------------------------------------------------

TEST(FarthestFirst, FartherPacketWinsTheLink) {
  Micro m("farthest-first");
  const PacketId nearp = m.add(0, 0, 3, 0);
  const PacketId farp = m.add(0, 0, 7, 0);
  m.run();
  ASSERT_TRUE(m.engine->all_delivered());
  ASSERT_FALSE(m.trace.events().empty());
  EXPECT_EQ(m.trace.events()[0].packet, farp);
  EXPECT_GE(m.engine->packet(nearp).delivered_at, 4);
}

// ---- bounded-dimension-order (Theorem 15) -------------------------------

TEST(BoundedDimensionOrder, StraightBeatsTurning) {
  // A column packet moving straight north and a row packet wanting to turn
  // north at the same node: straight has priority (§5 proof).
  Micro m("bounded-dimension-order", /*k=*/2);
  // Straight packet: starts south of node (3,2), heading north through it.
  const PacketId straight = m.add(3, 0, 3, 7);
  // Turner: starts west, its destination column is 3; it turns at (3,2)...
  const PacketId turner = m.add(0, 2, 3, 7 - 1);
  m.run();
  ASSERT_TRUE(m.engine->all_delivered());
  // Both delivered; the straight packet was never delayed: its latency is
  // exactly its distance.
  EXPECT_EQ(m.engine->packet(straight).delivered_at,
            m.mesh.distance(m.mesh.id_of(3, 0), m.mesh.id_of(3, 7)));
  (void)turner;
}

TEST(BoundedDimensionOrder, RowQueueRefusalBlocksSender) {
  // k = 1: a parked row packet fills the W-queue of its node; an eastbound
  // packet behind it must wait (acceptance refused), never overflowing.
  Micro m("bounded-dimension-order", /*k=*/1);
  const PacketId parked = m.add(3, 0, 5, 5);   // will move on
  const PacketId chaser = m.add(0, 0, 7, 0);   // chases through (3,0)
  m.run();
  ASSERT_TRUE(m.engine->all_delivered());
  EXPECT_LE(m.engine->max_occupancy_seen(), 1);
  (void)parked;
  (void)chaser;
}

// ---- emps (Even–Medina–Patt-Shamir online grid router) -------------------

TEST(Emps, FarthestToGoWinsTheLine) {
  // Line-routing discipline: on a shared row link the packet with the
  // farther remaining row distance goes first.
  Micro m("emps");
  const PacketId nearp = m.add(0, 0, 3, 0);
  const PacketId farp = m.add(0, 0, 7, 0);
  m.run();
  ASSERT_TRUE(m.engine->all_delivered());
  ASSERT_FALSE(m.trace.events().empty());
  EXPECT_EQ(m.trace.events()[0].packet, farp);
  EXPECT_GE(m.engine->packet(nearp).delivered_at, 4);
}

TEST(Emps, ContinuingBeatsEntering) {
  // A packet already travelling north outranks one turning into the column
  // at the same node, whatever their distances — the per-dimension
  // in-transit priority of the EMPS phase structure.
  Micro m("emps", /*k=*/2);
  const PacketId straight = m.add(3, 0, 3, 7);  // north through (3,2)
  const PacketId turner = m.add(1, 2, 3, 6);    // turns north at (3,2)
  m.run();
  ASSERT_TRUE(m.engine->all_delivered());
  EXPECT_EQ(m.engine->packet(straight).delivered_at,
            m.mesh.distance(m.mesh.id_of(3, 0), m.mesh.id_of(3, 7)));
  (void)turner;
}

TEST(Emps, RefusesOverfullInlinkQueue) {
  // k = 1 per-inlink queues with capacity-checked acceptance: occupancy
  // never exceeds 1 even under a row convoy.
  Micro m("emps", /*k=*/1);
  m.add(0, 0, 7, 0);
  m.add(1, 0, 6, 0);
  m.add(2, 0, 7, 1);
  m.run();
  ASSERT_TRUE(m.engine->all_delivered());
  EXPECT_LE(m.engine->max_occupancy_seen(), 1);
}

// ---- stray (nonminimal, §5) ----------------------------------------------

TEST(Stray, ZeroDeltaIsMinimal) {
  auto algo = make_algorithm("stray-0");
  EXPECT_TRUE(algo->minimal());
  EXPECT_EQ(algo->max_stray(), 0);
}

TEST(Stray, DeflectsOutOfAHeadOnDeadlock) {
  // Two head-on packets with k = 1 deadlock every minimal central-queue
  // router (see CentralQueueDeadlock); stray-1 escapes by deflecting.
  Micro minimal_router("dimension-order", /*k=*/1);
  minimal_router.add(2, 2, 5, 2);
  minimal_router.add(3, 2, 0, 2);
  minimal_router.run(3000);
  EXPECT_FALSE(minimal_router.engine->all_delivered());

  Micro stray_router("stray-1", /*k=*/1);
  stray_router.add(2, 2, 5, 2);
  stray_router.add(3, 2, 0, 2);
  stray_router.run(3000);
  EXPECT_TRUE(stray_router.engine->all_delivered());
}

TEST(Stray, EngineRejectsExcessStray) {
  // A packet that tries to leave the rectangle by more than δ is an
  // engine-level violation. Force it with a malicious δ-lying router: we
  // simulate by running stray-1 and asserting the engine accepted the run
  // (positive control), then check the validation path via a hand-rolled
  // algorithm.
  class Defector : public Algorithm {
   public:
    std::string name() const override { return "defector"; }
    bool minimal() const override { return false; }
    int max_stray() const override { return 1; }
    void plan_out(Sim& e, NodeId u, OutPlan& plan) override {
      // Always push the packet north regardless of its rectangle.
      if (!e.packets_at(u).empty() &&
          e.mesh().neighbor(u, Dir::North) != kInvalidNode)
        plan.schedule(Dir::North, e.packets_at(u)[0]);
    }
    void plan_in(Sim&, NodeId, std::span<const Offer> offers,
                 InPlan& plan) override {
      plan.reset(offers.size());
      for (std::size_t i = 0; i < offers.size(); ++i) plan.accept[i] = true;
    }
  };
  const Mesh mesh = Mesh::square(8);
  Defector algo;
  Engine::Config config;
  config.queue_capacity = 4;
  Engine e(mesh, config, algo);
  e.add_packet(mesh.id_of(0, 0), mesh.id_of(5, 0));  // pure east rectangle
  e.prepare();
  e.step_once();  // row 1 — within δ=1
  EXPECT_THROW(e.step_once(), InvariantViolation);  // row 2 — beyond δ
}

// ---- greedy-match --------------------------------------------------------

TEST(GreedyMatch, SaturatesMultipleOutlinks) {
  // Four packets with disjoint profitable directions all leave in step 1.
  Micro m("greedy-match");
  m.add(3, 3, 6, 3);
  m.add(3, 3, 0, 3);
  m.add(3, 3, 3, 6);
  m.add(3, 3, 3, 0);
  m.run();
  ASSERT_TRUE(m.engine->all_delivered());
  int first_step_moves = 0;
  for (const TraceEvent& ev : m.trace.events())
    if (ev.kind == TraceEventKind::Move && ev.step == 1) ++first_step_moves;
  EXPECT_EQ(first_step_moves, 4);
}

}  // namespace
}  // namespace mr
