file(REMOVE_RECURSE
  "CMakeFiles/patterns_test.dir/patterns_test.cpp.o"
  "CMakeFiles/patterns_test.dir/patterns_test.cpp.o.d"
  "patterns_test"
  "patterns_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/patterns_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
