file(REMOVE_RECURSE
  "CMakeFiles/e09_fastroute_linear.dir/e09_fastroute_linear.cpp.o"
  "CMakeFiles/e09_fastroute_linear.dir/e09_fastroute_linear.cpp.o.d"
  "e09_fastroute_linear"
  "e09_fastroute_linear.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e09_fastroute_linear.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
