// Time-varying (bursty) open-loop traffic sources layered on the same
// spatial patterns as BernoulliSource: a deterministic on-off duty cycle,
// a two-state MMPP (Markov-modulated Poisson process, discretised to one
// Bernoulli trial per terminal per step), and a drifting-hotspot source
// whose sink walks the terminal space on a fixed period. Every source is
// Snapshottable with its own "<kind>/1" aux-blob wire format, so
// checkpointed runs resume the exact stream bit for bit.
//
// A BurstSpec is the declarative description ("none", "onoff:<on>:<off>",
// "mmpp:<p01>:<p10>", "drift:<period>") used by the fuzzer's burst= spec
// key, the steady-state harness and the CLI; make_traffic_source is the
// registry-style factory mirroring make_topology / make_algorithm.
#pragma once

#include <memory>
#include <string>

#include "traffic/source.hpp"

namespace mr {

/// Declarative burst-process selector layered over a TrafficSpec. The
/// default ("none") is the stationary Bernoulli process; every other kind
/// modulates the per-step injection probability over time, so the offered
/// load is a function of the step, not a constant.
struct BurstSpec {
  /// "" or "none" (stationary), "onoff", "mmpp", "drift".
  std::string kind;
  /// onoff: steps spent injecting at spec.rate / silent, per cycle.
  Step on_steps = 8;
  Step off_steps = 8;
  /// mmpp: per-step transition probabilities low->high and high->low.
  double p01 = 0.1;
  double p10 = 0.1;
  /// drift: steps between hotspot-sink moves.
  Step drift_period = 64;

  /// True when the offered load is constant over time (kind none): the
  /// saturation search and any other stationarity-assuming consumer may
  /// treat TrafficSpec::rate as the long-run offered load.
  bool stationary() const { return kind.empty() || kind == "none"; }
};

/// Parses "none" / "onoff:<on>:<off>" / "mmpp:<p01>:<p10>" /
/// "drift:<period>" into `out`; returns false (with a message in *error
/// when non-null) on malformed or out-of-range specs.
bool parse_burst_spec(const std::string& text, BurstSpec* out,
                      std::string* error = nullptr);
/// Canonical spelling; format(parse(format(s))) == format(s).
std::string format_burst_spec(const BurstSpec& spec);

/// Long-run offered load per terminal per step implied by (spec, rate):
/// rate for the stationary process, rate * duty-cycle for on-off, rate *
/// stationary high-state probability for MMPP, rate for drift (the drift
/// moves the destination distribution, not the injection rate).
double long_run_rate(const BurstSpec& spec, double rate);

/// Deterministic duty cycle: ON for on_steps, OFF for off_steps,
/// repeating from step 1. While ON every terminal injects with
/// probability spec.rate (same draw order as BernoulliSource); while OFF
/// the source is silent and consumes no randomness.
class OnOffSource : public TrafficSource {
 public:
  OnOffSource(const Topology& topo, const TrafficSpec& spec,
              const BurstSpec& burst);
  void emit(Step step, std::vector<Demand>& out) override;

  std::int64_t offered() const { return offered_; }

  std::string save_state() const override;
  void restore_state(const std::string& blob) override;

 private:
  const Topology& topo_;
  TrafficSpec spec_;
  Step on_steps_;
  Step off_steps_;
  Rng rng_;
  Step last_step_ = 0;
  std::int64_t offered_ = 0;
};

/// Two-state Markov-modulated source: a per-step chain (low -> high with
/// probability p01, high -> low with p10, one transition draw per elapsed
/// step so gaps in the emit sequence stay deterministic) gates the
/// injection rate — silent in the low state, spec.rate in the high state.
/// Long-run offered load is spec.rate * p01 / (p01 + p10).
class MmppSource : public TrafficSource {
 public:
  MmppSource(const Topology& topo, const TrafficSpec& spec,
             const BurstSpec& burst);
  void emit(Step step, std::vector<Demand>& out) override;

  std::int64_t offered() const { return offered_; }
  bool high() const { return state_ == 1; }

  std::string save_state() const override;
  void restore_state(const std::string& blob) override;

 private:
  const Topology& topo_;
  TrafficSpec spec_;
  double p01_;
  double p10_;
  Rng rng_;
  Step last_step_ = 0;
  std::int64_t offered_ = 0;
  int state_ = 0;  // 0 = low (silent), 1 = high (spec.rate)
};

/// Hotspot traffic whose sink drifts deterministically: every
/// drift_period steps the sink advances to the next terminal id (mod the
/// terminal count), starting from the spec's resolved hotspot sink. The
/// injection process itself is the stationary Bernoulli(rate) trial, so
/// only the destination distribution is time-varying.
class DriftingHotspotSource : public TrafficSource {
 public:
  DriftingHotspotSource(const Topology& topo, const TrafficSpec& spec,
                        const BurstSpec& burst);
  void emit(Step step, std::vector<Demand>& out) override;

  std::int64_t offered() const { return offered_; }
  /// The sink terminal in effect at `step`.
  NodeId sink_at(Step step) const;

  std::string save_state() const override;
  void restore_state(const std::string& blob) override;

 private:
  const Topology& topo_;
  TrafficSpec spec_;
  Step drift_period_;
  NodeId base_sink_;
  Rng rng_;
  Step last_step_ = 0;
  std::int64_t offered_ = 0;
};

/// Factory over the burst registry: kind none -> BernoulliSource, onoff /
/// mmpp / drift -> the matching source above. Throws InvariantViolation
/// on an unknown kind (parse_burst_spec is the validating front door).
std::unique_ptr<TrafficSource> make_traffic_source(const Topology& topo,
                                                   const TrafficSpec& spec,
                                                   const BurstSpec& burst);

}  // namespace mr
