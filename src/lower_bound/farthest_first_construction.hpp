// §5 "Dimension Order Routing", farthest-first variant: the Ω(n²/k)
// construction for dimension-order routing with a farthest-first outqueue
// policy. This algorithm reads full destination addresses (it is NOT
// destination-exchangeable), so it gets its own construction:
//
//  * the N_i-column is the (n+1−i)-th column (easternmost first),
//  * the i-box is everything west of (and including) the N_i-column within
//    the cn southernmost rows,
//  * each node of the cn southernmost rows sends one packet; initially no
//    N_i-packet (i ≥ 2) sits in its own column, and within every row class
//    indices never increase from west to east,
//  * exchange rule: an N_j-packet scheduled to enter the N_j-column during
//    steps 1..(j−1)·dn is exchanged with the westernmost-in-its-row
//    N_{j−1}-packet in the (j+1)-box not scheduled to enter that column.
#pragma once

#include <string>
#include <vector>

#include "lower_bound/constants.hpp"
#include "sim/engine.hpp"
#include "topo/mesh.hpp"
#include "workload/permutation.hpp"

namespace mr {

class FarthestFirstConstruction {
 public:
  FarthestFirstConstruction(const Mesh& mesh,
                            const FarthestFirstLbParams& params);

  Step certified_steps() const { return certified_; }
  std::int64_t num_classes() const { return classes_; }

  /// 0-based column of the N_i-column (column n−i).
  std::int32_t line(std::int64_t i) const {
    return static_cast<std::int32_t>(n_ - i);
  }

  /// Class index, or 0 if unclassed.
  std::int64_t classify(Coord source, Coord dest) const;

  Workload placement() const;

  struct RunResult {
    Step steps = 0;
    std::size_t exchanges = 0;
    std::size_t undelivered = 0;
    bool row_order_ok = true;  ///< the per-row class-ordering invariant
    std::vector<std::uint64_t> stepwise_nodest_fingerprints;
    std::uint64_t final_fingerprint = 0;
    Workload constructed;
  };
  RunResult run_construction(const std::string& algorithm, int k);

  struct ReplayResult {
    RunResult construction;
    /// Farthest-first uses full destinations, so stepwise destination-less
    /// equality is NOT implied by Lemma 10; we still measure it.
    bool stepwise_match = true;
    bool final_match = true;
    Step first_mismatch = -1;
    std::size_t undelivered_at_certified = 0;
    Step replay_total_steps = 0;
    bool replay_all_delivered = false;
  };
  ReplayResult verify_replay(const std::string& algorithm, int k,
                             Step replay_budget = 0);

 private:
  Mesh mesh_;
  std::int32_t n_;
  int k_;
  std::int32_t cn_;
  std::int32_t dn_;
  std::int64_t p_;
  std::int64_t classes_;
  Step certified_;
};

}  // namespace mr
