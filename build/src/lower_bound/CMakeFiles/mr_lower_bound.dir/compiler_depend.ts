# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for mr_lower_bound.
