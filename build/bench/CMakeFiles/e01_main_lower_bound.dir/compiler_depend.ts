# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for e01_main_lower_bound.
