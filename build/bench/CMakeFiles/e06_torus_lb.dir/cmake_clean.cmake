file(REMOVE_RECURSE
  "CMakeFiles/e06_torus_lb.dir/e06_torus_lb.cpp.o"
  "CMakeFiles/e06_torus_lb.dir/e06_torus_lb.cpp.o.d"
  "e06_torus_lb"
  "e06_torus_lb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e06_torus_lb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
