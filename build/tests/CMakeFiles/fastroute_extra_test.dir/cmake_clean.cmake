file(REMOVE_RECURSE
  "CMakeFiles/fastroute_extra_test.dir/fastroute_extra_test.cpp.o"
  "CMakeFiles/fastroute_extra_test.dir/fastroute_extra_test.cpp.o.d"
  "fastroute_extra_test"
  "fastroute_extra_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fastroute_extra_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
