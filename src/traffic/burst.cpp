#include "traffic/burst.hpp"

#include <array>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>

#include "core/assert.hpp"

namespace mr {
namespace {

[[noreturn]] void bad_blob(const char* what) {
  throw SnapshotError(SnapshotError::Kind::Format,
                      std::string("traffic source state blob: ") + what);
}

bool fail(std::string* error, const std::string& what) {
  if (error != nullptr) *error = what;
  return false;
}

/// Splits "kind:a:b" into fields on ':'.
std::vector<std::string> split_fields(const std::string& text) {
  std::vector<std::string> fields;
  std::size_t start = 0;
  while (true) {
    const std::size_t colon = text.find(':', start);
    if (colon == std::string::npos) {
      fields.push_back(text.substr(start));
      return fields;
    }
    fields.push_back(text.substr(start, colon - start));
    start = colon + 1;
  }
}

bool parse_step_field(const std::string& field, Step* out) {
  if (field.empty()) return false;
  char* end = nullptr;
  const long v = std::strtol(field.c_str(), &end, 10);
  if (end == field.c_str() || *end != '\0') return false;
  *out = static_cast<Step>(v);
  return true;
}

bool parse_prob_field(const std::string& field, double* out) {
  if (field.empty()) return false;
  char* end = nullptr;
  const double v = std::strtod(field.c_str(), &end);
  if (end == field.c_str() || *end != '\0') return false;
  *out = v;
  return true;
}

}  // namespace

bool parse_burst_spec(const std::string& text, BurstSpec* out,
                      std::string* error) {
  BurstSpec spec;
  if (text.empty() || text == "none") {
    spec.kind = "none";
    *out = spec;
    return true;
  }
  const std::vector<std::string> fields = split_fields(text);
  spec.kind = fields[0];
  if (spec.kind == "onoff") {
    if (fields.size() != 3 || !parse_step_field(fields[1], &spec.on_steps) ||
        !parse_step_field(fields[2], &spec.off_steps))
      return fail(error, "burst: expected onoff:<on>:<off>");
    if (spec.on_steps < 1 || spec.off_steps < 1)
      return fail(error, "burst: onoff periods must be >= 1");
  } else if (spec.kind == "mmpp") {
    if (fields.size() != 3 || !parse_prob_field(fields[1], &spec.p01) ||
        !parse_prob_field(fields[2], &spec.p10))
      return fail(error, "burst: expected mmpp:<p01>:<p10>");
    if (!(spec.p01 > 0.0 && spec.p01 <= 1.0) ||
        !(spec.p10 > 0.0 && spec.p10 <= 1.0))
      return fail(error, "burst: mmpp probabilities must be in (0, 1]");
  } else if (spec.kind == "drift") {
    if (fields.size() != 2 || !parse_step_field(fields[1], &spec.drift_period))
      return fail(error, "burst: expected drift:<period>");
    if (spec.drift_period < 1)
      return fail(error, "burst: drift period must be >= 1");
  } else {
    return fail(error, "burst: unknown kind '" + spec.kind + "'");
  }
  *out = spec;
  return true;
}

std::string format_burst_spec(const BurstSpec& spec) {
  if (spec.stationary()) return "none";
  char buf[96];
  if (spec.kind == "onoff") {
    std::snprintf(buf, sizeof buf, "onoff:%" PRId64 ":%" PRId64,
                  static_cast<std::int64_t>(spec.on_steps),
                  static_cast<std::int64_t>(spec.off_steps));
  } else if (spec.kind == "mmpp") {
    std::snprintf(buf, sizeof buf, "mmpp:%g:%g", spec.p01, spec.p10);
  } else {
    MR_REQUIRE_MSG(spec.kind == "drift",
                   "unknown burst kind '" << spec.kind << "'");
    std::snprintf(buf, sizeof buf, "drift:%" PRId64,
                  static_cast<std::int64_t>(spec.drift_period));
  }
  return buf;
}

double long_run_rate(const BurstSpec& spec, double rate) {
  if (spec.kind == "onoff") {
    return rate * static_cast<double>(spec.on_steps) /
           static_cast<double>(spec.on_steps + spec.off_steps);
  }
  if (spec.kind == "mmpp") return rate * spec.p01 / (spec.p01 + spec.p10);
  return rate;  // none and drift leave the injection process stationary
}

// --- OnOffSource ---------------------------------------------------------

OnOffSource::OnOffSource(const Topology& topo, const TrafficSpec& spec,
                         const BurstSpec& burst)
    : topo_(topo),
      spec_(spec),
      on_steps_(burst.on_steps),
      off_steps_(burst.off_steps),
      rng_(spec.seed) {
  MR_REQUIRE_MSG(spec.rate >= 0.0 && spec.rate <= 1.0,
                 "injection rate must be in [0, 1], got " << spec.rate);
  MR_REQUIRE_MSG(on_steps_ >= 1 && off_steps_ >= 1,
                 "on-off periods must be >= 1, got on=" << on_steps_
                     << " off=" << off_steps_);
}

void OnOffSource::emit(Step step, std::vector<Demand>& out) {
  MR_REQUIRE_MSG(step > last_step_,
                 "emit steps must be strictly increasing: " << step
                     << " after " << last_step_);
  last_step_ = step;
  // Step 1 opens the first ON window; OFF steps consume no randomness so
  // the stream stays deterministic across emit gaps.
  if ((step - 1) % (on_steps_ + off_steps_) >= on_steps_) return;
  const NodeId n = topo_.num_terminals();
  for (NodeId t = 0; t < n; ++t) {
    if (rng_.next_double() >= spec_.rate) continue;
    const NodeId dest = traffic_destination(topo_, spec_, t, rng_);
    if (dest == kInvalidNode) continue;  // pattern: this terminal never sends
    out.push_back(Demand{topo_.terminal_router(t), topo_.terminal_router(dest),
                         step});
    ++offered_;
  }
}

std::string OnOffSource::save_state() const {
  const std::array<std::uint64_t, 4> s = rng_.state();
  char buf[160];
  std::snprintf(buf, sizeof buf,
                "onoff/1 %016" PRIx64 " %016" PRIx64 " %016" PRIx64
                " %016" PRIx64 " %" PRId64 " %" PRId64,
                s[0], s[1], s[2], s[3], static_cast<std::int64_t>(last_step_),
                offered_);
  return buf;
}

void OnOffSource::restore_state(const std::string& blob) {
  std::array<std::uint64_t, 4> s{};
  std::int64_t last = 0, offered = 0;
  if (std::sscanf(blob.c_str(),
                  "onoff/1 %" SCNx64 " %" SCNx64 " %" SCNx64 " %" SCNx64
                  " %" SCNd64 " %" SCNd64,
                  &s[0], &s[1], &s[2], &s[3], &last, &offered) != 6)
    bad_blob("not an onoff/1 record");
  if (last < 0 || offered < 0) bad_blob("negative counter");
  rng_.set_state(s);
  last_step_ = last;
  offered_ = offered;
}

// --- MmppSource ----------------------------------------------------------

MmppSource::MmppSource(const Topology& topo, const TrafficSpec& spec,
                       const BurstSpec& burst)
    : topo_(topo),
      spec_(spec),
      p01_(burst.p01),
      p10_(burst.p10),
      rng_(spec.seed) {
  MR_REQUIRE_MSG(spec.rate >= 0.0 && spec.rate <= 1.0,
                 "injection rate must be in [0, 1], got " << spec.rate);
  MR_REQUIRE_MSG(p01_ > 0.0 && p01_ <= 1.0 && p10_ > 0.0 && p10_ <= 1.0,
                 "mmpp transition probabilities must be in (0, 1], got p01="
                     << p01_ << " p10=" << p10_);
}

void MmppSource::emit(Step step, std::vector<Demand>& out) {
  MR_REQUIRE_MSG(step > last_step_,
                 "emit steps must be strictly increasing: " << step
                     << " after " << last_step_);
  // One transition draw per elapsed step, so the chain is a function of
  // the step index even when the emit sequence has gaps.
  for (Step s = last_step_ + 1; s <= step; ++s) {
    const double u = rng_.next_double();
    if (state_ == 0) {
      if (u < p01_) state_ = 1;
    } else {
      if (u < p10_) state_ = 0;
    }
  }
  last_step_ = step;
  if (state_ == 0) return;  // low state: silent
  const NodeId n = topo_.num_terminals();
  for (NodeId t = 0; t < n; ++t) {
    if (rng_.next_double() >= spec_.rate) continue;
    const NodeId dest = traffic_destination(topo_, spec_, t, rng_);
    if (dest == kInvalidNode) continue;
    out.push_back(Demand{topo_.terminal_router(t), topo_.terminal_router(dest),
                         step});
    ++offered_;
  }
}

std::string MmppSource::save_state() const {
  const std::array<std::uint64_t, 4> s = rng_.state();
  char buf[160];
  std::snprintf(buf, sizeof buf,
                "mmpp/1 %016" PRIx64 " %016" PRIx64 " %016" PRIx64
                " %016" PRIx64 " %" PRId64 " %" PRId64 " %d",
                s[0], s[1], s[2], s[3], static_cast<std::int64_t>(last_step_),
                offered_, state_);
  return buf;
}

void MmppSource::restore_state(const std::string& blob) {
  std::array<std::uint64_t, 4> s{};
  std::int64_t last = 0, offered = 0;
  int state = 0;
  if (std::sscanf(blob.c_str(),
                  "mmpp/1 %" SCNx64 " %" SCNx64 " %" SCNx64 " %" SCNx64
                  " %" SCNd64 " %" SCNd64 " %d",
                  &s[0], &s[1], &s[2], &s[3], &last, &offered, &state) != 7)
    bad_blob("not a mmpp/1 record");
  if (last < 0 || offered < 0) bad_blob("negative counter");
  if (state != 0 && state != 1) bad_blob("mmpp state must be 0 or 1");
  rng_.set_state(s);
  last_step_ = last;
  offered_ = offered;
  state_ = state;
}

// --- DriftingHotspotSource ----------------------------------------------

DriftingHotspotSource::DriftingHotspotSource(const Topology& topo,
                                             const TrafficSpec& spec,
                                             const BurstSpec& burst)
    : topo_(topo),
      spec_(spec),
      drift_period_(burst.drift_period),
      rng_(spec.seed) {
  MR_REQUIRE_MSG(spec.rate >= 0.0 && spec.rate <= 1.0,
                 "injection rate must be in [0, 1], got " << spec.rate);
  MR_REQUIRE_MSG(spec.hotspot_fraction >= 0.0 && spec.hotspot_fraction <= 1.0,
                 "hotspot fraction must be in [0, 1]");
  MR_REQUIRE_MSG(drift_period_ >= 1,
                 "drift period must be >= 1, got " << drift_period_);
  spec_.pattern = TrafficPattern::Hotspot;
  base_sink_ = hotspot_sink(topo, spec_);
}

NodeId DriftingHotspotSource::sink_at(Step step) const {
  const NodeId n = topo_.num_terminals();
  return static_cast<NodeId>(
      (base_sink_ + static_cast<NodeId>((step - 1) / drift_period_ %
                                        static_cast<Step>(n))) %
      n);
}

void DriftingHotspotSource::emit(Step step, std::vector<Demand>& out) {
  MR_REQUIRE_MSG(step > last_step_,
                 "emit steps must be strictly increasing: " << step
                     << " after " << last_step_);
  last_step_ = step;
  TrafficSpec drifted = spec_;
  drifted.hotspot_sink = sink_at(step);
  const NodeId n = topo_.num_terminals();
  for (NodeId t = 0; t < n; ++t) {
    if (rng_.next_double() >= spec_.rate) continue;
    const NodeId dest = traffic_destination(topo_, drifted, t, rng_);
    if (dest == kInvalidNode) continue;
    out.push_back(Demand{topo_.terminal_router(t), topo_.terminal_router(dest),
                         step});
    ++offered_;
  }
}

std::string DriftingHotspotSource::save_state() const {
  const std::array<std::uint64_t, 4> s = rng_.state();
  char buf[160];
  std::snprintf(buf, sizeof buf,
                "drift/1 %016" PRIx64 " %016" PRIx64 " %016" PRIx64
                " %016" PRIx64 " %" PRId64 " %" PRId64,
                s[0], s[1], s[2], s[3], static_cast<std::int64_t>(last_step_),
                offered_);
  return buf;
}

void DriftingHotspotSource::restore_state(const std::string& blob) {
  std::array<std::uint64_t, 4> s{};
  std::int64_t last = 0, offered = 0;
  if (std::sscanf(blob.c_str(),
                  "drift/1 %" SCNx64 " %" SCNx64 " %" SCNx64 " %" SCNx64
                  " %" SCNd64 " %" SCNd64,
                  &s[0], &s[1], &s[2], &s[3], &last, &offered) != 6)
    bad_blob("not a drift/1 record");
  if (last < 0 || offered < 0) bad_blob("negative counter");
  rng_.set_state(s);
  last_step_ = last;
  offered_ = offered;
}

std::unique_ptr<TrafficSource> make_traffic_source(const Topology& topo,
                                                   const TrafficSpec& spec,
                                                   const BurstSpec& burst) {
  if (burst.stationary())
    return std::make_unique<BernoulliSource>(topo, spec);
  if (burst.kind == "onoff")
    return std::make_unique<OnOffSource>(topo, spec, burst);
  if (burst.kind == "mmpp") return std::make_unique<MmppSource>(topo, spec, burst);
  MR_REQUIRE_MSG(burst.kind == "drift",
                 "unknown burst kind '" << burst.kind << "'");
  return std::make_unique<DriftingHotspotSource>(topo, spec, burst);
}

}  // namespace mr
