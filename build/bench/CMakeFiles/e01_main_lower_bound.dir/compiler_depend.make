# Empty compiler generated dependencies file for e01_main_lower_bound.
# This may be replaced when dependencies are built.
