#include "routing/dx.hpp"

namespace mr {

DxAlgorithm::NodeCtx DxAlgorithm::make_ctx(const Sim& e, NodeId u) const {
  NodeCtx ctx;
  ctx.node = u;
  ctx.coord = e.mesh().coord_of(u);
  ctx.width = e.mesh().width();
  ctx.height = e.mesh().height();
  ctx.torus = e.mesh().is_torus();
  ctx.step = e.step();
  ctx.capacity = e.queue_capacity();
  ctx.state = e.node_state(u);
  // The default avail mask (all links up) keeps the fault-free hot path
  // free of per-node availability lookups.
  ctx.fault_mode = !e.fault_schedule().empty();
  if (e.faults_active()) ctx.avail = e.available_mask(u);
  if (e.queue_layout() == QueueLayout::PerInlink) {
    for (int t = 0; t < kNumDirs; ++t)
      ctx.inlink_occupancy[t] = e.occupancy(u, static_cast<QueueTag>(t));
  }
  return ctx;
}

void DxAlgorithm::fill_views(const Sim& e, NodeId u) {
  views_.clear();
  for (PacketId p : e.packets_at(u)) {
    const Packet& pk = e.packet(p);
    views_.push_back(PacketDxView{p, pk.source, pk.state, pk.arrived_at,
                                  pk.queue, pk.arrival_inlink,
                                  e.profitable_mask(p)});
  }
}

void DxAlgorithm::init(Sim& e) {
  for (NodeId u = 0; u < e.mesh().num_nodes(); ++u) {
    if (e.packets_at(u).empty()) continue;
    NodeCtx ctx = make_ctx(e, u);
    fill_views(e, u);
    dx_init(ctx, std::span<PacketDxView>(views_));
    e.set_node_state(u, ctx.state);
    for (const PacketDxView& v : views_) e.set_packet_state(v.id, v.state);
  }
}

void DxAlgorithm::plan_out(Sim& e, NodeId u, OutPlan& plan) {
  NodeCtx ctx = make_ctx(e, u);
  fill_views(e, u);
  dx_plan_out(ctx, std::span<const PacketDxView>(views_), plan);
  // Outqueue policies may not change state (§3 updates states in (e)).
}

void DxAlgorithm::plan_in(Sim& e, NodeId v, std::span<const Offer> offers,
                          InPlan& plan) {
  NodeCtx ctx = make_ctx(e, v);
  fill_views(e, v);
  dx_offers_.clear();
  for (const Offer& o : offers) {
    const Packet& pk = e.packet(o.packet);
    dx_offers_.push_back(
        DxOffer{PacketDxView{o.packet, pk.source, pk.state, pk.arrived_at,
                             pk.queue, pk.arrival_inlink,
                             o.profitable_from_sender},
                o.dir});
  }
  dx_plan_in(ctx, std::span<const PacketDxView>(views_),
             std::span<const DxOffer>(dx_offers_), plan);
}

void DxAlgorithm::update_state(Sim& e, NodeId v) {
  NodeCtx ctx = make_ctx(e, v);
  fill_views(e, v);
  dx_update(ctx, std::span<PacketDxView>(views_));
  e.set_node_state(v, ctx.state);
  for (const PacketDxView& view : views_)
    e.set_packet_state(view.id, view.state);
}

}  // namespace mr
