// Torus-specific routing behaviour (§5 "The Torus"): wrap-around links are
// real shortest paths, tie masks (both directions profitable) are handled,
// and the routers deliver across the seam.
#include <gtest/gtest.h>

#include "routing/registry.hpp"
#include "sim/engine.hpp"
#include "sim/trace.hpp"
#include "topo/mesh.hpp"
#include "workload/patterns.hpp"
#include "workload/permutation.hpp"

namespace mr {
namespace {

TEST(TorusRouting, PacketTakesTheWrapLink) {
  const Mesh torus = Mesh::square(10, true);
  auto algo = make_algorithm("dimension-order");
  Engine::Config config;
  config.queue_capacity = 2;
  Engine e(torus, config, *algo);
  // (9,0) → (1,0): wrap east distance 2 vs interior west distance 8.
  const PacketId p = e.add_packet(torus.id_of(9, 0), torus.id_of(1, 0));
  TraceRecorder trace;
  e.add_observer(&trace);
  e.prepare();
  e.run(100);
  ASSERT_TRUE(e.all_delivered());
  const auto path = trace.packet_path(p, torus.id_of(9, 0));
  ASSERT_EQ(path.size(), 3u);  // 2 hops
  EXPECT_EQ(path[1], torus.id_of(0, 0));  // crossed the seam
}

TEST(TorusRouting, TieDistanceEitherWayIsMinimal) {
  // On a 10-torus a displacement of exactly 5 makes both directions
  // profitable; the move must still shrink the distance (engine-checked).
  const Mesh torus = Mesh::square(10, true);
  for (const std::string& name : dx_minimal_algorithm_names()) {
    auto algo = make_algorithm(name);
    Engine::Config config;
    config.queue_capacity = 2;
    Engine e(torus, config, *algo);
    e.add_packet(torus.id_of(0, 0), torus.id_of(5, 5));
    e.prepare();
    e.run(100);
    EXPECT_TRUE(e.all_delivered()) << name;
    EXPECT_EQ(e.packet(0).delivered_at, 10) << name;  // L1 distance 5+5
  }
}

TEST(TorusRouting, FullPermutationOnBoundedRouter) {
  const Mesh torus = Mesh::square(12, true);
  auto algo = make_algorithm("bounded-dimension-order");
  Engine::Config config;
  config.queue_capacity = 1;
  Engine e(torus, config, *algo);
  for (const Demand& d : random_permutation(torus, 77))
    e.add_packet(d.source, d.dest, d.injected_at);
  e.prepare();
  e.run(10000);
  EXPECT_TRUE(e.all_delivered());
  EXPECT_LE(e.max_occupancy_seen(), 1);
}

TEST(TorusRouting, RotationIsUniformlyFast) {
  // A diagonal shift on a torus is completely uniform: every packet has
  // the same distance and there is no congestion at all under
  // dimension-order routing (each link carries a fixed stream).
  const Mesh torus = Mesh::square(12, true);
  auto algo = make_algorithm("dimension-order");
  Engine::Config config;
  config.queue_capacity = 2;
  Engine e(torus, config, *algo);
  for (const Demand& d : diagonal_shift(torus, 3))
    e.add_packet(d.source, d.dest, d.injected_at);
  e.prepare();
  const Step steps = e.run(1000);
  EXPECT_TRUE(e.all_delivered());
  EXPECT_EQ(steps, 6);  // distance 3+3, zero queueing
  EXPECT_LE(e.max_occupancy_seen(), 1);
}

TEST(TorusRouting, MeshVsTorusLatency) {
  // The same corner flood is roughly twice as fast on the torus (wrap
  // halves the distances).
  auto run_steps = [](bool torus) {
    const Mesh mesh = Mesh::square(16, torus);
    auto algo = make_algorithm("bounded-dimension-order");
    Engine::Config config;
    config.queue_capacity = 2;
    Engine e(mesh, config, *algo);
    for (const Demand& d : corner_flood(mesh, 8, 8))
      e.add_packet(d.source, d.dest, d.injected_at);
    e.prepare();
    const Step s = e.run(10000);
    EXPECT_TRUE(e.all_delivered());
    return s;
  };
  const Step mesh_steps = run_steps(false);
  const Step torus_steps = run_steps(true);
  EXPECT_LT(2 * torus_steps, 3 * mesh_steps);  // ≈ half, with slack
}

}  // namespace
}  // namespace mr
