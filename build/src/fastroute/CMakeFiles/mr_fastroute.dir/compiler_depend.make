# Empty compiler generated dependencies file for mr_fastroute.
# This may be replaced when dependencies are built.
