// (l,k)-routing workloads (Huc–Sau, arXiv:0803.2759): every node is the
// source of at most l packets and the destination of at most k packets.
// Permutation routing is (1,1); h-h relations are (h,h). The generators
// here produce the three instance archetypes the competitive experiments
// (E22) sweep: degree-balanced random instances, clustered corner-to-corner
// instances, and a deterministic bisection-flood worst case.
#pragma once

#include <string>

#include "workload/permutation.hpp"

namespace mr {

/// One (l,k) generator selection, parseable from the compact spec string
/// "variant:l:k[:seed]" used by `--fuzz-case` lines and bench tooling
/// (e.g. "uniform:2:3:42"). Variants: "uniform", "clustered", "worst-case"
/// (the latter ignores the seed — it is deterministic).
struct LkSpec {
  std::string variant = "uniform";
  int l = 1;
  int k = 1;
  std::uint64_t seed = 1;

  friend bool operator==(const LkSpec&, const LkSpec&) = default;
};

/// Parses "variant:l:k[:seed]". Returns false (with *error set) on an
/// unknown variant or non-positive degree bound.
bool parse_lk_spec(const std::string& text, LkSpec* out, std::string* error);

/// Inverse of parse_lk_spec; always prints all four fields.
std::string format_lk_spec(const LkSpec& spec);

/// Degree-balanced random instance: every node sends exactly min(l,k)
/// packets; destinations are drawn from a shuffled slot pool holding each
/// node k times, so receive degrees stay ≤ k (and average min(l,k)).
Workload lk_uniform(const Topology& mesh, int l, int k, std::uint64_t seed);

/// Clustered instance: sources in the ⌈w/2⌉×⌈h/2⌉ block at the origin,
/// destinations in the mirrored block at the far corner. Senders use their
/// full budget l and receivers their full budget k until the smaller side
/// is exhausted — the degree profile is deliberately lopsided when l ≠ k.
Workload lk_clustered(const Topology& mesh, int l, int k, std::uint64_t seed);

/// Deterministic bisection flood: every west-half node sends min(l,k)
/// packets to its east-mirror node. The middle column links carry
/// Θ(min(l,k)·w) packets per row — congestion dominates dilation, the
/// regime where schedule quality (E21/E22) is actually visible.
Workload lk_worst_case(const Topology& mesh, int l, int k);

/// Dispatches on spec.variant.
Workload make_lk_workload(const Topology& mesh, const LkSpec& spec);

/// True iff no node sends more than l packets or receives more than k.
bool is_lk(const Topology& mesh, const Workload& w, int l, int k);

}  // namespace mr
