# Empty dependencies file for router_unit_test.
# This may be replaced when dependencies are built.
