file(REMOVE_RECURSE
  "CMakeFiles/adversary_demo.dir/adversary_demo.cpp.o"
  "CMakeFiles/adversary_demo.dir/adversary_demo.cpp.o.d"
  "adversary_demo"
  "adversary_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adversary_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
