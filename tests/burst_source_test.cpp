// Time-varying traffic sources (traffic/burst.hpp): spec grammar round
// trips, stream determinism, duty-cycle / long-run rate accuracy,
// mid-stream snapshot round trips, bad-blob negatives, and the
// stationarity gate on the saturation search.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "sim/snapshot.hpp"
#include "topo/mesh.hpp"
#include "traffic/burst.hpp"
#include "traffic/saturation.hpp"
#include "traffic/source.hpp"

namespace mr {
namespace {

TrafficSpec uniform_spec(double rate, std::uint64_t seed) {
  TrafficSpec s;
  s.pattern = TrafficPattern::UniformRandom;
  s.rate = rate;
  s.seed = seed;
  return s;
}

BurstSpec burst_of(const std::string& text) {
  BurstSpec b;
  std::string error;
  EXPECT_TRUE(parse_burst_spec(text, &b, &error)) << error;
  return b;
}

std::vector<std::string> burst_specs() {
  return {"onoff:4:12", "mmpp:0.2:0.1", "drift:8"};
}

TEST(BurstSpec, FormatParseRoundTrip) {
  for (const std::string& text :
       {std::string("none"), std::string("onoff:4:12"),
        std::string("mmpp:0.2:0.1"), std::string("drift:8")}) {
    const BurstSpec b = burst_of(text);
    EXPECT_EQ(format_burst_spec(b), text);
    const BurstSpec again = burst_of(format_burst_spec(b));
    EXPECT_EQ(format_burst_spec(again), text);
  }
  EXPECT_TRUE(burst_of("").stationary());
  EXPECT_TRUE(burst_of("none").stationary());
  EXPECT_FALSE(burst_of("onoff:1:1").stationary());
}

TEST(BurstSpec, MalformedSpecsRejected) {
  BurstSpec b;
  std::string error;
  for (const char* bad :
       {"onoff", "onoff:4", "onoff:0:4", "onoff:4:x", "mmpp:0.2",
        "mmpp:0:0.1", "mmpp:1.5:0.1", "drift", "drift:0", "drift:abc",
        "sawtooth:3"}) {
    EXPECT_FALSE(parse_burst_spec(bad, &b, &error)) << bad;
    EXPECT_FALSE(error.empty()) << bad;
  }
}

TEST(BurstSource, DeterministicUnderSeed) {
  const Mesh mesh = Mesh::square(8);
  for (const std::string& text : burst_specs()) {
    const BurstSpec b = burst_of(text);
    auto a1 = make_traffic_source(mesh, uniform_spec(0.3, 42), b);
    auto a2 = make_traffic_source(mesh, uniform_spec(0.3, 42), b);
    const Workload w1 = materialize_traffic(*a1, 1, 80);
    const Workload w2 = materialize_traffic(*a2, 1, 80);
    ASSERT_EQ(w1.size(), w2.size()) << text;
    for (std::size_t i = 0; i < w1.size(); ++i) {
      EXPECT_EQ(w1[i].source, w2[i].source);
      EXPECT_EQ(w1[i].dest, w2[i].dest);
      EXPECT_EQ(w1[i].injected_at, w2[i].injected_at);
    }
  }
}

TEST(BurstSource, OnOffDutyCycleIsExact) {
  const Mesh mesh = Mesh::square(6);
  const BurstSpec b = burst_of("onoff:4:12");
  OnOffSource source(mesh, uniform_spec(0.5, 7), b);
  const Workload w = materialize_traffic(source, 1, 160);
  // Step 1 opens the first ON window: steps 1..4 on, 5..16 off, 17..20
  // on, ... — no demand may carry an OFF-step injection time.
  for (const Demand& d : w) {
    const Step phase = (d.injected_at - 1) % 16;
    EXPECT_LT(phase, 4) << "demand injected during an OFF window at step "
                        << d.injected_at;
  }
  EXPECT_GT(w.size(), 0u);
}

TEST(BurstSource, LongRunRateMatchesPrediction) {
  const Mesh mesh = Mesh::square(8);
  const double rate = 0.4;
  constexpr Step kSteps = 4000;
  for (const std::string& text : burst_specs()) {
    const BurstSpec b = burst_of(text);
    auto source = make_traffic_source(mesh, uniform_spec(rate, 11), b);
    const Workload w = materialize_traffic(*source, 1, kSteps);
    const double observed =
        static_cast<double>(w.size()) /
        (static_cast<double>(mesh.num_terminals()) * kSteps);
    const double predicted = long_run_rate(b, rate);
    // Uniform keeps ~1/n self-addressed draws out of the stream, so allow
    // a generous relative band on top of sampling noise.
    EXPECT_NEAR(observed, predicted, 0.12 * predicted + 0.01)
        << text << ": observed " << observed << " predicted " << predicted;
  }
}

TEST(BurstSource, SnapshotRoundTripMidStream) {
  const Mesh mesh = Mesh::square(8);
  for (const std::string& text : burst_specs()) {
    const BurstSpec b = burst_of(text);
    const TrafficSpec t = uniform_spec(0.3, 99);
    auto full = make_traffic_source(mesh, t, b);
    const Workload reference = materialize_traffic(*full, 1, 60);

    auto first = make_traffic_source(mesh, t, b);
    Workload prefix = materialize_traffic(*first, 1, 25);
    const std::string blob = first->save_state();

    auto resumed = make_traffic_source(mesh, t, b);
    resumed->restore_state(blob);
    const Workload suffix = materialize_traffic(*resumed, 26, 60);

    prefix.insert(prefix.end(), suffix.begin(), suffix.end());
    ASSERT_EQ(prefix.size(), reference.size()) << text;
    for (std::size_t i = 0; i < prefix.size(); ++i) {
      EXPECT_EQ(prefix[i].source, reference[i].source) << text;
      EXPECT_EQ(prefix[i].dest, reference[i].dest) << text;
      EXPECT_EQ(prefix[i].injected_at, reference[i].injected_at) << text;
    }
  }
}

TEST(BurstSource, RestoreRejectsForeignAndMalformedBlobs) {
  const Mesh mesh = Mesh::square(4);
  const TrafficSpec t = uniform_spec(0.2, 5);
  OnOffSource onoff(mesh, t, burst_of("onoff:2:2"));
  MmppSource mmpp(mesh, t, burst_of("mmpp:0.3:0.3"));
  DriftingHotspotSource drift(mesh, t, burst_of("drift:4"));

  // A blob saved by one kind must not restore into another.
  EXPECT_THROW(onoff.restore_state(mmpp.save_state()), SnapshotError);
  EXPECT_THROW(mmpp.restore_state(drift.save_state()), SnapshotError);
  EXPECT_THROW(drift.restore_state(onoff.save_state()), SnapshotError);
  // Garbage and truncation.
  EXPECT_THROW(onoff.restore_state("not a blob"), SnapshotError);
  EXPECT_THROW(mmpp.restore_state("mmpp/1 0 0"), SnapshotError);
  // Round trip still works after the failed attempts.
  onoff.restore_state(onoff.save_state());
}

TEST(BurstSource, DriftSinkWalksTheTerminalSpace) {
  const Mesh mesh = Mesh::square(6);
  TrafficSpec t = uniform_spec(0.3, 3);
  DriftingHotspotSource source(mesh, t, burst_of("drift:8"));
  const NodeId first = source.sink_at(1);
  EXPECT_EQ(source.sink_at(8), first);  // same period window
  EXPECT_EQ(source.sink_at(9),
            static_cast<NodeId>((first + 1) % mesh.num_terminals()));
  // The walk covers the whole terminal space and wraps.
  EXPECT_EQ(source.sink_at(1 + 8 * static_cast<Step>(mesh.num_terminals())),
            first);
}

TEST(Saturation, RejectsNonStationaryTraffic) {
  SaturationSpec spec;
  spec.base.width = 4;
  spec.base.height = 4;
  spec.base.queue_capacity = 2;
  spec.base.algorithm = "dimension-order";
  spec.base.traffic = uniform_spec(0.1, 1);
  spec.base.burst = burst_of("onoff:4:4");
  EXPECT_THROW(find_saturation_rate(spec), NonStationaryTrafficError);
}

}  // namespace
}  // namespace mr
