file(REMOVE_RECURSE
  "libmr_lower_bound.a"
)
