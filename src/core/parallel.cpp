#include "core/parallel.hpp"

#include <atomic>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace mr {

std::size_t default_thread_count() {
  if (const char* env = std::getenv("MESHROUTE_THREADS")) {
    const long v = std::strtol(env, nullptr, 10);
    if (v >= 1) return static_cast<std::size_t>(v);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

void parallel_for(std::size_t count,
                  const std::function<void(std::size_t)>& fn) {
  parallel_for(count, fn, 0);
}

void parallel_for(std::size_t count,
                  const std::function<void(std::size_t)>& fn,
                  std::size_t thread_count) {
  if (count == 0) return;
  if (thread_count == 0) thread_count = default_thread_count();
  const std::size_t workers = std::min(thread_count, count);
  if (workers <= 1) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }

  std::atomic<std::size_t> next{0};
  std::atomic<bool> abort{false};
  std::exception_ptr first_error;
  std::mutex error_mutex;

  auto worker = [&] {
    for (;;) {
      // First error cancels the remaining iterations: without this check
      // the other workers would claim and run every remaining index before
      // the exception is finally rethrown.
      if (abort.load(std::memory_order_relaxed)) return;
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) return;
      try {
        fn(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
        abort.store(true, std::memory_order_relaxed);
        return;
      }
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(workers - 1);
  for (std::size_t t = 1; t < workers; ++t) threads.emplace_back(worker);
  worker();
  for (auto& t : threads) t.join();

  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace mr
