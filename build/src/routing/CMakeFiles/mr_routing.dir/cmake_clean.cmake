file(REMOVE_RECURSE
  "CMakeFiles/mr_routing.dir/adaptive.cpp.o"
  "CMakeFiles/mr_routing.dir/adaptive.cpp.o.d"
  "CMakeFiles/mr_routing.dir/bounded_dimension_order.cpp.o"
  "CMakeFiles/mr_routing.dir/bounded_dimension_order.cpp.o.d"
  "CMakeFiles/mr_routing.dir/dimension_order.cpp.o"
  "CMakeFiles/mr_routing.dir/dimension_order.cpp.o.d"
  "CMakeFiles/mr_routing.dir/dx.cpp.o"
  "CMakeFiles/mr_routing.dir/dx.cpp.o.d"
  "CMakeFiles/mr_routing.dir/farthest_first.cpp.o"
  "CMakeFiles/mr_routing.dir/farthest_first.cpp.o.d"
  "CMakeFiles/mr_routing.dir/registry.cpp.o"
  "CMakeFiles/mr_routing.dir/registry.cpp.o.d"
  "CMakeFiles/mr_routing.dir/stray.cpp.o"
  "CMakeFiles/mr_routing.dir/stray.cpp.o.d"
  "CMakeFiles/mr_routing.dir/west_first.cpp.o"
  "CMakeFiles/mr_routing.dir/west_first.cpp.o.d"
  "libmr_routing.a"
  "libmr_routing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mr_routing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
