// E02 — Lemmas 1–8 (Figure 2): i-box escape discipline of the construction.
//
// Runs the §3 construction and tallies, per class i, how many N_i/E_i
// packets leave the i-box before the window ((i−1)·dn, i·dn] opens
// (Lemma 1 forbids any), inside it (Lemma 2 caps at one of each type per
// step, so ≤ dn over the window), and after it closes (unconstrained).
// Also reports the Corollary 9 census of class-⌊l⌋ packets still confined
// at step ⌊l⌋·dn.
#include <algorithm>
#include <vector>

#include "lower_bound/main_construction.hpp"
#include "routing/registry.hpp"
#include "scenarios.hpp"
#include "sim/engine.hpp"
#include "topo/mesh.hpp"

namespace mr::scenarios {
namespace {

struct EscapeTally : Observer {
  const MainGeometry* geo = nullptr;
  std::int32_t dn = 0;
  std::vector<std::int64_t> in_window_n, in_window_e, early, late;
  std::vector<std::int64_t> step_n, step_e;
  std::int64_t max_per_step = 0;

  EscapeTally(const MainGeometry& g, std::int32_t dn_steps) {
    geo = &g;
    dn = dn_steps;
    const auto classes = static_cast<std::size_t>(g.classes()) + 1;
    in_window_n.assign(classes, 0);
    in_window_e.assign(classes, 0);
    early.assign(classes, 0);
    late.assign(classes, 0);
    step_n.assign(classes, 0);
    step_e.assign(classes, 0);
  }

  void on_move(const Sim& e, const Packet& pk, NodeId from,
               NodeId to) override {
    const PacketClass cls = geo->classify(e.mesh().coord_of(pk.source),
                                          e.mesh().coord_of(pk.dest));
    if (cls.type == ClassType::None) return;
    if (!geo->in_box(e.mesh().coord_of(from), cls.i) ||
        geo->in_box(e.mesh().coord_of(to), cls.i))
      return;
    const Step t = e.step();
    if (t <= (cls.i - 1) * dn) {
      ++early[cls.i];
    } else if (t <= cls.i * dn) {
      (cls.type == ClassType::N ? in_window_n : in_window_e)[cls.i]++;
      auto& per_step = cls.type == ClassType::N ? step_n : step_e;
      max_per_step = std::max(max_per_step, ++per_step[cls.i]);
    } else {
      ++late[cls.i];
    }
  }

  void on_step_end(const Sim&) override {
    std::fill(step_n.begin(), step_n.end(), 0);
    std::fill(step_e.begin(), step_e.end(), 0);
  }
};

}  // namespace

void register_e02(ScenarioRegistry& registry) {
  ScenarioSpec spec;
  spec.id = "E02";
  spec.label = "box-escape";
  spec.title = "i-box escape discipline during the construction";
  spec.paper_ref = "Lemmas 1-8, Figure 2";
  spec.body = [](ScenarioReport& ctx) {
    const int n = ctx.scale() == Scale::Small ? 120 : 216;
    const int k = 1;
    const MainLbParams par = main_lb_params(n, k);
    const Mesh mesh = Mesh::square(n);

    bool no_early_escapes = true;
    bool one_escape_per_step = true;
    bool corollary9_floor = true;
    for (const std::string& algorithm : dx_minimal_algorithm_names()) {
      MainConstruction construction(mesh, par);
      EscapeTally tally(construction.geometry(), par.dn);
      const auto result = construction.run_construction(algorithm, k, &tally);

      ctx.note("### algorithm: " + algorithm + "  (n=" + std::to_string(n) +
               ", k=" + std::to_string(k) +
               ", dn=" + std::to_string(par.dn) + ")");
      Table table({"class i", "escapes before window (Lemma 1: 0)",
                   "N_i escapes in window (<= dn)",
                   "E_i escapes in window (<= dn)", "escapes after window"});
      for (std::int64_t i = 1; i <= par.classes; ++i) {
        table.row()
            .add(i)
            .add(tally.early[i])
            .add(tally.in_window_n[i])
            .add(tally.in_window_e[i])
            .add(tally.late[i]);
        no_early_escapes = no_early_escapes && tally.early[i] == 0;
      }
      ctx.table(table);

      Table summary({"max escapes/step/type (Lemma 2: 1)", "exchanges",
                     "class-l packets still boxed", "Cor.9 floor 2(p-dn)",
                     "undelivered at l*dn"});
      summary.row()
          .add(tally.max_per_step)
          .add(std::uint64_t(result.exchanges))
          .add(result.last_class_in_box)
          .add(2 * (par.p - par.dn))
          .add(std::uint64_t(result.undelivered));
      ctx.table(summary);
      one_escape_per_step = one_escape_per_step && tally.max_per_step <= 1;
      corollary9_floor = corollary9_floor &&
                         result.last_class_in_box >= 2 * (par.p - par.dn);
    }
    ctx.check("lemma1-no-escapes-before-window", no_early_escapes);
    ctx.check("lemma2-at-most-one-escape-per-step-per-type",
              one_escape_per_step);
    ctx.check("corollary9-confined-census-floor", corollary9_floor);
  };
  registry.add(std::move(spec));
}

}  // namespace mr::scenarios
