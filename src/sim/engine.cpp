#include "sim/engine.hpp"

#include <algorithm>
#include <array>
#include <chrono>

namespace mr {

Engine::Engine(const Mesh& mesh, Config config, Algorithm& algorithm)
    : Sim(mesh, config.queue_capacity, algorithm.queue_layout(),
          /*masks_cached=*/true),
      algorithm_(algorithm),
      stall_limit_(config.stall_limit),
      stall_counts_pending_(config.stall_counts_pending_injections),
      enforce_minimal_(algorithm.minimal()),
      max_stray_(algorithm.max_stray()) {
  MR_REQUIRE_MSG(stall_limit_ >= 0,
                 "stall_limit must be >= 0, got " << stall_limit_);
  const auto n = static_cast<std::size_t>(mesh_.num_nodes());
  is_active_.assign(n, 0);
  if (layout_ == QueueLayout::PerInlink) inlink_occ_.assign(n * kNumDirs, 0);
}

PacketId Engine::add_packet(NodeId source, NodeId dest, Step injected_at) {
  MR_REQUIRE_MSG(!prepared_, "add_packet after prepare()");
  const PacketId id = register_packet(source, dest, injected_at);
  injections_.emplace_back(injected_at, id);
  return id;
}

PacketId Engine::pump_packet(NodeId source, NodeId dest, Step injected_at) {
  MR_REQUIRE_MSG(prepared_, "pump_packet before prepare()");
  MR_REQUIRE_MSG(injected_at > step_,
                 "pump_packet must be future-dated: injected_at "
                     << injected_at << " <= current step " << step_);
  MR_REQUIRE_MSG(injections_.empty() ||
                     injected_at >= injections_.back().first,
                 "pump_packet out of order: injected_at "
                     << injected_at << " < pending tail "
                     << injections_.back().first);
  const PacketId id = register_packet(source, dest, injected_at);
  injections_.emplace_back(injected_at, id);
  packet_scheduled_.push_back(0);
  return id;
}

QueueTag Engine::arrival_tag(Dir travel_dir) const {
  if (layout_ == QueueLayout::Central) return kCentralQueue;
  return static_cast<QueueTag>(dir_index(opposite(travel_dir)));
}

void Engine::place_packet(PacketId p, NodeId node, QueueTag tag) {
  Packet& pk = packets_[p];
  pk.location = node;
  pk.queue = tag;
  pk.arrived_at = step_;
  pk.profitable = mesh_.profitable_dirs(node, pk.dest);
  auto& q = node_packets_[node];
  pk.slot = static_cast<std::int32_t>(q.size());
  q.push_back(p);
  if (layout_ == QueueLayout::PerInlink) ++inlink_occ_[inlink_index(node, tag)];
  if (!is_active_[node]) {
    is_active_[node] = 1;
    active_.push_back(node);
  }
}

void Engine::record_occupancy(NodeId u) {
  // Transmissions within a step are simultaneous in the model, so peak
  // occupancy is only meaningful *between* steps (after phase (d)).
  if (layout_ == QueueLayout::Central) {
    max_occupancy_seen_ = std::max(max_occupancy_seen_, occupancy(u));
    return;
  }
  const std::size_t base = inlink_index(u, 0);
  for (int t = 0; t < kNumDirs; ++t)
    max_occupancy_seen_ =
        std::max(max_occupancy_seen_, static_cast<int>(inlink_occ_[base + t]));
}

void Engine::remove_from_node(PacketId p) {
  Packet& pk = packets_[p];
  auto& q = node_packets_[pk.location];
  const auto slot = static_cast<std::size_t>(pk.slot);
  MR_REQUIRE(slot < q.size() && q[slot] == p);
  q.erase(q.begin() + static_cast<std::ptrdiff_t>(slot));
  // Erasure preserves arrival order of the remaining packets; reindex the
  // ones that shifted down.
  for (std::size_t i = slot; i < q.size(); ++i)
    packets_[q[i]].slot = static_cast<std::int32_t>(i);
  if (layout_ == QueueLayout::PerInlink)
    --inlink_occ_[inlink_index(pk.location, pk.queue)];
  pk.slot = -1;
}

void Engine::merge_active() {
  if (active_sorted_ == active_.size()) return;
  const auto mid = active_.begin() + static_cast<std::ptrdiff_t>(active_sorted_);
  std::sort(mid, active_.end());
  std::inplace_merge(active_.begin(), mid, active_.end());
  active_sorted_ = active_.size();
}

void Engine::inject_due_packets() {
  // Re-offer packets that were due earlier but found a full queue, then
  // newly due packets, all in deterministic (id) order.
  due_.clear();
  due_.swap(waiting_injections_);
  while (injection_cursor_ < injections_.size() &&
         injections_[injection_cursor_].first <= step_) {
    due_.push_back(injections_[injection_cursor_].second);
    ++injection_cursor_;
  }
  if (due_.empty()) return;
  std::sort(due_.begin(), due_.end());
  for (PacketId p : due_) {
    Packet& pk = packets_[p];
    if (pk.source == pk.dest) {
      pk.delivered_at = step_;
      ++delivered_count_;
      ++injected_this_step_;
      if (!observers_.empty()) injected_deliveries_.push_back(p);
      continue;
    }
    const QueueTag tag = layout_ == QueueLayout::Central
                             ? kCentralQueue
                             : injection_queue_tag(p);
    const int used = layout_ == QueueLayout::Central
                         ? occupancy(pk.source)
                         : occupancy(pk.source, tag);
    if (used >= queue_capacity_) {
      waiting_injections_.push_back(p);  // §5: wait outside the network
      continue;
    }
    place_packet(p, pk.source, tag);
    pk.arrival_inlink = kNoInlink;
    ++injected_this_step_;
    record_occupancy(pk.source);
  }
}

QueueTag Engine::injection_queue_tag(PacketId p) const {
  // A freshly injected packet joins the inlink queue it would have arrived
  // on had it been travelling already: the queue opposite one of its
  // profitable directions. Row movement is preferred so that dimension-order
  // routers see row packets in E/W queues. Uses only profitable directions,
  // hence destination-exchangeable-safe.
  const Packet& pk = packets_[p];
  const DirMask m = mesh_.profitable_dirs(pk.source, pk.dest);
  for (Dir d : {Dir::East, Dir::West, Dir::North, Dir::South})
    if (mask_has(m, d)) return static_cast<QueueTag>(dir_index(opposite(d)));
  return static_cast<QueueTag>(dir_index(Dir::South));
}

void Engine::prepare() {
  MR_REQUIRE_MSG(!prepared_, "prepare() called twice");
  prepared_ = true;
  std::stable_sort(injections_.begin(), injections_.end());
  step_ = 0;
  injected_this_step_ = 0;
  injected_deliveries_.clear();
  inject_due_packets();
  // §3: the initial state of nodes/packets may depend on the initial
  // arrangement; the algorithm sets them here.
  algorithm_.init(*this);
  packet_scheduled_.assign(packets_.size(), 0);
  merge_active();
  if (!observers_.empty()) {
    StepDigest digest;
    digest.step = 0;
    digest.injected_deliveries = injected_deliveries_;
    digest.deliveries = static_cast<std::int64_t>(injected_deliveries_.size());
    digest.injections = injected_this_step_;
    for (StepObserver* ob : observers_) ob->on_prepare(*this, digest);
  }
}

void Engine::validate_out_plan(NodeId u, const OutPlan& plan) {
  for (Dir d : kAllDirs) {
    const PacketId p = plan.scheduled(d);
    if (p == kInvalidPacket) continue;
    MR_REQUIRE_MSG(p >= 0 && static_cast<std::size_t>(p) < packets_.size(),
                   "scheduled unknown packet");
    const Packet& pk = packets_[p];
    MR_REQUIRE_MSG(pk.location == u,
                   "node " << u << " scheduled packet " << p
                           << " which is at node " << pk.location);
    MR_REQUIRE_MSG(!packet_scheduled_[p],
                   "packet " << p << " scheduled on two outlinks");
    packet_scheduled_[p] = 1;
    MR_REQUIRE_MSG(mesh_.neighbor(u, d) != kInvalidNode,
                   "node " << u << " scheduled packet off the mesh edge");
    if (enforce_minimal_) {
      // pk.profitable caches profitable_dirs(pk.location, pk.dest) and
      // pk.location == u was checked above.
      MR_REQUIRE_MSG(
          mask_has(pk.profitable, d),
          "minimal algorithm scheduled packet "
              << p << " on unprofitable outlink " << dir_name(d) << " at node "
              << u);
    } else if (max_stray_ >= 0) {
      // §5 nonminimal extension: a packet may never move more than δ nodes
      // beyond the rectangle of its shortest source→destination paths.
      const Coord target = mesh_.coord_of(mesh_.neighbor(u, d));
      const Coord s = mesh_.coord_of(pk.source);
      const Coord t = mesh_.coord_of(pk.dest);
      const bool inside =
          target.col >= std::min(s.col, t.col) - max_stray_ &&
          target.col <= std::max(s.col, t.col) + max_stray_ &&
          target.row >= std::min(s.row, t.row) - max_stray_ &&
          target.row <= std::max(s.row, t.row) + max_stray_;
      MR_REQUIRE_MSG(inside, "packet " << p << " strayed more than delta="
                                       << max_stray_
                                       << " beyond its rectangle");
    }
  }
}

bool Engine::step_once() {
  MR_REQUIRE_MSG(prepared_, "step before prepare()");
  if (all_delivered()) return false;
  ++step_;

  // Phase profiling: zero clock reads unless enabled.
  using Clock = std::chrono::steady_clock;
  Clock::time_point step_begin, phase_begin;
  if (profiling_) step_begin = phase_begin = Clock::now();
  const auto phase_end = [&](StepPhase p) {
    if (!profiling_) return;
    const Clock::time_point now = Clock::now();
    phase_profile_.seconds[static_cast<int>(p)] +=
        std::chrono::duration<double>(now - phase_begin).count();
    phase_begin = now;
  };

  const bool observed = !observers_.empty();
  injected_this_step_ = 0;
  injected_deliveries_.clear();
  exchanges_before_step_ = static_cast<std::int64_t>(exchange_count_);
  inject_due_packets();
  merge_active();
  if (profiling_) phase_begin = Clock::now();  // injection is out-of-phase

  // ----- (a) outqueue policies schedule packets -------------------------
  moves_.clear();
  for (NodeId u : active_) {
    if (node_packets_[u].empty()) continue;
    out_plan_.clear();
    algorithm_.plan_out(*this, u, out_plan_);
    validate_out_plan(u, out_plan_);
    for (Dir d : kAllDirs) {
      const PacketId p = out_plan_.scheduled(d);
      if (p == kInvalidPacket) continue;
      moves_.push_back(ScheduledMove{p, u, mesh_.neighbor(u, d), d});
    }
  }
  // Clear the double-schedule flags set by validate_out_plan: exactly the
  // scheduled packets, so this is O(moves) instead of O(all packets).
  for (const ScheduledMove& m : moves_) packet_scheduled_[m.packet] = 0;
  phase_end(StepPhase::PlanOut);

  // ----- (b) adversary exchanges ----------------------------------------
  if (interceptor_ != nullptr) {
    in_interceptor_ = true;
    interceptor_->after_schedule(*this, moves_);
    in_interceptor_ = false;
    if (enforce_minimal_) {
      // Destinations may have changed; every scheduled move must still be
      // minimal, otherwise the exchange rules were applied incorrectly.
      // (exchange_destinations refreshed the cached masks.)
      for (const ScheduledMove& m : moves_) {
        MR_REQUIRE_MSG(
            mask_has(packets_[m.packet].profitable, m.dir),
            "exchange made scheduled move of packet " << m.packet
                                                      << " non-minimal");
      }
    }
  }
  phase_end(StepPhase::Interceptor);

  // ----- (c) inqueue policies accept/reject ------------------------------
  // Arrivals at the destination are delivered by the model itself (§2) and
  // are not shown to the inqueue policy.
  deliveries_.clear();
  for (auto& bucket : dir_offers_) bucket.clear();
  for (const ScheduledMove& m : moves_) {
    const Packet& pk = packets_[m.packet];
    if (pk.dest == m.to) {
      deliveries_.push_back(&m);
    } else {
      dir_offers_[dir_index(m.dir)].push_back(
          Offer{m.packet, m.from, m.to, m.dir, pk.profitable});
    }
  }
  // moves_ is produced in ascending sender order, and for a fixed travel
  // direction the neighbor map is monotone in the sender, so every bucket
  // is already sorted by receiving node — except across torus wrap links.
  if (mesh_.is_torus()) {
    for (auto& bucket : dir_offers_)
      std::sort(bucket.begin(), bucket.end(),
                [](const Offer& a, const Offer& b) { return a.to < b.to; });
  }

  std::int64_t moved_this_step = 0;

  // 4-way merge of the direction buckets: visits receiving nodes in
  // ascending order, offers within a node in travel-direction order —
  // the exact order the old (to, dir) comparison sort produced.
  accepted_.clear();
  std::array<std::size_t, kNumDirs> head{};
  for (;;) {
    NodeId v = kInvalidNode;
    for (int d = 0; d < kNumDirs; ++d) {
      if (head[d] < dir_offers_[d].size()) {
        const NodeId t = dir_offers_[d][head[d]].to;
        if (v == kInvalidNode || t < v) v = t;
      }
    }
    if (v == kInvalidNode) break;
    group_.clear();
    for (int d = 0; d < kNumDirs; ++d) {
      if (head[d] < dir_offers_[d].size() && dir_offers_[d][head[d]].to == v)
        group_.push_back(dir_offers_[d][head[d]++]);
    }
    in_plan_.reset(group_.size());
    algorithm_.plan_in(*this, v, std::span<const Offer>(group_), in_plan_);
    MR_REQUIRE(in_plan_.accept.size() == group_.size());
    for (std::size_t g = 0; g < group_.size(); ++g)
      if (in_plan_.accept[g]) accepted_.push_back(group_[g]);
  }
  phase_end(StepPhase::PlanIn);

  // ----- (d) transmission -------------------------------------------------
  if (observed) digest_moves_.clear();
  for (const ScheduledMove* m : deliveries_) {
    Packet& pk = packets_[m->packet];
    remove_from_node(pk.id);
    pk.location = kInvalidNode;
    pk.delivered_at = step_;
    ++delivered_count_;
    ++moved_this_step;
    if (observed)
      digest_moves_.push_back(
          MoveRecord{pk.id, m->from, m->to, m->dir, /*delivered=*/true});
  }
  for (const Offer& o : accepted_) {
    Packet& pk = packets_[o.packet];
    const NodeId from = pk.location;
    remove_from_node(pk.id);
    place_packet(pk.id, o.to, arrival_tag(o.dir));
    pk.arrival_inlink =
        static_cast<std::uint8_t>(dir_index(opposite(o.dir)));
    ++moved_this_step;
    ++total_moves_;
    if (observed)
      digest_moves_.push_back(
          MoveRecord{pk.id, from, o.to, o.dir, /*delivered=*/false});
  }

  // No-overflow requirement of §2: check every node that received.
  for (const Offer& o : accepted_) {
    check_capacity_after_transmit(o.to);
    record_occupancy(o.to);
  }
  phase_end(StepPhase::Transmit);

  // ----- (e) state updates -------------------------------------------------
  // update_state runs in ascending NodeId over every node that held, sent
  // or received a packet this step: the sorted pre-step active prefix plus
  // the nodes activated by transmissions (the appended tail, sorted here).
  // A drained node stays in the prefix until compaction below, so senders
  // are covered.
  {
    const std::size_t mid = active_sorted_;
    const std::size_t end = active_.size();
    std::sort(active_.begin() + static_cast<std::ptrdiff_t>(mid),
              active_.end());
    std::size_t i = 0, j = mid;
    while (i < mid || j < end) {
      NodeId v;
      if (j >= end || (i < mid && active_[i] < active_[j]))
        v = active_[i++];
      else
        v = active_[j++];
      algorithm_.update_state(*this, v);
    }
    std::inplace_merge(active_.begin(),
                       active_.begin() + static_cast<std::ptrdiff_t>(mid),
                       active_.end());
  }

  // Compact the active list (nodes that drained drop out).
  active_.erase(std::remove_if(active_.begin(), active_.end(),
                               [&](NodeId u) {
                                 if (node_packets_[u].empty()) {
                                   is_active_[u] = 0;
                                   return true;
                                 }
                                 return false;
                               }),
                active_.end());
  active_sorted_ = active_.size();
  phase_end(StepPhase::Update);

  // Stall detection (livelock guard for buggy algorithms). A step with no
  // movement and no successful injection is a stall step even while
  // packets wait outside the network for a full queue — those can only
  // enter once something moves. Future-dated injections are exogenous
  // progress, so they defer the check — unless the open-loop policy is on:
  // a pump keeps such injections pending for the whole run, so deferring
  // on them would mask any deadlock until the drain phase.
  if (moved_this_step == 0 && injected_this_step_ == 0 &&
      (stall_counts_pending_ || injection_cursor_ == injections_.size())) {
    ++stall_run_;
    if (stall_limit_ > 0 && stall_run_ >= stall_limit_)
      stalled_ = true;
  } else {
    stall_run_ = 0;
  }

  if (observed) {
    StepDigest digest;
    digest.step = step_;
    digest.moves = digest_moves_;
    digest.injected_deliveries = injected_deliveries_;
    digest.deliveries =
        static_cast<std::int64_t>(deliveries_.size() +
                                  injected_deliveries_.size());
    digest.injections = injected_this_step_;
    for (const MoveRecord& m : digest_moves_)
      ++digest.moves_by_dir[dir_index(m.dir)];
    digest.exchanges =
        static_cast<std::int64_t>(exchange_count_) - exchanges_before_step_;
    digest.stall_run = stall_run_;
    for (StepObserver* ob : observers_) ob->on_step(*this, digest);
  }

  if (profiling_) {
    ++phase_profile_.steps;
    phase_profile_.total_seconds +=
        std::chrono::duration<double>(Clock::now() - step_begin).count();
  }
  return true;
}

Step Engine::run(Step max_steps) {
  while (!all_delivered() && !stalled_ && step_ < max_steps) {
    if (!step_once()) break;
  }
  return step_;
}

void Engine::check_capacity_after_transmit(NodeId v) {
  if (layout_ == QueueLayout::Central) {
    MR_REQUIRE_MSG(occupancy(v) <= queue_capacity_,
                   "queue overflow at node " << v << ": " << occupancy(v)
                                             << " > k=" << queue_capacity_
                                             << " (step " << step_ << ")");
    return;
  }
  const std::size_t base = inlink_index(v, 0);
  for (int t = 0; t < kNumDirs; ++t) {
    MR_REQUIRE_MSG(inlink_occ_[base + t] <= queue_capacity_,
                   "inlink queue overflow at node "
                       << v << " queue " << t << " (step " << step_
                       << ")");
  }
}

void Engine::exchange_destinations(PacketId a, PacketId b) {
  MR_REQUIRE_MSG(in_interceptor_,
                 "exchange_destinations outside interceptor phase (b)");
  MR_REQUIRE(a != b);
  std::swap(packets_[a].dest, packets_[b].dest);
  for (PacketId p : {a, b}) {
    Packet& pk = packets_[p];
    if (pk.location != kInvalidNode)
      pk.profitable = mesh_.profitable_dirs(pk.location, pk.dest);
  }
  ++exchange_count_;
}

}  // namespace mr
