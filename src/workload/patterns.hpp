// Structured workload patterns beyond plain permutations: the congestion
// archetypes used across the experiments (hot columns, corner floods,
// monotone filters). All produce partial permutations unless stated.
#pragma once

#include "workload/permutation.hpp"

namespace mr {

/// Every node of row `row` sends to a distinct row of column `col` — all
/// packets turn at one node; under greedy dimension-order routing its
/// queue grows as Θ(n) (the E16 worst case).
Workload row_to_column(const Topology& mesh, std::int32_t row, std::int32_t col);

/// All nodes of the w×h corner block at (0,0) send into the mirrored
/// block at the opposite corner (bit of everything: shared rows, shared
/// columns, long hauls).
Workload corner_flood(const Topology& mesh, std::int32_t w, std::int32_t h);

/// Keeps only demands whose destination lies weakly northeast of the
/// source. Monotone traffic has acyclic blocking chains, hence is
/// deadlock-free even for k = 1 central queues.
Workload northeast_only(const Topology& mesh, const Workload& w);

/// Transpose restricted to sources strictly below the diagonal — pure SE
/// traffic, monotone, deadlock-free.
Workload half_transpose(const Topology& mesh);

/// `count` packets, all destined for the single node `sink` (an h-h style
/// hotspot with h = count at the sink). Sources are the nodes closest to
/// the opposite corner, one packet each.
Workload hotspot(const Topology& mesh, NodeId sink, std::int32_t count);

/// Diagonal shift: (c, r) → ((c+s) mod n, (r+s) mod n); a full permutation
/// with uniform distance s in each dimension.
Workload diagonal_shift(const Topology& mesh, std::int32_t s);

}  // namespace mr
