// Shared helpers for the experiment binaries (E01–E14).
//
// Every binary prints self-contained markdown tables. Default problem
// sizes are laptop-friendly; set MESHROUTE_BENCH_SCALE=large to extend the
// sweeps (and =small to shrink them for smoke testing).
#pragma once

#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "core/table.hpp"
#include "harness/csv_export.hpp"

namespace mr::bench {

enum class Scale { Small, Default, Large };

inline Scale scale() {
  const char* env = std::getenv("MESHROUTE_BENCH_SCALE");
  if (env == nullptr) return Scale::Default;
  const std::string v(env);
  if (v == "small") return Scale::Small;
  if (v == "large") return Scale::Large;
  return Scale::Default;
}

namespace detail {
inline std::string& current_experiment() {
  static std::string id = "experiment";
  return id;
}
inline int& table_counter() {
  static int n = 0;
  return n;
}
}  // namespace detail

inline void header(const std::string& id, const std::string& title,
                   const std::string& paper_ref) {
  detail::current_experiment() = id;
  std::cout << "## " << id << ": " << title << "\n";
  std::cout << "(paper: " << paper_ref << ")\n\n";
}

inline void note(const std::string& text) { std::cout << text << "\n"; }

/// Prints the table as markdown and, when MESHROUTE_OUTPUT_DIR is set,
/// also exports it as <dir>/<experiment>_<i>.csv.
inline void print(const Table& t) {
  t.print(std::cout);
  std::cout.flush();
  export_csv(t, detail::current_experiment() + "_" +
                    std::to_string(detail::table_counter()++));
}

}  // namespace mr::bench
