// meshroute_bench — the single driver for the experiment suite.
//
// Usage:
//   meshroute_bench --list                 enumerate registered scenarios
//                                          and routing algorithms
//   meshroute_bench [--run <id|label>]...  run a selection (default: all)
//   meshroute_bench --json=DIR             also write <dir>/<id>.json per
//                                          scenario (schema
//                                          meshroute-scenario/1, validated
//                                          after writing)
//   meshroute_bench --telemetry=DIR        export meshroute-telemetry/1
//                                          JSONL + CSV artefacts for every
//                                          scenario run under DIR
//   meshroute_bench --profile              wall-clock the five step phases;
//                                          each run reports a phase table
//   meshroute_bench --smoke                small problem sizes (same as
//                                          MESHROUTE_BENCH_SCALE=small)
//   meshroute_bench --jobs=N               worker threads for the sweep
//                                          (results are position-addressed:
//                                          output is identical for any N)
//   meshroute_bench --seed=S               base RNG seed for stochastic
//                                          scenarios (E11, E17, E18);
//                                          default: each scenario's
//                                          built-in seed. Echoed in the
//                                          JSON records.
//   meshroute_bench --resume=DIR           durable-run store: scenario runs
//                                          write periodic checkpoints under
//                                          DIR and, on a re-run after a
//                                          crash, resume from the latest
//                                          checkpoint (or skip runs whose
//                                          .done.json record exists),
//                                          bit-identically to an
//                                          uninterrupted run
//   meshroute_bench --checkpoint-every=N   checkpoint cadence in steps for
//                                          --resume stores (default 256)
//   meshroute_bench --topology=NAME        registry topology (mesh, torus,
//                                          cmesh-N) applied to every
//                                          scenario run that does not pick
//                                          its own network; see --list
//   meshroute_bench --faults=SPEC          timed link/node fault schedule
//                                          ("node:<id>@<down>[-<up>]" /
//                                          "link:<node>:<N|E|S|W>@<down>
//                                          [-<up>]", comma-separated)
//                                          installed on every scenario run
//                                          that does not carry its own
//   meshroute_bench --adversary            attach the online greedy
//                                          destination-exchange adversary
//                                          to every scenario run (forces
//                                          the sequential engine)
//   meshroute_bench --validate=PATH        only validate an existing JSON
//                                          record (scenario .json or
//                                          telemetry .jsonl)
//   meshroute_bench --throughput-guard=P   only re-run the engine sweep and
//                                          fail if moves/s regresses >25%
//                                          against the BENCH_engine.json at
//                                          P (tolerance: MESHROUTE_GUARD_TOL)
//   meshroute_bench --fuzz=N               run N differential-fuzz cases
//                                          (optimized engine vs naive
//                                          reference, invariant oracles on);
//                                          --fuzz-seed=S seeds the sampler.
//                                          On failure the shrunk repro spec
//                                          is printed and written to
//                                          fuzz-repro.txt
//   meshroute_bench --fuzz-case=SPEC       re-run one repro spec line
//
// Markdown goes to stdout exactly as the historical per-experiment
// binaries printed it; check verdicts follow each report as "[check]"
// lines. Exit code is 0 iff every selected scenario ran without error and
// every check passed. CSV export of each table still honours
// MESHROUTE_OUTPUT_DIR.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "check/fuzz.hpp"
#include "engine_bench.hpp"
#include "harness/scenario.hpp"
#include "routing/registry.hpp"
#include "scenarios.hpp"
#include "telemetry/export.hpp"
#include "topo/registry.hpp"
#include "workload/catalog.hpp"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--list] [--run <id|label>]... [--json=DIR] "
               "[--telemetry=DIR] [--profile] [--smoke] [--jobs=N] "
               "[--seed=S] [--engine-shards=S] [--engine-threads=T] "
               "[--topology=NAME] [--faults=SPEC] [--adversary] "
               "[--resume=DIR] [--checkpoint-every=N] "
               "[--validate=PATH] [--throughput-guard=PATH] "
               "[--fuzz=N] [--fuzz-seed=S] [--fuzz-case=SPEC]\n",
               argv0);
  return 2;
}

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mr;

  bool list = false;
  std::size_t fuzz_cases = 0;
  std::uint64_t fuzz_seed = 1;
  std::string fuzz_case_spec;
  std::vector<std::string> selection;
  std::string json_dir;
  ScenarioOptions options;
  options.scale = scale_from_env();

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--list") {
      list = true;
    } else if (arg == "--run") {
      if (i + 1 >= argc) return usage(argv[0]);
      selection.push_back(argv[++i]);
    } else if (arg.rfind("--run=", 0) == 0) {
      selection.push_back(arg.substr(6));
    } else if (arg.rfind("--json=", 0) == 0) {
      json_dir = arg.substr(7);
    } else if (arg.rfind("--telemetry=", 0) == 0) {
      options.telemetry_dir = arg.substr(12);
    } else if (arg == "--profile") {
      options.profile = true;
    } else if (arg.rfind("--throughput-guard=", 0) == 0) {
      return engine_bench::throughput_guard(arg.substr(19));
    } else if (arg.rfind("--fuzz=", 0) == 0) {
      fuzz_cases = static_cast<std::size_t>(
          std::strtoul(arg.substr(7).c_str(), nullptr, 10));
      if (fuzz_cases == 0) return usage(argv[0]);
    } else if (arg.rfind("--fuzz-seed=", 0) == 0) {
      fuzz_seed = std::strtoull(arg.substr(12).c_str(), nullptr, 10);
    } else if (arg.rfind("--fuzz-case=", 0) == 0) {
      fuzz_case_spec = arg.substr(12);
    } else if (arg == "--smoke") {
      options.scale = Scale::Small;
    } else if (arg.rfind("--seed=", 0) == 0) {
      options.seed = std::strtoull(arg.substr(7).c_str(), nullptr, 10);
      if (options.seed == 0) return usage(argv[0]);
    } else if (arg.rfind("--jobs=", 0) == 0) {
      options.jobs = static_cast<std::size_t>(
          std::strtoul(arg.substr(7).c_str(), nullptr, 10));
    } else if (arg.rfind("--engine-shards=", 0) == 0) {
      options.engine_shards =
          static_cast<int>(std::strtol(arg.substr(16).c_str(), nullptr, 10));
      if (options.engine_shards < 1) return usage(argv[0]);
    } else if (arg.rfind("--engine-threads=", 0) == 0) {
      options.engine_threads =
          static_cast<int>(std::strtol(arg.substr(17).c_str(), nullptr, 10));
      if (options.engine_threads < 1) return usage(argv[0]);
    } else if (arg.rfind("--resume=", 0) == 0) {
      options.checkpoint_dir = arg.substr(9);
      if (options.checkpoint_dir.empty()) return usage(argv[0]);
    } else if (arg.rfind("--checkpoint-every=", 0) == 0) {
      options.checkpoint_every =
          static_cast<mr::Step>(std::strtol(arg.substr(19).c_str(), nullptr, 10));
      if (options.checkpoint_every < 1) return usage(argv[0]);
    } else if (arg.rfind("--topology=", 0) == 0) {
      options.topology = arg.substr(11);
      if (!known_topology(options.topology)) {
        std::fprintf(stderr,
                     "error: unknown topology '%s' (try --list)\n",
                     options.topology.c_str());
        return 2;
      }
    } else if (arg.rfind("--faults=", 0) == 0) {
      std::string error;
      if (!parse_fault_schedule(arg.substr(9), &options.faults, &error)) {
        std::fprintf(stderr, "error: malformed --faults schedule: %s\n",
                     error.c_str());
        return 2;
      }
    } else if (arg == "--adversary") {
      options.adversary = true;
    } else if (arg.rfind("--validate=", 0) == 0) {
      const std::string path = arg.substr(11);
      std::string error;
      const bool ok = ends_with(path, ".jsonl")
                          ? validate_telemetry_jsonl(path, &error)
                          : validate_scenario_json(path, &error);
      if (!ok) {
        std::fprintf(stderr, "validate: %s: %s\n", path.c_str(),
                     error.c_str());
        return 1;
      }
      std::printf("validate: %s ok\n", path.c_str());
      return 0;
    } else {
      return usage(argv[0]);
    }
  }

  if (!fuzz_case_spec.empty()) {
    FuzzCase fuzz_case;
    std::string error;
    if (!parse_fuzz_case(fuzz_case_spec, &fuzz_case, &error)) {
      std::fprintf(stderr, "fuzz-case: malformed spec: %s\n", error.c_str());
      return 2;
    }
    error = run_fuzz_case(fuzz_case);
    if (!error.empty()) {
      std::fprintf(stderr, "fuzz-case FAIL: %s\n", error.c_str());
      return 1;
    }
    std::printf("fuzz-case ok\n");
    return 0;
  }

  if (fuzz_cases > 0) {
    const FuzzReport report = run_fuzz(fuzz_cases, fuzz_seed, std::cerr);
    if (report.failures > 0) {
      std::fprintf(stderr, "fuzz: FAIL after %zu case(s): %s\n",
                   report.cases_run, report.first_error.c_str());
      std::fprintf(stderr, "fuzz: repro: --fuzz-case=\"%s\"\n",
                   report.first_repro.c_str());
      std::ofstream repro("fuzz-repro.txt");
      repro << report.first_repro << "\n";
      return 1;
    }
    std::printf("fuzz: %zu case(s) ok (seed %llu)\n", report.cases_run,
                static_cast<unsigned long long>(fuzz_seed));
    return 0;
  }

  const ScenarioRegistry& registry = scenarios::builtin();

  if (list) {
    std::printf("scenarios:\n");
    for (const ScenarioSpec* spec : registry.all())
      std::printf("  %-4s %-26s %s\n", spec->id.c_str(), spec->label.c_str(),
                  spec->title.c_str());
    std::printf("\nalgorithms:\n");
    for (const AlgorithmInfo& info : algorithm_catalog())
      std::printf("  %-24s [%-10s] %s\n", info.name.c_str(),
                  info.layout == QueueLayout::PerInlink ? "per-inlink"
                                                        : "central",
                  info.description.c_str());
    std::printf("\ntopologies:\n");
    for (const TopologyInfo& info : topology_catalog())
      std::printf("  %-24s [%-10s] %s\n", info.name.c_str(),
                  info.wraps ? "wrapping" : "flat", info.description.c_str());
    std::printf("\nworkloads:\n");
    for (const WorkloadInfo& info : workload_catalog())
      std::printf("  %-24s [%-9s] %s%s%s%s\n", info.name.c_str(),
                  info.kind.c_str(), info.description.c_str(),
                  info.params.empty() ? "" : " (",
                  info.params.c_str(), info.params.empty() ? "" : ")");
    return 0;
  }

  std::vector<const ScenarioSpec*> specs;
  if (selection.empty()) {
    specs = registry.all();
  } else {
    for (const std::string& want : selection) {
      const ScenarioSpec* spec = registry.find(want);
      if (spec == nullptr) {
        std::fprintf(stderr, "error: no scenario named '%s' (try --list)\n",
                     want.c_str());
        return 2;
      }
      specs.push_back(spec);
    }
  }

  const std::vector<ScenarioResult> results = run_scenarios(specs, options);

  bool ok = true;
  for (std::size_t i = 0; i < results.size(); ++i) {
    const ScenarioResult& r = results[i];
    if (i > 0) std::printf("\n");
    std::fputs(r.to_markdown().c_str(), stdout);
    if (r.errored) {
      std::printf("[check] %s ERROR: %s\n", r.id.c_str(), r.error.c_str());
    }
    for (const ScenarioCheck& c : r.checks) {
      std::printf("[check] %s %s: %s%s%s\n", r.id.c_str(), c.name.c_str(),
                  c.pass ? "pass" : "FAIL", c.detail.empty() ? "" : " — ",
                  c.detail.c_str());
    }
    ok = ok && r.passed();
    std::size_t fallbacks = 0;
    for (const ScenarioRunRecord& rec : r.runs)
      if (rec.run.engine_mode == EngineMode::SequentialFallback) ++fallbacks;
    if (fallbacks > 0)
      std::fprintf(stderr,
                   "notice: %s: %zu run(s) used the sequential engine despite "
                   "--engine-shards/--engine-threads (step interceptors are "
                   "sequential-only)\n",
                   r.id.c_str(), fallbacks);
    for (const ScenarioRunRecord& rec : r.runs) {
      if (rec.run.telemetry_path.empty()) continue;
      std::string error;
      if (!validate_telemetry_jsonl(rec.run.telemetry_path, &error)) {
        std::fprintf(stderr, "error: telemetry %s fails validation: %s\n",
                     rec.run.telemetry_path.c_str(), error.c_str());
        ok = false;
      }
    }
    if (!json_dir.empty()) {
      const std::string path = write_scenario_json(r, json_dir);
      if (path.empty()) {
        std::fprintf(stderr, "error: cannot write JSON for %s under %s\n",
                     r.id.c_str(), json_dir.c_str());
        ok = false;
        continue;
      }
      std::string error;
      if (!validate_scenario_json(path, &error)) {
        std::fprintf(stderr, "error: %s fails schema validation: %s\n",
                     path.c_str(), error.c_str());
        ok = false;
      }
    }
  }
  std::fflush(stdout);
  return ok ? 0 : 1;
}
