#include "routing/west_first.hpp"

namespace mr {

namespace {

// Node state layout: two bits per direction hold a saturating recent-use
// counter for the corresponding outlink (bits [2d, 2d+1]), plus a rotating
// inqueue pointer in bits [8, 9].
int use_count(std::uint64_t state, Dir d) {
  return static_cast<int>((state >> (2 * dir_index(d))) & 0x3u);
}

std::uint64_t bump_use(std::uint64_t state, Dir d) {
  const int c = use_count(state, d);
  if (c >= 3) return state;
  return state + (1ULL << (2 * dir_index(d)));
}

std::uint64_t decay_uses(std::uint64_t state) {
  // Halve every counter each step so the signal tracks recent congestion.
  std::uint64_t out = state & ~0xFFULL;
  for (Dir d : kAllDirs) {
    const std::uint64_t c = (state >> (2 * dir_index(d))) & 0x3u;
    out |= (c >> 1) << (2 * dir_index(d));
  }
  return out;
}

}  // namespace

void WestFirstRouter::dx_plan_out(NodeCtx& ctx,
                                  std::span<const PacketDxView> resident,
                                  OutPlan& plan) {
  for (const PacketDxView& v : resident) {
    if (mask_has(v.profitable, Dir::West)) {
      // West-first: no adaptivity while a west hop is profitable.
      if (plan.scheduled(Dir::West) == kInvalidPacket)
        plan.schedule(Dir::West, v.id);
      continue;
    }
    // Adaptive among N/E/S: least-recently-used outlink first.
    Dir best = Dir::North;
    bool found = false;
    int best_use = 0;
    for (Dir d : {Dir::North, Dir::East, Dir::South}) {
      if (!mask_has(v.profitable, d)) continue;
      if (plan.scheduled(d) != kInvalidPacket) continue;
      const int use = use_count(ctx.state, d);
      if (!found || use < best_use) {
        found = true;
        best = d;
        best_use = use;
      }
    }
    if (found) plan.schedule(best, v.id);
  }
}

void WestFirstRouter::dx_plan_in(NodeCtx& ctx,
                                 std::span<const PacketDxView> resident,
                                 std::span<const DxOffer> offers,
                                 InPlan& plan) {
  int free = ctx.capacity - static_cast<int>(resident.size());
  const int start = static_cast<int>((ctx.state >> 8) & 0x3u);
  for (int r = 0; r < kNumDirs && free > 0; ++r) {
    const Dir want = static_cast<Dir>((start + r) % kNumDirs);
    for (std::size_t i = 0; i < offers.size(); ++i) {
      if (offers[i].travel_dir == want && !plan.accept[i]) {
        plan.accept[i] = true;
        --free;
        break;
      }
    }
  }
}

void WestFirstRouter::dx_update(NodeCtx& ctx,
                                std::span<PacketDxView> resident) {
  std::uint64_t state = decay_uses(ctx.state);
  // Outlinks whose packets left are inferable from the packets that
  // remain/arrived — here we use arrivals as the congestion proxy: a
  // packet that arrived this step came through the opposite outlink of
  // some neighbour; we bump the inlink direction's counter so future
  // adaptive choices spread away from busy corridors.
  for (const PacketDxView& v : resident) {
    if (v.arrived_at == ctx.step && v.arrival_inlink < kNumDirs)
      state = bump_use(state, static_cast<Dir>(v.arrival_inlink));
  }
  // Advance the rotating inqueue pointer.
  const std::uint64_t pointer = ((ctx.state >> 8) + 1) & 0x3u;
  ctx.state = (state & ~(0x3ULL << 8)) | (pointer << 8);
}

}  // namespace mr
