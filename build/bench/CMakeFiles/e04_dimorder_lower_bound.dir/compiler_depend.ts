# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for e04_dimorder_lower_bound.
