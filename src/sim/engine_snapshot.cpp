// Engine::snapshot() / Engine::restore(): extraction and reconstruction
// of the between-steps engine state (sim/snapshot.hpp).
//
// The snapshot stores only primary state: packet records, node state
// words, the injection buffer and the run counters. Everything else the
// engine keeps — the NodeQueues slab, inlink occupancy counters, active
// lists, cached profitable masks, per-band partitions — is derived, and
// restore() rebuilds it from the packet records: packets sorted by
// (location, slot) replayed through the slab reproduce the exact queue
// contents, and since that order is ascending in location, the active
// list comes out sorted for free.
#include "sim/engine.hpp"

#include <algorithm>
#include <string>

namespace mr {
namespace {

[[noreturn]] void format_error(const std::string& what) {
  throw SnapshotError(SnapshotError::Kind::Format, "snapshot: " + what);
}

template <typename T>
void require_match(const char* field, const T& have, const T& want) {
  if (have != want) {
    if constexpr (std::is_same_v<T, std::string>) {
      throw SnapshotError(SnapshotError::Kind::Mismatch,
                          std::string("snapshot ") + field + " mismatch: snapshot has \"" +
                              have + "\", engine has \"" + want + "\"");
    } else {
      throw SnapshotError(SnapshotError::Kind::Mismatch,
                          std::string("snapshot ") + field + " mismatch: snapshot has " +
                              std::to_string(static_cast<long long>(have)) +
                              ", engine has " +
                              std::to_string(static_cast<long long>(want)));
    }
  }
}

}  // namespace

EngineSnapshot Engine::snapshot() const {
  MR_REQUIRE_MSG(prepared_, "snapshot() before prepare()");
  EngineSnapshot s;
  s.meta.topology = topo_->name();
  s.meta.width = topo_width_;
  s.meta.height = topo_height_;
  s.meta.algorithm = algorithm_->name();
  s.meta.queue_capacity = queue_capacity_;
  s.meta.layout = layout_;
  s.meta.shards = num_shards_;
  s.meta.step = step_;

  s.packets = packets_;
  s.node_state = node_state_;
  s.injections = injections_;
  s.injection_cursor = injection_cursor_;
  if (num_shards_ > 1) {
    // The global waiting list was partitioned into per-band lists by
    // distribute_to_shards(); concatenate and re-sort by id — each band
    // list is id-sorted (built by id-ordered injection), so the sort only
    // undoes the partition and restore's re-partition reproduces the band
    // lists exactly.
    for (const Shard& sh : shards_)
      s.waiting_injections.insert(s.waiting_injections.end(), sh.waiting.begin(),
                                  sh.waiting.end());
    std::sort(s.waiting_injections.begin(), s.waiting_injections.end());
  } else {
    s.waiting_injections = waiting_injections_;
  }

  s.delivered_count = delivered_count_;
  s.stalled = stalled_;
  s.exchange_count = exchange_count_;
  s.max_occupancy_seen = max_occupancy_seen_;
  s.total_moves = total_moves_;
  s.stall_run = stall_run_;
  return s;
}

void Engine::restore(const EngineSnapshot& snap) {
  // --- identity validation (throws Mismatch, engine untouched) ----------
  require_match("topology", snap.meta.topology, topo_->name());
  require_match("width", snap.meta.width, topo_width_);
  require_match("height", snap.meta.height, topo_height_);
  require_match("algorithm", snap.meta.algorithm, algorithm_->name());
  require_match("k", snap.meta.queue_capacity, queue_capacity_);
  require_match("layout", static_cast<int>(snap.meta.layout),
                static_cast<int>(layout_));
  require_match("shards", snap.meta.shards, num_shards_);

  // --- internal consistency (throws Format, engine untouched) -----------
  const auto n = static_cast<std::size_t>(num_nodes_);
  if (snap.node_state.size() != n)
    format_error("node_state has " + std::to_string(snap.node_state.size()) +
                 " entries for a " + std::to_string(n) + "-node topology");
  const auto num_pk = snap.packets.size();
  std::size_t queued_count = 0;
  std::size_t delivered = 0;
  for (std::size_t i = 0; i < num_pk; ++i) {
    const Packet& pk = snap.packets[i];
    if (static_cast<std::size_t>(pk.id) != i) format_error("packet id/index mismatch");
    if (pk.source < 0 || pk.source >= num_nodes_ || pk.dest < 0 ||
        pk.dest >= num_nodes_)
      format_error("packet endpoint out of range");
    if (pk.delivered()) {
      ++delivered;
      continue;
    }
    if (pk.slot < 0) continue;  // due later, or waiting outside the network
    ++queued_count;
    if (pk.location < 0 || pk.location >= num_nodes_)
      format_error("queued packet location out of range");
    const bool tag_ok = layout_ == QueueLayout::Central
                            ? pk.queue == kCentralQueue
                            : pk.queue < kNumDirs;
    if (!tag_ok) format_error("packet queue tag does not fit the layout");
  }
  if (snap.delivered_count != delivered)
    format_error("delivered_count disagrees with the packet records");
  if (snap.injection_cursor > snap.injections.size())
    format_error("injection cursor past the end of the injection buffer");
  for (const auto& [step, id] : snap.injections)
    if (id < 0 || static_cast<std::size_t>(id) >= num_pk)
      format_error("injection references unknown packet");
  for (PacketId id : snap.waiting_injections) {
    if (id < 0 || static_cast<std::size_t>(id) >= num_pk)
      format_error("waiting list references unknown packet");
    const Packet& pk = snap.packets[static_cast<std::size_t>(id)];
    if (pk.delivered() || pk.slot >= 0)
      format_error("waiting packet is already in the network");
  }

  // --- adopt primary state ----------------------------------------------
  packets_ = snap.packets;
  node_state_ = snap.node_state;
  injections_ = snap.injections;
  injection_cursor_ = static_cast<std::size_t>(snap.injection_cursor);
  waiting_injections_ = snap.waiting_injections;
  step_ = snap.meta.step;
  delivered_count_ = static_cast<std::size_t>(snap.delivered_count);
  stalled_ = snap.stalled;
  exchange_count_ = static_cast<std::size_t>(snap.exchange_count);
  max_occupancy_seen_ = snap.max_occupancy_seen;
  total_moves_ = snap.total_moves;
  stall_run_ = snap.stall_run;
  injected_this_step_ = 0;
  injected_deliveries_.clear();

  // --- rebuild derived state --------------------------------------------
  node_packets_.reset(n, node_packets_.stride());
  if (layout_ == QueueLayout::PerInlink) inlink_occ_.assign(n * kNumDirs, 0);
  is_active_.assign(n, 0);
  active_.clear();

  // Replaying the queued packets in (location, slot) order through the
  // slab reproduces every queue in arrival order; push_back returning a
  // different slot than the record carries means the slot sequence of some
  // node has a gap or duplicate.
  std::vector<PacketId> queued;
  queued.reserve(queued_count);
  for (const Packet& pk : packets_)
    if (!pk.delivered() && pk.slot >= 0) queued.push_back(pk.id);
  std::sort(queued.begin(), queued.end(), [this](PacketId a, PacketId b) {
    const Packet& pa = packets_[a];
    const Packet& pb = packets_[b];
    if (pa.location != pb.location) return pa.location < pb.location;
    return pa.slot < pb.slot;
  });
  for (PacketId p : queued) {
    Packet& pk = packets_[p];
    const int used = layout_ == QueueLayout::Central
                         ? static_cast<int>(node_packets_.size(pk.location))
                         : static_cast<int>(
                               inlink_occ_[inlink_index(pk.location, pk.queue)]);
    if (used >= queue_capacity_) format_error("queue over capacity in snapshot");
    const std::int32_t slot = node_packets_.push_back(pk.location, p);
    if (slot != pk.slot) format_error("queue slot sequence corrupt");
    pk.profitable = topo_->profitable_dirs(pk.location, pk.dest);
    if (layout_ == QueueLayout::PerInlink)
      ++inlink_occ_[inlink_index(pk.location, pk.queue)];
    if (!is_active_[pk.location]) {
      is_active_[pk.location] = 1;
      active_.push_back(pk.location);
    }
  }
  active_sorted_ = active_.size();  // queued was location-ordered
  packet_scheduled_.assign(packets_.size(), 0);

  // Fault availability is derived state: snapshots carry no fault fields,
  // the installed schedule is simply re-applied for the restored step.
  fault_epoch_ = -1;
  fault_blocked_this_step_ = 0;
  fault_deferred_this_step_ = 0;
  apply_faults(step_);

  prepared_ = true;
  if (num_shards_ > 1) distribute_to_shards();
  active_cache_valid_ = true;
}

}  // namespace mr
