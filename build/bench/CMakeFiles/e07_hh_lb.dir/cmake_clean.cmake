file(REMOVE_RECURSE
  "CMakeFiles/e07_hh_lb.dir/e07_hh_lb.cpp.o"
  "CMakeFiles/e07_hh_lb.dir/e07_hh_lb.cpp.o.d"
  "e07_hh_lb"
  "e07_hh_lb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e07_hh_lb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
