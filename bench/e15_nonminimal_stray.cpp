// E15 — §5 "Nonminimal extensions": destination-exchangeable routers that
// may stray up to δ nodes beyond the shortest-path rectangle are bounded
// by Ω(n²/((δ+1)³k²)) — extra freedom weakens the adversary polynomially
// in δ but cannot defeat it.
//
// The full δ-adapted exchange construction is out of scope (the paper only
// sketches it); this experiment measures the weakening empirically: the
// δ = 0 Theorem 14 permutation is routed by StrayRouter(δ) for growing δ.
// The certified bound applies verbatim at δ = 0; for δ > 0 the measured
// times show how much (or little) nonminimal freedom buys on the same
// congestion pattern, and the engine enforces the rectangle+δ containment
// throughout.
#include "harness/runner.hpp"
#include "lower_bound/factory.hpp"
#include "scenarios.hpp"

namespace mr::scenarios {

void register_e15(ScenarioRegistry& registry) {
  ScenarioSpec spec;
  spec.id = "E15";
  spec.label = "nonminimal-stray";
  spec.title =
      "nonminimal (delta-stray) routing on the adversarial permutation";
  spec.paper_ref = "§5 'Nonminimal extensions'";
  spec.body = [](ScenarioReport& ctx) {
    const int n = ctx.scale() == Scale::Small ? 60 : 120;
    const int k = 1;

    // Adversarial permutation against the δ = 0 stray router (which is
    // exactly a greedy DX minimal router), via the construction factory.
    const AdversarialInstance adv =
        adversarial_instance("main", n, k, "stray-0");

    Table table({"delta", "router", "steps on adversarial", "delivered",
                 "vs delta=0", "certified LB (delta=0)"});
    double base_steps = 0;
    bool all_delivered = true;
    bool certificate_holds = true;
    for (const int delta : {0, 1, 2, 4, 8}) {
      RunSpec spec;
      spec.width = spec.height = n;
      spec.queue_capacity = k;
      spec.algorithm = "stray-" + std::to_string(delta);
      spec.max_steps = 400000;
      spec.stall_limit = 20000;
      const RunResult r = ctx.run(spec.algorithm, spec, adv.permutation);
      if (delta == 0) {
        base_steps = double(r.steps);
        certificate_holds = r.steps >= adv.certified_steps;
      }
      all_delivered = all_delivered && r.all_delivered;
      table.row()
          .add(delta)
          .add(spec.algorithm)
          .add(r.steps)
          .add(r.all_delivered ? "yes" : "NO")
          .add(double(r.steps) / base_steps, 3)
          .add(adv.certified_steps);
    }
    ctx.table(table);
    ctx.note(
        "delta=0 is destination-exchangeable minimal adaptive, so Theorem 14 "
        "certifies >= " +
        std::to_string(adv.certified_steps) +
        " steps; the Omega(n^2/((delta+1)^3 k^2)) extension predicts only "
        "polynomial-in-delta relief, which the measured column tracks.");
    ctx.check("all-strays-deliver", all_delivered);
    ctx.check("theorem14-certificate-at-delta-0", certificate_holds);
  };
  registry.add(std::move(spec));
}

}  // namespace mr::scenarios
