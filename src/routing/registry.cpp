#include "routing/registry.hpp"

#include <cstdlib>

#include "core/assert.hpp"
#include "routing/adaptive.hpp"
#include "routing/bounded_dimension_order.hpp"
#include "routing/dimension_order.hpp"
#include "routing/farthest_first.hpp"
#include "routing/stray.hpp"
#include "routing/west_first.hpp"

namespace mr {

std::unique_ptr<Algorithm> make_algorithm(const std::string& name) {
  if (name == "dimension-order")
    return std::make_unique<DimensionOrderRouter>();
  if (name == "adaptive-alternate")
    return std::make_unique<AdaptiveAlternateRouter>();
  if (name == "greedy-match") return std::make_unique<GreedyMatchRouter>();
  if (name == "west-first") return std::make_unique<WestFirstRouter>();
  if (name == "farthest-first") return std::make_unique<FarthestFirstRouter>();
  if (name == "bounded-dimension-order")
    return std::make_unique<BoundedDimensionOrderRouter>();
  if (name.rfind("stray-", 0) == 0) {
    const int delta = std::atoi(name.c_str() + 6);
    MR_REQUIRE_MSG(delta >= 0 && delta <= 64, "bad stray delta in " << name);
    return std::make_unique<StrayRouter>(delta);
  }
  MR_REQUIRE_MSG(false, "unknown algorithm: " << name);
  return nullptr;
}

std::vector<std::string> algorithm_names() {
  return {"dimension-order", "adaptive-alternate", "greedy-match",
          "west-first",      "stray-2",            "farthest-first",
          "bounded-dimension-order"};
}

std::vector<std::string> dx_minimal_algorithm_names() {
  return {"dimension-order", "adaptive-alternate", "greedy-match",
          "west-first"};
}

}  // namespace mr
