#include "sim/snapshot.hpp"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "core/json_min.hpp"

namespace mr {
namespace {

// ---------------------------------------------------------------------------
// Little-endian scalar encode/decode. The payload is byte-defined, not
// struct-defined, so snapshots are portable across compilers/ABIs.

void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
}
void put_i64(std::string& out, std::int64_t v) { put_u64(out, static_cast<std::uint64_t>(v)); }
void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
}
void put_i32(std::string& out, std::int32_t v) { put_u32(out, static_cast<std::uint32_t>(v)); }
void put_u8(std::string& out, std::uint8_t v) { out.push_back(static_cast<char>(v)); }

/// Bounds-checked payload reader; any overrun is a Format error.
class Reader {
 public:
  explicit Reader(std::string_view bytes) : bytes_(bytes) {}

  std::uint64_t u64() {
    need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
      v |= static_cast<std::uint64_t>(static_cast<unsigned char>(bytes_[pos_ + i])) << (8 * i);
    pos_ += 8;
    return v;
  }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  std::uint32_t u32() {
    need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
      v |= static_cast<std::uint32_t>(static_cast<unsigned char>(bytes_[pos_ + i])) << (8 * i);
    pos_ += 4;
    return v;
  }
  std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
  std::uint8_t u8() {
    need(1);
    return static_cast<std::uint8_t>(bytes_[pos_++]);
  }
  bool exhausted() const { return pos_ == bytes_.size(); }

 private:
  void need(std::size_t n) {
    if (bytes_.size() - pos_ < n)
      throw SnapshotError(SnapshotError::Kind::Format, "snapshot payload truncated");
  }
  std::string_view bytes_;
  std::size_t pos_ = 0;
};

std::uint64_t fnv1a(std::string_view bytes) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::string hex_u64(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx", static_cast<unsigned long long>(v));
  return buf;
}

const char* layout_name(QueueLayout layout) {
  return layout == QueueLayout::Central ? "central" : "per-inlink";
}

[[noreturn]] void format_error(const std::string& what) {
  throw SnapshotError(SnapshotError::Kind::Format, "snapshot: " + what);
}

// Header field accessors; every miss is a Format error so a hand-edited or
// truncated header fails loudly instead of defaulting.
const json::Value& field(const json::Value& obj, const char* key) {
  const json::Value* v = obj.find(key);
  if (!v) format_error(std::string("header missing field \"") + key + "\"");
  return *v;
}
std::string str_field(const json::Value& obj, const char* key) {
  const json::Value& v = field(obj, key);
  if (!v.is_string()) format_error(std::string("header field \"") + key + "\" must be a string");
  return v.string;
}
std::int64_t int_field(const json::Value& obj, const char* key) {
  const json::Value& v = field(obj, key);
  if (!v.is_number()) format_error(std::string("header field \"") + key + "\" must be a number");
  return static_cast<std::int64_t>(v.number);
}

std::string payload_bytes(const EngineSnapshot& snap) {
  std::string p;
  p.reserve(snap.packets.size() * 48 + snap.node_state.size() * 8 +
            snap.injections.size() * 12 + snap.waiting_injections.size() * 4 + 64);
  for (const Packet& pk : snap.packets) {
    put_i32(p, pk.id);
    put_i32(p, pk.source);
    put_i32(p, pk.dest);
    put_i32(p, pk.location);
    put_u64(p, pk.state);
    put_u8(p, pk.queue);
    put_i32(p, pk.slot);
    put_u8(p, pk.arrival_inlink);
    put_i64(p, pk.injected_at);
    put_i64(p, pk.arrived_at);
    put_i64(p, pk.delivered_at);
  }
  for (std::uint64_t s : snap.node_state) put_u64(p, s);
  for (const auto& [step, id] : snap.injections) {
    put_i64(p, step);
    put_i32(p, id);
  }
  for (PacketId id : snap.waiting_injections) put_i32(p, id);
  put_u64(p, snap.injection_cursor);
  put_u64(p, snap.delivered_count);
  put_u8(p, snap.stalled ? 1 : 0);
  put_u64(p, snap.exchange_count);
  put_i32(p, snap.max_occupancy_seen);
  put_i64(p, snap.total_moves);
  put_i64(p, snap.stall_run);
  return p;
}

}  // namespace

std::string serialize_snapshot(const EngineSnapshot& snap) {
  const std::string payload = payload_bytes(snap);

  std::ostringstream h;
  h << "{\"topology\":\"" << json::escape(snap.meta.topology) << "\""
    << ",\"width\":" << snap.meta.width << ",\"height\":" << snap.meta.height
    << ",\"algorithm\":\"" << json::escape(snap.meta.algorithm) << "\""
    << ",\"k\":" << snap.meta.queue_capacity
    << ",\"layout\":\"" << layout_name(snap.meta.layout) << "\""
    << ",\"shards\":" << snap.meta.shards << ",\"step\":" << snap.meta.step
    << ",\"packets\":" << snap.packets.size()
    << ",\"nodes\":" << snap.node_state.size()
    << ",\"injections\":" << snap.injections.size()
    << ",\"waiting\":" << snap.waiting_injections.size()
    << ",\"payload_bytes\":" << payload.size()
    << ",\"checksum\":\"" << hex_u64(fnv1a(payload)) << "\"";
  h << ",\"aux\":{";
  bool first = true;
  for (const auto& [key, blob] : snap.aux) {
    if (!first) h << ",";
    first = false;
    h << "\"" << json::escape(key) << "\":\"" << json::escape(blob) << "\"";
  }
  h << "}}";

  std::string out = kSnapshotMagic;
  out += "\n";
  out += h.str();
  out += "\n";
  out += payload;
  return out;
}

EngineSnapshot parse_snapshot(std::string_view bytes) {
  const std::size_t magic_end = bytes.find('\n');
  if (magic_end == std::string_view::npos || bytes.substr(0, magic_end) != kSnapshotMagic)
    format_error(std::string("bad magic, expected \"") + kSnapshotMagic + "\"");

  const std::size_t header_end = bytes.find('\n', magic_end + 1);
  if (header_end == std::string_view::npos) format_error("missing header line");
  const std::string header_text(bytes.substr(magic_end + 1, header_end - magic_end - 1));

  std::string err;
  std::optional<json::Value> header = json::parse(header_text, &err);
  if (!header || !header->is_object()) format_error("header is not a JSON object: " + err);

  EngineSnapshot snap;
  snap.meta.topology = str_field(*header, "topology");
  snap.meta.width = static_cast<std::int32_t>(int_field(*header, "width"));
  snap.meta.height = static_cast<std::int32_t>(int_field(*header, "height"));
  snap.meta.algorithm = str_field(*header, "algorithm");
  snap.meta.queue_capacity = static_cast<int>(int_field(*header, "k"));
  const std::string layout = str_field(*header, "layout");
  if (layout == "central") {
    snap.meta.layout = QueueLayout::Central;
  } else if (layout == "per-inlink") {
    snap.meta.layout = QueueLayout::PerInlink;
  } else {
    format_error("unknown layout \"" + layout + "\"");
  }
  snap.meta.shards = static_cast<int>(int_field(*header, "shards"));
  snap.meta.step = int_field(*header, "step");

  const std::int64_t n_packets = int_field(*header, "packets");
  const std::int64_t n_nodes = int_field(*header, "nodes");
  const std::int64_t n_injections = int_field(*header, "injections");
  const std::int64_t n_waiting = int_field(*header, "waiting");
  const std::int64_t n_payload = int_field(*header, "payload_bytes");
  if (n_packets < 0 || n_nodes < 0 || n_injections < 0 || n_waiting < 0 || n_payload < 0)
    format_error("negative element count in header");

  const json::Value& aux = field(*header, "aux");
  if (!aux.is_object()) format_error("header field \"aux\" must be an object");
  for (const auto& [key, value] : aux.object) {
    if (!value.is_string()) format_error("aux entry \"" + key + "\" must be a string");
    snap.aux.emplace_back(key, value.string);
  }

  const std::string_view payload = bytes.substr(header_end + 1);
  if (payload.size() != static_cast<std::size_t>(n_payload))
    format_error("payload size mismatch (header says " + std::to_string(n_payload) +
                 " bytes, file has " + std::to_string(payload.size()) + ")");
  const std::string checksum = str_field(*header, "checksum");
  if (checksum != hex_u64(fnv1a(payload))) format_error("payload checksum mismatch");

  Reader r(payload);
  snap.packets.resize(static_cast<std::size_t>(n_packets));
  for (Packet& pk : snap.packets) {
    pk.id = r.i32();
    pk.source = r.i32();
    pk.dest = r.i32();
    pk.location = r.i32();
    pk.state = r.u64();
    pk.queue = r.u8();
    pk.slot = r.i32();
    pk.arrival_inlink = r.u8();
    pk.injected_at = r.i64();
    pk.arrived_at = r.i64();
    pk.delivered_at = r.i64();
    pk.profitable = 0;  // derived; Engine::restore recomputes
  }
  snap.node_state.resize(static_cast<std::size_t>(n_nodes));
  for (std::uint64_t& s : snap.node_state) s = r.u64();
  snap.injections.resize(static_cast<std::size_t>(n_injections));
  for (auto& [step, id] : snap.injections) {
    step = r.i64();
    id = r.i32();
  }
  snap.waiting_injections.resize(static_cast<std::size_t>(n_waiting));
  for (PacketId& id : snap.waiting_injections) id = r.i32();
  snap.injection_cursor = r.u64();
  snap.delivered_count = r.u64();
  snap.stalled = r.u8() != 0;
  snap.exchange_count = r.u64();
  snap.max_occupancy_seen = r.i32();
  snap.total_moves = r.i64();
  snap.stall_run = r.i64();
  if (!r.exhausted()) format_error("trailing bytes after payload");
  return snap;
}

void write_snapshot_file(const std::string& path, const EngineSnapshot& snap) {
  write_text_file_atomic(path, serialize_snapshot(snap));
}

EngineSnapshot read_snapshot_file(const std::string& path) {
  std::string bytes;
  if (!read_text_file(path, &bytes))
    throw SnapshotError(SnapshotError::Kind::Io, "cannot read snapshot file: " + path);
  return parse_snapshot(bytes);
}

bool read_text_file(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  if (in.bad()) return false;
  *out = buf.str();
  return true;
}

void write_text_file_atomic(const std::string& path, const std::string& content) {
  namespace fs = std::filesystem;
  std::error_code ec;
  const fs::path target(path);
  if (target.has_parent_path()) {
    fs::create_directories(target.parent_path(), ec);
    if (ec)
      throw SnapshotError(SnapshotError::Kind::Io,
                          "cannot create directory " + target.parent_path().string() +
                              ": " + ec.message());
  }
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) throw SnapshotError(SnapshotError::Kind::Io, "cannot open for write: " + tmp);
    out.write(content.data(), static_cast<std::streamsize>(content.size()));
    out.flush();
    if (!out) throw SnapshotError(SnapshotError::Kind::Io, "short write: " + tmp);
  }
  fs::rename(tmp, path, ec);
  if (ec) {
    fs::remove(tmp, ec);
    throw SnapshotError(SnapshotError::Kind::Io, "cannot rename into place: " + path);
  }
}

}  // namespace mr
