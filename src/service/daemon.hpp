// meshrouted — a serving daemon for routing jobs.
//
// Accepts length-prefixed JSON requests (service/protocol.hpp) over a
// unix-domain socket, runs submitted jobs concurrently on a WorkerPool,
// and streams each job's meshroute-telemetry/1 JSONL back to the
// submitting connection followed by a meshroute-run/1 result frame.
//
// Thread structure:
//   - accept thread: poll()s the listening socket with a 200 ms timeout so
//     stop() is observed promptly; spawns one reader thread per connection.
//   - reader threads: block on read_frame, enqueue submitted jobs, answer
//     ping/shutdown inline.
//   - driver thread: a single long-lived WorkerPool::run(lanes, ...) call
//     where every lane loops popping jobs from the queue until it closes —
//     the pool's lanes ARE the job concurrency.
// Responses to one connection are serialised by a per-connection write
// mutex; concurrent jobs interleave at frame granularity.
//
// Jobs whose connection has gone away still run to completion (their
// frames are dropped) — a job is work, not a session.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/worker_pool.hpp"
#include "service/job.hpp"

namespace mr {

struct DaemonOptions {
  std::string socket_path;  ///< unix-domain socket to serve on (required)
  /// Concurrent job lanes (WorkerPool size). Each lane runs one job at a
  /// time; submissions beyond `lanes` queue.
  std::size_t lanes = 2;
  /// Scratch directory for telemetry artefacts; empty derives
  /// "<socket_path>.work".
  std::string work_dir;
};

class Daemon {
 public:
  explicit Daemon(DaemonOptions options);
  ~Daemon();

  Daemon(const Daemon&) = delete;
  Daemon& operator=(const Daemon&) = delete;

  /// Binds the socket and starts the serving threads. Returns false with
  /// *error when the socket cannot be created.
  bool start(std::string* error);

  /// Initiates shutdown: stops accepting, closes the job queue, wakes all
  /// threads. Idempotent; safe from signal-driven contexts via a watcher
  /// thread (not async-signal-safe itself).
  void stop();

  /// Blocks until every thread has exited (after stop(), or a client
  /// shutdown request). start() must have succeeded.
  void wait();

  const std::string& socket_path() const { return options_.socket_path; }
  const std::string& work_dir() const { return options_.work_dir; }
  /// Jobs fully executed (result or error frame sent). For tests.
  std::uint64_t jobs_completed() const { return jobs_completed_.load(); }

 private:
  /// One client connection, shared by its reader thread and any lanes still
  /// streaming frames for its jobs.
  struct Connection {
    int fd = -1;
    std::mutex write_mutex;
    std::atomic<bool> open{true};
  };

  struct QueuedJob {
    std::uint64_t id = 0;
    JobSpec spec;
    std::shared_ptr<Connection> conn;
  };

  void accept_loop();
  void reader_loop(std::shared_ptr<Connection> conn);
  void drive_lanes();
  void run_job(const QueuedJob& job);
  /// Frames `payload` to the job's connection if it is still open; errors
  /// mark the connection closed rather than failing the job.
  void send_to(const std::shared_ptr<Connection>& conn,
               const std::string& payload);
  void handle_request(const std::shared_ptr<Connection>& conn,
                      const std::string& payload);

  DaemonOptions options_;
  int listen_fd_ = -1;
  std::atomic<bool> stopping_{false};
  std::atomic<std::uint64_t> next_job_id_{1};
  std::atomic<std::uint64_t> jobs_completed_{0};

  // Job queue: pushed by reader threads, popped by pool lanes. closed_
  // makes pops return nothing once drained.
  std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  std::deque<QueuedJob> queue_;
  bool queue_closed_ = false;

  std::mutex readers_mutex_;
  std::vector<std::thread> readers_;
  std::vector<std::shared_ptr<Connection>> connections_;

  std::unique_ptr<WorkerPool> pool_;
  std::thread accept_thread_;
  std::thread driver_thread_;
};

}  // namespace mr
