// Routing-algorithm interface for the discrete-step engine (paper §2).
//
// One step of the engine runs, for every node, the pipeline of §3:
//   (a) plan_out  — outqueue policy schedules ≤1 packet per outlink
//   (b) adversary — optional interceptor may exchange destination addresses
//   (c) plan_in   — inqueue policy accepts/rejects scheduled packets
//   (d) transmit  — accepted packets move; arrivals at destination deliver
//   (e) update    — node and packet states update
//
// Algorithm implementations receive the Sim for queries. Full-information
// algorithms (farthest-first, §6) may inspect destinations; destination-
// exchangeable algorithms must derive from DxAlgorithm (dx.hpp), whose
// callbacks expose only the §2-legal fields.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/types.hpp"
#include "sim/packet.hpp"

namespace mr {

class Sim;

/// Outqueue decision for one node: packet scheduled on each outlink.
struct OutPlan {
  std::array<PacketId, kNumDirs> out{kInvalidPacket, kInvalidPacket,
                                     kInvalidPacket, kInvalidPacket};

  void schedule(Dir d, PacketId p) { out[dir_index(d)] = p; }
  PacketId scheduled(Dir d) const { return out[dir_index(d)]; }
  void clear() { out.fill(kInvalidPacket); }
};

/// A packet scheduled to enter node `to` from node `from` travelling in
/// direction `dir` (so it arrives on inlink opposite(dir)).
struct Offer {
  PacketId packet = kInvalidPacket;
  NodeId from = kInvalidNode;
  NodeId to = kInvalidNode;
  Dir dir = Dir::North;
  /// Profitable outlinks measured from the *sending* node, as §2 prescribes
  /// for scheduled packets.
  DirMask profitable_from_sender = 0;
};

/// Inqueue decision: accept[i] answers offers[i].
struct InPlan {
  std::vector<bool> accept;
  void reset(std::size_t n) { accept.assign(n, false); }
};

class Algorithm {
 public:
  virtual ~Algorithm() = default;

  virtual std::string name() const = 0;

  virtual QueueLayout queue_layout() const { return QueueLayout::Central; }

  /// Minimal algorithms may only schedule packets along profitable
  /// outlinks; the engine enforces this (throws InvariantViolation).
  virtual bool minimal() const { return true; }

  /// For non-minimal algorithms (§5 "Nonminimal extensions"): the maximum
  /// number of nodes a packet may stray beyond the rectangle spanned by
  /// the shortest source→destination paths. The engine enforces the
  /// expanded-rectangle containment. Negative = unrestricted (hot-potato
  /// style). Ignored when minimal() is true.
  virtual int max_stray() const { return -1; }

  /// Called once before step 1, after initial packets are placed. The
  /// initial states set here may, for DX algorithms, depend only on the
  /// §2-legal fields.
  virtual void init(Sim&) {}

  /// (a) Outqueue policy of node u. `plan` arrives cleared.
  virtual void plan_out(Sim& e, NodeId u, OutPlan& plan) = 0;

  /// (c) Inqueue policy of node v. Offers arrive in deterministic order
  /// (by travel direction). The engine verifies post-step occupancy.
  /// Offers whose packet is arriving at its destination are delivered by
  /// the engine directly and never shown to the policy.
  virtual void plan_in(Sim& e, NodeId v, std::span<const Offer> offers,
                       InPlan& plan) = 0;

  /// (e) State update for node v (called for every node that held, sent or
  /// received a packet this step). Default: no state.
  virtual void update_state(Sim&, NodeId) {}
};

/// A move that will happen in phase (d) unless rejected in (c).
struct ScheduledMove {
  PacketId packet = kInvalidPacket;
  NodeId from = kInvalidNode;
  NodeId to = kInvalidNode;
  Dir dir = Dir::North;
};

/// Hook between phases (a) and (c): the lower-bound constructions exchange
/// destination addresses here (paper §3 step (b)).
class StepInterceptor {
 public:
  virtual ~StepInterceptor() = default;
  virtual void after_schedule(Sim& e,
                              std::span<const ScheduledMove> moves) = 0;
};

/// One transmission executed in phase (d): `packet` travelled from → to in
/// direction `dir`. `delivered` is true iff `to` was the packet's
/// destination, in which case the engine removed it from the network.
struct MoveRecord {
  PacketId packet = kInvalidPacket;
  NodeId from = kInvalidNode;
  NodeId to = kInvalidNode;
  Dir dir = Dir::North;
  bool delivered = false;
};

/// Everything observable about one executed step, delivered to observers
/// in a single callback after the step completes (so observation costs one
/// virtual call per step, not one per move). Spans point into engine
/// scratch and are valid only for the duration of the callback.
struct StepDigest {
  Step step = 0;  ///< step number; 0 for the prepare() digest

  /// Phase (d) transmissions in engine order: delivering hops first, then
  /// accepted hops, each group ascending by receiving node / travel
  /// direction. Empty in the prepare() digest.
  std::span<const MoveRecord> moves;

  /// Packets with source == dest that the injection phase of this step
  /// delivered without ever entering the network, ascending by PacketId.
  std::span<const PacketId> injected_deliveries;

  // Ready-made counters (all derivable from the spans; precomputed so
  // cheap consumers never touch the records).
  std::int64_t deliveries = 0;  ///< total deliveries incl. injected ones
  std::int64_t injections = 0;  ///< successful entries incl. injected deliveries
  std::array<std::int64_t, kNumDirs> moves_by_dir{};  ///< link utilisation
  std::int64_t exchanges = 0;   ///< adversary exchanges during phase (b)
  Step stall_run = 0;  ///< consecutive no-progress steps including this one

  // Fault-injection counters (sim/fault.hpp); zero unless a fault
  // schedule is installed and active.
  std::int64_t fault_blocked = 0;   ///< scheduled moves dropped on down links
  std::int64_t fault_deferred = 0;  ///< injections deferred at down sources
};

/// The observation interface: one digest per executed step. Observation
/// never influences routing. Packet records read through the Sim inside
/// a callback show end-of-step state (after phase (e)), which for every
/// digest field referenced here is identical to the state at transmission
/// time except for queue-slot indices.
class StepObserver {
 public:
  virtual ~StepObserver() = default;
  /// Called once at the end of prepare(): the initial configuration is
  /// final; the digest carries step 0 and any source==dest deliveries.
  virtual void on_prepare(const Sim&, const StepDigest&) {}
  virtual void on_step(const Sim&, const StepDigest&) = 0;
};

/// Legacy per-event observation hook, retained as a thin adapter over the
/// digest callback (see LegacyObserverAdapter): per step the adapter
/// replays injected deliveries, then each move (with on_deliver after the
/// delivering hop), then on_step_end — the exact event order the engine
/// used to emit inline. Prefer StepObserver for new code.
class Observer {
 public:
  virtual ~Observer() = default;
  /// Called once at the end of prepare(): the initial configuration is
  /// final and source==dest packets have already been delivered (step 0).
  virtual void on_prepare_end(const Sim&) {}
  virtual void on_step_end(const Sim&) {}
  virtual void on_deliver(const Sim&, const Packet&) {}
  virtual void on_move(const Sim&, const Packet&, NodeId from, NodeId to) {
    (void)from;
    (void)to;
  }
};

/// Replays a StepDigest as the legacy per-event callback sequence.
/// Sim::add_observer(Observer*) wraps each legacy observer in one of
/// these; the replayed event order is bit-identical to the order the
/// pre-digest engine emitted inline.
class LegacyObserverAdapter final : public StepObserver {
 public:
  explicit LegacyObserverAdapter(Observer* legacy) : legacy_(legacy) {}
  void on_prepare(const Sim& e, const StepDigest& d) override;
  void on_step(const Sim& e, const StepDigest& d) override;

 private:
  Observer* legacy_;
};

}  // namespace mr
