file(REMOVE_RECURSE
  "CMakeFiles/bounded_do_test.dir/bounded_do_test.cpp.o"
  "CMakeFiles/bounded_do_test.dir/bounded_do_test.cpp.o.d"
  "bounded_do_test"
  "bounded_do_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bounded_do_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
