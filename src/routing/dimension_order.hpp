// Dimension-order (XY) router with FIFO outqueue and rotating-priority
// inqueue — the canonical destination-exchangeable algorithm of §2.
//
// A packet first travels along its row (east/west) while horizontally
// profitable, then along its column. Note that under the DX restriction
// this is expressible purely through profitable-outlink masks: a packet is
// in its row phase iff its mask contains East or West.
#pragma once

#include "routing/dx.hpp"

namespace mr {

class DimensionOrderRouter final : public DxAlgorithm {
 public:
  std::string name() const override { return "dimension-order"; }

 protected:
  void dx_plan_out(NodeCtx& ctx, std::span<const PacketDxView> resident,
                   OutPlan& plan) override;
  void dx_plan_in(NodeCtx& ctx, std::span<const PacketDxView> resident,
                  std::span<const DxOffer> offers, InPlan& plan) override;
  void dx_update(NodeCtx& ctx, std::span<PacketDxView> resident) override;
};

/// The outlink a dimension-order packet wants, given only its profitable
/// mask: horizontal first (East preferred on a torus tie), then vertical
/// (North preferred). Returns false if the mask is empty.
bool dimension_order_dir(DirMask mask, Dir& out);

}  // namespace mr
