file(REMOVE_RECURSE
  "CMakeFiles/mr_fastroute.dir/fastroute.cpp.o"
  "CMakeFiles/mr_fastroute.dir/fastroute.cpp.o.d"
  "libmr_fastroute.a"
  "libmr_fastroute.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mr_fastroute.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
