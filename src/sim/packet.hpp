// Packet representation (paper §2).
//
// A packet carries: an immutable source address, a destination address
// (mutable ONLY through the adversary's exchange operation, §3), and a
// mutable state word that the routing algorithm may update while the packet
// sits in a node. The engine additionally tracks the arrival step at the
// current node, which §2 explicitly lists as legal packet state.
#pragma once

#include <cstdint>

#include "core/types.hpp"

namespace mr {

/// How a node's buffer space is organised (paper §2 vs §5, Theorem 15).
enum class QueueLayout : std::uint8_t {
  Central,    ///< one queue of size k per node
  PerInlink,  ///< four queues of size k, one per inlink (§5, Theorem 15)
};

/// Which queue inside a node a packet occupies.
/// Central layout: always kCentralQueue. Per-inlink layout: the index of the
/// inlink direction the packet arrived on (0..3).
using QueueTag = std::uint8_t;
inline constexpr QueueTag kCentralQueue = 0xFF;
/// arrival_inlink value for packets injected at their source.
inline constexpr std::uint8_t kNoInlink = 4;

struct Packet {
  PacketId id = kInvalidPacket;
  NodeId source = kInvalidNode;
  NodeId dest = kInvalidNode;
  NodeId location = kInvalidNode;  ///< kInvalidNode once delivered
  std::uint64_t state = 0;         ///< algorithm-managed packet state
  QueueTag queue = kCentralQueue;
  /// Cached profitable_dirs(location, dest); engine-maintained on every
  /// placement and destination exchange so hot paths never recompute it.
  DirMask profitable = 0;
  /// Index of this packet inside its node queue; engine-maintained so
  /// removal needs no scan. -1 while not queued at any node.
  std::int32_t slot = -1;
  /// Inlink the packet arrived on (dir_index), or kNoInlink if it was
  /// injected here. DX-legal: the sending node could equally have written
  /// this into the packet state.
  std::uint8_t arrival_inlink = 4;
  Step injected_at = 0;    ///< step at whose start the packet appears
  Step arrived_at = 0;     ///< step at which it entered the current node
  Step delivered_at = -1;  ///< -1 while undelivered

  bool delivered() const { return delivered_at >= 0; }
};

}  // namespace mr
