// Workload generators: (partial) permutations and h-h routing problems on
// the mesh (paper §1: one-to-one routing is the basic benchmark; §5: h-h).
#pragma once

#include <cstdint>
#include <vector>

#include "core/rng.hpp"
#include "core/types.hpp"
#include "topo/topology.hpp"

namespace mr {

/// One routing demand: a packet from source to dest (static problems inject
/// everything at step 0).
struct Demand {
  NodeId source = kInvalidNode;
  NodeId dest = kInvalidNode;
  Step injected_at = 0;

  friend bool operator==(const Demand&, const Demand&) = default;
};

using Workload = std::vector<Demand>;

/// Uniformly random full permutation (every node sends and receives one).
Workload random_permutation(const Topology& mesh, std::uint64_t seed);

/// Random partial permutation with the given fraction of nodes sending.
Workload random_partial_permutation(const Topology& mesh, double fraction,
                                    std::uint64_t seed);

/// Transpose: (c, r) -> (r, c). Requires a square mesh.
Workload transpose(const Topology& mesh);

/// Bit-reversal on coordinates (square mesh with power-of-two side).
Workload bit_reversal(const Topology& mesh);

/// Rotation by (dc, dr) with wrap-around.
Workload rotation(const Topology& mesh, std::int32_t dc, std::int32_t dr);

/// Every node of the west half sends to the mirrored node of the east half
/// and vice versa — heavy bisection load.
Workload mirror(const Topology& mesh);

/// Random h-h problem: every node sends exactly h packets and receives
/// exactly h packets (destinations form h random permutations).
Workload random_hh(const Topology& mesh, int h, std::uint64_t seed);

/// True iff no node sends more than h packets or receives more than h.
bool is_hh(const Topology& mesh, const Workload& w, int h);

/// True iff the workload is a partial permutation (h = 1).
inline bool is_partial_permutation(const Topology& mesh, const Workload& w) {
  return is_hh(mesh, w, 1);
}

}  // namespace mr
