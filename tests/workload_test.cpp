#include <gtest/gtest.h>

#include "topo/mesh.hpp"
#include "workload/permutation.hpp"

namespace mr {
namespace {

TEST(Workload, RandomPermutationIsPermutation) {
  const Mesh mesh = Mesh::square(9);
  const Workload w = random_permutation(mesh, 17);
  EXPECT_EQ(w.size(), 81u);
  EXPECT_TRUE(is_partial_permutation(mesh, w));
  // Every node receives exactly one packet.
  std::vector<int> recv(81, 0);
  for (const Demand& d : w) ++recv[d.dest];
  for (int r : recv) EXPECT_EQ(r, 1);
}

TEST(Workload, RandomPermutationSeedsDiffer) {
  const Mesh mesh = Mesh::square(8);
  EXPECT_NE(random_permutation(mesh, 1), random_permutation(mesh, 2));
  EXPECT_EQ(random_permutation(mesh, 3), random_permutation(mesh, 3));
}

TEST(Workload, PartialPermutationFraction) {
  const Mesh mesh = Mesh::square(10);
  const Workload w = random_partial_permutation(mesh, 0.25, 7);
  EXPECT_EQ(w.size(), 25u);
  EXPECT_TRUE(is_partial_permutation(mesh, w));
}

TEST(Workload, TransposeFixesDiagonal) {
  const Mesh mesh = Mesh::square(6);
  const Workload w = transpose(mesh);
  EXPECT_TRUE(is_partial_permutation(mesh, w));
  for (const Demand& d : w) {
    const Coord s = mesh.coord_of(d.source);
    const Coord t = mesh.coord_of(d.dest);
    EXPECT_EQ(s.col, t.row);
    EXPECT_EQ(s.row, t.col);
  }
}

TEST(Workload, BitReversalIsInvolution) {
  const Mesh mesh = Mesh::square(8);
  const Workload w = bit_reversal(mesh);
  EXPECT_TRUE(is_partial_permutation(mesh, w));
  for (const Demand& d : w) {
    // applying the map twice returns to the source
    const Workload w2 = bit_reversal(mesh);
    EXPECT_EQ(w2[d.dest].dest, d.source);
  }
}

TEST(Workload, BitReversalRejectsNonPowerOfTwo) {
  const Mesh mesh = Mesh::square(6);
  EXPECT_THROW(bit_reversal(mesh), InvariantViolation);
}

TEST(Workload, RotationWraps) {
  const Mesh mesh = Mesh::square(5);
  const Workload w = rotation(mesh, 2, 3);
  EXPECT_TRUE(is_partial_permutation(mesh, w));
  EXPECT_EQ(w[mesh.id_of(4, 4)].dest, mesh.id_of(1, 2));
}

TEST(Workload, MirrorIsPermutation) {
  const Mesh mesh = Mesh::square(8);
  EXPECT_TRUE(is_partial_permutation(mesh, mirror(mesh)));
}

TEST(Workload, HhBounds) {
  const Mesh mesh = Mesh::square(6);
  const Workload w = random_hh(mesh, 3, 5);
  EXPECT_EQ(w.size(), 3u * 36u);
  EXPECT_TRUE(is_hh(mesh, w, 3));
  EXPECT_FALSE(is_hh(mesh, w, 2));
}

TEST(Workload, IsHhDetectsOverload) {
  const Mesh mesh = Mesh::square(4);
  Workload w;
  w.push_back(Demand{0, 5, 0});
  w.push_back(Demand{0, 6, 0});
  EXPECT_FALSE(is_hh(mesh, w, 1));
  EXPECT_TRUE(is_hh(mesh, w, 2));
}

}  // namespace
}  // namespace mr
