// Model-level property suite, parameterised over every registered router:
//  * conservation — every packet is delivered exactly once and its recorded
//    path is a connected source→destination walk on the mesh,
//  * minimality — for minimal routers the path length equals the L1
//    distance (equivalently, every move is profitable),
//  * link capacity — no directed link ever carries two packets in a step,
//  * bounded stray — for the §5 nonminimal router every path stays within
//    the rectangle expanded by δ,
//  * determinism — two identical runs produce identical event traces.
#include <gtest/gtest.h>

#include "routing/registry.hpp"
#include "sim/engine.hpp"
#include "sim/trace.hpp"
#include "topo/mesh.hpp"
#include "workload/permutation.hpp"

namespace mr {
namespace {

struct Param {
  std::string algorithm;
  int k;
  bool torus;
};

Workload monotone_ne(const Mesh& mesh, std::uint64_t seed) {
  Workload out;
  for (const Demand& d : random_permutation(mesh, seed)) {
    const Coord s = mesh.coord_of(d.source);
    const Coord t = mesh.coord_of(d.dest);
    if (t.col >= s.col && t.row >= s.row) out.push_back(d);
  }
  return out;
}

struct RunArtifacts {
  std::vector<Packet> packets;
  std::vector<TraceEvent> trace;
  bool all_delivered = false;
  bool minimal = false;
  int max_stray = -1;
};

RunArtifacts run_traced(const Param& p, const Mesh& mesh, const Workload& w) {
  auto algo = make_algorithm(p.algorithm);
  Engine::Config config;
  config.queue_capacity = p.k;
  config.stall_limit = 20000;
  Engine e(mesh, config, *algo);
  for (const Demand& d : w) e.add_packet(d.source, d.dest, d.injected_at);
  TraceRecorder trace;
  e.add_observer(&trace);
  e.prepare();
  e.run(100000);
  RunArtifacts out;
  out.packets = e.all_packets();
  out.trace = trace.events();
  out.all_delivered = e.all_delivered();
  out.minimal = algo->minimal();
  out.max_stray = algo->max_stray();
  return out;
}

class ModelProperties : public ::testing::TestWithParam<Param> {};

TEST_P(ModelProperties, ConservationAndPaths) {
  const Param p = GetParam();
  const Mesh mesh = Mesh::square(11, p.torus);
  // Central-queue routers get monotone traffic (deadlock-free); the
  // per-inlink router takes the full permutation.
  const Workload w = make_algorithm(p.algorithm)->queue_layout() ==
                             QueueLayout::PerInlink
                         ? random_permutation(mesh, 31)
                         : monotone_ne(mesh, 31);
  const RunArtifacts run = run_traced(p, mesh, w);
  ASSERT_TRUE(run.all_delivered);

  TraceRecorder helper;  // reuse path reconstruction on a copy
  std::vector<int> delivered_count(run.packets.size(), 0);
  for (const TraceEvent& ev : run.trace)
    if (ev.kind == TraceEventKind::Deliver) ++delivered_count[ev.packet];
  for (int c : delivered_count) EXPECT_EQ(c, 1);

  // Reconstruct paths: connected walks ending at the destination.
  for (const Packet& pk : run.packets) {
    NodeId at = pk.source;
    for (const TraceEvent& ev : run.trace) {
      if (ev.packet != pk.id || ev.kind != TraceEventKind::Move) continue;
      EXPECT_EQ(ev.from, at);
      // Each hop is a mesh edge.
      bool adjacent = false;
      for (Dir d : kAllDirs)
        adjacent = adjacent || mesh.neighbor(ev.from, d) == ev.to;
      EXPECT_TRUE(adjacent);
      at = ev.to;
    }
    EXPECT_EQ(at, pk.dest);
  }
}

TEST_P(ModelProperties, MinimalPathsHaveL1Length) {
  const Param p = GetParam();
  const Mesh mesh = Mesh::square(11, p.torus);
  const Workload w = make_algorithm(p.algorithm)->queue_layout() ==
                             QueueLayout::PerInlink
                         ? random_permutation(mesh, 77)
                         : monotone_ne(mesh, 77);
  const RunArtifacts run = run_traced(p, mesh, w);
  ASSERT_TRUE(run.all_delivered);
  std::vector<int> hops(run.packets.size(), 0);
  for (const TraceEvent& ev : run.trace)
    if (ev.kind == TraceEventKind::Move) ++hops[ev.packet];
  for (const Packet& pk : run.packets) {
    const int d = mesh.distance(pk.source, pk.dest);
    if (run.minimal) {
      EXPECT_EQ(hops[pk.id], d) << "packet " << pk.id;
    } else {
      EXPECT_GE(hops[pk.id], d);
      // §5 containment: at most 2·δ extra hops per stray axis excursion
      // pair would be a weaker statement; the strong rectangle check is in
      // BoundedStray below.
    }
  }
}

TEST_P(ModelProperties, LinkCapacityOnePacketPerStep) {
  const Param p = GetParam();
  const Mesh mesh = Mesh::square(11, p.torus);
  const Workload w = make_algorithm(p.algorithm)->queue_layout() ==
                             QueueLayout::PerInlink
                         ? random_permutation(mesh, 5)
                         : monotone_ne(mesh, 5);
  auto algo = make_algorithm(p.algorithm);
  Engine::Config config;
  config.queue_capacity = p.k;
  Engine e(mesh, config, *algo);
  for (const Demand& d : w) e.add_packet(d.source, d.dest, d.injected_at);
  TraceRecorder trace;
  e.add_observer(&trace);
  e.prepare();
  e.run(100000);
  ASSERT_TRUE(e.all_delivered());
  EXPECT_TRUE(trace.link_capacity_respected());
  if (algo->minimal())
    EXPECT_TRUE(trace.all_moves_minimal(mesh, e.all_packets()));
}

TEST_P(ModelProperties, DeterministicTraces) {
  const Param p = GetParam();
  const Mesh mesh = Mesh::square(9, p.torus);
  const Workload w = monotone_ne(mesh, 13);
  const RunArtifacts a = run_traced(p, mesh, w);
  const RunArtifacts b = run_traced(p, mesh, w);
  EXPECT_EQ(a.trace, b.trace);
}

std::vector<Param> make_params() {
  std::vector<Param> out;
  for (const std::string& a : algorithm_names()) {
    for (int k : {1, 3}) {
      // The §5 nonminimal router needs k >= 2: deflections reintroduce
      // head-on blocking, which a single buffer slot cannot absorb.
      if (a.rfind("stray-", 0) == 0 && k < 2) continue;
      out.push_back(Param{a, k, false});
    }
  }
  // torus spot-checks for the DX routers
  for (const std::string& a : dx_minimal_algorithm_names())
    out.push_back(Param{a, 2, true});
  return out;
}

INSTANTIATE_TEST_SUITE_P(AllRouters, ModelProperties,
                         ::testing::ValuesIn(make_params()),
                         [](const auto& inf) {
                           std::string n = inf.param.algorithm;
                           for (char& ch : n)
                             if (ch == '-') ch = '_';
                           return n + "_k" + std::to_string(inf.param.k) +
                                  (inf.param.torus ? "_torus" : "");
                         });

TEST(BoundedStray, PathsStayInExpandedRectangle) {
  const Mesh mesh = Mesh::square(12);
  for (int delta : {0, 1, 3}) {
    auto algo = make_algorithm("stray-" + std::to_string(delta));
    Engine::Config config;
    config.queue_capacity = 2;
    Engine e(mesh, config, *algo);
    Workload w;
    for (const Demand& d : random_permutation(mesh, 3)) {
      const Coord s = mesh.coord_of(d.source);
      const Coord t = mesh.coord_of(d.dest);
      if (t.col >= s.col && t.row >= s.row) w.push_back(d);
    }
    for (const Demand& d : w) e.add_packet(d.source, d.dest, d.injected_at);
    TraceRecorder trace;
    e.add_observer(&trace);
    e.prepare();
    e.run(50000);
    ASSERT_TRUE(e.all_delivered()) << "delta=" << delta;
    for (const Packet& pk : e.all_packets()) {
      const Coord s = mesh.coord_of(pk.source);
      const Coord t = mesh.coord_of(pk.dest);
      for (NodeId node : trace.packet_path(pk.id, pk.source)) {
        const Coord c = mesh.coord_of(node);
        EXPECT_GE(c.col, std::min(s.col, t.col) - delta);
        EXPECT_LE(c.col, std::max(s.col, t.col) + delta);
        EXPECT_GE(c.row, std::min(s.row, t.row) - delta);
        EXPECT_LE(c.row, std::max(s.row, t.row) + delta);
      }
    }
  }
}

TEST(Trace, JsonlShape) {
  const Mesh mesh = Mesh::square(6);
  auto algo = make_algorithm("dimension-order");
  Engine::Config config;
  config.queue_capacity = 2;
  Engine e(mesh, config, *algo);
  e.add_packet(mesh.id_of(0, 0), mesh.id_of(2, 0));
  TraceRecorder trace;
  e.add_observer(&trace);
  e.prepare();
  e.run(100);
  std::ostringstream os;
  trace.write_jsonl(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("\"kind\":\"move\""), std::string::npos);
  EXPECT_NE(s.find("\"kind\":\"deliver\""), std::string::npos);
  EXPECT_EQ(std::count(s.begin(), s.end(), '\n'), 3);  // 2 moves + deliver
}

TEST(Trace, TruncationCap) {
  const Mesh mesh = Mesh::square(8);
  auto algo = make_algorithm("dimension-order");
  Engine::Config config;
  config.queue_capacity = 2;
  Engine e(mesh, config, *algo);
  e.add_packet(mesh.id_of(0, 0), mesh.id_of(7, 7));
  TraceRecorder trace(/*max_events=*/4);
  e.add_observer(&trace);
  e.prepare();
  e.run(100);
  EXPECT_EQ(trace.events().size(), 4u);
  EXPECT_TRUE(trace.truncated());
}

}  // namespace
}  // namespace mr
