# Empty compiler generated dependencies file for fastroute_trace.
# This may be replaced when dependencies are built.
