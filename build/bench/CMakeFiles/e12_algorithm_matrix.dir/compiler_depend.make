# Empty compiler generated dependencies file for e12_algorithm_matrix.
# This may be replaced when dependencies are built.
