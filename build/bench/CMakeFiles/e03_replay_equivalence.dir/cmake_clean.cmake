file(REMOVE_RECURSE
  "CMakeFiles/e03_replay_equivalence.dir/e03_replay_equivalence.cpp.o"
  "CMakeFiles/e03_replay_equivalence.dir/e03_replay_equivalence.cpp.o.d"
  "e03_replay_equivalence"
  "e03_replay_equivalence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e03_replay_equivalence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
