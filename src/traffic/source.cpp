#include "traffic/source.hpp"

#include <algorithm>
#include <array>
#include <cinttypes>
#include <cstdio>

#include "core/assert.hpp"

namespace mr {
namespace {

[[noreturn]] void bad_blob(const char* what) {
  throw SnapshotError(SnapshotError::Kind::Format,
                      std::string("traffic source state blob: ") + what);
}

}  // namespace

BernoulliSource::BernoulliSource(const Topology& topo, const TrafficSpec& spec)
    : topo_(topo), spec_(spec), rng_(spec.seed) {
  MR_REQUIRE_MSG(spec.rate >= 0.0 && spec.rate <= 1.0,
                 "injection rate must be in [0, 1], got " << spec.rate);
  MR_REQUIRE_MSG(spec.hotspot_fraction >= 0.0 && spec.hotspot_fraction <= 1.0,
                 "hotspot fraction must be in [0, 1]");
}

void BernoulliSource::emit(Step step, std::vector<Demand>& out) {
  MR_REQUIRE_MSG(step > last_step_,
                 "emit steps must be strictly increasing: " << step
                     << " after " << last_step_);
  last_step_ = step;
  const NodeId n = topo_.num_terminals();
  for (NodeId t = 0; t < n; ++t) {
    if (rng_.next_double() >= spec_.rate) continue;
    const NodeId dest = traffic_destination(topo_, spec_, t, rng_);
    if (dest == kInvalidNode) continue;  // pattern: this terminal never sends
    out.push_back(Demand{topo_.terminal_router(t), topo_.terminal_router(dest),
                         step});
    ++offered_;
  }
}

std::string BernoulliSource::save_state() const {
  const std::array<std::uint64_t, 4> s = rng_.state();
  char buf[160];
  std::snprintf(buf, sizeof buf,
                "bernoulli/1 %016" PRIx64 " %016" PRIx64 " %016" PRIx64
                " %016" PRIx64 " %" PRId64 " %" PRId64,
                s[0], s[1], s[2], s[3], static_cast<std::int64_t>(last_step_),
                offered_);
  return buf;
}

void BernoulliSource::restore_state(const std::string& blob) {
  std::array<std::uint64_t, 4> s{};
  std::int64_t last = 0, offered = 0;
  if (std::sscanf(blob.c_str(),
                  "bernoulli/1 %" SCNx64 " %" SCNx64 " %" SCNx64 " %" SCNx64
                  " %" SCNd64 " %" SCNd64,
                  &s[0], &s[1], &s[2], &s[3], &last, &offered) != 6)
    bad_blob("not a bernoulli/1 record");
  if (last < 0 || offered < 0) bad_blob("negative counter");
  rng_.set_state(s);
  last_step_ = last;
  offered_ = offered;
}

ReplaySource::ReplaySource(Workload demands) : demands_(std::move(demands)) {
  std::stable_sort(demands_.begin(), demands_.end(),
                   [](const Demand& a, const Demand& b) {
                     return a.injected_at < b.injected_at;
                   });
}

void ReplaySource::emit(Step step, std::vector<Demand>& out) {
  MR_REQUIRE_MSG(step > last_step_,
                 "emit steps must be strictly increasing: " << step
                     << " after " << last_step_);
  MR_REQUIRE_MSG(cursor_ == demands_.size() ||
                     demands_[cursor_].injected_at >= step,
                 "replay skipped demands scheduled before step " << step);
  last_step_ = step;
  while (cursor_ < demands_.size() &&
         demands_[cursor_].injected_at == step)
    out.push_back(demands_[cursor_++]);
}

std::string ReplaySource::save_state() const {
  char buf[80];
  std::snprintf(buf, sizeof buf, "replay/1 %zu %" PRId64, cursor_,
                static_cast<std::int64_t>(last_step_));
  return buf;
}

void ReplaySource::restore_state(const std::string& blob) {
  std::uint64_t cursor = 0;
  std::int64_t last = 0;
  if (std::sscanf(blob.c_str(), "replay/1 %" SCNu64 " %" SCNd64, &cursor,
                  &last) != 2)
    bad_blob("not a replay/1 record");
  if (cursor > demands_.size()) bad_blob("replay cursor past the workload end");
  cursor_ = static_cast<std::size_t>(cursor);
  last_step_ = last;
}

Workload materialize_traffic(TrafficSource& source, Step first, Step last) {
  MR_REQUIRE(first >= 1 && last >= first - 1);
  Workload out;
  for (Step t = first; t <= last; ++t) source.emit(t, out);
  return out;
}

}  // namespace mr
