#include <gtest/gtest.h>

#include "topo/mesh.hpp"

namespace mr {
namespace {

TEST(Mesh, IdCoordRoundTrip) {
  const Mesh m(7, 5);
  for (NodeId id = 0; id < m.num_nodes(); ++id)
    EXPECT_EQ(m.id_of(m.coord_of(id)), id);
}

TEST(Mesh, NeighborsOnEdges) {
  const Mesh m = Mesh::square(4);
  const NodeId sw = m.id_of(0, 0);
  EXPECT_EQ(m.neighbor(sw, Dir::West), kInvalidNode);
  EXPECT_EQ(m.neighbor(sw, Dir::South), kInvalidNode);
  EXPECT_EQ(m.neighbor(sw, Dir::East), m.id_of(1, 0));
  EXPECT_EQ(m.neighbor(sw, Dir::North), m.id_of(0, 1));
  const NodeId ne = m.id_of(3, 3);
  EXPECT_EQ(m.neighbor(ne, Dir::East), kInvalidNode);
  EXPECT_EQ(m.neighbor(ne, Dir::North), kInvalidNode);
}

TEST(Mesh, TorusWraps) {
  const Mesh t = Mesh::square(4, /*torus=*/true);
  EXPECT_EQ(t.neighbor(t.id_of(0, 0), Dir::West), t.id_of(3, 0));
  EXPECT_EQ(t.neighbor(t.id_of(0, 0), Dir::South), t.id_of(0, 3));
  EXPECT_EQ(t.neighbor(t.id_of(3, 2), Dir::East), t.id_of(0, 2));
  EXPECT_EQ(t.neighbor(t.id_of(1, 3), Dir::North), t.id_of(1, 0));
}

TEST(Mesh, L1Distance) {
  const Mesh m = Mesh::square(8);
  EXPECT_EQ(m.distance(m.id_of(0, 0), m.id_of(7, 7)), 14);
  EXPECT_EQ(m.distance(m.id_of(3, 4), m.id_of(3, 4)), 0);
  EXPECT_EQ(m.distance(m.id_of(2, 5), m.id_of(6, 1)), 8);
}

TEST(Mesh, TorusDistanceUsesWrap) {
  const Mesh t = Mesh::square(8, true);
  EXPECT_EQ(t.distance(t.id_of(0, 0), t.id_of(7, 0)), 1);
  EXPECT_EQ(t.distance(t.id_of(0, 0), t.id_of(6, 7)), 3);
  EXPECT_EQ(t.distance(t.id_of(1, 1), t.id_of(5, 5)), 8);  // both ways tie
}

TEST(Mesh, ProfitableDirsMesh) {
  const Mesh m = Mesh::square(8);
  const NodeId from = m.id_of(3, 3);
  EXPECT_EQ(m.profitable_dirs(from, m.id_of(5, 6)),
            dir_bit(Dir::East) | dir_bit(Dir::North));
  EXPECT_EQ(m.profitable_dirs(from, m.id_of(1, 3)), dir_bit(Dir::West));
  EXPECT_EQ(m.profitable_dirs(from, m.id_of(3, 0)), dir_bit(Dir::South));
  EXPECT_EQ(m.profitable_dirs(from, from), DirMask{0});
}

TEST(Mesh, ProfitableDirsTorusTie) {
  const Mesh t = Mesh::square(8, true);
  // Column displacement of exactly 4 on an 8-torus: both E and W profitable.
  const DirMask m = t.profitable_dirs(t.id_of(0, 0), t.id_of(4, 0));
  EXPECT_TRUE(mask_has(m, Dir::East));
  EXPECT_TRUE(mask_has(m, Dir::West));
  EXPECT_FALSE(mask_has(m, Dir::North));
}

TEST(Mesh, ProfitableMovesReduceDistance) {
  const Mesh m = Mesh::square(6);
  const Mesh t = Mesh::square(6, true);
  for (const Mesh* mesh : {&m, &t}) {
    for (NodeId a = 0; a < mesh->num_nodes(); ++a) {
      for (NodeId b = 0; b < mesh->num_nodes(); ++b) {
        const DirMask mask = mesh->profitable_dirs(a, b);
        for (Dir d : kAllDirs) {
          const NodeId nb = mesh->neighbor(a, d);
          if (nb == kInvalidNode) {
            EXPECT_FALSE(mask_has(mask, d));
            continue;
          }
          if (mask_has(mask, d)) {
            EXPECT_EQ(mesh->distance(nb, b), mesh->distance(a, b) - 1);
          } else {
            EXPECT_GE(mesh->distance(nb, b), mesh->distance(a, b));
          }
        }
      }
    }
  }
}

TEST(Mesh, RejectsBadDimensions) {
  EXPECT_THROW(Mesh(0, 5), InvariantViolation);
  EXPECT_THROW(Mesh(5, -1), InvariantViolation);
}

}  // namespace
}  // namespace mr
