file(REMOVE_RECURSE
  "CMakeFiles/dx_equivariance_test.dir/dx_equivariance_test.cpp.o"
  "CMakeFiles/dx_equivariance_test.dir/dx_equivariance_test.cpp.o.d"
  "dx_equivariance_test"
  "dx_equivariance_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dx_equivariance_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
