#include "traffic/pattern.hpp"

#include "core/assert.hpp"

namespace mr {

const char* traffic_pattern_name(TrafficPattern p) {
  switch (p) {
    case TrafficPattern::UniformRandom: return "uniform";
    case TrafficPattern::Transpose: return "transpose";
    case TrafficPattern::BitComplement: return "bitcomp";
    case TrafficPattern::Tornado: return "tornado";
    case TrafficPattern::Hotspot: return "hotspot";
  }
  return "?";
}

bool parse_traffic_pattern(const std::string& name, TrafficPattern* out) {
  for (TrafficPattern p : all_traffic_patterns()) {
    if (name == traffic_pattern_name(p)) {
      *out = p;
      return true;
    }
  }
  return false;
}

const std::vector<TrafficPattern>& all_traffic_patterns() {
  static const std::vector<TrafficPattern> patterns = {
      TrafficPattern::UniformRandom, TrafficPattern::Transpose,
      TrafficPattern::BitComplement, TrafficPattern::Tornado,
      TrafficPattern::Hotspot};
  return patterns;
}

NodeId hotspot_sink(const Mesh& mesh, const TrafficSpec& spec) {
  if (spec.hotspot_sink != kInvalidNode) {
    MR_REQUIRE(spec.hotspot_sink >= 0 &&
               spec.hotspot_sink < mesh.num_nodes());
    return spec.hotspot_sink;
  }
  return mesh.id_of(mesh.width() / 2, mesh.height() / 2);
}

namespace {

/// Uniform over all nodes except `src` (an empty draw is impossible for
/// meshes with >= 2 nodes, which Mesh already guarantees).
NodeId uniform_other(const Mesh& mesh, NodeId src, Rng& rng) {
  const NodeId n = mesh.num_nodes();
  const NodeId pick =
      static_cast<NodeId>(rng.next_below(static_cast<std::uint64_t>(n - 1)));
  return pick >= src ? pick + 1 : pick;
}

}  // namespace

NodeId traffic_destination(const Mesh& mesh, const TrafficSpec& spec,
                           NodeId src, Rng& rng) {
  const Coord s = mesh.coord_of(src);
  switch (spec.pattern) {
    case TrafficPattern::UniformRandom:
      return uniform_other(mesh, src, rng);
    case TrafficPattern::Transpose: {
      MR_REQUIRE_MSG(mesh.width() == mesh.height(),
                     "transpose needs a square mesh");
      const NodeId dest = mesh.id_of(s.row, s.col);
      return dest == src ? kInvalidNode : dest;
    }
    case TrafficPattern::BitComplement: {
      const NodeId dest =
          mesh.id_of(mesh.width() - 1 - s.col, mesh.height() - 1 - s.row);
      return dest == src ? kInvalidNode : dest;
    }
    case TrafficPattern::Tornado: {
      const std::int32_t dc = (mesh.width() - 1) / 2;
      const std::int32_t dr = (mesh.height() - 1) / 2;
      const NodeId dest = mesh.id_of((s.col + dc) % mesh.width(),
                                     (s.row + dr) % mesh.height());
      return dest == src ? kInvalidNode : dest;
    }
    case TrafficPattern::Hotspot: {
      const NodeId sink = hotspot_sink(mesh, spec);
      // The sink's own draw falls through to uniform background traffic,
      // and a uniform draw that hits the sink stays there: the sink's
      // arrival share is hotspot_fraction + (1-f)/(n-1) of all packets.
      if (src != sink && rng.next_double() < spec.hotspot_fraction)
        return sink;
      return uniform_other(mesh, src, rng);
    }
  }
  MR_REQUIRE_MSG(false, "unknown traffic pattern");
  return kInvalidNode;
}

}  // namespace mr
