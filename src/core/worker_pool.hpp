// Persistent worker pool for the sharded step engine.
//
// parallel_for (parallel.hpp) spawns and joins a fresh set of threads per
// call, which is fine for coarse sweep-level work but far too expensive for
// the engine hot path, where a 1000×1000-mesh step dispatches several
// barrier-separated phases per step. WorkerPool keeps its threads alive
// across run() calls: each call costs one mutex round-trip and two condvar
// signals instead of thread creation.
//
// Determinism contract: run(count, fn) executes fn(0..count-1) exactly once
// each, in an unspecified interleaving, and blocks until all are done (a
// full barrier). Which thread runs which index is never observable to
// callers that keep their tasks data-disjoint. If tasks throw, every task
// still runs to completion (or to its own throw) and the exception from the
// LOWEST task index is rethrown on the calling thread — the same error the
// serial loop would have produced first — so error behaviour is
// deterministic regardless of scheduling.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace mr {

class WorkerPool {
 public:
  /// A pool of `thread_count` total execution lanes: thread_count - 1
  /// background threads plus the caller of run(), which participates.
  /// thread_count <= 1 creates no threads; run() degrades to a serial loop.
  explicit WorkerPool(std::size_t thread_count);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  std::size_t thread_count() const { return workers_.size() + 1; }

  /// Runs fn(i) for i in [0, count), claiming indices atomically across the
  /// pool threads and the calling thread. Returns after ALL indices have
  /// executed. Rethrows the exception of the lowest failed index, if any.
  void run(std::size_t count, const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop();
  /// Claim-and-execute loop shared by workers and the caller.
  void drain(const std::function<void(std::size_t)>& fn, std::size_t count);

  std::mutex mutex_;
  std::condition_variable work_cv_;  ///< signals a new generation
  std::condition_variable done_cv_;  ///< signals workers_running_ == 0
  std::vector<std::thread> workers_;

  // Job slot, written under mutex_ by run(), read by workers after the
  // generation bump is observed under the same mutex.
  const std::function<void(std::size_t)>* job_ = nullptr;
  std::size_t job_count_ = 0;
  std::uint64_t generation_ = 0;
  std::size_t workers_running_ = 0;
  bool stop_ = false;

  std::atomic<std::size_t> next_{0};
  std::vector<std::pair<std::size_t, std::exception_ptr>> errors_;
};

}  // namespace mr
