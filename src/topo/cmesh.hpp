// Concentrated mesh (after booksim2's cmesh): a plain 2D mesh of routers
// with `concentration` terminals attached to each router. Terminals share
// their router's injection/ejection queues, so at equal terminal count a
// cmesh offers fewer network ports than the equivalent flat mesh — the
// per-terminal saturation rate can only be lower (E19 pins this).
//
// Terminal t lives on router t / c in slot t % c (block mapping). Routing
// is ordinary non-wrapping mesh routing on the router grid; the engine
// never sees terminals, only routers.
#pragma once

#include "topo/topology.hpp"

namespace mr {

class CMesh final : public Topology {
 public:
  CMesh(std::int32_t width, std::int32_t height, std::int32_t concentration);

  std::string name() const override;

  std::unique_ptr<Topology> clone() const override {
    return std::make_unique<CMesh>(*this);
  }

  NodeId neighbor(NodeId id, Dir d) const override;
  mr::Delta delta(NodeId from, NodeId to) const override;

  std::int32_t concentration() const override { return concentration_; }

  NodeId terminal_router(std::int32_t t) const override {
    MR_REQUIRE(t >= 0 && t < num_terminals());
    return t / concentration_;
  }

  std::int32_t terminal_of(NodeId router, std::int32_t slot) const override {
    MR_REQUIRE(router >= 0 && router < num_nodes());
    MR_REQUIRE(slot >= 0 && slot < concentration_);
    return router * concentration_ + slot;
  }

 private:
  std::int32_t concentration_;
};

}  // namespace mr
