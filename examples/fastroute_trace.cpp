// Phase trace of the §6 O(n)-time minimal adaptive algorithm (the
// programmatic rendition of Figures 5–7): prints the full segment schedule
// with measured activity per segment.
//
//   $ ./fastroute_trace [n] [seed]     (n a power of 3, >= 27)
#include <cstdlib>
#include <iostream>

#include "core/table.hpp"
#include "fastroute/fastroute.hpp"
#include "sim/engine.hpp"
#include "topo/mesh.hpp"
#include "workload/permutation.hpp"

int main(int argc, char** argv) {
  using namespace mr;
  const std::int32_t n = argc > 1 ? std::atoi(argv[1]) : 27;
  const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 3;

  const Mesh mesh = Mesh::square(n);
  FastRouteAlgorithm algo;
  Engine::Config config;
  config.queue_capacity = algo.queue_bound();
  config.stall_limit = 0;
  Engine e(mesh, config, algo);
  for (const Demand& d : random_permutation(mesh, seed))
    e.add_packet(d.source, d.dest, d.injected_at);
  e.prepare();

  std::cout << "§6 algorithm on a " << n << "x" << n
            << " random permutation (" << e.num_packets() << " packets)\n"
            << "schedule: " << algo.segments().size() << " segments, "
            << algo.schedule_length() << " steps (= "
            << double(algo.schedule_length()) / n << "·n; Theorem 34 bound "
            << "972·n)\n\n";

  const Step steps = e.run(algo.schedule_length() + 1);
  std::cout << "finished at step " << steps << ", delivered "
            << e.delivered_count() << "/" << e.num_packets()
            << ", peak queue " << e.max_occupancy_seen() << " (Lemma 28 bound "
            << algo.queue_bound() << ")\n\n";

  Table table({"segment", "class", "phase", "j", "tiling", "kind",
               "start", "length", "moves", "last useful step"});
  int idx = 0;
  for (const auto& seg : algo.segments()) {
    // Keep the trace compact: skip segments in which nothing moved.
    if (seg.moves == 0 && idx % 4 != 0) {
      ++idx;
      continue;
    }
    table.row()
        .add(idx++)
        .add(FastRouteAlgorithm::class_name(seg.cls))
        .add(seg.horizontal ? "H" : "V")
        .add(seg.j)
        .add(seg.tiling)
        .add(FastRouteAlgorithm::kind_name(seg.kind))
        .add(seg.start)
        .add(seg.length)
        .add(seg.moves)
        .add(seg.last_move_offset);
  }
  table.print(std::cout);
  std::cout << "(segments with no packet movement are partially elided)\n";
  return e.all_delivered() ? 0 : 1;
}
