file(REMOVE_RECURSE
  "CMakeFiles/mr_harness.dir/csv_export.cpp.o"
  "CMakeFiles/mr_harness.dir/csv_export.cpp.o.d"
  "CMakeFiles/mr_harness.dir/runner.cpp.o"
  "CMakeFiles/mr_harness.dir/runner.cpp.o.d"
  "libmr_harness.a"
  "libmr_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mr_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
