#include "traffic/pump.hpp"

#include <algorithm>
#include <sstream>

#include "core/assert.hpp"

namespace mr {

TrafficPump::TrafficPump(Engine& engine, TrafficSource& source,
                         Step inject_steps, Step ahead)
    : engine_(engine),
      source_(source),
      inject_steps_(inject_steps),
      ahead_(ahead) {
  MR_REQUIRE_MSG(inject_steps >= 0, "inject_steps must be >= 0");
  MR_REQUIRE_MSG(ahead >= 1, "generation-ahead window must be >= 1");
}

void TrafficPump::emit_one(bool pre_prepare) {
  ++emitted_;
  buf_.clear();
  source_.emit(emitted_, buf_);
  offered_per_step_.push_back(static_cast<std::int32_t>(buf_.size()));
  offered_ += static_cast<std::int64_t>(buf_.size());
  for (const Demand& d : buf_) {
    MR_REQUIRE_MSG(d.injected_at == emitted_,
                   "source emitted a demand dated " << d.injected_at
                       << " during step " << emitted_);
    if (pre_prepare)
      engine_.add_packet(d.source, d.dest, d.injected_at);
    else
      engine_.pump_packet(d.source, d.dest, d.injected_at);
  }
}

void TrafficPump::prime() {
  MR_REQUIRE_MSG(!primed_, "prime() called twice");
  primed_ = true;
  const Step target = std::min(ahead_, inject_steps_);
  while (emitted_ < target) emit_one(/*pre_prepare=*/true);
}

void TrafficPump::advance() {
  MR_REQUIRE_MSG(primed_, "advance() before prime()");
  const Step target = std::min(engine_.step() + ahead_, inject_steps_);
  while (emitted_ < target) emit_one(/*pre_prepare=*/false);
  // Idle gap at low rates: everything delivered and nothing pending, but
  // the stream is not over. Pull the window forward until some step
  // actually injects, so step_once can advance the clock again.
  while (engine_.all_delivered() && !exhausted())
    emit_one(/*pre_prepare=*/false);
}

std::string TrafficPump::save_state() const {
  std::string out = "pump/1 " + std::to_string(emitted_) + " " +
                    std::to_string(primed_ ? 1 : 0) + " " +
                    std::to_string(offered_) + " " +
                    std::to_string(offered_per_step_.size());
  for (std::int32_t c : offered_per_step_) {
    out += " ";
    out += std::to_string(c);
  }
  return out;
}

void TrafficPump::restore_state(const std::string& blob) {
  const auto bad = [](const char* what) {
    throw SnapshotError(SnapshotError::Kind::Format,
                        std::string("pump state blob: ") + what);
  };
  std::istringstream in(blob);
  std::string tag;
  long long emitted = 0, primed = 0, offered = 0, count = 0;
  if (!(in >> tag >> emitted >> primed >> offered >> count) || tag != "pump/1")
    bad("not a pump/1 record");
  if (emitted < 0 || offered < 0 || count != emitted)
    bad("inconsistent counters");
  std::vector<std::int32_t> per_step(static_cast<std::size_t>(count));
  for (std::int32_t& c : per_step)
    if (!(in >> c) || c < 0) bad("truncated per-step counts");
  emitted_ = emitted;
  primed_ = primed != 0;
  offered_ = offered;
  offered_per_step_ = std::move(per_step);
}

std::int64_t TrafficPump::offered_between(Step first, Step last) const {
  std::int64_t sum = 0;
  const Step lo = std::max<Step>(first, 1);
  const Step hi = std::min<Step>(last, emitted_);
  for (Step t = lo; t <= hi; ++t)
    sum += offered_per_step_[static_cast<std::size_t>(t - 1)];
  return sum;
}

Step run_to_drain(Engine& engine, TrafficPump& pump, Step max_steps) {
  while (!engine.stalled() && engine.step() < max_steps) {
    pump.advance();
    if (engine.all_delivered()) break;  // stream exhausted and drained
    engine.step_once();
  }
  return engine.step();
}

}  // namespace mr
