file(REMOVE_RECURSE
  "CMakeFiles/e14_tiling_cover.dir/e14_tiling_cover.cpp.o"
  "CMakeFiles/e14_tiling_cover.dir/e14_tiling_cover.cpp.o.d"
  "e14_tiling_cover"
  "e14_tiling_cover.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e14_tiling_cover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
