// Deterministic pseudo-random number generation.
//
// The simulator itself is fully deterministic; randomness appears only in
// workload generation. We implement splitmix64 (for seeding) and
// xoshiro256** 1.0 (Blackman & Vigna) rather than rely on unspecified
// standard-library engines, so traces are reproducible across platforms.
#pragma once

#include <array>
#include <cstdint>

#include "core/assert.hpp"

namespace mr {

/// splitmix64: used to expand a single 64-bit seed into generator state.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** 1.0. All-purpose generator for workload construction.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : s_) s = sm.next();
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound) via Lemire-style rejection.
  std::uint64_t next_below(std::uint64_t bound) {
    MR_REQUIRE(bound > 0);
    const std::uint64_t threshold = (0 - bound) % bound;
    for (;;) {
      const std::uint64_t r = next_u64();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  bool next_bool() { return (next_u64() & 1u) != 0; }

  /// Raw generator state, for checkpointing a mid-stream source. A
  /// generator constructed from any seed and then set_state() to a saved
  /// state() continues the exact sequence of the saved generator.
  std::array<std::uint64_t, 4> state() const {
    return {s_[0], s_[1], s_[2], s_[3]};
  }
  void set_state(const std::array<std::uint64_t, 4>& s) {
    // xoshiro256** requires a nonzero state; an all-zero state is never
    // produced by seeding and would lock the generator at zero.
    MR_REQUIRE_MSG(s[0] != 0 || s[1] != 0 || s[2] != 0 || s[3] != 0,
                   "Rng state must not be all zero");
    for (int i = 0; i < 4; ++i) s_[i] = s[i];
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4];
};

/// Fisher-Yates shuffle with the deterministic Rng.
template <typename Container>
void shuffle(Container& c, Rng& rng) {
  const auto n = c.size();
  if (n < 2) return;
  for (std::size_t i = n - 1; i > 0; --i) {
    const std::size_t j = static_cast<std::size_t>(rng.next_below(i + 1));
    using std::swap;
    swap(c[i], c[j]);
  }
}

}  // namespace mr
