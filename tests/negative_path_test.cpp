// Negative-path coverage: malformed configurations and corrupt input files
// must be rejected loudly (InvariantViolation / validation error), never
// half-accepted. Covers Engine::Config validation and the telemetry JSONL
// validator on truncated and malformed records.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#include "core/assert.hpp"
#include "routing/registry.hpp"
#include "sim/engine.hpp"
#include "telemetry/export.hpp"
#include "topo/mesh.hpp"

namespace mr {
namespace {

// --- Engine::Config ------------------------------------------------------

TEST(EngineConfig, RejectsNonPositiveQueueCapacity) {
  const Mesh mesh = Mesh::square(4);
  auto algo = make_algorithm("dimension-order");
  for (int k : {0, -1, -100}) {
    Engine::Config config;
    config.queue_capacity = k;
    EXPECT_THROW(Engine(mesh, config, *algo), InvariantViolation) << k;
  }
}

TEST(EngineConfig, RejectsNegativeStallLimit) {
  const Mesh mesh = Mesh::square(4);
  auto algo = make_algorithm("dimension-order");
  Engine::Config config;
  config.stall_limit = -1;
  EXPECT_THROW(Engine(mesh, config, *algo), InvariantViolation);
}

TEST(EngineConfig, AcceptsBoundaryValues) {
  const Mesh mesh = Mesh::square(4);
  auto algo = make_algorithm("dimension-order");
  Engine::Config config;
  config.queue_capacity = 1;
  config.stall_limit = 0;  // 0 disables stall detection; legal
  EXPECT_NO_THROW(Engine(mesh, config, *algo));
}

// --- telemetry JSONL validation ------------------------------------------

class TelemetryValidateTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() / "mr_negative_path_test";
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string write(const std::string& name, const std::string& content) {
    const std::string path = (dir_ / name).string();
    std::ofstream out(path);
    out << content;
    return path;
  }

  static std::string header_line() {
    return R"({"kind":"header","schema":"meshroute-telemetry/1",)"
           R"("run":"t","algorithm":"dimension-order","layout":"central",)"
           R"("width":4,"height":4,"queue_capacity":1,"sample_every":1,)"
           R"("series_stride":1})";
  }

  static std::string summary_line() {
    return R"({"kind":"summary","steps":1,"moves":0,"deliveries":0,)"
           R"("injections":0,"max_stall_run":0,"packets":0,"delivered":0,)"
           R"("stalled":false})";
  }

  std::filesystem::path dir_;
};

TEST_F(TelemetryValidateTest, AcceptsMinimalValidFile) {
  const std::string path =
      write("ok.jsonl", header_line() + "\n" + summary_line() + "\n");
  std::string error;
  EXPECT_TRUE(validate_telemetry_jsonl(path, &error)) << error;
}

TEST_F(TelemetryValidateTest, RejectsMissingFile) {
  std::string error;
  EXPECT_FALSE(
      validate_telemetry_jsonl((dir_ / "nope.jsonl").string(), &error));
  EXPECT_NE(error.find("cannot read"), std::string::npos) << error;
}

TEST_F(TelemetryValidateTest, RejectsEmptyFile) {
  const std::string path = write("empty.jsonl", "");
  std::string error;
  EXPECT_FALSE(validate_telemetry_jsonl(path, &error));
  EXPECT_NE(error.find("no header"), std::string::npos) << error;
}

TEST_F(TelemetryValidateTest, RejectsTruncatedRecord) {
  // File cut off mid-record (e.g. a crashed writer): the half-line is
  // malformed JSON and must be reported with its line number.
  const std::string path = write(
      "truncated.jsonl",
      header_line() + "\n" + R"({"kind":"series","step":1,"span":1,"mo)");
  std::string error;
  EXPECT_FALSE(validate_telemetry_jsonl(path, &error));
  EXPECT_NE(error.find("line 2"), std::string::npos) << error;
  EXPECT_NE(error.find("malformed JSON"), std::string::npos) << error;
}

TEST_F(TelemetryValidateTest, RejectsMissingSummary) {
  // A writer that died before the summary: header alone is not a run.
  const std::string path = write("nosummary.jsonl", header_line() + "\n");
  std::string error;
  EXPECT_FALSE(validate_telemetry_jsonl(path, &error));
  EXPECT_NE(error.find("summary"), std::string::npos) << error;
}

TEST_F(TelemetryValidateTest, RejectsRecordBeforeHeader) {
  const std::string path =
      write("noheader.jsonl", summary_line() + "\n" + header_line() + "\n");
  std::string error;
  EXPECT_FALSE(validate_telemetry_jsonl(path, &error));
  EXPECT_NE(error.find("before header"), std::string::npos) << error;
}

TEST_F(TelemetryValidateTest, RejectsWrongSchema) {
  std::string bad_header = header_line();
  const std::string from = "meshroute-telemetry/1";
  bad_header.replace(bad_header.find(from), from.size(),
                     "meshroute-telemetry/9");
  const std::string path =
      write("schema.jsonl", bad_header + "\n" + summary_line() + "\n");
  std::string error;
  EXPECT_FALSE(validate_telemetry_jsonl(path, &error));
  EXPECT_NE(error.find("schema"), std::string::npos) << error;
}

TEST_F(TelemetryValidateTest, RejectsNonObjectLine) {
  const std::string path = write(
      "array.jsonl", header_line() + "\n[1,2,3]\n" + summary_line() + "\n");
  std::string error;
  EXPECT_FALSE(validate_telemetry_jsonl(path, &error));
  EXPECT_NE(error.find("not an object"), std::string::npos) << error;
}

TEST_F(TelemetryValidateTest, RejectsUnknownKind) {
  const std::string path =
      write("kind.jsonl", header_line() + "\n" + R"({"kind":"mystery"})" +
                              "\n" + summary_line() + "\n");
  std::string error;
  EXPECT_FALSE(validate_telemetry_jsonl(path, &error));
  EXPECT_NE(error.find("unknown kind"), std::string::npos) << error;
}

TEST_F(TelemetryValidateTest, RejectsSeriesMissingRequiredField) {
  // A series record without "moves": required numeric fields are enforced.
  const std::string series =
      R"({"kind":"series","step":1,"span":1,"deliveries":0,)"
      R"("injections":0,"stall_run":0,"moves_by_dir":[0,0,0,0]})";
  const std::string path = write(
      "series.jsonl", header_line() + "\n" + series + "\n" + summary_line() +
                          "\n");
  std::string error;
  EXPECT_FALSE(validate_telemetry_jsonl(path, &error));
  EXPECT_NE(error.find("moves"), std::string::npos) << error;
}

}  // namespace
}  // namespace mr
