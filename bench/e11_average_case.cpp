// E11 — §1.1 context (Leighton's average case): on RANDOM permutations the
// greedy routers finish in ≈ 2n + o(n) steps with tiny queues — the
// worst-case Ω-instances of E01/E04 are genuinely adversarial, not typical.
// Multiple seeds per point; independent runs are spread across threads.
#include <algorithm>

#include "core/stats.hpp"
#include "harness/runner.hpp"
#include "harness/sweep.hpp"
#include "scenarios.hpp"
#include "topo/mesh.hpp"
#include "workload/permutation.hpp"

namespace mr::scenarios {

void register_e11(ScenarioRegistry& registry) {
  ScenarioSpec spec;
  spec.id = "E11";
  spec.label = "average-case";
  spec.title = "average case on random permutations";
  spec.paper_ref = "§1.1 (Leighton [17] context)";
  spec.body = [](ScenarioReport& ctx) {
    std::vector<int> ns = {32, 64, 128};
    if (ctx.scale() == Scale::Small) ns = {32, 64};
    if (ctx.scale() == Scale::Large) ns.push_back(256);
    const int seeds = 5;

    Table table({"algorithm", "n", "k", "mean steps", "steps/n",
                 "max queue (worst seed)", "latency p50 (mean)", "all ok"});
    struct Case {
      std::string algorithm;
      int k;
    };
    // Central-queue routers get an ample k: Leighton's average-case claim is
    // that on random traffic the queues never GROW — the observed peak (a
    // handful of packets, vs k) is the reproduced quantity. The bounded
    // router additionally shows tiny hard queues already suffice.
    const std::vector<Case> cases = {{"bounded-dimension-order", 1},
                                     {"bounded-dimension-order", 4},
                                     {"dimension-order", 32},
                                     {"adaptive-alternate", 32},
                                     {"greedy-match", 32},
                                     {"farthest-first", 32}};
    // --seed overrides the historical base seed 1000; per-run seeds stay
    // spread the same way so a fixed base reproduces the published table.
    const std::uint64_t base_seed = ctx.seed_or(1000);
    bool no_deadlock = true;
    for (const Case& c : cases) {
      for (const int n : ns) {
        const Mesh mesh = Mesh::square(n);
        const auto results = sweep<RunResult>(seeds, [&](std::size_t s) {
          RunSpec spec;
          spec.width = spec.height = n;
          spec.queue_capacity = c.k;
          spec.algorithm = c.algorithm;
          return run_workload(spec,
                              random_permutation(mesh, base_seed + 13 * s));
        });
        RunningStat steps, p50;
        int max_queue = 0;
        bool ok = true;
        for (const RunResult& r : results) {
          steps.add(double(r.steps));
          p50.add(double(r.latency.p50));
          max_queue = std::max(max_queue, r.max_queue);
          ok = ok && r.all_delivered;
        }
        no_deadlock = no_deadlock && ok;
        table.row()
            .add(c.algorithm)
            .add(n)
            .add(c.k)
            .add(steps.mean(), 1)
            .add(steps.mean() / n, 2)
            .add(std::int64_t(max_queue))
            .add(p50.mean(), 1)
            .add(ok ? "yes" : "NO (deadlock)");
      }
    }
    ctx.table(table);
    ctx.note(
        "Central-queue routers run with ample k=32; the reproduced claim is "
        "the observed peak queue staying at a handful of packets (Leighton "
        "[17]: <= 4 w.h.p.) and steps/n ≈ 2 (the 2n + o(n) average case). "
        "Hard small k deadlocks saturated central queues — see the "
        "CentralQueueDeadlock test and E12.");
    ctx.check("no-deadlock-on-random-traffic", no_deadlock);
  };
  registry.add(std::move(spec));
}

}  // namespace mr::scenarios
