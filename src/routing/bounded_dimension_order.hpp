// Theorem 15: a destination-exchangeable dimension-order router with four
// incoming queues of size k per node that routes any permutation on the
// n×n mesh in O(n²/k + n) steps.
//
// Policies (paper §5):
//  * outqueue: packets trying to go STRAIGHT (continue in the direction of
//    their arrival inlink) have priority; ties broken FIFO.
//  * inqueue: the two column queues (packets travelling north/south) always
//    accept — the straight-priority rule guarantees every non-empty column
//    queue ejects a packet each step, so accepting is safe. The two row
//    queues accept iff they hold fewer than k packets at the start of the
//    step.
// Everything is expressible from queue tags and profitable masks, so the
// router is implemented as a DxAlgorithm; the §5 dimension-order lower
// bound applies to it, making Θ(n²/k) tight.
#pragma once

#include "routing/dx.hpp"

namespace mr {

class BoundedDimensionOrderRouter final : public DxAlgorithm {
 public:
  std::string name() const override { return "bounded-dimension-order"; }
  QueueLayout queue_layout() const override { return QueueLayout::PerInlink; }

 protected:
  void dx_plan_out(NodeCtx& ctx, std::span<const PacketDxView> resident,
                   OutPlan& plan) override;
  void dx_plan_in(NodeCtx& ctx, std::span<const PacketDxView> resident,
                  std::span<const DxOffer> offers, InPlan& plan) override;
};

}  // namespace mr
