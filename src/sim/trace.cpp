#include "sim/trace.hpp"

#include <algorithm>
#include <map>
#include <ostream>

#include "sim/engine.hpp"

namespace mr {

void TraceRecorder::on_move(const Sim& e, const Packet& p, NodeId from,
                            NodeId to) {
  if (max_events_ > 0 && events_.size() >= max_events_) {
    truncated_ = true;
    return;
  }
  events_.push_back(TraceEvent{TraceEventKind::Move, e.step(), p.id, from, to});
}

void TraceRecorder::on_deliver(const Sim& e, const Packet& p) {
  if (max_events_ > 0 && events_.size() >= max_events_) {
    truncated_ = true;
    return;
  }
  events_.push_back(
      TraceEvent{TraceEventKind::Deliver, e.step(), p.id, p.dest, p.dest});
}

std::vector<TraceEvent> TraceRecorder::packet_history(PacketId p) const {
  std::vector<TraceEvent> out;
  for (const TraceEvent& ev : events_)
    if (ev.packet == p) out.push_back(ev);
  return out;
}

std::vector<NodeId> TraceRecorder::packet_path(PacketId p,
                                               NodeId source) const {
  std::vector<NodeId> path{source};
  for (const TraceEvent& ev : events_) {
    if (ev.packet != p || ev.kind != TraceEventKind::Move) continue;
    path.push_back(ev.to);
  }
  return path;
}

void TraceRecorder::write_jsonl(std::ostream& os) const {
  for (const TraceEvent& ev : events_) {
    os << "{\"t\":" << ev.step << ",\"kind\":\""
       << (ev.kind == TraceEventKind::Move ? "move" : "deliver")
       << "\",\"packet\":" << ev.packet << ",\"from\":" << ev.from
       << ",\"to\":" << ev.to << "}\n";
  }
}

bool TraceRecorder::all_moves_minimal(
    const Topology& mesh, const std::vector<Packet>& packets) const {
  for (const TraceEvent& ev : events_) {
    if (ev.kind != TraceEventKind::Move) continue;
    const NodeId dest = packets[static_cast<std::size_t>(ev.packet)].dest;
    if (mesh.distance(ev.to, dest) != mesh.distance(ev.from, dest) - 1)
      return false;
  }
  return true;
}

bool TraceRecorder::link_capacity_respected() const {
  // (step, from, to) triples must be unique among moves.
  std::map<std::tuple<Step, NodeId, NodeId>, int> used;
  for (const TraceEvent& ev : events_) {
    if (ev.kind != TraceEventKind::Move) continue;
    if (++used[{ev.step, ev.from, ev.to}] > 1) return false;
  }
  return true;
}

}  // namespace mr
