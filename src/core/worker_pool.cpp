#include "core/worker_pool.hpp"

#include <algorithm>

#include "core/assert.hpp"

namespace mr {

WorkerPool::WorkerPool(std::size_t thread_count) {
  const std::size_t extra = thread_count > 1 ? thread_count - 1 : 0;
  workers_.reserve(extra);
  for (std::size_t t = 0; t < extra; ++t)
    workers_.emplace_back([this] { worker_loop(); });
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void WorkerPool::drain(const std::function<void(std::size_t)>& fn,
                       std::size_t count) {
  for (;;) {
    const std::size_t i = next_.fetch_add(1, std::memory_order_relaxed);
    if (i >= count) return;
    try {
      fn(i);
    } catch (...) {
      std::lock_guard<std::mutex> lock(mutex_);
      errors_.emplace_back(i, std::current_exception());
    }
  }
}

void WorkerPool::run(std::size_t count,
                     const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  if (workers_.empty()) {
    // Serial pool: no error collection needed, the first throw propagates
    // directly (and is necessarily the lowest failing index).
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    MR_REQUIRE_MSG(job_ == nullptr, "WorkerPool::run is not reentrant");
    job_ = &fn;
    job_count_ = count;
    next_.store(0, std::memory_order_relaxed);
    errors_.clear();
    workers_running_ = workers_.size();
    ++generation_;
  }
  work_cv_.notify_all();
  drain(fn, count);
  std::unique_lock<std::mutex> lock(mutex_);
  done_cv_.wait(lock, [this] { return workers_running_ == 0; });
  job_ = nullptr;
  if (!errors_.empty()) {
    std::sort(errors_.begin(), errors_.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    std::rethrow_exception(errors_.front().second);
  }
}

void WorkerPool::worker_loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  std::uint64_t seen = 0;
  for (;;) {
    work_cv_.wait(lock,
                  [&] { return stop_ || generation_ != seen; });
    if (stop_) return;
    seen = generation_;
    const auto* fn = job_;
    const std::size_t count = job_count_;
    lock.unlock();
    drain(*fn, count);
    lock.lock();
    if (--workers_running_ == 0) done_cv_.notify_one();
  }
}

}  // namespace mr
