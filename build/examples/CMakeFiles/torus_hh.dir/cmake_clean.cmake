file(REMOVE_RECURSE
  "CMakeFiles/torus_hh.dir/torus_hh.cpp.o"
  "CMakeFiles/torus_hh.dir/torus_hh.cpp.o.d"
  "torus_hh"
  "torus_hh.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/torus_hh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
