// Fault-injection tests for the paper-invariant oracles (check/oracles.hpp):
// each oracle must demonstrably FIRE when fed a corrupted configuration or
// digest, and stay silent on a legal one. A test-local Sim subclass builds
// arbitrary (including illegal) network states directly, bypassing both
// engines, so the oracles are exercised as independent checkers rather than
// as echoes of engine-side validation.
#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "check/oracles.hpp"
#include "core/assert.hpp"
#include "lower_bound/classes.hpp"
#include "sim/trace.hpp"
#include "topo/mesh.hpp"

namespace mr {
namespace {

/// A Sim whose state the test sets up by hand — legal or corrupted.
class FakeSim : public Sim {
 public:
  FakeSim(const Mesh& mesh, int k, QueueLayout layout)
      : Sim(mesh, k, layout, /*masks_cached=*/false) {}

  PacketId add(NodeId source, NodeId dest) {
    return register_packet(source, dest, 0);
  }
  /// Places p at node u with no validation whatsoever.
  void place(PacketId p, NodeId u, QueueTag tag = kCentralQueue) {
    packets_[p].location = u;
    packets_[p].queue = tag;
    node_packets_.push_back(u, p);
  }
  void set_location(PacketId p, NodeId u) { packets_[p].location = u; }
  void set_dest(PacketId p, NodeId d) { packets_[p].dest = d; }
  void set_source(PacketId p, NodeId s) { packets_[p].source = s; }
  void mark_delivered(PacketId p, Step t) {
    packets_[p].delivered_at = t;
    packets_[p].location = kInvalidNode;
  }

  using Sim::occupancy;
  int occupancy(NodeId u, QueueTag tag) const override {
    int count = 0;
    for (PacketId p : node_packets_.at(u))
      if (packets_[p].queue == tag) ++count;
    return count;
  }
  std::span<const NodeId> active_nodes() const override { return {}; }
  void exchange_destinations(PacketId a, PacketId b) override {
    std::swap(packets_[a].dest, packets_[b].dest);
    ++exchange_count_;
  }
};

/// Runs f and returns the InvariantViolation message, or "" if none threw.
template <typename F>
std::string violation(F&& f) {
  try {
    f();
  } catch (const InvariantViolation& e) {
    return e.what();
  }
  return {};
}

StepDigest digest_at(Step t, std::span<const MoveRecord> moves = {}) {
  StepDigest d;
  d.step = t;
  d.moves = moves;
  return d;
}

// --- QueueBoundOracle ----------------------------------------------------

TEST(QueueBoundOracle, SilentOnLegalConfiguration) {
  FakeSim sim(Mesh::square(4), 2, QueueLayout::Central);
  sim.place(sim.add(0, 5), 0);
  sim.place(sim.add(1, 5), 0);
  QueueBoundOracle oracle;
  EXPECT_EQ(violation([&] { oracle.on_step(sim, digest_at(1)); }), "");
}

TEST(QueueBoundOracle, FiresOnOverfullCentralQueue) {
  FakeSim sim(Mesh::square(4), 1, QueueLayout::Central);
  sim.place(sim.add(0, 5), 0);
  sim.place(sim.add(1, 5), 0);  // second packet in a k=1 queue
  QueueBoundOracle oracle;
  const std::string msg = violation([&] { oracle.on_step(sim, digest_at(1)); });
  EXPECT_NE(msg.find("[oracle:queue-bound]"), std::string::npos) << msg;
  EXPECT_NE(msg.find("> k=1"), std::string::npos) << msg;
}

TEST(QueueBoundOracle, FiresOnOverfullInlinkQueue) {
  FakeSim sim(Mesh::square(4), 1, QueueLayout::PerInlink);
  sim.place(sim.add(0, 5), 0, /*tag=*/2);
  sim.place(sim.add(1, 5), 0, /*tag=*/2);  // same inlink queue, k=1
  QueueBoundOracle oracle;
  const std::string msg = violation([&] { oracle.on_step(sim, digest_at(1)); });
  EXPECT_NE(msg.find("[oracle:queue-bound]"), std::string::npos) << msg;
  EXPECT_NE(msg.find("inlink queue 2"), std::string::npos) << msg;
}

TEST(QueueBoundOracle, SilentOnSpreadInlinkQueues) {
  FakeSim sim(Mesh::square(4), 1, QueueLayout::PerInlink);
  sim.place(sim.add(0, 5), 0, /*tag=*/1);
  sim.place(sim.add(1, 5), 0, /*tag=*/2);  // different queues: legal
  QueueBoundOracle oracle;
  EXPECT_EQ(violation([&] { oracle.on_step(sim, digest_at(1)); }), "");
}

TEST(QueueBoundOracle, FiresOnLocationDrift) {
  FakeSim sim(Mesh::square(4), 2, QueueLayout::Central);
  const PacketId p = sim.add(0, 5);
  sim.place(p, 0);
  sim.set_location(p, 3);  // queued at 0 but claims to sit at 3
  QueueBoundOracle oracle;
  const std::string msg = violation([&] { oracle.on_step(sim, digest_at(1)); });
  EXPECT_NE(msg.find("records location 3"), std::string::npos) << msg;
}

TEST(QueueBoundOracle, FiresOnDeliveredPacketStillQueued) {
  FakeSim sim(Mesh::square(4), 2, QueueLayout::Central);
  const PacketId p = sim.add(0, 5);
  sim.place(p, 0);
  sim.mark_delivered(p, 1);
  sim.set_location(p, 0);  // keep location consistent; delivered is the fault
  QueueBoundOracle oracle;
  const std::string msg = violation([&] { oracle.on_step(sim, digest_at(1)); });
  EXPECT_NE(msg.find("delivered packet"), std::string::npos) << msg;
}

TEST(QueueBoundOracle, FiresOnOccupancyCounterDrift) {
  // A sim whose occupancy accessor disagrees with its actual queues — the
  // bug class the cross-check exists for (a drifted incremental counter).
  class DriftingSim : public FakeSim {
   public:
    using FakeSim::FakeSim;
    using FakeSim::occupancy;
    int occupancy(NodeId, QueueTag) const override { return 0; }
  };
  DriftingSim sim(Mesh::square(4), 2, QueueLayout::PerInlink);
  sim.place(sim.add(0, 5), 0, /*tag=*/1);
  QueueBoundOracle oracle;
  const std::string msg = violation([&] { oracle.on_step(sim, digest_at(1)); });
  EXPECT_NE(msg.find("reports occupancy 0"), std::string::npos) << msg;
}

// --- LinkCapacityOracle --------------------------------------------------

TEST(LinkCapacityOracle, SilentOnLegalMoves) {
  FakeSim sim(Mesh::square(4), 2, QueueLayout::Central);
  const PacketId p = sim.add(0, 5);
  sim.place(p, 1);  // post-step position after hopping 0 → east → 1
  const std::vector<MoveRecord> moves = {{p, 0, 1, Dir::East, false}};
  LinkCapacityOracle oracle;
  EXPECT_EQ(violation([&] { oracle.on_step(sim, digest_at(1, moves)); }), "");
}

TEST(LinkCapacityOracle, FiresOnDoubleBookedLink) {
  FakeSim sim(Mesh::square(4), 2, QueueLayout::Central);
  const PacketId a = sim.add(0, 5);
  const PacketId b = sim.add(0, 6);
  sim.place(a, 1);
  sim.place(b, 1);
  // Both packets cross link 0→east in the same step.
  const std::vector<MoveRecord> moves = {{a, 0, 1, Dir::East, false},
                                         {b, 0, 1, Dir::East, false}};
  LinkCapacityOracle oracle;
  const std::string msg =
      violation([&] { oracle.on_step(sim, digest_at(1, moves)); });
  EXPECT_NE(msg.find("[oracle:link-capacity]"), std::string::npos) << msg;
  EXPECT_NE(msg.find("carried two packets"), std::string::npos) << msg;
}

TEST(LinkCapacityOracle, FiresOnNonAdjacentHop) {
  FakeSim sim(Mesh::square(4), 2, QueueLayout::Central);
  const PacketId p = sim.add(0, 15);
  sim.place(p, 5);
  // 0 → 5 is a diagonal, not the east neighbour (1).
  const std::vector<MoveRecord> moves = {{p, 0, 5, Dir::East, false}};
  LinkCapacityOracle oracle;
  const std::string msg =
      violation([&] { oracle.on_step(sim, digest_at(1, moves)); });
  EXPECT_NE(msg.find("does not land at"), std::string::npos) << msg;
}

TEST(LinkCapacityOracle, FiresOnPacketMovingTwice) {
  // Two delivering hops of the same packet over two different links: the
  // per-move consistency checks pass (delivered packets are out of the
  // network), so the one-move-per-packet check is what fires.
  FakeSim sim(Mesh::square(4), 2, QueueLayout::Central);
  const PacketId p = sim.add(0, 1);
  sim.mark_delivered(p, 1);
  const std::vector<MoveRecord> moves = {{p, 0, 1, Dir::East, true},
                                         {p, 5, 1, Dir::South, true}};
  LinkCapacityOracle oracle;
  const std::string msg =
      violation([&] { oracle.on_step(sim, digest_at(1, moves)); });
  EXPECT_NE(msg.find("moved twice"), std::string::npos) << msg;
}

TEST(LinkCapacityOracle, FiresOnDeliveredFlagWithPacketStillQueued) {
  FakeSim sim(Mesh::square(4), 2, QueueLayout::Central);
  const PacketId p = sim.add(0, 1);
  sim.place(p, 1);  // digest says delivered, packet still sits at node 1
  const std::vector<MoveRecord> moves = {{p, 0, 1, Dir::East, true}};
  LinkCapacityOracle oracle;
  const std::string msg =
      violation([&] { oracle.on_step(sim, digest_at(1, moves)); });
  EXPECT_NE(msg.find("left it in the network"), std::string::npos) << msg;
}

TEST(LinkCapacityOracle, FiresOnDigestPositionMismatch) {
  FakeSim sim(Mesh::square(4), 2, QueueLayout::Central);
  const PacketId p = sim.add(0, 5);
  sim.place(p, 2);  // digest records arrival at 1, packet sits at 2
  const std::vector<MoveRecord> moves = {{p, 0, 1, Dir::East, false}};
  LinkCapacityOracle oracle;
  const std::string msg =
      violation([&] { oracle.on_step(sim, digest_at(1, moves)); });
  EXPECT_NE(msg.find("but sits at 2"), std::string::npos) << msg;
}

// --- ProfitableMoveOracle ------------------------------------------------

TEST(ProfitableMoveOracle, SilentOnProfitableHop) {
  FakeSim sim(Mesh::square(4), 2, QueueLayout::Central);
  const PacketId p = sim.add(0, 3);
  sim.place(p, 1);
  const std::vector<MoveRecord> moves = {{p, 0, 1, Dir::East, false}};
  ProfitableMoveOracle oracle(/*minimal=*/true);
  EXPECT_EQ(violation([&] { oracle.on_step(sim, digest_at(1, moves)); }), "");
}

TEST(ProfitableMoveOracle, FiresOnDistanceIncreasingHop) {
  FakeSim sim(Mesh::square(4), 2, QueueLayout::Central);
  const PacketId p = sim.add(1, 0);  // destination is west of the packet
  sim.place(p, 2);
  const std::vector<MoveRecord> moves = {{p, 1, 2, Dir::East, false}};
  ProfitableMoveOracle oracle(/*minimal=*/true);
  const std::string msg =
      violation([&] { oracle.on_step(sim, digest_at(1, moves)); });
  EXPECT_NE(msg.find("[oracle:minimal-move]"), std::string::npos) << msg;
  EXPECT_NE(msg.find("does not reduce the distance"), std::string::npos)
      << msg;
}

TEST(ProfitableMoveOracle, FiresOutsideStrayRectangle) {
  const Mesh mesh = Mesh::square(6);
  FakeSim sim(mesh, 2, QueueLayout::Central);
  // Source (0,0), dest (1,0): the δ=1 expanded rectangle spans cols 0..2.
  const PacketId p = sim.add(mesh.id_of(0, 0), mesh.id_of(1, 0));
  const NodeId from = mesh.id_of(2, 0), to = mesh.id_of(3, 0);
  sim.place(p, to);
  const std::vector<MoveRecord> moves = {{p, from, to, Dir::East, false}};
  ProfitableMoveOracle oracle(/*minimal=*/false, /*max_stray=*/1);
  const std::string msg =
      violation([&] { oracle.on_step(sim, digest_at(1, moves)); });
  EXPECT_NE(msg.find("strayed more than delta=1"), std::string::npos) << msg;
}

TEST(ProfitableMoveOracle, SilentInsideStrayRectangle) {
  const Mesh mesh = Mesh::square(6);
  FakeSim sim(mesh, 2, QueueLayout::Central);
  const PacketId p = sim.add(mesh.id_of(0, 0), mesh.id_of(1, 0));
  const NodeId from = mesh.id_of(1, 0), to = mesh.id_of(2, 0);
  sim.place(p, to);  // col 2 = max(s,t).col + δ: on the boundary, legal
  const std::vector<MoveRecord> moves = {{p, from, to, Dir::East, false}};
  ProfitableMoveOracle oracle(/*minimal=*/false, /*max_stray=*/1);
  EXPECT_EQ(violation([&] { oracle.on_step(sim, digest_at(1, moves)); }), "");
}

// --- ExchangeConsistencyOracle -------------------------------------------

TEST(ExchangeConsistencyOracle, FiresOnDestChangeWithoutExchange) {
  FakeSim sim(Mesh::square(4), 2, QueueLayout::Central);
  const PacketId p = sim.add(0, 5);
  sim.place(p, 0);
  ExchangeConsistencyOracle oracle;
  oracle.on_prepare(sim, digest_at(0));
  sim.set_dest(p, 6);  // mutated outside an exchange
  const std::string msg = violation([&] { oracle.on_step(sim, digest_at(1)); });
  EXPECT_NE(msg.find("[oracle:exchange]"), std::string::npos) << msg;
  EXPECT_NE(msg.find("no exchanges"), std::string::npos) << msg;
}

TEST(ExchangeConsistencyOracle, FiresOnSourceMutation) {
  FakeSim sim(Mesh::square(4), 2, QueueLayout::Central);
  const PacketId p = sim.add(0, 5);
  sim.place(p, 0);
  ExchangeConsistencyOracle oracle;
  oracle.on_prepare(sim, digest_at(0));
  sim.set_source(p, 2);  // sources are immutable, always
  StepDigest d = digest_at(1);
  d.exchanges = 1;  // even in a step with exchanges
  const std::string msg = violation([&] { oracle.on_step(sim, d); });
  EXPECT_NE(msg.find("source of packet"), std::string::npos) << msg;
}

TEST(ExchangeConsistencyOracle, FiresOnInventedDestination) {
  FakeSim sim(Mesh::square(4), 2, QueueLayout::Central);
  const PacketId p = sim.add(0, 5);
  const PacketId q = sim.add(1, 6);
  sim.place(p, 0);
  sim.place(q, 1);
  ExchangeConsistencyOracle oracle;
  oracle.on_prepare(sim, digest_at(0));
  sim.set_dest(p, 9);  // 9 was nobody's destination: not a permutation
  StepDigest d = digest_at(1);
  d.exchanges = 1;
  const std::string msg = violation([&] { oracle.on_step(sim, d); });
  EXPECT_NE(msg.find("destination multiset"), std::string::npos) << msg;
}

TEST(ExchangeConsistencyOracle, SilentOnGenuineExchange) {
  FakeSim sim(Mesh::square(4), 2, QueueLayout::Central);
  const PacketId p = sim.add(0, 5);
  const PacketId q = sim.add(1, 6);
  sim.place(p, 0);
  sim.place(q, 1);
  ExchangeConsistencyOracle oracle;
  oracle.on_prepare(sim, digest_at(0));
  sim.exchange_destinations(p, q);
  StepDigest d = digest_at(1);
  d.exchanges = 1;
  EXPECT_EQ(violation([&] { oracle.on_step(sim, d); }), "");
}

// --- BoxEscapeOracle -----------------------------------------------------

// Geometry: 12×12, cn = 4 ⇒ γ = 2, line(i) = 2 + i; dn = 3; two classes.
// An N_2 packet starts inside the 1-box and is destined for column
// line(2) = 4 strictly north of row 4.
struct BoxFixture {
  Mesh mesh = Mesh::square(12);
  MainGeometry geo{12, 4, 2};
  std::int32_t dn = 3;
};

TEST(BoxEscapeOracle, FiresOnEarlyBoxEscape) {
  BoxFixture fx;
  FakeSim sim(fx.mesh, 2, QueueLayout::Central);
  const NodeId src = fx.mesh.id_of(0, 0);
  const NodeId dst = fx.mesh.id_of(4, 6);  // N_2-packet
  const PacketId p = sim.add(src, dst);
  // Hop from (4,4) (inside the 2-box) to (5,4) (outside) at step 1, but
  // Lemma 1 forbids class-2 escapes before step (2−1)·dn = 3.
  const NodeId from = fx.mesh.id_of(4, 4), to = fx.mesh.id_of(5, 4);
  sim.place(p, to);
  const std::vector<MoveRecord> moves = {{p, from, to, Dir::East, false}};
  BoxEscapeOracle oracle(fx.geo, fx.dn, /*class_packet_count=*/1);
  const std::string msg =
      violation([&] { oracle.on_step(sim, digest_at(1, moves)); });
  EXPECT_NE(msg.find("Lemma 1 violated"), std::string::npos) << msg;
}

TEST(BoxEscapeOracle, FiresOnDoubleEscapeInOneStep) {
  BoxFixture fx;
  FakeSim sim(fx.mesh, 2, QueueLayout::Central);
  // Two N_1-packets (dest column line(1) = 3, north of row 3) both leave
  // the 1-box in step 1 — Lemma 2 allows at most one per class per step
  // and fires while processing the second escaping move.
  const PacketId a = sim.add(fx.mesh.id_of(0, 0), fx.mesh.id_of(3, 7));
  const PacketId b = sim.add(fx.mesh.id_of(1, 0), fx.mesh.id_of(3, 8));
  const NodeId from_a = fx.mesh.id_of(3, 3), to_a = fx.mesh.id_of(3, 4);
  const NodeId from_b = fx.mesh.id_of(2, 3), to_b = fx.mesh.id_of(2, 4);
  sim.place(a, to_a);
  sim.place(b, to_b);
  const std::vector<MoveRecord> moves = {{a, from_a, to_a, Dir::North, false},
                                         {b, from_b, to_b, Dir::North, false}};
  BoxEscapeOracle oracle(fx.geo, fx.dn, /*class_packet_count=*/2);
  const std::string msg =
      violation([&] { oracle.on_step(sim, digest_at(1, moves)); });
  EXPECT_NE(msg.find("Lemma 2 violated"), std::string::npos) << msg;
}

TEST(BoxEscapeOracle, FiresOnConfinementBreach) {
  BoxFixture fx;
  FakeSim sim(fx.mesh, 2, QueueLayout::Central);
  // Step 1 ⇒ window w = 0, so classes ≥ 2 must still sit in the 0-box
  // (cols/rows 0..2). Park an N_2-packet at (5,0) with no move at all.
  const PacketId p = sim.add(fx.mesh.id_of(0, 0), fx.mesh.id_of(4, 6));
  sim.place(p, fx.mesh.id_of(5, 0));
  BoxEscapeOracle oracle(fx.geo, fx.dn, /*class_packet_count=*/1);
  const std::string msg = violation([&] { oracle.on_step(sim, digest_at(1)); });
  EXPECT_NE(msg.find("Lemma 5/6 violated"), std::string::npos) << msg;
}

TEST(BoxEscapeOracle, SilentOnConfinedPackets) {
  BoxFixture fx;
  FakeSim sim(fx.mesh, 2, QueueLayout::Central);
  const PacketId p = sim.add(fx.mesh.id_of(0, 0), fx.mesh.id_of(4, 6));
  sim.place(p, fx.mesh.id_of(1, 1));  // inside the 0-box: all lemmas hold
  BoxEscapeOracle oracle(fx.geo, fx.dn, /*class_packet_count=*/1);
  EXPECT_EQ(violation([&] { oracle.on_step(sim, digest_at(1)); }), "");
  EXPECT_EQ(oracle.max_escapes_per_step(), 0);
}

// --- DigestHasher --------------------------------------------------------

TEST(DigestHasher, DistinguishesDigestStreams) {
  DigestHasher a, b, c;
  FakeSim sim(Mesh::square(4), 2, QueueLayout::Central);
  const std::vector<MoveRecord> moves = {{0, 0, 1, Dir::East, false}};
  a.on_step(sim, digest_at(1, moves));
  b.on_step(sim, digest_at(1, moves));
  EXPECT_EQ(a.hash(), b.hash());
  c.on_step(sim, digest_at(1));  // same step, no moves
  EXPECT_NE(a.hash(), c.hash());
}

// --- run_trace_oracles ---------------------------------------------------

TEST(TraceOracles, CleanStreamPasses) {
  const Mesh mesh = Mesh::square(4);
  std::vector<Packet> packets(1);
  packets[0].id = 0;
  packets[0].source = 0;
  packets[0].dest = 2;
  const std::vector<TraceEvent> events = {
      {TraceEventKind::Move, 1, 0, 0, 1},
      {TraceEventKind::Move, 2, 0, 1, 2},
      {TraceEventKind::Deliver, 2, 0, 2, 2},
  };
  EXPECT_EQ(run_trace_oracles(events, mesh, packets, 1, QueueLayout::Central),
            "");
}

TEST(TraceOracles, FiresOnDoubleBookedLink) {
  const Mesh mesh = Mesh::square(4);
  std::vector<Packet> packets(2);
  for (std::size_t i = 0; i < 2; ++i) {
    packets[i].id = static_cast<PacketId>(i);
    packets[i].source = 0;
    packets[i].dest = 3;
  }
  const std::vector<TraceEvent> events = {
      {TraceEventKind::Move, 1, 0, 0, 1},
      {TraceEventKind::Move, 1, 1, 0, 1},  // same link, same step
  };
  const std::string msg =
      run_trace_oracles(events, mesh, packets, 2, QueueLayout::Central);
  EXPECT_NE(msg.find("link"), std::string::npos) << msg;
}

TEST(TraceOracles, FiresOnQueueOverflow) {
  const Mesh mesh = Mesh::square(4);
  // Three packets squeezed into node 1 with k=2: two arrivals on top of
  // one injected resident.
  std::vector<Packet> packets(3);
  packets[0].id = 0;
  packets[0].source = 1;
  packets[0].dest = 3;
  packets[1].id = 1;
  packets[1].source = 0;
  packets[1].dest = 3;
  packets[2].id = 2;
  packets[2].source = 5;
  packets[2].dest = 3;
  const std::vector<TraceEvent> events = {
      {TraceEventKind::Move, 1, 1, 0, 1},
      {TraceEventKind::Move, 1, 2, 5, 1},
  };
  const std::string msg =
      run_trace_oracles(events, mesh, packets, 2, QueueLayout::Central);
  EXPECT_NE(msg.find("queue bound violated"), std::string::npos) << msg;
}

TEST(TraceOracles, FiresOnTeleport) {
  const Mesh mesh = Mesh::square(4);
  std::vector<Packet> packets(1);
  packets[0].id = 0;
  packets[0].source = 0;
  packets[0].dest = 15;
  const std::vector<TraceEvent> events = {
      {TraceEventKind::Move, 1, 0, 0, 1},
      {TraceEventKind::Move, 2, 0, 2, 3},  // departs from 2, but sat at 1
  };
  const std::string msg =
      run_trace_oracles(events, mesh, packets, 1, QueueLayout::Central);
  EXPECT_FALSE(msg.empty());
}

TEST(TraceOracles, PerInlinkCountsQueuesSeparately) {
  // Node 5 of a 4×4 mesh receives two packets in one step from different
  // inlinks: a per-inlink layout with k=1 is fine, a central one is not.
  const Mesh mesh = Mesh::square(4);
  std::vector<Packet> packets(2);
  packets[0].id = 0;
  packets[0].source = 4;
  packets[0].dest = 7;
  packets[1].id = 1;
  packets[1].source = 1;
  packets[1].dest = 13;
  const std::vector<TraceEvent> events = {
      {TraceEventKind::Move, 1, 0, 4, 5},
      {TraceEventKind::Move, 1, 1, 1, 5},
  };
  EXPECT_EQ(
      run_trace_oracles(events, mesh, packets, 1, QueueLayout::PerInlink), "");
  const std::string msg =
      run_trace_oracles(events, mesh, packets, 1, QueueLayout::Central);
  EXPECT_NE(msg.find("queue bound violated"), std::string::npos) << msg;
}

}  // namespace
}  // namespace mr
