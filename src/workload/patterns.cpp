#include "workload/patterns.hpp"

#include <algorithm>

#include "core/assert.hpp"

namespace mr {

Workload row_to_column(const Topology& mesh, std::int32_t row,
                       std::int32_t col) {
  MR_REQUIRE(row >= 0 && row < mesh.height());
  MR_REQUIRE(col >= 0 && col < mesh.width());
  Workload w;
  const std::int32_t n = std::min(mesh.width(), mesh.height());
  for (std::int32_t c = 0; c < n; ++c)
    w.push_back(Demand{mesh.id_of(c, row), mesh.id_of(col, c), 0});
  return w;
}

Workload corner_flood(const Topology& mesh, std::int32_t w, std::int32_t h) {
  MR_REQUIRE(w >= 1 && w <= mesh.width() && h >= 1 && h <= mesh.height());
  Workload out;
  for (std::int32_t c = 0; c < w; ++c) {
    for (std::int32_t r = 0; r < h; ++r) {
      out.push_back(Demand{
          mesh.id_of(c, r),
          mesh.id_of(mesh.width() - 1 - c, mesh.height() - 1 - r), 0});
    }
  }
  return out;
}

Workload northeast_only(const Topology& mesh, const Workload& w) {
  Workload out;
  for (const Demand& d : w) {
    const Coord s = mesh.coord_of(d.source);
    const Coord t = mesh.coord_of(d.dest);
    if (t.col >= s.col && t.row >= s.row) out.push_back(d);
  }
  return out;
}

Workload half_transpose(const Topology& mesh) {
  Workload out;
  for (const Demand& d : transpose(mesh)) {
    const Coord s = mesh.coord_of(d.source);
    if (s.col < s.row) out.push_back(d);
  }
  return out;
}

Workload hotspot(const Topology& mesh, NodeId sink, std::int32_t count) {
  MR_REQUIRE(sink >= 0 && sink < mesh.num_nodes());
  MR_REQUIRE(count >= 1 && count < mesh.num_nodes());
  // Sources: the `count` nodes farthest from the sink, ties broken by id,
  // one packet each (they converge from the far side).
  std::vector<NodeId> nodes = mesh.all_nodes();
  std::stable_sort(nodes.begin(), nodes.end(), [&](NodeId a, NodeId b) {
    return mesh.distance(a, sink) > mesh.distance(b, sink);
  });
  Workload out;
  for (std::int32_t i = 0; i < count; ++i)
    out.push_back(Demand{nodes[static_cast<std::size_t>(i)], sink, 0});
  return out;
}

Workload diagonal_shift(const Topology& mesh, std::int32_t s) {
  return rotation(mesh, s, s);
}

}  // namespace mr
