# Empty compiler generated dependencies file for e10_fastroute_phases.
# This may be replaced when dependencies are built.
