// Reporting helpers for the engine's five-phase wall-clock profile
// (Engine::set_phase_profiling / Engine::phase_profile). The sim layer
// only accumulates raw seconds; rendering as a table or JSON fields
// belongs here with the rest of the observability formatting.
#pragma once

#include <string>

#include "core/table.hpp"
#include "sim/engine.hpp"

namespace mr {

/// One row per phase: seconds, share of phased time, ns/step; then an
/// "other" row (injection + observer dispatch + bookkeeping) and a total.
Table phase_profile_table(const PhaseProfile& profile);

/// The profile as the inner fields of a JSON object (no surrounding
/// braces): "plan_out": s, ..., "update": s, "other": s,
/// "total": s, "steps": n. Used by the telemetry JSONL "phases" record.
std::string phase_profile_json_fields(const PhaseProfile& profile);

}  // namespace mr
