// Mesh and torus topology (paper §2, Figure 1).
//
// Columns are numbered west→east and rows south→north. Internally both are
// 0-based; the paper's 1-based "column 1..n" convention appears only in
// printed output. The network is the bidirected graph in which every node
// has an outlink and inlink per adjacent node (wrap-around links on the
// torus).
#pragma once

#include "topo/topology.hpp"

namespace mr {

class Mesh final : public Topology {
 public:
  /// An n×m mesh (width = columns, height = rows). `torus` adds wrap links.
  Mesh(std::int32_t width, std::int32_t height, bool torus = false)
      : Topology(width, height, torus) {}

  /// Square n×n mesh.
  static Mesh square(std::int32_t n, bool torus = false) {
    return Mesh(n, n, torus);
  }

  /// Legacy alias for mr::Delta (pre-Topology call sites).
  using Delta = mr::Delta;

  std::string name() const override { return is_torus() ? "torus" : "mesh"; }

  std::unique_ptr<Topology> clone() const override {
    return std::make_unique<Mesh>(*this);
  }

  /// Neighbour in direction d, or kInvalidNode if off the mesh edge.
  NodeId neighbor(NodeId id, Dir d) const override;

  /// Shortest-path displacement. On the torus the smaller wrap is chosen;
  /// an exact tie (even dimension, displacement exactly dim/2) reports the
  /// positive direction with the corresponding `*_tie` flag set, and
  /// profitable_dirs() then contains both directions of that dimension.
  mr::Delta delta(NodeId from, NodeId to) const override;
};

}  // namespace mr
