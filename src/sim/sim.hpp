// Abstract network-configuration interface shared by every step-engine
// implementation (paper §2).
//
// A Sim owns the pieces of the model every engine must represent —
// packets, per-node queues, node states, the step counter — and exposes
// the query/mutation surface that Algorithm implementations, adversary
// interceptors and observers are written against. Two engines implement
// it:
//   * Engine (sim/engine.hpp): the optimized O(moves) production engine
//     with incremental occupancy counters, cached profitable masks and a
//     sorted-active merge;
//   * ReferenceEngine (check/reference_engine.hpp): a deliberately naive
//     straight-from-the-paper implementation used for differential
//     verification.
// Because both derive from this class and share the state layout and the
// fingerprint() hash, a divergence between the two is necessarily a
// semantic difference in stepping, never an artefact of observation.
//
// Hot-path queries (packet, packets_at, node_state, occupancy) are
// concrete reads of the shared state and cost the same as before the
// split; only rarely-called or deliberately-divergent operations
// (occupancy per inlink queue, active-node enumeration, destination
// exchange) are virtual. profitable_mask() is concrete but honours
// `masks_cached_`: the optimized engine maintains the per-packet cache,
// the reference engine recomputes from the mesh on every call.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "core/assert.hpp"
#include "core/types.hpp"
#include "sim/fault.hpp"
#include "sim/node_queues.hpp"
#include "sim/packet.hpp"
#include "topo/topology.hpp"

namespace mr {

class StepObserver;
class Observer;
class LegacyObserverAdapter;

class Sim {
 public:
  Sim(const Topology& topo, int queue_capacity, QueueLayout layout,
      bool masks_cached);
  virtual ~Sim();

  Sim(const Sim&) = delete;
  Sim& operator=(const Sim&) = delete;

  // --- configuration -----------------------------------------------------
  /// The network being routed on. Historically this was the concrete Mesh;
  /// the accessor keeps its name so call sites read naturally, but any
  /// registered Topology may be behind it.
  const Topology& mesh() const { return *topo_; }
  const Topology& topology() const { return *topo_; }
  int queue_capacity() const { return queue_capacity_; }
  QueueLayout queue_layout() const { return layout_; }

  // --- observation -------------------------------------------------------
  /// Registers a digest observer: one on_step callback per executed step.
  void add_observer(StepObserver* observer);
  /// Registers a legacy per-event observer by wrapping it in a
  /// LegacyObserverAdapter (owned by the sim). Event order is identical
  /// to the historical inline dispatch.
  void add_observer(Observer* observer);

  // --- queries (valid during callbacks and between steps) ---------------
  /// Number of the step currently executing (1-based), or of the last
  /// executed step between steps; 0 before the first step.
  Step step() const { return step_; }

  std::size_t num_packets() const { return packets_.size(); }
  std::size_t delivered_count() const { return delivered_count_; }
  bool all_delivered() const { return delivered_count_ == packets_.size(); }
  bool stalled() const { return stalled_; }

  const Packet& packet(PacketId p) const { return packets_[p]; }
  /// Packets currently queued at node u, in queue order (arrival order).
  std::span<const PacketId> packets_at(NodeId u) const {
    return node_packets_.at(u);
  }
  int occupancy(NodeId u) const {
    return static_cast<int>(node_packets_.size(u));
  }
  /// Occupancy of one inlink queue (PerInlink layout only).
  virtual int occupancy(NodeId u, QueueTag tag) const = 0;
  int capacity_left(NodeId u) const {
    return queue_capacity_ - occupancy(u);
  }

  /// Nodes currently holding at least one packet, ascending by NodeId.
  /// Valid between steps and inside on_prepare / on_step callbacks.
  virtual std::span<const NodeId> active_nodes() const = 0;

  /// Profitable outlinks of packet p from its current node (§2's only
  /// destination-derived information). Reads the per-packet cache when the
  /// implementation maintains one, else recomputes from the mesh. While a
  /// fault schedule has active events the mask is further intersected with
  /// the node's availability mask, so minimal algorithms route around
  /// faults (or hold the packet) without ever seeing the fault state
  /// directly.
  DirMask profitable_mask(PacketId p) const {
    const Packet& pk = packets_[p];
    DirMask m = masks_cached_ ? pk.profitable
                              : topo_->profitable_dirs(pk.location, pk.dest);
    if (faults_active_ && pk.location != kInvalidNode)
      m &= fault_avail_[static_cast<std::size_t>(pk.location)];
    return m;
  }

  // --- fault injection ---------------------------------------------------
  /// Installs a timed link/node fault schedule (sim/fault.hpp). Must be
  /// set before prepare()/restore(); availability is re-derived from
  /// (schedule, step) at every window boundary, so the schedule is the
  /// only fault state and snapshots need no extra fields.
  void set_fault_schedule(FaultSchedule schedule);
  const FaultSchedule& fault_schedule() const { return fault_schedule_; }
  /// True while at least one scheduled fault window covers the current
  /// step.
  bool faults_active() const { return faults_active_; }
  /// Usable outlinks of node u under the current fault set: bit d set iff
  /// the link exists and the link and both endpoints are up (all zero for
  /// a down node). Falls back to the topology's existing links when no
  /// fault is active.
  DirMask available_mask(NodeId u) const;
  bool node_available(NodeId u) const {
    return !faults_active_ || node_down_[static_cast<std::size_t>(u)] == 0;
  }
  /// Scheduled moves dropped (fault_blocked) and injections deferred
  /// (fault_deferred) by faults during the current step; also surfaced per
  /// step in StepDigest and cumulatively in telemetry.
  std::int64_t fault_blocked_this_step() const {
    return fault_blocked_this_step_;
  }
  std::int64_t fault_deferred_this_step() const {
    return fault_deferred_this_step_;
  }

  std::uint64_t node_state(NodeId u) const { return node_state_[u]; }
  void set_node_state(NodeId u, std::uint64_t s) { node_state_[u] = s; }
  void set_packet_state(PacketId p, std::uint64_t s) {
    packets_[p].state = s;
  }

  // --- adversary interface (only legal from StepInterceptor) -----------
  /// Exchange of §2: swaps the destination addresses of a and b; all other
  /// packet information (state, source, position) is untouched.
  virtual void exchange_destinations(PacketId a, PacketId b) = 0;
  std::size_t exchange_count() const { return exchange_count_; }

  // --- metrics ----------------------------------------------------------
  /// Largest queue occupancy observed at any point after a transmission
  /// phase (per single queue in the PerInlink layout).
  int max_occupancy_seen() const { return max_occupancy_seen_; }
  std::int64_t total_moves() const { return total_moves_; }

  /// Order-sensitive 64-bit fingerprint of the full network configuration
  /// (node states + queued packets with all fields). Used by the Lemma 12
  /// replay-equivalence check and the differential fuzzer. With
  /// include_dest = false the destination fields are omitted: Lemma 11/12
  /// predict that the construction and the replay agree on everything
  /// except the not-yet-performed exchanges, which only permute
  /// destinations.
  std::uint64_t fingerprint(bool include_dest = true) const;

  /// Copies of all packet records (delivered ones included).
  const std::vector<Packet>& all_packets() const { return packets_; }

 protected:
  /// Validates and appends a new packet record (shared add_packet core).
  PacketId register_packet(NodeId source, NodeId dest, Step injected_at);

  /// Rebuilds the availability masks for step t. Cheap no-op unless t
  /// crossed a fault window boundary since the last call (epochs compare
  /// equal otherwise), so the schedule-free hot path pays one branch.
  /// Engines call this at prepare(), at the top of every step, and after
  /// restore().
  void apply_faults(Step t);

  /// Owned clone of the construction-time topology (Sim is non-copyable,
  /// so a unique_ptr suffices). Hot paths read the cached scalars below
  /// instead of chasing this pointer.
  std::unique_ptr<const Topology> topo_;
  /// Cached grid scalars (== topo_->num_nodes()/width()/height()/is_torus()).
  NodeId num_nodes_;
  std::int32_t topo_width_;
  std::int32_t topo_height_;
  bool wraps_;
  int queue_capacity_;
  QueueLayout layout_;
  /// True when the implementation maintains Packet::profitable; false
  /// makes profitable_mask() recompute from the mesh on every call.
  bool masks_cached_;

  std::vector<Packet> packets_;
  /// Per-node queues in one flat slab (structure-of-arrays; see
  /// node_queues.hpp). Stride = layout capacity + one arrival per inlink of
  /// transient headroom for phase (d), whose §2 capacity check runs after
  /// the transmissions.
  NodeQueues node_packets_;
  std::vector<std::uint64_t> node_state_;

  std::vector<StepObserver*> observers_;
  /// Adapters created by add_observer(Observer*); entries in observers_
  /// may point at these.
  std::vector<std::unique_ptr<LegacyObserverAdapter>> adapters_;

  Step step_ = 0;
  std::size_t delivered_count_ = 0;
  bool stalled_ = false;
  std::size_t exchange_count_ = 0;
  bool in_interceptor_ = false;

  // --- fault state (derived from fault_schedule_ by apply_faults) -------
  FaultSchedule fault_schedule_;
  /// Per-node usable-outlink masks; sized only while faults_active_.
  std::vector<DirMask> fault_avail_;
  std::vector<std::uint8_t> node_down_;
  bool faults_active_ = false;
  /// Epoch of the last apply_faults rebuild; -1 forces the first build.
  std::int64_t fault_epoch_ = -1;
  std::int64_t fault_blocked_this_step_ = 0;
  std::int64_t fault_deferred_this_step_ = 0;

  int max_occupancy_seen_ = 0;
  std::int64_t total_moves_ = 0;
};

}  // namespace mr
