# Empty compiler generated dependencies file for e07_hh_lb.
# This may be replaced when dependencies are built.
