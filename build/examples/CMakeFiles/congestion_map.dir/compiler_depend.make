# Empty compiler generated dependencies file for congestion_map.
# This may be replaced when dependencies are built.
