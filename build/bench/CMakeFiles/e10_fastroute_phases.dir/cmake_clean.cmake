file(REMOVE_RECURSE
  "CMakeFiles/e10_fastroute_phases.dir/e10_fastroute_phases.cpp.o"
  "CMakeFiles/e10_fastroute_phases.dir/e10_fastroute_phases.cpp.o.d"
  "e10_fastroute_phases"
  "e10_fastroute_phases.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e10_fastroute_phases.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
