file(REMOVE_RECURSE
  "CMakeFiles/mr_topo.dir/mesh.cpp.o"
  "CMakeFiles/mr_topo.dir/mesh.cpp.o.d"
  "libmr_topo.a"
  "libmr_topo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mr_topo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
