
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/patterns.cpp" "src/workload/CMakeFiles/mr_workload.dir/patterns.cpp.o" "gcc" "src/workload/CMakeFiles/mr_workload.dir/patterns.cpp.o.d"
  "/root/repo/src/workload/permutation.cpp" "src/workload/CMakeFiles/mr_workload.dir/permutation.cpp.o" "gcc" "src/workload/CMakeFiles/mr_workload.dir/permutation.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/mr_core.dir/DependInfo.cmake"
  "/root/repo/build/src/topo/CMakeFiles/mr_topo.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
