#include "telemetry/phase_profile.hpp"

#include <sstream>

#include "core/json_min.hpp"

namespace mr {

Table phase_profile_table(const PhaseProfile& profile) {
  Table table({"phase", "seconds", "share %", "ns/step"});
  const double phased = profile.phase_seconds_sum();
  const double steps =
      profile.steps > 0 ? static_cast<double>(profile.steps) : 1.0;
  for (int i = 0; i < kNumPhases; ++i) {
    const double s = profile.seconds[i];
    table.row()
        .add(phase_name(static_cast<StepPhase>(i)))
        .add(s, 6)
        .add(phased > 0 ? 100.0 * s / phased : 0.0, 1)
        .add(1e9 * s / steps, 0);
  }
  const double other = profile.total_seconds - phased;
  table.row().add("other").add(other, 6).add("").add(1e9 * other / steps, 0);
  table.row()
      .add("total")
      .add(profile.total_seconds, 6)
      .add("")
      .add(1e9 * profile.total_seconds / steps, 0);
  return table;
}

std::string phase_profile_json_fields(const PhaseProfile& profile) {
  std::ostringstream os;
  for (int i = 0; i < kNumPhases; ++i)
    os << "\"" << phase_name(static_cast<StepPhase>(i))
       << "\": " << json::number_to_string(profile.seconds[i]) << ", ";
  os << "\"other\": "
     << json::number_to_string(profile.total_seconds -
                               profile.phase_seconds_sum())
     << ", \"total\": " << json::number_to_string(profile.total_seconds)
     << ", \"steps\": " << profile.steps;
  return os.str();
}

}  // namespace mr
