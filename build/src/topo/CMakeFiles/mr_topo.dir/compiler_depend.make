# Empty compiler generated dependencies file for mr_topo.
# This may be replaced when dependencies are built.
