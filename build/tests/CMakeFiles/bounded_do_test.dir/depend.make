# Empty dependencies file for bounded_do_test.
# This may be replaced when dependencies are built.
