# Empty dependencies file for torus_hh.
# This may be replaced when dependencies are built.
