# Empty dependencies file for csv_export_test.
# This may be replaced when dependencies are built.
