// The scenario layer: registry lookup, spec → RunResult round-trip, the
// JSON backend (schema validation), and determinism of parallel sweeps.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/assert.hpp"
#include "core/json_min.hpp"
#include "harness/scenario.hpp"
#include "scenarios.hpp"
#include "topo/mesh.hpp"
#include "workload/permutation.hpp"

namespace mr {
namespace {

ScenarioSpec tiny_spec(const std::string& id, const std::string& label,
                       int n = 8) {
  ScenarioSpec spec;
  spec.id = id;
  spec.label = label;
  spec.title = "tiny round-trip";
  spec.paper_ref = "test";
  spec.body = [n](ScenarioReport& ctx) {
    RunSpec rs;
    rs.width = rs.height = n;
    rs.queue_capacity = 2;
    rs.algorithm = "bounded-dimension-order";
    const Mesh mesh = Mesh::square(n);
    const RunResult r =
        ctx.run("transpose", rs, transpose(mesh));
    Table t({"steps", "delivered"});
    t.row().add(r.steps).add(r.all_delivered ? "yes" : "no");
    ctx.table(t);
    ctx.note("done");
    ctx.check("all-delivered", r.all_delivered);
  };
  spec.expect = [](const ScenarioResult& result) {
    return !result.runs.empty() && result.runs[0].run.steps > 0;
  };
  return spec;
}

TEST(ScenarioRegistry, LookupByIdAndLabelCaseInsensitive) {
  ScenarioRegistry registry;
  registry.add(tiny_spec("T01", "tiny-one"));
  EXPECT_NE(registry.find("T01"), nullptr);
  EXPECT_NE(registry.find("t01"), nullptr);
  EXPECT_NE(registry.find("tiny-one"), nullptr);
  EXPECT_NE(registry.find("TINY-ONE"), nullptr);
  EXPECT_EQ(registry.find("T02"), nullptr);
  EXPECT_EQ(registry.find(""), nullptr);
  EXPECT_EQ(registry.find("T01")->label, "tiny-one");
}

TEST(ScenarioRegistry, RejectsDuplicatesAndEmpty) {
  ScenarioRegistry registry;
  registry.add(tiny_spec("T01", "tiny-one"));
  EXPECT_THROW(registry.add(tiny_spec("T01", "other-label")),
               InvariantViolation);
  EXPECT_THROW(registry.add(tiny_spec("T02", "tiny-one")),
               InvariantViolation);
  EXPECT_THROW(registry.add(tiny_spec("", "x")), InvariantViolation);
  ScenarioSpec no_body;
  no_body.id = "T03";
  no_body.label = "no-body";
  EXPECT_THROW(registry.add(std::move(no_body)), InvariantViolation);
  EXPECT_EQ(registry.size(), 1u);
}

TEST(ScenarioRegistry, BuiltinSuiteHasAllSixteenExperiments) {
  const ScenarioRegistry& registry = scenarios::builtin();
  EXPECT_GE(registry.size(), 16u);
  for (int i = 1; i <= 16; ++i) {
    char id[8];
    std::snprintf(id, sizeof id, "E%02d", i);
    EXPECT_NE(registry.find(id), nullptr) << id;
  }
  // labels are aliases for the same specs
  EXPECT_EQ(registry.find("main-lower-bound"), registry.find("E01"));
  EXPECT_EQ(registry.find("engine-throughput"), registry.find("E13"));
}

TEST(Scenario, RoundTripCapturesRunsTablesChecksAndExpect) {
  const ScenarioSpec spec = tiny_spec("T01", "tiny-one");
  const ScenarioResult result = run_scenario(spec, {});
  EXPECT_FALSE(result.errored) << result.error;
  ASSERT_EQ(result.runs.size(), 1u);
  EXPECT_EQ(result.runs[0].label, "transpose");
  EXPECT_GT(result.runs[0].run.steps, 0);
  EXPECT_TRUE(result.runs[0].run.all_delivered);
  EXPECT_GE(result.runs[0].run.latency.max, result.runs[0].run.latency.p99);
  ASSERT_EQ(result.tables.size(), 1u);
  // body check + the spec's expect predicate, in order
  ASSERT_EQ(result.checks.size(), 2u);
  EXPECT_EQ(result.checks[0].name, "all-delivered");
  EXPECT_EQ(result.checks[1].name, "expected-bound");
  EXPECT_TRUE(result.passed());
  // markdown backend: header + items in emission order
  const std::string md = result.to_markdown();
  EXPECT_NE(md.find("## T01: tiny round-trip"), std::string::npos);
  EXPECT_NE(md.find("(paper: test)"), std::string::npos);
  EXPECT_NE(md.find("| steps | delivered |"), std::string::npos);
  EXPECT_NE(md.find("done\n"), std::string::npos);
}

TEST(Scenario, BodyExceptionIsCapturedNotPropagated) {
  ScenarioSpec spec;
  spec.id = "T99";
  spec.label = "throws";
  spec.title = "throws";
  spec.paper_ref = "test";
  spec.body = [](ScenarioReport&) {
    throw std::runtime_error("body blew up");
  };
  const ScenarioResult result = run_scenario(spec, {});
  EXPECT_TRUE(result.errored);
  EXPECT_EQ(result.error, "body blew up");
  EXPECT_FALSE(result.passed());
  EXPECT_NE(result.to_markdown().find("ERROR: body blew up"),
            std::string::npos);
}

TEST(Scenario, JsonBackendValidatesAgainstSchema) {
  const ScenarioResult result = run_scenario(tiny_spec("T01", "tiny-one"), {});
  const std::string dir = ::testing::TempDir();
  const std::string path = write_scenario_json(result, dir);
  ASSERT_FALSE(path.empty());
  EXPECT_NE(path.find("t01.json"), std::string::npos);

  std::string error;
  EXPECT_TRUE(validate_scenario_json(path, &error)) << error;

  // And the document parses to the fields we wrote.
  std::ifstream in(path);
  std::stringstream buf;
  buf << in.rdbuf();
  std::string parse_error;
  const auto doc = json::parse(buf.str(), &parse_error);
  ASSERT_TRUE(doc.has_value()) << parse_error;
  EXPECT_EQ(doc->find("schema")->string, kScenarioJsonSchema);
  EXPECT_EQ(doc->find("id")->string, "T01");
  EXPECT_TRUE(doc->find("passed")->boolean);
  ASSERT_EQ(doc->find("runs")->array.size(), 1u);
  EXPECT_EQ(doc->find("tables")->array.size(), 1u);
  // Every run record declares how the engine actually stepped.
  const json::Value* mode = doc->find("runs")->array[0].find("engine_mode");
  ASSERT_NE(mode, nullptr);
  EXPECT_EQ(mode->string, "sequential");
}

TEST(Scenario, ValidationRejectsCorruptDocuments) {
  const std::string dir = ::testing::TempDir();
  std::string error;

  const std::string missing = dir + "/does_not_exist.json";
  EXPECT_FALSE(validate_scenario_json(missing, &error));

  const std::string bad_schema = dir + "/bad_schema.json";
  {
    std::ofstream out(bad_schema);
    out << "{\"schema\": \"something-else/1\"}";
  }
  EXPECT_FALSE(validate_scenario_json(bad_schema, &error));
  EXPECT_NE(error.find("schema"), std::string::npos);

  const std::string not_json = dir + "/not_json.json";
  {
    std::ofstream out(not_json);
    out << "## E01: this is markdown";
  }
  EXPECT_FALSE(validate_scenario_json(not_json, &error));
}

TEST(Scenario, ParallelSweepIsDeterministicAcrossJobCounts) {
  // Same specs through 1 worker and several workers: position-addressed
  // results must render identically (markdown and JSON).
  std::vector<ScenarioSpec> specs;
  for (int i = 0; i < 6; ++i)
    specs.push_back(tiny_spec("T0" + std::to_string(i),
                              "tiny-" + std::to_string(i), 6 + i));
  std::vector<const ScenarioSpec*> ptrs;
  for (const ScenarioSpec& s : specs) ptrs.push_back(&s);

  ScenarioOptions serial;
  serial.jobs = 1;
  ScenarioOptions wide;
  wide.jobs = 4;
  const std::vector<ScenarioResult> a = run_scenarios(ptrs, serial);
  const std::vector<ScenarioResult> b = run_scenarios(ptrs, wide);
  ASSERT_EQ(a.size(), ptrs.size());
  ASSERT_EQ(b.size(), ptrs.size());
  for (std::size_t i = 0; i < ptrs.size(); ++i) {
    EXPECT_EQ(a[i].id, specs[i].id);  // position-addressed
    EXPECT_EQ(a[i].to_markdown(), b[i].to_markdown()) << specs[i].id;
    EXPECT_EQ(a[i].to_json(), b[i].to_json()) << specs[i].id;
  }
}

TEST(Scenario, ScaleNamesRoundTrip) {
  EXPECT_STREQ(scale_name(Scale::Small), "small");
  EXPECT_STREQ(scale_name(Scale::Default), "default");
  EXPECT_STREQ(scale_name(Scale::Large), "large");
}

}  // namespace
}  // namespace mr
