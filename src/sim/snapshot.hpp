// Versioned engine checkpoints: the meshroute-snapshot/1 format.
//
// A snapshot captures everything Engine needs to continue a run
// bit-identically from a step boundary: the full packet records (the
// NodeQueues SoA slab is rebuilt from the per-packet location/slot
// fields), per-node algorithm state, the pending/future-dated injection
// buffer, and the step/stall/metric counters. Derived structures (queue
// slabs, occupancy counters, active lists, cached profitable masks) are
// reconstructed on restore, so the serialized form stays minimal and
// canonical.
//
// Wire format (kSnapshotMagic = "meshroute-snapshot/1"):
//   line 1:  the magic string
//   line 2:  one JSON object — identity header (topology, dimensions,
//            algorithm, k, layout, shards, step, element counts), the
//            payload byte count + FNV-1a checksum, and an "aux" object of
//            opaque string blobs for co-checkpointed components (traffic
//            source RNG, pump window, phase accounting)
//   rest:    little-endian binary payload (packets, node states,
//            injections, counters)
// Strict validation: a corrupt or truncated file raises
// SnapshotError{Format}, an identity mismatch against the restoring
// engine raises SnapshotError{Mismatch} naming the field.
//
// Files are written atomically (tmp + rename), so a SIGKILL mid-write
// never leaves a torn checkpoint behind — the previous one survives.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "core/types.hpp"
#include "sim/packet.hpp"

namespace mr {

inline constexpr const char* kSnapshotMagic = "meshroute-snapshot/1";

/// Typed snapshot failure. Io: the file cannot be read/written. Format:
/// the bytes are not a well-formed meshroute-snapshot/1 (bad magic,
/// malformed header, truncated or checksum-failing payload). Mismatch:
/// well-formed, but describes a different run configuration than the
/// engine it is being restored into (topology/dimensions/algorithm/k/
/// layout/shards).
class SnapshotError : public std::runtime_error {
 public:
  enum class Kind { Io, Format, Mismatch };

  SnapshotError(Kind kind, const std::string& message)
      : std::runtime_error(message), kind_(kind) {}

  Kind kind() const { return kind_; }

 private:
  Kind kind_;
};

/// Run identity stamped into every snapshot; Engine::restore validates all
/// of it against the target engine before touching any state.
struct SnapshotMeta {
  std::string topology;  ///< Topology::name(), e.g. "mesh", "torus", "cmesh-4"
  std::int32_t width = 0;
  std::int32_t height = 0;
  std::string algorithm;  ///< Algorithm::name()
  int queue_capacity = 1;
  QueueLayout layout = QueueLayout::Central;
  int shards = 1;  ///< Engine::shard_count() (post-clamp)
  Step step = 0;   ///< step the snapshot was taken at
};

/// In-memory form of one checkpoint. Engine::snapshot() fills the engine
/// state; callers may attach auxiliary blobs (Snapshottable components)
/// before serializing. The aux entries ride in the JSON header and are
/// opaque to the engine.
struct EngineSnapshot {
  SnapshotMeta meta;

  /// Every packet record, delivered ones included, indexed by PacketId.
  /// Packet::profitable is derived state and is recomputed on restore.
  std::vector<Packet> packets;
  std::vector<std::uint64_t> node_state;

  /// Injection buffer: (step, packet) ascending, with the consumed prefix.
  std::vector<std::pair<Step, PacketId>> injections;
  std::uint64_t injection_cursor = 0;
  /// Packets due at or before meta.step whose source queue was full.
  std::vector<PacketId> waiting_injections;

  std::uint64_t delivered_count = 0;
  bool stalled = false;
  std::uint64_t exchange_count = 0;
  int max_occupancy_seen = 0;
  std::int64_t total_moves = 0;
  Step stall_run = 0;

  /// Opaque co-checkpointed component state (key -> blob), e.g.
  /// "source" (BernoulliSource RNG + window), "pump" (TrafficPump
  /// counters). Carried verbatim in the header.
  std::vector<std::pair<std::string, std::string>> aux;

  const std::string* find_aux(const std::string& key) const {
    for (const auto& [k, v] : aux)
      if (k == key) return &v;
    return nullptr;
  }
  void set_aux(const std::string& key, std::string value) {
    for (auto& [k, v] : aux)
      if (k == key) {
        v = std::move(value);
        return;
      }
    aux.emplace_back(key, std::move(value));
  }
};

/// Serializes to the meshroute-snapshot/1 byte form.
std::string serialize_snapshot(const EngineSnapshot& snap);

/// Parses the byte form. Throws SnapshotError{Format} on anything that is
/// not a well-formed, checksum-clean meshroute-snapshot/1.
EngineSnapshot parse_snapshot(std::string_view bytes);

/// Atomic file round-trip (write = tmp + rename). read throws
/// SnapshotError{Io} when the file cannot be opened and {Format} per
/// parse_snapshot; write throws SnapshotError{Io} on filesystem failure.
void write_snapshot_file(const std::string& path, const EngineSnapshot& snap);
EngineSnapshot read_snapshot_file(const std::string& path);

/// Mixin for components whose internal state must ride along in a
/// checkpoint (traffic sources: RNG + emission window; see
/// traffic/source.hpp). save_state() returns an opaque blob;
/// restore_state() must accept exactly what save_state() produced and
/// throws SnapshotError{Format} otherwise. A component restored from its
/// own blob continues bit-identically.
class Snapshottable {
 public:
  virtual ~Snapshottable() = default;
  virtual std::string save_state() const = 0;
  virtual void restore_state(const std::string& blob) = 0;
};

/// Where (and how often) a run persists checkpoints. Shared by the batch
/// harness (RunSpec), the steady-state runner (SteadyStateSpec) and the
/// daemon. `key` names the run inside `dir`: the engine snapshot lives at
/// <dir>/<key>.ckpt and the finished-result record at
/// <dir>/<key>.done.json. A run started with an existing store resumes:
/// a .done.json short-circuits to the recorded result, a .ckpt restores
/// the engine and continues.
struct CheckpointSpec {
  std::string dir;   ///< empty = checkpointing disabled
  Step every = 256;  ///< snapshot interval in steps (>= 1)
  std::string key;   ///< file stem, unique per run within dir

  bool enabled() const { return !dir.empty() && !key.empty(); }
  std::string snapshot_path() const { return dir + "/" + key + ".ckpt"; }
  std::string done_path() const { return dir + "/" + key + ".done.json"; }
};

/// Atomic small-file helpers for checkpoint stores (tmp + rename, like
/// write_snapshot_file). read returns false when absent/unreadable; write
/// throws SnapshotError{Io} on failure and creates `dir` components of
/// the path as needed.
bool read_text_file(const std::string& path, std::string* out);
void write_text_file_atomic(const std::string& path,
                            const std::string& content);

}  // namespace mr
