// E19 — cross-topology saturation matrix: the same open-loop uniform
// Bernoulli workload pushed to saturation on every registered network at
// equal terminal count. The torus's wrap links halve average distance, so
// its saturation rate is at least the mesh's; the concentrated mesh funnels
// c terminals through each router port, so at equal terminal count its
// per-terminal saturation cannot beat the unconcentrated mesh. The §5c
// torus lower-bound construction then runs end-to-end as a first-class
// adversarial instance on the 2m×2m torus, tying the topology layer back
// to the paper's Ω(n²/k²) certificate.
#include <string>
#include <vector>

#include "harness/sweep.hpp"
#include "lower_bound/factory.hpp"
#include "routing/registry.hpp"
#include "scenarios.hpp"
#include "traffic/saturation.hpp"

namespace mr::scenarios {

void register_e19(ScenarioRegistry& registry) {
  ScenarioSpec spec;
  spec.id = "E19";
  spec.label = "topology-matrix";
  spec.title = "cross-topology saturation at equal terminal count";
  spec.paper_ref = "§5 'The Torus'; Theorem 15 (k-bounded queues)";
  spec.body = [](ScenarioReport& ctx) {
    struct Net {
      std::string topology;  ///< registry name
      int width = 0, height = 0;
    };
    // 256 terminals each: 16×16 routers at c=1, 8×8 routers at c=4.
    std::vector<Net> nets = {{"mesh", 16, 16},
                             {"torus", 16, 16},
                             {"cmesh-4", 8, 8}};
    const int k = 2;
    Step warmup = 128, measure = 512;
    if (ctx.scale() == Scale::Small) {
      // 64 terminals each.
      nets = {{"mesh", 8, 8}, {"torus", 8, 8}, {"cmesh-4", 4, 4}};
      warmup = 64;
      measure = 192;
    }
    const std::string algorithm = "bounded-dimension-order";
    const std::uint64_t seed = ctx.seed_or(1900);

    // One bisection per topology; same traffic seed everywhere so the
    // saturation rates compare the networks, not the streams.
    const auto results =
        sweep<SaturationResult>(nets.size(), [&](std::size_t i) {
          SaturationSpec search;
          search.base.topology = nets[i].topology;
          search.base.width = nets[i].width;
          search.base.height = nets[i].height;
          search.base.queue_capacity = k;
          search.base.algorithm = algorithm;
          search.base.traffic.pattern = TrafficPattern::UniformRandom;
          search.base.traffic.seed = seed;
          search.base.warmup_steps = warmup;
          search.base.measure_steps = measure;
          search.resolution = 1.0 / 256.0;
          return find_saturation_rate(search);
        });

    Table table({"topology", "routers", "terminals", "saturation rate",
                 "first unsustainable", "probes"});
    std::vector<double> sat(nets.size(), 0.0);
    for (std::size_t i = 0; i < nets.size(); ++i) {
      const SaturationResult& r = results[i];
      sat[i] = r.saturation_rate;
      const std::int64_t routers =
          std::int64_t(nets[i].width) * nets[i].height;
      const std::int64_t terminals =
          nets[i].topology.rfind("cmesh", 0) == 0 ? routers * 4 : routers;
      table.row()
          .add(nets[i].topology)
          .add(std::to_string(nets[i].width) + "x" +
               std::to_string(nets[i].height))
          .add(terminals)
          .add(r.saturation_rate, 4)
          .add(r.first_unsustainable, 4)
          .add(static_cast<std::int64_t>(r.probes.size()));
    }
    ctx.table(table);
    ctx.note(
        "equal terminal count everywhere (" + std::to_string(nets[0].width) +
        "x" + std::to_string(nets[0].height) +
        " unconcentrated = half-size cmesh-4): wrap links raise sustainable "
        "per-terminal load, concentration lowers it — the router grid, not "
        "the terminal count, sets aggregate bandwidth.");
    const double tol = 1.0 / 256.0;  // one bisection step of slack
    ctx.check("mesh-saturation-positive", sat[0] > 0,
              "mesh saturation " + std::to_string(sat[0]));
    ctx.check("torus-saturation-positive", sat[1] > 0,
              "torus saturation " + std::to_string(sat[1]));
    ctx.check("cmesh-saturation-leq-mesh", sat[2] <= sat[0] + tol,
              "cmesh-4 " + std::to_string(sat[2]) + " vs mesh " +
                  std::to_string(sat[0]));

    // Even-size tori under-saturate relative to their wrap advantage: a
    // destination at offset exactly n/2 in a dimension is a wrap tie, and
    // the deterministic tie-break sends ALL tie traffic East/North (the
    // convention every router shares for cross-engine determinism). At
    // 8×8 that is 1/8 of each dimension's traffic concentrated one way —
    // eastbound links carry 5/3× the westbound path load — which is why
    // the small-scale matrix above can show torus < mesh. Odd sizes have
    // no wrap ties and no skew, so there the wrap advantage must show:
    // pinned by the odd-grid control below.
    {
      const std::int32_t odd = 7;
      const auto odd_sat = [&](const std::string& topology) {
        SaturationSpec search;
        search.base.topology = topology;
        search.base.width = odd;
        search.base.height = odd;
        search.base.queue_capacity = k;
        search.base.algorithm = algorithm;
        search.base.traffic.pattern = TrafficPattern::UniformRandom;
        search.base.traffic.seed = seed;
        search.base.warmup_steps = warmup;
        search.base.measure_steps = measure;
        search.resolution = 1.0 / 256.0;
        return find_saturation_rate(search).saturation_rate;
      };
      const double mesh_odd = odd_sat("mesh");
      const double torus_odd = odd_sat("torus");
      ctx.note("odd-grid control (7x7, no wrap ties): mesh saturates at " +
               std::to_string(mesh_odd) + ", torus at " +
               std::to_string(torus_odd) +
               " — without the even-size East/North tie skew the torus's "
               "wrap links cannot hurt saturation.");
      ctx.check("torus-saturation-geq-mesh-on-odd-grid",
                torus_odd >= mesh_odd - tol,
                "torus " + std::to_string(torus_odd) + " vs mesh " +
                    std::to_string(mesh_odd) +
                    " at 7x7 (wrap-tie skew absent)");
    }

    // Wrap links halve the worst-case and cut the average distance, so at
    // a common sub-saturation load the torus delivers faster than the
    // mesh even though its saturation point (dimension-order link usage)
    // need not be higher.
    const auto latency_at = [&](const Net& net) {
      SteadyStateSpec run;
      run.topology = net.topology;
      run.width = net.width;
      run.height = net.height;
      run.queue_capacity = k;
      run.algorithm = algorithm;
      run.traffic.pattern = TrafficPattern::UniformRandom;
      run.traffic.rate = 0.05;
      run.traffic.seed = seed;
      run.warmup_steps = warmup;
      run.measure_steps = measure;
      return run_steady_state(run);
    };
    const SteadyStateResult mesh_low = latency_at(nets[0]);
    const SteadyStateResult torus_low = latency_at(nets[1]);
    ctx.check("torus-latency-leq-mesh-at-low-load",
              torus_low.latency.p50 <= mesh_low.latency.p50,
              "p50 torus " + std::to_string(torus_low.latency.p50) +
                  " vs mesh " + std::to_string(mesh_low.latency.p50) +
                  " at rate 0.05");

    // §5c as a first-class adversarial instance: the factory builds the
    // quadrant-confined permutation on the 2m×2m torus and certifies
    // ⌊l⌋·dn steps; the harness then routes it on the registry torus and
    // must need at least that long.
    const std::string dx = dx_minimal_algorithm_names().front();
    const AdversarialInstance inst =
        adversarial_instance("torus", 120, 1, dx);
    ctx.check("torus-lb-instance-valid", inst.valid,
              inst.valid ? "" : "n=120 k=1 is below the construction floor");
    if (inst.valid) {
      RunSpec run;
      run.topology = inst.topology;
      run.width = inst.width;
      run.height = inst.height;
      run.queue_capacity = 1;
      run.algorithm = dx;
      const RunResult r =
          ctx.run("torus_lb_n120_k1_" + dx, run, inst.permutation);
      ctx.check("torus-lb-certificate-holds",
                r.all_delivered && r.steps >= inst.certified_steps,
                "ran " + std::to_string(r.steps) + " steps vs certified " +
                    std::to_string(inst.certified_steps));
    }
  };
  registry.add(std::move(spec));
}

}  // namespace mr::scenarios
