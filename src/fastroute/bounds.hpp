// Analytical bounds of §6 (Lemmas 21–33, Theorem 34): queue-size and
// per-phase duration formulas, evaluated exactly so that the simulator can
// assert against them.
#pragma once

#include <cstdint>

#include "core/types.hpp"

namespace mr {

struct FastRouteBounds {
  /// q = 17·(27−3) = 408 in the baseline analysis; the §6.4 improvement
  /// note uses q = 17·(9−3) = 102 for iterations j ≥ 1.
  int q = 408;

  /// Lemma 29: the March takes at most q·d − 1 steps.
  Step march_steps(std::int64_t d) const { return q * d - 1; }

  /// Lemma 30: Sort and Smooth takes at most 2·((d−1) + q·d) steps.
  Step sort_smooth_steps(std::int64_t d) const {
    return 2 * ((d - 1) + q * d);
  }

  /// Lemma 31: Horizontal Balancing takes at most 3h − 4 steps on an h×h
  /// tile.
  static Step balancing_steps(std::int64_t h) { return 3 * h - 4; }

  /// Lemma 32: the dimension-order base case takes at most 14 steps.
  static constexpr Step base_case_steps() { return 14; }

  /// Lemma 21/22/28: peak queue occupancies.
  int march_queue_bound() const { return q + 1; }
  int sort_smooth_queue_bound() const { return 2 * q + 1; }
  int total_queue_bound() const { return 2 * q + 18; }  // Lemma 28

  /// Theorem 34: whole-algorithm step bound (baseline 972n; §6.4's
  /// improved analysis gives 564n).
  static Step theorem34_steps(std::int64_t n) { return 972 * n; }
  static Step improved_steps(std::int64_t n) { return 564 * n; }
};

}  // namespace mr
