// Topology registry + interface-contract coverage: a reusable property
// suite run against EVERY catalog entry (so a newly registered network
// gets the full battery for free), plus the factory's error paths.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "topo/mesh.hpp"
#include "topo/registry.hpp"
#include "topo/topology.hpp"

namespace mr {
namespace {

// ---------------------------------------------------------------------------
// Reusable property suite: the invariants every Topology must satisfy.
// Exercised exhaustively on a small non-square grid so row/column roles
// cannot be silently swapped.
// ---------------------------------------------------------------------------

void check_grid_contract(const Topology& t) {
  EXPECT_EQ(t.num_nodes(), t.width() * t.height());
  for (NodeId id = 0; id < t.num_nodes(); ++id) {
    const Coord c = t.coord_of(id);
    EXPECT_TRUE(t.contains(c));
    EXPECT_EQ(t.id_of(c), id) << t.name();
  }
  EXPECT_EQ(static_cast<std::int32_t>(t.all_nodes().size()), t.num_nodes());
}

void check_neighbor_contract(const Topology& t) {
  for (NodeId u = 0; u < t.num_nodes(); ++u) {
    for (Dir d : kAllDirs) {
      const NodeId v = t.neighbor(u, d);
      if (v == kInvalidNode) continue;
      EXPECT_GE(v, 0);
      EXPECT_LT(v, t.num_nodes());
      EXPECT_NE(v, u) << t.name() << ": self-loop at " << u;
      // Links are symmetric: the opposite port of the neighbor points back.
      EXPECT_EQ(t.neighbor(v, opposite(d)), u)
          << t.name() << ": " << u << " -" << dir_name(d) << "-> " << v;
      EXPECT_EQ(t.distance(u, v), 1)
          << t.name() << ": link " << u << "->" << v << " not distance 1";
    }
  }
}

void check_distance_contract(const Topology& t) {
  for (NodeId a = 0; a < t.num_nodes(); ++a) {
    for (NodeId b = 0; b < t.num_nodes(); ++b) {
      const Delta d = t.delta(a, b);
      const std::int32_t dist = t.distance(a, b);
      EXPECT_EQ(dist, std::abs(d.east) + std::abs(d.north)) << t.name();
      EXPECT_EQ(dist, t.distance(b, a)) << t.name() << ": asymmetric";
      EXPECT_EQ(dist == 0, a == b) << t.name();
    }
  }
}

void check_profitable_contract(const Topology& t) {
  for (NodeId a = 0; a < t.num_nodes(); ++a) {
    for (NodeId b = 0; b < t.num_nodes(); ++b) {
      const DirMask mask = t.profitable_dirs(a, b);
      for (Dir d : kAllDirs) {
        const NodeId nb = t.neighbor(a, d);
        if (nb == kInvalidNode) {
          EXPECT_FALSE(mask_has(mask, d))
              << t.name() << ": profitable dir with no link";
          continue;
        }
        // Profitable ⟺ the hop lands strictly closer.
        EXPECT_EQ(mask_has(mask, d), t.distance(nb, b) < t.distance(a, b))
            << t.name() << ": " << a << "->" << b << " dir " << dir_name(d);
      }
      if (a == b) EXPECT_EQ(mask, DirMask{0}) << t.name();
    }
  }
}

void check_terminal_contract(const Topology& t) {
  EXPECT_GE(t.concentration(), 1);
  EXPECT_EQ(t.num_terminals(), t.num_nodes() * t.concentration());
  for (NodeId r = 0; r < t.num_nodes(); ++r) {
    for (std::int32_t s = 0; s < t.concentration(); ++s) {
      const std::int32_t term = t.terminal_of(r, s);
      EXPECT_GE(term, 0);
      EXPECT_LT(term, t.num_terminals());
      EXPECT_EQ(t.terminal_router(term), r) << t.name();
      // Slots of one router are contiguous, slot 0 first (the traffic
      // layer's slot_of() arithmetic depends on this).
      EXPECT_EQ(term, t.terminal_of(r, 0) + s) << t.name();
    }
  }
}

void check_clone_contract(const Topology& t) {
  const std::unique_ptr<Topology> copy = t.clone();
  ASSERT_NE(copy, nullptr);
  EXPECT_EQ(copy->name(), t.name());
  EXPECT_EQ(copy->width(), t.width());
  EXPECT_EQ(copy->height(), t.height());
  EXPECT_EQ(copy->concentration(), t.concentration());
  for (NodeId u = 0; u < t.num_nodes(); ++u)
    for (Dir d : kAllDirs)
      EXPECT_EQ(copy->neighbor(u, d), t.neighbor(u, d)) << t.name();
}

void run_property_suite(const Topology& t) {
  check_grid_contract(t);
  check_neighbor_contract(t);
  check_distance_contract(t);
  check_profitable_contract(t);
  check_terminal_contract(t);
  check_clone_contract(t);
}

TEST(TopologyProperties, EveryCatalogEntrySatisfiesTheContract) {
  for (const TopologyInfo& info : topology_catalog()) {
    SCOPED_TRACE(info.name);
    const std::unique_ptr<Topology> t = make_topology(info.name, 6, 4);
    ASSERT_NE(t, nullptr);
    run_property_suite(*t);
  }
}

TEST(TopologyProperties, CatalogMetadataMatchesInstances) {
  for (const TopologyInfo& info : topology_catalog()) {
    const std::unique_ptr<Topology> t = make_topology(info.name, 6, 4);
    EXPECT_EQ(t->name(), info.name);
    EXPECT_EQ(t->is_torus(), info.wraps) << info.name;
    EXPECT_EQ(t->concentration(), info.concentration) << info.name;
    EXPECT_FALSE(info.description.empty()) << info.name;
  }
}

// ---------------------------------------------------------------------------
// Registry/factory behaviour.
// ---------------------------------------------------------------------------

TEST(TopoRegistry, KnownNames) {
  EXPECT_TRUE(known_topology("mesh"));
  EXPECT_TRUE(known_topology("torus"));
  EXPECT_TRUE(known_topology("cmesh-4"));
  EXPECT_TRUE(known_topology("cmesh-2"));
  EXPECT_FALSE(known_topology("hypercube"));
  EXPECT_FALSE(known_topology(""));
  EXPECT_FALSE(known_topology("MESH"));  // names are case-sensitive
}

TEST(TopoRegistry, NamesMatchCatalogOrder) {
  const std::vector<std::string> names = topology_names();
  const std::vector<TopologyInfo>& catalog = topology_catalog();
  ASSERT_EQ(names.size(), catalog.size());
  for (std::size_t i = 0; i < names.size(); ++i)
    EXPECT_EQ(names[i], catalog[i].name);
}

TEST(TopoRegistry, ParseCmeshSuffix) {
  const TopoSpec spec = parse_topology_spec("cmesh-8");
  EXPECT_EQ(spec.name, "cmesh");
  EXPECT_EQ(spec.params.concentration, 8);
  const TopoSpec plain = parse_topology_spec("torus");
  EXPECT_EQ(plain.name, "torus");
}

TEST(TopoRegistry, MakeTopologyBuildsTheRightTypes) {
  const auto mesh = make_topology("mesh", 5, 3);
  EXPECT_EQ(mesh->name(), "mesh");
  EXPECT_FALSE(mesh->is_torus());
  const auto torus = make_topology("torus", 5, 3);
  EXPECT_EQ(torus->name(), "torus");
  EXPECT_TRUE(torus->is_torus());
  const auto cmesh = make_topology("cmesh-2", 5, 3);
  EXPECT_EQ(cmesh->name(), "cmesh-2");
  EXPECT_EQ(cmesh->concentration(), 2);
  EXPECT_EQ(cmesh->num_terminals(), 30);
}

TEST(TopoRegistry, UnknownNameThrows) {
  EXPECT_THROW(make_topology("hypercube", 4, 4), InvariantViolation);
  EXPECT_THROW(make_topology("", 4, 4), InvariantViolation);
}

TEST(TopoRegistry, BadDimensionsThrow) {
  EXPECT_THROW(make_topology("mesh", 0, 4), InvariantViolation);
  EXPECT_THROW(make_topology("torus", 4, -1), InvariantViolation);
}

TEST(TopoRegistry, CmeshConcentrationRange) {
  EXPECT_NO_THROW(make_topology("cmesh-1", 4, 4));
  EXPECT_NO_THROW(make_topology("cmesh-64", 4, 4));
  EXPECT_THROW(make_topology("cmesh-0", 4, 4), InvariantViolation);
  EXPECT_THROW(make_topology("cmesh-65", 4, 4), InvariantViolation);
}

TEST(TopoRegistry, CmeshTerminalMapping) {
  const auto t = make_topology("cmesh-4", 4, 4);
  EXPECT_EQ(t->terminal_router(0), 0);
  EXPECT_EQ(t->terminal_router(3), 0);
  EXPECT_EQ(t->terminal_router(4), 1);
  EXPECT_EQ(t->terminal_of(3, 2), 14);
}

TEST(TopoRegistry, MeshFamilyMatchesConcreteMesh) {
  // The registry "mesh"/"torus" must be the same network Mesh builds.
  const auto reg_mesh = make_topology("mesh", 6, 4);
  const auto reg_torus = make_topology("torus", 6, 4);
  const Mesh mesh(6, 4);
  const Mesh torus(6, 4, /*torus=*/true);
  for (NodeId u = 0; u < mesh.num_nodes(); ++u)
    for (Dir d : kAllDirs) {
      EXPECT_EQ(reg_mesh->neighbor(u, d), mesh.neighbor(u, d));
      EXPECT_EQ(reg_torus->neighbor(u, d), torus.neighbor(u, d));
    }
}

}  // namespace
}  // namespace mr
