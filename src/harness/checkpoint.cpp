#include "harness/checkpoint.hpp"

#include <cstdio>
#include <sstream>

#include "core/json_min.hpp"

namespace mr {
namespace {

bool get_int(const json::Value& obj, const char* key, std::int64_t* out) {
  const json::Value* v = obj.find(key);
  if (!v || !v->is_number()) return false;
  *out = static_cast<std::int64_t>(v->number);
  return true;
}

bool get_double(const json::Value& obj, const char* key, double* out) {
  const json::Value* v = obj.find(key);
  if (!v || !v->is_number()) return false;
  *out = v->number;
  return true;
}

bool get_bool(const json::Value& obj, const char* key, bool* out) {
  const json::Value* v = obj.find(key);
  if (!v || !v->is_bool()) return false;
  *out = v->boolean;
  return true;
}

}  // namespace

std::string exact_double(double v) { return json::exact_number_to_string(v); }

std::string run_result_to_json(const RunResult& r) {
  std::ostringstream out;
  out << "{\"format\": \"meshroute-run/1\""
      << ", \"steps\": " << r.steps
      << ", \"all_delivered\": " << (r.all_delivered ? "true" : "false")
      << ", \"stalled\": " << (r.stalled ? "true" : "false")
      << ", \"packets\": " << r.packets << ", \"delivered\": " << r.delivered
      << ", \"max_queue\": " << r.max_queue
      << ", \"total_moves\": " << r.total_moves
      << ", \"latency\": {\"mean\": " << exact_double(r.latency.mean)
      << ", \"p50\": " << r.latency.p50 << ", \"p95\": " << r.latency.p95
      << ", \"p99\": " << r.latency.p99 << ", \"max\": " << r.latency.max
      << "}, \"engine_mode\": \"" << to_string(r.engine_mode) << "\""
      << ", \"telemetry_path\": \"" << json::escape(r.telemetry_path) << "\"";
  if (r.phase_profile) {
    out << ", \"phase_profile\": {\"seconds\": [";
    for (int i = 0; i < kNumPhases; ++i) {
      if (i) out << ", ";
      out << exact_double(r.phase_profile->seconds[static_cast<std::size_t>(i)]);
    }
    out << "], \"total_seconds\": " << exact_double(r.phase_profile->total_seconds)
        << ", \"steps\": " << r.phase_profile->steps << "}";
  }
  out << "}\n";
  return out.str();
}

bool run_result_from_json(const std::string& text, RunResult* result,
                          std::string* error) {
  const auto fail = [error](const std::string& what) {
    if (error) *error = "meshroute-run/1: " + what;
    return false;
  };
  std::string parse_error;
  std::optional<json::Value> doc = json::parse(text, &parse_error);
  if (!doc || !doc->is_object()) return fail("not a JSON object: " + parse_error);
  const json::Value* format = doc->find("format");
  if (!format || !format->is_string() || format->string != "meshroute-run/1")
    return fail("missing or wrong \"format\"");

  RunResult r;
  std::int64_t steps = 0, packets = 0, delivered = 0, max_queue = 0,
               total_moves = 0;
  if (!get_int(*doc, "steps", &steps) || !get_int(*doc, "packets", &packets) ||
      !get_int(*doc, "delivered", &delivered) ||
      !get_int(*doc, "max_queue", &max_queue) ||
      !get_int(*doc, "total_moves", &total_moves) ||
      !get_bool(*doc, "all_delivered", &r.all_delivered) ||
      !get_bool(*doc, "stalled", &r.stalled))
    return fail("missing scalar field");
  r.steps = steps;
  r.packets = static_cast<std::size_t>(packets);
  r.delivered = static_cast<std::size_t>(delivered);
  r.max_queue = static_cast<int>(max_queue);
  r.total_moves = total_moves;

  const json::Value* latency = doc->find("latency");
  if (!latency || !latency->is_object()) return fail("missing \"latency\"");
  std::int64_t p50 = 0, p95 = 0, p99 = 0, max = 0;
  if (!get_double(*latency, "mean", &r.latency.mean) ||
      !get_int(*latency, "p50", &p50) || !get_int(*latency, "p95", &p95) ||
      !get_int(*latency, "p99", &p99) || !get_int(*latency, "max", &max))
    return fail("malformed \"latency\"");
  r.latency.p50 = p50;
  r.latency.p95 = p95;
  r.latency.p99 = p99;
  r.latency.max = max;

  const json::Value* mode = doc->find("engine_mode");
  if (!mode || !mode->is_string()) return fail("missing \"engine_mode\"");
  const std::optional<EngineMode> parsed = parse_engine_mode(mode->string);
  if (!parsed) return fail("unknown engine_mode \"" + mode->string + "\"");
  r.engine_mode = *parsed;

  const json::Value* path = doc->find("telemetry_path");
  if (!path || !path->is_string()) return fail("missing \"telemetry_path\"");
  r.telemetry_path = path->string;

  if (const json::Value* profile = doc->find("phase_profile")) {
    if (!profile->is_object()) return fail("malformed \"phase_profile\"");
    PhaseProfile pp;
    const json::Value* seconds = profile->find("seconds");
    if (!seconds || !seconds->is_array() ||
        seconds->array.size() != static_cast<std::size_t>(kNumPhases))
      return fail("malformed \"phase_profile.seconds\"");
    for (int i = 0; i < kNumPhases; ++i) {
      const json::Value& s = seconds->array[static_cast<std::size_t>(i)];
      if (!s.is_number()) return fail("malformed \"phase_profile.seconds\"");
      pp.seconds[static_cast<std::size_t>(i)] = s.number;
    }
    std::int64_t profile_steps = 0;
    if (!get_double(*profile, "total_seconds", &pp.total_seconds) ||
        !get_int(*profile, "steps", &profile_steps))
      return fail("malformed \"phase_profile\"");
    pp.steps = profile_steps;
    r.phase_profile = pp;
  }

  *result = std::move(r);
  return true;
}

}  // namespace mr
