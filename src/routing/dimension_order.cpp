#include "routing/dimension_order.hpp"

namespace mr {

bool dimension_order_dir(DirMask mask, Dir& out) {
  if (mask_has(mask, Dir::East)) {
    out = Dir::East;
    return true;
  }
  if (mask_has(mask, Dir::West)) {
    out = Dir::West;
    return true;
  }
  if (mask_has(mask, Dir::North)) {
    out = Dir::North;
    return true;
  }
  if (mask_has(mask, Dir::South)) {
    out = Dir::South;
    return true;
  }
  return false;
}

void DimensionOrderRouter::dx_plan_out(NodeCtx&,
                                       std::span<const PacketDxView> resident,
                                       OutPlan& plan) {
  // FIFO: `resident` is in queue (arrival) order, so the first eligible
  // packet per outlink wins.
  for (const PacketDxView& v : resident) {
    Dir d;
    if (!dimension_order_dir(v.profitable, d)) continue;
    if (plan.scheduled(d) == kInvalidPacket) plan.schedule(d, v.id);
  }
}

void DimensionOrderRouter::dx_plan_in(NodeCtx& ctx,
                                      std::span<const PacketDxView> resident,
                                      std::span<const DxOffer> offers,
                                      InPlan& plan) {
  // Rotating-priority inqueue (the paper's round-robin example): the
  // starting inlink advances by one every step (see dx_update). Accepts
  // conservatively: never more than the space that remains even if none of
  // the node's own packets departs.
  int free = ctx.capacity - static_cast<int>(resident.size());
  const int start = static_cast<int>(ctx.state % kNumDirs);
  for (int r = 0; r < kNumDirs && free > 0; ++r) {
    const Dir want = static_cast<Dir>((start + r) % kNumDirs);
    for (std::size_t i = 0; i < offers.size(); ++i) {
      if (offers[i].travel_dir == want && !plan.accept[i]) {
        plan.accept[i] = true;
        --free;
        break;
      }
    }
  }
}

void DimensionOrderRouter::dx_update(NodeCtx& ctx,
                                     std::span<PacketDxView>) {
  ctx.state = (ctx.state + 1) % kNumDirs;
}

}  // namespace mr
