// (l,k) workload generators: degree bounds, destination laws, spec-string
// round trips — plus the degree-bound/destination-law properties of the
// pre-existing generators the (l,k) family generalises.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "topo/mesh.hpp"
#include "workload/catalog.hpp"
#include "workload/lk.hpp"
#include "workload/patterns.hpp"

namespace mr {
namespace {

std::vector<int> send_degrees(const Topology& mesh, const Workload& w) {
  std::vector<int> deg(static_cast<std::size_t>(mesh.num_nodes()), 0);
  for (const Demand& d : w) ++deg[static_cast<std::size_t>(d.source)];
  return deg;
}

std::vector<int> recv_degrees(const Topology& mesh, const Workload& w) {
  std::vector<int> deg(static_cast<std::size_t>(mesh.num_nodes()), 0);
  for (const Demand& d : w) ++deg[static_cast<std::size_t>(d.dest)];
  return deg;
}

TEST(LkSpec, ParseFormatRoundTrip) {
  LkSpec spec;
  std::string error;
  ASSERT_TRUE(parse_lk_spec("clustered:2:3:42", &spec, &error)) << error;
  EXPECT_EQ(spec.variant, "clustered");
  EXPECT_EQ(spec.l, 2);
  EXPECT_EQ(spec.k, 3);
  EXPECT_EQ(spec.seed, 42u);
  EXPECT_EQ(format_lk_spec(spec), "clustered:2:3:42");
  LkSpec again;
  ASSERT_TRUE(parse_lk_spec(format_lk_spec(spec), &again, &error));
  EXPECT_EQ(again, spec);
  // Seed is optional on input.
  ASSERT_TRUE(parse_lk_spec("uniform:1:1", &spec, &error));
  EXPECT_EQ(spec.seed, 1u);
}

TEST(LkSpec, ParseRejectsMalformedSpecs) {
  LkSpec spec;
  std::string error;
  EXPECT_FALSE(parse_lk_spec("uniform:2", &spec, &error));
  EXPECT_FALSE(parse_lk_spec("bogus:2:2", &spec, &error));
  EXPECT_FALSE(parse_lk_spec("uniform:0:2", &spec, &error));
  EXPECT_FALSE(parse_lk_spec("uniform:2:-1", &spec, &error));
  EXPECT_FALSE(parse_lk_spec("uniform:2:2:x", &spec, &error));
  EXPECT_FALSE(parse_lk_spec("uniform:2:2:1:9", &spec, &error));
}

TEST(LkUniform, DegreeBoundsAndSendLaw) {
  const Mesh mesh = Mesh::square(8);
  for (const auto& [l, k] : {std::pair{1, 1}, {2, 3}, {3, 2}, {4, 4}}) {
    const Workload w = lk_uniform(mesh, l, k, 77);
    EXPECT_TRUE(is_lk(mesh, w, l, k)) << l << "," << k;
    // Every node sends exactly min(l, k): the uniform variant is
    // degree-balanced on the send side by construction.
    const int sends = std::min(l, k);
    EXPECT_EQ(w.size(), static_cast<std::size_t>(mesh.num_nodes() * sends));
    for (int d : send_degrees(mesh, w)) EXPECT_EQ(d, sends);
  }
}

TEST(LkUniform, ReceiveLawExhaustsSlotPool) {
  // With l >= k the demand count equals the receive capacity n*k, so the
  // slot pool forces EVERY node to receive exactly k.
  const Mesh mesh = Mesh::square(6);
  const Workload w = lk_uniform(mesh, 5, 2, 9);
  for (int d : recv_degrees(mesh, w)) EXPECT_EQ(d, 2);
}

TEST(LkUniform, DeterministicInSeed) {
  const Mesh mesh = Mesh::square(7);
  EXPECT_EQ(lk_uniform(mesh, 2, 2, 5), lk_uniform(mesh, 2, 2, 5));
  EXPECT_NE(lk_uniform(mesh, 2, 2, 5), lk_uniform(mesh, 2, 2, 6));
}

TEST(LkClustered, SourcesAndDestsConfinedToBlocks) {
  const Mesh mesh = Mesh::square(8);
  const int l = 2, k = 3;
  const Workload w = lk_clustered(mesh, l, k, 13);
  EXPECT_TRUE(is_lk(mesh, w, l, k));
  // 16 sources * l = 32 send slots vs 16 dests * k = 48 receive slots:
  // the send side binds.
  EXPECT_EQ(w.size(), 32u);
  for (const Demand& d : w) {
    const Coord s = mesh.coord_of(d.source);
    const Coord t = mesh.coord_of(d.dest);
    EXPECT_LT(s.col, 4);
    EXPECT_LT(s.row, 4);
    EXPECT_GE(t.col, 4);
    EXPECT_GE(t.row, 4);
  }
  // The binding side uses its full budget on every node.
  const std::vector<int> sends = send_degrees(mesh, w);
  for (std::int32_t r = 0; r < 4; ++r)
    for (std::int32_t c = 0; c < 4; ++c)
      EXPECT_EQ(sends[static_cast<std::size_t>(mesh.id_of(c, r))], l);
}

TEST(LkClustered, ReceiveSideBindsWhenSmaller) {
  const Mesh mesh = Mesh::square(6);
  const Workload w = lk_clustered(mesh, 4, 1, 3);
  EXPECT_TRUE(is_lk(mesh, w, 4, 1));
  // 9 dests * k=1 receive slots bind; every destination-block node
  // receives exactly one packet.
  EXPECT_EQ(w.size(), 9u);
  const std::vector<int> recvs = recv_degrees(mesh, w);
  for (std::int32_t r = 3; r < 6; ++r)
    for (std::int32_t c = 3; c < 6; ++c)
      EXPECT_EQ(recvs[static_cast<std::size_t>(mesh.id_of(c, r))], 1);
}

TEST(LkWorstCase, BisectionFloodStructure) {
  const Mesh mesh = Mesh::square(8);
  const Workload w = lk_worst_case(mesh, 3, 2);
  EXPECT_TRUE(is_lk(mesh, w, 3, 2));
  // Every west-half node sends min(3,2)=2 copies to its east mirror; all
  // demands cross the vertical bisection within their own row.
  EXPECT_EQ(w.size(), static_cast<std::size_t>(8 * 4 * 2));
  for (const Demand& d : w) {
    const Coord s = mesh.coord_of(d.source);
    const Coord t = mesh.coord_of(d.dest);
    EXPECT_LT(s.col, 4);
    EXPECT_GE(t.col, 4);
    EXPECT_EQ(s.row, t.row);
    EXPECT_EQ(t.col, mesh.width() - 1 - s.col);
  }
}

TEST(LkDispatch, MakeLkWorkloadMatchesDirectCalls) {
  const Mesh mesh = Mesh::square(6);
  LkSpec spec;
  std::string error;
  ASSERT_TRUE(parse_lk_spec("uniform:2:2:11", &spec, &error));
  EXPECT_EQ(make_lk_workload(mesh, spec), lk_uniform(mesh, 2, 2, 11));
  ASSERT_TRUE(parse_lk_spec("clustered:1:2:11", &spec, &error));
  EXPECT_EQ(make_lk_workload(mesh, spec), lk_clustered(mesh, 1, 2, 11));
  ASSERT_TRUE(parse_lk_spec("worst-case:2:3", &spec, &error));
  EXPECT_EQ(make_lk_workload(mesh, spec), lk_worst_case(mesh, 2, 3));
}

TEST(LkPredicate, DetectsViolationsOnBothSides) {
  const Mesh mesh = Mesh::square(4);
  Workload w;
  w.push_back(Demand{0, 5, 0});
  w.push_back(Demand{0, 6, 0});
  EXPECT_TRUE(is_lk(mesh, w, 2, 1));
  EXPECT_FALSE(is_lk(mesh, w, 1, 1));  // node 0 sends twice
  w.push_back(Demand{1, 5, 0});
  EXPECT_FALSE(is_lk(mesh, w, 2, 1));  // node 5 receives twice
  EXPECT_TRUE(is_lk(mesh, w, 2, 2));
}

// ---- Degree-bound / destination-law coverage for the pre-existing
// generators the (l,k) family generalises. ----

TEST(DegreeLaw, RandomHhIsExact) {
  // random_hh claims every node sends AND receives exactly h — stronger
  // than the is_hh upper bound.
  const Mesh mesh = Mesh::square(7);
  for (int h : {1, 2, 4}) {
    const Workload w = random_hh(mesh, h, 23);
    EXPECT_TRUE(is_hh(mesh, w, h));
    EXPECT_TRUE(is_lk(mesh, w, h, h));
    for (int d : send_degrees(mesh, w)) EXPECT_EQ(d, h);
    for (int d : recv_degrees(mesh, w)) EXPECT_EQ(d, h);
  }
}

TEST(DegreeLaw, HotspotConcentratesAllReceives) {
  const Mesh mesh = Mesh::square(8);
  const NodeId sink = mesh.num_nodes() - 1;
  const Workload w = hotspot(mesh, sink, 12);
  EXPECT_EQ(w.size(), 12u);
  // An (l,k) instance with l = 1 and k = |w|, and for no smaller k.
  EXPECT_TRUE(is_lk(mesh, w, 1, 12));
  EXPECT_FALSE(is_lk(mesh, w, 1, 11));
  for (const Demand& d : w) EXPECT_EQ(d.dest, sink);
}

TEST(DestinationLaw, MirrorReflectsColumns) {
  const Mesh mesh = Mesh::square(6);
  for (const Demand& d : mirror(mesh)) {
    const Coord s = mesh.coord_of(d.source);
    const Coord t = mesh.coord_of(d.dest);
    EXPECT_EQ(t.col, mesh.width() - 1 - s.col);
    EXPECT_EQ(t.row, s.row);
  }
}

TEST(DestinationLaw, RotationShiftsModulo) {
  const Mesh mesh = Mesh::square(5);
  for (const Demand& d : rotation(mesh, 2, 3)) {
    const Coord s = mesh.coord_of(d.source);
    const Coord t = mesh.coord_of(d.dest);
    EXPECT_EQ(t.col, (s.col + 2) % 5);
    EXPECT_EQ(t.row, (s.row + 3) % 5);
  }
}

TEST(DestinationLaw, RowToColumnTurnsAtOneNode) {
  const Mesh mesh = Mesh::square(6);
  const Workload w = row_to_column(mesh, 2, 3);
  // One packet per source row node; destinations are distinct rows of
  // column 3 (receive degree 1 — a partial permutation).
  EXPECT_TRUE(is_lk(mesh, w, 1, 1));
  for (const Demand& d : w) {
    EXPECT_EQ(mesh.coord_of(d.source).row, 2);
    EXPECT_EQ(mesh.coord_of(d.dest).col, 3);
  }
}

TEST(Catalog, ListsLkGeneratorsAndPatterns) {
  EXPECT_TRUE(known_workload("lk-uniform"));
  EXPECT_TRUE(known_workload("lk-clustered"));
  EXPECT_TRUE(known_workload("lk-worst-case"));
  EXPECT_TRUE(known_workload("random-permutation"));
  EXPECT_TRUE(known_workload("tornado"));
  EXPECT_FALSE(known_workload("no-such-workload"));
  // Batch generators and open-loop patterns are both represented.
  bool batch = false, open_loop = false;
  for (const WorkloadInfo& info : workload_catalog()) {
    batch = batch || info.kind == "batch";
    open_loop = open_loop || info.kind == "open-loop";
    EXPECT_FALSE(info.name.empty());
    EXPECT_FALSE(info.description.empty());
  }
  EXPECT_TRUE(batch);
  EXPECT_TRUE(open_loop);
}

}  // namespace
}  // namespace mr
