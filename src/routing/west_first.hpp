// West-first minimal adaptive routing (Chien–Kim planar-adaptive flavour,
// cited in §2 as implementable destination-exchangeably).
//
// Rule: a packet with a profitable West outlink moves west first
// (deterministically, no adaptivity while heading west); once West is no
// longer profitable it routes fully adaptively among its remaining
// profitable outlinks (N/E/S), preferring the outlink whose opposite
// inlink delivered fewer packets recently (a congestion signal kept in the
// node state — legal: it derives only from observed packet presence).
// Everything is expressed through profitable masks, so Theorem 14's
// construction applies.
#pragma once

#include "routing/dx.hpp"

namespace mr {

class WestFirstRouter final : public DxAlgorithm {
 public:
  std::string name() const override { return "west-first"; }

 protected:
  void dx_plan_out(NodeCtx& ctx, std::span<const PacketDxView> resident,
                   OutPlan& plan) override;
  void dx_plan_in(NodeCtx& ctx, std::span<const PacketDxView> resident,
                  std::span<const DxOffer> offers, InPlan& plan) override;
  void dx_update(NodeCtx& ctx, std::span<PacketDxView> resident) override;
};

}  // namespace mr
