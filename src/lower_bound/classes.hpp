// Packet classes and box geometry for the main construction (paper §2
// "Definitions" and Figure 1), shared by the torus and h-h variants.
//
// All coordinates here are 0-based. With γ = cn − 2 (0-based index of the
// N_1-column minus one... precisely: the paper's 1-based "(cn−1+i)-th
// column" is 0-based column γ+i where γ = cn − 2):
//   * N_i-column: column γ+i ; E_i-row: row γ+i.
//   * i-box: columns 0..γ+i and rows 0..γ+i (a square).
//   * 0-box: columns 0..γ and rows 0..γ.
//   * N_i-packet: destined for column γ+i strictly north of row γ+i.
//   * E_i-packet: destined for row γ+i strictly east of column γ+i.
// A construction embedded in a torus submesh (§5) uses `size` < mesh side;
// everything is confined to columns/rows [0, size).
#pragma once

#include <cstdint>

#include "core/types.hpp"
#include "lower_bound/constants.hpp"
#include "topo/mesh.hpp"

namespace mr {

enum class ClassType : std::uint8_t { None = 0, N = 1, E = 2 };

struct PacketClass {
  ClassType type = ClassType::None;
  std::int64_t i = 0;  ///< class index, 1-based; 0 when type == None

  friend bool operator==(const PacketClass& a, const PacketClass& b) {
    return a.type == b.type && a.i == b.i;
  }
};

/// Geometry of the main construction for side `size` and cn as chosen by
/// main_lb_params (or hh_lb_params).
class MainGeometry {
 public:
  MainGeometry(std::int32_t size, std::int32_t cn, std::int64_t classes)
      : size_(size), cn_(cn), classes_(classes), gamma_(cn - 2) {}

  std::int32_t size() const { return size_; }
  std::int32_t cn() const { return cn_; }
  std::int64_t classes() const { return classes_; }

  /// 0-based column of the N_i-column / row of the E_i-row.
  std::int32_t line(std::int64_t i) const {
    return static_cast<std::int32_t>(gamma_ + i);
  }

  /// True if c lies inside the i-box (i = 0 allowed).
  bool in_box(Coord c, std::int64_t i) const {
    return c.col <= line(i) && c.row <= line(i);
  }

  /// Classifies a packet. Per the paper's definition an N_i/E_i-packet
  /// must both START in the cn×cn submesh (the 1-box) and be destined for
  /// the N_i-column/E_i-row outside the i-box; filler packets originating
  /// elsewhere are never classed. Only classes 1..classes() are reported.
  PacketClass classify(Coord source, Coord dest) const {
    if (!in_box(source, 1)) return PacketClass{};
    if (dest.col > gamma_ && dest.col <= line(classes_) &&
        dest.row > dest.col) {
      return PacketClass{ClassType::N, dest.col - gamma_};
    }
    if (dest.row > gamma_ && dest.row <= line(classes_) &&
        dest.col > dest.row) {
      return PacketClass{ClassType::E, dest.row - gamma_};
    }
    return PacketClass{};
  }

 private:
  std::int32_t size_;
  std::int32_t cn_;
  std::int64_t classes_;
  std::int32_t gamma_;
};

}  // namespace mr
