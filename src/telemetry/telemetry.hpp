// Bounded-overhead run telemetry (the observability subsystem).
//
// TelemetryCollector is a StepObserver that turns the engine's per-step
// digests into three artefacts:
//   * a per-step time series — moves, deliveries, injections, stall-run
//     length and per-direction link utilisation — kept bounded by stride
//     doubling: when the series outgrows `series_capacity` rows, adjacent
//     rows are merged pairwise and the bucket width doubles, so memory is
//     O(series_capacity) regardless of run length;
//   * queue-pressure heatmaps — stride-sampled occupancy per node (and per
//     inlink queue under the PerInlink layout), accumulated as
//     sum/max/sample counters in O(nodes) memory;
//   * run totals (moves, deliveries, injections, exchanges, peak stall
//     run) for the summary record.
//
// Collection cost is O(moves in the step) on sampled steps and O(1)+O(moves)
// otherwise — no virtual calls on the engine's per-move hot path, since the
// whole step arrives as one digest. Export lives in telemetry/export.hpp.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "sim/algorithm.hpp"
#include "sim/engine.hpp"

namespace mr {

struct TelemetryOptions {
  /// Maximum retained time-series rows; must be >= 2. When the series
  /// fills up, adjacent rows merge pairwise and the stride doubles.
  std::size_t series_capacity = 4096;
  /// Occupancy heatmaps are sampled every N-th step (0 disables heatmaps).
  Step sample_every = 16;
};

/// One time-series bucket covering `span` consecutive steps starting at
/// `step` (span is 1 until the first stride doubling). Counters are sums
/// over the bucket; stall_run is the maximum within it.
struct TelemetrySeriesRow {
  Step step = 0;
  Step span = 1;
  std::int64_t moves = 0;       ///< all hops, delivering hops included
  std::int64_t deliveries = 0;  ///< injected deliveries included
  std::int64_t injections = 0;
  std::array<std::int64_t, kNumDirs> moves_by_dir{};
  Step stall_run = 0;  ///< max stall-run length observed in the bucket
  std::int64_t fault_blocked = 0;   ///< moves dropped on faulted links
  std::int64_t fault_deferred = 0;  ///< injections deferred at down nodes
};

/// Accumulated queue-pressure sample for one node. `sum`/`max` cover the
/// whole-node occupancy; the per-inlink arrays are populated only under
/// QueueLayout::PerInlink. Divide sums by TelemetryCollector::heat_samples()
/// for means.
struct TelemetryNodeHeat {
  std::int64_t sum = 0;
  int max = 0;
  std::array<std::int64_t, kNumDirs> inlink_sum{};
  std::array<int, kNumDirs> inlink_max{};
};

/// Final counters of a collected run.
struct TelemetryTotals {
  Step steps = 0;  ///< executed steps observed
  std::int64_t moves = 0;
  std::int64_t deliveries = 0;
  std::int64_t injections = 0;
  std::int64_t exchanges = 0;
  std::array<std::int64_t, kNumDirs> moves_by_dir{};
  Step max_stall_run = 0;
  std::int64_t fault_blocked = 0;
  std::int64_t fault_deferred = 0;
};

class TelemetryCollector : public StepObserver {
 public:
  explicit TelemetryCollector(TelemetryOptions options = {});

  void on_prepare(const Sim& e, const StepDigest& d) override;
  void on_step(const Sim& e, const StepDigest& d) override;

  /// Retained series rows, pending partial bucket included. Row `step`
  /// fields are strictly increasing; all spans except possibly the last
  /// equal series_stride().
  std::vector<TelemetrySeriesRow> series() const;
  /// Current bucket width: 1 until the capacity first overflows, then a
  /// power of two.
  Step series_stride() const { return stride_; }

  /// Heatmap accumulator per NodeId (empty when sampling is disabled).
  const std::vector<TelemetryNodeHeat>& node_heat() const { return heat_; }
  /// Number of sampled steps (the divisor for heat means).
  std::int64_t heat_samples() const { return heat_samples_; }
  bool per_inlink() const { return per_inlink_; }

  const TelemetryTotals& totals() const { return totals_; }
  const TelemetryOptions& options() const { return options_; }

 private:
  void compact_rows();
  void sample_heat(const Sim& e);

  TelemetryOptions options_;
  Step stride_ = 1;
  std::vector<TelemetrySeriesRow> rows_;
  TelemetrySeriesRow pending_;
  bool pending_open_ = false;

  std::vector<TelemetryNodeHeat> heat_;
  std::int64_t heat_samples_ = 0;
  bool per_inlink_ = false;

  TelemetryTotals totals_;
};

}  // namespace mr
