file(REMOVE_RECURSE
  "libmr_routing.a"
)
