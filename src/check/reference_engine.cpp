#include "check/reference_engine.hpp"

#include <algorithm>
#include <array>

namespace mr {

ReferenceEngine::ReferenceEngine(const Topology& topo, int queue_capacity,
                                 Step stall_limit, Algorithm& algorithm)
    : Sim(topo, queue_capacity, algorithm.queue_layout(),
          /*masks_cached=*/false),
      algorithm_(algorithm),
      stall_limit_(stall_limit),
      enforce_minimal_(algorithm.minimal()),
      max_stray_(algorithm.max_stray()) {
  MR_REQUIRE_MSG(stall_limit_ >= 0,
                 "stall_limit must be >= 0, got " << stall_limit_);
}

PacketId ReferenceEngine::add_packet(NodeId source, NodeId dest,
                                     Step injected_at) {
  MR_REQUIRE_MSG(!prepared_, "add_packet after prepare()");
  return register_packet(source, dest, injected_at);
}

int ReferenceEngine::occupancy(NodeId u, QueueTag tag) const {
  MR_REQUIRE(layout_ == QueueLayout::PerInlink);
  int count = 0;
  for (PacketId p : node_packets_.at(u))
    if (packets_[p].queue == tag) ++count;
  return count;
}

void ReferenceEngine::place_packet(PacketId p, NodeId node, QueueTag tag) {
  Packet& pk = packets_[p];
  pk.location = node;
  pk.queue = tag;
  pk.arrived_at = step_;
  node_packets_.push_back(node, p);
}

void ReferenceEngine::remove_from_node(PacketId p) {
  const NodeId u = packets_[p].location;
  const std::span<const PacketId> q = node_packets_.at(u);
  const auto it = std::find(q.begin(), q.end(), p);
  MR_REQUIRE(it != q.end());
  // erase_slot preserves arrival order of the remaining packets.
  node_packets_.erase_slot(u, static_cast<std::int32_t>(it - q.begin()));
}

void ReferenceEngine::record_occupancy(NodeId u) {
  if (layout_ == QueueLayout::Central) {
    max_occupancy_seen_ = std::max(max_occupancy_seen_, occupancy(u));
    return;
  }
  for (int t = 0; t < kNumDirs; ++t)
    max_occupancy_seen_ =
        std::max(max_occupancy_seen_, occupancy(u, static_cast<QueueTag>(t)));
}

void ReferenceEngine::rebuild_active() {
  active_.clear();
  for (NodeId u = 0; u < topology().num_nodes(); ++u)
    if (!node_packets_.empty(u)) active_.push_back(u);
}

QueueTag ReferenceEngine::injection_queue_tag(PacketId p) const {
  // Mirror of Engine::injection_queue_tag: the inlink opposite the first
  // profitable direction in E, W, N, S preference order; South if none.
  const Packet& pk = packets_[p];
  const DirMask m = topology().profitable_dirs(pk.source, pk.dest);
  for (Dir d : {Dir::East, Dir::West, Dir::North, Dir::South})
    if (mask_has(m, d)) return static_cast<QueueTag>(dir_index(opposite(d)));
  return static_cast<QueueTag>(dir_index(Dir::South));
}

void ReferenceEngine::inject_due_packets() {
  // Every undelivered packet that is not in the network and whose
  // injection step has come — equivalently the engine's waiting list plus
  // the newly due packets — offered in ascending PacketId order.
  for (std::size_t id = 0; id < packets_.size(); ++id) {
    Packet& pk = packets_[id];
    if (pk.delivered() || pk.location != kInvalidNode ||
        pk.injected_at > step_) {
      continue;
    }
    // A down source defers injection entirely — even source == dest
    // deliveries (mirror of Engine::inject_packet_list).
    if (!node_available(pk.source)) {
      ++fault_deferred_this_step_;
      continue;
    }
    if (pk.source == pk.dest) {
      pk.delivered_at = step_;
      ++delivered_count_;
      ++injected_this_step_;
      injected_deliveries_.push_back(static_cast<PacketId>(id));
      continue;
    }
    const QueueTag tag = layout_ == QueueLayout::Central
                             ? kCentralQueue
                             : injection_queue_tag(static_cast<PacketId>(id));
    const int used = layout_ == QueueLayout::Central
                         ? occupancy(pk.source)
                         : occupancy(pk.source, tag);
    if (used >= queue_capacity_) continue;  // §5: wait outside the network
    place_packet(static_cast<PacketId>(id), pk.source, tag);
    pk.arrival_inlink = kNoInlink;
    ++injected_this_step_;
    record_occupancy(pk.source);
  }
}

void ReferenceEngine::prepare() {
  MR_REQUIRE_MSG(!prepared_, "prepare() called twice");
  prepared_ = true;
  step_ = 0;
  injected_this_step_ = 0;
  injected_deliveries_.clear();
  inject_due_packets();
  algorithm_.init(*this);
  rebuild_active();
  if (!observers_.empty()) {
    StepDigest digest;
    digest.step = 0;
    digest.injected_deliveries = injected_deliveries_;
    digest.deliveries = static_cast<std::int64_t>(injected_deliveries_.size());
    digest.injections = injected_this_step_;
    for (StepObserver* ob : observers_) ob->on_prepare(*this, digest);
  }
}

void ReferenceEngine::validate_out_plan(NodeId u, const OutPlan& plan,
                                        std::vector<std::uint8_t>& scheduled) {
  for (Dir d : kAllDirs) {
    const PacketId p = plan.scheduled(d);
    if (p == kInvalidPacket) continue;
    MR_REQUIRE_MSG(p >= 0 && static_cast<std::size_t>(p) < packets_.size(),
                   "scheduled unknown packet");
    const Packet& pk = packets_[p];
    MR_REQUIRE_MSG(pk.location == u,
                   "node " << u << " scheduled packet " << p
                           << " which is at node " << pk.location);
    MR_REQUIRE_MSG(!scheduled[static_cast<std::size_t>(p)],
                   "packet " << p << " scheduled on two outlinks");
    scheduled[static_cast<std::size_t>(p)] = 1;
    MR_REQUIRE_MSG(topology().neighbor(u, d) != kInvalidNode,
                   "node " << u << " scheduled packet off the mesh edge");
    if (enforce_minimal_) {
      MR_REQUIRE_MSG(
          topology().is_profitable(u, d, pk.dest),
          "minimal algorithm scheduled packet "
              << p << " on unprofitable outlink " << dir_name(d) << " at node "
              << u);
    } else if (max_stray_ >= 0) {
      const Coord target = topology().coord_of(topology().neighbor(u, d));
      const Coord s = topology().coord_of(pk.source);
      const Coord t = topology().coord_of(pk.dest);
      const bool inside =
          target.col >= std::min(s.col, t.col) - max_stray_ &&
          target.col <= std::max(s.col, t.col) + max_stray_ &&
          target.row >= std::min(s.row, t.row) - max_stray_ &&
          target.row <= std::max(s.row, t.row) + max_stray_;
      MR_REQUIRE_MSG(inside, "packet " << p << " strayed more than delta="
                                       << max_stray_
                                       << " beyond its rectangle");
    }
  }
}

bool ReferenceEngine::step_once() {
  MR_REQUIRE_MSG(prepared_, "step before prepare()");
  if (all_delivered()) return false;
  ++step_;

  injected_this_step_ = 0;
  injected_deliveries_.clear();
  fault_blocked_this_step_ = 0;
  fault_deferred_this_step_ = 0;
  apply_faults(step_);
  const auto exchanges_before = static_cast<std::int64_t>(exchange_count_);
  inject_due_packets();

  // Nodes that hold a packet after injection: phase (a) visits exactly
  // these, and phase (e) visits them again (drained or not) plus the
  // receivers.
  std::vector<std::uint8_t> held_packet(
      static_cast<std::size_t>(topology().num_nodes()), 0);
  for (NodeId u = 0; u < topology().num_nodes(); ++u)
    if (!node_packets_.empty(u)) held_packet[u] = 1;

  // ----- (a) outqueue policies schedule packets -------------------------
  std::vector<ScheduledMove> moves;
  std::vector<std::uint8_t> scheduled(packets_.size(), 0);
  for (NodeId u = 0; u < topology().num_nodes(); ++u) {
    if (node_packets_.empty(u)) continue;
    OutPlan plan;
    algorithm_.plan_out(*this, u, plan);
    validate_out_plan(u, plan, scheduled);
    for (Dir d : kAllDirs) {
      const PacketId p = plan.scheduled(d);
      if (p == kInvalidPacket) continue;
      moves.push_back(ScheduledMove{p, u, topology().neighbor(u, d), d});
    }
  }

  // Reroute-or-stall (mirror of Engine::filter_faulted_moves): drop every
  // scheduled move over a link a fault took down, before the adversary and
  // the delivery classification see the move list.
  if (faults_active()) {
    std::vector<ScheduledMove> surviving;
    for (const ScheduledMove& m : moves) {
      if (mask_has(available_mask(m.from), m.dir))
        surviving.push_back(m);
      else
        ++fault_blocked_this_step_;
    }
    moves.swap(surviving);
  }

  // ----- (b) adversary exchanges ----------------------------------------
  if (interceptor_ != nullptr) {
    in_interceptor_ = true;
    interceptor_->after_schedule(
        *this, std::span<const ScheduledMove>(moves));
    in_interceptor_ = false;
    if (enforce_minimal_) {
      for (const ScheduledMove& m : moves) {
        MR_REQUIRE_MSG(
            topology().is_profitable(m.from, m.dir, packets_[m.packet].dest),
            "exchange made scheduled move of packet " << m.packet
                                                      << " non-minimal");
      }
    }
  }

  // ----- (c) inqueue policies accept/reject ------------------------------
  // Arrivals at the destination are delivered by the model itself (§2).
  std::vector<ScheduledMove> deliveries;
  std::vector<Offer> offers;
  for (const ScheduledMove& m : moves) {
    const Packet& pk = packets_[m.packet];
    if (pk.dest == m.to) {
      deliveries.push_back(m);
    } else {
      offers.push_back(Offer{m.packet, m.from, m.to, m.dir,
                             topology().profitable_dirs(m.from, pk.dest)});
    }
  }
  // Receiving nodes ascending, offers within a node by travel direction —
  // the exact order the engine's 4-way bucket merge produces. A (to, dir)
  // pair determines the sender, so the order is total.
  std::sort(offers.begin(), offers.end(), [](const Offer& a, const Offer& b) {
    if (a.to != b.to) return a.to < b.to;
    return dir_index(a.dir) < dir_index(b.dir);
  });
  std::vector<Offer> accepted;
  std::size_t i = 0;
  while (i < offers.size()) {
    std::size_t j = i;
    while (j < offers.size() && offers[j].to == offers[i].to) ++j;
    const std::span<const Offer> group(offers.data() + i, j - i);
    InPlan in_plan;
    in_plan.reset(group.size());
    algorithm_.plan_in(*this, offers[i].to, group, in_plan);
    MR_REQUIRE(in_plan.accept.size() == group.size());
    for (std::size_t g = 0; g < group.size(); ++g)
      if (in_plan.accept[g]) accepted.push_back(group[g]);
    i = j;
  }

  // ----- (d) transmission -------------------------------------------------
  std::int64_t moved_this_step = 0;
  std::vector<MoveRecord> digest_moves;
  for (const ScheduledMove& m : deliveries) {
    Packet& pk = packets_[m.packet];
    remove_from_node(pk.id);
    pk.location = kInvalidNode;
    pk.delivered_at = step_;
    ++delivered_count_;
    ++moved_this_step;
    digest_moves.push_back(
        MoveRecord{pk.id, m.from, m.to, m.dir, /*delivered=*/true});
  }
  for (const Offer& o : accepted) {
    Packet& pk = packets_[o.packet];
    const NodeId from = pk.location;
    remove_from_node(pk.id);
    const QueueTag tag = layout_ == QueueLayout::Central
                             ? kCentralQueue
                             : static_cast<QueueTag>(
                                   dir_index(opposite(o.dir)));
    place_packet(pk.id, o.to, tag);
    pk.arrival_inlink = static_cast<std::uint8_t>(dir_index(opposite(o.dir)));
    ++moved_this_step;
    ++total_moves_;
    digest_moves.push_back(
        MoveRecord{pk.id, from, o.to, o.dir, /*delivered=*/false});
  }
  // No-overflow requirement of §2: check every node that received.
  for (const Offer& o : accepted) {
    if (layout_ == QueueLayout::Central) {
      MR_REQUIRE_MSG(occupancy(o.to) <= queue_capacity_,
                     "queue overflow at node "
                         << o.to << ": " << occupancy(o.to)
                         << " > k=" << queue_capacity_ << " (step " << step_
                         << ")");
    } else {
      for (int t = 0; t < kNumDirs; ++t) {
        MR_REQUIRE_MSG(
            occupancy(o.to, static_cast<QueueTag>(t)) <= queue_capacity_,
            "inlink queue overflow at node " << o.to << " queue " << t
                                             << " (step " << step_ << ")");
      }
    }
    record_occupancy(o.to);
  }

  // ----- (e) state updates -----------------------------------------------
  // Every node that held, sent or received a packet this step, ascending.
  for (const Offer& o : accepted) held_packet[o.to] = 1;
  for (NodeId u = 0; u < topology().num_nodes(); ++u)
    if (held_packet[u]) algorithm_.update_state(*this, u);

  rebuild_active();

  // Stall detection, same rule as the engine: no movement and no
  // successful injection counts as a stall step unless a future-dated
  // injection is still pending.
  bool future_injection_pending = false;
  for (const Packet& pk : packets_) {
    if (!pk.delivered() && pk.location == kInvalidNode &&
        pk.injected_at > step_) {
      future_injection_pending = true;
      break;
    }
  }
  if (moved_this_step == 0 && injected_this_step_ == 0 &&
      !future_injection_pending) {
    ++stall_run_;
    if (stall_limit_ > 0 && stall_run_ >= stall_limit_) stalled_ = true;
  } else {
    stall_run_ = 0;
  }

  if (!observers_.empty()) {
    StepDigest digest;
    digest.step = step_;
    digest.moves = digest_moves;
    digest.injected_deliveries = injected_deliveries_;
    digest.deliveries = static_cast<std::int64_t>(deliveries.size() +
                                                  injected_deliveries_.size());
    digest.injections = injected_this_step_;
    for (const MoveRecord& m : digest_moves)
      ++digest.moves_by_dir[dir_index(m.dir)];
    digest.exchanges =
        static_cast<std::int64_t>(exchange_count_) - exchanges_before;
    digest.stall_run = stall_run_;
    digest.fault_blocked = fault_blocked_this_step_;
    digest.fault_deferred = fault_deferred_this_step_;
    for (StepObserver* ob : observers_) ob->on_step(*this, digest);
  }
  return true;
}

Step ReferenceEngine::run(Step max_steps) {
  while (!all_delivered() && !stalled_ && step_ < max_steps) {
    if (!step_once()) break;
  }
  return step_;
}

void ReferenceEngine::exchange_destinations(PacketId a, PacketId b) {
  MR_REQUIRE_MSG(in_interceptor_,
                 "exchange_destinations outside interceptor phase (b)");
  MR_REQUIRE(a != b);
  std::swap(packets_[a].dest, packets_[b].dest);
  ++exchange_count_;  // no cached masks to refresh
}

}  // namespace mr
