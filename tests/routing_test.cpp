// Cross-algorithm behavioural tests: every registered router must deliver
// its workloads, never exceed its queue bound, and (being minimal) strictly
// reduce each moved packet's distance. Parameterised over algorithm × k.
//
// Note on load levels: central-queue routers are subject to classic
// store-and-forward deadlock when the network is saturated and k is small —
// a cycle of full nodes each refusing the other's packet. That is faithful
// to the §2 model (the paper's lower bounds don't require liveness, and its
// upper-bound algorithms are engineered around it: Theorem 15 via four
// per-inlink queues whose dependency order E,W → N,S is acyclic). Tests
// therefore scale offered load with k for the central-queue routers and
// assert full-load delivery only for bounded-dimension-order; the deadlock
// itself is pinned down by CentralQueueDeadlockUnderFullLoad.
#include <gtest/gtest.h>

#include <algorithm>

#include "harness/runner.hpp"
#include "routing/dimension_order.hpp"
#include "routing/registry.hpp"
#include "sim/engine.hpp"
#include "topo/mesh.hpp"
#include "workload/permutation.hpp"

namespace mr {
namespace {

struct Param {
  std::string algorithm;
  int k;
};

bool central_queue(const std::string& algorithm) {
  return make_algorithm(algorithm)->queue_layout() == QueueLayout::Central;
}

/// Keeps only the demands whose destination lies (weakly) northeast of the
/// source. Monotone traffic makes every blocking chain acyclic — the
/// packet at the maximal col+row frontier can always advance — so it is
/// deadlock-free even for a size-1 central queue.
Workload northeast_only(const Mesh& mesh, const Workload& w) {
  Workload out;
  for (const Demand& d : w) {
    const Coord s = mesh.coord_of(d.source);
    const Coord t = mesh.coord_of(d.dest);
    if (t.col >= s.col && t.row >= s.row) out.push_back(d);
  }
  return out;
}

/// Transpose restricted to sources below the diagonal: pure SE traffic,
/// monotone, hence deadlock-free for central queues.
Workload half_transpose(const Mesh& mesh) {
  Workload out;
  for (const Demand& d : transpose(mesh)) {
    const Coord s = mesh.coord_of(d.source);
    if (s.col < s.row) out.push_back(d);
  }
  return out;
}

class RoutingSuite : public ::testing::TestWithParam<Param> {};

TEST_P(RoutingSuite, DeliversRandomLoad) {
  const auto [algorithm, k] = GetParam();
  RunSpec spec;
  spec.width = spec.height = 12;
  spec.queue_capacity = k;
  spec.algorithm = algorithm;
  const Mesh mesh = Mesh::square(12);
  const Workload full = random_permutation(mesh, 99);
  // Central-queue routers are only deadlock-free on monotone traffic; the
  // per-inlink Theorem 15 router takes the full permutation at any k.
  const Workload w =
      central_queue(algorithm) ? northeast_only(mesh, full) : full;
  const RunResult r = run_workload(spec, w);
  EXPECT_TRUE(r.all_delivered) << algorithm << " k=" << k;
  EXPECT_FALSE(r.stalled);
  EXPECT_LE(r.max_queue, k);
}

TEST_P(RoutingSuite, DeliversTransposeLoad) {
  const auto [algorithm, k] = GetParam();
  RunSpec spec;
  spec.width = spec.height = 12;
  spec.queue_capacity = k;
  spec.algorithm = algorithm;
  const Mesh mesh = Mesh::square(12);
  const Workload w =
      central_queue(algorithm) ? half_transpose(mesh) : transpose(mesh);
  const RunResult r = run_workload(spec, w);
  EXPECT_TRUE(r.all_delivered) << algorithm << " k=" << k;
  EXPECT_LE(r.max_queue, k);
}

TEST_P(RoutingSuite, MovesAreAlwaysMinimal) {
  const auto [algorithm, k] = GetParam();
  const Mesh mesh = Mesh::square(10);
  auto algo = make_algorithm(algorithm);
  if (!algo->minimal()) GTEST_SKIP() << algorithm << " is nonminimal (§5)";
  Engine::Config config;
  config.queue_capacity = k;
  Engine e(mesh, config, *algo);
  const Workload full = random_permutation(mesh, 5);
  const Workload w =
      central_queue(algorithm) ? northeast_only(mesh, full) : full;
  for (const Demand& d : w) e.add_packet(d.source, d.dest, d.injected_at);

  struct MinimalityCheck : Observer {
    void on_move(const Sim& eng, const Packet& p, NodeId from,
                 NodeId to) override {
      const NodeId dest = p.dest;
      EXPECT_EQ(eng.mesh().distance(to, dest),
                eng.mesh().distance(from, dest) - 1);
    }
  } checker;
  e.add_observer(&checker);
  e.prepare();
  e.run(5000);
  EXPECT_TRUE(e.all_delivered());
}

TEST_P(RoutingSuite, EmptyWorkloadTrivially) {
  const auto [algorithm, k] = GetParam();
  RunSpec spec;
  spec.width = spec.height = 6;
  spec.queue_capacity = k;
  spec.algorithm = algorithm;
  const RunResult r = run_workload(spec, {});
  EXPECT_TRUE(r.all_delivered);
  EXPECT_EQ(r.steps, 0);
}

std::vector<Param> make_params() {
  std::vector<Param> out;
  for (const std::string& a : algorithm_names()) {
    for (int k : {1, 2, 4}) {
      // The §5 nonminimal stray router needs k >= 2 (deflections
      // reintroduce head-on blocking).
      if (a.rfind("stray-", 0) == 0 && k < 2) continue;
      out.push_back(Param{a, k});
    }
  }
  return out;
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithms, RoutingSuite,
                         ::testing::ValuesIn(make_params()),
                         [](const auto& inf) {
                           std::string n = inf.param.algorithm;
                           for (char& ch : n)
                             if (ch == '-') ch = '_';
                           return n + "_k" + std::to_string(inf.param.k);
                         });

// The deadlock the bounded router is designed around: a saturated mesh with
// a size-1 central queue wedges (no delivery progress within a generous
// budget), while Theorem 15's per-inlink router finishes the same instance.
TEST(CentralQueueDeadlock, UnderFullLoad) {
  const Mesh mesh = Mesh::square(12);
  const Workload w = random_permutation(mesh, 99);
  RunSpec central;
  central.width = central.height = 12;
  central.queue_capacity = 1;
  central.algorithm = "dimension-order";
  central.max_steps = 20000;
  central.stall_limit = 2000;
  const RunResult stuck = run_workload(central, w);
  EXPECT_FALSE(stuck.all_delivered);

  RunSpec bounded = central;
  bounded.algorithm = "bounded-dimension-order";
  const RunResult fine = run_workload(bounded, w);
  EXPECT_TRUE(fine.all_delivered);
  EXPECT_LE(fine.max_queue, 1);
}

TEST(DimensionOrderDir, PrefersHorizontalThenVertical) {
  Dir d;
  ASSERT_TRUE(dimension_order_dir(
      dir_bit(Dir::North) | dir_bit(Dir::East), d));
  EXPECT_EQ(d, Dir::East);
  ASSERT_TRUE(dimension_order_dir(dir_bit(Dir::North) | dir_bit(Dir::West), d));
  EXPECT_EQ(d, Dir::West);
  ASSERT_TRUE(dimension_order_dir(dir_bit(Dir::South), d));
  EXPECT_EQ(d, Dir::South);
  EXPECT_FALSE(dimension_order_dir(0, d));
}

TEST(Registry, UnknownNameThrows) {
  EXPECT_THROW(make_algorithm("no-such-router"), InvariantViolation);
}

TEST(Registry, DxListIsSubset) {
  const auto all = algorithm_names();
  for (const auto& name : dx_minimal_algorithm_names()) {
    EXPECT_NE(std::find(all.begin(), all.end(), name), all.end());
    EXPECT_TRUE(make_algorithm(name)->minimal());
  }
}

// Theorem 15 specifics: full permutations complete at every k, including
// heavy single-column convergence, within the O(n²/k + n) regime.
TEST(BoundedDimensionOrder, FullTransposeEveryK) {
  for (int k : {1, 2, 3, 8}) {
    RunSpec spec;
    spec.width = spec.height = 10;
    spec.queue_capacity = k;
    spec.algorithm = "bounded-dimension-order";
    const Mesh mesh = Mesh::square(10);
    const RunResult r = run_workload(spec, transpose(mesh));
    EXPECT_TRUE(r.all_delivered) << "k=" << k;
    EXPECT_LE(r.max_queue, k);
  }
}

TEST(BoundedDimensionOrder, RespectsTheorem15Shape) {
  // steps ≤ C·(n²/k + n) for a modest constant C on random permutations.
  for (int k : {1, 2, 4}) {
    RunSpec spec;
    spec.width = spec.height = 16;
    spec.queue_capacity = k;
    spec.algorithm = "bounded-dimension-order";
    const Mesh mesh = Mesh::square(16);
    const RunResult r = run_workload(spec, random_permutation(mesh, 3));
    ASSERT_TRUE(r.all_delivered);
    EXPECT_LE(r.steps, 8 * (16 * 16 / k + 16)) << "k=" << k;
  }
}

}  // namespace
}  // namespace mr
