// δ-stray adaptive router (§5 "Nonminimal extensions").
//
// A destination-exchangeable router that is allowed to move a packet up to
// δ nodes beyond the rectangle spanned by its shortest source→destination
// paths. Normally it routes minimally (greedy matching of packets to
// profitable outlinks); a packet blocked for several consecutive steps is
// deflected onto an unprofitable outlink to route around the hot spot.
//
// The stray budget is tracked destination-exchangeably via a two-phase
// handshake in the packet state: the blocking node *arms* a deflection
// (direction + flag) during its state update; the next node observes the
// armed flag together with the matching arrival inlink, charges one unit
// of debt, and clears the flag. Since every unprofitable hop costs one
// debt unit and debt is capped at δ, the packet can never be more than δ
// outside its rectangle — which the engine independently enforces.
#pragma once

#include "routing/dx.hpp"

namespace mr {

class StrayRouter final : public DxAlgorithm {
 public:
  /// delta: stray budget δ. block_threshold: consecutive blocked steps
  /// before a deflection arms (re-aimed after twice that many).
  explicit StrayRouter(int delta, int block_threshold = 3)
      : delta_(delta), block_threshold_(block_threshold) {}

  std::string name() const override {
    return "stray-" + std::to_string(delta_);
  }
  bool minimal() const override { return delta_ == 0; }
  int max_stray() const override { return delta_; }

 protected:
  void dx_plan_out(NodeCtx& ctx, std::span<const PacketDxView> resident,
                   OutPlan& plan) override;
  void dx_plan_in(NodeCtx& ctx, std::span<const PacketDxView> resident,
                  std::span<const DxOffer> offers, InPlan& plan) override;
  void dx_update(NodeCtx& ctx, std::span<PacketDxView> resident) override;

 private:
  // packet-state layout
  static constexpr std::uint64_t kDirMaskBits = 0x3;   // bits 0-1: armed dir
  static constexpr std::uint64_t kArmedBit = 1u << 2;  // bit 2: armed
  static constexpr int kDebtShift = 3;                 // bits 3-9: debt
  static constexpr std::uint64_t kDebtMask = 0x7F;
  static constexpr int kStreakShift = 10;              // bits 10-17: streak
  static constexpr std::uint64_t kStreakMask = 0xFF;

  static int debt(std::uint64_t s) {
    return static_cast<int>((s >> kDebtShift) & kDebtMask);
  }
  static int streak(std::uint64_t s) {
    return static_cast<int>((s >> kStreakShift) & kStreakMask);
  }
  static bool armed(std::uint64_t s) { return (s & kArmedBit) != 0; }
  static Dir armed_dir(std::uint64_t s) {
    return static_cast<Dir>(s & kDirMaskBits);
  }

  int delta_;
  int block_threshold_;
};

}  // namespace mr
