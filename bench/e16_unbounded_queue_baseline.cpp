// E16 — §1.1 baseline: with UNBOUNDED queues, greedy dimension-order
// routing with the farthest-first priority routes every permutation in
// 2n−2 steps (Leighton [16, pp.159–162]) — but the queues it needs grow
// with n. This is precisely the trade-off the paper attacks: bounding k
// forces either Ω(n²/k) (dimension order, E04/E08) or the §6 machinery
// (E09).
#include "harness/runner.hpp"
#include "scenarios.hpp"
#include "topo/mesh.hpp"
#include "workload/permutation.hpp"

namespace mr::scenarios {

void register_e16(ScenarioRegistry& registry) {
  ScenarioSpec spec;
  spec.id = "E16";
  spec.label = "unbounded-queue-baseline";
  spec.title = "unbounded-queue dimension-order baseline (2n-2)";
  spec.paper_ref = "§1.1, Leighton [16]";
  spec.body = [](ScenarioReport& ctx) {
    std::vector<int> ns = {16, 32, 64, 128};
    if (ctx.scale() == Scale::Small) ns = {16, 32};
    if (ctx.scale() == Scale::Large) ns.push_back(256);

    Table table({"n", "workload", "steps", "2n-2", "steps <= 2n-2",
                 "max queue (grows with n!)"});
    bool within_2n_minus_2 = true;
    for (const int n : ns) {
      const Mesh mesh = Mesh::square(n);
      // row-to-column: every node of row 0 sends to a distinct row of column
      // n/2 — all packets turn at node (n/2, 0), whose queue grows with n.
      Workload row_to_column;
      for (std::int32_t c = 0; c < n; ++c)
        row_to_column.push_back(
            Demand{mesh.id_of(c, 0), mesh.id_of(n / 2, c), 0});
      const std::vector<std::pair<std::string, Workload>> workloads = {
          {"random perm", random_permutation(mesh, 77)},
          {"transpose", transpose(mesh)},
          {"mirror", mirror(mesh)},
          {"row-to-column", row_to_column},
      };
      for (const auto& [name, w] : workloads) {
        RunSpec spec;
        spec.width = spec.height = n;
        spec.queue_capacity = n * n;  // effectively unbounded
        spec.algorithm = "farthest-first";
        const RunResult r =
            ctx.run(name + " n=" + std::to_string(n), spec, w);
        const bool ok = r.all_delivered && r.steps <= 2 * n - 2;
        within_2n_minus_2 = within_2n_minus_2 && ok;
        table.row()
            .add(n)
            .add(name)
            .add(r.steps)
            .add(std::int64_t(2 * n - 2))
            .add(ok ? "yes" : "NO")
            .add(std::int64_t(r.max_queue));
      }
    }
    ctx.table(table);
    ctx.note(
        "The classic O(n) algorithm exists — at the price of Θ(n) queues. "
        "Compare the max-queue column with k <= 8 in E08 and the constant "
        "834 bound of E09.");
    ctx.check("leighton-2n-minus-2-baseline", within_2n_minus_2);
  };
  registry.add(std::move(spec));
}

}  // namespace mr::scenarios
