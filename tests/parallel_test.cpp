// core/parallel: exception propagation from workers and the
// MESHROUTE_THREADS override. core/worker_pool: the persistent pool the
// sharded engine steps on.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/parallel.hpp"
#include "core/worker_pool.hpp"

namespace mr {
namespace {

// Scoped setenv/unsetenv so a failing assertion can't leak the override
// into later tests.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    const char* old = std::getenv(name);
    if (old != nullptr) saved_ = old;
    had_value_ = old != nullptr;
    if (value != nullptr) {
      ::setenv(name, value, 1);
    } else {
      ::unsetenv(name);
    }
  }
  ~ScopedEnv() {
    if (had_value_) {
      ::setenv(name_.c_str(), saved_.c_str(), 1);
    } else {
      ::unsetenv(name_.c_str());
    }
  }

 private:
  std::string name_;
  std::string saved_;
  bool had_value_ = false;
};

TEST(Parallel, RunsEveryIndexExactlyOnce) {
  constexpr std::size_t kCount = 1000;
  std::vector<std::atomic<int>> hits(kCount);
  parallel_for(kCount, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < kCount; ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(Parallel, ExplicitThreadCountStillCoversAllIndices) {
  constexpr std::size_t kCount = 257;
  for (const std::size_t threads : {std::size_t{1}, std::size_t{3}}) {
    std::vector<std::atomic<int>> hits(kCount);
    parallel_for(kCount, [&](std::size_t i) { hits[i].fetch_add(1); },
                 threads);
    for (std::size_t i = 0; i < kCount; ++i) EXPECT_EQ(hits[i].load(), 1);
  }
}

TEST(Parallel, WorkerExceptionPropagatesToCaller) {
  EXPECT_THROW(
      parallel_for(64,
                   [](std::size_t i) {
                     if (i == 13) throw std::runtime_error("boom");
                   }),
      std::runtime_error);
}

TEST(Parallel, WorkerExceptionMessageIsTheFirstThrown) {
  try {
    parallel_for(
        8, [](std::size_t) -> void { throw std::runtime_error("worker failed"); },
        1);
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "worker failed");
  }
}

TEST(Parallel, ExceptionDoesNotAbortRemainingIterationsPermanently) {
  // After a failed run the pool must still be usable.
  EXPECT_THROW(
      parallel_for(4, [](std::size_t) { throw std::runtime_error("x"); }),
      std::runtime_error);
  std::atomic<int> total{0};
  parallel_for(10, [&](std::size_t) { total.fetch_add(1); });
  EXPECT_EQ(total.load(), 10);
}

TEST(Parallel, MeshrouteThreadsOverridesDefaultCount) {
  ScopedEnv env("MESHROUTE_THREADS", "3");
  EXPECT_EQ(default_thread_count(), 3u);
}

TEST(Parallel, MeshrouteThreadsInvalidFallsBackToAtLeastOne) {
  {
    ScopedEnv env("MESHROUTE_THREADS", "0");
    EXPECT_GE(default_thread_count(), 1u);
  }
  {
    ScopedEnv env("MESHROUTE_THREADS", "not-a-number");
    EXPECT_GE(default_thread_count(), 1u);
  }
}

TEST(Parallel, ZeroCountIsANoOp) {
  std::atomic<int> total{0};
  parallel_for(0, [&](std::size_t) { total.fetch_add(1); });
  EXPECT_EQ(total.load(), 0);
}

TEST(Parallel, FirstErrorCancelsUnclaimedIterations) {
  // Regression: a worker's exception used to leave the other workers
  // claiming and running every remaining index before the rethrow.
  constexpr std::size_t kCount = 100000;
  std::atomic<std::size_t> executed{0};
  EXPECT_THROW(parallel_for(
                   kCount,
                   [&](std::size_t i) {
                     if (i == 0) throw std::runtime_error("early failure");
                     executed.fetch_add(1, std::memory_order_relaxed);
                   },
                   4),
               std::runtime_error);
  EXPECT_LT(executed.load(), kCount / 2)
      << "abort flag did not cancel the remaining iterations";
}

TEST(WorkerPoolTest, RunsEveryIndexExactlyOnceAcrossReuse) {
  WorkerPool pool(4);
  EXPECT_EQ(pool.thread_count(), 4u);
  for (int rep = 0; rep < 3; ++rep) {
    constexpr std::size_t kCount = 997;
    std::vector<std::atomic<int>> hits(kCount);
    pool.run(kCount, [&](std::size_t i) { hits[i].fetch_add(1); });
    for (std::size_t i = 0; i < kCount; ++i) EXPECT_EQ(hits[i].load(), 1);
  }
}

TEST(WorkerPoolTest, SerialPoolRunsInline) {
  WorkerPool pool(1);
  EXPECT_EQ(pool.thread_count(), 1u);
  int total = 0;  // no atomics needed: everything runs on this thread
  pool.run(10, [&](std::size_t) { ++total; });
  EXPECT_EQ(total, 10);
}

TEST(WorkerPoolTest, LowestFailedIndexIsRethrown) {
  WorkerPool pool(4);
  try {
    pool.run(64, [](std::size_t i) {
      if (i % 2 == 1) throw std::runtime_error("task " + std::to_string(i));
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "task 1");
  }
}

TEST(WorkerPoolTest, AllTasksCompleteDespiteErrorsAndPoolStaysUsable) {
  // Unlike parallel_for (which cancels), the pool runs every task: the
  // engine's barrier phases need all bands stepped or none observable.
  WorkerPool pool(3);
  std::atomic<int> executed{0};
  EXPECT_THROW(pool.run(50,
                        [&](std::size_t i) {
                          executed.fetch_add(1);
                          if (i == 7) throw std::runtime_error("x");
                        }),
               std::runtime_error);
  EXPECT_EQ(executed.load(), 50);
  std::atomic<int> total{0};
  pool.run(20, [&](std::size_t) { total.fetch_add(1); });
  EXPECT_EQ(total.load(), 20);
}

TEST(WorkerPoolTest, ZeroCountIsANoOp) {
  WorkerPool pool(2);
  std::atomic<int> total{0};
  pool.run(0, [&](std::size_t) { total.fetch_add(1); });
  EXPECT_EQ(total.load(), 0);
}

}  // namespace
}  // namespace mr
