#include "routing/stray.hpp"

namespace mr {

void StrayRouter::dx_plan_out(NodeCtx& ctx,
                              std::span<const PacketDxView> resident,
                              OutPlan& plan) {
  for (const PacketDxView& v : resident) {
    if (armed(v.state)) {
      // Committed to a deflection: attempt it (and only it) until it lands.
      const Dir d = armed_dir(v.state);
      if (ctx.has_outlink(d) && plan.scheduled(d) == kInvalidPacket)
        plan.schedule(d, v.id);
      continue;
    }
    for (Dir d : {Dir::East, Dir::North, Dir::West, Dir::South}) {
      if (mask_has(v.profitable, d) &&
          plan.scheduled(d) == kInvalidPacket) {
        plan.schedule(d, v.id);
        break;
      }
    }
  }
}

void StrayRouter::dx_plan_in(NodeCtx& ctx,
                             std::span<const PacketDxView> resident,
                             std::span<const DxOffer> offers, InPlan& plan) {
  int free = ctx.capacity - static_cast<int>(resident.size());
  const int start = static_cast<int>(ctx.state % kNumDirs);
  for (int r = 0; r < kNumDirs && free > 0; ++r) {
    const Dir want = static_cast<Dir>((start + r) % kNumDirs);
    for (std::size_t i = 0; i < offers.size(); ++i) {
      if (offers[i].travel_dir == want && !plan.accept[i]) {
        plan.accept[i] = true;
        --free;
        break;
      }
    }
  }
}

void StrayRouter::dx_update(NodeCtx& ctx, std::span<PacketDxView> resident) {
  for (PacketDxView& v : resident) {
    const bool moved = v.arrived_at == ctx.step;
    if (moved) {
      if (armed(v.state) && v.arrival_inlink < kNumDirs &&
          opposite(static_cast<Dir>(v.arrival_inlink)) ==
              armed_dir(v.state)) {
        // The armed deflection landed here: charge one unit of stray debt
        // and disarm. (A profitable hop cannot have happened while armed —
        // plan_out only schedules the armed direction.)
        const std::uint64_t new_debt =
            std::min<std::uint64_t>(debt(v.state) + 1, kDebtMask);
        v.state = (new_debt << kDebtShift);  // disarm, reset streak
      } else {
        v.state &= ~(kStreakMask << kStreakShift);  // reset streak
        v.state &= ~(kArmedBit | kDirMaskBits);
      }
      continue;
    }
    // Blocked this step.
    const std::uint64_t new_streak =
        std::min<std::uint64_t>(streak(v.state) + 1, kStreakMask);
    v.state = (v.state & ~(kStreakMask << kStreakShift)) |
              (new_streak << kStreakShift);
    if (armed(v.state)) {
      // A stuck deflection is re-aimed after a while (the target stayed
      // full); disarming lets the packet try profitable directions again.
      if (new_streak >= static_cast<std::uint64_t>(2 * block_threshold_))
        v.state &= ~(kArmedBit | kDirMaskBits);
      continue;
    }
    if (static_cast<int>(new_streak) >= block_threshold_ &&
        debt(v.state) < delta_) {
      // Arm a deflection: first existing unprofitable outlink, scanning
      // from a per-step rotation so repeated deflections spread out.
      const int start =
          static_cast<int>((ctx.state + v.id) % kNumDirs);
      for (int r = 0; r < kNumDirs; ++r) {
        const Dir d = static_cast<Dir>((start + r) % kNumDirs);
        if (mask_has(v.profitable, d)) continue;
        if (!ctx.has_outlink(d)) continue;
        v.state = (v.state & ~(kArmedBit | kDirMaskBits)) | kArmedBit |
                  static_cast<std::uint64_t>(dir_index(d));
        break;
      }
    }
  }
  ctx.state = (ctx.state + 1) % kNumDirs;
}

}  // namespace mr
