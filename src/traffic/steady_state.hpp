// Steady-state measurement protocol for open-loop traffic: warmup →
// measurement → drain, the standard interconnect-simulator methodology.
//
// The source injects for warmup_steps + measure_steps steps; statistics
// are attributed per phase. Offered load is what the source emitted,
// injected is what entered the network (a full source queue defers entry),
// accepted throughput is deliveries per node per step during the
// measurement phase, and the latency summary covers exactly the packets
// offered during the measurement phase (wherever they deliver). A
// windowed-latency stationarity check flags runs whose latency was still
// drifting — i.e. not yet in steady state — over the measurement phase.
#pragma once

#include <memory>
#include <string>

#include "sim/metrics.hpp"
#include "sim/snapshot.hpp"
#include "traffic/burst.hpp"
#include "traffic/pattern.hpp"
#include "traffic/source.hpp"

namespace mr {

struct SteadyStateSpec {
  std::int32_t width = 0;   ///< router columns
  std::int32_t height = 0;  ///< router rows
  /// Registry topology name ("mesh", "torus", "cmesh-4", ...). Empty means
  /// "mesh". Rates are per TERMINAL: on a concentrated topology
  /// offered/accepted_rate divide by num_terminals(), not routers.
  std::string topology;

  /// Canonical topology selection (see RunSpec::resolved_topology).
  std::string resolved_topology() const {
    return topology.empty() ? "mesh" : topology;
  }
  int queue_capacity = 1;  ///< k
  std::string algorithm;   ///< registry name
  TrafficSpec traffic;
  /// Burst process modulating the source (traffic/burst.hpp). The default
  /// (stationary "none") keeps the plain Bernoulli source; any other kind
  /// makes the offered load time-varying, which stationarity-assuming
  /// consumers (the saturation search) must reject.
  BurstSpec burst;

  Step warmup_steps = 256;
  Step measure_steps = 1024;
  /// Steps allowed past the injection phase to drain in-flight packets;
  /// 0 = auto (generous for sub-saturation loads, bounded so saturated
  /// runs finish). Exhausting it is reported as drained = false.
  Step drain_budget = 0;
  Step pump_ahead = 32;  ///< generation-ahead window of the pump
  /// Consecutive no-progress steps before the run is declared stalled.
  /// Applied with the open-loop stall policy (pending future injections
  /// do not defer the check), so it must exceed the longest plausible
  /// network-wide injection gap at the configured rate.
  Step stall_limit = 4096;

  int stationarity_windows = 4;          ///< measurement-phase split
  double stationarity_tolerance = 0.25;  ///< relative drift allowed

  /// Durable-run store (sim/snapshot.hpp): run_steady_state snapshots the
  /// engine + source + pump + phase accounting every `checkpoint.every`
  /// steps and records the finished result as <key>.done.json; against an
  /// existing store it short-circuits or resumes bit-identically.
  CheckpointSpec checkpoint;
};

/// Per-phase accounting. offered counts source emissions dated inside the
/// phase; injected counts packets that entered the network (or delivered
/// at their source) during it; delivered counts deliveries during it.
struct TrafficPhaseStats {
  Step steps = 0;
  std::int64_t offered = 0;
  std::int64_t injected = 0;
  std::int64_t delivered = 0;
};

struct SteadyStateResult {
  TrafficPhaseStats warmup, measure, drain;

  double offered_rate = 0;   ///< measure offered / (terminals * steps)
  double accepted_rate = 0;  ///< measure delivered / (terminals * steps)
  /// Latency quantiles of the packets offered during the measurement
  /// phase that were delivered by the end of the run.
  LatencySummary latency;
  std::size_t measured_packets = 0;  ///< measurement-phase offered
  std::size_t measured_delivered = 0;

  bool stationary = false;
  /// |second-half mean latency − first-half mean| / overall mean, over
  /// stationarity_windows injection-time windows of the measurement phase.
  double stationarity_drift = 0;

  bool drained = false;  ///< every offered packet delivered
  bool stalled = false;
  Step steps = 0;  ///< last executed step
  int max_queue = 0;
  std::int64_t total_moves = 0;
  std::int64_t total_offered = 0;
  std::int64_t total_delivered = 0;
  std::int64_t backlog_end = 0;  ///< undelivered packets at run end
};

/// Builds the network a steady-state spec routes on: the named registry
/// topology, or the legacy mesh/torus selection when spec.topology is
/// empty.
std::unique_ptr<Topology> steady_state_topology(const SteadyStateSpec& spec);

/// Runs the protocol with a fresh source built from (spec.traffic,
/// spec.burst) through make_traffic_source — the plain BernoulliSource
/// when spec.burst is stationary.
SteadyStateResult run_steady_state(const SteadyStateSpec& spec);

/// Same, with a caller-provided source (e.g. a ReplaySource).
SteadyStateResult run_steady_state(const SteadyStateSpec& spec,
                                   TrafficSource& source);

/// Durable-record round-trip (meshroute-steady/1), used by the checkpoint
/// store's .done.json short-circuit. Serialisation is exact: parsing a
/// serialised result reproduces every field bit for bit.
std::string steady_state_result_to_json(const SteadyStateResult& result);
bool steady_state_result_from_json(const std::string& text,
                                   SteadyStateResult* result,
                                   std::string* error);

}  // namespace mr
