// E13's engine micro-benchmark core, shared between the
// e13_engine_throughput binary (google-benchmark + --json CLI) and the
// E13 scenario registration. Depends only on the simulator libraries so
// the scenario suite never links google-benchmark.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "topo/mesh.hpp"
#include "workload/permutation.hpp"

namespace mr::engine_bench {

inline constexpr const char* kSchema = "meshroute-bench-engine/1";
inline constexpr int kQueueCapacity = 2;

struct RunStats {
  std::string router;
  std::string layout;
  std::int32_t n = 0;
  std::int64_t steps = 0;
  std::int64_t moves = 0;
  double seconds = 0;
  double moves_per_sec = 0;
  std::size_t delivered = 0;
  std::size_t packets = 0;
  bool stalled = false;
  /// Engine mode for this row (DESIGN.md §9). shards/threads = 1 is the
  /// sequential engine; max_steps > 0 means the run was step-budgeted
  /// rather than drained (the n >= 1024 scaled rows).
  int shards = 1;
  int threads = 1;
  std::int64_t max_steps = 0;
};

/// Central-queue routers get monotone (deadlock-free) traffic so the
/// benchmark measures engine throughput, not deadlock spinning; the
/// per-inlink router takes the full permutation.
Workload workload_for(const Mesh& mesh, bool per_inlink);

/// One timed engine run of `name` on an n×n mesh.
RunStats run_once(const std::string& name, std::int32_t n);

/// Same with an explicit engine mode and step budget (0 = the default
/// drain budget). Sharded runs produce bit-identical routing results;
/// only the wall clock changes.
RunStats run_once(const std::string& name, std::int32_t n, int shards,
                  int threads, std::int64_t max_steps);

/// Writes the BENCH_engine.json record (schema kSchema).
bool write_json(const std::string& path, const std::vector<RunStats>& all,
                bool smoke);

/// Validates the BENCH_engine.json schema; prints the first problem found.
bool validate_json(const std::string& path);

/// The fixed sweep: every router × sizes (tiny when `smoke`), best of reps,
/// printed per row. Writes and validates `path`. Returns a process exit
/// code.
int json_sweep(const std::string& path, bool smoke);

/// Throughput regression guard: re-runs every (router, n) present in the
/// baseline BENCH_engine.json at `baseline_path` (written on the same
/// machine) and fails if any falls below (1 - tol) x the baseline
/// moves_per_sec. tol is 0.25 unless MESHROUTE_GUARD_TOL overrides it.
/// Returns a process exit code.
int throughput_guard(const std::string& baseline_path);

}  // namespace mr::engine_bench
