// E06 — §5 "The Torus": the main construction applied to a contiguous
// (n/2)×(n/2) submesh of the n×n torus still yields Ω(n²/k²) (wrap links
// offer no shortcut for traffic confined to a quadrant).
#include "lower_bound/main_construction.hpp"
#include "routing/registry.hpp"
#include "scenarios.hpp"

namespace mr::scenarios {

void register_e06(ScenarioRegistry& registry) {
  ScenarioSpec spec;
  spec.id = "E06";
  spec.label = "torus-lb";
  spec.title = "torus embedding of the main lower bound";
  spec.paper_ref = "§5 'The Torus'";
  spec.body = [](ScenarioReport& ctx) {
    std::vector<std::pair<int, int>> sizes = {{60, 1}, {120, 1}, {216, 1}};
    if (ctx.scale() == Scale::Small) sizes = {{60, 1}};

    Table table({"algorithm", "torus", "submesh m", "k", "certified",
                 "measured", "cert*k^2/m^2", "replay ok"});
    bool all_ok = true;
    for (const std::string& algorithm : dx_minimal_algorithm_names()) {
      for (const auto& [m, k] : sizes) {
        const MainLbParams par = main_lb_params(m, k);
        if (!par.valid) continue;
        const Mesh torus = Mesh::square(2 * m, /*torus=*/true);
        MainConstruction construction(torus, par);
        const auto r = construction.verify_replay(algorithm, k);
        const bool ok = r.stepwise_match && r.final_match &&
                        r.undelivered_at_certified >= 1;
        all_ok = all_ok && ok;
        table.row()
            .add(algorithm)
            .add(std::to_string(2 * m) + "x" + std::to_string(2 * m))
            .add(m)
            .add(k)
            .add(par.certified_steps)
            .add(r.replay_total_steps)
            .add(double(par.certified_steps) * k * k / (double(m) * m), 4)
            .add(ok ? "yes" : "NO");
      }
    }
    ctx.table(table);
    ctx.check("lemma12-replay-on-torus-quadrant", all_ok);
  };
  registry.add(std::move(spec));
}

}  // namespace mr::scenarios
