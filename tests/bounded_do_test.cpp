// Theorem 15 deep-dive: the bounded-queue dimension-order router's proof
// obligations, instrumented — the always-eject invariant of column queues,
// the straight-over-turning priority, turning-interval accounting, and the
// O(n²/k + n) shape across a (n, k) sweep.
#include <gtest/gtest.h>

#include "harness/runner.hpp"
#include "routing/registry.hpp"
#include "sim/engine.hpp"
#include "topo/mesh.hpp"
#include "workload/patterns.hpp"
#include "workload/permutation.hpp"

namespace mr {
namespace {

/// Observes the §5 proof invariant: every node whose column queues (tags
/// N/S) were non-empty at the start of a step ejects a packet from each
/// such queue during that step.
class AlwaysEjectChecker : public Observer {
 public:
  explicit AlwaysEjectChecker(const Mesh& mesh) : mesh_(mesh) {}

  // Called at end of step t; compares against the snapshot taken at the
  // end of step t−1 (queue contents at the start of step t).
  void on_step_end(const Sim& e) override {
    if (!prev_.empty()) {
      // For every node that had a non-empty column queue, at least one of
      // those packets must have left the node (moved or delivered).
      for (const auto& [node, packets] : prev_) {
        bool someone_left = false;
        for (PacketId p : packets) {
          const Packet& pk = e.packet(p);
          if (pk.location != node) {
            someone_left = true;
            break;
          }
        }
        EXPECT_TRUE(someone_left)
            << "column queue at node " << node << " failed to eject at step "
            << e.step();
        if (!someone_left) ++violations_;
      }
    }
    prev_.clear();
    for (NodeId u = 0; u < mesh_.num_nodes(); ++u) {
      std::vector<PacketId> col;
      for (PacketId p : e.packets_at(u)) {
        const QueueTag tag = e.packet(p).queue;
        if (tag == dir_index(Dir::North) || tag == dir_index(Dir::South))
          col.push_back(p);
      }
      if (!col.empty()) prev_.emplace_back(u, std::move(col));
    }
  }

  int violations() const { return violations_; }

 private:
  const Mesh& mesh_;
  std::vector<std::pair<NodeId, std::vector<PacketId>>> prev_;
  int violations_ = 0;
};

TEST(BoundedDo, ColumnQueuesAlwaysEject) {
  const Mesh mesh = Mesh::square(14);
  auto algo = make_algorithm("bounded-dimension-order");
  Engine::Config config;
  config.queue_capacity = 1;  // tightest case
  Engine e(mesh, config, *algo);
  for (const Demand& d : random_permutation(mesh, 41))
    e.add_packet(d.source, d.dest, d.injected_at);
  AlwaysEjectChecker checker(mesh);
  e.add_observer(&checker);
  e.prepare();
  e.run(10000);
  EXPECT_TRUE(e.all_delivered());
  EXPECT_EQ(checker.violations(), 0);
}

TEST(BoundedDo, ColumnQueuesAlwaysEjectUnderHotspot) {
  const Mesh mesh = Mesh::square(12);
  auto algo = make_algorithm("bounded-dimension-order");
  Engine::Config config;
  config.queue_capacity = 2;
  Engine e(mesh, config, *algo);
  for (const Demand& d : hotspot(mesh, mesh.id_of(6, 6), 30))
    e.add_packet(d.source, d.dest, d.injected_at);
  AlwaysEjectChecker checker(mesh);
  e.add_observer(&checker);
  e.prepare();
  e.run(10000);
  EXPECT_TRUE(e.all_delivered());
  EXPECT_EQ(checker.violations(), 0);
}

struct ShapeParam {
  std::int32_t n;
  int k;
};

class Theorem15Shape : public ::testing::TestWithParam<ShapeParam> {};

TEST_P(Theorem15Shape, WithinBudgetOnHardWorkloads) {
  const auto [n, k] = GetParam();
  const Mesh mesh = Mesh::square(n);
  const double budget = double(n) * n / k + n;
  for (const Workload& w :
       {transpose(mesh), mirror(mesh), corner_flood(mesh, n / 2, n / 2),
        random_permutation(mesh, 11)}) {
    RunSpec spec;
    spec.width = spec.height = n;
    spec.queue_capacity = k;
    spec.algorithm = "bounded-dimension-order";
    const RunResult r = run_workload(spec, w);
    ASSERT_TRUE(r.all_delivered) << "n=" << n << " k=" << k;
    EXPECT_LE(double(r.steps), 8.0 * budget);
    EXPECT_LE(r.max_queue, k);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, Theorem15Shape,
                         ::testing::Values(ShapeParam{8, 1}, ShapeParam{8, 2},
                                           ShapeParam{16, 1},
                                           ShapeParam{16, 2},
                                           ShapeParam{16, 4},
                                           ShapeParam{24, 1},
                                           ShapeParam{24, 3}),
                         [](const auto& inf) {
                           return "n" + std::to_string(inf.param.n) + "_k" +
                                  std::to_string(inf.param.k);
                         });

TEST(BoundedDo, RowPacketsNeverEnterColumnQueuesEarly) {
  // Structural invariant: a packet sits in an E/W queue iff it still has
  // horizontal distance to cover.
  const Mesh mesh = Mesh::square(12);
  auto algo = make_algorithm("bounded-dimension-order");
  Engine::Config config;
  config.queue_capacity = 2;
  Engine e(mesh, config, *algo);
  for (const Demand& d : random_permutation(mesh, 13))
    e.add_packet(d.source, d.dest, d.injected_at);

  struct TagChecker : Observer {
    void on_step_end(const Sim& eng) override {
      for (NodeId u = 0; u < eng.mesh().num_nodes(); ++u) {
        for (PacketId p : eng.packets_at(u)) {
          const Packet& pk = eng.packet(p);
          const auto delta = eng.mesh().delta(u, pk.dest);
          if (pk.queue == dir_index(Dir::North) ||
              pk.queue == dir_index(Dir::South)) {
            // Column queues: no horizontal distance left.
            EXPECT_EQ(delta.east, 0);
          }
        }
      }
    }
  } checker;
  e.add_observer(&checker);
  e.prepare();
  e.run(10000);
  EXPECT_TRUE(e.all_delivered());
}

TEST(BoundedDo, KScalingIsMonotoneOnAdversarialTraffic) {
  // More queue space never hurts on the heavy corner flood.
  const Mesh mesh = Mesh::square(16);
  Step prev = 0;
  for (int k : {1, 2, 4, 8}) {
    RunSpec spec;
    spec.width = spec.height = 16;
    spec.queue_capacity = k;
    spec.algorithm = "bounded-dimension-order";
    const RunResult r = run_workload(spec, corner_flood(mesh, 8, 8));
    ASSERT_TRUE(r.all_delivered);
    if (prev != 0) EXPECT_LE(r.steps, prev + 2);  // allow tiny jitter
    prev = r.steps;
  }
}

}  // namespace
}  // namespace mr
