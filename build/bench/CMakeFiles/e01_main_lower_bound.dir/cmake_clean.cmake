file(REMOVE_RECURSE
  "CMakeFiles/e01_main_lower_bound.dir/e01_main_lower_bound.cpp.o"
  "CMakeFiles/e01_main_lower_bound.dir/e01_main_lower_bound.cpp.o.d"
  "e01_main_lower_bound"
  "e01_main_lower_bound.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e01_main_lower_bound.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
