// E13: engine micro-benchmarks — raw stepping throughput of the simulator
// under each router on a random permutation. Not a paper experiment; it
// establishes that the laptop-scale sweeps in E01–E12 are feasible and
// tracks regressions in the hot path.
#include <benchmark/benchmark.h>

#include "routing/registry.hpp"
#include "sim/engine.hpp"
#include "workload/permutation.hpp"

namespace {

void run_router(benchmark::State& state, const std::string& name) {
  const auto n = static_cast<std::int32_t>(state.range(0));
  const mr::Mesh mesh = mr::Mesh::square(n);
  // Central-queue routers get monotone (deadlock-free) traffic so the
  // benchmark measures engine throughput, not deadlock spinning; the
  // per-inlink router takes the full permutation.
  mr::Workload w;
  const bool per_inlink = mr::make_algorithm(name)->queue_layout() ==
                          mr::QueueLayout::PerInlink;
  for (const mr::Demand& d : mr::random_permutation(mesh, 42)) {
    const mr::Coord s = mesh.coord_of(d.source);
    const mr::Coord t = mesh.coord_of(d.dest);
    if (per_inlink || (t.col >= s.col && t.row >= s.row)) w.push_back(d);
  }
  std::int64_t steps = 0;
  std::int64_t moves = 0;
  for (auto _ : state) {
    auto algo = mr::make_algorithm(name);
    mr::Engine::Config config;
    config.queue_capacity = 2;
    mr::Engine engine(mesh, config, *algo);
    for (const mr::Demand& d : w)
      engine.add_packet(d.source, d.dest, d.injected_at);
    engine.prepare();
    steps += engine.run(100000);
    moves += engine.total_moves();
    benchmark::DoNotOptimize(engine.delivered_count());
  }
  state.counters["steps"] =
      benchmark::Counter(static_cast<double>(steps), benchmark::Counter::kAvgIterations);
  state.counters["moves/s"] = benchmark::Counter(
      static_cast<double>(moves), benchmark::Counter::kIsRate);
}

void BM_DimensionOrder(benchmark::State& state) {
  run_router(state, "dimension-order");
}
void BM_AdaptiveAlternate(benchmark::State& state) {
  run_router(state, "adaptive-alternate");
}
void BM_GreedyMatch(benchmark::State& state) {
  run_router(state, "greedy-match");
}
void BM_FarthestFirst(benchmark::State& state) {
  run_router(state, "farthest-first");
}
void BM_BoundedDimensionOrder(benchmark::State& state) {
  run_router(state, "bounded-dimension-order");
}

}  // namespace

BENCHMARK(BM_DimensionOrder)->Arg(16)->Arg(32)->Arg(64);
BENCHMARK(BM_AdaptiveAlternate)->Arg(16)->Arg(32)->Arg(64);
BENCHMARK(BM_GreedyMatch)->Arg(16)->Arg(32)->Arg(64);
BENCHMARK(BM_FarthestFirst)->Arg(16)->Arg(32)->Arg(64);
BENCHMARK(BM_BoundedDimensionOrder)->Arg(16)->Arg(32)->Arg(64);

BENCHMARK_MAIN();
