# Empty compiler generated dependencies file for mr_lower_bound.
# This may be replaced when dependencies are built.
