#include "schedule/path.hpp"

#include <algorithm>

#include "core/assert.hpp"

namespace mr {

PathSet build_paths(const Topology& topo, const Workload& w) {
  PathSet set;
  set.paths.reserve(w.size());
  std::vector<int> load(
      static_cast<std::size_t>(topo.num_nodes()) * kNumDirs, 0);
  for (const Demand& demand : w) {
    PacketPath path;
    path.nodes.push_back(demand.source);
    NodeId cur = demand.source;
    while (cur != demand.dest) {
      const DirMask m = topo.profitable_dirs(cur, demand.dest);
      Dir d;
      if (mask_has(m, Dir::East)) {
        d = Dir::East;
      } else if (mask_has(m, Dir::West)) {
        d = Dir::West;
      } else if (mask_has(m, Dir::North)) {
        d = Dir::North;
      } else {
        MR_REQUIRE_MSG(mask_has(m, Dir::South),
                       "no profitable direction from " << cur);
        d = Dir::South;
      }
      const int used = ++load[link_index(cur, d)];
      set.congestion = std::max(set.congestion, used);
      cur = topo.neighbor(cur, d);
      MR_REQUIRE(cur != kInvalidNode);
      path.nodes.push_back(cur);
      path.dirs.push_back(d);
    }
    set.dilation =
        std::max(set.dilation, static_cast<int>(path.hops()));
    set.paths.push_back(std::move(path));
  }
  return set;
}

}  // namespace mr
