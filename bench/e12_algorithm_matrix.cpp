// E12 — cross table: every router × every workload family (the "who wins
// where" summary the paper's introduction frames). Cells show steps (and
// DNF where a central-queue router deadlocks — itself one of the paper's
// points: simple bounded-queue routers are fragile in the worst case).
#include "harness/runner.hpp"
#include "lower_bound/factory.hpp"
#include "routing/registry.hpp"
#include "scenarios.hpp"
#include "topo/mesh.hpp"
#include "workload/permutation.hpp"

namespace mr::scenarios {

void register_e12(ScenarioRegistry& registry) {
  ScenarioSpec spec;
  spec.id = "E12";
  spec.label = "algorithm-matrix";
  spec.title = "router × workload matrix";
  spec.paper_ref = "§1, §7";
  spec.body = [](ScenarioReport& ctx) {
    const int n = 64;
    const Mesh mesh = Mesh::square(n);

    std::vector<std::pair<std::string, Workload>> workloads = {
        {"random perm", random_permutation(mesh, 42)},
        {"transpose", transpose(mesh)},
        {"bit-reversal", bit_reversal(mesh)},
        {"mirror", mirror(mesh)},
        {"rotation n/2", rotation(mesh, n / 2, 0)},
        {"random 2-2", random_hh(mesh, 2, 9)},
    };
    // Adversarial permutation for DX minimal routers (Theorem 14 instance,
    // sized for k=4 ⇒ valid only for n ≥ ~24·36; at n=64 fall back to k=1
    // geometry but run with k=4 queues — still heavily congested). The
    // construction factory re-targets it onto the 64-mesh (top-left).
    const AdversarialInstance adv =
        adversarial_instance("main", 60, 1, "dimension-order");
    workloads.push_back({"corner flood (Thm14 geometry)",
                         retarget(adv.permutation, Mesh::square(60), mesh)});

    bool bounded_never_dnf = true;
    for (const int k : {4, 16}) {
      ctx.note("### queue size k = " + std::to_string(k));
      std::vector<std::string> headers = {"workload"};
      for (const std::string& a : algorithm_names()) headers.push_back(a);
      Table table(headers);
      for (const auto& [name, w] : workloads) {
        table.row().add(name);
        for (const std::string& algorithm : algorithm_names()) {
          RunSpec spec;
          spec.width = spec.height = n;
          spec.queue_capacity = k;
          spec.algorithm = algorithm;
          spec.max_steps = 400000;
          spec.stall_limit = 5000;
          const RunResult r = run_workload(spec, w);
          if (algorithm == "bounded-dimension-order")
            bounded_never_dnf = bounded_never_dnf && r.all_delivered;
          table.add(r.all_delivered ? std::to_string(r.steps)
                                    : std::string("DNF"));
        }
      }
      ctx.table(table);
    }
    ctx.note(
        "n=64. DNF = store-and-forward deadlock / budget exceeded; the "
        "central-queue routers' fragility at small k versus the bounded "
        "router's uniform completion is the paper's practical point.");
    ctx.check("bounded-dimension-order-never-dnf", bounded_never_dnf);
  };
  registry.add(std::move(spec));
}

}  // namespace mr::scenarios
