file(REMOVE_RECURSE
  "CMakeFiles/mr_sim.dir/engine.cpp.o"
  "CMakeFiles/mr_sim.dir/engine.cpp.o.d"
  "CMakeFiles/mr_sim.dir/metrics.cpp.o"
  "CMakeFiles/mr_sim.dir/metrics.cpp.o.d"
  "CMakeFiles/mr_sim.dir/trace.cpp.o"
  "CMakeFiles/mr_sim.dir/trace.cpp.o.d"
  "libmr_sim.a"
  "libmr_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mr_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
