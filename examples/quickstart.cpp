// Quickstart: route a random permutation on a 32×32 mesh with each of the
// built-in routers and print a comparison table.
//
//   $ ./quickstart [n] [k] [seed]
#include <cstdlib>
#include <iostream>

#include "core/table.hpp"
#include "harness/runner.hpp"
#include "routing/registry.hpp"
#include "topo/mesh.hpp"
#include "workload/permutation.hpp"

int main(int argc, char** argv) {
  const std::int32_t n = argc > 1 ? std::atoi(argv[1]) : 32;
  const int k = argc > 2 ? std::atoi(argv[2]) : 4;
  const std::uint64_t seed = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 7;

  const mr::Mesh mesh = mr::Mesh::square(n);
  const mr::Workload workload = mr::random_permutation(mesh, seed);

  std::cout << "Routing a random permutation of " << workload.size()
            << " packets on a " << n << "x" << n << " mesh, queue size k="
            << k << "\n(diameter lower bound: " << 2 * n - 2
            << " steps)\n\n";

  mr::Table table({"algorithm", "steps", "steps/n", "max queue",
                   "latency p50", "latency max"});
  for (const std::string& name : mr::algorithm_names()) {
    mr::RunSpec spec;
    spec.width = spec.height = n;
    spec.queue_capacity = k;
    spec.algorithm = name;
    spec.max_steps = 200000;
    spec.stall_limit = 5000;
    const mr::RunResult r = mr::run_workload(spec, workload);
    if (!r.all_delivered) {
      // Central-queue routers can store-and-forward deadlock on saturated
      // meshes with small k — the very fragility Theorem 15's per-inlink
      // router avoids. Report it rather than fail.
      table.row()
          .add(name)
          .add("DNF (deadlock)")
          .add("-")
          .add(std::int64_t(r.max_queue))
          .add("-")
          .add("-");
      continue;
    }
    table.row()
        .add(name)
        .add(r.steps)
        .add(double(r.steps) / n, 2)
        .add(std::int64_t(r.max_queue))
        .add(r.latency.p50)
        .add(r.latency.max);
  }
  table.print(std::cout);
  return 0;
}
