# Empty dependencies file for e13_engine_throughput.
# This may be replaced when dependencies are built.
