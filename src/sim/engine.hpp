// Discrete-step, multi-port, synchronous mesh routing engine (paper §2).
//
// Engine is the optimized implementation of the Sim interface
// (sim/sim.hpp): it owns the network configuration (packets, per-node
// queues and states) and executes the five-phase step of §3 under a
// pluggable Algorithm. It validates the model's invariants at runtime:
//   * queue occupancy never exceeds k (per queue for the per-inlink layout),
//   * minimal algorithms only ever move packets along profitable outlinks,
//   * at most one packet is scheduled per outlink and accepted per inlink.
// Violations throw mr::InvariantViolation rather than silently corrupting
// the run.
//
// Determinism: with a fixed initial configuration and algorithm the engine
// is bit-reproducible; all iteration orders are by ascending NodeId and
// travel direction. The naive ReferenceEngine (check/reference_engine.hpp)
// implements the same observable semantics move for move; the differential
// fuzzer (check/fuzz.hpp) asserts the two stay bit-identical.
//
// Sharded parallel stepping (Config::shards > 1) tiles the mesh into
// horizontal row bands and steps them concurrently on a persistent worker
// pool, exchanging frontier offers/acceptances at band boundaries through
// single-writer mailboxes between barrier-separated phases (DESIGN.md §9).
// The handoff protocol preserves every sequential iteration order, so
// fingerprints, digests and counters are bit-identical to shards = 1 for
// every shards/threads combination.
//
// Per-step cost is O(active nodes + moves): queue occupancy is maintained
// as incremental counters, packets carry their queue-slot index and cached
// profitable mask, the active-node list stays sorted by merging newly
// activated nodes instead of re-sorting, and offers are grouped by
// receiving node via a 4-way merge of the per-direction move streams
// instead of a comparison sort.
//
// Observation is digest-based: the engine batches each step's moves,
// deliveries and counters into one StepDigest and dispatches a single
// on_step callback per observer per step — no virtual calls on the
// per-move hot path. Legacy per-event Observers attach through
// LegacyObserverAdapter with bit-identical event order. Optional phase
// profiling (set_phase_profiling) accumulates wall-clock per §3 phase.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "core/assert.hpp"
#include "core/types.hpp"
#include "core/worker_pool.hpp"
#include "sim/algorithm.hpp"
#include "sim/packet.hpp"
#include "sim/sim.hpp"
#include "sim/snapshot.hpp"
#include "topo/topology.hpp"

namespace mr {

/// The five phases of the §3 step pipeline, in execution order. Indices
/// into PhaseProfile::seconds.
enum class StepPhase : std::uint8_t {
  PlanOut = 0,      ///< (a) outqueue policies + plan validation
  Interceptor = 1,  ///< (b) adversary exchanges
  PlanIn = 2,       ///< (c) offer grouping + inqueue policies
  Transmit = 3,     ///< (d) transmissions + capacity checks
  Update = 4,       ///< (e) state updates + active-list compaction
};
inline constexpr int kNumPhases = 5;

constexpr const char* phase_name(StepPhase p) {
  switch (p) {
    case StepPhase::PlanOut: return "plan_out";
    case StepPhase::Interceptor: return "interceptor";
    case StepPhase::PlanIn: return "plan_in";
    case StepPhase::Transmit: return "transmit";
    case StepPhase::Update: return "update";
  }
  return "?";
}

/// Wall-clock profile of the step pipeline, accumulated by the engine when
/// phase profiling is enabled. `total_seconds` covers whole steps
/// (injection and observer dispatch included), so
/// total_seconds - sum(seconds) is the out-of-phase overhead.
struct PhaseProfile {
  std::array<double, kNumPhases> seconds{};
  double total_seconds = 0;
  std::int64_t steps = 0;

  double phase_seconds_sum() const {
    double s = 0;
    for (double v : seconds) s += v;
    return s;
  }
};

class Engine : public Sim {
 public:
  struct Config {
    int queue_capacity = 1;  ///< k, packets per queue (must be >= 1)
    /// Abort run() after this many consecutive steps with no movement, no
    /// delivery and no successful injection while no future-dated
    /// injection is pending (0 disables the check; negative is rejected).
    /// Packets waiting outside the network for a full source queue do NOT
    /// defer the check: they can only enter once something moves, so
    /// counting those steps is what detects a deadlocked network with a
    /// non-empty external buffer.
    Step stall_limit = kDefaultStallLimit;
    /// Open-loop stall policy: when true, a step with no movement and no
    /// successful injection counts toward stall_limit even while
    /// future-dated injections are pending. Required for open-loop traffic
    /// runs, where a pump keeps a generation-ahead window of pending
    /// injections alive for the whole run and the default "no future-dated
    /// injection is pending" clause would otherwise never let a deadlocked
    /// network trip the limit. Off by default (batch semantics unchanged).
    bool stall_counts_pending_injections = false;
    /// Sharded parallel stepping: the mesh is tiled into this many
    /// horizontal row bands and each band steps independently between
    /// deterministic frontier handoffs (see DESIGN.md §9). Clamped to the
    /// mesh height. Results are bit-identical to shards = 1 for every
    /// shards/threads combination. Incompatible with a StepInterceptor.
    int shards = 1;
    /// Worker threads stepping the bands: 1 runs the bands serially on the
    /// calling thread, 0 uses default_thread_count(), values above the
    /// band count are clamped. More than one thread requires the
    /// AlgorithmFactory constructor (per-band algorithm instances).
    int threads = 1;
  };

  /// Creates per-band Algorithm instances so bands can plan concurrently
  /// (Algorithm implementations may keep per-call scratch and are not
  /// required to be thread-safe across nodes). All instances must be
  /// identically configured; only the first is init()ed, so algorithm
  /// state must live in the Sim (true for every in-tree algorithm).
  using AlgorithmFactory = std::function<std::unique_ptr<Algorithm>()>;

  Engine(const Topology& topo, Config config, Algorithm& algorithm);
  Engine(const Topology& topo, Config config, const AlgorithmFactory& factory);

  // --- setup (before prepare()) ----------------------------------------
  /// Adds a packet. injected_at = 0 places it in its source queue before
  /// step 1; later values model dynamic injection (§5 h-h discussion): the
  /// packet enters its source queue at the start of that step, waiting in
  /// an external buffer while the queue is full.
  PacketId add_packet(NodeId source, NodeId dest, Step injected_at = 0);

  /// Open-loop injection pump hook: adds a packet AFTER prepare(), to be
  /// injected at a future step. Requires injected_at > step() and, so the
  /// injection buffer stays sorted without a re-sort, injected_at no
  /// earlier than the last still-pending scheduled injection. Pumped
  /// packets are indistinguishable from packets pre-scheduled with
  /// add_packet for the same step: per-step behaviour, digests and
  /// fingerprints are bit-identical either way.
  PacketId pump_packet(NodeId source, NodeId dest, Step injected_at);

  void set_interceptor(StepInterceptor* interceptor) {
    // Phase (b) exchanges reclassify deliveries between phases (a) and (c),
    // which the banded pipeline does not replay; adversary runs are
    // sequential by construction.
    MR_REQUIRE_MSG(num_shards_ == 1 || interceptor == nullptr,
                   "StepInterceptor requires the sequential engine "
                   "(Config::shards = 1)");
    interceptor_ = interceptor;
  }

  /// Number of row bands actually in use (config value clamped to the mesh
  /// height); 1 means classic sequential stepping.
  int shard_count() const { return num_shards_; }
  /// Execution lanes stepping the bands (1 = serial).
  int thread_count() const {
    return pool_ ? static_cast<int>(pool_->thread_count()) : 1;
  }

  /// Enables (or disables) wall-clock profiling of the five step phases.
  /// Off by default; when off, stepping performs no clock reads.
  void set_phase_profiling(bool enabled) { profiling_ = enabled; }
  bool phase_profiling() const { return profiling_; }
  const PhaseProfile& phase_profile() const { return phase_profile_; }

  /// Finalises the initial configuration: injects step-0 packets, delivers
  /// source==dest packets, calls Algorithm::init, then notifies observers
  /// via on_prepare_end. Must be called exactly once before stepping.
  void prepare();

  // --- execution --------------------------------------------------------
  /// Executes one step of the §3 pipeline. Returns false if the network
  /// was already drained (no step executed).
  bool step_once();

  /// Steps until all packets are delivered or max_steps executed or the
  /// stall limit trips. Returns the number of the last executed step.
  Step run(Step max_steps);

  // --- checkpointing (sim/snapshot.hpp) ----------------------------------
  /// Captures the complete between-steps state as an EngineSnapshot. Only
  /// valid between steps (after prepare()); the snapshot carries the run
  /// identity (topology/algorithm/k/layout/shards) for restore-time
  /// validation. Pure observation: the engine is unchanged.
  EngineSnapshot snapshot() const;

  /// Resets this engine to the state `snap` describes. The engine must
  /// have been constructed with the same topology, algorithm, queue
  /// capacity and shard count as the snapshotting engine, or
  /// SnapshotError{Mismatch} is thrown (naming the field); internally
  /// inconsistent snapshot contents throw SnapshotError{Format}. Works on
  /// a fresh engine (restore instead of prepare()) and on a prepared one
  /// (rewind/fast-forward in place; attached observers stay attached).
  /// Algorithm::init is NOT re-run: algorithm state lives in the node and
  /// packet state words, which the snapshot carries. Continuation is
  /// bit-identical to the run the snapshot was taken from.
  void restore(const EngineSnapshot& snap);

  // --- Sim interface -----------------------------------------------------
  /// Nodes currently holding at least one packet, ascending by NodeId.
  /// Valid between steps and inside on_prepare_end / on_step_end. In
  /// sharded mode the global list is rebuilt lazily by concatenating the
  /// per-band lists (bands own contiguous ascending NodeId ranges, so the
  /// concatenation is sorted).
  std::span<const NodeId> active_nodes() const override;
  /// Occupancy of one inlink queue (PerInlink layout only). O(1): read
  /// from the incrementally maintained counters.
  int occupancy(NodeId u, QueueTag tag) const override {
    MR_REQUIRE(layout_ == QueueLayout::PerInlink);
    return inlink_occ_[inlink_index(u, tag)];
  }
  using Sim::occupancy;
  void exchange_destinations(PacketId a, PacketId b) override;

 private:
  /// One row band of the sharded pipeline: bands own contiguous NodeId
  /// ranges (row-major ids), so per-band sorted lists concatenate to
  /// globally sorted lists — the property the deterministic handoff
  /// protocol rests on. All vectors are reused across steps.
  struct Shard {
    NodeId node_begin = 0;
    NodeId node_end = 0;  ///< one past the last owned node

    // Band-local mirror of active_/active_sorted_.
    std::vector<NodeId> active;
    std::size_t active_sorted = 0;

    // Injection: packets due earlier whose source queue was full, and the
    // per-step staging list (waiting + newly due, sorted by id).
    std::vector<PacketId> waiting;
    std::vector<PacketId> due;
    std::vector<PacketId> injected_deliveries;

    // Phase (a) output. Offers that stay in the band go to dir_offers;
    // offers crossing the band edge go to the frontier mailboxes, consumed
    // by the cyclic successor (frontier_up, travelling north) or
    // predecessor (frontier_down, travelling south). Single writer per
    // mailbox, read only after the phase barrier.
    std::vector<ScheduledMove> moves;
    std::vector<ScheduledMove> deliveries;
    std::array<std::vector<Offer>, kNumDirs> dir_offers;
    std::vector<Offer> frontier_up;
    std::vector<Offer> frontier_down;

    // Phase (c): assembled per-direction offer lists (own + neighbour
    // frontiers), accepted offers (receivers in this band), and accept-back
    // mailboxes telling the sender band which of its frontier offers were
    // accepted (consumed after the phase barrier by prev/next).
    std::array<std::vector<Offer>, kNumDirs> in_offers;
    std::vector<Offer> accepted;
    std::vector<Offer> accept_back_prev;  ///< senders in the cyclic predecessor
    std::vector<Offer> accept_back_next;  ///< senders in the cyclic successor

    // Per-band scratch and counters, merged by the coordinator.
    std::vector<Offer> group;
    OutPlan out_plan;
    InPlan in_plan;
    std::int64_t injected = 0;
    std::int64_t moved = 0;
    std::int64_t delivered = 0;
    std::int64_t arrivals = 0;
    std::int64_t fault_blocked = 0;
    std::int64_t fault_deferred = 0;
    int max_occupancy = 0;
  };

  void inject_due_packets();
  void place_packet(PacketId p, NodeId node, QueueTag tag,
                    std::vector<NodeId>& active_out);
  void remove_from_node(PacketId p);
  void validate_out_plan(NodeId u, const OutPlan& plan);
  void check_capacity_after_transmit(NodeId v);
  void record_occupancy(NodeId u, int& peak);
  /// Sorts the appended tail of active_ and merges it into the sorted
  /// prefix, restoring the ascending-NodeId invariant.
  void merge_active();
  QueueTag arrival_tag(Dir travel_dir) const;
  QueueTag injection_queue_tag(PacketId p) const;
  std::size_t inlink_index(NodeId u, QueueTag tag) const {
    return static_cast<std::size_t>(u) * kNumDirs + tag;
  }
  /// Devirtualised neighbour lookup for the plan/validate inner loops:
  /// one flat table built from the topology at construction, indexed by
  /// (node, direction). kInvalidNode marks a missing link.
  NodeId neighbor_of(NodeId u, Dir d) const {
    return neighbor_tab_[static_cast<std::size_t>(u) * kNumDirs +
                         static_cast<std::size_t>(dir_index(d))];
  }

  // --- sharded stepping (see DESIGN.md §9) ------------------------------
  Engine(const Topology& topo, Config config, std::unique_ptr<Algorithm> first,
         const AlgorithmFactory& factory);
  /// Shared constructor tail: validates the config, sizes the per-node
  /// state, carves the row bands and creates the worker pool.
  void init_engine(const Config& config);
  /// Injects the packets of `due` (already sorted by id) into their source
  /// queues; the out-parameters let the sequential path and each band
  /// account into their own state.
  void inject_packet_list(const std::vector<PacketId>& due,
                          std::vector<PacketId>& waiting_out,
                          std::vector<NodeId>& active_out,
                          std::vector<PacketId>* injected_deliveries_out,
                          std::int64_t& injected, std::int64_t& delivered,
                          std::int64_t& fault_deferred, int& peak);
  /// Drops scheduled moves over unavailable links (down link, down
  /// endpoint) in place, counting them into `blocked`. No-op unless a
  /// fault is active. Runs after phase (a) — before the adversary and the
  /// delivery classification — so a non-minimal router's deflection onto a
  /// dead link is caught too.
  void filter_faulted_moves(std::vector<ScheduledMove>& moves,
                            std::int64_t& blocked);
  /// Distributes the post-prepare() active/waiting state to the bands.
  void distribute_to_shards();
  /// Runs fn(s) for every band, on the pool when one exists. A full
  /// barrier; exceptions rethrow from the lowest band index.
  void run_shards(const std::function<void(std::size_t)>& fn);
  bool step_parallel();
  int shard_of_node(NodeId u) const {
    return band_of_row_[static_cast<std::size_t>(u) /
                        static_cast<std::size_t>(topo_width_)];
  }

  Algorithm* algorithm_;  ///< instance 0; planning uses shard_algorithms_
  std::vector<std::unique_ptr<Algorithm>> owned_algorithms_;
  /// Planning instance per band (all aliases of algorithm_ when the
  /// reference constructor was used).
  std::vector<Algorithm*> shard_algorithms_;
  int num_shards_ = 1;
  std::vector<std::int32_t> band_of_row_;
  std::vector<Shard> shards_;
  std::unique_ptr<WorkerPool> pool_;
  /// False when the per-band active lists are ahead of active_; the global
  /// list is rebuilt on demand in active_nodes().
  mutable bool active_cache_valid_ = true;
  Step stall_limit_;
  bool stall_counts_pending_;
  bool enforce_minimal_;
  int max_stray_ = -1;  ///< §5 nonminimal containment (when not minimal)

  /// PerInlink layout only: occupancy counter per (node, inlink queue),
  /// updated in place_packet/remove_from_node.
  std::vector<std::int32_t> inlink_occ_;

  /// Flat (node × direction) neighbour table; see neighbor_of(). Built
  /// once in init_engine so the step loops never call the virtual
  /// Topology::neighbor.
  std::vector<NodeId> neighbor_tab_;

  // injection buffer: (step, packet) sorted ascending; cursor advances.
  std::vector<std::pair<Step, PacketId>> injections_;
  std::size_t injection_cursor_ = 0;
  std::vector<PacketId> waiting_injections_;  // due but queue was full

  StepInterceptor* interceptor_ = nullptr;

  bool prepared_ = false;
  Step stall_run_ = 0;
  /// Packets that entered the network (or were delivered at their source)
  /// during the current step's injection phase; part of stall detection.
  std::int64_t injected_this_step_ = 0;

  bool profiling_ = false;
  PhaseProfile phase_profile_;

  // Nodes currently holding >=1 packet. The first active_sorted_ entries
  // are sorted ascending; place_packet appends newly activated nodes past
  // that prefix and merge_active() restores the invariant. Idle nodes cost
  // nothing per step. Mutable: in sharded mode this is a cache of the
  // per-band lists, rebuilt lazily inside const active_nodes().
  mutable std::vector<NodeId> active_;
  std::size_t active_sorted_ = 0;
  std::vector<std::uint8_t> is_active_;

  // scratch (reused per step, no allocation on the hot path)
  std::vector<ScheduledMove> moves_;
  /// Offers bucketed by travel direction. For a fixed direction the mesh
  /// neighbor map is monotone in the sender, so each bucket is sorted by
  /// receiving node by construction (torus wrap links excepted).
  std::vector<Offer> dir_offers_[kNumDirs];
  std::vector<Offer> group_;
  std::vector<Offer> accepted_;
  std::vector<const ScheduledMove*> deliveries_;
  std::vector<PacketId> due_;
  std::vector<std::uint8_t> packet_scheduled_;
  OutPlan out_plan_;
  InPlan in_plan_;

  // Digest scratch (valid during observer dispatch only). digest_moves_ is
  // built in phase (d) — delivering hops first, then accepted hops, both
  // in engine order — and only when at least one observer is registered.
  std::vector<MoveRecord> digest_moves_;
  std::vector<PacketId> injected_deliveries_;
  std::int64_t exchanges_before_step_ = 0;
};

}  // namespace mr
