#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>

#include "harness/csv_export.hpp"

namespace mr {
namespace {

TEST(CsvExport, NoopWithoutEnv) {
  unsetenv("MESHROUTE_OUTPUT_DIR");
  Table t({"a"});
  t.row().add(1);
  EXPECT_EQ(export_csv(t, "x"), "");
  EXPECT_EQ(csv_output_dir(), "");
}

TEST(CsvExport, WritesSanitisedFile) {
  const auto dir =
      std::filesystem::temp_directory_path() / "mr_csv_export_test";
  std::filesystem::create_directories(dir);
  setenv("MESHROUTE_OUTPUT_DIR", dir.c_str(), 1);

  Table t({"n", "steps"});
  t.row().add(8).add(14);
  const std::string path = export_csv(t, "E01 weird/slug!");
  ASSERT_FALSE(path.empty());
  EXPECT_NE(path.find("e01_weird_slug_"), std::string::npos);

  std::ifstream in(path);
  std::string header, row;
  std::getline(in, header);
  std::getline(in, row);
  EXPECT_EQ(header, "n,steps");
  EXPECT_EQ(row, "8,14");

  unsetenv("MESHROUTE_OUTPUT_DIR");
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace mr
