#include "topo/cmesh.hpp"

#include <sstream>

namespace mr {

CMesh::CMesh(std::int32_t width, std::int32_t height,
             std::int32_t concentration)
    : Topology(width, height, /*wraps=*/false), concentration_(concentration) {
  MR_REQUIRE_MSG(concentration >= 1,
                 "cmesh concentration must be positive, got " << concentration);
}

std::string CMesh::name() const {
  std::ostringstream os;
  os << "cmesh-" << concentration_;
  return os.str();
}

NodeId CMesh::neighbor(NodeId id, Dir d) const {
  Coord c = coord_of(id);
  switch (d) {
    case Dir::North: c.row += 1; break;
    case Dir::South: c.row -= 1; break;
    case Dir::East: c.col += 1; break;
    case Dir::West: c.col -= 1; break;
  }
  if (!contains(c)) return kInvalidNode;
  return id_of(c);
}

mr::Delta CMesh::delta(NodeId from, NodeId to) const {
  const Coord a = coord_of(from);
  const Coord b = coord_of(to);
  mr::Delta d;
  d.east = b.col - a.col;
  d.north = b.row - a.row;
  return d;
}

}  // namespace mr
