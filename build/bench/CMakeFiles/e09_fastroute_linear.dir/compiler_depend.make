# Empty compiler generated dependencies file for e09_fastroute_linear.
# This may be replaced when dependencies are built.
