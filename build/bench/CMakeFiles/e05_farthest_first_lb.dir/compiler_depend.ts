# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for e05_farthest_first_lb.
