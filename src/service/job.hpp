// Job specs for meshrouted: the JSON body of a {"op": "submit"} request,
// parsed into the harness RunSpec the daemon executes.
//
// Job JSON schema (all numbers JSON numbers, all optional unless noted):
//   {
//     "algorithm": "...",        required — routing registry name
//     "width": W, "height": H,   required — router grid
//     "topology": "mesh",        registry name (mesh, torus, cmesh-N)
//     "k": 1,                    queue capacity
//     "max_steps": 0,            0 = auto budget
//     "stall_limit": ...,
//     "shards": 1, "threads": 1, sharded-engine request
//     "sample_every": 16,        telemetry sampling period
//     "traffic": {               presence selects an open-loop run
//       "pattern": "uniform",    uniform | transpose | bitcomp | tornado |
//                                hotspot
//       "rate": 0.1, "seed": 1, "steps": N   (steps required)
//     },
//     "checkpoint": {"dir": "...", "every": 256, "key": "..."}
//   }
// Without "traffic" the job routes a random-permutation batch workload
// seeded by "seed" (default 1).
#pragma once

#include <string>

#include "core/json_min.hpp"
#include "harness/runner.hpp"
#include "traffic/pattern.hpp"

namespace mr {

struct JobSpec {
  RunSpec run;
  bool open_loop = false;  ///< run with a BernoulliSource (see `traffic`)
  TrafficSpec traffic;
  std::uint64_t workload_seed = 1;  ///< batch permutation seed (closed loop)
  std::string slug;                 ///< telemetry export slug; empty = auto
};

/// Parses the "job" object of a submit request. On failure returns false
/// and describes the problem in *error.
bool parse_job_spec(const json::Value& job, JobSpec* out, std::string* error);

/// Executes the job: builds the topology/workload/source, runs it through
/// run_workload with telemetry series enabled, and exports the
/// meshroute-telemetry/1 artefacts under `work_dir`. The result's
/// telemetry_path names the JSONL file to stream. Throws on engine errors
/// (callers frame those as {"kind": "error"}).
RunResult execute_job(const JobSpec& spec, const std::string& work_dir);

}  // namespace mr
