// Fingerprint-equivalence regression test for the engine hot path.
//
// Steps a fixed set of seed workloads under every registered router and
// compares the per-step fingerprint() sequence against golden values
// captured before the incremental-bookkeeping refactor. Any change to
// iteration order (node order, offer grouping, injection order, queue
// order after removal) shows up as a mismatch here.
//
// Regenerate goldens (only when an intentional semantic change is made):
//   MESHROUTE_REGEN_GOLDENS=1 ./fingerprint_regression_test
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "routing/registry.hpp"
#include "sim/engine.hpp"
#include "topo/mesh.hpp"
#include "workload/permutation.hpp"

#ifndef MESHROUTE_GOLDEN_FILE
#define MESHROUTE_GOLDEN_FILE "engine_fingerprints.txt"
#endif

namespace mr {
namespace {

struct Scenario {
  std::string router;
  std::int32_t n = 0;
  bool torus = false;
  int k = 1;
  std::uint64_t seed = 0;
  Step steps = 0;
  int h = 1;  ///< h-h workload via random_hh when > 1

  std::string key() const {
    std::ostringstream os;
    os << router << "/n" << n << (torus ? "t" : "m") << "/k" << k << "/s"
       << seed;
    if (h > 1) os << "/h" << h;
    return os.str();
  }
};

std::vector<Scenario> scenarios() {
  std::vector<Scenario> s;
  for (const std::string& name : algorithm_names()) {
    s.push_back({name, 12, false, 1, 7, 48});
    s.push_back({name, 12, false, 2, 8, 48});
    // h-h (h > 1) pins: every node sends/receives h packets, so the
    // waiting-injection and queue-contention paths run far hotter than
    // under a permutation.
    s.push_back({name, 10, false, 2, 11, 48, /*h=*/2});
  }
  // Torus coverage: wrap links break the monotone-neighbor property the
  // mesh enjoys, so the offer-grouping order needs its own goldens.
  // (stray-2 and farthest-first stay mesh-only: the stray rectangle and
  // farthest-first distance ordering are not defined across wrap links.)
  for (const std::string& name : dx_minimal_algorithm_names()) {
    s.push_back({name, 10, true, 2, 9, 48});
    s.push_back({name, 10, true, 1, 13, 48});
    s.push_back({name, 10, true, 4, 14, 48});
    s.push_back({name, 8, true, 2, 12, 48, /*h=*/3});
  }
  s.push_back({"bounded-dimension-order", 10, true, 2, 9, 48});
  s.push_back({"bounded-dimension-order", 10, true, 4, 14, 48});
  s.push_back({"bounded-dimension-order", 8, true, 2, 12, 48, /*h=*/3});
  return s;
}

/// Fingerprint after prepare() and after each executed step. `shards` /
/// `threads` select the sharded stepping mode (DESIGN.md §9); the goldens
/// are captured sequentially, so any divergence under a sharded trace is a
/// determinism bug in the boundary-handoff protocol.
std::vector<std::uint64_t> trace(const Scenario& sc, int shards = 1,
                                 int threads = 1) {
  const Mesh mesh = Mesh::square(sc.n, sc.torus);
  Engine::Config config;
  config.queue_capacity = sc.k;
  config.shards = shards;
  config.threads = threads;
  Engine e(mesh, config, [&] { return make_algorithm(sc.router); });
  const Workload w = sc.h > 1 ? random_hh(mesh, sc.h, sc.seed)
                              : random_permutation(mesh, sc.seed);
  for (std::size_t i = 0; i < w.size(); ++i) {
    // Stagger a fifth of the injections so the delayed-injection and
    // queue-full waiting paths are exercised, not just the static case.
    const Step at = (i % 5 == 0) ? static_cast<Step>(i % 7) : 0;
    e.add_packet(w[i].source, w[i].dest, at);
  }
  // Extra packets at already-used sources force waiting_injections_.
  for (std::int32_t c = 0; c < 8 && c < sc.n; ++c)
    e.add_packet(mesh.id_of(c, 0), mesh.id_of(sc.n - 1, sc.n - 1),
                 /*injected_at=*/2);
  e.prepare();
  std::vector<std::uint64_t> out;
  out.push_back(e.fingerprint());
  for (Step t = 0; t < sc.steps && !e.all_delivered(); ++t) {
    e.step_once();
    out.push_back(e.fingerprint());
  }
  return out;
}

std::map<std::string, std::vector<std::uint64_t>> load_goldens() {
  std::map<std::string, std::vector<std::uint64_t>> goldens;
  std::ifstream in(MESHROUTE_GOLDEN_FILE);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream is(line);
    std::string key;
    is >> key;
    std::vector<std::uint64_t> fps;
    std::string hex;
    while (is >> hex) fps.push_back(std::stoull(hex, nullptr, 16));
    goldens[key] = std::move(fps);
  }
  return goldens;
}

TEST(FingerprintRegression, AllRoutersMatchGoldens) {
  if (std::getenv("MESHROUTE_REGEN_GOLDENS") != nullptr) {
    std::ofstream out(MESHROUTE_GOLDEN_FILE);
    ASSERT_TRUE(out.good()) << "cannot write " << MESHROUTE_GOLDEN_FILE;
    out << "# per-step engine fingerprints; format: key fp0 fp1 ... (hex)\n"
        << "# fp0 is the post-prepare() configuration.\n";
    for (const Scenario& sc : scenarios()) {
      out << sc.key() << std::hex;
      for (std::uint64_t fp : trace(sc)) out << ' ' << fp;
      out << std::dec << '\n';
    }
    GTEST_SKIP() << "goldens regenerated at " << MESHROUTE_GOLDEN_FILE;
  }

  const auto goldens = load_goldens();
  ASSERT_FALSE(goldens.empty())
      << "no goldens at " << MESHROUTE_GOLDEN_FILE
      << " — run once with MESHROUTE_REGEN_GOLDENS=1";
  for (const Scenario& sc : scenarios()) {
    const auto it = goldens.find(sc.key());
    ASSERT_NE(it, goldens.end()) << "no golden for " << sc.key();
    const std::vector<std::uint64_t> got = trace(sc);
    ASSERT_EQ(got.size(), it->second.size()) << sc.key();
    for (std::size_t t = 0; t < got.size(); ++t)
      ASSERT_EQ(got[t], it->second[t])
          << sc.key() << " diverges at step " << t;
  }
}

// The sharded engine must reproduce the sequential goldens bit for bit —
// same files, no parallel variants. A subset of the scenario grid keeps
// the runtime modest while still covering every router on both
// topologies (k = 2 rows of the grid).
TEST(FingerprintRegression, ShardedEngineMatchesSequentialGoldens) {
  if (std::getenv("MESHROUTE_REGEN_GOLDENS") != nullptr)
    GTEST_SKIP() << "goldens are always captured sequentially";
  const auto goldens = load_goldens();
  ASSERT_FALSE(goldens.empty())
      << "no goldens at " << MESHROUTE_GOLDEN_FILE
      << " — run once with MESHROUTE_REGEN_GOLDENS=1";
  struct Mode {
    int shards;
    int threads;
  };
  for (const Scenario& sc : scenarios()) {
    if (sc.k != 2) continue;
    const auto it = goldens.find(sc.key());
    ASSERT_NE(it, goldens.end()) << "no golden for " << sc.key();
    for (const Mode m : {Mode{2, 2}, Mode{5, 4}}) {
      const std::vector<std::uint64_t> got = trace(sc, m.shards, m.threads);
      ASSERT_EQ(got.size(), it->second.size()) << sc.key();
      for (std::size_t t = 0; t < got.size(); ++t)
        ASSERT_EQ(got[t], it->second[t])
            << sc.key() << " shards=" << m.shards << " threads=" << m.threads
            << " diverges at step " << t;
    }
  }
}

}  // namespace
}  // namespace mr
