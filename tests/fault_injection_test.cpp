// Link/node fault injection (sim/fault.hpp) end to end: schedule grammar
// round trips and topology validation, engine fault semantics (deferred
// injections, dropped moves, recovery after transient windows),
// sequential-vs-sharded fingerprint equivalence under faults for every
// registered router, Engine-vs-ReferenceEngine lockstep via the fuzzer
// entry point, oracle validity on the degraded topology, and the
// no-schedule path staying bit-identical to a fault-free run.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "check/fuzz.hpp"
#include "check/oracles.hpp"
#include "routing/registry.hpp"
#include "sim/engine.hpp"
#include "sim/fault.hpp"
#include "sim/trace.hpp"
#include "topo/mesh.hpp"
#include "workload/permutation.hpp"

namespace mr {
namespace {

FaultSchedule schedule_of(const std::string& text) {
  FaultSchedule s;
  std::string error;
  EXPECT_TRUE(parse_fault_schedule(text, &s, &error)) << error;
  return s;
}

TEST(FaultSchedule, FormatParseRoundTrip) {
  for (const std::string& text :
       {std::string("node:5@3-20"), std::string("link:7:E@1"),
        std::string("node:0@2-9,link:12:N@4-40,node:3@1")}) {
    const FaultSchedule s = schedule_of(text);
    EXPECT_EQ(format_fault_schedule(s), text);
  }
  EXPECT_EQ(format_fault_schedule(FaultSchedule{}), "none");
  EXPECT_TRUE(schedule_of("none").empty());
  EXPECT_TRUE(schedule_of("").empty());
}

TEST(FaultSchedule, MalformedSpecsRejected) {
  FaultSchedule s;
  std::string error;
  for (const char* bad :
       {"node:5", "node:5@0", "node:5@4-2", "node:x@3", "link:5@3",
        "link:5:Q@3", "gate:5@3", "node:5@3-"}) {
    EXPECT_FALSE(parse_fault_schedule(bad, &s, &error)) << bad;
    EXPECT_FALSE(error.empty()) << bad;
  }
}

TEST(FaultSchedule, ValidationAgainstTopology) {
  const Mesh mesh = Mesh::square(4);  // nodes 0..15
  EXPECT_EQ(validate_fault_schedule(schedule_of("node:15@2"), mesh), "");
  EXPECT_EQ(validate_fault_schedule(schedule_of("link:5:N@2"), mesh), "");
  EXPECT_NE(validate_fault_schedule(schedule_of("node:16@2"), mesh), "");
  // Node 0 sits in the south-west corner: no south or west link.
  EXPECT_NE(validate_fault_schedule(schedule_of("link:0:S@2"), mesh), "");
  EXPECT_NE(validate_fault_schedule(schedule_of("link:0:W@2"), mesh), "");
}

TEST(FaultSchedule, WindowQueries) {
  const FaultSchedule s = schedule_of("node:5@3-10,link:7:E@12-20");
  EXPECT_FALSE(s.active_at(2));
  EXPECT_TRUE(s.active_at(3));
  EXPECT_TRUE(s.active_at(9));
  EXPECT_FALSE(s.active_at(10));  // half-open window
  EXPECT_TRUE(s.active_at(12));
  EXPECT_FALSE(s.active_at(20));
  EXPECT_TRUE(s.node_down_at(5, 3));
  EXPECT_FALSE(s.node_down_at(5, 10));
  EXPECT_FALSE(s.node_down_at(7, 15));  // link fault: node stays up
  // Epochs move exactly at window boundaries.
  EXPECT_EQ(s.epoch_at(2), 0);
  EXPECT_LT(s.epoch_at(2), s.epoch_at(3));
  EXPECT_LT(s.epoch_at(9), s.epoch_at(10));
}

// A transient node fault defers every injection at the node until the
// window lifts, surfaces the deferrals in the digest counters, and the
// run still delivers everything afterwards.
TEST(FaultInjection, NodeFaultDefersInjectionsAndRecovers) {
  const Mesh mesh = Mesh::square(6);
  Engine::Config config;
  config.queue_capacity = 2;
  Engine e(mesh, config, [] { return make_algorithm("dimension-order"); });
  e.set_fault_schedule(schedule_of("node:14@1-30"));
  e.add_packet(14, 27, /*injected_at=*/2);  // source down until step 30
  e.add_packet(3, 32, /*injected_at=*/1);   // unaffected
  std::int64_t deferred = 0;

  class Counter final : public StepObserver {
   public:
    explicit Counter(std::int64_t& deferred) : deferred_(deferred) {}
    void on_step(const Sim&, const StepDigest& d) override {
      deferred_ += d.fault_deferred;
    }

   private:
    std::int64_t& deferred_;
  };
  Counter counter(deferred);
  e.add_observer(&counter);

  e.prepare();
  e.run(512);
  EXPECT_TRUE(e.all_delivered());
  EXPECT_FALSE(e.stalled());
  // The deferred packet re-offers every step of the window.
  EXPECT_GE(deferred, 25);
  // It cannot have entered before the node came back up at step 30.
  EXPECT_GE(e.packet(0).delivered_at, 30);
}

// A permanent node fault on the only route makes the run stall (the
// reroute-or-stall "stall" arm), and the stall is identical with and
// without sharding.
TEST(FaultInjection, PermanentFaultStalls) {
  const Mesh mesh = Mesh::square(4);
  for (const int shards : {1, 4}) {
    Engine::Config config;
    config.queue_capacity = 2;
    config.stall_limit = 32;
    config.shards = shards;
    Engine e(mesh, config, [] { return make_algorithm("dimension-order"); });
    // Node 5 never recovers; a packet routed dimension-order from 4 to 6
    // must pass through 5 (row first on row 1).
    e.set_fault_schedule(schedule_of("node:5@1"));
    e.add_packet(4, 6);
    e.prepare();
    e.run(512);
    EXPECT_TRUE(e.stalled()) << "shards=" << shards;
    EXPECT_EQ(e.delivered_count(), 0u) << "shards=" << shards;
  }
}

// Sequential and sharded engines must agree bit for bit under an active
// fault schedule, for every registered router.
TEST(FaultInjection, ShardedMatchesSequentialUnderFaults) {
  const std::int32_t n = 8;
  const FaultSchedule faults =
      schedule_of("node:27@2-14,link:44:E@5-22,node:11@8");
  for (const std::string& router : algorithm_names()) {
    std::vector<std::vector<std::uint64_t>> prints;
    std::vector<std::uint64_t> hashes;
    for (const int shards : {1, 4}) {
      const Mesh mesh = Mesh::square(n);
      Engine::Config config;
      config.queue_capacity = 2;
      config.stall_limit = 48;
      config.shards = shards;
      config.threads = shards == 1 ? 1 : 2;
      Engine e(mesh, config, [&] { return make_algorithm(router); });
      e.set_fault_schedule(faults);
      const Workload w = random_partial_permutation(mesh, 0.4, 1234);
      for (const Demand& d : w) e.add_packet(d.source, d.dest, d.injected_at);
      DigestHasher hasher;
      e.add_observer(&hasher);
      e.prepare();
      std::vector<std::uint64_t> fp{e.fingerprint()};
      for (Step s = 0; s < 160 && !e.all_delivered() && !e.stalled(); ++s) {
        e.step_once();
        fp.push_back(e.fingerprint());
      }
      prints.push_back(std::move(fp));
      hashes.push_back(hasher.hash());
    }
    ASSERT_EQ(prints[0].size(), prints[1].size()) << router;
    for (std::size_t i = 0; i < prints[0].size(); ++i)
      ASSERT_EQ(prints[0][i], prints[1][i])
          << router << " fingerprint diverges at step " << i;
    EXPECT_EQ(hashes[0], hashes[1]) << router;
  }
}

// Differential lockstep against the ReferenceEngine under fault
// schedules, through the fuzzer entry point (which also runs the §2
// oracles and the offline trace replay on the degraded topology).
TEST(FaultInjection, ReferenceLockstepUnderFaults) {
  for (const std::string& router : algorithm_names()) {
    FuzzCase c;
    c.algorithm = router;
    c.n = 6;
    c.k = 2;
    c.budget = 512;
    c.faults = schedule_of("node:14@3-30,link:21:N@6-18");
    const Mesh mesh = Mesh::square(c.n);
    c.demands = random_partial_permutation(mesh, 0.5, 77);
    EXPECT_EQ(run_fuzz_case(c), "") << router;
  }
}

// The §2 oracles hold on the degraded topology: queue bound, link
// capacity, minimality (on the masked profitable sets) and the offline
// trace replay, on a run whose fault window is actually exercised.
TEST(FaultInjection, OraclesHoldOnDegradedTopology) {
  const Mesh mesh = Mesh::square(8);
  Engine::Config config;
  config.queue_capacity = 2;
  config.stall_limit = 64;
  Engine e(mesh, config, [] { return make_algorithm("adaptive-alternate"); });
  const FaultSchedule faults = schedule_of("node:27@2-40,link:12:E@4-32");
  e.set_fault_schedule(faults);
  const Workload w = random_partial_permutation(mesh, 0.3, 5);
  for (const Demand& d : w) e.add_packet(d.source, d.dest, d.injected_at);

  QueueBoundOracle queue_bound;
  LinkCapacityOracle link_capacity;
  auto algo = make_algorithm("adaptive-alternate");
  ProfitableMoveOracle profitable(algo->minimal(), algo->max_stray());
  TraceRecorder trace;
  e.add_observer(&queue_bound);
  e.add_observer(&link_capacity);
  e.add_observer(&profitable);
  e.add_observer(&trace);

  e.prepare();
  e.run(1024);
  EXPECT_TRUE(e.all_delivered());
  EXPECT_EQ(run_trace_oracles(trace.events(), mesh, e.all_packets(),
                              config.queue_capacity, algo->queue_layout(),
                              &faults),
            "");
}

// Installing an EMPTY schedule must leave the run bit-identical to one
// with no schedule at all — the guard for the fingerprint goldens.
TEST(FaultInjection, EmptyScheduleIsIdentityOnFingerprints) {
  const Mesh mesh = Mesh::square(6);
  std::vector<std::vector<std::uint64_t>> prints;
  for (const bool install : {false, true}) {
    Engine::Config config;
    config.queue_capacity = 2;
    Engine e(mesh, config, [] { return make_algorithm("dimension-order"); });
    if (install) e.set_fault_schedule(FaultSchedule{});
    const Workload w = random_permutation(mesh, 9);
    for (const Demand& d : w) e.add_packet(d.source, d.dest, d.injected_at);
    e.prepare();
    std::vector<std::uint64_t> fp{e.fingerprint()};
    while (!e.all_delivered() && !e.stalled()) {
      e.step_once();
      fp.push_back(e.fingerprint());
    }
    prints.push_back(std::move(fp));
  }
  EXPECT_EQ(prints[0], prints[1]);
}

// fault= / burst= keys round trip through the fuzzer spec grammar, so a
// shrunk repro line replays the exact same case.
TEST(FuzzSpec, FaultAndBurstKeysRoundTrip) {
  FuzzCase c;
  c.algorithm = "adaptive-alternate";
  c.n = 6;
  c.k = 2;
  c.budget = 256;
  c.traffic = "uniform";
  c.rate = 0.25;
  c.tseed = 9;
  c.tsteps = 20;
  c.burst = [] {
    BurstSpec b;
    std::string error;
    EXPECT_TRUE(parse_burst_spec("mmpp:0.2:0.1", &b, &error)) << error;
    return b;
  }();
  c.faults = schedule_of("node:14@3-30,link:21:N@6-18");
  c.demands.push_back({7, 29, 2});

  const std::string line = format_fuzz_case(c);
  EXPECT_NE(line.find("burst=mmpp:0.2:0.1"), std::string::npos) << line;
  EXPECT_NE(line.find("fault=node:14@3-30,link:21:N@6-18"),
            std::string::npos)
      << line;

  FuzzCase back;
  std::string error;
  ASSERT_TRUE(parse_fuzz_case(line, &back, &error)) << error;
  EXPECT_EQ(format_fuzz_case(back), line);
  EXPECT_EQ(format_fault_schedule(back.faults), format_fault_schedule(c.faults));
  EXPECT_EQ(format_burst_spec(back.burst), format_burst_spec(c.burst));
  // And the round-tripped case runs clean differentially.
  EXPECT_EQ(run_fuzz_case(back), "");
}

TEST(FuzzSpec, MalformedFaultAndBurstKeysRejected) {
  FuzzCase out;
  std::string error;
  const std::string base = "algo=dimension-order n=6 k=2 budget=64 ";
  EXPECT_FALSE(parse_fuzz_case(base + "fault=node:5@x demands=1-2@1", &out,
                               &error));
  EXPECT_NE(error.find("fault"), std::string::npos) << error;
  // Schedule is validated against the case's topology: node 40 does not
  // exist on a 6x6 mesh.
  EXPECT_FALSE(parse_fuzz_case(base + "fault=node:40@2 demands=1-2@1", &out,
                               &error));
  EXPECT_FALSE(parse_fuzz_case(
      base + "traffic=uniform rate=0.1 tseed=1 tsteps=8 burst=sawtooth:3 "
             "demands=1-2@1",
      &out, &error));
  EXPECT_NE(error.find("burst"), std::string::npos) << error;
}

// The shrinker, driven by an injected predicate: ddmin must reduce both
// the demand list and the fault-event list to the failure-relevant core,
// and the shrunk case's spec line must replay the same failure.
TEST(FuzzShrink, PredicateShrinksDemandsAndFaultEvents) {
  FuzzCase c;
  c.algorithm = "dimension-order";
  c.n = 6;
  c.k = 2;
  c.budget = 256;
  c.faults = schedule_of("node:14@3-30,link:21:N@6-18,node:8@2-5");
  c.demands = {{7, 29, 2}, {5, 30, 1}, {12, 3, 4}, {20, 11, 1}, {1, 34, 3}};

  // "Fails" iff the demand (5 -> 30) and a fault window over node 14 are
  // both still present — everything else is noise the shrinker must drop.
  const FuzzRunner predicate = [](const FuzzCase& x) -> std::string {
    bool demand = false;
    for (const Demand& d : x.demands)
      demand = demand || (d.source == 5 && d.dest == 30);
    bool fault = false;
    for (const FaultEvent& e : x.faults.events)
      fault = fault ||
              (e.kind == FaultEvent::Kind::Node && e.node == 14);
    return demand && fault ? "synthetic failure" : "";
  };
  ASSERT_NE(predicate(c), "");

  const FuzzCase shrunk = shrink_fuzz_case(c, predicate);
  EXPECT_EQ(shrunk.demands.size(), 1u);
  EXPECT_EQ(shrunk.demands[0].source, 5);
  EXPECT_EQ(shrunk.demands[0].dest, 30);
  ASSERT_EQ(shrunk.faults.events.size(), 1u);
  EXPECT_EQ(shrunk.faults.events[0].node, 14);
  EXPECT_NE(predicate(shrunk), "");

  // The repro line replays byte-for-byte.
  FuzzCase back;
  std::string error;
  ASSERT_TRUE(parse_fuzz_case(format_fuzz_case(shrunk), &back, &error))
      << error;
  EXPECT_EQ(format_fuzz_case(back), format_fuzz_case(shrunk));
  EXPECT_NE(predicate(back), "");
}

// Shrinking a bursty traffic case flattens the stream into explicit
// demands first (clearing traffic and burst), so ddmin applies to the
// expanded workload.
TEST(FuzzShrink, BurstyTrafficFlattensBeforeDdmin) {
  FuzzCase c;
  c.algorithm = "dimension-order";
  c.n = 6;
  c.k = 2;
  c.budget = 256;
  c.traffic = "uniform";
  c.rate = 0.3;
  c.tseed = 4;
  c.tsteps = 16;
  c.burst = [] {
    BurstSpec b;
    std::string error;
    EXPECT_TRUE(parse_burst_spec("onoff:2:6", &b, &error)) << error;
    return b;
  }();

  const FuzzRunner predicate = [](const FuzzCase& x) -> std::string {
    return x.traffic != "none" || !x.demands.empty() ? "synthetic" : "";
  };
  const FuzzCase shrunk = shrink_fuzz_case(c, predicate);
  EXPECT_EQ(shrunk.traffic, "none");
  EXPECT_TRUE(shrunk.burst.stationary());
  EXPECT_EQ(shrunk.demands.size(), 1u);
  EXPECT_NE(predicate(shrunk), "");
}

// A passing case is returned untouched — the shrinker must not "improve"
// a case that does not fail.
TEST(FuzzShrink, PassingCaseIsUntouched) {
  FuzzCase c;
  c.algorithm = "dimension-order";
  c.n = 6;
  c.k = 2;
  c.budget = 256;
  c.faults = schedule_of("node:14@3-10");
  c.demands = {{7, 29, 2}, {5, 30, 1}};
  const FuzzCase shrunk = shrink_fuzz_case(c);  // production run_fuzz_case
  EXPECT_EQ(format_fuzz_case(shrunk), format_fuzz_case(c));
}

// Snapshot round trip mid-window: restore() re-derives the availability
// state from (schedule, step), so a serialize→parse→restore cycle during
// an active fault window must not perturb the run.
TEST(FaultInjection, SnapshotRoundTripInsideFaultWindow) {
  FuzzCase c;
  c.algorithm = "dimension-order";
  c.n = 6;
  c.k = 2;
  c.budget = 512;
  c.ckpt = 10;  // inside the node:14 window below
  c.faults = schedule_of("node:14@3-30");
  const Mesh mesh = Mesh::square(c.n);
  c.demands = random_partial_permutation(mesh, 0.5, 21);
  EXPECT_EQ(run_fuzz_case(c), "");
}

}  // namespace
}  // namespace mr
