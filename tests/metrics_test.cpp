#include <gtest/gtest.h>

#include "routing/registry.hpp"
#include "sim/engine.hpp"
#include "sim/metrics.hpp"
#include "topo/mesh.hpp"
#include "workload/permutation.hpp"

namespace mr {
namespace {

TEST(Metrics, DeliveryCurveIsMonotoneAndComplete) {
  const Mesh mesh = Mesh::square(10);
  auto algo = make_algorithm("bounded-dimension-order");
  Engine::Config config;
  config.queue_capacity = 2;
  Engine e(mesh, config, *algo);
  const Workload w = random_permutation(mesh, 6);
  for (const Demand& d : w) e.add_packet(d.source, d.dest, d.injected_at);
  MetricsObserver metrics(/*sample_every=*/1);
  e.add_observer(&metrics);
  e.prepare();
  e.run(10000);
  ASSERT_TRUE(e.all_delivered());

  const auto& curve = metrics.delivered_by_step();
  ASSERT_FALSE(curve.empty());
  for (std::size_t t = 1; t < curve.size(); ++t)
    EXPECT_GE(curve[t], curve[t - 1]);
  EXPECT_EQ(curve.back(), std::int64_t(w.size()) -
                              std::int64_t(metrics.latency().count_at(0)) +
                              std::int64_t(metrics.latency().count_at(0)));
  EXPECT_EQ(curve.back(), std::int64_t(w.size()));
}

TEST(Metrics, CompletionStepMatchesCurve) {
  const Mesh mesh = Mesh::square(10);
  auto algo = make_algorithm("bounded-dimension-order");
  Engine::Config config;
  config.queue_capacity = 2;
  Engine e(mesh, config, *algo);
  const Workload w = random_permutation(mesh, 9);
  for (const Demand& d : w) e.add_packet(d.source, d.dest, d.injected_at);
  MetricsObserver metrics;
  e.add_observer(&metrics);
  e.prepare();
  const Step total = e.run(10000);
  ASSERT_TRUE(e.all_delivered());
  EXPECT_EQ(metrics.completion_step(1.0, w.size()), total);
  EXPECT_LE(metrics.completion_step(0.5, w.size()), total);
  EXPECT_GE(metrics.completion_step(0.5, w.size()), 1);
}

TEST(Metrics, CompletionStepUsesCeiling) {
  const Mesh mesh = Mesh::square(8);
  auto algo = make_algorithm("dimension-order");
  Engine::Config config;
  config.queue_capacity = 4;
  Engine e(mesh, config, *algo);
  // Five uncontended packets in distinct rows, delivered at steps 1..5.
  for (std::int32_t r = 0; r < 5; ++r)
    e.add_packet(mesh.id_of(0, r), mesh.id_of(r + 1, r));
  MetricsObserver metrics;
  e.add_observer(&metrics);
  e.prepare();
  e.run(100);
  ASSERT_TRUE(e.all_delivered());
  // "Half of 5" is 3 packets (ceiling), first reached after step 3. A
  // truncating implementation would report step 2.
  EXPECT_EQ(metrics.completion_step(0.5, 5), 3);
  EXPECT_EQ(metrics.completion_step(0.4, 5), 2);  // ceil(2.0) = 2 exactly
  EXPECT_EQ(metrics.completion_step(1.0, 5), 5);
}

TEST(Metrics, PrepareTimeDeliveriesCountAtStepZero) {
  const Mesh mesh = Mesh::square(4);
  auto algo = make_algorithm("dimension-order");
  Engine::Config config;
  config.queue_capacity = 2;
  Engine e(mesh, config, *algo);
  // Two source==dest packets deliver during prepare(), one travels.
  e.add_packet(mesh.id_of(1, 1), mesh.id_of(1, 1));
  e.add_packet(mesh.id_of(2, 2), mesh.id_of(2, 2));
  e.add_packet(mesh.id_of(0, 0), mesh.id_of(2, 0));
  MetricsObserver metrics;
  e.add_observer(&metrics);
  e.prepare();
  e.run(100);
  ASSERT_TRUE(e.all_delivered());
  const auto& curve = metrics.delivered_by_step();
  ASSERT_GE(curve.size(), 3u);
  EXPECT_EQ(curve[0], 2);  // delivered before step 1
  EXPECT_EQ(curve.back(), 3);
  // Two thirds of the demand was already met at prepare time.
  EXPECT_EQ(metrics.completion_step(2.0 / 3.0, 3), 0);
  EXPECT_EQ(metrics.completion_step(1.0, 3), 2);
}

TEST(Metrics, PerInlinkOccupancySamplesEachQueueSeparately) {
  const Mesh mesh = Mesh::square(4);
  auto algo = make_algorithm("bounded-dimension-order");
  ASSERT_EQ(algo->queue_layout(), QueueLayout::PerInlink);
  Engine::Config config;
  config.queue_capacity = 2;
  Engine e(mesh, config, *algo);
  // Both packets pass through (1,1) on step 1 — one arriving on the west
  // inlink, one on the south inlink. Each per-inlink queue holds one
  // packet; a layout-blind sampler would lump them into a sample of 2.
  e.add_packet(mesh.id_of(0, 1), mesh.id_of(3, 1));
  e.add_packet(mesh.id_of(1, 0), mesh.id_of(1, 3));
  MetricsObserver metrics(/*sample_every=*/1);
  e.add_observer(&metrics);
  e.prepare();
  e.run(100);
  ASSERT_TRUE(e.all_delivered());
  EXPECT_GT(metrics.occupancy().total(), 0);
  EXPECT_EQ(metrics.occupancy().max(), 1);
}

TEST(Metrics, LatencyDistributionMatchesPackets) {
  const Mesh mesh = Mesh::square(8);
  auto algo = make_algorithm("dimension-order");
  Engine::Config config;
  config.queue_capacity = 8;
  Engine e(mesh, config, *algo);
  // Three packets with known uncontended latencies 3, 7, 14.
  e.add_packet(mesh.id_of(0, 0), mesh.id_of(3, 0));
  e.add_packet(mesh.id_of(0, 1), mesh.id_of(7, 1));
  e.add_packet(mesh.id_of(0, 7), mesh.id_of(7, 0));
  MetricsObserver metrics;
  e.add_observer(&metrics);
  e.prepare();
  e.run(100);
  ASSERT_TRUE(e.all_delivered());
  EXPECT_EQ(metrics.latency().total(), 3);
  EXPECT_EQ(metrics.latency().min(), 3);
  EXPECT_EQ(metrics.latency().max(), 14);
  EXPECT_EQ(metrics.latency().count_at(7), 1);
}

TEST(Metrics, OccupancySamplesOnlyNonEmpty) {
  const Mesh mesh = Mesh::square(8);
  auto algo = make_algorithm("dimension-order");
  Engine::Config config;
  config.queue_capacity = 4;
  Engine e(mesh, config, *algo);
  e.add_packet(mesh.id_of(0, 0), mesh.id_of(7, 7));
  MetricsObserver metrics(/*sample_every=*/1);
  e.add_observer(&metrics);
  e.prepare();
  e.run(100);
  // One packet in flight: every sample is exactly occupancy 1.
  EXPECT_EQ(metrics.occupancy().min(), 1);
  EXPECT_EQ(metrics.occupancy().max(), 1);
  EXPECT_GT(metrics.occupancy().total(), 0);
}

}  // namespace
}  // namespace mr
