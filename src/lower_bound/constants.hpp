// Constant selection for the lower-bound constructions (paper §4.3, §5).
//
// All arithmetic is exact: c and d are represented by the integers cn and
// dn (the paper requires cn, dn integral), and the constraints are checked
// with integer cross-multiplication, never floating point.
#pragma once

#include <cstdint>

#include "core/types.hpp"

namespace mr {

/// §3/§4: constants for the main Ω(n²/k²) construction.
struct MainLbParams {
  std::int32_t n = 0;
  int k = 1;
  std::int32_t cn = 0;   ///< cn = ⌊n/(2(k+2))⌋ (largest c ≤ 1/(2(k+2)))
  std::int32_t dn = 0;   ///< dn = ⌊2n/5⌋       (largest d ≤ 2/5)
  std::int64_t p = 0;    ///< ⌊(k+1)(cn+c²n)+dn⌋, packets per class
  std::int64_t classes = 0;  ///< ⌊l⌋, l = c²n²/(2p)
  std::int64_t certified_steps = 0;  ///< ⌊l⌋·dn (Theorem 13)
  bool valid = false;    ///< all three §4.3 constraints hold
  bool theorem_regime = false;  ///< n ≥ 24(k+2)² (Theorem 14 case 1)
};
MainLbParams main_lb_params(std::int32_t n, int k);

/// §5: constants for the dimension-order Ω(n²/k) construction.
/// Here p = (k+1)cn + dn and l = (1-c)cn²/p; the number of usable classes
/// is additionally capped by the cn+1 easternmost columns.
struct DimOrderLbParams {
  std::int32_t n = 0;
  int k = 1;
  std::int32_t cn = 0;
  std::int32_t dn = 0;
  std::int64_t p = 0;
  std::int64_t classes = 0;
  std::int64_t certified_steps = 0;
  bool valid = false;
};
DimOrderLbParams dim_order_lb_params(std::int32_t n, int k);

/// §5: constants for the farthest-first Ω(n²/k) construction:
/// p = (2k+1)cn + dn, l = cn²/p, N_i-column is the (n+1−i)-th column.
struct FarthestFirstLbParams {
  std::int32_t n = 0;
  int k = 1;
  std::int32_t cn = 0;
  std::int32_t dn = 0;
  std::int64_t p = 0;
  std::int64_t classes = 0;
  std::int64_t certified_steps = 0;
  bool valid = false;
};
FarthestFirstLbParams farthest_first_lb_params(std::int32_t n, int k);

/// §5: constants for the h-h extension of the main construction:
/// p = ⌊(k+1)(cn+c²n)+dn⌋ with c ≈ h/(3(k+1+h)), d ≈ 5h/9,
/// l = h·c²n²/(2p); bound Ω(h³n²/(k+h)²).
struct HhLbParams {
  std::int32_t n = 0;
  int k = 1;
  int h = 1;
  std::int32_t cn = 0;
  std::int32_t dn = 0;
  std::int64_t p = 0;
  std::int64_t classes = 0;
  std::int64_t certified_steps = 0;
  bool valid = false;
};
HhLbParams hh_lb_params(std::int32_t n, int k, int h);

}  // namespace mr
