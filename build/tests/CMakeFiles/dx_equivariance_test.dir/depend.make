# Empty dependencies file for dx_equivariance_test.
# This may be replaced when dependencies are built.
