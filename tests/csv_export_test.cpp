#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>

#include "harness/csv_export.hpp"

namespace mr {
namespace {

TEST(CsvExport, NoopWithoutEnv) {
  unsetenv("MESHROUTE_OUTPUT_DIR");
  Table t({"a"});
  t.row().add(1);
  EXPECT_EQ(export_csv(t, "x"), "");
  EXPECT_EQ(csv_output_dir(), "");
}

TEST(CsvExport, WritesSanitisedFile) {
  const auto dir =
      std::filesystem::temp_directory_path() / "mr_csv_export_test";
  std::filesystem::create_directories(dir);
  setenv("MESHROUTE_OUTPUT_DIR", dir.c_str(), 1);

  Table t({"n", "steps"});
  t.row().add(8).add(14);
  const std::string path = export_csv(t, "E01 weird/slug!");
  ASSERT_FALSE(path.empty());
  EXPECT_NE(path.find("e01_weird_slug_"), std::string::npos);

  std::ifstream in(path);
  std::string header, row;
  std::getline(in, header);
  std::getline(in, row);
  EXPECT_EQ(header, "n,steps");
  EXPECT_EQ(row, "8,14");

  unsetenv("MESHROUTE_OUTPUT_DIR");
  std::filesystem::remove_all(dir);
}

TEST(CsvExport, QuotesCellsWithSeparators) {
  Table t({"name", "note"});
  t.row().add("a,b").add("plain");
  EXPECT_EQ(t.to_csv(), "name,note\n\"a,b\",plain\n");
}

TEST(CsvExport, EscapesEmbeddedQuotes) {
  Table t({"q"});
  t.row().add("say \"hi\"");
  // RFC 4180: embedded quotes double, the cell is wrapped.
  EXPECT_EQ(t.to_csv(), "q\n\"say \"\"hi\"\"\"\n");
}

TEST(CsvExport, QuotesEmbeddedNewlines) {
  Table t({"text"});
  t.row().add("line1\nline2");
  EXPECT_EQ(t.to_csv(), "text\n\"line1\nline2\"\n");
}

TEST(CsvExport, QuotesHeadersToo) {
  Table t({"a,b", "c"});
  t.row().add("1").add("2");
  EXPECT_EQ(t.to_csv(), "\"a,b\",c\n1,2\n");
}

TEST(CsvExport, EmptyTableEmitsHeaderOnly) {
  Table t({"a", "b"});
  EXPECT_EQ(t.num_rows(), 0u);
  EXPECT_EQ(t.to_csv(), "a,b\n");
}

TEST(CsvExport, EmptyCellsRoundTrip) {
  Table t({"a", "b", "c"});
  t.row().add("").add("x").add("");
  EXPECT_EQ(t.to_csv(), "a,b,c\n,x,\n");
}

TEST(CsvExport, WriteCsvFailsOnUnwritablePath) {
  Table t({"a"});
  t.row().add(1);
  EXPECT_FALSE(write_csv(t, "/nonexistent-dir/sub/out.csv"));
}

TEST(CsvExport, ExportPreservesQuotedContentOnDisk) {
  const auto dir =
      std::filesystem::temp_directory_path() / "mr_csv_export_quoted";
  std::filesystem::create_directories(dir);
  setenv("MESHROUTE_OUTPUT_DIR", dir.c_str(), 1);

  Table t({"k", "detail"});
  t.row().add(2).add("stall, then drain");
  const std::string path = export_csv(t, "quoted");
  ASSERT_FALSE(path.empty());

  std::ifstream in(path);
  std::string header, row;
  std::getline(in, header);
  std::getline(in, row);
  EXPECT_EQ(header, "k,detail");
  EXPECT_EQ(row, "2,\"stall, then drain\"");

  unsetenv("MESHROUTE_OUTPUT_DIR");
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace mr
