file(REMOVE_RECURSE
  "CMakeFiles/e04_dimorder_lower_bound.dir/e04_dimorder_lower_bound.cpp.o"
  "CMakeFiles/e04_dimorder_lower_bound.dir/e04_dimorder_lower_bound.cpp.o.d"
  "e04_dimorder_lower_bound"
  "e04_dimorder_lower_bound.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e04_dimorder_lower_bound.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
