#include "workload/permutation.hpp"

#include <algorithm>

#include "core/assert.hpp"

namespace mr {

Workload random_permutation(const Topology& mesh, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<NodeId> dests = mesh.all_nodes();
  shuffle(dests, rng);
  Workload w;
  w.reserve(dests.size());
  for (NodeId src = 0; src < mesh.num_nodes(); ++src)
    w.push_back(Demand{src, dests[static_cast<std::size_t>(src)], 0});
  return w;
}

Workload random_partial_permutation(const Topology& mesh, double fraction,
                                    std::uint64_t seed) {
  MR_REQUIRE(fraction >= 0.0 && fraction <= 1.0);
  Rng rng(seed);
  std::vector<NodeId> sources = mesh.all_nodes();
  std::vector<NodeId> dests = mesh.all_nodes();
  shuffle(sources, rng);
  shuffle(dests, rng);
  const auto count = static_cast<std::size_t>(
      fraction * static_cast<double>(mesh.num_nodes()));
  Workload w;
  w.reserve(count);
  for (std::size_t i = 0; i < count; ++i)
    w.push_back(Demand{sources[i], dests[i], 0});
  std::sort(w.begin(), w.end(),
            [](const Demand& a, const Demand& b) { return a.source < b.source; });
  return w;
}

Workload transpose(const Topology& mesh) {
  MR_REQUIRE(mesh.width() == mesh.height());
  Workload w;
  w.reserve(static_cast<std::size_t>(mesh.num_nodes()));
  for (NodeId src = 0; src < mesh.num_nodes(); ++src) {
    const Coord c = mesh.coord_of(src);
    w.push_back(Demand{src, mesh.id_of(c.row, c.col), 0});
  }
  return w;
}

namespace {
std::int32_t reverse_bits(std::int32_t v, int bits) {
  std::int32_t out = 0;
  for (int i = 0; i < bits; ++i)
    if (v & (1 << i)) out |= 1 << (bits - 1 - i);
  return out;
}
}  // namespace

Workload bit_reversal(const Topology& mesh) {
  MR_REQUIRE(mesh.width() == mesh.height());
  const std::int32_t n = mesh.width();
  MR_REQUIRE_MSG((n & (n - 1)) == 0, "bit_reversal needs power-of-two side");
  int bits = 0;
  while ((1 << bits) < n) ++bits;
  Workload w;
  w.reserve(static_cast<std::size_t>(mesh.num_nodes()));
  for (NodeId src = 0; src < mesh.num_nodes(); ++src) {
    const Coord c = mesh.coord_of(src);
    w.push_back(Demand{
        src, mesh.id_of(reverse_bits(c.col, bits), reverse_bits(c.row, bits)),
        0});
  }
  return w;
}

Workload rotation(const Topology& mesh, std::int32_t dc, std::int32_t dr) {
  Workload w;
  w.reserve(static_cast<std::size_t>(mesh.num_nodes()));
  for (NodeId src = 0; src < mesh.num_nodes(); ++src) {
    const Coord c = mesh.coord_of(src);
    const Coord d{(c.col + dc % mesh.width() + mesh.width()) % mesh.width(),
                  (c.row + dr % mesh.height() + mesh.height()) % mesh.height()};
    w.push_back(Demand{src, mesh.id_of(d), 0});
  }
  return w;
}

Workload mirror(const Topology& mesh) {
  Workload w;
  w.reserve(static_cast<std::size_t>(mesh.num_nodes()));
  for (NodeId src = 0; src < mesh.num_nodes(); ++src) {
    const Coord c = mesh.coord_of(src);
    w.push_back(Demand{src, mesh.id_of(mesh.width() - 1 - c.col, c.row), 0});
  }
  return w;
}

Workload random_hh(const Topology& mesh, int h, std::uint64_t seed) {
  MR_REQUIRE(h >= 1);
  Workload w;
  w.reserve(static_cast<std::size_t>(mesh.num_nodes()) *
            static_cast<std::size_t>(h));
  for (int copy = 0; copy < h; ++copy) {
    Workload perm = random_permutation(mesh, seed + static_cast<std::uint64_t>(copy) * 0x9e3779b9ULL);
    w.insert(w.end(), perm.begin(), perm.end());
  }
  return w;
}

bool is_hh(const Topology& mesh, const Workload& w, int h) {
  std::vector<int> sends(static_cast<std::size_t>(mesh.num_nodes()), 0);
  std::vector<int> receives(static_cast<std::size_t>(mesh.num_nodes()), 0);
  for (const Demand& d : w) {
    if (++sends[static_cast<std::size_t>(d.source)] > h) return false;
    if (++receives[static_cast<std::size_t>(d.dest)] > h) return false;
  }
  return true;
}

}  // namespace mr
