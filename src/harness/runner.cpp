#include "harness/runner.hpp"

#include "routing/registry.hpp"

namespace mr {

Step default_step_budget(std::int32_t width, std::int32_t height, int k) {
  const std::int64_t n = std::max(width, height);
  // Theorem 15 upper bound is O(n²/k + n); §6 runs in ≤ 972n. A budget of
  // 8·n²/k + 4000·n covers every algorithm in the suite with slack.
  return 8 * n * n / std::max(1, k) + 4000 * n;
}

RunResult run_workload(const RunSpec& spec, const Workload& workload) {
  return run_workload(spec, workload, RunHooks{});
}

RunResult run_workload(const RunSpec& spec, const Workload& workload,
                       const RunHooks& hooks) {
  const Mesh mesh(spec.width, spec.height, spec.torus);
  auto algorithm = make_algorithm(spec.algorithm);
  Engine::Config config;
  config.queue_capacity = spec.queue_capacity;
  config.stall_limit = spec.stall_limit;
  Engine engine(mesh, config, *algorithm);
  for (const Demand& d : workload)
    engine.add_packet(d.source, d.dest, d.injected_at);

  if (hooks.interceptor != nullptr) engine.set_interceptor(hooks.interceptor);
  MetricsObserver metrics;
  engine.add_observer(&metrics);
  for (Observer* o : hooks.observers) engine.add_observer(o);
  engine.prepare();

  const Step budget = spec.max_steps > 0
                          ? spec.max_steps
                          : default_step_budget(spec.width, spec.height,
                                                spec.queue_capacity);
  RunResult result;
  result.steps = engine.run(budget);
  result.all_delivered = engine.all_delivered();
  result.stalled = engine.stalled();
  result.packets = engine.num_packets();
  result.delivered = engine.delivered_count();
  result.max_queue = engine.max_occupancy_seen();
  result.total_moves = engine.total_moves();
  const LatencySummary latency = metrics.latency_summary();
  result.latency_p50 = latency.p50;
  result.latency_p95 = latency.p95;
  result.latency_p99 = latency.p99;
  result.latency_max = latency.max;
  return result;
}

}  // namespace mr
