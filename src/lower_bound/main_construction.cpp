#include "lower_bound/main_construction.hpp"

#include <algorithm>
#include <unordered_set>

#include "check/oracles.hpp"
#include "core/rng.hpp"
#include "routing/registry.hpp"

namespace mr {

namespace {

/// Exchange rules EX1–EX4 (§3 step 3), applied between scheduling and
/// acceptance. Iterates to a fixed point: an exchange can re-expose a
/// violation on an already-scanned move (the partner's own scheduled move
/// changes class), but never creates one at a previously clean move.
class ExchangeInterceptor : public StepInterceptor {
 public:
  ExchangeInterceptor(const MainGeometry& geometry, std::int32_t dn,
                      std::size_t class_packet_count)
      : geo_(geometry), dn_(dn), class_count_(class_packet_count) {}

  std::size_t exchanges() const { return exchanges_; }

  void after_schedule(Sim& e, std::span<const ScheduledMove> moves) override {
    const Step t = e.step();
    if (t > geo_.classes() * dn_) return;  // all exchange windows closed

    // Map packet -> scheduled target (for partner-eligibility checks).
    scheduled_target_.assign(e.num_packets(), kInvalidNode);
    for (const ScheduledMove& m : moves)
      scheduled_target_[m.packet] = m.to;

    bool changed = true;
    std::size_t rounds = 0;
    while (changed) {
      changed = false;
      MR_REQUIRE_MSG(++rounds <= moves.size() + 4,
                     "exchange fix-point failed to converge");
      for (const ScheduledMove& m : moves) {
        if (apply_rules(e, m)) changed = true;
      }
    }
  }

 private:
  PacketClass classify(const Sim& e, PacketId p) const {
    if (static_cast<std::size_t>(p) >= class_count_) return PacketClass{};
    const Packet& pk = e.packet(p);
    return geo_.classify(e.mesh().coord_of(pk.source),
                         e.mesh().coord_of(pk.dest));
  }

  /// Returns true if an exchange was performed for this move.
  bool apply_rules(Sim& e, const ScheduledMove& m) {
    const Step t = e.step();
    const Coord v = e.mesh().coord_of(m.to);
    if (v.col >= geo_.size() || v.row >= geo_.size()) return false;
    const PacketClass cls = classify(e, m.packet);
    if (cls.type == ClassType::None) return false;

    if (v.row < v.col) {
      // Entering the N_i-column south of the E_i-row, i = column index − γ.
      const std::int64_t i = v.col - geo_.line(0);
      if (i < 1 || i > geo_.classes() || t > i * dn_) return false;
      const bool ex2 = cls.type == ClassType::N && cls.i > i;   // EX2
      const bool ex3 = cls.type == ClassType::E && cls.i >= i;  // EX3
      if (cls.type == ClassType::N && cls.i < i) {
        // An N_j-packet (j < i) can never be east of its own column.
        MR_REQUIRE_MSG(false, "N_" << cls.i << " packet east of its column");
      }
      if (!ex2 && !ex3) return false;
      exchange_with(e, m.packet, ClassType::N, i, /*line_is_column=*/true);
      return true;
    }
    if (v.col < v.row) {
      // Entering the E_i-row west of the N_i-column.
      const std::int64_t i = v.row - geo_.line(0);
      if (i < 1 || i > geo_.classes() || t > i * dn_) return false;
      const bool ex1 = cls.type == ClassType::E && cls.i > i;   // EX1
      const bool ex4 = cls.type == ClassType::N && cls.i >= i;  // EX4
      if (cls.type == ClassType::E && cls.i < i) {
        MR_REQUIRE_MSG(false, "E_" << cls.i << " packet north of its row");
      }
      if (!ex1 && !ex4) return false;
      exchange_with(e, m.packet, ClassType::E, i, /*line_is_column=*/false);
      return true;
    }
    return false;  // the i-box corner is not covered by any rule
  }

  void exchange_with(Sim& e, PacketId mover, ClassType want,
                     std::int64_t i, bool line_is_column) {
    // Partner: a packet of class (want, i) inside the (i−1)-box that is not
    // scheduled to enter the N_i-column / E_i-row (Lemmas 3/4 guarantee one
    // exists). Prefer partners with no scheduled move at all — this cannot
    // hurt eligibility and avoids most fix-point cascades.
    PacketId first_unscheduled = kInvalidPacket;
    PacketId first_scheduled_elsewhere = kInvalidPacket;
    for (std::size_t id = 0; id < class_count_; ++id) {
      const PacketId p = static_cast<PacketId>(id);
      if (p == mover) continue;
      const Packet& pk = e.packet(p);
      if (pk.delivered()) continue;
      const PacketClass cls = classify(e, p);
      if (cls.type != want || cls.i != i) continue;
      // A packet still waiting for injection (h > k, §5 dynamic setting)
      // sits at its source; it is a perfectly good exchange partner since
      // injection timing never depends on the destination address.
      const NodeId at =
          pk.location != kInvalidNode ? pk.location : pk.source;
      if (!geo_.in_box(e.mesh().coord_of(at), i - 1)) continue;
      const NodeId target = scheduled_target_[p];
      if (target == kInvalidNode) {
        first_unscheduled = p;
        break;  // ids ascend, so this is the preferred partner
      }
      const Coord tc = e.mesh().coord_of(target);
      const bool enters_line = line_is_column ? tc.col == geo_.line(i)
                                              : tc.row == geo_.line(i);
      if (!enters_line && first_scheduled_elsewhere == kInvalidPacket)
        first_scheduled_elsewhere = p;
    }
    const PacketId best = first_unscheduled != kInvalidPacket
                              ? first_unscheduled
                              : first_scheduled_elsewhere;
    MR_REQUIRE_MSG(best != kInvalidPacket,
                   "Lemma 3/4 violated: no eligible exchange partner for "
                   "class "
                       << i << " at step " << e.step());
    e.exchange_destinations(mover, best);
    ++exchanges_;
  }

  const MainGeometry& geo_;
  std::int32_t dn_;
  std::size_t class_count_;
  std::size_t exchanges_ = 0;
  std::vector<NodeId> scheduled_target_;
};

}  // namespace

MainConstruction::MainConstruction(const Mesh& mesh,
                                   const MainLbParams& params,
                                   MainConstructionOptions options)
    : mesh_(mesh),
      size_(params.n),
      k_(params.k),
      h_(1),
      cn_(params.cn),
      dn_(params.dn),
      p_(params.p),
      classes_(params.classes),
      certified_(params.certified_steps),
      options_(options),
      geometry_(params.n, params.cn, params.classes) {
  init_common();
  MR_REQUIRE_MSG(params.valid, "main_lb_params invalid for n=" << params.n
                                                               << " k="
                                                               << params.k);
}

MainConstruction::MainConstruction(const Mesh& mesh, const HhLbParams& params,
                                   MainConstructionOptions options)
    : mesh_(mesh),
      size_(params.n),
      k_(params.k),
      h_(params.h),
      cn_(params.cn),
      dn_(params.dn),
      p_(params.p),
      classes_(params.classes),
      certified_(params.certified_steps),
      options_(options),
      geometry_(params.n, params.cn, params.classes) {
  init_common();
  MR_REQUIRE_MSG(params.valid, "hh_lb_params invalid");
  MR_REQUIRE_MSG(!options_.full_permutation,
                 "full-permutation filler is only defined for h = 1");
}

void MainConstruction::init_common() {
  MR_REQUIRE(mesh_.width() >= size_ && mesh_.height() >= size_);
  MR_REQUIRE(cn_ >= 2);  // the geometry needs a non-degenerate 0-box
}

Workload MainConstruction::placement() const {
  const std::int64_t gamma = geometry_.line(0);
  Workload w;
  w.reserve(static_cast<std::size_t>(2 * p_ * classes_));

  // Per-class destination counters: the j-th packet of class (N,i) goes to
  // (N_i-column, row size−1−⌊j/h⌋); rows are reused at most h times, all
  // strictly north of the E_i-row (§4.3 constraint 1 guarantees room).
  std::vector<std::int64_t> n_count(static_cast<std::size_t>(classes_) + 1, 0);
  std::vector<std::int64_t> e_count(static_cast<std::size_t>(classes_) + 1, 0);
  auto emit = [&](Coord at, PacketClass cls) {
    Coord dest;
    if (cls.type == ClassType::N) {
      const std::int64_t j = n_count[cls.i]++;
      dest = Coord{geometry_.line(cls.i),
                   static_cast<std::int32_t>(size_ - 1 - j / h_)};
      MR_REQUIRE_MSG(dest.row > geometry_.line(cls.i),
                     "N-destination capacity exhausted");
    } else {
      const std::int64_t j = e_count[cls.i]++;
      dest = Coord{static_cast<std::int32_t>(size_ - 1 - j / h_),
                   geometry_.line(cls.i)};
      MR_REQUIRE_MSG(dest.col > geometry_.line(cls.i),
                     "E-destination capacity exhausted");
    }
    w.push_back(Demand{mesh_.id_of(at), mesh_.id_of(dest), 0});
  };

  // §3 step 1 edge constraints: only N_1-packets on the N_1-column at or
  // south of the E_1-row; only E_1-packets on the E_1-row west of the
  // N_1-column.
  const auto line1 = geometry_.line(1);  // = cn − 1
  MR_REQUIRE(p_ >= static_cast<std::int64_t>(h_) * cn_);
  for (std::int32_t r = 0; r <= line1; ++r)
    for (int c = 0; c < h_; ++c)
      emit(Coord{line1, r}, PacketClass{ClassType::N, 1});
  for (std::int32_t c = 0; c < line1; ++c)
    for (int q = 0; q < h_; ++q)
      emit(Coord{c, line1}, PacketClass{ClassType::E, 1});

  // Remaining class slots all live inside the 0-box.
  std::vector<PacketClass> slots;
  slots.reserve(static_cast<std::size_t>(2 * p_ * classes_));
  const std::int64_t n1_rest = p_ - static_cast<std::int64_t>(h_) * cn_;
  const std::int64_t e1_rest = p_ - static_cast<std::int64_t>(h_) * (cn_ - 1);
  for (std::int64_t j = 0; j < n1_rest; ++j)
    slots.push_back(PacketClass{ClassType::N, 1});
  for (std::int64_t j = 0; j < e1_rest; ++j)
    slots.push_back(PacketClass{ClassType::E, 1});
  for (std::int64_t i = 2; i <= classes_; ++i) {
    for (std::int64_t j = 0; j < p_; ++j)
      slots.push_back(PacketClass{ClassType::N, i});
    for (std::int64_t j = 0; j < p_; ++j)
      slots.push_back(PacketClass{ClassType::E, i});
  }
  if (options_.placement_seed != 0) {
    Rng rng(options_.placement_seed);
    shuffle(slots, rng);
  }
  MR_REQUIRE_MSG(
      slots.size() <= static_cast<std::size_t>(h_) *
                          static_cast<std::size_t>(gamma + 1) *
                          static_cast<std::size_t>(gamma + 1),
      "0-box capacity exceeded");
  std::size_t next = 0;
  for (std::int32_t r = 0; r <= gamma && next < slots.size(); ++r)
    for (std::int32_t c = 0; c <= gamma && next < slots.size(); ++c)
      for (int q = 0; q < h_ && next < slots.size(); ++q)
        emit(Coord{c, r}, slots[next++]);
  MR_REQUIRE(next == slots.size());

  if (options_.full_permutation) {
    MR_REQUIRE_MSG(mesh_.width() == size_ && mesh_.height() == size_,
                   "full permutation filler needs mesh == construction size");
    std::unordered_set<NodeId> used_sources, used_dests;
    for (const Demand& d : w) {
      used_sources.insert(d.source);
      used_dests.insert(d.dest);
    }
    std::vector<NodeId> sources, dests;
    for (NodeId u = 0; u < mesh_.num_nodes(); ++u) {
      if (!used_sources.count(u)) sources.push_back(u);
      if (!used_dests.count(u)) dests.push_back(u);
    }
    MR_REQUIRE(sources.size() == dests.size());
    // Pair greedily; a filler sourced inside the 1-box must not acquire a
    // class-qualifying destination (it would perturb the packet counting
    // of Lemmas 3/4).
    std::vector<bool> taken(dests.size(), false);
    for (NodeId src : sources) {
      const Coord sc = mesh_.coord_of(src);
      bool placed = false;
      for (std::size_t j = 0; j < dests.size(); ++j) {
        if (taken[j]) continue;
        const Coord dc = mesh_.coord_of(dests[j]);
        if (geometry_.classify(sc, dc).type != ClassType::None) continue;
        taken[j] = true;
        w.push_back(Demand{src, dests[j], 0});
        placed = true;
        break;
      }
      MR_REQUIRE_MSG(placed, "filler pairing failed for source " << src);
    }
  }
  return w;
}

MainConstruction::RunResult MainConstruction::run_construction(
    const std::string& algorithm, int k, Observer* extra_observer) {
  auto algo = make_algorithm(algorithm);
  MR_REQUIRE_MSG(algo->minimal(), "construction applies to minimal routers");
  // The counting argument (Lemmas 3/4) uses the total per-node buffer
  // capacity: k for a central queue, 4k for the per-inlink layout. The
  // construction must be sized for at least the actual capacity.
  const int per_node_capacity =
      algo->queue_layout() == QueueLayout::PerInlink ? 4 * k : k;
  MR_REQUIRE_MSG(per_node_capacity <= k_,
                 "construction sized for total capacity "
                     << k_ << " but the router buffers " << per_node_capacity
                     << " per node");

  Engine::Config config;
  config.queue_capacity = k;
  config.stall_limit = 0;  // heavy congestion is the whole point
  Engine engine(mesh_, config, *algo);
  const Workload w = placement();
  const std::size_t class_count =
      static_cast<std::size_t>(2 * p_ * classes_);
  for (const Demand& d : w) engine.add_packet(d.source, d.dest, d.injected_at);

  ExchangeInterceptor exchanger(geometry_, dn_, class_count);
  engine.set_interceptor(&exchanger);
  // Lemmas 1-8 are checked by the shared box-escape oracle from the
  // differential-verification subsystem (check/oracles.hpp).
  BoxEscapeOracle checker(geometry_, dn_, class_count);
  if (options_.check_invariants) engine.add_observer(&checker);
  if (extra_observer != nullptr) engine.add_observer(extra_observer);

  engine.prepare();
  RunResult result;
  result.stepwise_nodest_fingerprints.reserve(
      static_cast<std::size_t>(certified_));
  for (Step t = 1; t <= certified_; ++t) {
    MR_REQUIRE_MSG(engine.step_once(),
                   "network drained before the certified bound — Corollary 9 "
                   "violated");
    result.stepwise_nodest_fingerprints.push_back(engine.fingerprint(false));
  }
  result.steps = certified_;
  result.exchanges = exchanger.exchanges();
  result.delivered = engine.delivered_count();
  result.undelivered = engine.num_packets() - engine.delivered_count();
  result.max_escapes_per_step = checker.max_escapes_per_step();
  result.final_fingerprint = engine.fingerprint(true);

  // Corollary 9 census: class-⌊l⌋ packets still confined to the ⌊l⌋-box
  // (packets awaiting injection count at their source).
  for (std::size_t id = 0; id < class_count; ++id) {
    const Packet& pk = engine.packet(static_cast<PacketId>(id));
    if (pk.delivered()) continue;
    const NodeId at = pk.location != kInvalidNode ? pk.location : pk.source;
    const PacketClass cls = geometry_.classify(
        mesh_.coord_of(pk.source), mesh_.coord_of(pk.dest));
    if (cls.type != ClassType::None && cls.i == classes_ &&
        geometry_.in_box(mesh_.coord_of(at), classes_)) {
      ++result.last_class_in_box;
    }
  }

  // §3 step 4: the constructed permutation.
  result.constructed.reserve(engine.num_packets());
  for (const Packet& pk : engine.all_packets())
    result.constructed.push_back(Demand{pk.source, pk.dest, pk.injected_at});
  return result;
}

MainConstruction::ReplayResult MainConstruction::verify_replay(
    const std::string& algorithm, int k, Step replay_budget) {
  ReplayResult out;
  out.construction = run_construction(algorithm, k);

  auto algo = make_algorithm(algorithm);
  Engine::Config config;
  config.queue_capacity = k;
  config.stall_limit = 0;
  Engine replay(mesh_, config, *algo);
  for (const Demand& d : out.construction.constructed)
    replay.add_packet(d.source, d.dest, d.injected_at);
  replay.prepare();

  // Lemma 12: at every step t the replay equals the construction up to the
  // not-yet-performed exchanges, which only permute destinations — so the
  // destination-less configurations must be identical...
  for (Step t = 1; t <= certified_; ++t) {
    MR_REQUIRE(replay.step_once());
    const std::uint64_t fp = replay.fingerprint(false);
    if (fp != out.construction.stepwise_nodest_fingerprints
                  [static_cast<std::size_t>(t - 1)]) {
      out.stepwise_match = false;
      if (out.first_mismatch < 0) out.first_mismatch = t;
    }
  }
  // ...and at step ⌊l⌋·dn no exchanges are pending, so the full
  // configurations coincide (Theorem 13), leaving an undelivered packet.
  out.final_match =
      replay.fingerprint(true) == out.construction.final_fingerprint;
  out.undelivered_at_certified =
      replay.num_packets() - replay.delivered_count();

  const Step budget = replay_budget > 0
                          ? replay_budget
                          : certified_ + 16LL * size_ * size_ / std::max(1, k) +
                                64LL * size_;
  out.replay_total_steps = replay.run(budget);
  out.replay_all_delivered = replay.all_delivered();
  return out;
}

}  // namespace mr
