#include "lower_bound/farthest_first_construction.hpp"

#include <algorithm>

#include "routing/registry.hpp"

namespace mr {

namespace {

class FarthestFirstInterceptor : public StepInterceptor {
 public:
  FarthestFirstInterceptor(const FarthestFirstConstruction& geo,
                           std::int32_t cn, std::int32_t dn,
                           std::int64_t classes, std::size_t class_count)
      : geo_(geo), cn_(cn), dn_(dn), classes_(classes),
        class_count_(class_count) {}

  std::size_t exchanges() const { return exchanges_; }

  void after_schedule(Sim& e,
                      std::span<const ScheduledMove> moves) override {
    const Step t = e.step();
    scheduled_target_.assign(e.num_packets(), kInvalidNode);
    for (const ScheduledMove& m : moves) scheduled_target_[m.packet] = m.to;

    bool changed = true;
    std::size_t rounds = 0;
    while (changed) {
      changed = false;
      MR_REQUIRE(++rounds <= moves.size() + 4);
      for (const ScheduledMove& m : moves) {
        const Coord from = e.mesh().coord_of(m.from);
        const Coord v = e.mesh().coord_of(m.to);
        if (v.row >= cn_) continue;
        if (v.col == from.col) continue;  // vertical move inside a column
        const std::int64_t j = classify(e, m.packet);
        if (j < 2) continue;
        if (v.col != geo_.line(j)) continue;  // not entering its own column
        // Rule window: exists i ≥ 1, i < j with t ≤ i·dn ⟺ t ≤ (j−1)·dn.
        if (t > (j - 1) * dn_) continue;
        exchange(e, m.packet, j);
        changed = true;
      }
    }
  }

 private:
  std::int64_t classify(const Sim& e, PacketId p) const {
    if (static_cast<std::size_t>(p) >= class_count_) return 0;
    const Packet& pk = e.packet(p);
    return geo_.classify(e.mesh().coord_of(pk.source),
                         e.mesh().coord_of(pk.dest));
  }

  void exchange(Sim& e, PacketId mover, std::int64_t j) {
    // Partner: westernmost-in-its-row N_{j−1}-packet inside the (j+1)-box
    // (columns ≤ n−j−1) that is not scheduled to enter the N_j-column.
    PacketId best = kInvalidPacket;
    Coord best_at{};
    for (std::size_t id = 0; id < class_count_; ++id) {
      const PacketId p = static_cast<PacketId>(id);
      if (p == mover) continue;
      const Packet& pk = e.packet(p);
      if (pk.delivered() || pk.location == kInvalidNode) continue;
      if (classify(e, p) != j - 1) continue;
      const Coord at = e.mesh().coord_of(pk.location);
      if (at.col > geo_.line(j + 1) || at.row >= cn_) continue;
      const NodeId target = scheduled_target_[p];
      if (target != kInvalidNode &&
          e.mesh().coord_of(target).col == geo_.line(j)) {
        continue;
      }
      if (best == kInvalidPacket || at.col < best_at.col ||
          (at.col == best_at.col && at.row < best_at.row)) {
        best = p;
        best_at = at;
      }
    }
    MR_REQUIRE_MSG(best != kInvalidPacket,
                   "no eligible partner (farthest-first construction) at step "
                       << e.step() << " for class " << j);
    e.exchange_destinations(mover, best);
    ++exchanges_;
  }

  const FarthestFirstConstruction& geo_;
  std::int32_t cn_;
  std::int32_t dn_;
  std::int64_t classes_;
  std::size_t class_count_;
  std::size_t exchanges_ = 0;
  std::vector<NodeId> scheduled_target_;
};

/// Escape discipline for the farthest-first construction: while class i's
/// exchange window is open (t ≤ (i−1)·dn... precisely, while rule coverage
/// lasts), class-i packets may leave the i-box (west of and including
/// column n−i, below row cn) only through the top of their own column, at
/// most one per step.
class FarthestFirstChecker : public Observer {
 public:
  FarthestFirstChecker(const FarthestFirstConstruction& geo, std::int32_t cn,
                       std::int32_t dn, std::size_t class_count)
      : geo_(geo), cn_(cn), dn_(dn), class_count_(class_count) {}

  void on_move(const Sim& e, const Packet& pk, NodeId from,
               NodeId to) override {
    if (static_cast<std::size_t>(pk.id) >= class_count_) return;
    const std::int64_t i = geo_.classify(e.mesh().coord_of(pk.source),
                                         e.mesh().coord_of(pk.dest));
    if (i == 0) return;
    const Coord f = e.mesh().coord_of(from);
    const Coord t = e.mesh().coord_of(to);
    const bool in_box_f = f.col <= geo_.line(i) && f.row < cn_;
    const bool in_box_t = t.col <= geo_.line(i) && t.row < cn_;
    if (!in_box_f || in_box_t) return;
    // The only exit is northward out of the own column (dimension-order
    // paths never cross the N_i-column eastward for an N_i-packet).
    MR_REQUIRE_MSG(f.col == geo_.line(i) && t.row == cn_,
                   "farthest-first construction: class "
                       << i << " left its box sideways at step " << e.step());
    if (e.step() <= (i - 1) * dn_) ++early_escapes_;
  }

  /// Escapes that happened while some exchange rule still covered the
  /// class (informational: the §5 sketch tolerates these only via the
  /// exchange rule itself).
  std::int64_t early_escapes() const { return early_escapes_; }

 private:
  const FarthestFirstConstruction& geo_;
  std::int32_t cn_;
  std::int32_t dn_;
  std::size_t class_count_;
  std::int64_t early_escapes_ = 0;
};

/// Checks the per-row ordering invariant: within each sender row, for
/// j > i, no N_j-packet lies strictly east of any N_i-packet.
bool row_order_holds(const Sim& e, const FarthestFirstConstruction& geo,
                     std::int32_t cn, std::size_t class_count) {
  const std::int32_t width = e.mesh().width();
  // per row: min col per class and max col per class, then check chain.
  std::vector<std::vector<std::pair<std::int64_t, std::int32_t>>> rows(
      static_cast<std::size_t>(cn));
  for (std::size_t id = 0; id < class_count; ++id) {
    const Packet& pk = e.packet(static_cast<PacketId>(id));
    if (pk.delivered() || pk.location == kInvalidNode) continue;
    const Coord at = e.mesh().coord_of(pk.location);
    if (at.row >= cn) continue;
    const std::int64_t cls = geo.classify(e.mesh().coord_of(pk.source),
                                          e.mesh().coord_of(pk.dest));
    if (cls == 0) continue;
    // A packet already inside its own destination column has left the row
    // structure (it only moves north from here).
    if (at.col == geo.line(cls)) continue;
    rows[static_cast<std::size_t>(at.row)].push_back({cls, at.col});
  }
  for (auto& row : rows) {
    std::sort(row.begin(), row.end());
    // For ascending class, columns must be non-increasing *across classes*:
    // max col of class j ≤ min col of any class i < j.
    std::int32_t min_col_so_far = width;
    std::int64_t current_class = 0;
    std::int32_t current_max = 0;
    std::int32_t current_min = width;
    auto flush = [&]() {
      if (current_class == 0) return true;
      if (current_max > min_col_so_far) return false;
      min_col_so_far = std::min(min_col_so_far, current_min);
      return true;
    };
    for (const auto& [cls, col] : row) {
      if (cls != current_class) {
        if (!flush()) return false;
        current_class = cls;
        current_max = col;
        current_min = col;
      } else {
        current_max = std::max(current_max, col);
        current_min = std::min(current_min, col);
      }
    }
    if (!flush()) return false;
  }
  return true;
}

}  // namespace

FarthestFirstConstruction::FarthestFirstConstruction(
    const Mesh& mesh, const FarthestFirstLbParams& params)
    : mesh_(mesh),
      n_(params.n),
      k_(params.k),
      cn_(params.cn),
      dn_(params.dn),
      p_(params.p),
      classes_(params.classes),
      certified_(params.certified_steps) {
  MR_REQUIRE_MSG(params.valid, "farthest_first_lb_params invalid");
  MR_REQUIRE(mesh_.width() >= n_ && mesh_.height() >= n_);
}

std::int64_t FarthestFirstConstruction::classify(Coord source,
                                                 Coord dest) const {
  if (source.row >= cn_) return 0;
  if (dest.row < cn_) return 0;
  const std::int64_t i = n_ - dest.col;
  if (i < 1 || i > classes_) return 0;
  return i;
}

Workload FarthestFirstConstruction::placement() const {
  // Within every row, class indices never increase from west to east and
  // no N_i-packet (i ≥ 2) starts in its own column. We fill each row from
  // the east with class 1, then class 2, ... splitting each class's p
  // packets as evenly as possible across the cn rows.
  Workload w;
  w.reserve(static_cast<std::size_t>(p_ * classes_));
  std::vector<std::int64_t> dest_count(static_cast<std::size_t>(classes_) + 1,
                                       0);
  auto emit = [&](Coord at, std::int64_t i) {
    const std::int64_t jd = dest_count[i]++;
    const Coord dest{line(i), static_cast<std::int32_t>(n_ - 1 - jd)};
    MR_REQUIRE_MSG(dest.row >= cn_, "destination capacity exhausted");
    w.push_back(Demand{mesh_.id_of(at), mesh_.id_of(dest), 0});
  };
  // Column-major snake from the east: placement index m goes to
  // (col n−1−⌊m/cn⌋, row m mod cn), classes in ascending order. Within any
  // row, eastern packets then have lower-or-equal class (the ordering
  // invariant), and since p ≥ 3cn, class i ≥ 2 starts at least i columns
  // west of the east edge, i.e. strictly west of its own column n−i.
  std::int64_t m = 0;
  for (std::int64_t i = 1; i <= classes_; ++i) {
    for (std::int64_t q = 0; q < p_; ++q, ++m) {
      const Coord at{static_cast<std::int32_t>(n_ - 1 - m / cn_),
                     static_cast<std::int32_t>(m % cn_)};
      MR_REQUIRE_MSG(at.col >= 0, "sender capacity exhausted");
      MR_REQUIRE_MSG(i == 1 || at.col < line(i),
                     "class packet placed at/east of its own column");
      emit(at, i);
    }
  }
  return w;
}

FarthestFirstConstruction::RunResult
FarthestFirstConstruction::run_construction(const std::string& algorithm,
                                            int k) {
  auto algo = make_algorithm(algorithm);
  const int per_node_capacity =
      algo->queue_layout() == QueueLayout::PerInlink ? 4 * k : k;
  MR_REQUIRE_MSG(per_node_capacity <= k_,
                 "construction sized for capacity " << k_);
  Engine::Config config;
  config.queue_capacity = k;
  config.stall_limit = 0;
  Engine engine(mesh_, config, *algo);
  const Workload w = placement();
  for (const Demand& d : w) engine.add_packet(d.source, d.dest, d.injected_at);

  FarthestFirstInterceptor interceptor(*this, cn_, dn_, classes_, w.size());
  engine.set_interceptor(&interceptor);
  FarthestFirstChecker checker(*this, cn_, dn_, w.size());
  engine.add_observer(&checker);
  engine.prepare();

  RunResult result;
  result.stepwise_nodest_fingerprints.reserve(
      static_cast<std::size_t>(certified_));
  for (Step t = 1; t <= certified_; ++t) {
    MR_REQUIRE_MSG(engine.step_once(),
                   "network drained before the certified bound");
    result.stepwise_nodest_fingerprints.push_back(engine.fingerprint(false));
    if (result.row_order_ok && t % 16 == 0)
      result.row_order_ok = row_order_holds(engine, *this, cn_, w.size());
  }
  result.row_order_ok =
      result.row_order_ok && row_order_holds(engine, *this, cn_, w.size());
  result.steps = certified_;
  result.exchanges = interceptor.exchanges();
  result.undelivered = engine.num_packets() - engine.delivered_count();
  result.final_fingerprint = engine.fingerprint(true);
  result.constructed.reserve(engine.num_packets());
  for (const Packet& pk : engine.all_packets())
    result.constructed.push_back(Demand{pk.source, pk.dest, pk.injected_at});
  return result;
}

FarthestFirstConstruction::ReplayResult
FarthestFirstConstruction::verify_replay(const std::string& algorithm, int k,
                                         Step replay_budget) {
  ReplayResult out;
  out.construction = run_construction(algorithm, k);

  auto algo = make_algorithm(algorithm);
  Engine::Config config;
  config.queue_capacity = k;
  config.stall_limit = 0;
  Engine replay(mesh_, config, *algo);
  for (const Demand& d : out.construction.constructed)
    replay.add_packet(d.source, d.dest, d.injected_at);
  replay.prepare();

  for (Step t = 1; t <= certified_; ++t) {
    MR_REQUIRE(replay.step_once());
    if (replay.fingerprint(false) !=
        out.construction
            .stepwise_nodest_fingerprints[static_cast<std::size_t>(t - 1)]) {
      out.stepwise_match = false;
      if (out.first_mismatch < 0) out.first_mismatch = t;
    }
  }
  out.final_match =
      replay.fingerprint(true) == out.construction.final_fingerprint;
  out.undelivered_at_certified =
      replay.num_packets() - replay.delivered_count();

  const Step budget = replay_budget > 0
                          ? replay_budget
                          : certified_ + 16LL * n_ * n_ / std::max(1, k) +
                                64LL * n_;
  out.replay_total_steps = replay.run(budget);
  out.replay_all_delivered = replay.all_delivered();
  return out;
}

}  // namespace mr
