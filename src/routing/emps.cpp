#include "routing/emps.hpp"

#include <array>
#include <cstdlib>

namespace mr {

namespace {

constexpr DirMask kHorizontal = dir_bit(Dir::East) | dir_bit(Dir::West);

/// The outlink this packet wants under one-bend row-first routing, plus
/// its remaining distance in that dimension. East/North win wrap ties,
/// matching bounded-dimension-order so torus runs stay deterministic.
bool wanted_dir(DirMask profitable, const Delta& delta, Dir& out,
                std::int32_t& dist) {
  if ((profitable & kHorizontal) != 0) {
    out = mask_has(profitable, Dir::East) ? Dir::East : Dir::West;
    dist = std::abs(delta.east);
    return true;
  }
  if (mask_has(profitable, Dir::North)) {
    out = Dir::North;
  } else if (mask_has(profitable, Dir::South)) {
    out = Dir::South;
  } else {
    return false;  // at destination; engine delivers it
  }
  dist = std::abs(delta.north);
  return true;
}

}  // namespace

void EmpsRouter::plan_out(Sim& e, NodeId u, OutPlan& plan) {
  const Topology& mesh = e.mesh();
  // Two tiers per outlink: packets continuing in the link's dimension
  // (arrived on the opposite inlink) outrank packets entering it; within a
  // tier, farthest-to-go first, then earliest arrival, then queue order.
  struct Best {
    PacketId p = kInvalidPacket;
    std::int32_t dist = -1;
    Step arrived = 0;
  };
  std::array<Best, kNumDirs> continuing, entering;
  for (PacketId p : e.packets_at(u)) {
    const Packet& pk = e.packet(p);
    Dir d;
    std::int32_t dist;
    if (!wanted_dir(e.profitable_mask(p), mesh.delta(u, pk.dest), d, dist))
      continue;
    const bool straight =
        pk.arrival_inlink == static_cast<std::uint8_t>(dir_index(opposite(d)));
    Best& slot = straight ? continuing[dir_index(d)] : entering[dir_index(d)];
    if (slot.p == kInvalidPacket || dist > slot.dist ||
        (dist == slot.dist && pk.arrived_at < slot.arrived)) {
      slot.p = p;
      slot.dist = dist;
      slot.arrived = pk.arrived_at;
    }
  }
  for (Dir d : kAllDirs) {
    const int i = dir_index(d);
    if (continuing[i].p != kInvalidPacket) {
      plan.schedule(d, continuing[i].p);
    } else if (entering[i].p != kInvalidPacket) {
      plan.schedule(d, entering[i].p);
    }
  }
}

void EmpsRouter::plan_in(Sim& e, NodeId v, std::span<const Offer> offers,
                         InPlan& plan) {
  // Capacity-checked acceptance per inlink queue. At most one offer maps
  // to each inlink (one per directed link), so start-of-step occupancy is
  // exact — no guaranteed-departure assumption, hence no fault-mode
  // special case.
  for (std::size_t i = 0; i < offers.size(); ++i) {
    const QueueTag queue =
        static_cast<QueueTag>(dir_index(opposite(offers[i].dir)));
    plan.accept[i] = e.occupancy(v, queue) < e.queue_capacity();
  }
}

}  // namespace mr
