// Unit tests for the lower-bound geometry (classes.hpp): box membership,
// line placement and the class-membership predicate, exercised exhaustively
// on small instances.
#include <gtest/gtest.h>

#include "lower_bound/classes.hpp"

namespace mr {
namespace {

// A small, hand-checkable geometry: n = 24, cn = 4 ⇒ γ = 2, lines at
// columns/rows 2+i (0-based); say 3 classes.
MainGeometry small_geo() { return MainGeometry(24, 4, 3); }

TEST(MainGeometry, LinesAndBoxes) {
  const MainGeometry g = small_geo();
  EXPECT_EQ(g.line(0), 2);  // γ
  EXPECT_EQ(g.line(1), 3);  // N_1-column = paper column cn = 4 (1-based)
  EXPECT_EQ(g.line(2), 4);
  EXPECT_EQ(g.line(3), 5);

  // 0-box: cols/rows 0..2; 1-box: 0..3 (the cn×cn submesh).
  EXPECT_TRUE(g.in_box(Coord{2, 2}, 0));
  EXPECT_FALSE(g.in_box(Coord{3, 2}, 0));
  EXPECT_TRUE(g.in_box(Coord{3, 3}, 1));
  EXPECT_FALSE(g.in_box(Coord{4, 3}, 1));
  EXPECT_FALSE(g.in_box(Coord{3, 4}, 1));
  EXPECT_TRUE(g.in_box(Coord{0, 0}, 0));
}

TEST(MainGeometry, BoxesAreNested) {
  const MainGeometry g = small_geo();
  for (std::int32_t c = 0; c < 24; ++c)
    for (std::int32_t r = 0; r < 24; ++r)
      for (std::int64_t i = 0; i < 3; ++i) {
        if (g.in_box(Coord{c, r}, i))
          EXPECT_TRUE(g.in_box(Coord{c, r}, i + 1));
      }
}

TEST(MainGeometry, ClassifyNPackets) {
  const MainGeometry g = small_geo();
  const Coord src{1, 1};  // inside the 1-box
  // N_2-packet: destination column 4, strictly north of row 4.
  const PacketClass n2 = g.classify(src, Coord{4, 10});
  EXPECT_EQ(n2.type, ClassType::N);
  EXPECT_EQ(n2.i, 2);
  // On the column but not north of the row: the corner (4,4) is unclassed;
  // (4,3) is actually an E_1 destination (on the E_1-row, east of the
  // N_1-column); (4,2) sits south of every E-row and is unclassed.
  EXPECT_EQ(g.classify(src, Coord{4, 4}).type, ClassType::None);
  const PacketClass e1 = g.classify(src, Coord{4, 3});
  EXPECT_EQ(e1.type, ClassType::E);
  EXPECT_EQ(e1.i, 1);
  EXPECT_EQ(g.classify(src, Coord{4, 2}).type, ClassType::None);
}

TEST(MainGeometry, ClassifyEPackets) {
  const MainGeometry g = small_geo();
  const Coord src{0, 3};
  const PacketClass e1 = g.classify(src, Coord{9, 3});
  EXPECT_EQ(e1.type, ClassType::E);
  EXPECT_EQ(e1.i, 1);
  EXPECT_EQ(g.classify(src, Coord{3, 3}).type, ClassType::None);
}

TEST(MainGeometry, SourceOutsideSubmeshIsNeverClassed) {
  const MainGeometry g = small_geo();
  // Same class-qualifying destination, source outside the 1-box: filler.
  EXPECT_EQ(g.classify(Coord{10, 10}, Coord{4, 10}).type, ClassType::None);
  EXPECT_EQ(g.classify(Coord{4, 0}, Coord{4, 10}).type, ClassType::None);
}

TEST(MainGeometry, ClassesBeyondRangeUnclassed) {
  const MainGeometry g = small_geo();
  const Coord src{1, 1};
  // Column γ+4 = 6 would be class 4 > classes() = 3.
  EXPECT_EQ(g.classify(src, Coord{6, 10}).type, ClassType::None);
  // Column γ = 2 is not a class line.
  EXPECT_EQ(g.classify(src, Coord{2, 10}).type, ClassType::None);
}

TEST(MainGeometry, NAndEAreMutuallyExclusive) {
  const MainGeometry g = small_geo();
  const Coord src{0, 0};
  int n_count = 0, e_count = 0, none = 0;
  for (std::int32_t c = 0; c < 24; ++c) {
    for (std::int32_t r = 0; r < 24; ++r) {
      const PacketClass cls = g.classify(src, Coord{c, r});
      switch (cls.type) {
        case ClassType::N: ++n_count; break;
        case ClassType::E: ++e_count; break;
        case ClassType::None: ++none; break;
      }
      if (cls.type != ClassType::None) {
        EXPECT_GE(cls.i, 1);
        EXPECT_LE(cls.i, 3);
      }
    }
  }
  // N destinations: 3 columns × rows strictly north of the line.
  EXPECT_EQ(n_count, (24 - 4) + (24 - 5) + (24 - 6));
  EXPECT_EQ(e_count, (24 - 4) + (24 - 5) + (24 - 6));
  EXPECT_EQ(none, 24 * 24 - n_count - e_count);
}

TEST(MainGeometry, DiagonalCornerIsUnclassedDest) {
  const MainGeometry g = small_geo();
  // Destinations on the diagonal (col == row) are corners of the boxes and
  // belong to neither class.
  for (std::int64_t i = 1; i <= 3; ++i) {
    EXPECT_EQ(
        g.classify(Coord{0, 0}, Coord{g.line(i), g.line(i)}).type,
        ClassType::None);
  }
}

}  // namespace
}  // namespace mr
