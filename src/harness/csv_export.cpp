#include "harness/csv_export.hpp"

#include <cctype>
#include <cstdlib>
#include <fstream>

namespace mr {

std::string csv_output_dir() {
  const char* env = std::getenv("MESHROUTE_OUTPUT_DIR");
  return env != nullptr ? std::string(env) : std::string();
}

bool write_csv(const Table& table, const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  out << table.to_csv();
  return out.good();
}

std::string export_csv(const Table& table, const std::string& slug) {
  const std::string dir = csv_output_dir();
  if (dir.empty()) return {};
  std::string name;
  for (char ch : slug) {
    const char lower = static_cast<char>(std::tolower(
        static_cast<unsigned char>(ch)));
    name += (std::isalnum(static_cast<unsigned char>(lower)) || lower == '-' ||
             lower == '_')
                ? lower
                : '_';
  }
  const std::string path = dir + "/" + name + ".csv";
  return write_csv(table, path) ? path : std::string();
}

}  // namespace mr
