# Empty dependencies file for e08_theorem15_upper.
# This may be replaced when dependencies are built.
