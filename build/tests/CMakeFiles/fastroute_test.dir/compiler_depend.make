# Empty compiler generated dependencies file for fastroute_test.
# This may be replaced when dependencies are built.
