// E03 — Lemma 12 / Theorem 13: exact replay equivalence.
//
// For each DX router, runs the construction and then the plain router on
// the constructed permutation, comparing full network configurations step
// by step: destination-less fingerprints must agree at EVERY step (the
// pending exchanges only permute destination fields), and the complete
// configuration must agree at step ⌊l⌋·dn, where an undelivered packet
// must remain.
#include "bench_util.hpp"
#include "lower_bound/main_construction.hpp"
#include "routing/registry.hpp"

int main() {
  using namespace mr;
  bench::header("E03", "replay equivalence of the constructed permutation",
                "Lemma 12, Theorem 13, Figure 3");

  std::vector<std::pair<int, int>> sizes = {{60, 1}, {120, 1}, {216, 1},
                                            {216, 2}};
  if (bench::scale() == bench::Scale::Small) sizes = {{60, 1}, {120, 1}};

  Table table({"algorithm", "n", "k", "steps compared", "stepwise equal",
               "final config equal", "undelivered at l*dn",
               "placement variant"});
  for (const std::string& algorithm : dx_minimal_algorithm_names()) {
    for (const auto& [n, k] : sizes) {
      const MainLbParams par = main_lb_params(n, k);
      if (!par.valid) continue;
      for (const bool shuffled : {false, true}) {
        MainConstructionOptions options;
        options.placement_seed = shuffled ? 0xABCDu : 0u;
        const Mesh mesh = Mesh::square(n);
        MainConstruction construction(mesh, par, options);
        const auto r = construction.verify_replay(algorithm, k);
        table.row()
            .add(algorithm)
            .add(n)
            .add(k)
            .add(par.certified_steps)
            .add(r.stepwise_match ? "yes" : "NO")
            .add(r.final_match ? "yes" : "NO")
            .add(std::uint64_t(r.undelivered_at_certified))
            .add(shuffled ? "shuffled 0-box" : "canonical");
      }
    }
  }
  bench::print(table);
  return 0;
}
