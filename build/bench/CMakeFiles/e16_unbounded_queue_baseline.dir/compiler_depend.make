# Empty compiler generated dependencies file for e16_unbounded_queue_baseline.
# This may be replaced when dependencies are built.
