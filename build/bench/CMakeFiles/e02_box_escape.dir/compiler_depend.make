# Empty compiler generated dependencies file for e02_box_escape.
# This may be replaced when dependencies are built.
