// E12 — cross table: every router × every workload family (the "who wins
// where" summary the paper's introduction frames). Cells show steps (and
// DNF where a central-queue router deadlocks — itself one of the paper's
// points: simple bounded-queue routers are fragile in the worst case).
#include "bench_util.hpp"
#include "harness/runner.hpp"
#include "lower_bound/dim_order_construction.hpp"
#include "lower_bound/main_construction.hpp"
#include "routing/registry.hpp"
#include "workload/permutation.hpp"

int main() {
  using namespace mr;
  bench::header("E12", "router × workload matrix", "§1, §7");

  const int n = 64;
  const Mesh mesh = Mesh::square(n);

  std::vector<std::pair<std::string, Workload>> workloads = {
      {"random perm", random_permutation(mesh, 42)},
      {"transpose", transpose(mesh)},
      {"bit-reversal", bit_reversal(mesh)},
      {"mirror", mirror(mesh)},
      {"rotation n/2", rotation(mesh, n / 2, 0)},
      {"random 2-2", random_hh(mesh, 2, 9)},
  };
  // Adversarial permutation for DX minimal routers (Theorem 14 instance,
  // sized for k=4 ⇒ valid only for n ≥ ~24·36; at n=64 fall back to k=1
  // geometry but run with k=4 queues — still heavily congested).
  {
    const MainLbParams par = main_lb_params(60, 1);
    MainConstruction construction(Mesh::square(60), par);
    auto run = construction.run_construction("dimension-order", 1);
    // re-target the constructed permutation onto the 64-mesh (top-left).
    Workload adv;
    const Mesh small = Mesh::square(60);
    for (const Demand& d : run.constructed) {
      const Coord s = small.coord_of(d.source);
      const Coord t = small.coord_of(d.dest);
      adv.push_back(Demand{mesh.id_of(s.col, s.row),
                           mesh.id_of(t.col, t.row), 0});
    }
    workloads.push_back({"corner flood (Thm14 geometry)", adv});
  }

  for (const int k : {4, 16}) {
    bench::note("### queue size k = " + std::to_string(k));
    std::vector<std::string> headers = {"workload"};
    for (const std::string& a : algorithm_names()) headers.push_back(a);
    Table table(headers);
    for (const auto& [name, w] : workloads) {
      table.row().add(name);
      for (const std::string& algorithm : algorithm_names()) {
        RunSpec spec;
        spec.width = spec.height = n;
        spec.queue_capacity = k;
        spec.algorithm = algorithm;
        spec.max_steps = 400000;
        spec.stall_limit = 5000;
        const RunResult r = run_workload(spec, w);
        table.add(r.all_delivered ? std::to_string(r.steps)
                                  : std::string("DNF"));
      }
    }
    bench::print(table);
  }
  bench::note(
      "n=64. DNF = store-and-forward deadlock / budget exceeded; the "
      "central-queue routers' fragility at small k versus the bounded "
      "router's uniform completion is the paper's practical point.");
  return 0;
}
