// E16 — §1.1 baseline: with UNBOUNDED queues, greedy dimension-order
// routing with the farthest-first priority routes every permutation in
// 2n−2 steps (Leighton [16, pp.159–162]) — but the queues it needs grow
// with n. This is precisely the trade-off the paper attacks: bounding k
// forces either Ω(n²/k) (dimension order, E04/E08) or the §6 machinery
// (E09).
#include "bench_util.hpp"
#include "harness/runner.hpp"
#include "workload/permutation.hpp"

int main() {
  using namespace mr;
  bench::header("E16", "unbounded-queue dimension-order baseline (2n-2)",
                "§1.1, Leighton [16]");

  std::vector<int> ns = {16, 32, 64, 128};
  if (bench::scale() == bench::Scale::Small) ns = {16, 32};
  if (bench::scale() == bench::Scale::Large) ns.push_back(256);

  Table table({"n", "workload", "steps", "2n-2", "steps <= 2n-2",
               "max queue (grows with n!)"});
  for (const int n : ns) {
    const Mesh mesh = Mesh::square(n);
    // row-to-column: every node of row 0 sends to a distinct row of column
    // n/2 — all packets turn at node (n/2, 0), whose queue grows with n.
    Workload row_to_column;
    for (std::int32_t c = 0; c < n; ++c)
      row_to_column.push_back(
          Demand{mesh.id_of(c, 0), mesh.id_of(n / 2, c), 0});
    const std::vector<std::pair<std::string, Workload>> workloads = {
        {"random perm", random_permutation(mesh, 77)},
        {"transpose", transpose(mesh)},
        {"mirror", mirror(mesh)},
        {"row-to-column", row_to_column},
    };
    for (const auto& [name, w] : workloads) {
      RunSpec spec;
      spec.width = spec.height = n;
      spec.queue_capacity = n * n;  // effectively unbounded
      spec.algorithm = "farthest-first";
      const RunResult r = run_workload(spec, w);
      table.row()
          .add(n)
          .add(name)
          .add(r.steps)
          .add(std::int64_t(2 * n - 2))
          .add(r.all_delivered && r.steps <= 2 * n - 2 ? "yes" : "NO")
          .add(std::int64_t(r.max_queue));
    }
  }
  bench::print(table);
  bench::note(
      "The classic O(n) algorithm exists — at the price of Θ(n) queues. "
      "Compare the max-queue column with k <= 8 in E08 and the constant "
      "834 bound of E09.");
  return 0;
}
