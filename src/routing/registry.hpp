// Factory and catalog for the built-in routing algorithms. Used by the
// examples and the benchmark binaries.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "sim/algorithm.hpp"

namespace mr {

/// Typed construction parameters. Only the fields an algorithm consumes
/// matter to it; the rest are ignored (the stray router is currently the
/// only parameterised one).
struct AlgorithmParams {
  int stray_bound = 2;            ///< δ: nodes a packet may stray (stray)
  int stray_block_threshold = 3;  ///< blocked steps before deflecting (stray)
};

/// A fully specified algorithm: catalog name + typed parameters. The
/// string spellings ("stray-7") parse into this.
struct AlgorithmSpec {
  std::string name;
  AlgorithmParams params;
};

/// One catalog entry, surfaced by `meshroute_bench --list`.
struct AlgorithmInfo {
  std::string name;         ///< default registry spelling, e.g. "stray-2"
  std::string description;  ///< one line
  QueueLayout layout = QueueLayout::Central;
  bool dx_minimal = false;  ///< in the Theorem 14 lower-bound class
};

/// All registered algorithms, in a stable order.
const std::vector<AlgorithmInfo>& algorithm_catalog();

/// Creates a fresh instance from a typed spec. Throws InvariantViolation
/// for unknown names or out-of-range parameters. Known names: those in
/// algorithm_catalog(), plus the bare "stray" (parameterised by
/// params.stray_bound / params.stray_block_threshold).
std::unique_ptr<Algorithm> make_algorithm(const AlgorithmSpec& spec);

/// String convenience wrapper: parses "stray-N" into an AlgorithmSpec with
/// stray_bound = N; every other name passes through unchanged.
std::unique_ptr<Algorithm> make_algorithm(const std::string& name);

/// Parses a registry spelling into a typed spec (no instantiation, no
/// validation beyond the numeric suffix shape).
AlgorithmSpec parse_algorithm_spec(const std::string& name);

/// Names of all registered algorithms, in catalog order.
std::vector<std::string> algorithm_names();

/// Names of the destination-exchangeable minimal adaptive algorithms (the
/// class covered by the Theorem 14 lower bound).
std::vector<std::string> dx_minimal_algorithm_names();

}  // namespace mr
