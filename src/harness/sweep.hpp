// Parameter-sweep driver: runs independent simulation instances across a
// thread pool and collects results position-addressed (deterministic output
// regardless of scheduling).
#pragma once

#include <functional>
#include <vector>

#include "core/parallel.hpp"

namespace mr {

/// Evaluates fn(i) for every index in parallel; results keep their slot.
template <typename Result>
std::vector<Result> sweep(std::size_t count,
                          const std::function<Result(std::size_t)>& fn) {
  std::vector<Result> results(count);
  parallel_for(count, [&](std::size_t i) { results[i] = fn(i); });
  return results;
}

}  // namespace mr
