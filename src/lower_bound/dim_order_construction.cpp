#include "lower_bound/dim_order_construction.hpp"

#include "routing/registry.hpp"

namespace mr {

namespace {

/// Single exchange rule of the §5 dimension-order construction.
class DimOrderInterceptor : public StepInterceptor {
 public:
  DimOrderInterceptor(const DimOrderConstruction& geo, std::int32_t cn,
                      std::int32_t dn, std::int64_t classes,
                      std::size_t class_count)
      : geo_(geo), cn_(cn), dn_(dn), classes_(classes),
        class_count_(class_count) {}

  std::size_t exchanges() const { return exchanges_; }

  void after_schedule(Sim& e,
                      std::span<const ScheduledMove> moves) override {
    const Step t = e.step();
    if (t > classes_ * dn_) return;
    scheduled_target_.assign(e.num_packets(), kInvalidNode);
    for (const ScheduledMove& m : moves) scheduled_target_[m.packet] = m.to;

    bool changed = true;
    std::size_t rounds = 0;
    while (changed) {
      changed = false;
      MR_REQUIRE(++rounds <= moves.size() + 4);
      for (const ScheduledMove& m : moves) {
        const Coord v = e.mesh().coord_of(m.to);
        if (v.row >= cn_) continue;  // inside the sender band only
        const std::int64_t i = v.col - geo_.line(0);
        if (i < 1 || i > classes_ || t > i * dn_) continue;
        const std::int64_t j = classify(e, m.packet);
        if (j <= i) continue;  // own column or unclassed: legal
        exchange(e, m.packet, i);
        changed = true;
      }
    }
  }

 private:
  std::int64_t classify(const Sim& e, PacketId p) const {
    if (static_cast<std::size_t>(p) >= class_count_) return 0;
    const Packet& pk = e.packet(p);
    return geo_.classify(e.mesh().coord_of(pk.source),
                         e.mesh().coord_of(pk.dest));
  }

  void exchange(Sim& e, PacketId mover, std::int64_t i) {
    PacketId unscheduled = kInvalidPacket;
    PacketId scheduled_elsewhere = kInvalidPacket;
    for (std::size_t id = 0; id < class_count_; ++id) {
      const PacketId p = static_cast<PacketId>(id);
      if (p == mover) continue;
      const Packet& pk = e.packet(p);
      if (pk.delivered() || pk.location == kInvalidNode) continue;
      if (classify(e, p) != i) continue;
      const Coord at = e.mesh().coord_of(pk.location);
      if (at.col > geo_.line(i - 1) || at.row >= cn_) continue;  // (i−1)-box
      const NodeId target = scheduled_target_[p];
      if (target == kInvalidNode) {
        unscheduled = p;
        break;
      }
      if (e.mesh().coord_of(target).col != geo_.line(i) &&
          scheduled_elsewhere == kInvalidPacket) {
        scheduled_elsewhere = p;
      }
    }
    const PacketId partner =
        unscheduled != kInvalidPacket ? unscheduled : scheduled_elsewhere;
    MR_REQUIRE_MSG(partner != kInvalidPacket,
                   "no eligible partner (dim-order construction) at step "
                       << e.step());
    e.exchange_destinations(mover, partner);
    ++exchanges_;
  }

  const DimOrderConstruction& geo_;
  std::int32_t cn_;
  std::int32_t dn_;
  std::int64_t classes_;
  std::size_t class_count_;
  std::size_t exchanges_ = 0;
  std::vector<NodeId> scheduled_target_;
};

/// Online checker for the §5 dimension-order analogues of Lemmas 1–8:
///  * confinement — during window w, every class j ≥ w+2 packet is still
///    west of the N_{w+1}-column (inside the w-box),
///  * column purity — while class i's window is open, no packet of another
///    class occupies the N_i-column inside the sender band,
///  * escape discipline — at most one class-i packet leaves the i-box per
///    step, never before its window opens.
class DimOrderChecker : public Observer {
 public:
  DimOrderChecker(const DimOrderConstruction& geo, std::int32_t cn,
                  std::int32_t dn, std::int64_t classes,
                  std::size_t class_count)
      : geo_(geo), cn_(cn), dn_(dn), classes_(classes),
        class_count_(class_count),
        escapes_(static_cast<std::size_t>(classes) + 1, 0) {}

  void on_move(const Sim& e, const Packet& pk, NodeId from,
               NodeId to) override {
    if (static_cast<std::size_t>(pk.id) >= class_count_) return;
    const std::int64_t i = geo_.classify(e.mesh().coord_of(pk.source),
                                         e.mesh().coord_of(pk.dest));
    if (i == 0) return;
    const Coord f = e.mesh().coord_of(from);
    const Coord t = e.mesh().coord_of(to);
    const bool left_box = (f.col <= geo_.line(i) && f.row < cn_) &&
                          !(t.col <= geo_.line(i) && t.row < cn_);
    if (!left_box) return;
    const Step step = e.step();
    MR_REQUIRE_MSG(step > (i - 1) * dn_,
                   "dim-order Lemma 1 analogue violated for class " << i);
    if (step <= i * dn_) {
      MR_REQUIRE_MSG(++escapes_[i] <= 1,
                     "dim-order Lemma 2 analogue violated for class " << i);
    }
  }

  void on_step_end(const Sim& e) override {
    const Step t = e.step();
    const Step w = (t - 1) / dn_;
    for (std::size_t id = 0; id < class_count_; ++id) {
      const Packet& pk = e.packet(static_cast<PacketId>(id));
      if (pk.delivered() || pk.location == kInvalidNode) continue;
      const std::int64_t j = geo_.classify(e.mesh().coord_of(pk.source),
                                           e.mesh().coord_of(pk.dest));
      if (j == 0) continue;
      const Coord at = e.mesh().coord_of(pk.location);
      if (at.row >= cn_) continue;  // already turned north: out of the band
      if (j >= w + 2) {
        MR_REQUIRE_MSG(at.col <= geo_.line(w),
                       "dim-order confinement violated: class "
                           << j << " east of the " << w << "-box at step "
                           << t);
      }
      // Column purity: inside the band, the N_i-column may only hold
      // class-i packets while i's window is open.
      const std::int64_t col_class = at.col - geo_.line(0);
      if (col_class >= 1 && col_class <= classes_ &&
          t <= col_class * dn_) {
        MR_REQUIRE_MSG(j == col_class,
                       "dim-order column purity violated at step " << t);
      }
    }
    std::fill(escapes_.begin(), escapes_.end(), 0);
  }

 private:
  const DimOrderConstruction& geo_;
  std::int32_t cn_;
  std::int32_t dn_;
  std::int64_t classes_;
  std::size_t class_count_;
  std::vector<std::int64_t> escapes_;
};

}  // namespace

DimOrderConstruction::DimOrderConstruction(const Mesh& mesh,
                                           const DimOrderLbParams& params)
    : mesh_(mesh),
      n_(params.n),
      k_(params.k),
      cn_(params.cn),
      dn_(params.dn),
      p_(params.p),
      classes_(params.classes),
      certified_(params.certified_steps) {
  MR_REQUIRE_MSG(params.valid, "dim_order_lb_params invalid");
  MR_REQUIRE(mesh_.width() >= n_ && mesh_.height() >= n_);
}

std::int64_t DimOrderConstruction::classify(Coord source, Coord dest) const {
  if (source.row >= cn_ || source.col > line(1)) return 0;  // not a sender
  if (dest.row < cn_) return 0;
  const std::int64_t i = dest.col - line(0);
  if (i < 1 || i > classes_) return 0;
  return i;
}

Workload DimOrderConstruction::placement() const {
  Workload w;
  w.reserve(static_cast<std::size_t>(p_ * classes_));
  std::vector<std::int64_t> dest_count(static_cast<std::size_t>(classes_) + 1,
                                       0);
  auto emit = [&](Coord at, std::int64_t i) {
    const std::int64_t j = dest_count[i]++;
    const Coord dest{line(i), static_cast<std::int32_t>(n_ - 1 - j)};
    MR_REQUIRE_MSG(dest.row >= cn_, "destination capacity exhausted");
    w.push_back(Demand{mesh_.id_of(at), mesh_.id_of(dest), 0});
  };

  // Only N_1-packets occupy the N_1-column inside the sender band.
  for (std::int32_t r = 0; r < cn_; ++r) emit(Coord{line(1), r}, 1);

  // Everything else lives strictly west of the N_1-column.
  std::vector<std::int64_t> slots;
  slots.reserve(static_cast<std::size_t>(p_ * classes_));
  for (std::int64_t j = cn_; j < p_; ++j) slots.push_back(1);
  for (std::int64_t i = 2; i <= classes_; ++i)
    for (std::int64_t j = 0; j < p_; ++j) slots.push_back(i);
  MR_REQUIRE(slots.size() <=
             static_cast<std::size_t>(line(1)) * static_cast<std::size_t>(cn_));
  std::size_t next = 0;
  for (std::int32_t r = 0; r < cn_ && next < slots.size(); ++r)
    for (std::int32_t c = 0; c < line(1) && next < slots.size(); ++c)
      emit(Coord{c, r}, slots[next++]);
  MR_REQUIRE(next == slots.size());
  return w;
}

DimOrderConstruction::RunResult DimOrderConstruction::run_construction(
    const std::string& algorithm, int k) {
  auto algo = make_algorithm(algorithm);
  // Size check against total per-node buffering (4k for per-inlink).
  const int per_node_capacity =
      algo->queue_layout() == QueueLayout::PerInlink ? 4 * k : k;
  MR_REQUIRE_MSG(per_node_capacity <= k_,
                 "construction sized for capacity " << k_);
  Engine::Config config;
  config.queue_capacity = k;
  config.stall_limit = 0;
  Engine engine(mesh_, config, *algo);
  const Workload w = placement();
  for (const Demand& d : w) engine.add_packet(d.source, d.dest, d.injected_at);

  DimOrderInterceptor interceptor(*this, cn_, dn_, classes_, w.size());
  engine.set_interceptor(&interceptor);
  DimOrderChecker checker(*this, cn_, dn_, classes_, w.size());
  engine.add_observer(&checker);
  engine.prepare();

  RunResult result;
  result.stepwise_nodest_fingerprints.reserve(
      static_cast<std::size_t>(certified_));
  for (Step t = 1; t <= certified_; ++t) {
    MR_REQUIRE_MSG(engine.step_once(),
                   "network drained before the certified Ω(n²/k) bound");
    result.stepwise_nodest_fingerprints.push_back(engine.fingerprint(false));
  }
  result.steps = certified_;
  result.exchanges = interceptor.exchanges();
  result.undelivered = engine.num_packets() - engine.delivered_count();
  result.final_fingerprint = engine.fingerprint(true);
  result.constructed.reserve(engine.num_packets());
  for (const Packet& pk : engine.all_packets())
    result.constructed.push_back(Demand{pk.source, pk.dest, pk.injected_at});
  return result;
}

DimOrderConstruction::ReplayResult DimOrderConstruction::verify_replay(
    const std::string& algorithm, int k, Step replay_budget) {
  ReplayResult out;
  out.construction = run_construction(algorithm, k);

  auto algo = make_algorithm(algorithm);
  Engine::Config config;
  config.queue_capacity = k;
  config.stall_limit = 0;
  Engine replay(mesh_, config, *algo);
  for (const Demand& d : out.construction.constructed)
    replay.add_packet(d.source, d.dest, d.injected_at);
  replay.prepare();

  for (Step t = 1; t <= certified_; ++t) {
    MR_REQUIRE(replay.step_once());
    if (replay.fingerprint(false) !=
        out.construction
            .stepwise_nodest_fingerprints[static_cast<std::size_t>(t - 1)]) {
      out.stepwise_match = false;
      if (out.first_mismatch < 0) out.first_mismatch = t;
    }
  }
  out.final_match =
      replay.fingerprint(true) == out.construction.final_fingerprint;
  out.undelivered_at_certified =
      replay.num_packets() - replay.delivered_count();

  const Step budget = replay_budget > 0
                          ? replay_budget
                          : certified_ + 16LL * n_ * n_ / std::max(1, k) +
                                64LL * n_;
  out.replay_total_steps = replay.run(budget);
  out.replay_all_delivered = replay.all_delivered();
  return out;
}

}  // namespace mr
