#include "topo/mesh.hpp"

#include <cstdlib>

namespace mr {

Mesh::Mesh(std::int32_t width, std::int32_t height, bool torus)
    : width_(width), height_(height), torus_(torus) {
  MR_REQUIRE_MSG(width >= 1 && height >= 1,
                 "mesh dimensions must be positive, got " << width << "x"
                                                          << height);
}

NodeId Mesh::neighbor(NodeId id, Dir d) const {
  Coord c = coord_of(id);
  switch (d) {
    case Dir::North: c.row += 1; break;
    case Dir::South: c.row -= 1; break;
    case Dir::East: c.col += 1; break;
    case Dir::West: c.col -= 1; break;
  }
  if (torus_) {
    c.col = (c.col + width_) % width_;
    c.row = (c.row + height_) % height_;
    return id_of(c);
  }
  if (!contains(c)) return kInvalidNode;
  return id_of(c);
}

Mesh::Delta Mesh::delta(NodeId from, NodeId to) const {
  const Coord a = coord_of(from);
  const Coord b = coord_of(to);
  Delta d;
  if (!torus_) {
    d.east = b.col - a.col;
    d.north = b.row - a.row;
    return d;
  }
  auto wrap_delta = [](std::int32_t x, std::int32_t y, std::int32_t n,
                       bool& tie) {
    std::int32_t fwd = (y - x + n) % n;      // steps in + direction
    std::int32_t bwd = n - fwd;              // steps in - direction
    if (fwd == 0) {
      tie = false;
      return std::int32_t{0};
    }
    tie = (fwd == bwd);
    return fwd <= bwd ? fwd : -bwd;
  };
  d.east = wrap_delta(a.col, b.col, width_, d.east_tie);
  d.north = wrap_delta(a.row, b.row, height_, d.north_tie);
  return d;
}

std::int32_t Mesh::distance(NodeId from, NodeId to) const {
  const Delta d = delta(from, to);
  return std::abs(d.east) + std::abs(d.north);
}

DirMask Mesh::profitable_dirs(NodeId from, NodeId to) const {
  const Delta d = delta(from, to);
  DirMask m = 0;
  if (d.east > 0 || (d.east != 0 && d.east_tie)) m |= dir_bit(Dir::East);
  if (d.east < 0 || (d.east != 0 && d.east_tie)) m |= dir_bit(Dir::West);
  if (d.north > 0 || (d.north != 0 && d.north_tie)) m |= dir_bit(Dir::North);
  if (d.north < 0 || (d.north != 0 && d.north_tie)) m |= dir_bit(Dir::South);
  return m;
}

std::vector<NodeId> Mesh::all_nodes() const {
  std::vector<NodeId> v;
  v.reserve(static_cast<std::size_t>(num_nodes()));
  for (NodeId id = 0; id < num_nodes(); ++id) v.push_back(id);
  return v;
}

}  // namespace mr
