# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for bounded_do_test.
