#include "sim/metrics.hpp"

#include <cmath>

#include "sim/engine.hpp"

namespace mr {

void MetricsObserver::on_prepare_end(const Sim& e) {
  (void)e;
  // Entry for step 0: deliveries that happened during prepare()
  // (source==dest packets) belong to the curve, not to step 1.
  delivered_by_step_.push_back(delivered_so_far_);
}

void MetricsObserver::sample_occupancy(const Sim& e) {
  // Only nodes holding packets can have non-zero occupancy, so sampling is
  // O(active nodes). Under the per-inlink layout every one of the (up to
  // four) queues is its own sample; lumping them into a whole-node count
  // would distort the histogram against the per-queue bound k.
  const bool per_inlink = e.queue_layout() == QueueLayout::PerInlink;
  for (NodeId u : e.active_nodes()) {
    if (per_inlink) {
      for (QueueTag t = 0; t < kNumDirs; ++t) {
        const int occ = e.occupancy(u, t);
        if (occ > 0) occupancy_.add(occ);
      }
    } else {
      const int occ = e.occupancy(u);
      if (occ > 0) occupancy_.add(occ);
    }
  }
}

void MetricsObserver::on_step_end(const Sim& e) {
  delivered_by_step_.push_back(delivered_so_far_);
  if (sample_every_ > 0 && e.step() % sample_every_ == 0) sample_occupancy(e);
}

void MetricsObserver::on_deliver(const Sim& e, const Packet& p) {
  latency_.add(p.delivered_at - p.injected_at);
  (void)e;
  ++delivered_so_far_;
}

LatencySummary latency_summary_from_packets(const std::vector<Packet>& packets) {
  Histogram h;
  for (const Packet& p : packets)
    if (p.delivered()) h.add(p.delivered_at - p.injected_at);
  LatencySummary s;
  if (h.total() == 0) return s;
  s.mean = h.mean();
  s.p50 = h.percentile(0.5);
  s.p95 = h.percentile(0.95);
  s.p99 = h.percentile(0.99);
  s.max = h.max();
  return s;
}

LatencySummary MetricsObserver::latency_summary() const {
  LatencySummary s;
  s.mean = latency_.mean();
  s.p50 = latency_.percentile(0.5);
  s.p95 = latency_.percentile(0.95);
  s.p99 = latency_.percentile(0.99);
  s.max = latency_.max();
  return s;
}

Step MetricsObserver::completion_step(double fraction,
                                      std::size_t total) const {
  // Ceiling: "half of 5 delivered" means 3 packets, not 2. The epsilon
  // guards against fraction*total landing epsilon above an integer.
  const auto target = static_cast<std::int64_t>(
      std::ceil(fraction * static_cast<double>(total) - 1e-9));
  for (std::size_t t = 0; t < delivered_by_step_.size(); ++t)
    if (delivered_by_step_[t] >= target) return static_cast<Step>(t);
  return delivered_by_step_.empty()
             ? 0
             : static_cast<Step>(delivered_by_step_.size() - 1);
}

}  // namespace mr
