file(REMOVE_RECURSE
  "CMakeFiles/torus_routing_test.dir/torus_routing_test.cpp.o"
  "CMakeFiles/torus_routing_test.dir/torus_routing_test.cpp.o.d"
  "torus_routing_test"
  "torus_routing_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/torus_routing_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
