// Path system for store-and-forward schedulers (Rothvoß, arXiv:1206.3718;
// Leighton–Maggs–Rao): fixed per-packet shortest paths plus the two
// parameters every O(congestion + dilation) result is stated in —
// congestion C (the maximum number of paths through any directed link) and
// dilation D (the longest path length in hops).
#pragma once

#include <vector>

#include "topo/topology.hpp"
#include "workload/permutation.hpp"

namespace mr {

/// One packet's fixed path: the node sequence plus the direction of every
/// hop (dirs[i] leads from nodes[i] to nodes[i+1]), so schedulers and the
/// replay driver never re-derive geometry. A source==dest demand has a
/// single-node path and no hops.
struct PacketPath {
  std::vector<NodeId> nodes;
  std::vector<Dir> dirs;

  std::size_t hops() const { return dirs.size(); }
};

/// Fixed paths for one workload, demand-indexed: paths[i] belongs to w[i].
struct PathSet {
  std::vector<PacketPath> paths;
  int congestion = 0;  ///< C: max paths over any directed link
  int dilation = 0;    ///< D: max hops over any path
};

/// Directed-link index of (u, d), for per-link bookkeeping.
inline std::size_t link_index(NodeId u, Dir d) {
  return static_cast<std::size_t>(u) * kNumDirs +
         static_cast<std::size_t>(dir_index(d));
}

/// One-bend dimension-order paths (row segment, then column segment) —
/// minimal on every registry topology, with East/North winning wrap ties
/// like the built-in routers, so torus paths are deterministic too.
/// Computes C and D over the built set.
PathSet build_paths(const Topology& topo, const Workload& w);

}  // namespace mr
