# Empty dependencies file for mr_harness.
# This may be replaced when dependencies are built.
