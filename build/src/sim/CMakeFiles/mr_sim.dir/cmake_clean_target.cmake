file(REMOVE_RECURSE
  "libmr_sim.a"
)
