#include "harness/scenario.hpp"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <system_error>

#include "core/assert.hpp"
#include "core/parallel.hpp"
#include "harness/csv_export.hpp"
#include "core/json_min.hpp"
#include "telemetry/phase_profile.hpp"

namespace mr {

namespace {

std::string lower(const std::string& s) {
  std::string out = s;
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

/// Run labels go into checkpoint file stems; keep them filesystem-safe.
std::string sanitize_key(const std::string& s) {
  std::string out = s;
  for (char& c : out) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '.' || c == '_' || c == '-';
    if (!ok) c = '_';
  }
  return out;
}

}  // namespace

Scale scale_from_env() {
  const char* env = std::getenv("MESHROUTE_BENCH_SCALE");
  if (env == nullptr) return Scale::Default;
  const std::string v(env);
  if (v == "small") return Scale::Small;
  if (v == "large") return Scale::Large;
  return Scale::Default;
}

const char* scale_name(Scale s) {
  switch (s) {
    case Scale::Small: return "small";
    case Scale::Default: return "default";
    case Scale::Large: return "large";
  }
  return "?";
}

// --- ScenarioResult --------------------------------------------------------

bool ScenarioResult::passed() const {
  if (errored) return false;
  for (const ScenarioCheck& c : checks)
    if (!c.pass) return false;
  return true;
}

std::string ScenarioResult::to_markdown() const {
  std::ostringstream os;
  os << "## " << id << ": " << title << "\n";
  os << "(paper: " << paper_ref << ")\n\n";
  for (const ScenarioItem& item : items) {
    if (item.kind == ScenarioItem::Kind::Note) {
      os << item.text << "\n";
    } else {
      os << tables[item.table_index].to_markdown() << "\n";
    }
  }
  if (errored) os << "ERROR: " << error << "\n";
  return os.str();
}

std::string ScenarioResult::to_json() const {
  std::ostringstream os;
  os << "{\n";
  os << "  \"schema\": \"" << kScenarioJsonSchema << "\",\n";
  os << "  \"id\": \"" << json::escape(id) << "\",\n";
  os << "  \"label\": \"" << json::escape(label) << "\",\n";
  os << "  \"title\": \"" << json::escape(title) << "\",\n";
  os << "  \"paper_ref\": \"" << json::escape(paper_ref) << "\",\n";
  os << "  \"scale\": \"" << scale_name(scale) << "\",\n";
  os << "  \"seed\": " << seed << ",\n";
  os << "  \"passed\": " << (passed() ? "true" : "false") << ",\n";
  if (errored) os << "  \"error\": \"" << json::escape(error) << "\",\n";

  os << "  \"checks\": [";
  for (std::size_t i = 0; i < checks.size(); ++i) {
    const ScenarioCheck& c = checks[i];
    os << (i > 0 ? "," : "") << "\n    {\"name\": \"" << json::escape(c.name)
       << "\", \"pass\": " << (c.pass ? "true" : "false");
    if (!c.detail.empty())
      os << ", \"detail\": \"" << json::escape(c.detail) << "\"";
    os << "}";
  }
  os << (checks.empty() ? "" : "\n  ") << "],\n";

  os << "  \"runs\": [";
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const ScenarioRunRecord& rec = runs[i];
    const RunResult& r = rec.run;
    os << (i > 0 ? "," : "") << "\n    {\"label\": \""
       << json::escape(rec.label) << "\", \"steps\": " << r.steps
       << ", \"moves\": " << r.total_moves
       << ", \"packets\": " << r.packets << ", \"delivered\": " << r.delivered
       << ", \"all_delivered\": " << (r.all_delivered ? "true" : "false")
       << ", \"stalled\": " << (r.stalled ? "true" : "false")
       << ", \"max_queue\": " << r.max_queue
       << ", \"latency_p50\": " << r.latency.p50
       << ", \"latency_p95\": " << r.latency.p95
       << ", \"latency_p99\": " << r.latency.p99
       << ", \"latency_max\": " << r.latency.max
       << ", \"engine_mode\": \"" << to_string(r.engine_mode) << "\"";
    if (!r.telemetry_path.empty())
      os << ", \"telemetry\": \"" << json::escape(r.telemetry_path) << "\"";
    os << "}";
  }
  os << (runs.empty() ? "" : "\n  ") << "],\n";

  os << "  \"notes\": [";
  bool first_note = true;
  for (const ScenarioItem& item : items) {
    if (item.kind != ScenarioItem::Kind::Note) continue;
    os << (first_note ? "" : ",") << "\n    \"" << json::escape(item.text)
       << "\"";
    first_note = false;
  }
  os << (first_note ? "" : "\n  ") << "],\n";

  os << "  \"tables\": [";
  for (std::size_t t = 0; t < tables.size(); ++t) {
    const Table& table = tables[t];
    os << (t > 0 ? "," : "") << "\n    {\"name\": \"" << lower(id) << "_" << t
       << "\", \"headers\": [";
    for (std::size_t c = 0; c < table.headers().size(); ++c)
      os << (c > 0 ? ", " : "") << "\"" << json::escape(table.headers()[c])
         << "\"";
    os << "], \"rows\": [";
    for (std::size_t row = 0; row < table.rows().size(); ++row) {
      os << (row > 0 ? ", " : "") << "[";
      const auto& cells = table.rows()[row];
      for (std::size_t c = 0; c < cells.size(); ++c)
        os << (c > 0 ? ", " : "") << "\"" << json::escape(cells[c]) << "\"";
      os << "]";
    }
    os << "]}";
  }
  os << (tables.empty() ? "" : "\n  ") << "]\n";
  os << "}\n";
  return os.str();
}

void ScenarioResult::export_tables() const {
  for (std::size_t t = 0; t < tables.size(); ++t)
    export_csv(tables[t], id + "_" + std::to_string(t));
}

// --- ScenarioReport --------------------------------------------------------

void ScenarioReport::note(const std::string& text) {
  out_->items.push_back({ScenarioItem::Kind::Note, text, 0});
}

void ScenarioReport::table(const Table& t) {
  out_->tables.push_back(t);
  out_->items.push_back(
      {ScenarioItem::Kind::Table, std::string(), out_->tables.size() - 1});
}

void ScenarioReport::check(const std::string& name, bool pass,
                           const std::string& detail) {
  out_->checks.push_back({name, pass, detail});
}

void ScenarioReport::record(const std::string& run_label, const RunResult& r) {
  out_->runs.push_back({run_label, r});
}

RunResult ScenarioReport::run(const std::string& run_label,
                              const RunSpec& spec, const Workload& workload,
                              const RunHooks& hooks) {
  RunSpec effective = spec;
  if (!effective.telemetry.enabled()) {
    if (!options_.telemetry_dir.empty()) {
      effective.telemetry.series = true;
      effective.telemetry.export_dir = options_.telemetry_dir;
      effective.telemetry.slug = lower(out_->id) + "_" + run_label;
    }
    effective.telemetry.profile = options_.profile;
  }
  if (effective.engine_shards == 1 && effective.engine_threads == 1) {
    effective.engine_shards = options_.engine_shards;
    effective.engine_threads = options_.engine_threads;
  }
  if (effective.topology.empty() && !options_.topology.empty()) {
    effective.topology = options_.topology;
  }
  if (effective.faults.empty() && !options_.faults.empty())
    effective.faults = options_.faults;
  if (!effective.adversary && options_.adversary) effective.adversary = true;
  if (!effective.checkpoint.enabled())
    effective.checkpoint = checkpoint(run_label);
  const RunResult r = run_workload(effective, workload, hooks);
  record(run_label, r);
  if (r.phase_profile) {
    note("phase profile (" + run_label + "):");
    table(phase_profile_table(*r.phase_profile));
  }
  return r;
}

CheckpointSpec ScenarioReport::checkpoint(const std::string& label) const {
  CheckpointSpec spec;
  if (options_.checkpoint_dir.empty()) return spec;  // disabled
  spec.dir = options_.checkpoint_dir;
  spec.every = options_.checkpoint_every;
  spec.key = lower(out_->id) + "_" + sanitize_key(label);
  return spec;
}

// --- ScenarioRegistry ------------------------------------------------------

void ScenarioRegistry::add(ScenarioSpec spec) {
  MR_REQUIRE_MSG(!spec.id.empty(), "scenario id must not be empty");
  MR_REQUIRE_MSG(!spec.label.empty(), "scenario label must not be empty");
  MR_REQUIRE_MSG(spec.body != nullptr,
                 "scenario '" << spec.id << "' has no body");
  MR_REQUIRE_MSG(find(spec.id) == nullptr,
                 "duplicate scenario id '" << spec.id << "'");
  MR_REQUIRE_MSG(find(spec.label) == nullptr,
                 "duplicate scenario label '" << spec.label << "'");
  specs_.push_back(std::make_unique<ScenarioSpec>(std::move(spec)));
}

const ScenarioSpec* ScenarioRegistry::find(
    const std::string& id_or_label) const {
  const std::string key = lower(id_or_label);
  for (const auto& spec : specs_)
    if (lower(spec->id) == key || lower(spec->label) == key)
      return spec.get();
  return nullptr;
}

std::vector<const ScenarioSpec*> ScenarioRegistry::all() const {
  std::vector<const ScenarioSpec*> out;
  out.reserve(specs_.size());
  for (const auto& spec : specs_) out.push_back(spec.get());
  return out;
}

// --- execution -------------------------------------------------------------

ScenarioResult run_scenario(const ScenarioSpec& spec,
                            const ScenarioOptions& options) {
  ScenarioResult result;
  result.id = spec.id;
  result.label = spec.label;
  result.title = spec.title;
  result.paper_ref = spec.paper_ref;
  result.scale = options.scale;
  result.seed = options.seed;
  ScenarioReport report(options, &result);
  try {
    spec.body(report);
    if (spec.expect)
      report.check("expected-bound", spec.expect(result));
  } catch (const std::exception& e) {
    result.errored = true;
    result.error = e.what();
  } catch (...) {
    result.errored = true;
    result.error = "unknown exception";
  }
  result.export_tables();
  return result;
}

std::vector<ScenarioResult> run_scenarios(
    const std::vector<const ScenarioSpec*>& specs,
    const ScenarioOptions& options) {
  std::vector<ScenarioResult> results(specs.size());
  parallel_for(
      specs.size(),
      [&](std::size_t i) { results[i] = run_scenario(*specs[i], options); },
      options.jobs);
  return results;
}

// --- JSON backend ----------------------------------------------------------

std::string write_scenario_json(const ScenarioResult& result,
                                const std::string& dir) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) return {};
  const std::string path = dir + "/" + lower(result.id) + ".json";
  std::ofstream out(path);
  if (!out) return {};
  out << result.to_json();
  return out.good() ? path : std::string();
}

bool validate_scenario_json(const std::string& path, std::string* error) {
  auto fail = [&](const std::string& msg) {
    if (error != nullptr) *error = path + ": " + msg;
    return false;
  };
  std::ifstream in(path);
  if (!in.good()) return fail("cannot read");
  std::ostringstream buf;
  buf << in.rdbuf();

  std::string parse_error;
  const auto doc = json::parse(buf.str(), &parse_error);
  if (!doc) return fail("malformed JSON: " + parse_error);
  if (!doc->is_object()) return fail("top level is not an object");

  const json::Value* schema = doc->find("schema");
  if (schema == nullptr || !schema->is_string() ||
      schema->string != kScenarioJsonSchema)
    return fail("missing or wrong \"schema\"");
  for (const char* key : {"id", "label", "title", "paper_ref", "scale"}) {
    const json::Value* v = doc->find(key);
    if (v == nullptr || !v->is_string() || v->string.empty())
      return fail(std::string("missing or empty \"") + key + "\"");
  }
  const json::Value* passed = doc->find("passed");
  if (passed == nullptr || !passed->is_bool())
    return fail("missing boolean \"passed\"");

  const json::Value* checks = doc->find("checks");
  if (checks == nullptr || !checks->is_array())
    return fail("missing \"checks\" array");
  for (std::size_t i = 0; i < checks->array.size(); ++i) {
    const json::Value& c = checks->array[i];
    const json::Value* name = c.find("name");
    const json::Value* pass = c.find("pass");
    if (!c.is_object() || name == nullptr || !name->is_string() ||
        pass == nullptr || !pass->is_bool())
      return fail("checks[" + std::to_string(i) + "] malformed");
  }

  const json::Value* runs = doc->find("runs");
  if (runs == nullptr || !runs->is_array())
    return fail("missing \"runs\" array");
  for (std::size_t i = 0; i < runs->array.size(); ++i) {
    const json::Value& r = runs->array[i];
    if (!r.is_object()) return fail("runs[" + std::to_string(i) + "] malformed");
    const json::Value* label = r.find("label");
    if (label == nullptr || !label->is_string())
      return fail("runs[" + std::to_string(i) + "] missing \"label\"");
    for (const char* key :
         {"steps", "moves", "packets", "delivered", "max_queue",
          "latency_p50", "latency_p95", "latency_p99", "latency_max"}) {
      const json::Value* v = r.find(key);
      if (v == nullptr || !v->is_number() || v->number < 0)
        return fail("runs[" + std::to_string(i) + "] missing or negative \"" +
                    key + "\"");
    }
    // Optional (older records predate it), but must name a real EngineMode
    // when present.
    const json::Value* mode = r.find("engine_mode");
    if (mode != nullptr &&
        (!mode->is_string() || !parse_engine_mode(mode->string)))
      return fail("runs[" + std::to_string(i) + "] malformed \"engine_mode\"");
  }

  const json::Value* tables = doc->find("tables");
  if (tables == nullptr || !tables->is_array())
    return fail("missing \"tables\" array");
  for (std::size_t t = 0; t < tables->array.size(); ++t) {
    const json::Value& table = tables->array[t];
    const std::string where = "tables[" + std::to_string(t) + "]";
    const json::Value* headers = table.find("headers");
    const json::Value* rows = table.find("rows");
    if (!table.is_object() || headers == nullptr || !headers->is_array() ||
        headers->array.empty() || rows == nullptr || !rows->is_array())
      return fail(where + " malformed");
    for (const json::Value& h : headers->array)
      if (!h.is_string()) return fail(where + " has a non-string header");
    for (std::size_t row = 0; row < rows->array.size(); ++row) {
      const json::Value& cells = rows->array[row];
      if (!cells.is_array() || cells.array.size() > headers->array.size())
        return fail(where + " row " + std::to_string(row) +
                    " does not match headers");
      for (const json::Value& cell : cells.array)
        if (!cell.is_string())
          return fail(where + " row " + std::to_string(row) +
                      " has a non-string cell");
    }
  }
  return true;
}

}  // namespace mr
