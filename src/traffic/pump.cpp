#include "traffic/pump.hpp"

#include <algorithm>

#include "core/assert.hpp"

namespace mr {

TrafficPump::TrafficPump(Engine& engine, TrafficSource& source,
                         Step inject_steps, Step ahead)
    : engine_(engine),
      source_(source),
      inject_steps_(inject_steps),
      ahead_(ahead) {
  MR_REQUIRE_MSG(inject_steps >= 0, "inject_steps must be >= 0");
  MR_REQUIRE_MSG(ahead >= 1, "generation-ahead window must be >= 1");
}

void TrafficPump::emit_one(bool pre_prepare) {
  ++emitted_;
  buf_.clear();
  source_.emit(emitted_, buf_);
  offered_per_step_.push_back(static_cast<std::int32_t>(buf_.size()));
  offered_ += static_cast<std::int64_t>(buf_.size());
  for (const Demand& d : buf_) {
    MR_REQUIRE_MSG(d.injected_at == emitted_,
                   "source emitted a demand dated " << d.injected_at
                       << " during step " << emitted_);
    if (pre_prepare)
      engine_.add_packet(d.source, d.dest, d.injected_at);
    else
      engine_.pump_packet(d.source, d.dest, d.injected_at);
  }
}

void TrafficPump::prime() {
  MR_REQUIRE_MSG(!primed_, "prime() called twice");
  primed_ = true;
  const Step target = std::min(ahead_, inject_steps_);
  while (emitted_ < target) emit_one(/*pre_prepare=*/true);
}

void TrafficPump::advance() {
  MR_REQUIRE_MSG(primed_, "advance() before prime()");
  const Step target = std::min(engine_.step() + ahead_, inject_steps_);
  while (emitted_ < target) emit_one(/*pre_prepare=*/false);
  // Idle gap at low rates: everything delivered and nothing pending, but
  // the stream is not over. Pull the window forward until some step
  // actually injects, so step_once can advance the clock again.
  while (engine_.all_delivered() && !exhausted())
    emit_one(/*pre_prepare=*/false);
}

std::int64_t TrafficPump::offered_between(Step first, Step last) const {
  std::int64_t sum = 0;
  const Step lo = std::max<Step>(first, 1);
  const Step hi = std::min<Step>(last, emitted_);
  for (Step t = lo; t <= hi; ++t)
    sum += offered_per_step_[static_cast<std::size_t>(t - 1)];
  return sum;
}

Step run_to_drain(Engine& engine, TrafficPump& pump, Step max_steps) {
  while (!engine.stalled() && engine.step() < max_steps) {
    pump.advance();
    if (engine.all_delivered()) break;  // stream exhausted and drained
    engine.step_once();
  }
  return engine.step();
}

}  // namespace mr
