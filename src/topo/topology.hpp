// Topology interface (DESIGN.md §10).
//
// Every network the engine can route on is a rectangular grid of routers
// (width × height, row-major dense node ids) plus a per-topology edge
// relation. The grid contract is deliberately NON-virtual: the engine's
// flat-table hot path (NodeQueues slabs, shard banding) indexes by
// `id = row * width + col` and relies on that mapping being identical for
// every topology. Concrete topologies customise only the virtual edge/
// distance kernel (`neighbor`, `delta`) and the terminal mapping
// (concentration).
//
// Columns are numbered west→east and rows south→north, both 0-based; the
// paper's 1-based "column 1..n" convention appears only in printed output.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/assert.hpp"
#include "core/types.hpp"

namespace mr {

/// Signed displacement needed in each dimension to reach `to` from `from`
/// along a shortest path: (east_delta, north_delta). On wrapping
/// topologies the smaller wrap is chosen; an exact tie reports the
/// positive direction and sets the corresponding `*_tie` flag.
struct Delta {
  std::int32_t east = 0;   ///< >0 move east, <0 move west
  std::int32_t north = 0;  ///< >0 move north, <0 move south
  bool east_tie = false;   ///< wrap: both E and W are shortest
  bool north_tie = false;  ///< wrap: both N and S are shortest
};

class Topology {
 public:
  virtual ~Topology() = default;

  /// Registry name of this instance, e.g. "mesh", "torus", "cmesh-4".
  virtual std::string name() const = 0;

  /// Deep copy preserving the dynamic type (Sim stores a clone).
  virtual std::unique_ptr<Topology> clone() const = 0;

  // --- Grid contract (non-virtual: the engine's dense-id hot path
  // depends on this exact mapping for every topology). ---

  std::int32_t width() const { return width_; }
  std::int32_t height() const { return height_; }
  bool is_torus() const { return wraps_; }
  std::int32_t num_nodes() const { return width_ * height_; }

  bool contains(Coord c) const {
    return c.col >= 0 && c.col < width_ && c.row >= 0 && c.row < height_;
  }

  NodeId id_of(Coord c) const {
    MR_REQUIRE(contains(c));
    return c.row * width_ + c.col;
  }
  NodeId id_of(std::int32_t col, std::int32_t row) const {
    return id_of(Coord{col, row});
  }

  Coord coord_of(NodeId id) const {
    MR_REQUIRE(id >= 0 && id < num_nodes());
    return Coord{id % width_, id / width_};
  }

  /// All node ids, row-major (south row first).
  std::vector<NodeId> all_nodes() const;

  // --- Edge/distance kernel (virtual). ---

  /// Neighbour in direction d, or kInvalidNode if no such link.
  virtual NodeId neighbor(NodeId id, Dir d) const = 0;

  /// Shortest-path displacement from `from` to `to`; see mr::Delta.
  virtual Delta delta(NodeId from, NodeId to) const = 0;

  /// L1 (shortest-path) distance.
  std::int32_t distance(NodeId from, NodeId to) const;

  /// Profitable outlinks of a packet at `from` destined for `to`: the
  /// directions that strictly reduce distance (paper §2). Empty iff
  /// from == to.
  DirMask profitable_dirs(NodeId from, NodeId to) const;

  /// True if moving from `from` in direction d strictly reduces the
  /// distance to `to`.
  bool is_profitable(NodeId from, Dir d, NodeId to) const {
    return mask_has(profitable_dirs(from, to), d);
  }

  // --- Terminal mapping (virtual; identity unless concentrated). ---
  //
  // Concentrated topologies attach `concentration()` terminals to each
  // router; terminals inject and eject through the shared router queues.
  // The engine routes between routers only — concentration lives entirely
  // in the traffic layer, which maps terminal ids to router ids before
  // building demands.

  /// Terminals per router (1 unless concentrated).
  virtual std::int32_t concentration() const { return 1; }

  /// Total injection/ejection endpoints.
  std::int32_t num_terminals() const { return num_nodes() * concentration(); }

  /// Router hosting terminal `t`.
  virtual NodeId terminal_router(std::int32_t t) const {
    MR_REQUIRE(t >= 0 && t < num_terminals());
    return t;
  }

  /// Terminal id of slot `slot` on `router`.
  virtual std::int32_t terminal_of(NodeId router, std::int32_t slot) const {
    MR_REQUIRE(router >= 0 && router < num_nodes());
    MR_REQUIRE(slot >= 0 && slot < concentration());
    return router;
  }

 protected:
  Topology(std::int32_t width, std::int32_t height, bool wraps);

  // Copy/move are for concrete subclasses' value semantics only.
  Topology(const Topology&) = default;
  Topology& operator=(const Topology&) = default;

 private:
  std::int32_t width_;
  std::int32_t height_;
  bool wraps_;
};

}  // namespace mr
