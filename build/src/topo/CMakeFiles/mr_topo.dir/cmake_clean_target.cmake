file(REMOVE_RECURSE
  "libmr_topo.a"
)
