# Empty compiler generated dependencies file for e06_torus_lb.
# This may be replaced when dependencies are built.
