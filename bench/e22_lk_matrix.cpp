// E22 — (l,k) matrix: every catalog router — the paper's adaptive routers
// plus the competitor entries (EMPS online grid routing, arXiv:1501.06140)
// — routes the same (l,k) demand sets (Huc–Sau, arXiv:0803.2759), with the
// queue-bound and minimality oracles attached to every run so the §2
// invariants are re-derived from the observable record, not trusted to the
// engine. Scheduled mode (E21's random-delay timetable replayed on the
// engine) joins the matrix as the offline yardstick: it knows the whole
// instance in advance, so its step counts show what the online routers'
// adaptivity is paying for.
#include <memory>
#include <string>
#include <vector>

#include "check/oracles.hpp"
#include "routing/registry.hpp"
#include "schedule/path.hpp"
#include "schedule/replay.hpp"
#include "schedule/schedule.hpp"
#include "scenarios.hpp"
#include "topo/registry.hpp"
#include "workload/lk.hpp"

namespace mr::scenarios {

void register_e22(ScenarioRegistry& registry) {
  ScenarioSpec spec;
  spec.id = "E22";
  spec.label = "lk-matrix";
  spec.title = "(l,k) workloads: paper routers vs competitors vs schedule";
  spec.paper_ref =
      "§5 (h-h relations, generalised); Huc–Sau arXiv:0803.2759; "
      "Even–Medina–Patt-Shamir arXiv:1501.06140";
  spec.body = [](ScenarioReport& ctx) {
    const std::int32_t side = ctx.scale() == Scale::Small ? 6 : 8;
    const int queue_k = 2;
    const std::uint64_t seed = ctx.seed_or(2200);
    const auto topo = make_topology("mesh", side, side);

    std::vector<LkSpec> lk_specs = {{"uniform", 1, 1, seed},
                                    {"uniform", 2, 2, seed + 1},
                                    {"clustered", 2, 3, seed + 2},
                                    {"worst-case", 2, 2, 1}};
    const std::vector<std::string> routers = algorithm_names();

    Table table({"workload", "(l,k)", "router", "steps", "delivered",
                 "max queue", "moves"});
    // The routers with a bounded-queue guarantee (the paper's router and
    // the EMPS competitor) must finish every instance; the central-queue
    // routers are allowed to DNF — their fragility at small k is the
    // paper's point (same framing as E12).
    bool bounded_deliver = true;
    bool oracles_clean = true;
    bool scheduled_on_time = true;
    for (const LkSpec& lk : lk_specs) {
      const Workload w = make_lk_workload(*topo, lk);
      const std::string wl_label =
          lk.variant + "-" + std::to_string(lk.l) + "-" + std::to_string(lk.k);
      const std::string lk_cell =
          "(" + std::to_string(lk.l) + "," + std::to_string(lk.k) + ")";
      for (const std::string& router : routers) {
        const auto instance = make_algorithm(router);
        QueueBoundOracle queue_oracle;
        ProfitableMoveOracle move_oracle(instance->minimal(),
                                         instance->max_stray());
        RunHooks hooks;
        hooks.step_observers.push_back(&queue_oracle);
        hooks.step_observers.push_back(&move_oracle);
        RunSpec run;
        run.width = side;
        run.height = side;
        run.queue_capacity = queue_k;
        run.algorithm = router;
        run.stall_limit = 2000;  // deadlocked DNF cells terminate quickly
        try {
          const RunResult r = ctx.run(wl_label + "_" + router, run, w, hooks);
          if (router == "bounded-dimension-order" || router == "emps")
            bounded_deliver = bounded_deliver && r.all_delivered;
          table.row()
              .add(wl_label)
              .add(lk_cell)
              .add(router)
              .add(r.steps)
              .add(r.all_delivered ? "yes" : "DNF")
              .add(static_cast<std::int64_t>(r.max_queue))
              .add(r.total_moves);
        } catch (const std::exception& e) {
          oracles_clean = false;
          bounded_deliver = false;
          ctx.note("oracle violation: " + wl_label + " / " + router + ": " +
                   e.what());
        }
      }
      // Scheduled mode: the offline random-delay timetable for the same
      // demand set, replayed on the engine (its own queue bound, not k).
      const PathSet paths = build_paths(*topo, w);
      const Schedule sched = random_delay_schedule(paths, seed ^ 0x5bd1e995);
      const ReplayReport replay = replay_schedule(*topo, sched);
      scheduled_on_time =
          scheduled_on_time && replay.on_time && replay.all_delivered;
      table.row()
          .add(wl_label)
          .add(lk_cell)
          .add("scheduled(C=" + std::to_string(paths.congestion) + ",D=" +
               std::to_string(paths.dilation) + ")")
          .add(replay.steps)
          .add(replay.all_delivered ? "yes" : "no")
          .add(static_cast<std::int64_t>(replay.queue_capacity))
          .add(replay.total_moves);
    }
    ctx.table(table);
    ctx.note(
        "all runs at queue capacity k = " + std::to_string(queue_k) +
        " with the queue-bound and minimality oracles attached; DNF = "
        "store-and-forward deadlock or budget exceeded — expected for the "
        "central-queue routers at small k (E12's point), never for the "
        "bounded-queue routers. The scheduled rows replay E21's "
        "random-delay timetable, whose 'max queue' column is the "
        "schedule's own buffer bound required_queue_capacity.");
    ctx.check("bounded-queue-routers-deliver", bounded_deliver,
              "bounded-dimension-order and emps must finish every (l,k) "
              "instance");
    ctx.check("queue-and-minimality-oracles-clean", oracles_clean);
    ctx.check("scheduled-mode-on-time", scheduled_on_time);
  };
  registry.add(std::move(spec));
}

}  // namespace mr::scenarios
