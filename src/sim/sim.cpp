#include "sim/sim.hpp"

#include "sim/algorithm.hpp"

namespace mr {

namespace {
// 64-bit FNV-1a, used for configuration fingerprints.
struct Fnv {
  std::uint64_t h = 14695981039346656037ULL;
  void mix(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xFF;
      h *= 1099511628211ULL;
    }
  }
};
}  // namespace

Sim::Sim(const Topology& topo, int queue_capacity, QueueLayout layout,
         bool masks_cached)
    : topo_(topo.clone()),
      num_nodes_(topo.num_nodes()),
      topo_width_(topo.width()),
      topo_height_(topo.height()),
      wraps_(topo.is_torus()),
      queue_capacity_(queue_capacity),
      layout_(layout),
      masks_cached_(masks_cached) {
  MR_REQUIRE_MSG(queue_capacity_ >= 1,
                 "queue capacity k must be positive, got " << queue_capacity_);
  const auto n = static_cast<std::size_t>(num_nodes_);
  // Slab stride: full layout capacity plus one arrival per inlink of
  // transient headroom (phase (d) inserts before the capacity check runs).
  const std::int32_t per_node =
      layout_ == QueueLayout::PerInlink ? queue_capacity_ * kNumDirs
                                        : queue_capacity_;
  node_packets_.reset(n, per_node + kNumDirs);
  node_state_.assign(n, 0);
}

Sim::~Sim() = default;

void Sim::add_observer(StepObserver* observer) {
  MR_REQUIRE(observer != nullptr);
  observers_.push_back(observer);
}

void Sim::add_observer(Observer* observer) {
  MR_REQUIRE(observer != nullptr);
  adapters_.push_back(std::make_unique<LegacyObserverAdapter>(observer));
  observers_.push_back(adapters_.back().get());
}

PacketId Sim::register_packet(NodeId source, NodeId dest, Step injected_at) {
  MR_REQUIRE(source >= 0 && source < num_nodes_);
  MR_REQUIRE(dest >= 0 && dest < num_nodes_);
  MR_REQUIRE(injected_at >= 0);
  Packet pk;
  pk.id = static_cast<PacketId>(packets_.size());
  pk.source = source;
  pk.dest = dest;
  pk.injected_at = injected_at;
  packets_.push_back(pk);
  return pk.id;
}

std::uint64_t Sim::fingerprint(bool include_dest) const {
  Fnv f;
  for (NodeId u = 0; u < num_nodes_; ++u) {
    const std::span<const PacketId> q = node_packets_.at(u);
    if (q.empty() && node_state_[u] == 0) continue;
    f.mix(static_cast<std::uint64_t>(u));
    f.mix(node_state_[u]);
    for (PacketId p : q) {
      const Packet& pk = packets_[p];
      f.mix(static_cast<std::uint64_t>(pk.id));
      f.mix(static_cast<std::uint64_t>(pk.source));
      if (include_dest) f.mix(static_cast<std::uint64_t>(pk.dest));
      f.mix(pk.state);
      f.mix(pk.queue);
      f.mix(pk.arrival_inlink);
      f.mix(static_cast<std::uint64_t>(pk.arrived_at));
    }
  }
  return f.h;
}

void LegacyObserverAdapter::on_prepare(const Sim& e, const StepDigest& d) {
  for (PacketId p : d.injected_deliveries) legacy_->on_deliver(e, e.packet(p));
  legacy_->on_prepare_end(e);
}

void LegacyObserverAdapter::on_step(const Sim& e, const StepDigest& d) {
  for (PacketId p : d.injected_deliveries) legacy_->on_deliver(e, e.packet(p));
  for (const MoveRecord& m : d.moves) {
    const Packet& pk = e.packet(m.packet);
    legacy_->on_move(e, pk, m.from, m.to);
    if (m.delivered) legacy_->on_deliver(e, pk);
  }
  legacy_->on_step_end(e);
}

}  // namespace mr
