#include "routing/farthest_first.hpp"

#include <algorithm>
#include <cstdlib>

#include "routing/dimension_order.hpp"

namespace mr {

void FarthestFirstRouter::plan_out(Sim& e, NodeId u, OutPlan& plan) {
  const Topology& mesh = e.mesh();
  // Per outlink, remember the best (farthest-in-that-dimension) candidate.
  std::array<std::int32_t, kNumDirs> best_dist{-1, -1, -1, -1};
  for (PacketId p : e.packets_at(u)) {
    const Packet& pk = e.packet(p);
    Dir d;
    if (!dimension_order_dir(e.profitable_mask(p), d)) continue;
    const Delta delta = mesh.delta(u, pk.dest);
    const std::int32_t dist =
        (d == Dir::East || d == Dir::West) ? std::abs(delta.east)
                                           : std::abs(delta.north);
    if (dist > best_dist[dir_index(d)]) {  // strict: FIFO breaks ties
      best_dist[dir_index(d)] = dist;
      plan.schedule(d, p);
    }
  }
}

void FarthestFirstRouter::plan_in(Sim& e, NodeId v,
                                  std::span<const Offer> offers,
                                  InPlan& plan) {
  // Accept the farthest packets first while space remains even if none of
  // our own packets departs.
  int free = e.queue_capacity() - e.occupancy(v);
  std::vector<std::size_t> order(offers.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    const std::int32_t da =
        e.mesh().distance(offers[a].from, e.packet(offers[a].packet).dest);
    const std::int32_t db =
        e.mesh().distance(offers[b].from, e.packet(offers[b].packet).dest);
    if (da != db) return da > db;
    return dir_index(offers[a].dir) < dir_index(offers[b].dir);
  });
  for (std::size_t i : order) {
    if (free <= 0) break;
    plan.accept[i] = true;
    --free;
  }
}

}  // namespace mr
