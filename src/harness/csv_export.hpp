// Optional CSV export for experiment tables: when MESHROUTE_OUTPUT_DIR is
// set, every exported table is also written as <dir>/<slug>.csv for
// downstream plotting. No-op otherwise.
#pragma once

#include <string>

#include "core/table.hpp"

namespace mr {

/// Returns the configured output directory, or empty when export is off.
std::string csv_output_dir();

/// Writes `table` as CSV to an explicit path. Returns false on I/O failure.
bool write_csv(const Table& table, const std::string& path);

/// Writes `table` as <dir>/<slug>.csv if MESHROUTE_OUTPUT_DIR is set.
/// `slug` is sanitised to [a-z0-9_-]. Returns the path written, or empty.
std::string export_csv(const Table& table, const std::string& slug);

}  // namespace mr
