// The declarative scenario layer: every experiment (E01–E16 and anything
// future) is a ScenarioSpec registered in a ScenarioRegistry and executed
// by run_scenario(s), which captures everything the experiment reports —
// tables, prose notes, named check verdicts, structured run records — in a
// ScenarioResult with one reporting backend (markdown text, JSON, CSV).
//
// Scenario bodies never touch stdout: they write through the
// ScenarioReport handed to them, so a sweep of scenarios can run across a
// thread pool (core/parallel) with position-addressed results and the
// rendered output stays deterministic and identical to a serial run.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/table.hpp"
#include "harness/runner.hpp"

namespace mr {

/// Problem-size knob shared by all scenarios. Small is the CI smoke
/// setting; Large extends the sweeps (laptop-unfriendly sizes).
enum class Scale { Small, Default, Large };

/// Reads MESHROUTE_BENCH_SCALE ("small"/"large"; anything else Default).
Scale scale_from_env();
const char* scale_name(Scale s);

/// One named pass/fail verdict (a lemma/bound predicate the scenario
/// asserts about its own measurements).
struct ScenarioCheck {
  std::string name;
  bool pass = false;
  std::string detail;  ///< optional context shown on failure
};

/// One structured simulation record: the RunResult of a run the scenario
/// performed, labelled. Serialized into the JSON backend so downstream
/// tooling gets steps/moves/queues/latency percentiles without scraping
/// tables.
struct ScenarioRunRecord {
  std::string label;
  RunResult run;
};

/// Ordered output stream of a scenario: notes and tables interleave in
/// emission order (tables live in ScenarioResult::tables, referenced by
/// index, because Table has no default constructor).
struct ScenarioItem {
  enum class Kind { Note, Table };
  Kind kind = Kind::Note;
  std::string text;            ///< note text (Kind::Note)
  std::size_t table_index = 0; ///< into ScenarioResult::tables (Kind::Table)
};

struct ScenarioResult {
  std::string id;        ///< e.g. "E01"
  std::string label;     ///< e.g. "main-lower-bound"
  std::string title;
  std::string paper_ref;
  Scale scale = Scale::Default;
  std::uint64_t seed = 0;  ///< --seed override in effect (0 = defaults)

  std::vector<ScenarioItem> items;
  std::vector<Table> tables;
  std::vector<ScenarioCheck> checks;
  std::vector<ScenarioRunRecord> runs;

  bool errored = false;  ///< body threw; `error` holds the message
  std::string error;

  /// True iff the body completed and every check passed.
  bool passed() const;

  /// The experiment's report exactly as the pre-registry binaries printed
  /// it: "## <id>: <title>", the paper reference, then notes and tables in
  /// emission order.
  std::string to_markdown() const;

  /// Machine-readable record, schema kScenarioJsonSchema.
  std::string to_json() const;

  /// Writes each table as <id>_<index>.csv via export_csv when
  /// MESHROUTE_OUTPUT_DIR is set (the historical per-binary behaviour).
  void export_tables() const;
};

inline constexpr const char* kScenarioJsonSchema = "meshroute-scenario/1";

struct ScenarioOptions {
  Scale scale = Scale::Default;
  std::size_t jobs = 0;  ///< worker threads for run_scenarios; 0 = default
  /// When set, every ScenarioReport::run exports meshroute-telemetry/1
  /// artefacts under this directory (slug "<id>_<run label>") unless the
  /// run's spec already configured its own telemetry.
  std::string telemetry_dir;
  /// When true, runs are phase-profiled and each records a profile table.
  bool profile = false;
  /// Base RNG seed for stochastic scenarios (meshroute_bench --seed).
  /// 0 = each scenario's built-in default; scenarios read it through
  /// ScenarioReport::seed_or and the value is echoed in the JSON record.
  std::uint64_t seed = 0;
  /// Sharded engine mode applied to every ScenarioReport::run whose spec
  /// did not set its own (meshroute_bench --engine-shards /
  /// --engine-threads). Results are bit-identical across any setting;
  /// only wall-clock changes.
  int engine_shards = 1;
  int engine_threads = 1;
  /// Registry topology applied to every ScenarioReport::run whose spec did
  /// not set its own topology or torus flag (meshroute_bench --topology=).
  /// Scenarios that construct topology-specific workloads keep their own
  /// network. Empty = no override.
  std::string topology;
  /// Fault schedule applied to every ScenarioReport::run whose spec did
  /// not set its own (meshroute_bench --faults=SPEC). Scenarios that need
  /// a pristine network keep their spec's empty schedule untouched only if
  /// they set one explicitly; otherwise the override applies. Empty = no
  /// faults.
  FaultSchedule faults;
  /// Attach the online GreedyAdversary to every ScenarioReport::run that
  /// did not set its own adversary flag (meshroute_bench --adversary).
  bool adversary = false;
  /// Checkpoint store for durable sweeps (meshroute_bench --resume=DIR).
  /// When set, every ScenarioReport::run checkpoints/resumes under this
  /// directory keyed "<lowercase id>_<run label>", and scenario bodies that
  /// drive runs directly derive keys via ScenarioReport::checkpoint().
  /// Empty = no checkpointing.
  std::string checkpoint_dir;
  Step checkpoint_every = 256;  ///< snapshot interval (--checkpoint-every)
};

/// The write handle a scenario body reports through.
class ScenarioReport {
 public:
  ScenarioReport(const ScenarioOptions& options, ScenarioResult* out)
      : options_(options), out_(out) {}

  Scale scale() const { return options_.scale; }
  /// The --seed override, or `fallback` (the scenario's historical
  /// default) when the user did not pass one.
  std::uint64_t seed_or(std::uint64_t fallback) const {
    return options_.seed != 0 ? options_.seed : fallback;
  }

  void note(const std::string& text);
  void table(const Table& t);
  void check(const std::string& name, bool pass,
             const std::string& detail = "");
  void record(const std::string& run_label, const RunResult& r);

  /// Convenience: run_workload + record() in one call. Applies the
  /// ScenarioOptions telemetry/profile/checkpoint settings to the spec
  /// (without overriding a spec whose own TelemetrySpec/CheckpointSpec is
  /// already enabled) and, when profiling, appends the phase table to the
  /// report.
  RunResult run(const std::string& run_label, const RunSpec& spec,
                const Workload& workload, const RunHooks& hooks = {});

  /// Checkpoint store slot for work the scenario drives itself (e.g. a
  /// run_steady_state sweep): dir/interval from the options, key
  /// "<lowercase id>_<label>" (label sanitised for filenames). Disabled
  /// spec (empty dir) when the options carry no checkpoint store.
  CheckpointSpec checkpoint(const std::string& label) const;

 private:
  ScenarioOptions options_;
  ScenarioResult* out_;
};

struct ScenarioSpec {
  std::string id;         ///< display id, unique, e.g. "E01"
  std::string label;      ///< kebab-case alias, unique, e.g. "main-lower-bound"
  std::string title;
  std::string paper_ref;  ///< paper anchor, e.g. "Theorem 14, §3–§4"
  std::function<void(ScenarioReport&)> body;
  /// Optional expected-bound predicate evaluated after the body; recorded
  /// as a check named "expected-bound".
  std::function<bool(const ScenarioResult&)> expect;
};

/// Ordered collection of scenario specs with id/label lookup (both
/// case-insensitive). Registration order is preserved by all().
class ScenarioRegistry {
 public:
  /// Throws InvariantViolation on empty/duplicate id or label or null body.
  void add(ScenarioSpec spec);

  /// Lookup by id or label; nullptr when absent.
  const ScenarioSpec* find(const std::string& id_or_label) const;

  std::vector<const ScenarioSpec*> all() const;
  std::size_t size() const { return specs_.size(); }

 private:
  // deque: pointers handed out by find()/all() stay valid across add().
  std::vector<std::unique_ptr<ScenarioSpec>> specs_;
};

/// Executes one spec. Exceptions from the body are captured into
/// result.errored/error, never propagated.
ScenarioResult run_scenario(const ScenarioSpec& spec,
                            const ScenarioOptions& options);

/// Executes the specs through core/parallel with `options.jobs` workers;
/// results are position-addressed (results[i] belongs to specs[i]), so the
/// output is identical for any worker count.
std::vector<ScenarioResult> run_scenarios(
    const std::vector<const ScenarioSpec*>& specs,
    const ScenarioOptions& options);

/// Writes result.to_json() as <dir>/<lowercase id>.json. Returns the path
/// written, or empty on I/O failure.
std::string write_scenario_json(const ScenarioResult& result,
                                const std::string& dir);

/// Validates a scenario JSON file against kScenarioJsonSchema (shape and
/// required fields). On failure returns false and stores a message.
bool validate_scenario_json(const std::string& path, std::string* error);

}  // namespace mr
