// meshrouted service tests: frame round trips over a socketpair, job-spec
// parsing, and an in-process daemon serving two concurrent jobs over two
// connections — streamed telemetry must reassemble into a valid
// meshroute-telemetry/1 file and the result frames must parse as
// meshroute-run/1 records. Shutdown must leave no thread behind (the
// Daemon destructor joins everything; TSan/ASan watch).
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <fstream>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/json_min.hpp"
#include "harness/checkpoint.hpp"
#include "service/daemon.hpp"
#include "service/job.hpp"
#include "service/protocol.hpp"
#include "telemetry/export.hpp"

namespace mr {
namespace {

TEST(Protocol, FrameRoundTripsOverSocketpair) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  std::string error;
  ASSERT_TRUE(write_frame(fds[0], "{\"op\": \"ping\"}", &error)) << error;
  ASSERT_TRUE(write_frame(fds[0], "", &error)) << error;  // empty payload
  std::string payload;
  ASSERT_TRUE(read_frame(fds[1], &payload, &error)) << error;
  EXPECT_EQ(payload, "{\"op\": \"ping\"}");
  ASSERT_TRUE(read_frame(fds[1], &payload, &error)) << error;
  EXPECT_EQ(payload, "");
  // Clean EOF: false with no error message.
  ::close(fds[0]);
  EXPECT_FALSE(read_frame(fds[1], &payload, &error));
  EXPECT_TRUE(error.empty()) << error;
  ::close(fds[1]);
}

TEST(Protocol, RejectsOversizedFrame) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  // A length prefix beyond kMaxFrameBytes must be rejected before any
  // allocation of that size.
  const unsigned char huge[4] = {0xFF, 0xFF, 0xFF, 0x7F};
  ASSERT_EQ(::send(fds[0], huge, sizeof huge, 0),
            static_cast<ssize_t>(sizeof huge));
  std::string payload, error;
  EXPECT_FALSE(read_frame(fds[1], &payload, &error));
  EXPECT_NE(error.find("exceeds limit"), std::string::npos) << error;
  ::close(fds[0]);
  ::close(fds[1]);
}

json::Value parse_ok(const std::string& text) {
  std::string error;
  std::optional<json::Value> doc = json::parse(text, &error);
  EXPECT_TRUE(doc.has_value()) << error << " in " << text;
  return doc ? std::move(*doc) : json::Value{};
}

TEST(JobSpec, ParsesFullSpec) {
  const json::Value doc = parse_ok(
      "{\"algorithm\": \"bounded-dimension-order\", \"width\": 8, "
      "\"height\": 8, \"topology\": \"torus\", \"k\": 2, \"shards\": 2, "
      "\"threads\": 2, \"sample_every\": 8, \"traffic\": {\"pattern\": "
      "\"transpose\", \"rate\": 0.25, \"seed\": 9, \"steps\": 32}}");
  JobSpec spec;
  std::string error;
  ASSERT_TRUE(parse_job_spec(doc, &spec, &error)) << error;
  EXPECT_EQ(spec.run.algorithm, "bounded-dimension-order");
  EXPECT_EQ(spec.run.resolved_topology(), "torus");
  EXPECT_EQ(spec.run.queue_capacity, 2);
  EXPECT_EQ(spec.run.engine_shards, 2);
  EXPECT_TRUE(spec.open_loop);
  EXPECT_EQ(spec.traffic.pattern, TrafficPattern::Transpose);
  EXPECT_EQ(spec.run.traffic_steps, 32);
}

TEST(JobSpec, RejectsMalformedSpecs) {
  JobSpec spec;
  std::string error;
  EXPECT_FALSE(parse_job_spec(parse_ok("{}"), &spec, &error));
  EXPECT_FALSE(parse_job_spec(
      parse_ok("{\"algorithm\": \"dimension-order\"}"), &spec, &error));
  EXPECT_FALSE(parse_job_spec(
      parse_ok("{\"algorithm\": \"dimension-order\", \"width\": 4, "
               "\"height\": 4, \"topology\": \"hypercube\"}"),
      &spec, &error));
  EXPECT_FALSE(parse_job_spec(
      parse_ok("{\"algorithm\": \"dimension-order\", \"width\": 4, "
               "\"height\": 4, \"traffic\": {\"rate\": 0.1}}"),
      &spec, &error));  // traffic without steps
  EXPECT_FALSE(error.empty());
}

/// Collected terminal state of one client connection.
struct ClientOutcome {
  std::vector<std::string> telemetry_lines;
  std::vector<std::string> results;  ///< result frames, in arrival order
  std::vector<std::string> errors;
};

/// Submits `job_json` and drains frames until the job's result arrives.
ClientOutcome run_client_job(const std::string& socket_path,
                             const std::string& job_json) {
  ClientOutcome out;
  std::string error;
  const int fd = connect_unix(socket_path, &error);
  EXPECT_GE(fd, 0) << error;
  if (fd < 0) return out;
  EXPECT_TRUE(write_frame(fd, "{\"op\": \"submit\", \"job\": " + job_json + "}",
                          &error))
      << error;
  std::string payload;
  while (out.results.empty() && out.errors.empty() &&
         read_frame(fd, &payload, &error)) {
    const json::Value doc = parse_ok(payload);
    if (const json::Value* ok = doc.find("ok")) {
      EXPECT_TRUE(ok->boolean) << payload;
      continue;
    }
    const json::Value* kind = doc.find("kind");
    EXPECT_TRUE(kind != nullptr && kind->is_string()) << payload;
    if (kind == nullptr || !kind->is_string()) break;
    if (kind->string == "telemetry") {
      const json::Value* line = doc.find("line");
      EXPECT_TRUE(line != nullptr && line->is_string());
      if (line != nullptr && line->is_string())
        out.telemetry_lines.push_back(line->string);
    } else if (kind->string == "result") {
      out.results.push_back(payload);
    } else {
      out.errors.push_back(payload);
    }
  }
  ::close(fd);
  return out;
}

TEST(Daemon, ServesTwoConcurrentJobs) {
  const std::string dir = ::testing::TempDir() + "meshrouted_test";
  DaemonOptions options;
  options.socket_path = dir + "/daemon.sock";
  options.lanes = 2;
  options.work_dir = dir + "/work";
  Daemon daemon(options);
  std::string error;
  ASSERT_TRUE(daemon.start(&error)) << error;

  // Two jobs on two connections, driven from two threads so both lanes
  // serve at once (each blocks until its own result frame).
  ClientOutcome a, b;
  // Both jobs use the bounded router: plain dimension-order can livelock
  // with k=2 and the point here is concurrency, not router stress.
  std::thread ta([&] {
    a = run_client_job(options.socket_path,
                       "{\"algorithm\": \"bounded-dimension-order\", "
                       "\"width\": 8, \"height\": 8, \"k\": 2, \"seed\": 5}");
  });
  std::thread tb([&] {
    b = run_client_job(
        options.socket_path,
        "{\"algorithm\": \"bounded-dimension-order\", \"width\": 8, "
        "\"height\": 8, \"k\": 2, \"traffic\": {\"pattern\": \"uniform\", "
        "\"rate\": 0.05, \"seed\": 11, \"steps\": 48}}");
  });
  ta.join();
  tb.join();

  for (const ClientOutcome* out : {&a, &b}) {
    EXPECT_TRUE(out->errors.empty())
        << (out->errors.empty() ? "" : out->errors.front());
    ASSERT_EQ(out->results.size(), 1u);
    // The embedded result object is a valid meshroute-run/1 record.
    const json::Value frame = parse_ok(out->results.front());
    const json::Value* result = frame.find("result");
    ASSERT_TRUE(result != nullptr && result->is_object());
    RunResult run;
    std::string parse_error;
    // Re-serialise the frame's result member through the JSON writer to
    // re-parse it with the checkpoint reader.
    const std::size_t pos = out->results.front().find("\"result\": ");
    ASSERT_NE(pos, std::string::npos);
    std::string body = out->results.front().substr(pos + 10);
    ASSERT_FALSE(body.empty());
    body.pop_back();  // trailing '}' of the frame
    ASSERT_TRUE(run_result_from_json(body, &run, &parse_error)) << parse_error;
    EXPECT_TRUE(run.all_delivered);
    EXPECT_FALSE(run.stalled);

    // The streamed lines reassemble into a validating JSONL file.
    ASSERT_FALSE(out->telemetry_lines.empty());
    const std::string path =
        dir + "/stream" + (out == &a ? "_a" : "_b") + ".jsonl";
    std::ofstream jsonl(path);
    for (const std::string& line : out->telemetry_lines) jsonl << line << "\n";
    jsonl.close();
    ASSERT_TRUE(validate_telemetry_jsonl(path, &parse_error)) << parse_error;
  }
  EXPECT_EQ(daemon.jobs_completed(), 2u);

  // A client-initiated shutdown stops the daemon; wait() must return.
  const int fd = connect_unix(options.socket_path, &error);
  ASSERT_GE(fd, 0) << error;
  std::string ack;
  ASSERT_TRUE(write_frame(fd, "{\"op\": \"shutdown\"}", &error)) << error;
  ASSERT_TRUE(read_frame(fd, &ack, &error)) << error;
  EXPECT_EQ(parse_ok(ack).find("ok")->boolean, true);
  ::close(fd);
  daemon.wait();
}

TEST(Daemon, RejectsMalformedRequests) {
  const std::string dir = ::testing::TempDir() + "meshrouted_reject";
  DaemonOptions options;
  options.socket_path = dir + "/daemon.sock";
  options.lanes = 1;
  Daemon daemon(options);
  std::string error;
  ASSERT_TRUE(daemon.start(&error)) << error;

  const int fd = connect_unix(options.socket_path, &error);
  ASSERT_GE(fd, 0) << error;
  std::string payload;
  ASSERT_TRUE(write_frame(fd, "not json", &error)) << error;
  ASSERT_TRUE(read_frame(fd, &payload, &error)) << error;
  EXPECT_NE(payload.find("\"ok\": false"), std::string::npos) << payload;
  ASSERT_TRUE(write_frame(fd, "{\"op\": \"submit\"}", &error)) << error;
  ASSERT_TRUE(read_frame(fd, &payload, &error)) << error;
  EXPECT_NE(payload.find("\"ok\": false"), std::string::npos) << payload;
  ASSERT_TRUE(write_frame(fd, "{\"op\": \"ping\"}", &error)) << error;
  ASSERT_TRUE(read_frame(fd, &payload, &error)) << error;
  EXPECT_EQ(payload, "{\"ok\": true}");
  ::close(fd);
  daemon.stop();
  daemon.wait();
}

}  // namespace
}  // namespace mr
