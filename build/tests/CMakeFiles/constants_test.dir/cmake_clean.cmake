file(REMOVE_RECURSE
  "CMakeFiles/constants_test.dir/constants_test.cpp.o"
  "CMakeFiles/constants_test.dir/constants_test.cpp.o.d"
  "constants_test"
  "constants_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/constants_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
