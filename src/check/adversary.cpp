#include "check/adversary.hpp"

#include <algorithm>

namespace mr {

namespace {

/// Legality probes per scheduled move. The candidate pool is sorted by
/// distance-to-hot, so the scan stops at the first legal candidate (the
/// best one) anyway; the cap only bounds pathological all-illegal runs.
constexpr int kScanCap = 64;

/// Total legality probes per step across all moves. On large instances
/// most moves find no legal strictly-better candidate, and without a step
/// budget every such move burns kScanCap probes — O(moves · cap) of pure
/// failure. The budget keeps phase (b) at O(P log P + budget) per step;
/// the adversary simply resumes steering next step.
constexpr int kStepProbeBudget = 4096;

/// The fullest node this step (ties to the lowest id), or kInvalidNode on
/// an empty network.
NodeId hottest_node(const Sim& e) {
  NodeId hot = kInvalidNode;
  int best = 0;
  for (NodeId u : e.active_nodes()) {
    const int occ = e.occupancy(u);
    if (occ > best) {
      best = occ;
      hot = u;
    }
  }
  return hot;
}

}  // namespace

bool GreedyAdversary::dest_legal_for(const Sim& e, PacketId p,
                                     NodeId dest) const {
  const Packet& pk = e.packet(p);
  const NodeId at = pk.location != kInvalidNode ? pk.location : pk.source;
  // A packet already sitting on `dest` would never be delivered (delivery
  // happens on arrival only) and permanently stalls the run.
  if (at == dest) return false;
  const std::int32_t mi = scheduled_move_[static_cast<std::size_t>(p)];
  if (mi < 0) return true;
  const ScheduledMove& m = moves_[static_cast<std::size_t>(mi)];
  return e.topology().is_profitable(m.from, m.dir, dest);
}

void GreedyAdversary::after_schedule(Sim& e,
                                     std::span<const ScheduledMove> moves) {
  const NodeId hot = hottest_node(e);
  if (hot == kInvalidNode || moves.empty()) return;
  moves_ = moves;

  scheduled_move_.assign(e.num_packets(), -1);
  for (std::size_t i = 0; i < moves.size(); ++i)
    scheduled_move_[static_cast<std::size_t>(moves[i].packet)] =
        static_cast<std::int32_t>(i);

  // Candidate pool: every undelivered packet, ascending by destination
  // distance to the hot node (ties by id, so the pass is deterministic).
  struct Candidate {
    std::int32_t dist;
    PacketId packet;
  };
  std::vector<Candidate> pool;
  pool.reserve(e.num_packets());
  std::vector<std::uint8_t> consumed(e.num_packets(), 0);
  for (std::size_t id = 0; id < e.num_packets(); ++id) {
    const PacketId q = static_cast<PacketId>(id);
    const Packet& qk = e.packet(q);
    if (qk.delivered()) continue;
    pool.push_back(Candidate{e.topology().distance(qk.dest, hot), q});
  }
  std::sort(pool.begin(), pool.end(), [](const Candidate& a,
                                         const Candidate& b) {
    return a.dist != b.dist ? a.dist < b.dist : a.packet < b.packet;
  });

  // One greedy pass: each scheduled packet gets at most one exchange, with
  // the hottest-aimed legal partner still available. Consuming both sides
  // of a swap keeps the pool's cached distances valid — a swapped packet's
  // new destination is never re-offered this step.
  int swaps = 0;
  int budget = kStepProbeBudget;
  for (const ScheduledMove& m : moves) {
    if (max_swaps_per_step_ > 0 && swaps >= max_swaps_per_step_) break;
    if (budget <= 0) break;
    if (consumed[static_cast<std::size_t>(m.packet)]) continue;
    const NodeId cur_dest = e.packet(m.packet).dest;
    const std::int32_t cur_dist = e.topology().distance(cur_dest, hot);
    if (cur_dist == 0) continue;  // already aimed at the hot node

    int probed = 0;
    for (const Candidate& c : pool) {
      if (c.dist >= cur_dist) break;  // sorted: no improvement left
      if (probed >= kScanCap || budget <= 0) break;
      if (c.packet == m.packet ||
          consumed[static_cast<std::size_t>(c.packet)])
        continue;
      ++probed;
      --budget;
      const NodeId cand_dest = e.packet(c.packet).dest;
      if (!dest_legal_for(e, m.packet, cand_dest)) continue;
      if (!dest_legal_for(e, c.packet, cur_dest)) continue;
      e.exchange_destinations(m.packet, c.packet);
      consumed[static_cast<std::size_t>(m.packet)] = 1;
      consumed[static_cast<std::size_t>(c.packet)] = 1;
      ++exchanges_;
      ++swaps;
      break;
    }
  }
}

}  // namespace mr
