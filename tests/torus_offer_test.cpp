// Regression pin for torus wrap-link offer grouping.
//
// On a torus the neighbor relation is not monotone in NodeId: the wrap
// links connect row/column 0 back to n-1, so grouping transmit offers by
// receiving node must use Mesh::neighbor, not NodeId arithmetic. The first
// test asserts, move by move via the StepDigest, that every hop lands on
// exactly the node its offered link points at — including wrap hops, which
// the workload is chosen to force. The second pins hard-coded golden
// fingerprints for fixed torus runs so any reordering of wrap-link offer
// handling shows up as a bit-level diff.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <cstdio>
#include <string>
#include <vector>

#include "routing/registry.hpp"
#include "sim/engine.hpp"
#include "topo/mesh.hpp"
#include "workload/permutation.hpp"

namespace mr {
namespace {

/// Checks every MoveRecord against the mesh's own neighbor map and counts
/// hops that cross a wrap link (coordinate jump of n-1 in one dimension).
class OfferGroupingCheck final : public StepObserver {
 public:
  void on_step(const Sim& e, const StepDigest& d) override {
    const Topology& mesh = e.mesh();
    for (const MoveRecord& m : d.moves) {
      ASSERT_EQ(mesh.neighbor(m.from, m.dir), m.to)
          << "step " << d.step << ": packet " << m.packet << " moved "
          << m.from << "->" << m.to << " but the offered link points at "
          << mesh.neighbor(m.from, m.dir);
      const Coord a = mesh.coord_of(m.from);
      const Coord b = mesh.coord_of(m.to);
      if (std::abs(a.col - b.col) > 1 || std::abs(a.row - b.row) > 1)
        ++wrap_moves;
    }
  }
  std::int64_t wrap_moves = 0;
};

std::uint64_t torus_run(const std::string& router, std::int32_t n, int k,
                        std::uint64_t seed, Step steps,
                        std::int64_t* wrap_moves) {
  const Mesh mesh = Mesh::square(n, /*torus=*/true);
  auto algo = make_algorithm(router);
  Engine::Config config;
  config.queue_capacity = k;
  Engine e(mesh, config, *algo);
  for (const Demand& d : random_permutation(mesh, seed))
    e.add_packet(d.source, d.dest);
  OfferGroupingCheck check;
  e.add_observer(&check);
  e.prepare();
  for (Step t = 0; t < steps && !e.all_delivered(); ++t) e.step_once();
  if (wrap_moves != nullptr) *wrap_moves = check.wrap_moves;
  return e.fingerprint();
}

/// Torus-capable routers: the DX minimal class plus the Theorem 15 router.
/// The stray router's rectangle accounting assumes mesh geometry, so it is
/// out of scope on the torus (as in fingerprint_regression_test).
std::vector<std::string> torus_routers() {
  std::vector<std::string> routers = dx_minimal_algorithm_names();
  routers.push_back("bounded-dimension-order");
  return routers;
}

TEST(TorusOffers, MovesFollowOfferedLinksIncludingWraps) {
  for (const std::string& router : torus_routers()) {
    std::int64_t wrap_moves = 0;
    torus_run(router, 8, 2, 5, 64, &wrap_moves);
    if (HasFatalFailure()) FAIL() << "offer grouping broken for " << router;
    // A random permutation on a torus routes ~half its traffic across the
    // wraps; every router must actually use them.
    EXPECT_GT(wrap_moves, 0) << router << " never crossed a wrap link";
  }
}

struct TorusGolden {
  const char* router;
  std::uint64_t fingerprint;
};

// Captured from the seed implementation (torus_run(router, 10, 2, 9, 24)).
// Regenerate by running with MESHROUTE_PRINT_TORUS_FPS=1 after an
// intentional semantic change, never to paper over a diff.
constexpr TorusGolden kGoldens[] = {
    {"dimension-order", 0x1799ceb56267e472ULL},
    {"adaptive-alternate", 0x8b2e390ecabaa372ULL},
    {"greedy-match", 0x73cc5b2a61b510baULL},
    {"west-first", 0x32e664561c3c9ef1ULL},
    {"bounded-dimension-order", 0xcbf29ce484222325ULL},
};

TEST(TorusOffers, FingerprintsMatchGolden) {
  const bool print = std::getenv("MESHROUTE_PRINT_TORUS_FPS") != nullptr;
  for (const TorusGolden& g : kGoldens) {
    const std::uint64_t fp = torus_run(g.router, 10, 2, 9, 24, nullptr);
    if (print) {
      std::printf("    {\"%s\", 0x%llxULL},\n", g.router,
                  static_cast<unsigned long long>(fp));
      continue;
    }
    EXPECT_EQ(fp, g.fingerprint) << g.router;
  }
}

}  // namespace
}  // namespace mr
