// E09 — Theorem 34: the §6 minimal adaptive algorithm routes any
// permutation in O(n) steps with O(1)-size queues. steps/n should stay
// bounded as n grows (against the Theorem's 972n / improved 564n budgets),
// and peak queue occupancy must stay below the Lemma 28 constant (834,
// improved 222 for the active phases) — far below the Θ(n) queues the
// classic 2n−2 dimension-order algorithm needs.
//
// For contrast, the Theorem 15 router (Θ(n²/k)) runs the same workloads:
// the linear-vs-quadratic crossover is the paper's headline trade-off.
#include "fastroute/bounds.hpp"
#include "fastroute/fastroute.hpp"
#include "harness/runner.hpp"
#include "scenarios.hpp"
#include "sim/engine.hpp"
#include "topo/mesh.hpp"
#include "workload/permutation.hpp"

namespace mr::scenarios {
namespace {

struct FastRow {
  Step steps = 0;
  int max_queue = 0;
  bool delivered = false;
  Step schedule = 0;
};

FastRow run_fast(std::int32_t n, const Workload& w,
                 FastRouteAlgorithm::Options options) {
  const Mesh mesh = Mesh::square(n);
  FastRouteAlgorithm algo(options);
  Engine::Config config;
  config.queue_capacity = algo.queue_bound();
  config.stall_limit = 0;
  Engine e(mesh, config, algo);
  for (const Demand& d : w) e.add_packet(d.source, d.dest, d.injected_at);
  e.prepare();
  FastRow r;
  r.schedule = algo.schedule_length();
  r.steps = e.run(algo.schedule_length() + 1);
  r.delivered = e.all_delivered();
  r.max_queue = e.max_occupancy_seen();
  return r;
}

}  // namespace

void register_e09(ScenarioRegistry& registry) {
  ScenarioSpec spec;
  spec.id = "E09";
  spec.label = "fastroute-linear";
  spec.title = "O(n)-time, O(1)-queue minimal adaptive routing";
  spec.paper_ref = "Theorem 34, §6";
  spec.body = [](ScenarioReport& ctx) {
    std::vector<std::int32_t> ns = {27, 81};
    if (ctx.scale() == Scale::Small) ns = {27};
    if (ctx.scale() == Scale::Large) ns.push_back(243);

    Table table({"n", "workload", "variant", "steps", "steps/n",
                 "bound steps/n", "max queue", "queue bound", "delivered"});
    bool all_delivered = true;
    bool within_bounds = true;
    for (const std::int32_t n : ns) {
      const Mesh mesh = Mesh::square(n);
      const std::vector<std::pair<std::string, Workload>> workloads = {
          {"random permutation", random_permutation(mesh, 21)},
          {"transpose", transpose(mesh)},
          {"mirror", mirror(mesh)},
      };
      for (const auto& [name, w] : workloads) {
        const FastRow base =
            run_fast(n, w, FastRouteAlgorithm::Options::baseline());
        all_delivered = all_delivered && base.delivered;
        within_bounds = within_bounds && base.steps <= Step(972) * n &&
                        base.max_queue <= 834;
        table.row()
            .add(std::int64_t(n))
            .add(name)
            .add("q=408")
            .add(base.steps)
            .add(double(base.steps) / n, 1)
            .add(std::int64_t(972))
            .add(std::int64_t(base.max_queue))
            .add(std::int64_t(834))
            .add(base.delivered ? "yes" : "NO");
        const FastRow improved =
            run_fast(n, w, FastRouteAlgorithm::Options::improved());
        all_delivered = all_delivered && improved.delivered;
        within_bounds = within_bounds && improved.steps <= Step(564) * n &&
                        improved.max_queue <= 834;
        table.row()
            .add(std::int64_t(n))
            .add(name)
            .add("improved")
            .add(improved.steps)
            .add(double(improved.steps) / n, 1)
            .add(std::int64_t(564))
            .add(std::int64_t(improved.max_queue))
            .add(std::int64_t(834))
            .add(improved.delivered ? "yes" : "NO");
      }
      // Contrast: the Theorem 15 router on the same random permutation.
      RunSpec spec;
      spec.width = spec.height = n;
      spec.queue_capacity = 4;
      spec.algorithm = "bounded-dimension-order";
      const RunResult r = run_workload(spec, random_permutation(mesh, 21));
      all_delivered = all_delivered && r.all_delivered;
      table.row()
          .add(std::int64_t(n))
          .add("random permutation")
          .add("Thm15 k=4")
          .add(r.steps)
          .add(double(r.steps) / n, 1)
          .add("-")
          .add(std::int64_t(r.max_queue))
          .add(std::int64_t(4))
          .add(r.all_delivered ? "yes" : "NO");
      ctx.record("Thm15 k=4 random n=" + std::to_string(n), r);
    }
    ctx.table(table);
    ctx.note(
        "The §6 schedule is a fixed worst-case budget, so measured steps "
        "equal the schedule length; steps/n converges from below to ~904 "
        "(baseline) / ~500 (improved) as the geometric iteration sum fills "
        "in — under the 972n / 564n bounds, and O(n) by construction. Queues "
        "stay two orders of magnitude under the Θ(n) of the classic "
        "algorithm (E16).");
    ctx.check("theorem34-all-delivered", all_delivered);
    ctx.check("theorem34-step-and-queue-bounds", within_bounds);
  };
  registry.add(std::move(spec));
}

}  // namespace mr::scenarios
