// Minimal JSON reader/writer helpers for the harness layer.
//
// Just enough JSON to round-trip the machine-readable records this repo
// emits (scenario results, the engine benchmark record): objects, arrays,
// strings with standard escapes, numbers, booleans, null. Not a general
// validator — malformed input is rejected with a position, nothing more.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace mr::json {

struct Value {
  enum class Kind { Null, Bool, Number, String, Array, Object };

  Kind kind = Kind::Null;
  bool boolean = false;
  double number = 0;
  std::string string;
  std::vector<Value> array;
  /// Insertion-ordered; duplicate keys keep the first occurrence on find().
  std::vector<std::pair<std::string, Value>> object;

  bool is_null() const { return kind == Kind::Null; }
  bool is_bool() const { return kind == Kind::Bool; }
  bool is_number() const { return kind == Kind::Number; }
  bool is_string() const { return kind == Kind::String; }
  bool is_array() const { return kind == Kind::Array; }
  bool is_object() const { return kind == Kind::Object; }

  /// Object member lookup; nullptr when absent or not an object.
  const Value* find(const std::string& key) const;
};

/// Parses `text` as one JSON value (trailing whitespace allowed). On
/// failure returns nullopt and, when `error` is non-null, stores a
/// message with the byte offset of the problem.
std::optional<Value> parse(const std::string& text, std::string* error);

/// Escapes `s` for embedding in a JSON string literal (no surrounding
/// quotes). Non-ASCII bytes pass through (UTF-8 is valid JSON).
std::string escape(const std::string& s);

/// Formats a double the way the repo's JSON writers do: shortest form
/// that round-trips integers exactly ("3" not "3.000000").
std::string number_to_string(double v);

/// Formats a double with enough digits to round-trip ANY IEEE double
/// exactly (%.17g). Checkpoint-grade records that must compare equal to a
/// re-serialisation use this instead of number_to_string.
std::string exact_number_to_string(double v);

}  // namespace mr::json
