# Empty dependencies file for mr_core.
# This may be replaced when dependencies are built.
