// Factory and catalog for the built-in topologies, mirroring the
// Algorithm registry in src/routing/registry.hpp. Used by the harness
// (`RunSpec::topology`), `meshroute_bench --topology=/--list`, and the
// differential fuzzer (`topo=` spec key).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "topo/topology.hpp"

namespace mr {

/// Typed construction parameters. Only the fields a topology consumes
/// matter to it (concentration is currently cmesh-only).
struct TopoParams {
  std::int32_t concentration = 4;  ///< terminals per router (cmesh)
};

/// A fully specified topology: catalog name + router-grid dimensions +
/// typed parameters. The string spellings ("cmesh-4") parse into this.
struct TopoSpec {
  std::string name = "mesh";
  std::int32_t width = 0;   ///< router columns
  std::int32_t height = 0;  ///< router rows
  TopoParams params;
};

/// One catalog entry, surfaced by `meshroute_bench --list`.
struct TopologyInfo {
  std::string name;         ///< default registry spelling, e.g. "cmesh-4"
  std::string description;  ///< one line
  bool wraps = false;       ///< has wrap-around links (torus)
  std::int32_t concentration = 1;  ///< terminals per router
};

/// All registered topologies, in a stable order.
const std::vector<TopologyInfo>& topology_catalog();

/// Creates a fresh instance from a typed spec. Throws InvariantViolation
/// for unknown names, non-positive dimensions, or out-of-range
/// parameters. Known names: "mesh", "torus", "cmesh" (parameterised by
/// params.concentration).
std::unique_ptr<Topology> make_topology(const TopoSpec& spec);

/// String convenience wrapper: parses "cmesh-N" into a TopoSpec with
/// concentration = N; every other name passes through unchanged.
std::unique_ptr<Topology> make_topology(const std::string& name,
                                        std::int32_t width,
                                        std::int32_t height);

/// Parses a registry spelling into a typed spec (no instantiation, no
/// validation beyond the numeric suffix shape). Dimensions are left 0.
TopoSpec parse_topology_spec(const std::string& name);

/// True if `name` parses to a registered topology family.
bool known_topology(const std::string& name);

/// Names of all registered topologies, in catalog order.
std::vector<std::string> topology_names();

}  // namespace mr
