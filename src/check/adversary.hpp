// Online adaptive adversary for the §2 exchange hook.
//
// The lower-bound constructions (lower_bound/main_construction.cpp) drive
// the adversary interface with a *constructed* exchange strategy proved to
// force Ω-queue growth. GreedyAdversary is the empirical counterpart: an
// online strategy with no foreknowledge of the instance that watches the
// queue occupancies the run actually produces and greedily re-aims packet
// destinations at the hottest observed node, using only the legal §2
// operation (destination exchange between phases (a) and (c)).
//
// Legality contract (identical to the constructed interceptor's): an
// exchange may never turn an already-scheduled move unprofitable — the
// engine re-validates minimality after phase (b) and throws otherwise.
// The adversary therefore checks, before each swap, that both affected
// packets' scheduled moves (if any) stay profitable under the swapped
// destinations, and skips swaps that would park a packet on its own
// location (an undeliverable packet stalls the run, which terminates it —
// counter-productive for an adversary that wants congestion, not an early
// exit).
//
// Scenario E20 (bench/e20_adversary.cpp) races this strategy on a random
// permutation against the constructed §5 instance and compares peak queue
// occupancies.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/algorithm.hpp"
#include "sim/sim.hpp"

namespace mr {

class GreedyAdversary : public StepInterceptor {
 public:
  /// `max_swaps_per_step` bounds phase-(b) work (0 = unlimited).
  explicit GreedyAdversary(int max_swaps_per_step = 0)
      : max_swaps_per_step_(max_swaps_per_step) {}

  std::size_t exchanges() const { return exchanges_; }

  void after_schedule(Sim& e, std::span<const ScheduledMove> moves) override;

 private:
  /// True if giving packet `p` destination `dest` keeps p's scheduled move
  /// (if any) profitable and does not park p on its own location.
  bool dest_legal_for(const Sim& e, PacketId p, NodeId dest) const;

  int max_swaps_per_step_;
  std::size_t exchanges_ = 0;
  /// Per-packet scheduled move index for the current step, or -1.
  std::vector<std::int32_t> scheduled_move_;
  std::span<const ScheduledMove> moves_;
};

}  // namespace mr
