// Routing-algorithm interface for the discrete-step engine (paper §2).
//
// One step of the engine runs, for every node, the pipeline of §3:
//   (a) plan_out  — outqueue policy schedules ≤1 packet per outlink
//   (b) adversary — optional interceptor may exchange destination addresses
//   (c) plan_in   — inqueue policy accepts/rejects scheduled packets
//   (d) transmit  — accepted packets move; arrivals at destination deliver
//   (e) update    — node and packet states update
//
// Algorithm implementations receive the Engine for queries. Full-information
// algorithms (farthest-first, §6) may inspect destinations; destination-
// exchangeable algorithms must derive from DxAlgorithm (dx.hpp), whose
// callbacks expose only the §2-legal fields.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/types.hpp"
#include "sim/packet.hpp"

namespace mr {

class Engine;

enum class QueueLayout : std::uint8_t {
  Central,    ///< one queue of size k per node
  PerInlink,  ///< four queues of size k, one per inlink (§5, Theorem 15)
};

/// Outqueue decision for one node: packet scheduled on each outlink.
struct OutPlan {
  std::array<PacketId, kNumDirs> out{kInvalidPacket, kInvalidPacket,
                                     kInvalidPacket, kInvalidPacket};

  void schedule(Dir d, PacketId p) { out[dir_index(d)] = p; }
  PacketId scheduled(Dir d) const { return out[dir_index(d)]; }
  void clear() { out.fill(kInvalidPacket); }
};

/// A packet scheduled to enter node `to` from node `from` travelling in
/// direction `dir` (so it arrives on inlink opposite(dir)).
struct Offer {
  PacketId packet = kInvalidPacket;
  NodeId from = kInvalidNode;
  NodeId to = kInvalidNode;
  Dir dir = Dir::North;
  /// Profitable outlinks measured from the *sending* node, as §2 prescribes
  /// for scheduled packets.
  DirMask profitable_from_sender = 0;
};

/// Inqueue decision: accept[i] answers offers[i].
struct InPlan {
  std::vector<bool> accept;
  void reset(std::size_t n) { accept.assign(n, false); }
};

class Algorithm {
 public:
  virtual ~Algorithm() = default;

  virtual std::string name() const = 0;

  virtual QueueLayout queue_layout() const { return QueueLayout::Central; }

  /// Minimal algorithms may only schedule packets along profitable
  /// outlinks; the engine enforces this (throws InvariantViolation).
  virtual bool minimal() const { return true; }

  /// For non-minimal algorithms (§5 "Nonminimal extensions"): the maximum
  /// number of nodes a packet may stray beyond the rectangle spanned by
  /// the shortest source→destination paths. The engine enforces the
  /// expanded-rectangle containment. Negative = unrestricted (hot-potato
  /// style). Ignored when minimal() is true.
  virtual int max_stray() const { return -1; }

  /// Called once before step 1, after initial packets are placed. The
  /// initial states set here may, for DX algorithms, depend only on the
  /// §2-legal fields.
  virtual void init(Engine&) {}

  /// (a) Outqueue policy of node u. `plan` arrives cleared.
  virtual void plan_out(Engine& e, NodeId u, OutPlan& plan) = 0;

  /// (c) Inqueue policy of node v. Offers arrive in deterministic order
  /// (by travel direction). The engine verifies post-step occupancy.
  /// Offers whose packet is arriving at its destination are delivered by
  /// the engine directly and never shown to the policy.
  virtual void plan_in(Engine& e, NodeId v, std::span<const Offer> offers,
                       InPlan& plan) = 0;

  /// (e) State update for node v (called for every node that held, sent or
  /// received a packet this step). Default: no state.
  virtual void update_state(Engine&, NodeId) {}
};

/// A move that will happen in phase (d) unless rejected in (c).
struct ScheduledMove {
  PacketId packet = kInvalidPacket;
  NodeId from = kInvalidNode;
  NodeId to = kInvalidNode;
  Dir dir = Dir::North;
};

/// Hook between phases (a) and (c): the lower-bound constructions exchange
/// destination addresses here (paper §3 step (b)).
class StepInterceptor {
 public:
  virtual ~StepInterceptor() = default;
  virtual void after_schedule(Engine& e,
                              std::span<const ScheduledMove> moves) = 0;
};

/// Observation hook for metrics/trace collection; never influences routing.
class Observer {
 public:
  virtual ~Observer() = default;
  /// Called once at the end of prepare(): the initial configuration is
  /// final and source==dest packets have already been delivered (step 0).
  virtual void on_prepare_end(const Engine&) {}
  virtual void on_step_end(const Engine&) {}
  virtual void on_deliver(const Engine&, const Packet&) {}
  virtual void on_move(const Engine&, const Packet&, NodeId from, NodeId to) {
    (void)from;
    (void)to;
  }
};

}  // namespace mr
