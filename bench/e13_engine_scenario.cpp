// E13 as a scenario: the engine_bench sweep rendered as a table. Not a
// paper experiment; it establishes that the laptop-scale sweeps in
// E01–E12 are feasible and tracks regressions in the hot path. The
// machine-readable BENCH_engine.json record stays with the
// e13_engine_throughput binary (--json), which shares run_once() with
// this registration, so its steps/moves stay bit-identical.
#include "engine_bench.hpp"
#include "routing/registry.hpp"
#include "scenarios.hpp"

namespace mr::scenarios {

void register_e13(ScenarioRegistry& registry) {
  ScenarioSpec spec;
  spec.id = "E13";
  spec.label = "engine-throughput";
  spec.title = "engine stepping throughput";
  spec.paper_ref = "not a paper claim; simulator hot-path record";
  spec.body = [](ScenarioReport& ctx) {
    const bool smoke = ctx.scale() == Scale::Small;
    const std::vector<std::int32_t> sizes =
        smoke ? std::vector<std::int32_t>{8}
              : std::vector<std::int32_t>{32, 64, 120};
    const int reps = smoke ? 1 : 3;

    Table table({"router", "layout", "n", "steps", "moves", "Kmoves/s",
                 "delivered", "stalled"});
    bool none_stalled = true;
    bool all_delivered = true;
    for (const std::string& name : algorithm_names()) {
      for (std::int32_t n : sizes) {
        engine_bench::RunStats best;
        for (int rep = 0; rep < reps; ++rep) {
          engine_bench::RunStats r = engine_bench::run_once(name, n);
          if (rep == 0 || r.moves_per_sec > best.moves_per_sec) best = r;
        }
        none_stalled = none_stalled && !best.stalled;
        all_delivered = all_delivered && best.delivered == best.packets;
        table.row()
            .add(best.router)
            .add(best.layout)
            .add(std::int64_t(best.n))
            .add(best.steps)
            .add(best.moves)
            .add(best.moves_per_sec / 1e3, 2)
            .add(std::to_string(best.delivered) + "/" +
                 std::to_string(best.packets))
            .add(best.stalled ? "STALLED" : "no");
      }
    }
    ctx.table(table);
    ctx.note(
        "Same run_once() sweep as `e13_engine_throughput --json` (queue "
        "capacity " +
        std::to_string(engine_bench::kQueueCapacity) +
        ", best of " + std::to_string(reps) +
        "); only Kmoves/s is timing-sensitive — steps and moves are "
        "deterministic.");
    ctx.check("no-router-stalled", none_stalled);
    ctx.check("monotone-traffic-all-delivered", all_delivered);

    // Sharded-engine determinism at benchmark scale (DESIGN.md §9): the
    // same run in sequential and sharded mode must agree on every
    // deterministic column. The speedup itself is machine-dependent and
    // only meaningful on a multi-core runner, so it is reported, not
    // checked.
    const std::int32_t pn = smoke ? 8 : 120;
    const std::int64_t budget = smoke ? 0 : 64;
    const engine_bench::RunStats seq = engine_bench::run_once(
        "bounded-dimension-order", pn, 1, 1, budget);
    Table ptable({"mode", "steps", "moves", "delivered", "Kmoves/s"});
    ptable.row()
        .add("sequential")
        .add(seq.steps)
        .add(seq.moves)
        .add(std::int64_t(seq.delivered))
        .add(seq.moves_per_sec / 1e3, 2);
    bool par_identical = true;
    for (const int shards : {4, 8}) {
      const engine_bench::RunStats par = engine_bench::run_once(
          "bounded-dimension-order", pn, shards, shards, budget);
      par_identical = par_identical && par.steps == seq.steps &&
                      par.moves == seq.moves &&
                      par.delivered == seq.delivered;
      ptable.row()
          .add("shards=" + std::to_string(shards) + " threads=" +
               std::to_string(shards))
          .add(par.steps)
          .add(par.moves)
          .add(std::int64_t(par.delivered))
          .add(par.moves_per_sec / 1e3, 2);
    }
    ctx.table(ptable);
    ctx.check("sharded-engine-deterministic", par_identical);
  };
  registry.add(std::move(spec));
}

}  // namespace mr::scenarios
