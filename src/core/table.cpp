#include "core/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "core/assert.hpp"

namespace mr {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  MR_REQUIRE(!headers_.empty());
}

Table& Table::row() {
  if (!rows_.empty()) {
    MR_REQUIRE_MSG(rows_.back().size() == headers_.size(),
                   "previous row incomplete: " << rows_.back().size() << " of "
                                               << headers_.size() << " cells");
  }
  rows_.emplace_back();
  rows_.back().reserve(headers_.size());
  return *this;
}

Table& Table::add(const std::string& cell) {
  MR_REQUIRE_MSG(!rows_.empty(), "call row() before add()");
  MR_REQUIRE_MSG(rows_.back().size() < headers_.size(), "row overfull");
  rows_.back().push_back(cell);
  return *this;
}

Table& Table::add(const char* cell) { return add(std::string(cell)); }

Table& Table::add(std::int64_t v) { return add(std::to_string(v)); }
Table& Table::add(std::uint64_t v) { return add(std::to_string(v)); }
Table& Table::add(int v) { return add(std::to_string(v)); }

Table& Table::add(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return add(os.str());
}

std::string Table::to_markdown() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    widths[c] = headers_[c].size();
  for (const auto& r : rows_)
    for (std::size_t c = 0; c < r.size(); ++c)
      widths[c] = std::max(widths[c], r[c].size());

  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& cells) {
    os << '|';
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string();
      os << ' ' << cell << std::string(widths[c] - cell.size(), ' ') << " |";
    }
    os << '\n';
  };
  emit_row(headers_);
  os << '|';
  for (std::size_t c = 0; c < headers_.size(); ++c)
    os << std::string(widths[c] + 2, '-') << '|';
  os << '\n';
  for (const auto& r : rows_) emit_row(r);
  return os.str();
}

std::string Table::to_csv() const {
  auto quote = [](const std::string& s) {
    if (s.find_first_of(",\"\n") == std::string::npos) return s;
    std::string out = "\"";
    for (char ch : s) {
      if (ch == '"') out += '"';
      out += ch;
    }
    out += '"';
    return out;
  };
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c > 0) os << ',';
      os << quote(cells[c]);
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& r : rows_) emit(r);
  return os.str();
}

void Table::print(std::ostream& os) const { os << to_markdown() << '\n'; }

}  // namespace mr
