// Event trace recorder: captures every move, delivery and injection of a
// run as a flat event list that can be replayed against invariants,
// diffed between runs, or dumped as JSON-lines for external tooling.
// Purely observational (an Observer); never influences routing.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "sim/algorithm.hpp"
#include "sim/packet.hpp"
#include "topo/topology.hpp"

namespace mr {

enum class TraceEventKind : std::uint8_t { Move, Deliver };

struct TraceEvent {
  TraceEventKind kind = TraceEventKind::Move;
  Step step = 0;
  PacketId packet = kInvalidPacket;
  NodeId from = kInvalidNode;
  NodeId to = kInvalidNode;  ///< destination node for Deliver

  friend bool operator==(const TraceEvent&, const TraceEvent&) = default;
};

class TraceRecorder : public Observer {
 public:
  /// max_events bounds memory (0 = unlimited); recording stops silently at
  /// the cap and truncated() reports it.
  explicit TraceRecorder(std::size_t max_events = 0)
      : max_events_(max_events) {}

  void on_move(const Sim& e, const Packet& p, NodeId from,
               NodeId to) override;
  void on_deliver(const Sim& e, const Packet& p) override;

  const std::vector<TraceEvent>& events() const { return events_; }
  bool truncated() const { return truncated_; }

  /// Events of one packet, in order.
  std::vector<TraceEvent> packet_history(PacketId p) const;

  /// The node-path a packet took (source first; destination last if it was
  /// delivered).
  std::vector<NodeId> packet_path(PacketId p, NodeId source) const;

  /// JSON-lines dump ({"t":..,"kind":"move",...} per line).
  void write_jsonl(std::ostream& os) const;

  /// True iff every recorded move reduces the L1 distance to the packet's
  /// final destination — replays the minimality invariant offline.
  bool all_moves_minimal(const Topology& mesh,
                         const std::vector<Packet>& packets) const;

  /// True iff no directed link carries two packets in the same step.
  bool link_capacity_respected() const;

 private:
  std::size_t max_events_;
  bool truncated_ = false;
  std::vector<TraceEvent> events_;
};

}  // namespace mr
