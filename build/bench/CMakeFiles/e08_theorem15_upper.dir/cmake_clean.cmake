file(REMOVE_RECURSE
  "CMakeFiles/e08_theorem15_upper.dir/e08_theorem15_upper.cpp.o"
  "CMakeFiles/e08_theorem15_upper.dir/e08_theorem15_upper.cpp.o.d"
  "e08_theorem15_upper"
  "e08_theorem15_upper.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e08_theorem15_upper.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
