// Flat structure-of-arrays storage for the per-node packet queues.
//
// The engines used to keep one std::vector<PacketId> per node — a million
// separately allocated, pointer-chased vectors on a 1000×1000 mesh. The
// model bounds every node's occupancy (k for the central layout, k per
// inlink queue for the per-inlink layout, plus at most one arrival per
// inlink in the transient window of phase (d) before the §2 capacity check
// runs), so queues fit in one slab with a fixed per-node stride: slot i of
// node u lives at slots_[u * stride + i]. One allocation, cache-friendly
// sequential scans, and — essential for the sharded engine — writes for
// node u touch only u's stride window, so tiles that own disjoint node
// ranges never share a queue cache line except at window boundaries.
//
// Queue order is arrival order, exactly as with the per-node vectors:
// push_back appends, erase_slot closes the gap by shifting the tail left
// (preserving the survivors' relative order).
#pragma once

#include <span>
#include <vector>

#include "core/assert.hpp"
#include "core/types.hpp"

namespace mr {

class NodeQueues {
 public:
  /// Discards all contents and reshapes to `nodes` nodes of `stride`
  /// capacity each.
  void reset(std::size_t nodes, std::int32_t stride) {
    MR_REQUIRE(stride >= 1);
    stride_ = stride;
    slots_.assign(nodes * static_cast<std::size_t>(stride), kInvalidPacket);
    count_.assign(nodes, 0);
  }

  std::int32_t stride() const { return stride_; }

  std::int32_t size(NodeId u) const {
    return count_[static_cast<std::size_t>(u)];
  }
  bool empty(NodeId u) const { return size(u) == 0; }

  /// Queued packets of node u in arrival order. The span is invalidated by
  /// any mutation of node u (other nodes' mutations never move it).
  std::span<const PacketId> at(NodeId u) const {
    return {slots_.data() + base(u), static_cast<std::size_t>(size(u))};
  }

  /// Appends p to node u's queue; returns the slot index it occupies.
  std::int32_t push_back(NodeId u, PacketId p) {
    const std::int32_t slot = count_[static_cast<std::size_t>(u)];
    MR_REQUIRE_MSG(slot < stride_, "node " << u << " queue slab overflow");
    slots_[base(u) + static_cast<std::size_t>(slot)] = p;
    ++count_[static_cast<std::size_t>(u)];
    return slot;
  }

  /// Removes the packet in `slot` of node u, shifting the tail down one
  /// position (arrival order of the survivors is preserved).
  void erase_slot(NodeId u, std::int32_t slot) {
    const std::int32_t n = size(u);
    MR_REQUIRE(slot >= 0 && slot < n);
    PacketId* q = slots_.data() + base(u);
    for (std::int32_t i = slot + 1; i < n; ++i) q[i - 1] = q[i];
    q[n - 1] = kInvalidPacket;
    --count_[static_cast<std::size_t>(u)];
  }

 private:
  std::size_t base(NodeId u) const {
    return static_cast<std::size_t>(u) * static_cast<std::size_t>(stride_);
  }

  std::vector<PacketId> slots_;
  std::vector<std::int32_t> count_;
  std::int32_t stride_ = 0;
};

}  // namespace mr
