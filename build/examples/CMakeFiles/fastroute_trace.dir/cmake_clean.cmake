file(REMOVE_RECURSE
  "CMakeFiles/fastroute_trace.dir/fastroute_trace.cpp.o"
  "CMakeFiles/fastroute_trace.dir/fastroute_trace.cpp.o.d"
  "fastroute_trace"
  "fastroute_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fastroute_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
