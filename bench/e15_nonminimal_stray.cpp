// E15 — §5 "Nonminimal extensions": destination-exchangeable routers that
// may stray up to δ nodes beyond the shortest-path rectangle are bounded
// by Ω(n²/((δ+1)³k²)) — extra freedom weakens the adversary polynomially
// in δ but cannot defeat it.
//
// The full δ-adapted exchange construction is out of scope (the paper only
// sketches it); this experiment measures the weakening empirically: the
// δ = 0 Theorem 14 permutation is routed by StrayRouter(δ) for growing δ.
// The certified bound applies verbatim at δ = 0; for δ > 0 the measured
// times show how much (or little) nonminimal freedom buys on the same
// congestion pattern, and the engine enforces the rectangle+δ containment
// throughout.
#include "bench_util.hpp"
#include "harness/runner.hpp"
#include "lower_bound/main_construction.hpp"

int main() {
  using namespace mr;
  bench::header("E15", "nonminimal (delta-stray) routing on the adversarial "
                       "permutation",
                "§5 'Nonminimal extensions'");

  const int n = bench::scale() == bench::Scale::Small ? 60 : 120;
  const int k = 1;
  const MainLbParams par = main_lb_params(n, k);
  const Mesh mesh = Mesh::square(n);

  // Build the adversarial permutation against the δ = 0 stray router
  // (which is exactly a greedy DX minimal router).
  MainConstruction construction(mesh, par);
  const auto base = construction.verify_replay("stray-0", k);

  Table table({"delta", "router", "steps on adversarial", "delivered",
               "vs delta=0", "certified LB (delta=0)"});
  const double base_steps = double(base.replay_total_steps);
  for (const int delta : {0, 1, 2, 4, 8}) {
    RunSpec spec;
    spec.width = spec.height = n;
    spec.queue_capacity = k;
    spec.algorithm = "stray-" + std::to_string(delta);
    spec.max_steps = 400000;
    spec.stall_limit = 20000;
    const RunResult r =
        run_workload(spec, base.construction.constructed);
    table.row()
        .add(delta)
        .add(spec.algorithm)
        .add(r.steps)
        .add(r.all_delivered ? "yes" : "NO")
        .add(double(r.steps) / base_steps, 3)
        .add(par.certified_steps);
  }
  bench::print(table);
  bench::note(
      "delta=0 is destination-exchangeable minimal adaptive, so Theorem 14 "
      "certifies >= " +
      std::to_string(par.certified_steps) +
      " steps; the Omega(n^2/((delta+1)^3 k^2)) extension predicts only "
      "polynomial-in-delta relief, which the measured column tracks.");
  return 0;
}
