// Direct tests of the naive ReferenceEngine (check/reference_engine.hpp)
// and the fuzz-case plumbing: the reference must behave like the §3
// pipeline on its own, match the optimized Engine bit-for-bit in
// lock-step, and reject the same malformed configurations. The seeded
// fuzzer covers the same ground at scale; these tests pin the small,
// deliberate cases with readable failures.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "check/fuzz.hpp"
#include "check/oracles.hpp"
#include "check/reference_engine.hpp"
#include "core/assert.hpp"
#include "routing/registry.hpp"
#include "sim/engine.hpp"
#include "topo/mesh.hpp"
#include "workload/patterns.hpp"

namespace mr {
namespace {

/// Runs both engines on the same (mesh, k, workload) in lock-step and
/// asserts fingerprints, digest hashes and counters agree at every step.
void expect_lockstep(const Mesh& mesh, const std::string& algorithm, int k,
                     const Workload& demands, Step budget = 2048) {
  auto algo_opt = make_algorithm(algorithm);
  auto algo_ref = make_algorithm(algorithm);

  Engine::Config config;
  config.queue_capacity = k;
  config.stall_limit = 64;
  Engine opt(mesh, config, *algo_opt);
  ReferenceEngine ref(mesh, k, config.stall_limit, *algo_ref);

  DigestHasher hash_opt, hash_ref;
  opt.add_observer(static_cast<StepObserver*>(&hash_opt));
  ref.add_observer(static_cast<StepObserver*>(&hash_ref));

  for (const Demand& d : demands) {
    opt.add_packet(d.source, d.dest, d.injected_at);
    ref.add_packet(d.source, d.dest, d.injected_at);
  }
  opt.prepare();
  ref.prepare();
  ASSERT_EQ(opt.fingerprint(), ref.fingerprint()) << "prepare() diverged";

  for (Step t = 0; t < budget; ++t) {
    const bool more_opt = opt.step_once();
    const bool more_ref = ref.step_once();
    ASSERT_EQ(more_opt, more_ref) << "drain decision diverged at step " << t;
    ASSERT_EQ(opt.fingerprint(), ref.fingerprint())
        << "fingerprint diverged at step " << opt.step();
    ASSERT_EQ(hash_opt.hash(), hash_ref.hash())
        << "digest stream diverged at step " << opt.step();
    ASSERT_EQ(opt.stalled(), ref.stalled());
    if (!more_opt) break;
  }
  EXPECT_EQ(opt.delivered_count(), ref.delivered_count());
  EXPECT_EQ(opt.total_moves(), ref.total_moves());
  EXPECT_EQ(opt.max_occupancy_seen(), ref.max_occupancy_seen());
  EXPECT_EQ(opt.exchange_count(), ref.exchange_count());
}

TEST(ReferenceEngine, DeliversSimpleWorkload) {
  const Mesh mesh = Mesh::square(4);
  auto algo = make_algorithm("dimension-order");
  ReferenceEngine ref(mesh, 2, /*stall_limit=*/64, *algo);
  ref.add_packet(0, 15);
  ref.add_packet(15, 0);
  ref.prepare();
  ref.run(100);
  EXPECT_TRUE(ref.all_delivered());
  EXPECT_FALSE(ref.stalled());
  // Corner to corner is 6 hops; the delivering hop leaves the network and
  // is not a queue-to-queue move, so total_moves counts 5 per packet.
  EXPECT_EQ(ref.total_moves(), 10);
}

TEST(ReferenceEngine, SourceEqualsDestDeliversAtInjection) {
  const Mesh mesh = Mesh::square(4);
  auto algo = make_algorithm("dimension-order");
  ReferenceEngine ref(mesh, 1, 64, *algo);
  ref.add_packet(5, 5);
  ref.prepare();
  EXPECT_EQ(ref.delivered_count(), 1u);
  EXPECT_EQ(ref.total_moves(), 0);
}

TEST(ReferenceEngine, MatchesEngineOnTranspose) {
  const Mesh mesh = Mesh::square(6);
  expect_lockstep(mesh, "adaptive-alternate", 2, transpose(mesh));
}

TEST(ReferenceEngine, MatchesEngineOnPerInlinkLayout) {
  const Mesh mesh = Mesh::square(5);
  expect_lockstep(mesh, "bounded-dimension-order", 1, transpose(mesh));
}

TEST(ReferenceEngine, MatchesEngineOnTorus) {
  const Mesh mesh = Mesh::square(6, /*torus=*/true);
  expect_lockstep(mesh, "dimension-order", 2, transpose(mesh));
}

TEST(ReferenceEngine, MatchesEngineOnStaggeredInjections) {
  const Mesh mesh = Mesh::square(5);
  Workload demands = transpose(mesh);
  for (std::size_t i = 0; i < demands.size(); ++i)
    demands[i].injected_at = static_cast<Step>(i % 7);
  expect_lockstep(mesh, "greedy-match", 1, demands);
}

TEST(ReferenceEngine, MatchesEngineOnNonMinimalRouter) {
  const Mesh mesh = Mesh::square(5);
  expect_lockstep(mesh, "stray-2", 2, transpose(mesh));
}

// --- constructor validation (negative paths) -----------------------------

TEST(ReferenceEngine, RejectsNonPositiveQueueCapacity) {
  const Mesh mesh = Mesh::square(4);
  auto algo = make_algorithm("dimension-order");
  EXPECT_THROW(ReferenceEngine(mesh, 0, 64, *algo), InvariantViolation);
  EXPECT_THROW(ReferenceEngine(mesh, -3, 64, *algo), InvariantViolation);
}

TEST(ReferenceEngine, RejectsNegativeStallLimit) {
  const Mesh mesh = Mesh::square(4);
  auto algo = make_algorithm("dimension-order");
  EXPECT_THROW(ReferenceEngine(mesh, 1, -1, *algo), InvariantViolation);
}

// --- fuzz-case spec round trip -------------------------------------------

TEST(FuzzCase, SpecRoundTrips) {
  FuzzCase c;
  c.algorithm = "bounded-dimension-order";
  c.n = 7;
  c.topo = "torus";
  c.k = 4;
  c.budget = 512;
  c.ckpt = 9;
  c.demands = {{3, 41, 0}, {9, 2, 5}};
  const std::string spec = format_fuzz_case(c);

  FuzzCase parsed;
  std::string error;
  ASSERT_TRUE(parse_fuzz_case(spec, &parsed, &error)) << error;
  EXPECT_EQ(parsed.algorithm, c.algorithm);
  EXPECT_EQ(parsed.n, c.n);
  EXPECT_EQ(parsed.topo, c.topo);
  EXPECT_EQ(parsed.k, c.k);
  EXPECT_EQ(parsed.budget, c.budget);
  EXPECT_EQ(parsed.ckpt, c.ckpt);
  ASSERT_EQ(parsed.demands.size(), c.demands.size());
  for (std::size_t i = 0; i < c.demands.size(); ++i) {
    EXPECT_EQ(parsed.demands[i].source, c.demands[i].source);
    EXPECT_EQ(parsed.demands[i].dest, c.demands[i].dest);
    EXPECT_EQ(parsed.demands[i].injected_at, c.demands[i].injected_at);
  }
}

TEST(FuzzCase, TopoKeyRoundTrips) {
  FuzzCase c;
  c.algorithm = "bounded-dimension-order";
  c.n = 4;
  c.topo = "cmesh-2";
  c.k = 2;
  c.budget = 256;
  c.demands = {{0, 15, 0}};
  const std::string spec = format_fuzz_case(c);
  EXPECT_NE(spec.find("topo=cmesh-2"), std::string::npos);

  FuzzCase parsed;
  std::string error;
  ASSERT_TRUE(parse_fuzz_case(spec, &parsed, &error)) << error;
  EXPECT_EQ(parsed.topo, "cmesh-2");
  // The legacy spellings still parse: torus=0 leaves topo empty (mesh),
  // torus=1 normalises to topo=torus.
  ASSERT_TRUE(parse_fuzz_case(
      "algo=dimension-order n=4 torus=0 k=1 budget=64 demands=0-15", &parsed,
      &error))
      << error;
  EXPECT_TRUE(parsed.topo.empty());
  ASSERT_TRUE(parse_fuzz_case(
      "algo=dimension-order n=4 torus=1 k=1 budget=64 demands=0-15", &parsed,
      &error))
      << error;
  EXPECT_EQ(parsed.topo, "torus");
}

TEST(FuzzCase, RunFuzzCaseOnRegistryTopologies) {
  for (const char* topo : {"mesh", "torus", "cmesh-2", "cmesh-4"}) {
    FuzzCase c;
    c.algorithm = "bounded-dimension-order";
    c.n = 4;
    c.topo = topo;
    c.k = 2;
    c.budget = 256;
    c.demands = {{0, 15, 0}, {15, 0, 0}, {3, 12, 1}};
    EXPECT_EQ(run_fuzz_case(c), "") << topo;
  }
}

TEST(FuzzCase, ParseRejectsMalformedSpecs) {
  FuzzCase out;
  std::string error;
  EXPECT_FALSE(parse_fuzz_case("", &out, &error));
  EXPECT_FALSE(parse_fuzz_case("algo=dimension-order", &out, &error));
  // Algorithm names resolve at run time, not parse time; structural and
  // range errors are rejected here.
  EXPECT_FALSE(parse_fuzz_case(
      "algo=dimension-order n=4 torus=0 k=0 budget=64 demands=0-1", &out,
      &error));
  EXPECT_FALSE(parse_fuzz_case(
      "algo=dimension-order n=4 torus=0 k=1 budget=64 demands=0-99", &out,
      &error));
  EXPECT_FALSE(parse_fuzz_case(
      "algo=dimension-order n=4 torus=0 topo=hypercube k=1 budget=64 "
      "demands=0-1",
      &out, &error));
  EXPECT_FALSE(error.empty());
}

TEST(FuzzCase, RunFuzzCasePassesOnRegisteredAlgorithms) {
  for (const AlgorithmInfo& info : algorithm_catalog()) {
    FuzzCase c;
    c.algorithm = info.name;
    c.n = 4;
    c.k = 2;
    c.budget = 256;
    c.demands = {{0, 15, 0}, {15, 0, 0}, {3, 12, 1}};
    EXPECT_EQ(run_fuzz_case(c), "") << info.name;
  }
}

TEST(FuzzCase, ShrinkIsNoOpOnPassingCase) {
  FuzzCase c;
  c.algorithm = "dimension-order";
  c.n = 4;
  c.k = 1;
  c.budget = 256;
  c.demands = {{0, 15, 0}, {15, 0, 0}};
  const FuzzCase shrunk = shrink_fuzz_case(c);
  EXPECT_EQ(shrunk.demands.size(), c.demands.size());
}

}  // namespace
}  // namespace mr
