// E21 — scheduling ratio: offline path scheduling against the C + D
// yardstick. For a family of (l,k) and h-h instances we fix one-bend
// shortest paths, measure congestion C and dilation D, and compare the
// seeded random-delay schedule (the Leighton–Maggs–Rao/Rothvoß recipe,
// arXiv:1206.3718, which guarantees O(C + D) with constant-size buffers)
// against the greedy farthest-to-go baseline. Every random-delay schedule
// is then replayed on the production engine in scheduled mode, so the
// claimed makespan and queue bound are certified by the engine's own
// invariant machinery rather than by the scheduler's bookkeeping.
#include <algorithm>
#include <string>
#include <vector>

#include "schedule/path.hpp"
#include "schedule/replay.hpp"
#include "schedule/schedule.hpp"
#include "scenarios.hpp"
#include "topo/registry.hpp"
#include "workload/lk.hpp"
#include "workload/permutation.hpp"

namespace mr::scenarios {

void register_e21(ScenarioRegistry& registry) {
  ScenarioSpec spec;
  spec.id = "E21";
  spec.label = "scheduling-ratio";
  spec.title = "random-delay path scheduling vs the C + D yardstick";
  spec.paper_ref =
      "Rothvoß arXiv:1206.3718 (O(C+D), constant buffers); "
      "Leighton–Maggs–Rao";
  spec.body = [](ScenarioReport& ctx) {
    const std::int32_t side = ctx.scale() == Scale::Small ? 8 : 12;
    const std::uint64_t seed = ctx.seed_or(2100);
    const auto topo = make_topology("mesh", side, side);

    struct Instance {
      std::string name;
      Workload workload;
    };
    std::vector<Instance> instances;
    instances.push_back({"hh-1", random_hh(*topo, 1, seed)});
    instances.push_back({"hh-4", random_hh(*topo, 4, seed + 1)});
    instances.push_back({"mirror", mirror(*topo)});
    instances.push_back(
        {"lk-worst-2-2", make_lk_workload(*topo, {"worst-case", 2, 2, 1})});
    instances.push_back(
        {"lk-clustered-2-3",
         make_lk_workload(*topo, {"clustered", 2, 3, seed + 2})});

    // The "constant" of the named check. Empirically the random-delay
    // schedules land well under 2(C+D); 3 leaves slack for unlucky seeds
    // without letting the bound degenerate into makespan = O(C·D).
    const double kRatioBound = 3.0;

    Table table({"instance", "packets", "C", "D", "C+D", "rand makespan",
                 "rand ratio", "greedy makespan", "greedy ratio",
                 "replay steps", "replay k"});
    bool feasible = true;
    bool replays_on_time = true;
    double worst_ratio = 0.0;
    std::string worst_detail;
    for (std::size_t i = 0; i < instances.size(); ++i) {
      const Instance& inst = instances[i];
      const PathSet paths = build_paths(*topo, inst.workload);
      const Schedule rand = random_delay_schedule(paths, seed ^ (7919 * i));
      const Schedule greedy = greedy_schedule(paths);
      const std::string rand_err = validate_schedule(*topo, rand);
      const std::string greedy_err = validate_schedule(*topo, greedy);
      if (!rand_err.empty() || !greedy_err.empty()) {
        feasible = false;
        ctx.note("infeasible schedule on " + inst.name + ": " +
                 (rand_err.empty() ? greedy_err : rand_err));
      }
      const ReplayReport replay = replay_schedule(*topo, rand);
      replays_on_time = replays_on_time && replay.on_time;

      if (rand.ratio() > worst_ratio) {
        worst_ratio = rand.ratio();
        worst_detail = inst.name + ": C=" +
                       std::to_string(paths.congestion) + " D=" +
                       std::to_string(paths.dilation) + " makespan=" +
                       std::to_string(rand.makespan) + " ratio=" +
                       std::to_string(rand.ratio());
      }
      table.row()
          .add(inst.name)
          .add(static_cast<std::int64_t>(inst.workload.size()))
          .add(static_cast<std::int64_t>(paths.congestion))
          .add(static_cast<std::int64_t>(paths.dilation))
          .add(static_cast<std::int64_t>(paths.congestion + paths.dilation))
          .add(rand.makespan)
          .add(rand.ratio(), 3)
          .add(greedy.makespan)
          .add(greedy.ratio(), 3)
          .add(replay.steps)
          .add(static_cast<std::int64_t>(replay.queue_capacity));
    }
    ctx.table(table);
    ctx.note(
        "ratio = makespan / (C + D). Random-delay spreads start times over "
        "[0, C), so reservation conflicts — and the makespan — stay within "
        "a small constant of the C + D yardstick; greedy is the "
        "farthest-to-go baseline. 'replay steps' is the production engine "
        "re-executing the random-delay timetable (scheduled mode) with "
        "queue capacity 'replay k' = the schedule's own buffer bound.");
    ctx.check("schedules-feasible", feasible);
    ctx.check("random-delay-within-const-of-C-plus-D",
              feasible && worst_ratio <= kRatioBound,
              "worst " + worst_detail + " vs bound " +
                  std::to_string(kRatioBound));
    ctx.check("replay-on-time", replays_on_time,
              "every random-delay schedule must replay on the engine in "
              "exactly its claimed makespan");
  };
  registry.add(std::move(spec));
}

}  // namespace mr::scenarios
