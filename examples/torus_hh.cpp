// Torus + h-h demo: routes a random h-h workload (every node sends and
// receives h packets) on an n×n torus with the Theorem 15 bounded-queue
// router. With h > k, surplus packets wait outside the network and are
// injected as space frees — the §5 dynamic setting.
//
//   $ ./torus_hh [n] [h] [k] [seed]
#include <cstdlib>
#include <iostream>

#include "core/table.hpp"
#include "harness/runner.hpp"
#include "topo/mesh.hpp"
#include "workload/permutation.hpp"

int main(int argc, char** argv) {
  using namespace mr;
  const std::int32_t n = argc > 1 ? std::atoi(argv[1]) : 24;
  const int h = argc > 2 ? std::atoi(argv[2]) : 4;
  const int k = argc > 3 ? std::atoi(argv[3]) : 2;
  const std::uint64_t seed = argc > 4 ? std::strtoull(argv[4], nullptr, 10) : 5;

  const Mesh torus = Mesh::square(n, /*torus=*/true);
  const Workload w = random_hh(torus, h, seed);
  std::cout << "Routing a random " << h << "-" << h << " problem ("
            << w.size() << " packets) on a " << n << "x" << n
            << " torus, bounded-dimension-order, k=" << k << "\n\n";

  Table table({"h", "k", "steps", "steps/n", "max queue", "latency p50",
               "latency max", "delivered"});
  for (int hh = 1; hh <= h; ++hh) {
    RunSpec spec;
    spec.width = spec.height = n;
    spec.topology = "torus";
    spec.queue_capacity = k;
    spec.algorithm = "bounded-dimension-order";
    const RunResult r = run_workload(spec, random_hh(torus, hh, seed));
    table.row()
        .add(hh)
        .add(k)
        .add(r.steps)
        .add(double(r.steps) / n, 2)
        .add(std::int64_t(r.max_queue))
        .add(r.latency.p50)
        .add(r.latency.max)
        .add(r.all_delivered ? "yes" : "NO");
  }
  table.print(std::cout);
  std::cout << "(torus wrap links roughly halve average distance; h > k "
               "rows exercise dynamic injection)\n";
  return 0;
}
