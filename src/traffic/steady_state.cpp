#include "traffic/steady_state.hpp"

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <memory>
#include <sstream>
#include <vector>

#include "core/assert.hpp"
#include "core/json_min.hpp"
#include "core/stats.hpp"
#include "routing/registry.hpp"
#include "topo/registry.hpp"
#include "sim/engine.hpp"
#include "traffic/pump.hpp"

namespace mr {
namespace {

/// Routes each step digest's injection/delivery counters into the phase
/// the step belongs to. Prepare-time events (step 0) count as warmup.
class PhaseAccountant final : public StepObserver {
 public:
  PhaseAccountant(Step warmup_end, Step measure_end, TrafficPhaseStats& warmup,
                  TrafficPhaseStats& measure, TrafficPhaseStats& drain)
      : warmup_end_(warmup_end),
        measure_end_(measure_end),
        warmup_(warmup),
        measure_(measure),
        drain_(drain) {}

  void on_prepare(const Sim& e, const StepDigest& d) override {
    (void)e;
    warmup_.injected += d.injections;
    warmup_.delivered += d.deliveries;
  }
  void on_step(const Sim& e, const StepDigest& d) override {
    (void)e;
    TrafficPhaseStats& phase = d.step <= warmup_end_    ? warmup_
                               : d.step <= measure_end_ ? measure_
                                                        : drain_;
    phase.injected += d.injections;
    phase.delivered += d.deliveries;
  }

 private:
  Step warmup_end_;
  Step measure_end_;
  TrafficPhaseStats& warmup_;
  TrafficPhaseStats& measure_;
  TrafficPhaseStats& drain_;
};

LatencySummary summarize(const Histogram& h) {
  LatencySummary s;
  if (h.total() == 0) return s;
  s.mean = h.mean();
  s.p50 = h.percentile(0.50);
  s.p95 = h.percentile(0.95);
  s.p99 = h.percentile(0.99);
  s.max = h.max();
  return s;
}

/// Phase-accounting aux blob for mid-run checkpoints: the six streamed
/// counters the PhaseAccountant has accumulated (steps/offered are
/// recomputed at run end from the engine/pump, which the snapshot covers).
std::string acct_blob(const SteadyStateResult& r) {
  char buf[160];
  std::snprintf(buf, sizeof buf,
                "acct/1 %" PRId64 " %" PRId64 " %" PRId64 " %" PRId64
                " %" PRId64 " %" PRId64,
                r.warmup.injected, r.warmup.delivered, r.measure.injected,
                r.measure.delivered, r.drain.injected, r.drain.delivered);
  return buf;
}

void restore_acct(const std::string& blob, SteadyStateResult* r) {
  if (std::sscanf(blob.c_str(),
                  "acct/1 %" SCNd64 " %" SCNd64 " %" SCNd64 " %" SCNd64
                  " %" SCNd64 " %" SCNd64,
                  &r->warmup.injected, &r->warmup.delivered,
                  &r->measure.injected, &r->measure.delivered,
                  &r->drain.injected, &r->drain.delivered) != 6)
    throw SnapshotError(SnapshotError::Kind::Format,
                        "steady-state checkpoint: bad acct/1 blob");
}

}  // namespace

std::unique_ptr<Topology> steady_state_topology(const SteadyStateSpec& spec) {
  return make_topology(spec.resolved_topology(), spec.width, spec.height);
}

SteadyStateResult run_steady_state(const SteadyStateSpec& spec,
                                   TrafficSource& source) {
  const CheckpointSpec& ckpt = spec.checkpoint;
  if (ckpt.enabled()) {
    std::string done;
    if (read_text_file(ckpt.done_path(), &done)) {
      SteadyStateResult recorded;
      std::string error;
      if (!steady_state_result_from_json(done, &recorded, &error))
        throw SnapshotError(SnapshotError::Kind::Format,
                            ckpt.done_path() + ": " + error);
      return recorded;
    }
  }
  MR_REQUIRE_MSG(spec.width >= 1 && spec.height >= 1,
                 "mesh dimensions must be >= 1");
  MR_REQUIRE_MSG(spec.warmup_steps >= 0, "warmup_steps must be >= 0");
  MR_REQUIRE_MSG(spec.measure_steps >= 1, "measure_steps must be >= 1");
  MR_REQUIRE_MSG(spec.stationarity_windows >= 2,
                 "stationarity needs >= 2 windows");

  const std::unique_ptr<Topology> topo = steady_state_topology(spec);
  const auto nodes = static_cast<std::int64_t>(topo->num_terminals());
  std::unique_ptr<Algorithm> algorithm = make_algorithm(spec.algorithm);

  Engine::Config config;
  config.queue_capacity = spec.queue_capacity;
  config.stall_limit = spec.stall_limit;
  config.stall_counts_pending_injections = true;
  Engine engine(*topo, config, *algorithm);

  const Step warmup_end = spec.warmup_steps;
  const Step inject_end = spec.warmup_steps + spec.measure_steps;
  Step drain_budget = spec.drain_budget;
  if (drain_budget == 0) {
    // Generous for sub-saturation loads (a backlog of a few packets per
    // node plus the mesh diameter), bounded so saturated runs terminate.
    drain_budget = std::max<Step>(1024, 4 * nodes) +
                   4 * static_cast<Step>(spec.width + spec.height);
  }
  const Step max_steps = inject_end + drain_budget;

  SteadyStateResult r;
  PhaseAccountant accountant(warmup_end, inject_end, r.warmup, r.measure,
                             r.drain);
  engine.add_observer(static_cast<StepObserver*>(&accountant));

  TrafficPump pump(engine, source, inject_end, spec.pump_ahead);

  std::optional<EngineSnapshot> resume;
  if (ckpt.enabled()) {
    std::string bytes;
    if (read_text_file(ckpt.snapshot_path(), &bytes))
      resume = parse_snapshot(bytes);
  }
  if (resume) {
    const std::string* source_blob = resume->find_aux("source");
    const std::string* pump_blob = resume->find_aux("pump");
    const std::string* acct = resume->find_aux("acct");
    if (!source_blob || !pump_blob || !acct)
      throw SnapshotError(SnapshotError::Kind::Format,
                          "steady-state checkpoint is missing the "
                          "source/pump/acct aux state");
    source.restore_state(*source_blob);
    pump.restore_state(*pump_blob);
    restore_acct(*acct, &r);
    engine.restore(*resume);
  } else {
    pump.prime();
    engine.prepare();
  }

  // run_to_drain, with a snapshot dropped every ckpt.every steps.
  const auto maybe_checkpoint = [&] {
    if (!ckpt.enabled() || engine.step() % ckpt.every != 0) return;
    EngineSnapshot snap = engine.snapshot();
    snap.set_aux("source", source.save_state());
    snap.set_aux("pump", pump.save_state());
    snap.set_aux("acct", acct_blob(r));
    write_snapshot_file(ckpt.snapshot_path(), snap);
  };
  while (!engine.stalled() && engine.step() < max_steps) {
    pump.advance();
    if (engine.all_delivered()) break;  // stream exhausted and drained
    if (!engine.step_once()) break;
    maybe_checkpoint();
  }
  const Step last = engine.step();

  r.steps = last;
  r.stalled = engine.stalled();
  r.drained = engine.all_delivered() && pump.exhausted();
  r.max_queue = engine.max_occupancy_seen();
  r.total_moves = engine.total_moves();
  r.total_offered = pump.offered();
  r.total_delivered = static_cast<std::int64_t>(engine.delivered_count());
  r.backlog_end = static_cast<std::int64_t>(engine.num_packets()) -
                  r.total_delivered;

  r.warmup.steps = std::min(last, warmup_end);
  r.measure.steps = std::clamp<Step>(last - warmup_end, 0, spec.measure_steps);
  r.drain.steps = std::max<Step>(last - inject_end, 0);
  r.warmup.offered = pump.offered_between(1, warmup_end);
  r.measure.offered = pump.offered_between(warmup_end + 1, inject_end);
  r.drain.offered = 0;  // the source never injects past inject_end

  if (r.measure.steps > 0) {
    const double denom =
        static_cast<double>(nodes) * static_cast<double>(r.measure.steps);
    r.offered_rate = static_cast<double>(r.measure.offered) / denom;
    r.accepted_rate = static_cast<double>(r.measure.delivered) / denom;
  }

  // Latency and stationarity over the packets offered during the
  // measurement phase. Windows partition the phase by injection step, so
  // a still-filling network shows up as later windows with higher means.
  Histogram latency;
  const int windows = spec.stationarity_windows;
  const Step window_width =
      std::max<Step>(1, (spec.measure_steps + windows - 1) / windows);
  std::vector<RunningStat> window_latency(static_cast<std::size_t>(windows));
  for (const Packet& p : engine.all_packets()) {
    if (p.injected_at <= warmup_end || p.injected_at > inject_end) continue;
    ++r.measured_packets;
    if (!p.delivered()) continue;
    ++r.measured_delivered;
    const auto lat = static_cast<std::int64_t>(p.delivered_at - p.injected_at);
    latency.add(lat);
    const auto w = static_cast<std::size_t>(
        std::min<Step>((p.injected_at - warmup_end - 1) / window_width,
                       windows - 1));
    window_latency[w].add(static_cast<double>(lat));
  }
  r.latency = summarize(latency);

  const bool measure_complete = r.measure.steps == spec.measure_steps;
  bool windows_populated = true;
  for (const RunningStat& w : window_latency)
    if (w.count() == 0) windows_populated = false;
  if (measure_complete && windows_populated && latency.total() > 0) {
    const int half = windows / 2;
    double first = 0, second = 0;
    std::int64_t first_n = 0, second_n = 0;
    for (int i = 0; i < half; ++i) {
      first += window_latency[static_cast<std::size_t>(i)].sum();
      first_n += window_latency[static_cast<std::size_t>(i)].count();
    }
    for (int i = windows - half; i < windows; ++i) {
      second += window_latency[static_cast<std::size_t>(i)].sum();
      second_n += window_latency[static_cast<std::size_t>(i)].count();
    }
    const double mean_first = first / static_cast<double>(first_n);
    const double mean_second = second / static_cast<double>(second_n);
    const double overall = latency.mean();
    r.stationarity_drift =
        overall > 0 ? std::abs(mean_second - mean_first) / overall : 0;
    r.stationary = r.stationarity_drift <= spec.stationarity_tolerance;
  }

  if (ckpt.enabled())
    write_text_file_atomic(ckpt.done_path(), steady_state_result_to_json(r));
  return r;
}

SteadyStateResult run_steady_state(const SteadyStateSpec& spec) {
  const std::unique_ptr<Topology> topo = steady_state_topology(spec);
  const std::unique_ptr<TrafficSource> source =
      make_traffic_source(*topo, spec.traffic, spec.burst);
  return run_steady_state(spec, *source);
}

namespace {

void phase_json(std::ostringstream& os, const char* name,
                const TrafficPhaseStats& p) {
  os << "\"" << name << "\": {\"steps\": " << p.steps
     << ", \"offered\": " << p.offered << ", \"injected\": " << p.injected
     << ", \"delivered\": " << p.delivered << "}";
}

bool parse_phase(const json::Value& doc, const char* name,
                 TrafficPhaseStats* out) {
  const json::Value* p = doc.find(name);
  if (!p || !p->is_object()) return false;
  const auto get = [&](const char* key, std::int64_t* v) {
    const json::Value* field = p->find(key);
    if (!field || !field->is_number()) return false;
    *v = static_cast<std::int64_t>(field->number);
    return true;
  };
  std::int64_t steps = 0;
  if (!get("steps", &steps) || !get("offered", &out->offered) ||
      !get("injected", &out->injected) || !get("delivered", &out->delivered))
    return false;
  out->steps = steps;
  return true;
}

}  // namespace

std::string steady_state_result_to_json(const SteadyStateResult& r) {
  std::ostringstream os;
  os << "{\"format\": \"meshroute-steady/1\", ";
  phase_json(os, "warmup", r.warmup);
  os << ", ";
  phase_json(os, "measure", r.measure);
  os << ", ";
  phase_json(os, "drain", r.drain);
  os << ", \"offered_rate\": " << json::exact_number_to_string(r.offered_rate)
     << ", \"accepted_rate\": " << json::exact_number_to_string(r.accepted_rate)
     << ", \"latency\": {\"mean\": " << json::exact_number_to_string(r.latency.mean)
     << ", \"p50\": " << r.latency.p50 << ", \"p95\": " << r.latency.p95
     << ", \"p99\": " << r.latency.p99 << ", \"max\": " << r.latency.max << "}"
     << ", \"measured_packets\": " << r.measured_packets
     << ", \"measured_delivered\": " << r.measured_delivered
     << ", \"stationary\": " << (r.stationary ? "true" : "false")
     << ", \"stationarity_drift\": "
     << json::exact_number_to_string(r.stationarity_drift)
     << ", \"drained\": " << (r.drained ? "true" : "false")
     << ", \"stalled\": " << (r.stalled ? "true" : "false")
     << ", \"steps\": " << r.steps << ", \"max_queue\": " << r.max_queue
     << ", \"total_moves\": " << r.total_moves
     << ", \"total_offered\": " << r.total_offered
     << ", \"total_delivered\": " << r.total_delivered
     << ", \"backlog_end\": " << r.backlog_end << "}\n";
  return os.str();
}

bool steady_state_result_from_json(const std::string& text,
                                   SteadyStateResult* result,
                                   std::string* error) {
  const auto fail = [error](const std::string& what) {
    if (error) *error = "meshroute-steady/1: " + what;
    return false;
  };
  std::string parse_error;
  std::optional<json::Value> doc = json::parse(text, &parse_error);
  if (!doc || !doc->is_object())
    return fail("not a JSON object: " + parse_error);
  const json::Value* format = doc->find("format");
  if (!format || !format->is_string() || format->string != "meshroute-steady/1")
    return fail("missing or wrong \"format\"");

  SteadyStateResult r;
  if (!parse_phase(*doc, "warmup", &r.warmup) ||
      !parse_phase(*doc, "measure", &r.measure) ||
      !parse_phase(*doc, "drain", &r.drain))
    return fail("malformed phase record");

  const auto get_int = [&](const char* key, std::int64_t* v) {
    const json::Value* field = doc->find(key);
    if (!field || !field->is_number()) return false;
    *v = static_cast<std::int64_t>(field->number);
    return true;
  };
  const auto get_double = [&](const char* key, double* v) {
    const json::Value* field = doc->find(key);
    if (!field || !field->is_number()) return false;
    *v = field->number;
    return true;
  };
  const auto get_bool = [&](const char* key, bool* v) {
    const json::Value* field = doc->find(key);
    if (!field || !field->is_bool()) return false;
    *v = field->boolean;
    return true;
  };

  const json::Value* latency = doc->find("latency");
  if (!latency || !latency->is_object()) return fail("missing \"latency\"");
  const json::Value* mean = latency->find("mean");
  if (!mean || !mean->is_number()) return fail("malformed \"latency\"");
  r.latency.mean = mean->number;
  const auto get_lat = [&](const char* key, Step* v) {
    const json::Value* field = latency->find(key);
    if (!field || !field->is_number()) return false;
    *v = static_cast<Step>(field->number);
    return true;
  };
  if (!get_lat("p50", &r.latency.p50) || !get_lat("p95", &r.latency.p95) ||
      !get_lat("p99", &r.latency.p99) || !get_lat("max", &r.latency.max))
    return fail("malformed \"latency\"");

  std::int64_t steps = 0, max_queue = 0, measured_packets = 0,
               measured_delivered = 0;
  if (!get_double("offered_rate", &r.offered_rate) ||
      !get_double("accepted_rate", &r.accepted_rate) ||
      !get_double("stationarity_drift", &r.stationarity_drift) ||
      !get_int("measured_packets", &measured_packets) ||
      !get_int("measured_delivered", &measured_delivered) ||
      !get_bool("stationary", &r.stationary) ||
      !get_bool("drained", &r.drained) || !get_bool("stalled", &r.stalled) ||
      !get_int("steps", &steps) || !get_int("max_queue", &max_queue) ||
      !get_int("total_moves", &r.total_moves) ||
      !get_int("total_offered", &r.total_offered) ||
      !get_int("total_delivered", &r.total_delivered) ||
      !get_int("backlog_end", &r.backlog_end))
    return fail("missing scalar field");
  r.steps = steps;
  r.max_queue = static_cast<int>(max_queue);
  r.measured_packets = static_cast<std::size_t>(measured_packets);
  r.measured_delivered = static_cast<std::size_t>(measured_delivered);

  *result = r;
  return true;
}

}  // namespace mr
