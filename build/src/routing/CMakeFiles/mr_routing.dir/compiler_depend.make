# Empty compiler generated dependencies file for mr_routing.
# This may be replaced when dependencies are built.
