// Scheduled-mode execution: replaying a precomputed Schedule on the
// production Engine.
//
// The schedulers in schedule.hpp reason about an idealised store-and-
// forward network. Rather than trust a second simulator, scheduled mode
// re-executes the timetable on the real engine: every packet is added
// with injected_at = its first departure step, and a ScheduleFollower
// algorithm moves each packet exactly when its timetable says to. The
// engine's own invariant machinery (minimality enforcement, queue-
// capacity checks, fingerprints, telemetry, snapshots) then applies to
// scheduled runs unchanged — a schedule that claims makespan T but
// needs more steps, moves a packet off its path, or overflows the
// queue bound computed by required_queue_capacity() fails loudly.
//
// ScheduleFollower is a DxAlgorithm on purpose: its decisions are pure
// timetable lookups keyed by (packet id, step), never by destination,
// so the destination-exchangeable adapter's restricted views cost it
// nothing and clones for the sharded engine share one immutable
// timetable.
#pragma once

#include <memory>

#include "routing/dx.hpp"
#include "schedule/schedule.hpp"

namespace mr {

/// Moves each packet along its PacketSchedule, one timetable lookup per
/// (resident packet, step). Stateless apart from the shared immutable
/// schedule, so instances are clone-safe for the sharded engine's
/// per-band algorithm factories. PacketId i must correspond to
/// schedule.packets[i] — replay_schedule() guarantees this by adding
/// packets in demand order.
class ScheduleFollower final : public DxAlgorithm {
 public:
  explicit ScheduleFollower(std::shared_ptr<const Schedule> schedule)
      : schedule_(std::move(schedule)) {
    MR_REQUIRE(schedule_ != nullptr);
  }

  std::string name() const override { return "schedule-follower"; }
  bool minimal() const override { return true; }

 protected:
  void dx_plan_out(NodeCtx& ctx, std::span<const PacketDxView> resident,
                   OutPlan& plan) override;
  void dx_plan_in(NodeCtx& ctx, std::span<const PacketDxView> resident,
                  std::span<const DxOffer> offers, InPlan& plan) override;

 private:
  std::shared_ptr<const Schedule> schedule_;
};

/// Outcome of one scheduled-mode engine run, cross-checked against the
/// timetable's own claims.
struct ReplayReport {
  Step steps = 0;            ///< engine steps executed
  bool all_delivered = false;
  /// Engine finished in exactly schedule.makespan steps and every packet's
  /// delivered_at matches its timetable finish().
  bool on_time = false;
  int queue_capacity = 0;    ///< k the engine ran with
  std::int64_t total_moves = 0;
  std::uint64_t fingerprint = 0;  ///< end-of-run engine fingerprint
};

/// Replays `s` on a fresh Engine over `topo` with
/// queue_capacity = max(required_queue_capacity(s), 1), packets added in
/// demand order (PacketId == demand index) with injected_at = start().
/// Runs for at most makespan steps; stall_slack pads the engine's stall
/// limit for delay-induced idle stretches.
ReplayReport replay_schedule(const Topology& topo, const Schedule& s,
                             Step stall_slack = 16);

}  // namespace mr
