// meshrouted — serving daemon for routing jobs (see service/daemon.hpp).
//
// Server:
//   meshrouted --socket=PATH [--lanes=N] [--work-dir=DIR]
//     Serves until SIGINT/SIGTERM or a client {"op": "shutdown"}.
//
// Client (scripting mode, used by CI):
//   meshrouted --client --socket=PATH --submit=JSON [--submit=JSON]...
//              [--telemetry-out=FILE]
//     Submits each job spec (inline JSON, or @FILE to read it from a
//     file) over one connection, waits for every result, appends all
//     streamed telemetry lines to FILE (jobs interleave; lines carry no
//     job id — use one client per job for per-job JSONL), and prints each
//     result frame to stdout. Exits non-zero if any job errors.
//   meshrouted --client --socket=PATH --shutdown
//     Asks the daemon to exit.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/json_min.hpp"
#include "service/daemon.hpp"
#include "service/protocol.hpp"
#include "sim/snapshot.hpp"

#include <unistd.h>

namespace {

mr::Daemon* g_daemon = nullptr;

void handle_signal(int) {
  // stop() only flips atomics / signals condvars; acceptable from a
  // handler for this single-purpose binary.
  if (g_daemon != nullptr) g_daemon->stop();
}

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --socket=PATH [--lanes=N] [--work-dir=DIR]\n"
               "       %s --client --socket=PATH --submit=JSON|@FILE "
               "[--submit=...]... [--telemetry-out=FILE]\n"
               "       %s --client --socket=PATH --shutdown\n",
               argv0, argv0, argv0);
  return 2;
}

int run_client(const std::string& socket_path,
               const std::vector<std::string>& submits,
               const std::string& telemetry_out, bool shutdown) {
  using namespace mr;
  std::string error;
  const int fd = connect_unix(socket_path, &error);
  if (fd < 0) {
    std::fprintf(stderr, "meshrouted: %s\n", error.c_str());
    return 1;
  }

  if (shutdown) {
    std::string ack;
    if (!write_frame(fd, "{\"op\": \"shutdown\"}", &error) ||
        !read_frame(fd, &ack, &error)) {
      std::fprintf(stderr, "meshrouted: shutdown: %s\n", error.c_str());
      ::close(fd);
      return 1;
    }
    ::close(fd);
    return 0;
  }

  for (const std::string& submit : submits) {
    std::string job_json = submit;
    if (!job_json.empty() && job_json[0] == '@') {
      if (!read_text_file(job_json.substr(1), &job_json)) {
        std::fprintf(stderr, "meshrouted: cannot read %s\n",
                     submit.c_str() + 1);
        ::close(fd);
        return 1;
      }
    }
    if (!write_frame(fd, "{\"op\": \"submit\", \"job\": " + job_json + "}",
                     &error)) {
      std::fprintf(stderr, "meshrouted: submit: %s\n", error.c_str());
      ::close(fd);
      return 1;
    }
  }

  std::FILE* telemetry = nullptr;
  if (!telemetry_out.empty()) {
    telemetry = std::fopen(telemetry_out.c_str(), "w");
    if (telemetry == nullptr) {
      std::fprintf(stderr, "meshrouted: cannot write %s\n",
                   telemetry_out.c_str());
      ::close(fd);
      return 1;
    }
  }

  // Drain frames until every submitted job has a terminal frame.
  std::size_t pending = submits.size();
  bool failed = false;
  std::string payload;
  while (pending > 0 && read_frame(fd, &payload, &error)) {
    std::string parse_error;
    const std::optional<json::Value> doc = json::parse(payload, &parse_error);
    if (!doc || !doc->is_object()) {
      std::fprintf(stderr, "meshrouted: bad frame: %s\n", parse_error.c_str());
      failed = true;
      break;
    }
    if (const json::Value* ok = doc->find("ok")) {
      if (!ok->boolean) {
        const json::Value* why = doc->find("error");
        std::fprintf(stderr, "meshrouted: rejected: %s\n",
                     why && why->is_string() ? why->string.c_str() : "?");
        failed = true;
        --pending;
      }
      continue;  // submit ack
    }
    const json::Value* kind = doc->find("kind");
    if (!kind || !kind->is_string()) continue;
    if (kind->string == "telemetry") {
      const json::Value* line = doc->find("line");
      if (telemetry != nullptr && line != nullptr && line->is_string())
        std::fprintf(telemetry, "%s\n", line->string.c_str());
    } else if (kind->string == "result") {
      std::printf("%s\n", payload.c_str());
      --pending;
    } else if (kind->string == "error") {
      const json::Value* why = doc->find("error");
      std::fprintf(stderr, "meshrouted: job failed: %s\n",
                   why && why->is_string() ? why->string.c_str() : "?");
      failed = true;
      --pending;
    }
  }
  if (pending > 0 && !failed) {
    std::fprintf(stderr, "meshrouted: connection lost: %s\n", error.c_str());
    failed = true;
  }
  if (telemetry != nullptr) std::fclose(telemetry);
  ::close(fd);
  return failed ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string socket_path, work_dir, telemetry_out;
  std::vector<std::string> submits;
  std::size_t lanes = 2;
  bool client = false, shutdown = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--socket=", 0) == 0) {
      socket_path = arg.substr(9);
    } else if (arg.rfind("--lanes=", 0) == 0) {
      lanes = static_cast<std::size_t>(
          std::strtoul(arg.substr(8).c_str(), nullptr, 10));
      if (lanes < 1) return usage(argv[0]);
    } else if (arg.rfind("--work-dir=", 0) == 0) {
      work_dir = arg.substr(11);
    } else if (arg == "--client") {
      client = true;
    } else if (arg.rfind("--submit=", 0) == 0) {
      submits.push_back(arg.substr(9));
    } else if (arg.rfind("--telemetry-out=", 0) == 0) {
      telemetry_out = arg.substr(16);
    } else if (arg == "--shutdown") {
      shutdown = true;
    } else {
      return usage(argv[0]);
    }
  }
  if (socket_path.empty()) return usage(argv[0]);

  if (client) {
    if (submits.empty() && !shutdown) return usage(argv[0]);
    return run_client(socket_path, submits, telemetry_out, shutdown);
  }

  mr::DaemonOptions options;
  options.socket_path = socket_path;
  options.lanes = lanes;
  options.work_dir = work_dir;
  mr::Daemon daemon(options);
  std::string error;
  if (!daemon.start(&error)) {
    std::fprintf(stderr, "meshrouted: %s\n", error.c_str());
    return 1;
  }
  g_daemon = &daemon;
  std::signal(SIGINT, handle_signal);
  std::signal(SIGTERM, handle_signal);
  std::fprintf(stderr, "meshrouted: serving on %s (%zu lane%s)\n",
               socket_path.c_str(), options.lanes,
               options.lanes == 1 ? "" : "s");
  daemon.wait();
  g_daemon = nullptr;
  std::fprintf(stderr, "meshrouted: shut down\n");
  return 0;
}
