// E01 — Theorem 14: the Ω(n²/k²) lower bound for destination-exchangeable
// minimal adaptive routers.
//
// For each DX router and each (n, k), builds the §3 construction, runs it
// (exchanges + online Lemma 1–8 checks), extracts the constructed
// permutation, and replays it through the untouched router. Reported:
//   certified  = ⌊l⌋·dn   (the proven lower bound, Theorem 13),
//   measured   = steps the router actually needs to deliver everything,
//   certified·k²/n² and measured·k²/n² — flat columns ⟹ Ω(n²/k²) growth.
#include "lower_bound/main_construction.hpp"
#include "routing/registry.hpp"
#include "scenarios.hpp"

namespace mr::scenarios {

void register_e01(ScenarioRegistry& registry) {
  ScenarioSpec spec;
  spec.id = "E01";
  spec.label = "main-lower-bound";
  spec.title = "main lower bound, DX minimal adaptive routers";
  spec.paper_ref = "Theorem 14, §3–§4";
  spec.body = [](ScenarioReport& ctx) {
    std::vector<std::pair<int, int>> sizes;  // (n, k)
    sizes = {{60, 1}, {120, 1}, {216, 1}, {120, 2}, {216, 2}, {216, 3}};
    if (ctx.scale() == Scale::Small) sizes = {{60, 1}, {120, 1}};
    if (ctx.scale() == Scale::Large) {
      sizes.push_back({432, 1});
      sizes.push_back({432, 2});
    }

    Table table({"algorithm", "n", "k", "classes", "exchanges", "certified",
                 "measured", "cert*k^2/n^2", "meas*k^2/n^2", "replay ok"});
    bool all_ok = true;
    for (const std::string& algorithm : dx_minimal_algorithm_names()) {
      for (const auto& [n, k] : sizes) {
        const MainLbParams par = main_lb_params(n, k);
        if (!par.valid) continue;
        const Mesh mesh = Mesh::square(n);
        MainConstruction construction(mesh, par);
        const auto r = construction.verify_replay(algorithm, k);
        const double n2k2 = double(n) * n / (double(k) * k);
        const bool ok = r.stepwise_match && r.final_match &&
                        r.undelivered_at_certified >= 1;
        all_ok = all_ok && ok;
        table.row()
            .add(algorithm)
            .add(n)
            .add(k)
            .add(par.classes)
            .add(std::uint64_t(r.construction.exchanges))
            .add(par.certified_steps)
            .add(r.replay_total_steps)
            .add(double(par.certified_steps) / n2k2, 4)
            .add(double(r.replay_total_steps) / n2k2, 4)
            .add(ok ? "yes" : "NO");
      }
    }
    ctx.table(table);
    ctx.note(
        "certified*k^2/n^2 staying bounded away from 0 as n grows is the "
        "Omega(n^2/k^2) signature; 'replay ok' asserts Lemma 12 equivalence "
        "and Theorem 13's undelivered packet.");
    ctx.check("lemma12-replay-and-theorem13-undelivered", all_ok);
  };
  registry.add(std::move(spec));
}

}  // namespace mr::scenarios
