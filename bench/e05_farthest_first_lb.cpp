// E05 — §5: the Ω(n²/k) lower bound for dimension-order routing with the
// farthest-first outqueue policy (NOT destination-exchangeable — it reads
// full destination addresses — so it gets its own construction with the
// westernmost-partner exchange rule).
#include "lower_bound/farthest_first_construction.hpp"
#include "scenarios.hpp"

namespace mr::scenarios {

void register_e05(ScenarioRegistry& registry) {
  ScenarioSpec spec;
  spec.id = "E05";
  spec.label = "farthest-first-lb";
  spec.title = "farthest-first lower bound";
  spec.paper_ref = "§5 'Dimension Order Routing', Figure 4 (right)";
  spec.body = [](ScenarioReport& ctx) {
    std::vector<std::pair<int, int>> sizes = {{60, 1}, {120, 1}, {216, 1},
                                              {120, 2}, {216, 2}};
    if (ctx.scale() == Scale::Small) sizes = {{60, 1}, {120, 1}};
    if (ctx.scale() == Scale::Large) sizes.push_back({432, 1});

    Table table({"n", "k", "classes", "exchanges", "certified", "measured",
                 "meas*k/n^2", "row order ok", "stepwise equal", "final equal",
                 "undelivered at l*dn"});
    bool k1_exact = true;       // k = 1: the paper's claim holds verbatim
    bool all_undelivered = true;  // every instance: the bound's conclusion
    for (const auto& [n, k] : sizes) {
      const FarthestFirstLbParams par = farthest_first_lb_params(n, k);
      if (!par.valid) continue;
      const Mesh mesh = Mesh::square(n);
      FarthestFirstConstruction construction(mesh, par);
      const auto r = construction.verify_replay("farthest-first", k);
      const double n2k = double(n) * n / double(k);
      if (k == 1)
        k1_exact = k1_exact && r.construction.row_order_ok &&
                   r.stepwise_match && r.final_match;
      all_undelivered = all_undelivered && r.undelivered_at_certified >= 1;
      table.row()
          .add(n)
          .add(k)
          .add(par.classes)
          .add(std::uint64_t(r.construction.exchanges))
          .add(par.certified_steps)
          .add(r.replay_total_steps)
          .add(double(r.replay_total_steps) / n2k, 4)
          .add(r.construction.row_order_ok ? "yes" : "NO")
          .add(r.stepwise_match ? "yes" : "no")
          .add(r.final_match ? "yes" : "NO")
          .add(std::uint64_t(r.undelivered_at_certified));
    }
    ctx.table(table);
    ctx.note(
        "Note: farthest-first is not destination-exchangeable, so stepwise "
        "destination-less equality is not implied by Lemma 10; the paper's "
        "claim ('it is not hard to see') is that this exchange rule "
        "preserves behaviour, which 'final equal' verifies. At k = 1 it "
        "holds exactly. At k >= 2 two packets can share a node and a "
        "same-step arrival can land west of an exchanged mover, breaking "
        "the literal row-ordering invariant and exact replay — yet the "
        "bound's conclusion (undelivered packets at l*dn) still held in "
        "every measured run. See EXPERIMENTS.md.");
    ctx.check("k1-exact-replay-and-row-order", k1_exact);
    ctx.check("undelivered-at-certified-every-instance", all_undelivered);
  };
  registry.add(std::move(spec));
}

}  // namespace mr::scenarios
