// Fundamental identifier and direction types shared by all meshroute modules.
#pragma once

#include <cstdint>
#include <limits>

namespace mr {

/// Linear index of a mesh node (row-major: id = row * width + col).
using NodeId = std::int32_t;
/// Stable identifier of a packet for the lifetime of a simulation.
using PacketId = std::int32_t;
/// Simulation step counter. Step 1 is the first executed step (paper §3).
using Step = std::int64_t;

inline constexpr NodeId kInvalidNode = -1;
inline constexpr PacketId kInvalidPacket = -1;

/// Default for Engine::Config::stall_limit and RunSpec::stall_limit: abort
/// a run after this many consecutive steps without progress. One constant
/// so the sim and harness layers cannot drift apart.
inline constexpr Step kDefaultStallLimit = 500000;

/// The four mesh link directions. Values are used as array indices.
enum class Dir : std::uint8_t { North = 0, East = 1, South = 2, West = 3 };

inline constexpr int kNumDirs = 4;

constexpr Dir kAllDirs[kNumDirs] = {Dir::North, Dir::East, Dir::South,
                                    Dir::West};

constexpr int dir_index(Dir d) { return static_cast<int>(d); }

constexpr Dir opposite(Dir d) {
  return static_cast<Dir>((dir_index(d) + 2) % kNumDirs);
}

constexpr const char* dir_name(Dir d) {
  switch (d) {
    case Dir::North: return "N";
    case Dir::East: return "E";
    case Dir::South: return "S";
    case Dir::West: return "W";
  }
  return "?";
}

/// Bitmask over directions; bit i corresponds to Dir with dir_index i.
/// This is the *profitable outlink* representation: the only piece of a
/// packet's destination a destination-exchangeable policy may observe.
using DirMask = std::uint8_t;

constexpr DirMask dir_bit(Dir d) {
  return static_cast<DirMask>(1u << dir_index(d));
}
constexpr bool mask_has(DirMask m, Dir d) { return (m & dir_bit(d)) != 0; }
constexpr int mask_count(DirMask m) {
  int c = 0;
  for (Dir d : kAllDirs) c += mask_has(m, d) ? 1 : 0;
  return c;
}

/// Row/column coordinate. Following the paper, the bench/table output layer
/// uses 1-based "column 1..n west to east, row 1..n south to north"; the
/// internal representation is 0-based with row 0 the southernmost.
struct Coord {
  std::int32_t col = 0;  ///< 0-based, increases eastward
  std::int32_t row = 0;  ///< 0-based, increases northward

  friend constexpr bool operator==(Coord a, Coord b) {
    return a.col == b.col && a.row == b.row;
  }
  friend constexpr bool operator!=(Coord a, Coord b) { return !(a == b); }
};

}  // namespace mr
