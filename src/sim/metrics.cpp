#include "sim/metrics.hpp"

#include "sim/engine.hpp"

namespace mr {

void MetricsObserver::on_step_end(const Engine& e) {
  delivered_by_step_.push_back(delivered_so_far_);
  if (sample_every_ > 0 && e.step() % sample_every_ == 0) {
    for (NodeId u = 0; u < e.mesh().num_nodes(); ++u) {
      const int occ = e.occupancy(u);
      if (occ > 0) occupancy_.add(occ);
    }
  }
}

void MetricsObserver::on_deliver(const Engine& e, const Packet& p) {
  latency_.add(p.delivered_at - p.injected_at);
  (void)e;
  ++delivered_so_far_;
}

Step MetricsObserver::completion_step(double fraction,
                                      std::size_t total) const {
  const auto target = static_cast<std::int64_t>(
      fraction * static_cast<double>(total));
  for (std::size_t t = 0; t < delivered_by_step_.size(); ++t)
    if (delivered_by_step_[t] >= target) return static_cast<Step>(t + 1);
  return static_cast<Step>(delivered_by_step_.size());
}

}  // namespace mr
