# Empty compiler generated dependencies file for mr_sim.
# This may be replaced when dependencies are built.
