// Column-aligned table printer for the benchmark binaries.
//
// Every experiment binary prints one or more tables in GitHub-flavoured
// markdown (readable in a terminal, paste-able into EXPERIMENTS.md) and can
// also emit CSV for downstream plotting.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace mr {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Begins a new row. Subsequent add() calls fill it left to right.
  Table& row();
  Table& add(const std::string& cell);
  Table& add(const char* cell);
  Table& add(std::int64_t v);
  Table& add(std::uint64_t v);
  Table& add(int v);
  Table& add(double v, int precision = 3);

  std::size_t num_rows() const { return rows_.size(); }
  const std::vector<std::string>& headers() const { return headers_; }
  const std::vector<std::vector<std::string>>& rows() const { return rows_; }

  /// Markdown with aligned pipes.
  std::string to_markdown() const;
  /// RFC-4180-ish CSV (quotes cells containing commas/quotes).
  std::string to_csv() const;

  void print(std::ostream& os) const;  ///< markdown + trailing newline

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace mr
