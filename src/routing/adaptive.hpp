// Minimal adaptive destination-exchangeable routers.
//
// AdaptiveAlternateRouter is the adaptive example sketched in §2: a packet
// moves in one profitable direction until blocked by congestion, then
// switches to its other profitable direction, alternating until delivered.
// GreedyMatchRouter maximises link utilisation: each node greedily matches
// resident packets to profitable outlinks in FIFO order, with a rotating
// outlink preference. Both see only §2-legal information, so the Theorem 14
// lower-bound construction applies to them.
#pragma once

#include "routing/dx.hpp"

namespace mr {

class AdaptiveAlternateRouter final : public DxAlgorithm {
 public:
  std::string name() const override { return "adaptive-alternate"; }

 protected:
  void dx_init(NodeCtx& ctx, std::span<PacketDxView> resident) override;
  void dx_plan_out(NodeCtx& ctx, std::span<const PacketDxView> resident,
                   OutPlan& plan) override;
  void dx_plan_in(NodeCtx& ctx, std::span<const PacketDxView> resident,
                  std::span<const DxOffer> offers, InPlan& plan) override;
  void dx_update(NodeCtx& ctx, std::span<PacketDxView> resident) override;

 private:
  // packet state bit 0: preferred axis (0 = horizontal, 1 = vertical)
  static constexpr std::uint64_t kAxisBit = 1;
};

class GreedyMatchRouter final : public DxAlgorithm {
 public:
  std::string name() const override { return "greedy-match"; }

 protected:
  void dx_plan_out(NodeCtx& ctx, std::span<const PacketDxView> resident,
                   OutPlan& plan) override;
  void dx_plan_in(NodeCtx& ctx, std::span<const PacketDxView> resident,
                  std::span<const DxOffer> offers, InPlan& plan) override;
  void dx_update(NodeCtx& ctx, std::span<PacketDxView> resident) override;
};

}  // namespace mr
