#include "telemetry/telemetry.hpp"

#include <algorithm>

#include "core/assert.hpp"

namespace mr {

TelemetryCollector::TelemetryCollector(TelemetryOptions options)
    : options_(options) {
  MR_REQUIRE(options_.series_capacity >= 2);
  rows_.reserve(options_.series_capacity);
}

void TelemetryCollector::on_prepare(const Sim& e, const StepDigest& d) {
  heat_.assign(static_cast<std::size_t>(e.mesh().num_nodes()),
               TelemetryNodeHeat{});
  per_inlink_ = e.queue_layout() == QueueLayout::PerInlink;
  totals_.deliveries += d.deliveries;
  totals_.injections += d.injections;
}

void TelemetryCollector::compact_rows() {
  // Stride doubling: merge adjacent rows pairwise in place. Capacity may
  // be odd; the unpaired last row simply becomes a half-width bucket and
  // is merged again on the next overflow.
  std::size_t out = 0;
  for (std::size_t i = 0; i < rows_.size(); i += 2, ++out) {
    TelemetrySeriesRow merged = rows_[i];
    if (i + 1 < rows_.size()) {
      const TelemetrySeriesRow& b = rows_[i + 1];
      merged.span += b.span;
      merged.moves += b.moves;
      merged.deliveries += b.deliveries;
      merged.injections += b.injections;
      for (int dir = 0; dir < kNumDirs; ++dir)
        merged.moves_by_dir[dir] += b.moves_by_dir[dir];
      merged.stall_run = std::max(merged.stall_run, b.stall_run);
      merged.fault_blocked += b.fault_blocked;
      merged.fault_deferred += b.fault_deferred;
    }
    rows_[out] = merged;
  }
  rows_.resize(out);
  stride_ *= 2;
}

void TelemetryCollector::sample_heat(const Sim& e) {
  ++heat_samples_;
  for (NodeId u : e.active_nodes()) {
    TelemetryNodeHeat& h = heat_[static_cast<std::size_t>(u)];
    const int occ = e.occupancy(u);
    h.sum += occ;
    h.max = std::max(h.max, occ);
    if (per_inlink_) {
      for (QueueTag t = 0; t < kNumDirs; ++t) {
        const int q = e.occupancy(u, t);
        h.inlink_sum[t] += q;
        h.inlink_max[t] = std::max(h.inlink_max[t], q);
      }
    }
  }
}

void TelemetryCollector::on_step(const Sim& e, const StepDigest& d) {
  const auto moves = static_cast<std::int64_t>(d.moves.size());
  totals_.steps = d.step;
  totals_.moves += moves;
  totals_.deliveries += d.deliveries;
  totals_.injections += d.injections;
  totals_.exchanges += d.exchanges;
  for (int dir = 0; dir < kNumDirs; ++dir)
    totals_.moves_by_dir[dir] += d.moves_by_dir[dir];
  totals_.max_stall_run = std::max(totals_.max_stall_run, d.stall_run);
  totals_.fault_blocked += d.fault_blocked;
  totals_.fault_deferred += d.fault_deferred;

  if (!pending_open_) {
    pending_ = TelemetrySeriesRow{};
    pending_.step = d.step;
    pending_.span = 0;
    pending_open_ = true;
  }
  pending_.span += 1;
  pending_.moves += moves;
  pending_.deliveries += d.deliveries;
  pending_.injections += d.injections;
  for (int dir = 0; dir < kNumDirs; ++dir)
    pending_.moves_by_dir[dir] += d.moves_by_dir[dir];
  pending_.stall_run = std::max(pending_.stall_run, d.stall_run);
  pending_.fault_blocked += d.fault_blocked;
  pending_.fault_deferred += d.fault_deferred;
  if (pending_.span >= stride_) {
    // After a compaction the (doubled) stride may exceed the pending span;
    // the bucket then simply keeps filling to the new width.
    if (rows_.size() == options_.series_capacity) compact_rows();
    if (pending_.span >= stride_) {
      rows_.push_back(pending_);
      pending_open_ = false;
    }
  }

  if (options_.sample_every > 0 && d.step % options_.sample_every == 0)
    sample_heat(e);
}

std::vector<TelemetrySeriesRow> TelemetryCollector::series() const {
  std::vector<TelemetrySeriesRow> out = rows_;
  if (pending_open_) out.push_back(pending_);
  return out;
}

}  // namespace mr
