// Dimension-order routing with the farthest-first outqueue policy
// (Leighton [16, p.159]; paper §5's second construction, and the base case
// of the §6 algorithm).
//
// The next packet advanced in a dimension is the one with the farthest to
// go in that dimension. This uses the full destination address, so the
// algorithm is NOT destination-exchangeable; §5 gives it a dedicated
// Ω(n²/k) construction.
#pragma once

#include "sim/algorithm.hpp"
#include "sim/engine.hpp"

namespace mr {

class FarthestFirstRouter final : public Algorithm {
 public:
  std::string name() const override { return "farthest-first"; }

  void plan_out(Sim& e, NodeId u, OutPlan& plan) override;
  void plan_in(Sim& e, NodeId v, std::span<const Offer> offers,
               InPlan& plan) override;
};

}  // namespace mr
