// E03 — Lemma 12 / Theorem 13: exact replay equivalence.
//
// For each DX router, runs the construction and then the plain router on
// the constructed permutation, comparing full network configurations step
// by step: destination-less fingerprints must agree at EVERY step (the
// pending exchanges only permute destination fields), and the complete
// configuration must agree at step ⌊l⌋·dn, where an undelivered packet
// must remain.
#include "lower_bound/main_construction.hpp"
#include "routing/registry.hpp"
#include "scenarios.hpp"
#include "topo/mesh.hpp"

namespace mr::scenarios {

void register_e03(ScenarioRegistry& registry) {
  ScenarioSpec spec;
  spec.id = "E03";
  spec.label = "replay-equivalence";
  spec.title = "replay equivalence of the constructed permutation";
  spec.paper_ref = "Lemma 12, Theorem 13, Figure 3";
  spec.body = [](ScenarioReport& ctx) {
    std::vector<std::pair<int, int>> sizes = {{60, 1}, {120, 1}, {216, 1},
                                              {216, 2}};
    if (ctx.scale() == Scale::Small) sizes = {{60, 1}, {120, 1}};

    Table table({"algorithm", "n", "k", "steps compared", "stepwise equal",
                 "final config equal", "undelivered at l*dn",
                 "placement variant"});
    bool all_ok = true;
    for (const std::string& algorithm : dx_minimal_algorithm_names()) {
      for (const auto& [n, k] : sizes) {
        const MainLbParams par = main_lb_params(n, k);
        if (!par.valid) continue;
        for (const bool shuffled : {false, true}) {
          MainConstructionOptions options;
          options.placement_seed = shuffled ? 0xABCDu : 0u;
          const Mesh mesh = Mesh::square(n);
          MainConstruction construction(mesh, par, options);
          const auto r = construction.verify_replay(algorithm, k);
          all_ok = all_ok && r.stepwise_match && r.final_match &&
                   r.undelivered_at_certified >= 1;
          table.row()
              .add(algorithm)
              .add(n)
              .add(k)
              .add(par.certified_steps)
              .add(r.stepwise_match ? "yes" : "NO")
              .add(r.final_match ? "yes" : "NO")
              .add(std::uint64_t(r.undelivered_at_certified))
              .add(shuffled ? "shuffled 0-box" : "canonical");
        }
      }
    }
    ctx.table(table);
    ctx.check("lemma12-bit-exact-replay-both-placements", all_ok);
  };
  registry.add(std::move(spec));
}

}  // namespace mr::scenarios
