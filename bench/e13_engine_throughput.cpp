// E13: engine micro-benchmarks — raw stepping throughput of the simulator
// under each router on a random permutation. Not a paper experiment; it
// establishes that the laptop-scale sweeps in E01–E12 are feasible and
// tracks regressions in the hot path.
//
// Modes:
//   (no args)          google-benchmark run, human-readable counters
//   --json[=PATH]      fixed sweep; writes machine-readable PATH (default
//                      BENCH_engine.json) and self-validates the schema —
//                      the PR-over-PR perf record
//   --smoke            with --json: tiny sizes, one rep (CI smoke test)
//   --validate=PATH    only validate an existing BENCH_engine.json
#include <benchmark/benchmark.h>

#include <cctype>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "routing/registry.hpp"
#include "sim/engine.hpp"
#include "workload/permutation.hpp"

namespace {

constexpr const char* kSchema = "meshroute-bench-engine/1";
constexpr int kQueueCapacity = 2;

struct RunStats {
  std::string router;
  std::string layout;
  std::int32_t n = 0;
  std::int64_t steps = 0;
  std::int64_t moves = 0;
  double seconds = 0;
  double moves_per_sec = 0;
  std::size_t delivered = 0;
  std::size_t packets = 0;
  bool stalled = false;
};

mr::Workload workload_for(const mr::Mesh& mesh, bool per_inlink) {
  // Central-queue routers get monotone (deadlock-free) traffic so the
  // benchmark measures engine throughput, not deadlock spinning; the
  // per-inlink router takes the full permutation.
  mr::Workload w;
  for (const mr::Demand& d : mr::random_permutation(mesh, 42)) {
    const mr::Coord s = mesh.coord_of(d.source);
    const mr::Coord t = mesh.coord_of(d.dest);
    if (per_inlink || (t.col >= s.col && t.row >= s.row)) w.push_back(d);
  }
  return w;
}

RunStats run_once(const std::string& name, std::int32_t n) {
  const mr::Mesh mesh = mr::Mesh::square(n);
  const bool per_inlink = mr::make_algorithm(name)->queue_layout() ==
                          mr::QueueLayout::PerInlink;
  const mr::Workload w = workload_for(mesh, per_inlink);
  RunStats r;
  r.router = name;
  r.layout = per_inlink ? "per-inlink" : "central";
  r.n = n;
  auto algo = mr::make_algorithm(name);
  mr::Engine::Config config;
  config.queue_capacity = kQueueCapacity;
  mr::Engine engine(mesh, config, *algo);
  for (const mr::Demand& d : w)
    engine.add_packet(d.source, d.dest, d.injected_at);
  engine.prepare();
  const auto t0 = std::chrono::steady_clock::now();
  r.steps = engine.run(200000);
  const auto t1 = std::chrono::steady_clock::now();
  r.seconds = std::chrono::duration<double>(t1 - t0).count();
  r.moves = engine.total_moves();
  r.moves_per_sec = r.seconds > 0 ? static_cast<double>(r.moves) / r.seconds
                                  : 0;
  r.delivered = engine.delivered_count();
  r.packets = engine.num_packets();
  r.stalled = engine.stalled();
  return r;
}

// ---------------------------------------------------------------------------
// JSON sweep

bool write_json(const std::string& path, const std::vector<RunStats>& all,
                bool smoke) {
  std::ofstream out(path);
  out << "{\n"
      << "  \"schema\": \"" << kSchema << "\",\n"
      << "  \"scale\": \"" << (smoke ? "smoke" : "default") << "\",\n"
      << "  \"queue_capacity\": " << kQueueCapacity << ",\n"
      << "  \"results\": [\n";
  for (std::size_t i = 0; i < all.size(); ++i) {
    const RunStats& r = all[i];
    out << "    {\"router\": \"" << r.router << "\", \"layout\": \""
        << r.layout << "\", \"n\": " << r.n << ", \"steps\": " << r.steps
        << ", \"moves\": " << r.moves << ", \"seconds\": " << r.seconds
        << ", \"moves_per_sec\": " << r.moves_per_sec
        << ", \"delivered\": " << r.delivered
        << ", \"packets\": " << r.packets << ", \"stalled\": "
        << (r.stalled ? "true" : "false") << "}"
        << (i + 1 < all.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  return out.good();
}

// Minimal JSON reader — just enough to validate the schema this binary
// writes (objects, arrays, strings, numbers, booleans; no escapes beyond
// none being emitted). Returns false with a message on malformed input.
struct JsonParser {
  const std::string& s;
  std::size_t i = 0;
  std::string error;

  explicit JsonParser(const std::string& text) : s(text) {}

  void skip_ws() {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i])))
      ++i;
  }
  bool fail(const std::string& msg) {
    if (error.empty()) error = msg + " at offset " + std::to_string(i);
    return false;
  }
  bool expect(char c) {
    skip_ws();
    if (i >= s.size() || s[i] != c)
      return fail(std::string("expected '") + c + "'");
    ++i;
    return true;
  }
  bool parse_string(std::string& out) {
    skip_ws();
    if (i >= s.size() || s[i] != '"') return fail("expected string");
    ++i;
    out.clear();
    while (i < s.size() && s[i] != '"') out.push_back(s[i++]);
    if (i >= s.size()) return fail("unterminated string");
    ++i;
    return true;
  }
  bool parse_number(double& out) {
    skip_ws();
    const std::size_t start = i;
    while (i < s.size() &&
           (std::isdigit(static_cast<unsigned char>(s[i])) || s[i] == '-' ||
            s[i] == '+' || s[i] == '.' || s[i] == 'e' || s[i] == 'E'))
      ++i;
    if (i == start) return fail("expected number");
    try {
      out = std::stod(s.substr(start, i - start));
    } catch (...) {
      return fail("bad number");
    }
    return true;
  }
  /// Parses one value into (kind, str, num). kind: s/n/b/o/a.
  bool parse_value(char& kind, std::string& str, double& num,
                   std::vector<std::string>& object_keys,
                   std::vector<std::string>& object_raw);
};

bool JsonParser::parse_value(char& kind, std::string& str, double& num,
                             std::vector<std::string>& object_keys,
                             std::vector<std::string>& object_raw) {
  skip_ws();
  if (i >= s.size()) return fail("unexpected end");
  if (s[i] == '"') {
    kind = 's';
    return parse_string(str);
  }
  if (s[i] == 't' || s[i] == 'f') {
    kind = 'b';
    const std::string word = s[i] == 't' ? "true" : "false";
    if (s.compare(i, word.size(), word) != 0) return fail("bad literal");
    i += word.size();
    return true;
  }
  if (s[i] == '{') {
    kind = 'o';
    ++i;
    object_keys.clear();
    object_raw.clear();
    skip_ws();
    if (i < s.size() && s[i] == '}') {
      ++i;
      return true;
    }
    for (;;) {
      std::string key;
      if (!parse_string(key)) return false;
      if (!expect(':')) return false;
      const std::size_t vstart = i;
      char k2;
      std::string s2;
      double n2;
      std::vector<std::string> dummy_k, dummy_r;
      skip_ws();
      const std::size_t vtrim = i;
      if (!parse_value(k2, s2, n2, dummy_k, dummy_r)) return false;
      object_keys.push_back(key);
      object_raw.push_back(s.substr(vtrim, i - vtrim));
      (void)vstart;
      skip_ws();
      if (i < s.size() && s[i] == ',') {
        ++i;
        continue;
      }
      return expect('}');
    }
  }
  if (s[i] == '[') {
    kind = 'a';
    ++i;
    skip_ws();
    if (i < s.size() && s[i] == ']') {
      ++i;
      return true;
    }
    for (;;) {
      char k2;
      std::string s2;
      double n2;
      std::vector<std::string> dummy_k, dummy_r;
      if (!parse_value(k2, s2, n2, dummy_k, dummy_r)) return false;
      skip_ws();
      if (i < s.size() && s[i] == ',') {
        ++i;
        continue;
      }
      return expect(']');
    }
  }
  kind = 'n';
  return parse_number(num);
}

/// Validates the BENCH_engine.json schema; prints the first problem found.
bool validate_json(const std::string& path) {
  std::ifstream in(path);
  if (!in.good()) {
    std::fprintf(stderr, "validate: cannot read %s\n", path.c_str());
    return false;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();

  auto complain = [&](const std::string& msg) {
    std::fprintf(stderr, "validate: %s: %s\n", path.c_str(), msg.c_str());
    return false;
  };

  JsonParser p(text);
  char kind;
  std::string str;
  double num;
  std::vector<std::string> keys, raw;
  if (!p.parse_value(kind, str, num, keys, raw)) return complain(p.error);
  if (kind != 'o') return complain("top level is not an object");

  auto find = [&](const std::string& key) -> const std::string* {
    for (std::size_t j = 0; j < keys.size(); ++j)
      if (keys[j] == key) return &raw[j];
    return nullptr;
  };
  const std::string* schema = find("schema");
  if (schema == nullptr || *schema != std::string("\"") + kSchema + "\"")
    return complain("missing or wrong \"schema\"");
  const std::string* qc = find("queue_capacity");
  if (qc == nullptr || std::atoi(qc->c_str()) < 1)
    return complain("missing or non-positive \"queue_capacity\"");
  const std::string* results = find("results");
  if (results == nullptr || results->empty() || (*results)[0] != '[')
    return complain("missing \"results\" array");

  // Re-parse each result entry and check the required fields.
  JsonParser pr(*results);
  if (!pr.expect('[')) return complain("results: " + pr.error);
  int count = 0;
  for (;;) {
    pr.skip_ws();
    if (pr.i < results->size() && (*results)[pr.i] == ']') break;
    std::vector<std::string> ekeys, eraw;
    if (!pr.parse_value(kind, str, num, ekeys, eraw) || kind != 'o')
      return complain("results[" + std::to_string(count) +
                      "] is not an object: " + pr.error);
    auto efind = [&](const std::string& key) -> const std::string* {
      for (std::size_t j = 0; j < ekeys.size(); ++j)
        if (ekeys[j] == key) return &eraw[j];
      return nullptr;
    };
    const char* id = "results entry";
    const std::string* router = efind("router");
    if (router == nullptr || router->size() < 3 || (*router)[0] != '"')
      return complain(std::string(id) + ": missing \"router\" string");
    for (const char* key : {"n", "steps", "seconds", "moves_per_sec"}) {
      const std::string* v = efind(key);
      if (v == nullptr || std::atof(v->c_str()) <= 0)
        return complain(std::string(id) + " " + *router +
                        ": missing or non-positive \"" + key + "\"");
    }
    for (const char* key : {"moves", "delivered", "packets"}) {
      const std::string* v = efind(key);
      if (v == nullptr || std::atof(v->c_str()) < 0)
        return complain(std::string(id) + " " + *router +
                        ": missing or negative \"" + key + "\"");
    }
    ++count;
    pr.skip_ws();
    if (pr.i < results->size() && (*results)[pr.i] == ',') {
      ++pr.i;
      continue;
    }
  }
  if (count == 0) return complain("results array is empty");
  std::printf("validate: %s ok (%d results)\n", path.c_str(), count);
  return true;
}

int json_sweep(const std::string& path, bool smoke) {
  const std::vector<std::int32_t> sizes =
      smoke ? std::vector<std::int32_t>{8}
            : std::vector<std::int32_t>{32, 64, 120};
  const int reps = smoke ? 1 : 3;
  std::vector<RunStats> all;
  for (const std::string& name : mr::algorithm_names()) {
    for (std::int32_t n : sizes) {
      RunStats best;
      for (int rep = 0; rep < reps; ++rep) {
        RunStats r = run_once(name, n);
        if (rep == 0 || r.moves_per_sec > best.moves_per_sec) best = r;
      }
      std::printf("%-24s n=%-4d steps=%-6lld moves=%-9lld %8.2f Kmoves/s%s\n",
                  best.router.c_str(), best.n,
                  static_cast<long long>(best.steps),
                  static_cast<long long>(best.moves),
                  best.moves_per_sec / 1e3, best.stalled ? " STALLED" : "");
      all.push_back(best);
    }
  }
  if (!write_json(path, all, smoke)) {
    std::fprintf(stderr, "error: cannot write %s\n", path.c_str());
    return 1;
  }
  std::printf("wrote %s (%zu results)\n", path.c_str(), all.size());
  return validate_json(path) ? 0 : 1;
}

// ---------------------------------------------------------------------------
// google-benchmark mode (manual runs / flag-driven exploration)

void run_router(benchmark::State& state, const std::string& name) {
  const auto n = static_cast<std::int32_t>(state.range(0));
  const mr::Mesh mesh = mr::Mesh::square(n);
  const bool per_inlink = mr::make_algorithm(name)->queue_layout() ==
                          mr::QueueLayout::PerInlink;
  const mr::Workload w = workload_for(mesh, per_inlink);
  std::int64_t steps = 0;
  std::int64_t moves = 0;
  for (auto _ : state) {
    auto algo = mr::make_algorithm(name);
    mr::Engine::Config config;
    config.queue_capacity = kQueueCapacity;
    mr::Engine engine(mesh, config, *algo);
    for (const mr::Demand& d : w)
      engine.add_packet(d.source, d.dest, d.injected_at);
    engine.prepare();
    steps += engine.run(100000);
    moves += engine.total_moves();
    benchmark::DoNotOptimize(engine.delivered_count());
  }
  state.counters["steps"] =
      benchmark::Counter(static_cast<double>(steps), benchmark::Counter::kAvgIterations);
  state.counters["moves/s"] = benchmark::Counter(
      static_cast<double>(moves), benchmark::Counter::kIsRate);
}

void BM_DimensionOrder(benchmark::State& state) {
  run_router(state, "dimension-order");
}
void BM_AdaptiveAlternate(benchmark::State& state) {
  run_router(state, "adaptive-alternate");
}
void BM_GreedyMatch(benchmark::State& state) {
  run_router(state, "greedy-match");
}
void BM_FarthestFirst(benchmark::State& state) {
  run_router(state, "farthest-first");
}
void BM_BoundedDimensionOrder(benchmark::State& state) {
  run_router(state, "bounded-dimension-order");
}

}  // namespace

BENCHMARK(BM_DimensionOrder)->Arg(16)->Arg(32)->Arg(64);
BENCHMARK(BM_AdaptiveAlternate)->Arg(16)->Arg(32)->Arg(64);
BENCHMARK(BM_GreedyMatch)->Arg(16)->Arg(32)->Arg(64);
BENCHMARK(BM_FarthestFirst)->Arg(16)->Arg(32)->Arg(64);
BENCHMARK(BM_BoundedDimensionOrder)->Arg(16)->Arg(32)->Arg(64)->Arg(120);

int main(int argc, char** argv) {
  bool json = false;
  bool smoke = false;
  std::string path = "BENCH_engine.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (arg.rfind("--json=", 0) == 0) {
      json = true;
      path = arg.substr(7);
    } else if (arg == "--smoke") {
      smoke = true;
    } else if (arg.rfind("--validate=", 0) == 0) {
      return validate_json(arg.substr(11)) ? 0 : 1;
    }
  }
  if (json) return json_sweep(path, smoke);

  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
