#include "fastroute/fastroute.hpp"

#include <algorithm>

#include "core/assert.hpp"
#include "fastroute/bounds.hpp"
#include "fastroute/tiling.hpp"

namespace mr {

namespace {

/// One clockwise quarter-turn of the mesh: (c, r) → (r, n−1−c).
Coord rot_cw(Coord c, std::int32_t n) { return Coord{c.row, n - 1 - c.col}; }

/// Class of a packet from its source→dest displacement. 0 NE (north or
/// northeast), 1 NW (west or northwest), 2 SW (south or southwest),
/// 3 SE (east or southeast).
int classify_packet(Coord src, Coord dst) {
  const std::int32_t dx = dst.col - src.col;
  const std::int32_t dy = dst.row - src.row;
  if (dy > 0 && dx >= 0) return 0;
  if (dx < 0 && dy >= 0) return 1;
  if (dy < 0 && dx <= 0) return 2;
  return 3;  // dx > 0 && dy <= 0 (also the degenerate dx==dy==0 case)
}

/// Rotations needed to map each class onto canonical NE.
constexpr int kRotations[4] = {0, 1, 2, 3};  // NE, NW, SW, SE

}  // namespace

FastRouteAlgorithm::FastRouteAlgorithm(Options options) : options_(options) {
  MR_REQUIRE(options_.q0 >= 1 && options_.q_later >= 1);
}

const char* FastRouteAlgorithm::kind_name(Kind k) {
  switch (k) {
    case Kind::March: return "March";
    case Kind::SortSmoothEven: return "Sort&Smooth(even)";
    case Kind::SortSmoothOdd: return "Sort&Smooth(odd)";
    case Kind::Balance: return "Balance";
    case Kind::BaseCase: return "BaseCase";
  }
  return "?";
}

const char* FastRouteAlgorithm::class_name(int cls) {
  constexpr const char* names[4] = {"NE", "NW", "SW", "SE"};
  return names[cls & 3];
}

void FastRouteAlgorithm::build_schedule(std::int32_t n) {
  segments_.clear();
  Step t = 0;
  auto push = [&](Kind kind, int cls, int j, int tiling, bool horizontal,
                  std::int32_t tile, std::int32_t d, Step length) {
    Segment seg;
    seg.kind = kind;
    seg.cls = cls;
    seg.j = j;
    seg.tiling = tiling;
    seg.horizontal = horizontal;
    seg.tile = tile;
    seg.d = d;
    seg.start = t;
    seg.length = length;
    MR_REQUIRE(length >= 1);
    segments_.push_back(seg);
    t += length;
  };
  for (int cls = 0; cls < 4; ++cls) {
    for (std::int32_t tile = n, j = 0; tile >= 27; tile /= 3, ++j) {
      const std::int32_t d = tile / 27;
      const int q = j == 0 ? options_.q0 : options_.q_later;
      const Step march = static_cast<Step>(q) * d - 1;
      const Step ss = (d - 1) + static_cast<Step>(q) * d;
      const Step balance = 3 * static_cast<Step>(tile) - 4;
      for (const bool horizontal : {false, true}) {
        const int tilings = j == 0 ? 1 : 3;
        for (int o = 0; o < tilings; ++o) {
          push(Kind::March, cls, j, o, horizontal, tile, d, march);
          push(Kind::SortSmoothEven, cls, j, o, horizontal, tile, d, ss);
          push(Kind::SortSmoothOdd, cls, j, o, horizontal, tile, d, ss);
          push(Kind::Balance, cls, j, o, horizontal, tile, d, balance);
        }
      }
    }
    push(Kind::BaseCase, cls, 0, 0, false, 0, 0,
         FastRouteBounds::base_case_steps());
  }
  schedule_length_ = t;
}

void FastRouteAlgorithm::init(Sim& e) {
  n_ = e.mesh().width();
  MR_REQUIRE_MSG(e.mesh().height() == n_ && !e.mesh().is_torus(),
                 "fastroute needs a square mesh");
  std::int32_t m = n_;
  while (m % 3 == 0) m /= 3;
  MR_REQUIRE_MSG(m == 1 && n_ >= 27,
                 "fastroute needs n a power of 3, n >= 27 (got " << n_ << ")");
  MR_REQUIRE_MSG(e.queue_capacity() >= queue_bound(),
                 "engine queue capacity below the Lemma 28 bound "
                     << queue_bound());
  build_schedule(n_);

  const std::size_t np = e.num_packets();
  packet_class_.resize(np);
  prev_location_.resize(np);
  moved_north_at_.assign(np, -1);
  participates_.assign(np, 0);
  active_.assign(np, 0);
  dest_strip_.assign(np, 0);
  ss_forward_.assign(np, 0);
  const std::size_t nn = static_cast<std::size_t>(e.mesh().num_nodes());
  staged_count_.assign(nn, 0);
  ss_received_.assign(nn, 0);
  active_count_.assign(nn, 0);
  for (std::size_t i = 0; i < np; ++i) {
    const Packet& pk = e.packet(static_cast<PacketId>(i));
    packet_class_[i] = classify_packet(e.mesh().coord_of(pk.source),
                                       e.mesh().coord_of(pk.dest));
    prev_location_[i] = pk.location;
  }
  current_segment_ = 0;
  cached_step_ = 0;
  enter_segment(e, 0);
}

Coord FastRouteAlgorithm::to_canon(Coord real) const {
  Coord c = real;
  for (int r = 0; r < rotation_; ++r) c = rot_cw(c, n_);
  if (transposed_) std::swap(c.col, c.row);
  return c;
}

Dir FastRouteAlgorithm::canon_north_real() const { return canon_north_; }
Dir FastRouteAlgorithm::canon_east_real() const { return canon_east_; }

// (declarations kept in the header for test introspection)

std::int32_t FastRouteAlgorithm::tile_origin_row(Coord canon) const {
  const Segment& seg = segments_[current_segment_];
  const std::int32_t shift = seg.tiling * seg.tile / 3;
  return ((canon.row + shift) / seg.tile) * seg.tile - shift;
}

std::int32_t FastRouteAlgorithm::tile_origin_col(Coord canon) const {
  const Segment& seg = segments_[current_segment_];
  const std::int32_t shift = seg.tiling * seg.tile / 3;
  return ((canon.col + shift) / seg.tile) * seg.tile - shift;
}

std::int32_t FastRouteAlgorithm::strip_of(Coord canon) const {
  const Segment& seg = segments_[current_segment_];
  return (canon.row - tile_origin_row(canon)) / seg.d;
}

void FastRouteAlgorithm::enter_segment(Sim& e, std::size_t idx) {
  current_segment_ = idx;
  if (idx >= segments_.size()) return;
  Segment& seg = segments_[idx];
  rotation_ = kRotations[seg.cls];
  transposed_ = seg.horizontal;
  q_ = seg.j == 0 ? options_.q0 : options_.q_later;

  // Resolve which real directions are canonical north/east by transforming
  // the unit deltas: rot_cw maps delta (a,b) → (b,−a).
  auto canon_delta = [&](Dir d) {
    std::int32_t a = 0, b = 0;
    switch (d) {
      case Dir::North: b = 1; break;
      case Dir::South: b = -1; break;
      case Dir::East: a = 1; break;
      case Dir::West: a = -1; break;
    }
    for (int r = 0; r < rotation_; ++r) {
      const std::int32_t na = b, nb = -a;
      a = na;
      b = nb;
    }
    if (transposed_) std::swap(a, b);
    return std::pair{a, b};
  };
  for (Dir d : kAllDirs) {
    const auto [a, b] = canon_delta(d);
    if (a == 0 && b == 1) canon_north_ = d;
    if (a == 1 && b == 0) canon_east_ = d;
  }

  if (seg.kind == Kind::March) {
    // Subphase start: freeze participation and activity (§6.1 step 1).
    std::fill(staged_count_.begin(), staged_count_.end(), 0);
    for (std::size_t i = 0; i < packet_class_.size(); ++i) {
      const PacketId p = static_cast<PacketId>(i);
      participates_[i] = 0;
      active_[i] = 0;
      if (packet_class_[i] != seg.cls) continue;
      const Packet& pk = e.packet(p);
      if (pk.delivered() || pk.location == kInvalidNode) continue;
      const Coord loc = to_canon(e.mesh().coord_of(pk.location));
      const Coord dst = to_canon(e.mesh().coord_of(pk.dest));
      if (tile_origin_row(loc) != tile_origin_row(dst) ||
          tile_origin_col(loc) != tile_origin_col(dst)) {
        continue;  // location and destination not in a common tile
      }
      participates_[i] = 1;
      dest_strip_[i] = strip_of(dst);
      if (dest_strip_[i] - strip_of(loc) >= 3) {
        active_[i] = 1;
        if (strip_of(loc) == dest_strip_[i] - 3)
          ++staged_count_[pk.location];
      }
    }
  } else if (seg.kind == Kind::SortSmoothEven ||
             seg.kind == Kind::SortSmoothOdd) {
    std::fill(ss_received_.begin(), ss_received_.end(), 0);
    std::fill(ss_forward_.begin(), ss_forward_.end(), 0);
  } else if (seg.kind == Kind::Balance) {
    std::fill(active_count_.begin(), active_count_.end(), 0);
    for (std::size_t i = 0; i < packet_class_.size(); ++i) {
      if (!active_[i]) continue;
      const Packet& pk = e.packet(static_cast<PacketId>(i));
      if (pk.delivered() || pk.location == kInvalidNode) continue;
      ++active_count_[pk.location];
      seg.peak_active_per_node =
          std::max(seg.peak_active_per_node, active_count_[pk.location]);
    }
  } else if (seg.kind == Kind::BaseCase) {
    // Everyone undelivered in the class participates; Lemma 18 places them
    // within 2 rows and 2 columns of their destinations.
    for (std::size_t i = 0; i < packet_class_.size(); ++i) {
      participates_[i] = 0;
      active_[i] = 0;
      if (packet_class_[i] != seg.cls) continue;
      const Packet& pk = e.packet(static_cast<PacketId>(i));
      if (pk.delivered() || pk.location == kInvalidNode) continue;
      participates_[i] = 1;
      active_[i] = 1;
      const Coord loc = to_canon(e.mesh().coord_of(pk.location));
      const Coord dst = to_canon(e.mesh().coord_of(pk.dest));
      MR_REQUIRE_MSG(dst.col - loc.col <= 2 && dst.row - loc.row <= 2,
                     "Lemma 18 violated: packet too far from destination at "
                     "base case ("
                         << dst.col - loc.col << "," << dst.row - loc.row
                         << ")");
    }
  }
}

void FastRouteAlgorithm::check_segment_end(Sim& e, const Segment& seg) {
  // Per-phase postconditions (Lemmas 29–32).
  for (std::size_t i = 0; i < packet_class_.size(); ++i) {
    if (packet_class_[i] != seg.cls) continue;
    const Packet& pk = e.packet(static_cast<PacketId>(i));
    if (pk.delivered() || pk.location == kInvalidNode) {
      MR_REQUIRE_MSG(seg.kind == Kind::BaseCase || !active_[i],
                     "active packet delivered mid-subphase");
      continue;
    }
    if (!participates_[i] || !active_[i]) {
      if (seg.kind == Kind::BaseCase) {
        MR_REQUIRE_MSG(!participates_[i],
                       "Lemma 32 violated: base case left packet "
                           << pk.id << " undelivered");
      }
      continue;
    }
    const Coord loc = to_canon(e.mesh().coord_of(pk.location));
    const std::int32_t s = strip_of(loc);
    switch (seg.kind) {
      case Kind::March:
        MR_REQUIRE_MSG(s == dest_strip_[i] - 3,
                       "Lemma 29 violated: active packet not in its staging "
                       "strip after the March (strip "
                           << s << ", staging " << dest_strip_[i] - 3 << ")");
        break;
      case Kind::SortSmoothEven:
        if (dest_strip_[i] % 2 == 0)
          MR_REQUIRE_MSG(s == dest_strip_[i] - 2,
                         "Lemma 30 violated (even substep)");
        break;
      case Kind::SortSmoothOdd:
        MR_REQUIRE_MSG(s == dest_strip_[i] - 2,
                       "Lemma 30 violated (odd substep), strip "
                           << s << " vs " << dest_strip_[i] - 2);
        break;
      case Kind::Balance:
        break;  // per-node bound checked below
      case Kind::BaseCase:
        MR_REQUIRE_MSG(false, "Lemma 32 violated: packet survived base case");
    }
  }
  if (seg.kind == Kind::Balance) {
    // Lemma 24: at most two active packets end Balancing in any node.
    for (std::size_t u = 0; u < active_count_.size(); ++u) {
      MR_REQUIRE_MSG(active_count_[u] <= 2,
                     "Lemma 24 violated: " << active_count_[u]
                                           << " active packets in node " << u
                                           << " after Balancing");
    }
  }
}

void FastRouteAlgorithm::detect_moves(Sim& e) {
  if (current_segment_ >= segments_.size()) return;
  Segment& seg = segments_[current_segment_];
  const Step t = e.step();  // moves being detected happened at step t−1
  for (std::size_t i = 0; i < packet_class_.size(); ++i) {
    if (packet_class_[i] != seg.cls) continue;
    const PacketId p = static_cast<PacketId>(i);
    const Packet& pk = e.packet(p);
    const NodeId now = pk.location;
    const NodeId before = prev_location_[i];
    if (now == before) continue;
    prev_location_[i] = now;
    ++seg.moves;
    seg.last_move_offset = (t - 1) - seg.start;
    if (!participates_[i]) continue;

    const Coord canon_before = to_canon(e.mesh().coord_of(before));
    const Coord canon_now =
        now == kInvalidNode ? canon_before : to_canon(e.mesh().coord_of(now));
    const bool moved_north = now != kInvalidNode &&
                             canon_now.row == canon_before.row + 1 &&
                             canon_now.col == canon_before.col;
    if (moved_north) moved_north_at_[i] = t - 1;

    switch (seg.kind) {
      case Kind::March: {
        if (!active_[i]) break;
        const std::int32_t staging = dest_strip_[i] - 3;
        if (strip_of(canon_before) == staging) --staged_count_[before];
        if (now != kInvalidNode && strip_of(canon_now) == staging) {
          ++staged_count_[now];
          seg.peak_active_per_node =
              std::max(seg.peak_active_per_node, staged_count_[now]);
          MR_REQUIRE_MSG(staged_count_[now] <= q_,
                         "March staging capacity q exceeded");
        }
        break;
      }
      case Kind::SortSmoothEven:
      case Kind::SortSmoothOdd: {
        if (!active_[i] || now == kInvalidNode) break;
        if (strip_of(canon_now) == dest_strip_[i] - 2) {
          // Entered (or advanced within) strip i−2: the receiving node
          // counts it; the t-th node from the strip's north end holds
          // every t-th packet it receives and forwards the rest.
          const std::int32_t row_in_strip =
              canon_now.row - tile_origin_row(canon_now) -
              (dest_strip_[i] - 2) * seg.d;
          const std::int64_t t_n = seg.d - row_in_strip;
          const std::int64_t count = ++ss_received_[now];
          ss_forward_[i] = (count % t_n) != 0 ? 1 : 0;
        } else {
          ss_forward_[i] = 0;  // still merging inside strip i−3
        }
        break;
      }
      case Kind::Balance: {
        if (!active_[i]) break;
        --active_count_[before];
        if (now != kInvalidNode) {
          ++active_count_[now];
          seg.peak_active_per_node =
              std::max(seg.peak_active_per_node, active_count_[now]);
        }
        break;
      }
      case Kind::BaseCase:
        break;
    }
  }
}

void FastRouteAlgorithm::refresh(Sim& e) {
  const Step t = e.step();
  if (t == cached_step_) return;
  MR_REQUIRE(t == cached_step_ + 1);
  cached_step_ = t;
  detect_moves(e);
  while (current_segment_ < segments_.size() &&
         t > segments_[current_segment_].start +
                 segments_[current_segment_].length) {
    check_segment_end(e, segments_[current_segment_]);
    enter_segment(e, current_segment_ + 1);
  }
}

void FastRouteAlgorithm::plan_out(Sim& e, NodeId u, OutPlan& plan) {
  refresh(e);
  if (current_segment_ >= segments_.size()) return;
  switch (segments_[current_segment_].kind) {
    case Kind::March: plan_march(e, u, plan); break;
    case Kind::SortSmoothEven: plan_sort_smooth(e, u, plan, true); break;
    case Kind::SortSmoothOdd: plan_sort_smooth(e, u, plan, false); break;
    case Kind::Balance: plan_balance(e, u, plan); break;
    case Kind::BaseCase: plan_base_case(e, u, plan); break;
  }
}

void FastRouteAlgorithm::plan_in(Sim& e, NodeId, std::span<const Offer> offers,
                                 InPlan& plan) {
  refresh(e);
  // All refusal logic is sender-side (a node can observe its neighbour's
  // staging occupancy); the engine still validates the Lemma 28 capacity.
  plan.accept.assign(offers.size(), true);
}

void FastRouteAlgorithm::plan_march(Sim& e, NodeId u, OutPlan& plan) {
  const Segment& seg = segments_[current_segment_];
  const Step t = e.step();
  const NodeId north = e.mesh().neighbor(u, canon_north_);
  if (north == kInvalidNode) return;
  const Coord canon_north_coord = to_canon(e.mesh().coord_of(north));

  PacketId best = kInvalidPacket;
  int best_rank = 0;  // lower is better
  Step best_arrived = 0;
  for (PacketId p : e.packets_at(u)) {
    const std::size_t i = static_cast<std::size_t>(p);
    if (packet_class_[i] != seg.cls || !active_[i]) continue;
    const Coord loc = to_canon(e.mesh().coord_of(u));
    const std::int32_t s = strip_of(loc);
    const std::int32_t staging = dest_strip_[i] - 3;
    bool wants = false;
    if (s < staging) {
      wants = true;  // transit northward
    } else if (s == staging && strip_of(canon_north_coord) == staging) {
      wants = true;  // pack farther north within the staging strip
    }
    if (!wants) continue;
    // The staging node refuses packets of its group once it holds q.
    if (strip_of(canon_north_coord) == staging &&
        staged_count_[north] >= q_) {
      continue;
    }
    // Priority (Lemma 29): the packet that moved north last step first,
    // then transit before packing, then FIFO.
    const bool convoy = moved_north_at_[i] == t - 1;
    const int rank = (convoy ? 0 : 2) + (s < staging ? 0 : 1);
    const Step arrived = e.packet(p).arrived_at;
    if (best == kInvalidPacket || rank < best_rank ||
        (rank == best_rank && arrived < best_arrived)) {
      best = p;
      best_rank = rank;
      best_arrived = arrived;
    }
  }
  if (best != kInvalidPacket) plan.schedule(canon_north_, best);
}

void FastRouteAlgorithm::plan_sort_smooth(Sim& e, NodeId u, OutPlan& plan,
                                          bool even) {
  const Segment& seg = segments_[current_segment_];
  const Coord loc = to_canon(e.mesh().coord_of(u));
  const std::int32_t s = strip_of(loc);
  const Step local = e.step() - seg.start;  // 1-based within the segment

  // Role 1: node of strip i−3 (stash): from local step t_pos on, send the
  // stashed packet with the farthest east to go.
  const std::int32_t row_in_strip = loc.row - tile_origin_row(loc) -
                                    s * seg.d;
  const std::int32_t t_pos = row_in_strip + 1;  // 1 = southernmost
  PacketId stash_best = kInvalidPacket;
  std::int32_t stash_dist = -1;
  // Role 2: node of strip i−2: forward the marked packets FIFO.
  PacketId fwd_best = kInvalidPacket;
  Step fwd_arrived = 0;

  for (PacketId p : e.packets_at(u)) {
    const std::size_t i = static_cast<std::size_t>(p);
    if (packet_class_[i] != seg.cls || !active_[i]) continue;
    if ((dest_strip_[i] % 2 == 0) != even) continue;
    const Packet& pk = e.packet(p);
    const Coord dst = to_canon(e.mesh().coord_of(pk.dest));
    if (s == dest_strip_[i] - 3) {
      if (local < t_pos) continue;
      const std::int32_t dist = dst.col - loc.col;
      if (dist > stash_dist) {
        stash_dist = dist;
        stash_best = p;
      }
    } else if (s == dest_strip_[i] - 2 && ss_forward_[i]) {
      if (fwd_best == kInvalidPacket || pk.arrived_at < fwd_arrived) {
        fwd_best = p;
        fwd_arrived = pk.arrived_at;
      }
    }
  }
  // A node is in strip i−3 for one parity and i−2 for the other, so at most
  // one of the two roles is live in any substep; prefer the stash if both
  // somehow apply.
  const PacketId chosen =
      stash_best != kInvalidPacket ? stash_best : fwd_best;
  if (chosen != kInvalidPacket) plan.schedule(canon_north_, chosen);
}

void FastRouteAlgorithm::plan_balance(Sim& e, NodeId u, OutPlan& plan) {
  const Segment& seg = segments_[current_segment_];
  if (active_count_[u] <= 2) return;  // the 2-rule
  const Coord loc = to_canon(e.mesh().coord_of(u));
  PacketId best = kInvalidPacket;
  std::int32_t best_dist = 0;
  for (PacketId p : e.packets_at(u)) {
    const std::size_t i = static_cast<std::size_t>(p);
    if (packet_class_[i] != seg.cls || !active_[i]) continue;
    const Coord dst = to_canon(e.mesh().coord_of(e.packet(p).dest));
    const std::int32_t dist = dst.col - loc.col;
    if (dist > best_dist) {
      best_dist = dist;
      best = p;
    }
  }
  // Lemmas 16/17 guarantee a node with > 2 active packets holds one with
  // ground still to cover eastward; otherwise the invariant broke.
  MR_REQUIRE_MSG(best != kInvalidPacket,
                 "2-rule found no eastward-profitable active packet (Lemma "
                 "16/17 violated) at node "
                     << u);
  plan.schedule(canon_east_, best);
}

void FastRouteAlgorithm::plan_base_case(Sim& e, NodeId u, OutPlan& plan) {
  const Segment& seg = segments_[current_segment_];
  const Coord loc = to_canon(e.mesh().coord_of(u));
  PacketId east_best = kInvalidPacket, north_best = kInvalidPacket;
  std::int32_t east_dist = 0, north_dist = 0;
  for (PacketId p : e.packets_at(u)) {
    const std::size_t i = static_cast<std::size_t>(p);
    if (packet_class_[i] != seg.cls) continue;
    const Coord dst = to_canon(e.mesh().coord_of(e.packet(p).dest));
    const std::int32_t de = dst.col - loc.col;
    const std::int32_t dn = dst.row - loc.row;
    if (de > 0) {
      if (de > east_dist) {
        east_dist = de;
        east_best = p;
      }
    } else if (dn > 0) {
      if (dn > north_dist) {
        north_dist = dn;
        north_best = p;
      }
    }
  }
  if (east_best != kInvalidPacket) plan.schedule(canon_east_, east_best);
  if (north_best != kInvalidPacket) plan.schedule(canon_north_, north_best);
}

}  // namespace mr
