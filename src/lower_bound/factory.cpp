#include "lower_bound/factory.hpp"

#include "core/assert.hpp"
#include "lower_bound/dim_order_construction.hpp"
#include "lower_bound/main_construction.hpp"

namespace mr {

std::vector<std::string> adversarial_family_names() {
  return {"main", "dim-order", "torus"};
}

AdversarialInstance adversarial_instance(const std::string& family,
                                         std::int32_t n, int k,
                                         const std::string& algorithm) {
  AdversarialInstance out;
  out.width = n;
  out.height = n;
  if (family == "main") {
    const MainLbParams par = main_lb_params(n, k);
    if (!par.valid) return out;
    MainConstruction construction(Mesh::square(n), par);
    auto run = construction.run_construction(algorithm, k);
    out.valid = true;
    out.permutation = std::move(run.constructed);
    out.certified_steps = par.certified_steps;
    out.classes = par.classes;
    out.exchanges = run.exchanges;
    return out;
  }
  if (family == "dim-order") {
    const DimOrderLbParams par = dim_order_lb_params(n, k);
    if (!par.valid) return out;
    DimOrderConstruction construction(Mesh::square(n), par);
    auto run = construction.run_construction(algorithm, k);
    out.valid = true;
    out.permutation = std::move(run.constructed);
    out.certified_steps = par.certified_steps;
    out.classes = par.classes;
    out.exchanges = run.exchanges;
    return out;
  }
  if (family == "torus") {
    // §5c: the mesh construction occupies the m×m quadrant (columns and
    // rows [0, m)) of a 2m×2m torus. Every quadrant-internal shortest path
    // avoids the wrap links, so the adversary's argument — and the
    // certified step count — carries over unchanged.
    out.topology = "torus";
    if (n % 2 != 0) return out;
    const std::int32_t m = n / 2;
    const MainLbParams par = main_lb_params(m, k);
    if (!par.valid) return out;
    MainConstruction construction(Mesh::square(n, /*torus=*/true), par);
    auto run = construction.run_construction(algorithm, k);
    out.valid = true;
    out.permutation = std::move(run.constructed);
    out.certified_steps = par.certified_steps;
    out.classes = par.classes;
    out.exchanges = run.exchanges;
    return out;
  }
  MR_REQUIRE_MSG(false, "unknown adversarial family '" << family << "'");
  return out;
}

Workload retarget(const Workload& w, const Topology& from,
                  const Topology& to) {
  MR_REQUIRE(to.width() >= from.width() && to.height() >= from.height());
  Workload out;
  out.reserve(w.size());
  for (const Demand& d : w) {
    const Coord s = from.coord_of(d.source);
    const Coord t = from.coord_of(d.dest);
    out.push_back(
        Demand{to.id_of(s.col, s.row), to.id_of(t.col, t.row), d.injected_at});
  }
  return out;
}

}  // namespace mr
