// Additional §6 coverage: degenerate workloads, direction classes, partial
// permutations, schedule structure of the improved variant, and segment
// accounting.
#include <gtest/gtest.h>

#include "fastroute/bounds.hpp"
#include "fastroute/fastroute.hpp"
#include "sim/engine.hpp"
#include "topo/mesh.hpp"
#include "workload/permutation.hpp"

namespace mr {
namespace {

struct FastRun {
  Step steps = 0;
  bool delivered = false;
  int max_queue = 0;
};

FastRun go(std::int32_t n, const Workload& w,
       FastRouteAlgorithm::Options options =
           FastRouteAlgorithm::Options::baseline()) {
  const Mesh mesh = Mesh::square(n);
  FastRouteAlgorithm algo(options);
  Engine::Config config;
  config.queue_capacity = algo.queue_bound();
  config.stall_limit = 0;
  Engine e(mesh, config, algo);
  for (const Demand& d : w) e.add_packet(d.source, d.dest, d.injected_at);
  e.prepare();
  FastRun r;
  r.steps = e.run(algo.schedule_length() + 1);
  r.delivered = e.all_delivered();
  r.max_queue = e.max_occupancy_seen();
  return r;
}

TEST(FastRouteExtra, EmptyWorkload) {
  const FastRun r = go(27, {});
  EXPECT_TRUE(r.delivered);
  EXPECT_EQ(r.steps, 0);
}

TEST(FastRouteExtra, AllFourDirectionClasses) {
  const Mesh mesh = Mesh::square(27);
  Workload w;
  w.push_back(Demand{mesh.id_of(2, 2), mesh.id_of(20, 22), 0});   // NE
  w.push_back(Demand{mesh.id_of(24, 3), mesh.id_of(4, 21), 0});   // NW
  w.push_back(Demand{mesh.id_of(22, 23), mesh.id_of(3, 2), 0});   // SW
  w.push_back(Demand{mesh.id_of(1, 25), mesh.id_of(19, 5), 0});   // SE
  // Pure axis movers, one per class convention.
  w.push_back(Demand{mesh.id_of(5, 5), mesh.id_of(5, 20), 0});    // N (NE)
  w.push_back(Demand{mesh.id_of(20, 8), mesh.id_of(4, 8), 0});    // W (NW)
  w.push_back(Demand{mesh.id_of(9, 20), mesh.id_of(9, 4), 0});    // S (SW)
  w.push_back(Demand{mesh.id_of(3, 13), mesh.id_of(22, 13), 0});  // E (SE)
  const FastRun r = go(27, w);
  EXPECT_TRUE(r.delivered);
}

TEST(FastRouteExtra, SelfDeliveries) {
  const Mesh mesh = Mesh::square(27);
  Workload w;
  for (NodeId u = 0; u < 27; ++u) w.push_back(Demand{u, u, 0});
  const FastRun r = go(27, w);
  EXPECT_TRUE(r.delivered);
  EXPECT_EQ(r.steps, 0);  // everything delivered at injection
}

TEST(FastRouteExtra, HalfLoadPartialPermutation) {
  const Mesh mesh = Mesh::square(27);
  const FastRun r = go(27, random_partial_permutation(mesh, 0.5, 9));
  EXPECT_TRUE(r.delivered);
}

TEST(FastRouteExtra, AdjacentDestinations) {
  // Every packet one hop from home: exercised almost entirely by the base
  // cases.
  const Mesh mesh = Mesh::square(27);
  Workload w;
  for (std::int32_t c = 0; c + 1 < 27; c += 2)
    for (std::int32_t r = 0; r < 27; r += 2)
      w.push_back(Demand{mesh.id_of(c, r), mesh.id_of(c + 1, r), 0});
  const FastRun r = go(27, w);
  EXPECT_TRUE(r.delivered);
}

TEST(FastRouteExtra, RotationWorkload) {
  const Mesh mesh = Mesh::square(27);
  const FastRun r = go(27, rotation(mesh, 13, 7));
  EXPECT_TRUE(r.delivered);
  EXPECT_LE(r.steps, FastRouteBounds::theorem34_steps(27));
}

TEST(FastRouteExtra, ScheduleAccounting) {
  FastRouteAlgorithm algo;
  const Mesh mesh = Mesh::square(81);
  Engine::Config config;
  config.queue_capacity = algo.queue_bound();
  Engine e(mesh, config, algo);
  e.add_packet(0, mesh.num_nodes() - 1);
  e.prepare();
  // Segments are contiguous, cover [0, schedule_length), and respect the
  // per-iteration structure: j=0 has 1 tiling, j=1 has 3, each phase is
  // March, SSeven, SSodd, Balance; plus one base case per class.
  Step expected_start = 0;
  int base_cases = 0;
  for (const auto& seg : algo.segments()) {
    EXPECT_EQ(seg.start, expected_start);
    EXPECT_GE(seg.length, 1);
    expected_start += seg.length;
    if (seg.kind == FastRouteAlgorithm::Kind::BaseCase) {
      ++base_cases;
      EXPECT_EQ(seg.length, FastRouteBounds::base_case_steps());
    }
    if (seg.kind == FastRouteAlgorithm::Kind::March) {
      const int q = seg.j == 0 ? 408 : 408;
      EXPECT_EQ(seg.length, Step(q) * seg.d - 1);
    }
    if (seg.kind == FastRouteAlgorithm::Kind::Balance)
      EXPECT_EQ(seg.length, 3 * Step(seg.tile) - 4);
  }
  EXPECT_EQ(expected_start, algo.schedule_length());
  EXPECT_EQ(base_cases, 4);
  // n=81: per class (1 + 3) tilings × 2 phases × 4 segments + base = 33.
  EXPECT_EQ(algo.segments().size(), 4u * (4u * 2u * 4u + 1u));
}

TEST(FastRouteExtra, ImprovedScheduleUsesSmallerQ) {
  FastRouteAlgorithm base(FastRouteAlgorithm::Options::baseline());
  FastRouteAlgorithm improved(FastRouteAlgorithm::Options::improved());
  const Mesh mesh = Mesh::square(81);
  for (FastRouteAlgorithm* a : {&base, &improved}) {
    Engine::Config config;
    config.queue_capacity = a->queue_bound();
    Engine e(mesh, config, *a);
    e.add_packet(0, 5);
    e.prepare();
  }
  // Same number of segments, shorter j>=1 March/SS segments.
  ASSERT_EQ(base.segments().size(), improved.segments().size());
  bool some_shorter = false;
  for (std::size_t i = 0; i < base.segments().size(); ++i) {
    const auto& b = base.segments()[i];
    const auto& m = improved.segments()[i];
    EXPECT_EQ(int(b.kind), int(m.kind));
    if (b.j >= 1 && b.kind == FastRouteAlgorithm::Kind::March) {
      EXPECT_LT(m.length, b.length);
      some_shorter = true;
    }
  }
  EXPECT_TRUE(some_shorter);
  EXPECT_LT(improved.schedule_length(), base.schedule_length());
}

TEST(FastRouteExtra, KindAndClassNames) {
  EXPECT_STREQ(FastRouteAlgorithm::kind_name(
                   FastRouteAlgorithm::Kind::March),
               "March");
  EXPECT_STREQ(FastRouteAlgorithm::class_name(0), "NE");
  EXPECT_STREQ(FastRouteAlgorithm::class_name(3), "SE");
}

}  // namespace
}  // namespace mr
