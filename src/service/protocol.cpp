#include "service/protocol.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace mr {
namespace {

std::string errno_string(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

/// Reads exactly `len` bytes; false on EOF-mid-read or error. *eof is set
/// when zero bytes were read before the stream ended (clean close).
bool read_exact(int fd, void* buf, std::size_t len, bool* eof,
                std::string* error) {
  auto* p = static_cast<char*>(buf);
  std::size_t got = 0;
  while (got < len) {
    const ssize_t n = ::recv(fd, p + got, len - got, 0);
    if (n > 0) {
      got += static_cast<std::size_t>(n);
      continue;
    }
    if (n == 0) {
      if (got == 0 && eof != nullptr) {
        *eof = true;
        return false;
      }
      *error = "connection closed mid-frame";
      return false;
    }
    if (errno == EINTR) continue;
    *error = errno_string("recv");
    return false;
  }
  return true;
}

}  // namespace

bool read_frame(int fd, std::string* payload, std::string* error) {
  error->clear();
  unsigned char len_le[4];
  bool eof = false;
  if (!read_exact(fd, len_le, sizeof len_le, &eof, error))
    return false;  // clean EOF leaves *error empty
  const std::uint32_t len = static_cast<std::uint32_t>(len_le[0]) |
                            static_cast<std::uint32_t>(len_le[1]) << 8 |
                            static_cast<std::uint32_t>(len_le[2]) << 16 |
                            static_cast<std::uint32_t>(len_le[3]) << 24;
  if (len > kMaxFrameBytes) {
    *error = "frame length " + std::to_string(len) + " exceeds limit";
    return false;
  }
  payload->resize(len);
  if (len == 0) return true;
  return read_exact(fd, payload->data(), len, nullptr, error);
}

bool write_frame(int fd, const std::string& payload, std::string* error) {
  if (payload.size() > kMaxFrameBytes) {
    *error = "frame payload exceeds limit";
    return false;
  }
  const std::uint32_t len = static_cast<std::uint32_t>(payload.size());
  std::string buf;
  buf.reserve(4 + payload.size());
  buf.push_back(static_cast<char>(len & 0xFF));
  buf.push_back(static_cast<char>((len >> 8) & 0xFF));
  buf.push_back(static_cast<char>((len >> 16) & 0xFF));
  buf.push_back(static_cast<char>((len >> 24) & 0xFF));
  buf += payload;
  std::size_t sent = 0;
  while (sent < buf.size()) {
    const ssize_t n =
        ::send(fd, buf.data() + sent, buf.size() - sent, MSG_NOSIGNAL);
    if (n >= 0) {
      sent += static_cast<std::size_t>(n);
      continue;
    }
    if (errno == EINTR) continue;
    *error = errno_string("send");
    return false;
  }
  return true;
}

int listen_unix(const std::string& path, std::string* error) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof addr.sun_path) {
    *error = "socket path too long: " + path;
    return -1;
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);

  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    *error = errno_string("socket");
    return -1;
  }
  ::unlink(path.c_str());  // a stale file from a dead daemon blocks bind
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) < 0) {
    *error = errno_string("bind");
    ::close(fd);
    return -1;
  }
  if (::listen(fd, 16) < 0) {
    *error = errno_string("listen");
    ::close(fd);
    return -1;
  }
  return fd;
}

int connect_unix(const std::string& path, std::string* error) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof addr.sun_path) {
    *error = "socket path too long: " + path;
    return -1;
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);

  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    *error = errno_string("socket");
    return -1;
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) <
      0) {
    *error = errno_string("connect");
    ::close(fd);
    return -1;
  }
  return fd;
}

}  // namespace mr
