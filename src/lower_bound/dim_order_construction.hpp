// §5 "Dimension Order Routing": the Ω(n²/k) construction for
// destination-exchangeable dimension-order routers.
//
// Senders are the westernmost (1−c)n nodes of the cn southernmost rows;
// the N_i-column is the ((1−c)n−1+i)-th column and the i-box is everything
// west of (and including) it within the southernmost cn rows. There is a
// single exchange rule: an N_j-packet (j > i) scheduled to enter the
// N_i-column during steps 1..i·dn is exchanged with an N_i-packet in the
// (i−1)-box not scheduled to enter that column.
#pragma once

#include <string>
#include <vector>

#include "lower_bound/constants.hpp"
#include "sim/engine.hpp"
#include "topo/mesh.hpp"
#include "workload/permutation.hpp"

namespace mr {

class DimOrderConstruction {
 public:
  DimOrderConstruction(const Mesh& mesh, const DimOrderLbParams& params);

  Step certified_steps() const { return certified_; }
  std::int64_t num_classes() const { return classes_; }

  /// 0-based column of the N_i-column.
  std::int32_t line(std::int64_t i) const {
    return static_cast<std::int32_t>(n_ - cn_ - 2 + i);
  }

  /// Class index of a packet, or 0 if unclassed (source must be a sender
  /// node; destination in an N_i-column at row ≥ cn).
  std::int64_t classify(Coord source, Coord dest) const;

  Workload placement() const;

  struct RunResult {
    Step steps = 0;
    std::size_t exchanges = 0;
    std::size_t undelivered = 0;
    std::vector<std::uint64_t> stepwise_nodest_fingerprints;
    std::uint64_t final_fingerprint = 0;
    Workload constructed;
  };
  RunResult run_construction(const std::string& algorithm, int k);

  struct ReplayResult {
    RunResult construction;
    bool stepwise_match = true;
    bool final_match = true;
    Step first_mismatch = -1;
    std::size_t undelivered_at_certified = 0;
    Step replay_total_steps = 0;
    bool replay_all_delivered = false;
  };
  ReplayResult verify_replay(const std::string& algorithm, int k,
                             Step replay_budget = 0);

 private:
  Mesh mesh_;
  std::int32_t n_;
  int k_;
  std::int32_t cn_;
  std::int32_t dn_;
  std::int64_t p_;
  std::int64_t classes_;
  Step certified_;
};

}  // namespace mr
