// §6 algorithm (Theorem 34): correctness (delivery + minimality), the
// Lemma 28 queue bound, the Theorem 34 / improved step bounds, and the
// Lemma 19 tiling cover property. The per-phase Lemmas 29–32 are checked
// online by FastRouteAlgorithm itself (it throws on violation), so any
// completed run certifies them.
#include <gtest/gtest.h>

#include "fastroute/bounds.hpp"
#include "fastroute/fastroute.hpp"
#include "fastroute/tiling.hpp"
#include "sim/engine.hpp"
#include "topo/mesh.hpp"
#include "workload/permutation.hpp"

namespace mr {
namespace {

struct FastRunResult {
  Step steps = 0;
  bool all_delivered = false;
  int max_queue = 0;
  Step schedule_length = 0;
};

FastRunResult run_fastroute(std::int32_t n, const Workload& w,
                            FastRouteAlgorithm::Options options =
                                FastRouteAlgorithm::Options::baseline()) {
  const Mesh mesh = Mesh::square(n);
  FastRouteAlgorithm algo(options);
  Engine::Config config;
  config.queue_capacity = 2 * options.q0 + 18;  // Lemma 28
  config.stall_limit = 0;  // idle phases are part of the schedule
  Engine e(mesh, config, algo);
  for (const Demand& d : w) e.add_packet(d.source, d.dest, d.injected_at);

  struct MinimalityCheck : Observer {
    void on_move(const Sim& eng, const Packet& p, NodeId from,
                 NodeId to) override {
      ASSERT_EQ(eng.mesh().distance(to, p.dest),
                eng.mesh().distance(from, p.dest) - 1);
    }
  } minimal;
  e.add_observer(&minimal);
  e.prepare();

  FastRunResult r;
  r.schedule_length = algo.schedule_length();
  r.steps = e.run(algo.schedule_length() + 1);
  r.all_delivered = e.all_delivered();
  r.max_queue = e.max_occupancy_seen();
  return r;
}

TEST(Tiling, OriginsPartitionTheMesh) {
  for (int offset = 0; offset < 3; ++offset) {
    const Tiling t(81, 27, offset);
    for (std::int32_t x = 0; x < 81; ++x) {
      const std::int32_t o = t.origin1d(x);
      EXPECT_LE(o, x);
      EXPECT_LT(x, o + 27);
      EXPECT_EQ((o + offset * 9) % 27, 0);
    }
  }
}

TEST(Tiling, Lemma19CoverExhaustive) {
  // Any two nodes within T/3 in both dimensions share a tile of one of the
  // three tilings — exhaustively on a 27-mesh with T = 9.
  const std::int32_t n = 27, T = 9, h = T / 3;
  for (std::int32_t ac = 0; ac < n; ++ac)
    for (std::int32_t ar = 0; ar < n; ++ar)
      for (std::int32_t dc = -h; dc <= h; ++dc)
        for (std::int32_t dr = -h; dr <= h; ++dr) {
          const Coord a{ac, ar};
          const Coord b{ac + dc, ar + dr};
          if (b.col < 0 || b.col >= n || b.row < 0 || b.row >= n) continue;
          EXPECT_NE(covering_tiling(n, T, a, b), -1)
              << "(" << ac << "," << ar << ") vs (" << b.col << "," << b.row
              << ")";
        }
}

TEST(FastRoute, ScheduleShape) {
  FastRouteAlgorithm algo;
  const Mesh mesh = Mesh::square(27);
  Engine::Config config;
  config.queue_capacity = algo.queue_bound();
  Engine e(mesh, config, algo);
  e.add_packet(0, mesh.num_nodes() - 1);
  e.prepare();
  // n = 27: per class one iteration (j=0, single tiling, vertical +
  // horizontal) and a base case: 4·(2·4 + 1) = 36 segments.
  EXPECT_EQ(algo.segments().size(), 36u);
  // Theorem 34: the schedule is below 972n even with the loose constants.
  EXPECT_LE(algo.schedule_length(), FastRouteBounds::theorem34_steps(27));
}

TEST(FastRoute, SinglePacket) {
  const Mesh mesh = Mesh::square(27);
  Workload w{Demand{mesh.id_of(3, 4), mesh.id_of(20, 22), 0}};
  const FastRunResult r = run_fastroute(27, w);
  EXPECT_TRUE(r.all_delivered);
}

TEST(FastRoute, RandomPermutation27) {
  const Mesh mesh = Mesh::square(27);
  const FastRunResult r = run_fastroute(27, random_permutation(mesh, 11));
  EXPECT_TRUE(r.all_delivered);
  EXPECT_LE(r.steps, FastRouteBounds::theorem34_steps(27));
  FastRouteBounds bounds;
  EXPECT_LE(r.max_queue, bounds.total_queue_bound());
}

TEST(FastRoute, Transpose27) {
  const Mesh mesh = Mesh::square(27);
  const FastRunResult r = run_fastroute(27, transpose(mesh));
  EXPECT_TRUE(r.all_delivered);
}

TEST(FastRoute, Mirror27) {
  const Mesh mesh = Mesh::square(27);
  const FastRunResult r = run_fastroute(27, mirror(mesh));
  EXPECT_TRUE(r.all_delivered);
}

TEST(FastRoute, RandomPermutation81) {
  const Mesh mesh = Mesh::square(81);
  const FastRunResult r = run_fastroute(81, random_permutation(mesh, 7));
  EXPECT_TRUE(r.all_delivered);
  EXPECT_LE(r.steps, FastRouteBounds::theorem34_steps(81));
}

TEST(FastRoute, ImprovedVariantIsFasterSchedule) {
  const Mesh mesh = Mesh::square(81);
  const FastRunResult baseline =
      run_fastroute(81, random_permutation(mesh, 7));
  const FastRunResult improved = run_fastroute(
      81, random_permutation(mesh, 7), FastRouteAlgorithm::Options::improved());
  EXPECT_TRUE(improved.all_delivered);
  EXPECT_LT(improved.schedule_length, baseline.schedule_length);
  EXPECT_LE(improved.steps, FastRouteBounds::improved_steps(81));
}

TEST(FastRoute, RejectsBadMeshes) {
  FastRouteAlgorithm algo;
  const Mesh mesh = Mesh::square(32);  // not a power of 3
  Engine::Config config;
  config.queue_capacity = algo.queue_bound();
  Engine e(mesh, config, algo);
  e.add_packet(0, 5);
  EXPECT_THROW(e.prepare(), InvariantViolation);
}

TEST(FastRoute, RejectsSmallQueueCapacity) {
  FastRouteAlgorithm algo;
  const Mesh mesh = Mesh::square(27);
  Engine::Config config;
  config.queue_capacity = 10;  // below the Lemma 28 bound
  Engine e(mesh, config, algo);
  e.add_packet(0, 5);
  EXPECT_THROW(e.prepare(), InvariantViolation);
}

}  // namespace
}  // namespace mr
