#include "scenarios.hpp"

namespace mr::scenarios {

void register_all(ScenarioRegistry& registry) {
  register_e01(registry);
  register_e02(registry);
  register_e03(registry);
  register_e04(registry);
  register_e05(registry);
  register_e06(registry);
  register_e07(registry);
  register_e08(registry);
  register_e09(registry);
  register_e10(registry);
  register_e11(registry);
  register_e12(registry);
  register_e13(registry);
  register_e14(registry);
  register_e15(registry);
  register_e16(registry);
  register_e17(registry);
  register_e18(registry);
  register_e19(registry);
  register_e20(registry);
  register_e21(registry);
  register_e22(registry);
}

ScenarioRegistry& builtin() {
  static ScenarioRegistry* registry = [] {
    auto* r = new ScenarioRegistry;
    register_all(*r);
    return r;
  }();
  return *registry;
}

}  // namespace mr::scenarios
