// core/parallel: exception propagation from workers and the
// MESHROUTE_THREADS override.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/parallel.hpp"

namespace mr {
namespace {

// Scoped setenv/unsetenv so a failing assertion can't leak the override
// into later tests.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    const char* old = std::getenv(name);
    if (old != nullptr) saved_ = old;
    had_value_ = old != nullptr;
    if (value != nullptr) {
      ::setenv(name, value, 1);
    } else {
      ::unsetenv(name);
    }
  }
  ~ScopedEnv() {
    if (had_value_) {
      ::setenv(name_.c_str(), saved_.c_str(), 1);
    } else {
      ::unsetenv(name_.c_str());
    }
  }

 private:
  std::string name_;
  std::string saved_;
  bool had_value_ = false;
};

TEST(Parallel, RunsEveryIndexExactlyOnce) {
  constexpr std::size_t kCount = 1000;
  std::vector<std::atomic<int>> hits(kCount);
  parallel_for(kCount, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < kCount; ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(Parallel, ExplicitThreadCountStillCoversAllIndices) {
  constexpr std::size_t kCount = 257;
  for (const std::size_t threads : {std::size_t{1}, std::size_t{3}}) {
    std::vector<std::atomic<int>> hits(kCount);
    parallel_for(kCount, [&](std::size_t i) { hits[i].fetch_add(1); },
                 threads);
    for (std::size_t i = 0; i < kCount; ++i) EXPECT_EQ(hits[i].load(), 1);
  }
}

TEST(Parallel, WorkerExceptionPropagatesToCaller) {
  EXPECT_THROW(
      parallel_for(64,
                   [](std::size_t i) {
                     if (i == 13) throw std::runtime_error("boom");
                   }),
      std::runtime_error);
}

TEST(Parallel, WorkerExceptionMessageIsTheFirstThrown) {
  try {
    parallel_for(
        8, [](std::size_t) -> void { throw std::runtime_error("worker failed"); },
        1);
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "worker failed");
  }
}

TEST(Parallel, ExceptionDoesNotAbortRemainingIterationsPermanently) {
  // After a failed run the pool must still be usable.
  EXPECT_THROW(
      parallel_for(4, [](std::size_t) { throw std::runtime_error("x"); }),
      std::runtime_error);
  std::atomic<int> total{0};
  parallel_for(10, [&](std::size_t) { total.fetch_add(1); });
  EXPECT_EQ(total.load(), 10);
}

TEST(Parallel, MeshrouteThreadsOverridesDefaultCount) {
  ScopedEnv env("MESHROUTE_THREADS", "3");
  EXPECT_EQ(default_thread_count(), 3u);
}

TEST(Parallel, MeshrouteThreadsInvalidFallsBackToAtLeastOne) {
  {
    ScopedEnv env("MESHROUTE_THREADS", "0");
    EXPECT_GE(default_thread_count(), 1u);
  }
  {
    ScopedEnv env("MESHROUTE_THREADS", "not-a-number");
    EXPECT_GE(default_thread_count(), 1u);
  }
}

TEST(Parallel, ZeroCountIsANoOp) {
  std::atomic<int> total{0};
  parallel_for(0, [&](std::size_t) { total.fetch_add(1); });
  EXPECT_EQ(total.load(), 0);
}

}  // namespace
}  // namespace mr
