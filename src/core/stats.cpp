#include "core/stats.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "core/assert.hpp"

namespace mr {

void RunningStat::add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void RunningStat::merge(const RunningStat& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(count_);
  const double nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = na + nb;
  mean_ += delta * nb / n;
  m2_ += other.m2_ + delta * delta * na * nb / n;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStat::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

void Histogram::add(std::int64_t value, std::int64_t count) {
  MR_REQUIRE_MSG(value >= 0, "Histogram stores non-negative values");
  MR_REQUIRE(count >= 0);
  if (count == 0) return;
  if (value >= kDenseLimit) {
    if (overflow_count_ == 0) {
      overflow_min_ = overflow_max_ = value;
    } else {
      overflow_min_ = std::min(overflow_min_, value);
      overflow_max_ = std::max(overflow_max_, value);
    }
    overflow_count_ += count;
    overflow_sum_ += static_cast<double>(value) * static_cast<double>(count);
    total_ += count;
    return;
  }
  const auto idx = static_cast<std::size_t>(value);
  if (idx >= counts_.size()) counts_.resize(idx + 1, 0);
  counts_[idx] += count;
  total_ += count;
}

std::int64_t Histogram::min() const {
  for (std::size_t v = 0; v < counts_.size(); ++v)
    if (counts_[v] > 0) return static_cast<std::int64_t>(v);
  return overflow_count_ > 0 ? overflow_min_ : 0;
}

std::int64_t Histogram::max() const {
  if (overflow_count_ > 0) return overflow_max_;
  for (std::size_t v = counts_.size(); v-- > 0;)
    if (counts_[v] > 0) return static_cast<std::int64_t>(v);
  return 0;
}

double Histogram::mean() const {
  if (total_ == 0) return 0.0;
  double sum = overflow_sum_;
  for (std::size_t v = 0; v < counts_.size(); ++v)
    sum += static_cast<double>(v) * static_cast<double>(counts_[v]);
  return sum / static_cast<double>(total_);
}

std::int64_t Histogram::percentile(double q) const {
  if (total_ == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  // Clamp to >= 1: with q near 0 the target would round to 0 samples and
  // the scan would stop at bucket 0 even when it is empty.
  const auto target = std::max<std::int64_t>(
      1, static_cast<std::int64_t>(std::ceil(q * static_cast<double>(total_))));
  std::int64_t seen = 0;
  for (std::size_t v = 0; v < counts_.size(); ++v) {
    seen += counts_[v];
    if (seen >= target) return static_cast<std::int64_t>(v);
  }
  // Target lies in the overflow bucket; max() is the conservative bound
  // satisfying the "at least q fraction <= v" contract.
  return max();
}

std::int64_t Histogram::count_at(std::int64_t v) const {
  if (v < 0 || static_cast<std::size_t>(v) >= counts_.size()) return 0;
  return counts_[static_cast<std::size_t>(v)];
}

std::string Histogram::summary() const {
  std::ostringstream os;
  os << "mean=" << mean() << " p50=" << percentile(0.50)
     << " p99=" << percentile(0.99) << " max=" << max();
  if (overflow_count_ > 0) os << " overflow=" << overflow_count_;
  return os.str();
}

}  // namespace mr
